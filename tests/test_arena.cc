/**
 * @file
 * Arena allocator tests (kernels/arena.h): alignment, high-water
 * chunk reuse across reset(), the live-handle escape panic, ASan
 * poisoning of reclaimed regions, thread-locality of the scope stack
 * on pool lanes (TSan tier), and the end-to-end O(1)-heap-allocation
 * guarantee for steady-state micro-batch training.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "data/catalog.h"
#include "kernels/arena.h"
#include "sampling/neighbor_sampler.h"
#include "tensor/tensor.h"
#include "train/trainer.h"
#include "util/thread_pool.h"

#if defined(__SANITIZE_ADDRESS__)
#define BETTY_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define BETTY_TEST_ASAN 1
#endif
#endif

#ifdef BETTY_TEST_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace betty::kernels {
namespace {

TEST(Arena, AllocationsRespectRequestedAlignment)
{
    Arena arena;
    for (int64_t align : {int64_t(1), int64_t(8), int64_t(16),
                          int64_t(32), int64_t(64)}) {
        for (int64_t bytes : {int64_t(1), int64_t(3), int64_t(17),
                              int64_t(256)}) {
            void* p = arena.allocate(bytes, align);
            ASSERT_NE(p, nullptr);
            EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                          std::uintptr_t(align),
                      0u)
                << "bytes=" << bytes << " align=" << align;
        }
    }
    // Default alignment is the full cache line.
    void* p = arena.allocate(5);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kArenaAlign, 0u);
}

TEST(Arena, ZeroByteAllocationsAreValidAndDistinct)
{
    Arena arena;
    void* a = arena.allocate(0);
    void* b = arena.allocate(0);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a, b);
}

TEST(Arena, ResetReusesChunksAtHighWater)
{
    Arena arena(int64_t(4) << 10); // 4 KiB granularity
    // Grow past several chunks.
    std::vector<void*> first;
    for (int i = 0; i < 32; ++i)
        first.push_back(arena.allocate(1024));
    const int64_t grown_chunks = arena.chunkAllocs();
    const int64_t reserved = arena.reservedBytes();
    const int64_t high_water = arena.highWaterBytes();
    EXPECT_GT(grown_chunks, 1);
    EXPECT_EQ(high_water, arena.inUseBytes());

    arena.reset();
    EXPECT_EQ(arena.inUseBytes(), 0);
    EXPECT_EQ(arena.highWaterBytes(), high_water);
    EXPECT_EQ(arena.reservedBytes(), reserved);
    EXPECT_EQ(arena.resets(), 1);

    // The same allocation pattern must be served entirely from the
    // retained chunks — that is the high-water reuse contract.
    std::vector<void*> second;
    for (int i = 0; i < 32; ++i)
        second.push_back(arena.allocate(1024));
    EXPECT_EQ(arena.chunkAllocs(), grown_chunks);
    EXPECT_EQ(arena.reservedBytes(), reserved);
    // Deterministic bump: the replay lands on the same addresses.
    EXPECT_EQ(first, second);
}

TEST(Arena, OversizeRequestGetsDedicatedChunk)
{
    Arena arena(int64_t(4) << 10);
    const int64_t big = int64_t(1) << 20;
    void* p = arena.allocate(big);
    ASSERT_NE(p, nullptr);
    EXPECT_GE(arena.reservedBytes(), big);
    EXPECT_GE(arena.inUseBytes(), big);
    // Whole-region writability (ASan would trap a short chunk).
    std::memset(p, 0xab, size_t(big));
}

TEST(Arena, CountsAllocationsAndResets)
{
    Arena arena;
    EXPECT_EQ(arena.allocations(), 0);
    arena.allocate(8);
    arena.allocate(8);
    arena.reset();
    arena.allocate(8);
    arena.reset();
    EXPECT_EQ(arena.allocations(), 3);
    EXPECT_EQ(arena.resets(), 2);
}

TEST(Arena, ReleaseAllReturnsChunksToHeap)
{
    Arena arena(int64_t(4) << 10);
    for (int i = 0; i < 16; ++i)
        arena.allocate(2048);
    EXPECT_GT(arena.reservedBytes(), 0);
    arena.releaseAll();
    EXPECT_EQ(arena.reservedBytes(), 0);
    EXPECT_EQ(arena.inUseBytes(), 0);
    // Still usable after a full release.
    void* p = arena.allocate(64);
    EXPECT_NE(p, nullptr);
}

TEST(ArenaDeathTest, ResetWithLiveTensorStoragePanics)
{
    EXPECT_DEATH(
        {
            Arena arena;
            Tensor escaped;
            {
                ArenaScope scope(arena);
                escaped = Tensor::zeros(4, 4);
            }
            // `escaped` still references arena storage: resetting now
            // would turn it into a silent use-after-reset.
            arena.reset();
        },
        "escaped its micro-batch scope");
}

TEST(Arena, LiveHandleCountTracksTensorStorage)
{
    Arena arena;
    {
        ArenaScope scope(arena);
        Tensor a = Tensor::zeros(2, 3);
        EXPECT_EQ(arena.liveHandles(), 1);
        {
            Tensor b = Tensor::zeros(5, 5);
            EXPECT_EQ(arena.liveHandles(), 2);
        }
        EXPECT_EQ(arena.liveHandles(), 1);
    }
    EXPECT_EQ(arena.liveHandles(), 0);
    arena.reset(); // no live handles -> fine
}

TEST(Arena, ReclaimedRegionsArePoisonedUnderAsan)
{
#ifndef BETTY_TEST_ASAN
    GTEST_SKIP() << "AddressSanitizer not enabled in this build";
#else
    Arena arena;
    char* p = static_cast<char*>(arena.allocate(256));
    std::memset(p, 0x5a, 256);
    EXPECT_FALSE(__asan_address_is_poisoned(p));
    arena.reset();
    EXPECT_TRUE(__asan_address_is_poisoned(p));
    EXPECT_TRUE(__asan_address_is_poisoned(p + 255));
    // Re-allocating the region unpoisons exactly the handed-out bytes.
    char* q = static_cast<char*>(arena.allocate(256));
    EXPECT_EQ(p, q);
    EXPECT_FALSE(__asan_address_is_poisoned(q));
    EXPECT_FALSE(__asan_address_is_poisoned(q + 255));
    std::memset(q, 0x6b, 256);
#endif
}

TEST(ArenaScopeTest, ScopeAndSuspendNestPerThread)
{
    EXPECT_EQ(currentArena(), nullptr);
    Arena outer_arena;
    Arena inner_arena;
    {
        ArenaScope outer(outer_arena);
        EXPECT_EQ(currentArena(), &outer_arena);
        {
            ArenaSuspend off;
            EXPECT_EQ(currentArena(), nullptr);
            {
                ArenaScope inner(inner_arena);
                EXPECT_EQ(currentArena(), &inner_arena);
            }
            EXPECT_EQ(currentArena(), nullptr);
        }
        EXPECT_EQ(currentArena(), &outer_arena);
    }
    EXPECT_EQ(currentArena(), nullptr);
}

TEST(ArenaScopeTest, PoolWorkersNeverSeeTheTrainingThreadArena)
{
    Arena main_arena;
    ArenaScope scope(main_arena);
    ThreadPool pool(4);
    const std::thread::id main_id = std::this_thread::get_id();

    // Workers observe no arena while the main thread holds a scope,
    // and distinct arenas on distinct lanes are fully independent
    // (this test is in the TSan concurrency tier).
    std::vector<std::future<bool>> checks;
    for (int i = 0; i < 16; ++i) {
        checks.push_back(pool.submit([main_id] {
            if (std::this_thread::get_id() == main_id)
                return currentArena() != nullptr;
            if (currentArena() != nullptr)
                return false;
            Arena lane_arena;
            ArenaScope lane_scope(lane_arena);
            if (currentArena() != &lane_arena)
                return false;
            for (int j = 0; j < 64; ++j) {
                auto* p = static_cast<char*>(lane_arena.allocate(96));
                std::memset(p, j, 96);
            }
            lane_arena.reset();
            return lane_arena.highWaterBytes() > 0;
        }));
    }
    for (auto& check : checks)
        EXPECT_TRUE(check.get());
    EXPECT_EQ(currentArena(), &main_arena);
}

/**
 * The end-to-end guarantee the arena exists for: once the first
 * micro-batches have grown the chunk list to its high-water mark,
 * a steady-state training epoch performs ZERO tensor heap
 * allocations — every forward/backward temporary is a pointer bump
 * (docs/KERNELS.md "Arena lifecycle").
 */
TEST(ArenaTraining, SteadyStateEpochDoesNoTensorHeapAllocations)
{
    Dataset dataset = loadCatalogDataset("cora_like", 0.15, 11);
    NeighborSampler sampler(dataset.graph, {-1, -1}, 12);
    std::vector<int64_t> seeds(dataset.trainNodes.begin(),
                               dataset.trainNodes.begin() + 100);
    MultiLayerBatch full = sampler.sample(seeds);

    SageConfig cfg;
    cfg.inputDim = dataset.featureDim();
    cfg.hiddenDim = 16;
    cfg.numClasses = dataset.numClasses;
    cfg.numLayers = 2;
    GraphSage model(cfg);
    Adam adam(model.parameters(), 0.01f);
    Trainer trainer(dataset, model, adam);

    // Warm-up: grows the arena to high water and allocates the
    // persistent (heap) parameter gradients on the first backward.
    for (int epoch = 0; epoch < 2; ++epoch)
        trainer.trainMicroBatches({full});

    const int64_t before = tensorHeapAllocCount();
    double loss = 0.0;
    for (int epoch = 0; epoch < 3; ++epoch)
        loss = trainer.trainMicroBatches({full}).loss;
    EXPECT_EQ(tensorHeapAllocCount(), before)
        << "steady-state micro-batch training must not touch the "
           "tensor heap";
    EXPECT_GT(loss, 0.0);
}

} // namespace
} // namespace betty::kernels
