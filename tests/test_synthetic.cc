/**
 * @file
 * Tests for synthetic dataset generation and the dataset catalog.
 */
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/catalog.h"
#include "data/synthetic.h"

namespace betty {
namespace {

SyntheticSpec
smallSpec()
{
    SyntheticSpec spec;
    spec.numNodes = 500;
    spec.avgDegree = 8.0;
    spec.featureDim = 16;
    spec.numClasses = 4;
    spec.homophily = 0.8;
    return spec;
}

TEST(Synthetic, ShapesMatchSpec)
{
    const auto ds = makeSyntheticDataset(smallSpec(), 1);
    EXPECT_EQ(ds.numNodes(), 500);
    EXPECT_EQ(ds.featureDim(), 16);
    EXPECT_EQ(ds.numClasses, 4);
    EXPECT_EQ(int64_t(ds.labels.size()), 500);
}

TEST(Synthetic, DeterministicGivenSeed)
{
    const auto a = makeSyntheticDataset(smallSpec(), 9);
    const auto b = makeSyntheticDataset(smallSpec(), 9);
    EXPECT_EQ(a.numEdges(), b.numEdges());
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_EQ(a.trainNodes, b.trainNodes);
    for (int64_t i = 0; i < 64; ++i)
        EXPECT_EQ(a.features.data()[i], b.features.data()[i]);
}

TEST(Synthetic, SeedsChangeTheGraph)
{
    const auto a = makeSyntheticDataset(smallSpec(), 1);
    const auto b = makeSyntheticDataset(smallSpec(), 2);
    EXPECT_NE(a.labels, b.labels);
}

TEST(Synthetic, EdgeCountNearTarget)
{
    const auto ds = makeSyntheticDataset(smallSpec(), 3);
    // avgDegree 8 over 500 nodes -> ~2000 pairs -> ~4000 directed
    // edges plus the connectivity backbone.
    EXPECT_GT(ds.numEdges(), 3500);
    EXPECT_LT(ds.numEdges(), 6500);
}

TEST(Synthetic, GraphIsSymmetric)
{
    const auto ds = makeSyntheticDataset(smallSpec(), 4);
    for (int64_t v = 0; v < ds.numNodes(); ++v)
        EXPECT_EQ(ds.graph.inDegree(v), ds.graph.outDegree(v));
}

TEST(Synthetic, EveryNodeConnected)
{
    const auto ds = makeSyntheticDataset(smallSpec(), 5);
    for (int64_t v = 0; v < ds.numNodes(); ++v)
        EXPECT_GE(ds.graph.inDegree(v), 1) << "node " << v;
}

TEST(Synthetic, PowerLawTailExists)
{
    auto spec = smallSpec();
    spec.numNodes = 2000;
    spec.powerLawAlpha = 2.2;
    const auto ds = makeSyntheticDataset(spec, 6);
    const double avg = double(ds.numEdges()) / double(ds.numNodes());
    // Heavy tail: the max in-degree should dwarf the average.
    EXPECT_GT(double(ds.graph.maxInDegree()), 5.0 * avg);
}

TEST(Synthetic, HomophilyIsMeasurable)
{
    const auto ds = makeSyntheticDataset(smallSpec(), 7);
    int64_t same = 0, total = 0;
    for (const auto& e : ds.graph.edgeList()) {
        same += ds.labels[size_t(e.src)] == ds.labels[size_t(e.dst)];
        ++total;
    }
    // With homophily 0.8 and 4 classes, same-class fraction must be
    // far above the 0.25 chance level.
    EXPECT_GT(double(same) / double(total), 0.5);
}

TEST(Synthetic, SplitsPartitionTheNodes)
{
    const auto ds = makeSyntheticDataset(smallSpec(), 8);
    std::set<int64_t> all;
    all.insert(ds.trainNodes.begin(), ds.trainNodes.end());
    all.insert(ds.valNodes.begin(), ds.valNodes.end());
    all.insert(ds.testNodes.begin(), ds.testNodes.end());
    EXPECT_EQ(int64_t(all.size()), ds.numNodes());
    EXPECT_EQ(ds.trainNodes.size() + ds.valNodes.size() +
                  ds.testNodes.size(),
              size_t(ds.numNodes()));
    EXPECT_NEAR(double(ds.trainNodes.size()) / double(ds.numNodes()),
                0.6, 0.01);
}

TEST(Synthetic, LabelsInRange)
{
    const auto ds = makeSyntheticDataset(smallSpec(), 9);
    for (int32_t label : ds.labels) {
        EXPECT_GE(label, 0);
        EXPECT_LT(label, ds.numClasses);
    }
}

TEST(Synthetic, FeaturesCorrelateWithClass)
{
    // Same-class nodes should be closer in feature space on average.
    auto spec = smallSpec();
    spec.featureNoise = 0.5;
    const auto ds = makeSyntheticDataset(spec, 10);
    auto dist = [&](int64_t a, int64_t b) {
        double d = 0.0;
        for (int64_t f = 0; f < ds.featureDim(); ++f) {
            const double diff =
                ds.features.at(a, f) - ds.features.at(b, f);
            d += diff * diff;
        }
        return d;
    };
    double same = 0.0, diff = 0.0;
    int64_t same_n = 0, diff_n = 0;
    for (int64_t a = 0; a < 100; ++a) {
        for (int64_t b = a + 1; b < 100; ++b) {
            if (ds.labels[size_t(a)] == ds.labels[size_t(b)]) {
                same += dist(a, b);
                ++same_n;
            } else {
                diff += dist(a, b);
                ++diff_n;
            }
        }
    }
    EXPECT_LT(same / double(same_n), diff / double(diff_n));
}

TEST(Rmat, EdgeCountAndRange)
{
    const auto edges = rmatEdges(10, 5000, 1);
    EXPECT_EQ(edges.size(), 5000u);
    for (const auto& e : edges) {
        EXPECT_GE(e.src, 0);
        EXPECT_LT(e.src, 1024);
        EXPECT_GE(e.dst, 0);
        EXPECT_LT(e.dst, 1024);
    }
}

TEST(Rmat, SkewProducesHubs)
{
    const auto edges = rmatEdges(10, 20000, 2);
    const CsrGraph g(1024, edges);
    const double avg = double(g.numEdges()) / 1024.0;
    EXPECT_GT(double(g.maxInDegree()), 4.0 * avg);
}

TEST(Catalog, AllNamesLoad)
{
    for (const auto& name : catalogNames()) {
        const auto ds = loadCatalogDataset(name, /*scale=*/0.02);
        EXPECT_GT(ds.numNodes(), 0) << name;
        EXPECT_GT(ds.numEdges(), 0) << name;
        EXPECT_EQ(ds.name, name);
    }
}

TEST(Catalog, FeatureDimsMatchPaper)
{
    EXPECT_EQ(coraSpec().featureDim, 1433);
    EXPECT_EQ(pubmedSpec().featureDim, 500);
    EXPECT_EQ(redditSpec().featureDim, 602);
    EXPECT_EQ(arxivSpec().featureDim, 128);
    EXPECT_EQ(productsSpec().featureDim, 100);
}

TEST(Catalog, ClassCountsMatchPaper)
{
    EXPECT_EQ(coraSpec().numClasses, 7);
    EXPECT_EQ(pubmedSpec().numClasses, 3);
    EXPECT_EQ(redditSpec().numClasses, 41);
    EXPECT_EQ(arxivSpec().numClasses, 40);
    EXPECT_EQ(productsSpec().numClasses, 47);
}

TEST(Catalog, ScaleShrinksNodes)
{
    const auto small = loadCatalogDataset("arxiv_like", 0.01);
    const auto larger = loadCatalogDataset("arxiv_like", 0.05);
    EXPECT_LT(small.numNodes(), larger.numNodes());
}

TEST(CatalogDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(loadCatalogDataset("nope", 1.0),
                ::testing::ExitedWithCode(1), "unknown catalog");
}

} // namespace
} // namespace betty
