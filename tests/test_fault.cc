/**
 * @file
 * The deterministic fault-injection layer (util/fault.h): spec
 * grammar, typed parse failures, the epoch/micro-batch clock,
 * one-shot consumption semantics, and the pure-function corrupt-row
 * plan.
 */
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/fault.h"

namespace betty::fault {
namespace {

/** Every test leaves the process-global injector clean. */
struct InjectorScope
{
    ~InjectorScope() { Injector::clear(); }
};

TEST(FaultPlanParse, FullGrammar)
{
    FaultPlan plan;
    std::string error;
    ASSERT_TRUE(FaultPlan::parse(
        "oom@epoch2.mb1;capacity-drop=0.5@epoch3;"
        "transfer-fail@epoch1:retries=2;alloc-scale=1.5@epoch2.mb0;"
        "corrupt-features=0.01@epoch1",
        plan, &error))
        << error;
    ASSERT_EQ(plan.events.size(), 5u);

    EXPECT_EQ(plan.events[0].kind, FaultKind::InjectOom);
    EXPECT_EQ(plan.events[0].epoch, 2);
    EXPECT_EQ(plan.events[0].microBatch, 1);

    EXPECT_EQ(plan.events[1].kind, FaultKind::CapacityDrop);
    EXPECT_EQ(plan.events[1].epoch, 3);
    EXPECT_EQ(plan.events[1].microBatch, -1); // epoch-scoped
    EXPECT_DOUBLE_EQ(plan.events[1].value, 0.5);

    EXPECT_EQ(plan.events[2].kind, FaultKind::TransferFail);
    EXPECT_EQ(plan.events[2].retries, 2);

    EXPECT_EQ(plan.events[3].kind, FaultKind::AllocScale);
    EXPECT_DOUBLE_EQ(plan.events[3].value, 1.5);
    EXPECT_EQ(plan.events[3].microBatch, 0);

    EXPECT_EQ(plan.events[4].kind, FaultKind::CorruptFeatures);
    EXPECT_DOUBLE_EQ(plan.events[4].value, 0.01);
}

TEST(FaultPlanParse, EmptySpecIsEmptyPlan)
{
    FaultPlan plan;
    EXPECT_TRUE(FaultPlan::parse("", plan, nullptr));
    EXPECT_TRUE(plan.events.empty());
}

TEST(FaultPlanParse, PlanUntouchedOnFailure)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse("oom@epoch1", plan, nullptr));
    ASSERT_EQ(plan.events.size(), 1u);
    EXPECT_FALSE(FaultPlan::parse("garbage", plan, nullptr));
    EXPECT_EQ(plan.events.size(), 1u); // still the old plan
}

TEST(FaultPlanParse, TypedErrors)
{
    FaultPlan plan;
    std::string error;

    EXPECT_FALSE(FaultPlan::parse("oom", plan, &error));
    EXPECT_NE(error.find("missing '@epochN'"), std::string::npos);

    EXPECT_FALSE(FaultPlan::parse("explode@epoch1", plan, &error));
    EXPECT_NE(error.find("unknown fault kind"), std::string::npos);

    EXPECT_FALSE(FaultPlan::parse("oom@e1", plan, &error));
    EXPECT_NE(error.find("must start with 'epoch'"),
              std::string::npos);

    EXPECT_FALSE(FaultPlan::parse("oom@epoch0", plan, &error));
    EXPECT_NE(error.find("bad epoch number"), std::string::npos);

    EXPECT_FALSE(FaultPlan::parse("oom@epoch1.mb-2", plan, &error));
    EXPECT_NE(error.find("bad micro-batch index"), std::string::npos);

    // Kind-specific value validation.
    EXPECT_FALSE(
        FaultPlan::parse("capacity-drop=1.5@epoch1", plan, &error));
    EXPECT_NE(error.find("factor in (0, 1)"), std::string::npos);
    EXPECT_FALSE(
        FaultPlan::parse("capacity-drop@epoch1", plan, &error));
    EXPECT_FALSE(
        FaultPlan::parse("alloc-scale=0.9@epoch1", plan, &error));
    EXPECT_NE(error.find("scale > 1"), std::string::npos);
    EXPECT_FALSE(
        FaultPlan::parse("corrupt-features=0@epoch1", plan, &error));
    EXPECT_FALSE(FaultPlan::parse("oom=3@epoch1", plan, &error));
    EXPECT_NE(error.find("takes no '=value'"), std::string::npos);

    EXPECT_FALSE(FaultPlan::parse("transfer-fail@epoch1:retries=0",
                                  plan, &error));
    EXPECT_NE(error.find("bad retries"), std::string::npos);
    EXPECT_FALSE(FaultPlan::parse("transfer-fail@epoch1:bogus=2",
                                  plan, &error));
    EXPECT_NE(error.find("unknown modifier"), std::string::npos);
}

TEST(FaultPlanParse, DeviceDropGrammar)
{
    FaultPlan plan;
    std::string error;

    // Without a value: drop the highest-indexed live device; the
    // unspecified index is encoded as -1.
    ASSERT_TRUE(FaultPlan::parse("device-drop@epoch2", plan, &error))
        << error;
    ASSERT_EQ(plan.events.size(), 1u);
    EXPECT_EQ(plan.events[0].kind, FaultKind::DeviceDrop);
    EXPECT_EQ(plan.events[0].epoch, 2);
    EXPECT_EQ(plan.events[0].microBatch, -1); // epoch-scoped
    EXPECT_DOUBLE_EQ(plan.events[0].value, -1.0);

    // With an explicit device index, micro-batch scoped.
    ASSERT_TRUE(FaultPlan::parse("device-drop=1@epoch2.mb3", plan,
                                 &error))
        << error;
    ASSERT_EQ(plan.events.size(), 1u);
    EXPECT_EQ(plan.events[0].kind, FaultKind::DeviceDrop);
    EXPECT_DOUBLE_EQ(plan.events[0].value, 1.0);
    EXPECT_EQ(plan.events[0].microBatch, 3);

    // The index must be a whole non-negative integer.
    EXPECT_FALSE(
        FaultPlan::parse("device-drop=-1@epoch1", plan, &error));
    EXPECT_NE(error.find("whole device index"), std::string::npos);
    EXPECT_FALSE(
        FaultPlan::parse("device-drop=0.5@epoch1", plan, &error));
    EXPECT_NE(error.find("whole device index"), std::string::npos);
}

TEST(FaultPlanParse, GrayFailureGrammar)
{
    FaultPlan plan;
    std::string error;

    ASSERT_TRUE(FaultPlan::parse(
        "device-slow=4@epoch2:device=1:duration=2;"
        "transfer-flaky=0.2@epoch3",
        plan, &error))
        << error;
    ASSERT_EQ(plan.events.size(), 2u);

    EXPECT_EQ(plan.events[0].kind, FaultKind::DeviceSlow);
    EXPECT_DOUBLE_EQ(plan.events[0].value, 4.0);
    EXPECT_EQ(plan.events[0].epoch, 2);
    EXPECT_EQ(plan.events[0].device, 1);
    EXPECT_EQ(plan.events[0].durationEpochs, 2);

    EXPECT_EQ(plan.events[1].kind, FaultKind::TransferFlaky);
    EXPECT_DOUBLE_EQ(plan.events[1].value, 0.2);
    EXPECT_EQ(plan.events[1].epoch, 3);
    EXPECT_EQ(plan.events[1].microBatch, -1);

    // Defaults: no device named (-1), permanent (duration 0).
    ASSERT_TRUE(FaultPlan::parse("device-slow=2@epoch1", plan,
                                 &error))
        << error;
    EXPECT_EQ(plan.events[0].device, -1);
    EXPECT_EQ(plan.events[0].durationEpochs, 0);

    // Typed errors of the new kinds.
    EXPECT_FALSE(
        FaultPlan::parse("device-slow=1.0@epoch1", plan, &error));
    EXPECT_NE(error.find("slowdown factor > 1"), std::string::npos);
    EXPECT_FALSE(
        FaultPlan::parse("device-slow@epoch1", plan, &error));
    EXPECT_FALSE(
        FaultPlan::parse("transfer-flaky=1.5@epoch1", plan, &error));
    EXPECT_NE(error.find("probability in (0, 1)"),
              std::string::npos);
    EXPECT_FALSE(
        FaultPlan::parse("transfer-flaky=0@epoch1", plan, &error));
    EXPECT_FALSE(FaultPlan::parse("device-slow=4@epoch1:device=-2",
                                  plan, &error));
    EXPECT_NE(error.find("bad device index"), std::string::npos);
    EXPECT_FALSE(FaultPlan::parse(
        "device-slow=4@epoch1:duration=-1", plan, &error));
    EXPECT_NE(error.find("bad duration"), std::string::npos);
}

TEST(FaultPlanFormat, RoundTripsEveryKind)
{
    // format() is the chaos harness's replay handle: parsing its
    // output must reproduce the plan exactly.
    const std::string specs[] = {
        "oom@epoch2.mb1",
        "capacity-drop=0.5@epoch3",
        "transfer-fail@epoch1:retries=2",
        "alloc-scale=1.5@epoch2.mb0",
        "corrupt-features=0.01@epoch1",
        "device-drop@epoch2",
        "device-drop=1@epoch2.mb3",
        "device-slow=4@epoch2:device=1:duration=2",
        "device-slow=1.5@epoch1",
        "transfer-flaky=0.2@epoch3.mb1",
        // A multi-event plan formats back as one semicolon list.
        "oom@epoch1.mb0;device-slow=8@epoch2:duration=1;"
        "transfer-flaky=0.05@epoch2",
    };
    for (const std::string& spec : specs) {
        FaultPlan plan;
        std::string error;
        ASSERT_TRUE(FaultPlan::parse(spec, plan, &error))
            << spec << ": " << error;
        EXPECT_EQ(plan.format(), spec);

        // And the round-tripped plan parses to identical events.
        FaultPlan again;
        ASSERT_TRUE(FaultPlan::parse(plan.format(), again, &error))
            << error;
        ASSERT_EQ(again.events.size(), plan.events.size());
        for (size_t i = 0; i < plan.events.size(); ++i) {
            EXPECT_EQ(again.events[i].kind, plan.events[i].kind);
            EXPECT_EQ(again.events[i].epoch, plan.events[i].epoch);
            EXPECT_EQ(again.events[i].microBatch,
                      plan.events[i].microBatch);
            EXPECT_EQ(again.events[i].value, plan.events[i].value);
            EXPECT_EQ(again.events[i].retries,
                      plan.events[i].retries);
            EXPECT_EQ(again.events[i].device,
                      plan.events[i].device);
            EXPECT_EQ(again.events[i].durationEpochs,
                      plan.events[i].durationEpochs);
        }
    }
}

TEST(Injector, DeviceDropFiresOnceAtTheClockPosition)
{
    InjectorScope cleanup;
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse(
        "device-drop@epoch2;device-drop=1@epoch3.mb1", plan,
        nullptr));
    Injector::install(plan);

    int64_t device = -2;
    Injector::beginEpoch(1);
    EXPECT_FALSE(Injector::takeDeviceDrop(&device));

    Injector::beginEpoch(2);
    ASSERT_TRUE(Injector::takeDeviceDrop(&device));
    EXPECT_EQ(device, -1); // no index named in the spec
    EXPECT_FALSE(Injector::takeDeviceDrop(&device)); // one-shot

    Injector::beginEpoch(3);
    Injector::beginMicroBatch(0);
    EXPECT_FALSE(Injector::takeDeviceDrop(&device));
    Injector::beginMicroBatch(1);
    ASSERT_TRUE(Injector::takeDeviceDrop(&device));
    EXPECT_EQ(device, 1);
    EXPECT_EQ(Injector::faultsInjected(FaultKind::DeviceDrop), 2);
}

TEST(Injector, InactiveQueriesAreNoops)
{
    InjectorScope cleanup;
    Injector::clear();
    EXPECT_FALSE(Injector::active());
    Injector::beginEpoch(1);
    Injector::beginMicroBatch(0);
    double value = 0.0;
    EXPECT_FALSE(Injector::takeInjectedOom());
    EXPECT_FALSE(Injector::takeCapacityDrop(&value));
    EXPECT_FALSE(Injector::takeAllocScale(&value));
    EXPECT_FALSE(Injector::takeTransferFailure(0));
    EXPECT_FALSE(Injector::takeTransferFlakyFailure(0, 0));
    EXPECT_FALSE(Injector::takeCorruptFeatures(&value));
    int64_t device = -1;
    int64_t duration = 0;
    EXPECT_FALSE(Injector::takeDeviceSlow(&value, &device, &duration));
    EXPECT_EQ(Injector::faultsInjected(), 0);
}

TEST(Injector, FiresExactlyAtTheClockPosition)
{
    InjectorScope cleanup;
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse("oom@epoch2.mb1", plan, nullptr));
    Injector::install(plan);
    ASSERT_TRUE(Injector::active());

    Injector::beginEpoch(1);
    Injector::beginMicroBatch(1);
    EXPECT_FALSE(Injector::takeInjectedOom()); // wrong epoch

    Injector::beginEpoch(2);
    EXPECT_FALSE(Injector::takeInjectedOom()); // epoch-scoped slot
    Injector::beginMicroBatch(0);
    EXPECT_FALSE(Injector::takeInjectedOom()); // wrong micro-batch
    Injector::beginMicroBatch(1);
    EXPECT_TRUE(Injector::takeInjectedOom()); // fires
    EXPECT_FALSE(Injector::takeInjectedOom()); // one-shot: consumed
    EXPECT_EQ(Injector::faultsInjected(), 1);
    EXPECT_EQ(Injector::faultsInjected(FaultKind::InjectOom), 1);
    EXPECT_EQ(Injector::faultsInjected(FaultKind::CapacityDrop), 0);
}

TEST(Injector, EpochScopedEventFiresBeforeMicroBatches)
{
    InjectorScope cleanup;
    FaultPlan plan;
    ASSERT_TRUE(
        FaultPlan::parse("capacity-drop=0.25@epoch1", plan, nullptr));
    Injector::install(plan);

    Injector::beginEpoch(1);
    double factor = 0.0;
    ASSERT_TRUE(Injector::takeCapacityDrop(&factor));
    EXPECT_DOUBLE_EQ(factor, 0.25);
    // Not again at a micro-batch position.
    Injector::beginMicroBatch(0);
    EXPECT_FALSE(Injector::takeCapacityDrop(&factor));
}

TEST(Injector, TransferFailConsumesPerAttempt)
{
    InjectorScope cleanup;
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse("transfer-fail@epoch1:retries=2",
                                 plan, nullptr));
    Injector::install(plan);

    Injector::beginEpoch(1);
    EXPECT_TRUE(Injector::takeTransferFailure(0));
    // Any micro-batch of the epoch.
    EXPECT_TRUE(Injector::takeTransferFailure(1));
    EXPECT_FALSE(Injector::takeTransferFailure(2)); // retries spent
    EXPECT_EQ(Injector::faultsInjected(FaultKind::TransferFail), 2);
}

TEST(Injector, TransferFaultsKeyOnProgramOrderNotTheClock)
{
    // The pipelining fix (docs/ROBUSTNESS.md): a prefetch worker
    // gathering micro-batch 2 while the clock still says micro-batch
    // 0 must consume exactly the fault pinned to ITS position. The
    // clock's micro-batch is deliberately left elsewhere throughout.
    InjectorScope cleanup;
    FaultPlan plan;
    ASSERT_TRUE(
        FaultPlan::parse("transfer-fail@epoch1.mb2", plan, nullptr));
    Injector::install(plan);

    Injector::beginEpoch(1);
    Injector::beginMicroBatch(0); // clock lags the prefetcher
    EXPECT_FALSE(Injector::takeTransferFailure(0));
    EXPECT_FALSE(Injector::takeTransferFailure(1));
    EXPECT_TRUE(Injector::takeTransferFailure(2)); // program order
    EXPECT_FALSE(Injector::takeTransferFailure(2));

    // Same for the probabilistic kind: the draw is keyed on the
    // caller's position, so only micro-batch 1's attempts can fire.
    ASSERT_TRUE(FaultPlan::parse("transfer-flaky=0.5@epoch1.mb1",
                                 plan, nullptr));
    plan.seed = 21;
    Injector::install(plan);
    Injector::beginEpoch(1);
    Injector::beginMicroBatch(0);
    for (int64_t attempt = 0; attempt < 64; ++attempt)
        EXPECT_FALSE(Injector::takeTransferFlakyFailure(0, attempt));
    int64_t fired = 0;
    for (int64_t attempt = 0; attempt < 64; ++attempt)
        fired += Injector::takeTransferFlakyFailure(1, attempt) ? 1 : 0;
    EXPECT_GT(fired, 0);
    EXPECT_EQ(Injector::faultsInjected(FaultKind::TransferFlaky),
              fired);
}

TEST(Injector, TransferFlakyIsAPureFunctionOfPosition)
{
    InjectorScope cleanup;
    FaultPlan plan;
    ASSERT_TRUE(
        FaultPlan::parse("transfer-flaky=0.3@epoch1", plan, nullptr));
    plan.seed = 1234;
    Injector::install(plan);
    Injector::beginEpoch(1);

    // Record the outcome of (micro-batch, attempt) positions, then
    // replay them in a different order: every outcome must repeat —
    // flaky events never consume, they re-draw from the same stream.
    std::vector<bool> first;
    for (int64_t mb = 0; mb < 4; ++mb)
        for (int64_t attempt = 0; attempt < 8; ++attempt)
            first.push_back(
                Injector::takeTransferFlakyFailure(mb, attempt));
    std::vector<bool> replay(first.size());
    for (int64_t mb = 3; mb >= 0; --mb)
        for (int64_t attempt = 7; attempt >= 0; --attempt)
            replay[size_t(mb * 8 + attempt)] =
                Injector::takeTransferFlakyFailure(mb, attempt);
    EXPECT_EQ(first, replay);

    // A different seed draws a different (in general) pattern.
    plan.seed = 4321;
    Injector::install(plan);
    Injector::beginEpoch(1);
    std::vector<bool> other;
    for (int64_t mb = 0; mb < 4; ++mb)
        for (int64_t attempt = 0; attempt < 8; ++attempt)
            other.push_back(
                Injector::takeTransferFlakyFailure(mb, attempt));
    EXPECT_NE(first, other);
}

TEST(Injector, ReinstallResetsConsumption)
{
    InjectorScope cleanup;
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse("oom@epoch1.mb0", plan, nullptr));
    Injector::install(plan);
    Injector::beginEpoch(1);
    Injector::beginMicroBatch(0);
    ASSERT_TRUE(Injector::takeInjectedOom());

    Injector::install(plan); // fresh clock, fresh queue
    EXPECT_EQ(Injector::faultsInjected(), 0);
    Injector::beginEpoch(1);
    Injector::beginMicroBatch(0);
    EXPECT_TRUE(Injector::takeInjectedOom());
}

TEST(Injector, CorruptRowPlanIsDeterministicPerEpoch)
{
    InjectorScope cleanup;
    FaultPlan plan;
    ASSERT_TRUE(
        FaultPlan::parse("corrupt-features=0.1@epoch1", plan, nullptr));
    plan.seed = 77;
    Injector::install(plan);

    Injector::beginEpoch(1);
    const auto first = Injector::corruptRowPlan(100, 0.1);
    // Same position, same answer — independent of consumption state
    // or how many times it is asked.
    const auto again = Injector::corruptRowPlan(100, 0.1);
    EXPECT_EQ(first, again);
    ASSERT_EQ(first.size(), 10u);
    // Sorted and duplicate-free, all in range.
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_GE(first[i], 0);
        EXPECT_LT(first[i], 100);
        if (i) {
            EXPECT_LT(first[i - 1], first[i]);
        }
    }

    // A different epoch corrupts a different (in general) set.
    Injector::beginEpoch(2);
    const auto other = Injector::corruptRowPlan(100, 0.1);
    EXPECT_NE(first, other);

    // At least one row even for a tiny fraction; empty for no rows.
    Injector::beginEpoch(1);
    EXPECT_EQ(Injector::corruptRowPlan(100, 0.0001).size(), 1u);
    EXPECT_TRUE(Injector::corruptRowPlan(0, 0.5).empty());
}

} // namespace
} // namespace betty::fault
