/**
 * @file
 * Differential proof that the feature cache is a pure data-movement
 * optimization: for cache sizes {0, small, ∞} × threads {1, 8} ×
 * pipeline on/off, epoch losses and final parameter hashes are
 * bit-identical to the uncached trainer, while transfer.bytes is
 * monotone non-increasing in cache size (strictly lower once the
 * cache holds the working set across epochs). Also asserts the
 * sampler contract is untouched by the cache — the precondition for
 * keeping the PR 3 golden-hash corpus without regeneration.
 */
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cache/feature_cache.h"
#include "core/betty.h"
#include "data/catalog.h"
#include "memory/device_memory.h"
#include "memory/transfer_model.h"
#include "obs/metrics.h"
#include "partition/partitioner.h"
#include "sampling/neighbor_sampler.h"
#include "train/trainer.h"
#include "util/thread_pool.h"

namespace betty {
namespace {

uint64_t
hashParameters(const GnnModel& model)
{
    uint64_t hash = 1469598103934665603ull;
    for (const auto& param : model.parameters())
        for (int64_t i = 0; i < param->value.numel(); ++i) {
            uint32_t bits;
            std::memcpy(&bits, &param->value.data()[i],
                        sizeof(bits));
            hash = (hash ^ bits) * 1099511628211ull;
        }
    return hash;
}

/** FNV over a batch's block structure: the sampler's contract. */
uint64_t
hashBatch(const MultiLayerBatch& batch)
{
    uint64_t hash = 1469598103934665603ull;
    auto mix = [&hash](int64_t value) {
        hash = (hash ^ uint64_t(value)) * 1099511628211ull;
    };
    for (const Block& block : batch.blocks) {
        for (const int64_t node : block.srcNodes())
            mix(node);
        for (const int64_t node : block.dstNodes())
            mix(node);
        for (const int64_t offset : block.edgeOffsets())
            mix(offset);
        for (const int64_t src : block.edgeSources())
            mix(src);
    }
    return hash;
}

/** Everything one run can be compared on. transferSeconds and device
 * peaks are deliberately ABSENT: the cache legitimately changes both
 * (fewer bytes moved; the reservation is live device memory). What
 * must stay bit-identical is the numerics. */
struct RunResult
{
    std::vector<double> losses;     // one per epoch
    std::vector<double> accuracies; // one per epoch
    int64_t inputNodes = 0;
    int64_t totalNodes = 0;
    uint64_t paramHash = 0;
    int64_t transferBytes = 0;   // transfer.bytes metric delta
    int64_t savedBytes = 0;      // TransferModel lifetime counter
    FeatureCacheStats cacheStats;
};

struct Env
{
    Env() : dataset(loadCatalogDataset("cora_like", 0.2, 11))
    {
        NeighborSampler sampler(dataset.graph, {4, 6}, 12);
        std::vector<int64_t> seeds(dataset.trainNodes.begin(),
                                   dataset.trainNodes.begin() + 160);
        const auto full = sampler.sample(seeds);
        BettyPartitioner partitioner;
        micros = extractMicroBatches(full,
                                     partitioner.partition(full, 8));
    }

    SageConfig
    sageConfig() const
    {
        SageConfig cfg;
        cfg.inputDim = dataset.featureDim();
        cfg.hiddenDim = 16;
        cfg.numClasses = dataset.numClasses;
        cfg.numLayers = 2;
        cfg.seed = 5;
        return cfg;
    }

    /**
     * Train @p epochs over the fixed micro-batches with a cache of
     * @p cache_bytes (0 = uncached). Fresh model/optimizer/device/
     * transfer per call, so two calls differ only in scheduling and
     * cache size — exactly what the differential assertions need.
     */
    RunResult
    run(int32_t threads, bool pipeline, int epochs,
        int64_t cache_bytes) const
    {
        ThreadPool::setGlobalThreads(threads);
        obs::Metrics::setEnabled(true);
        const int64_t bytes_before =
            obs::Metrics::counter("transfer.bytes").value();

        DeviceMemoryModel device; // unlimited: OOM-free comparison
        DeviceMemoryModel::Scope scope(device);
        GraphSage model(sageConfig());
        Adam adam(model.parameters(), 0.01f);
        TransferModel transfer;
        Trainer trainer(dataset, model, adam, &device, &transfer);
        trainer.setPipeline(pipeline);

        std::unique_ptr<FeatureCache> cache;
        if (cache_bytes > 0) {
            cache = std::make_unique<FeatureCache>(
                &device, cache_bytes,
                dataset.featureDim() * int64_t(sizeof(float)));
            trainer.setFeatureCache(cache.get());
        }

        RunResult result;
        for (int epoch = 0; epoch < epochs; ++epoch) {
            const EpochStats stats = trainer.trainMicroBatches(micros);
            result.losses.push_back(stats.loss);
            result.accuracies.push_back(stats.accuracy);
            result.inputNodes += stats.inputNodesProcessed;
            result.totalNodes += stats.totalNodesProcessed;
        }
        result.paramHash = hashParameters(model);
        result.transferBytes =
            obs::Metrics::counter("transfer.bytes").value() -
            bytes_before;
        result.savedBytes = transfer.savedBytes();
        if (cache)
            result.cacheStats = cache->stats();
        ThreadPool::setGlobalThreads(1);
        return result;
    }

    /** Row bytes of this dataset; sizes caches in whole rows. */
    int64_t
    rowBytes() const
    {
        return dataset.featureDim() * int64_t(sizeof(float));
    }

    Dataset dataset;
    std::vector<MultiLayerBatch> micros;
};

void
expectSameNumerics(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.losses, b.losses);
    EXPECT_EQ(a.accuracies, b.accuracies);
    EXPECT_EQ(a.inputNodes, b.inputNodes);
    EXPECT_EQ(a.totalNodes, b.totalNodes);
    EXPECT_EQ(a.paramHash, b.paramHash);
}

constexpr int kEpochs = 3;

TEST(FeatureCacheEquivalence, BitIdenticalAcrossSizesThreadsPipeline)
{
    Env env;
    ASSERT_GT(env.micros.size(), 1u);
    const RunResult uncached = env.run(1, false, kEpochs, 0);
    EXPECT_GT(uncached.losses.front(), 0.0); // real work happened

    const int64_t small = 64 * env.rowBytes();
    const int64_t infinite =
        env.dataset.graph.numNodes() * env.rowBytes();
    for (const int64_t cache_bytes : {int64_t(0), small, infinite})
        for (const int32_t threads : {1, 8})
            for (const bool pipeline : {false, true}) {
                const RunResult cached =
                    env.run(threads, pipeline, kEpochs, cache_bytes);
                SCOPED_TRACE("cache_bytes=" +
                             std::to_string(cache_bytes) +
                             " threads=" + std::to_string(threads) +
                             " pipeline=" +
                             std::to_string(pipeline));
                expectSameNumerics(uncached, cached);
            }
}

TEST(FeatureCacheEquivalence, TransferBytesNonIncreasingInCacheSize)
{
    Env env;
    const int64_t sizes[] = {0, 16 * env.rowBytes(),
                             64 * env.rowBytes(),
                             env.dataset.graph.numNodes() *
                                 env.rowBytes()};
    for (const int32_t threads : {1, 8})
        for (const bool pipeline : {false, true}) {
            int64_t previous = -1;
            for (const int64_t cache_bytes : sizes) {
                const RunResult result =
                    env.run(threads, pipeline, kEpochs, cache_bytes);
                SCOPED_TRACE("cache_bytes=" +
                             std::to_string(cache_bytes) +
                             " threads=" + std::to_string(threads) +
                             " pipeline=" +
                             std::to_string(pipeline));
                if (previous >= 0) {
                    EXPECT_LE(result.transferBytes, previous);
                }
                previous = result.transferBytes;
            }
        }

    // Strict saving once the cache holds the whole working set: every
    // epoch after the first re-reads rows the first epoch inserted.
    const RunResult uncached = env.run(1, false, kEpochs, 0);
    const RunResult infinite = env.run(
        1, false, kEpochs,
        env.dataset.graph.numNodes() * env.rowBytes());
    EXPECT_LT(infinite.transferBytes, uncached.transferBytes);
    EXPECT_GT(infinite.savedBytes, 0);
    EXPECT_EQ(infinite.savedBytes,
              infinite.cacheStats.hits * env.rowBytes());
}

TEST(FeatureCacheEquivalence, TransferBytesIndependentOfSchedule)
{
    // For a FIXED cache size, the byte count — i.e. the hit/miss and
    // eviction sequence — must not depend on thread count or
    // pipelining: deterministic eviction is what makes cached runs
    // reproducible at all.
    Env env;
    const int64_t cache_bytes = 48 * env.rowBytes();
    const RunResult serial = env.run(1, false, kEpochs, cache_bytes);
    const RunResult threaded = env.run(8, false, kEpochs, cache_bytes);
    const RunResult pipelined = env.run(8, true, kEpochs, cache_bytes);
    EXPECT_EQ(serial.transferBytes, threaded.transferBytes);
    EXPECT_EQ(serial.transferBytes, pipelined.transferBytes);
    EXPECT_EQ(serial.savedBytes, threaded.savedBytes);
    EXPECT_EQ(serial.savedBytes, pipelined.savedBytes);
    EXPECT_EQ(serial.cacheStats.hits, pipelined.cacheStats.hits);
    EXPECT_EQ(serial.cacheStats.misses, pipelined.cacheStats.misses);
    EXPECT_EQ(serial.cacheStats.evictions,
              pipelined.cacheStats.evictions);
}

TEST(FeatureCacheEquivalence, HitsAndMissesAccountForEveryInputRow)
{
    // Every gathered input row is exactly one hit or one miss: the
    // trainer consults the cache once per micro-batch input set.
    Env env;
    const RunResult cached =
        env.run(4, true, kEpochs, 32 * env.rowBytes());
    EXPECT_EQ(cached.cacheStats.hits + cached.cacheStats.misses,
              cached.inputNodes);
}

TEST(FeatureCacheEquivalence, SamplerContractUntouchedByCache)
{
    // The PR 3 golden-hash corpus (tests/golden) certifies sampler
    // output. Those goldens were NOT regenerated for this change, so
    // prove the precondition: a cached training run leaves the
    // sampler's output for a fixed seed bit-identical — the cache
    // never touches sampling state or the RNG stream.
    Env env;
    std::vector<int64_t> seeds(env.dataset.trainNodes.begin(),
                               env.dataset.trainNodes.begin() + 96);
    auto sampleHash = [&]() {
        NeighborSampler sampler(env.dataset.graph, {4, 6}, 21);
        return hashBatch(sampler.sample(seeds));
    };
    const uint64_t before = sampleHash();
    env.run(4, true, 2, 64 * env.rowBytes());
    const uint64_t after = sampleHash();
    EXPECT_EQ(before, after);
}

} // namespace
} // namespace betty
