/**
 * @file
 * THE paper invariant (§4.2.3): gradients accumulated over K
 * micro-batches equal the full-batch gradients, for every partitioner
 * and aggregator — hence training results are identical and no
 * hyperparameter changes are needed.
 */
#include <memory>

#include <gtest/gtest.h>

#include "core/betty.h"
#include "data/catalog.h"
#include "sampling/neighbor_sampler.h"
#include "tensor/autograd.h"
#include "train/trainer.h"

namespace betty {
namespace {

struct Env
{
    Env()
        : dataset(loadCatalogDataset("arxiv_like", 0.02, 21)),
          sampler(dataset.graph, {4, 6}, 22)
    {
        std::vector<int64_t> seeds(dataset.trainNodes.begin(),
                                   dataset.trainNodes.begin() + 80);
        full = sampler.sample(seeds);
    }

    Dataset dataset;
    NeighborSampler sampler;
    MultiLayerBatch full;
};

/** Copy of all parameter gradients. */
std::vector<Tensor>
snapshotGrads(const Module& model)
{
    std::vector<Tensor> grads;
    for (const auto& p : model.parameters())
        grads.push_back(p->grad.empty()
                            ? Tensor::zeros(p->value.rows(),
                                            p->value.cols())
                            : p->grad.clone());
    return grads;
}

/** Accumulate gradients of @p batches (no optimizer step). */
void
accumulate(GnnModel& model, const Dataset& ds,
           const std::vector<MultiLayerBatch>& batches)
{
    for (const auto& p : model.parameters())
        if (!p->grad.empty())
            p->grad.setZero();

    int64_t total = 0;
    for (const auto& b : batches)
        total += int64_t(b.outputNodes().size());

    for (const auto& batch : batches) {
        if (batch.outputNodes().empty())
            continue;
        Tensor feats(int64_t(batch.inputNodes().size()),
                     ds.featureDim());
        for (size_t i = 0; i < batch.inputNodes().size(); ++i)
            std::copy_n(ds.features.data() +
                            batch.inputNodes()[i] * ds.featureDim(),
                        ds.featureDim(),
                        feats.data() + int64_t(i) * ds.featureDim());
        std::vector<int32_t> labels;
        for (int64_t v : batch.outputNodes())
            labels.push_back(ds.labels[size_t(v)]);
        const auto logits =
            model.forward(batch, ag::constant(std::move(feats)));
        const auto loss =
            ag::softmaxCrossEntropy(logits, std::move(labels));
        const float w = float(double(batch.outputNodes().size()) /
                              double(total));
        ag::backward(ag::scale(loss, w));
    }
}

void
expectGradsEqual(const std::vector<Tensor>& a,
                 const std::vector<Tensor>& b, float tol)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i].sameShape(b[i]));
        const float scale = std::max(1e-6f, a[i].maxAbs());
        for (int64_t j = 0; j < a[i].numel(); ++j)
            ASSERT_NEAR(a[i].data()[j], b[i].data()[j], tol * scale)
                << "param " << i << " elem " << j;
    }
}

class GradEquivalence
    : public ::testing::TestWithParam<std::tuple<int32_t, int32_t>>
{
};

TEST_P(GradEquivalence, MicroEqualsFull)
{
    const auto [which_partitioner, k] = GetParam();
    Env env;

    SageConfig cfg;
    cfg.inputDim = env.dataset.featureDim();
    cfg.hiddenDim = 8;
    cfg.numClasses = env.dataset.numClasses;
    cfg.numLayers = 2;
    cfg.aggregator = AggregatorKind::Mean;
    GraphSage model(cfg);

    accumulate(model, env.dataset, {env.full});
    const auto full_grads = snapshotGrads(model);

    std::unique_ptr<OutputPartitioner> part;
    switch (which_partitioner) {
      case 0:
        part = std::make_unique<RangePartitioner>();
        break;
      case 1:
        part = std::make_unique<RandomPartitioner>(5);
        break;
      case 2:
        part = std::make_unique<MetisBaselinePartitioner>(
            env.dataset.graph);
        break;
      default:
        part = std::make_unique<BettyPartitioner>();
        break;
    }
    const auto micros =
        extractMicroBatches(env.full, part->partition(env.full, k));
    accumulate(model, env.dataset, micros);
    const auto micro_grads = snapshotGrads(model);

    expectGradsEqual(full_grads, micro_grads, 2e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    PartitionersAndK, GradEquivalence,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(2, 4, 8)));

/** Aggregator sweep with the Betty partitioner. */
class GradEquivalenceAgg
    : public ::testing::TestWithParam<AggregatorKind>
{
};

TEST_P(GradEquivalenceAgg, MicroEqualsFull)
{
    Env env;
    SageConfig cfg;
    cfg.inputDim = env.dataset.featureDim();
    cfg.hiddenDim = 6;
    cfg.numClasses = env.dataset.numClasses;
    cfg.numLayers = 2;
    cfg.aggregator = GetParam();
    GraphSage model(cfg);

    accumulate(model, env.dataset, {env.full});
    const auto full_grads = snapshotGrads(model);

    BettyPartitioner part;
    const auto micros =
        extractMicroBatches(env.full, part.partition(env.full, 4));
    accumulate(model, env.dataset, micros);
    // Pool's segment-max tie breaking can differ between a full batch
    // and its splits only if duplicated values tie; tolerance covers
    // float reassociation.
    expectGradsEqual(full_grads, snapshotGrads(model), 5e-4f);
}

INSTANTIATE_TEST_SUITE_P(Aggregators, GradEquivalenceAgg,
                         ::testing::Values(AggregatorKind::Mean,
                                           AggregatorKind::Sum,
                                           AggregatorKind::Pool,
                                           AggregatorKind::Lstm));

TEST(GradEquivalenceGat, MicroEqualsFull)
{
    Env env;
    GatConfig cfg;
    cfg.inputDim = env.dataset.featureDim();
    cfg.hiddenDim = 4;
    cfg.numClasses = env.dataset.numClasses;
    cfg.numLayers = 2;
    cfg.numHeads = 2;
    Gat model(cfg);

    accumulate(model, env.dataset, {env.full});
    const auto full_grads = snapshotGrads(model);
    BettyPartitioner part;
    const auto micros =
        extractMicroBatches(env.full, part.partition(env.full, 3));
    accumulate(model, env.dataset, micros);
    expectGradsEqual(full_grads, snapshotGrads(model), 5e-4f);
}

TEST(GradEquivalenceTraining, LossCurvesMatch)
{
    // Train twice from identical init: full-batch vs 4 micro-batches.
    // Loss trajectories must coincide step for step (Figure 13).
    Env env;
    SageConfig cfg;
    cfg.inputDim = env.dataset.featureDim();
    cfg.hiddenDim = 8;
    cfg.numClasses = env.dataset.numClasses;
    cfg.numLayers = 2;
    cfg.seed = 99;

    GraphSage full_model(cfg);
    GraphSage micro_model(cfg); // same seed -> same init
    Adam full_adam(full_model.parameters(), 0.01f);
    Adam micro_adam(micro_model.parameters(), 0.01f);
    Trainer full_trainer(env.dataset, full_model, full_adam);
    Trainer micro_trainer(env.dataset, micro_model, micro_adam);

    BettyPartitioner part;
    const auto micros =
        extractMicroBatches(env.full, part.partition(env.full, 4));

    for (int epoch = 0; epoch < 5; ++epoch) {
        const double full_loss =
            full_trainer.trainMicroBatches({env.full}).loss;
        const double micro_loss =
            micro_trainer.trainMicroBatches(micros).loss;
        EXPECT_NEAR(full_loss, micro_loss,
                    5e-3 * std::max(1.0, full_loss))
            << "epoch " << epoch;
    }
}

} // namespace
} // namespace betty
