/**
 * @file
 * Tests for the symmetric weighted graph used by REG and the
 * partitioner.
 */
#include <gtest/gtest.h>

#include "graph/weighted_graph.h"

namespace betty {
namespace {

TEST(WeightedGraph, SymmetricAdjacency)
{
    const WeightedGraph g(3, {{0, 1, 5}, {1, 2, 7}});
    ASSERT_EQ(g.degree(1), 2);
    EXPECT_EQ(g.degree(0), 1);
    EXPECT_EQ(g.neighbors(0)[0], 1);
    EXPECT_EQ(g.edgeWeights(0)[0], 5);
    // Edge visible from both endpoints with the same weight.
    bool found = false;
    const auto nbrs = g.neighbors(2);
    const auto wts = g.edgeWeights(2);
    for (size_t i = 0; i < nbrs.size(); ++i)
        if (nbrs[i] == 1) {
            EXPECT_EQ(wts[i], 7);
            found = true;
        }
    EXPECT_TRUE(found);
}

TEST(WeightedGraph, DuplicateEdgesAccumulate)
{
    const WeightedGraph g(2, {{0, 1, 2}, {1, 0, 3}});
    EXPECT_EQ(g.numEdges(), 1);
    EXPECT_EQ(g.edgeWeights(0)[0], 5);
}

TEST(WeightedGraph, SelfLoopsDropped)
{
    const WeightedGraph g(2, {{0, 0, 9}, {0, 1, 1}});
    EXPECT_EQ(g.numEdges(), 1);
    EXPECT_EQ(g.degree(0), 1);
}

TEST(WeightedGraph, DefaultVertexWeightsAreUnit)
{
    const WeightedGraph g(4, {});
    EXPECT_EQ(g.vertexWeight(2), 1);
    EXPECT_EQ(g.totalVertexWeight(), 4);
}

TEST(WeightedGraph, CustomVertexWeights)
{
    const WeightedGraph g(3, {}, {2, 3, 4});
    EXPECT_EQ(g.vertexWeight(0), 2);
    EXPECT_EQ(g.totalVertexWeight(), 9);
}

TEST(WeightedGraph, CutCost)
{
    const WeightedGraph g(4, {{0, 1, 10}, {1, 2, 1}, {2, 3, 10}});
    // Split {0,1} | {2,3}: only the weight-1 edge is cut.
    EXPECT_EQ(g.cutCost({0, 0, 1, 1}), 1);
    // Split {0,2} | {1,3}: both weight-10 edges cut plus the 1.
    EXPECT_EQ(g.cutCost({0, 1, 0, 1}), 21);
    // No split.
    EXPECT_EQ(g.cutCost({0, 0, 0, 0}), 0);
}

TEST(WeightedGraph, EmptyGraph)
{
    const WeightedGraph g;
    EXPECT_EQ(g.numNodes(), 0);
    EXPECT_EQ(g.numEdges(), 0);
}

TEST(WeightedGraphDeathTest, BadEndpointPanics)
{
    EXPECT_DEATH(WeightedGraph(2, {{0, 5, 1}}), "out of range");
}

} // namespace
} // namespace betty
