/**
 * @file
 * The critical-path analyzer (obs/critpath/).
 *
 * Three layers:
 *   - a hand-built golden pipeline DAG whose critical path, category
 *     attribution, and what-if projections are known in closed form;
 *   - property tests over randomly generated pipelined schedules:
 *     cp <= wall, cp >= the longest step, category shares sum to 1,
 *     what-if at scale 1.0 is the exact identity, and a smaller scale
 *     never lengthens the projected makespan;
 *   - a live recording through the real ThreadPool at 4 threads:
 *     spans carry ids and categories, spawn/join flow edges exist,
 *     and the analysis passes its own consistency gate.
 *
 * The typed-error taxonomy (dangling edge vs. cycle vs. schema) is
 * covered here at the API level; the betty_report CLI surface of the
 * same errors is exercised by the fixture tests in
 * tools/CMakeLists.txt over tests/data/critpath/.
 */
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/critpath/critical_path.h"
#include "obs/critpath/span_graph.h"
#include "obs/critpath/whatif.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace betty::obs::critpath {
namespace {

GraphSpan
span(uint64_t id, const char* name, const char* category,
     int32_t lane, int64_t start_us, int64_t dur_us)
{
    GraphSpan s;
    s.id = id;
    s.name = name;
    s.category = category ? category : "";
    s.lane = lane;
    s.startUs = start_us;
    s.durUs = dur_us;
    return s;
}

/** validate + segment a graph, failing the test on any error. */
SegmentGraph
mustBuild(SpanGraph* graph)
{
    CritpathError error;
    EXPECT_TRUE(validateSpanGraph(graph, &error)) << error.message;
    SegmentGraph segments;
    EXPECT_TRUE(buildSegmentGraph(*graph, &segments, &error))
        << error.message;
    return segments;
}

/**
 * The canonical two-lane pipeline (trainer's prefetch -> compute):
 *
 *   lane 0 (producer): P1 transfer [0,10)   P2 transfer [10,20)
 *   lane 1 (consumer): C1 compute  [10,25)  C2 compute  [25,40)
 *   flows: P1 -> C1 @10, P2 -> C2 @20
 *
 * Critical path: P1, C1, C2 (C2's binding predecessor is C1, which
 * ends at its start; P2 finished 5us earlier). cp = wall = 40us,
 * attribution: compute 30us (75%), transfer 10us (25%).
 */
SpanGraph
goldenPipeline()
{
    SpanGraph graph;
    graph.spans = {
        span(1, "train/prefetch", "transfer", 0, 0, 10),
        span(2, "train/prefetch", "transfer", 0, 10, 10),
        span(3, "train/forward", "compute", 1, 10, 15),
        span(4, "train/forward", "compute", 1, 25, 15),
    };
    graph.flows = {{1, 3, 10}, {2, 4, 20}};
    return graph;
}

TEST(GoldenDag, CriticalPathAndAttribution)
{
    SpanGraph graph = goldenPipeline();
    const SegmentGraph segments = mustBuild(&graph);
    const CriticalPathResult result =
        analyzeCriticalPath(graph, segments);

    EXPECT_EQ(result.wallUs, 40);
    EXPECT_EQ(result.cpUs, 40);
    EXPECT_DOUBLE_EQ(result.coverage, 1.0);

    int64_t compute_us = 0, transfer_us = 0, other_us = 0;
    for (const CategoryShare& share : result.categories) {
        if (share.category == "compute")
            compute_us = share.us;
        else if (share.category == "transfer")
            transfer_us = share.us;
        else
            other_us += share.us;
    }
    EXPECT_EQ(compute_us, 30);
    EXPECT_EQ(transfer_us, 10);
    EXPECT_EQ(other_us, 0);

    std::vector<std::string> violations;
    EXPECT_TRUE(validateCriticalPath(result, &violations))
        << (violations.empty() ? "" : violations.front());
}

TEST(GoldenDag, WhatIfProjectionsMatchClosedForm)
{
    SpanGraph graph = goldenPipeline();
    const SegmentGraph segments = mustBuild(&graph);

    // Halving transfers: P1 [0,5), P2 [5,10); C1 starts at 5, C2 at
    // max(C1 end 20, P2 end 10) = 20, finishing at 35.
    const WhatIfResult transfer_half =
        projectWhatIf(graph, segments, {"transfer", 0.5});
    EXPECT_DOUBLE_EQ(transfer_half.baselineModelUs, 40.0);
    EXPECT_DOUBLE_EQ(transfer_half.projectedUs, 35.0);

    // Halving compute: C1 [10,17.5), C2 starts at max(17.5, P2 end
    // 20) = 20 — the pipeline flips to transfer-bound.
    const WhatIfResult compute_half =
        projectWhatIf(graph, segments, {"compute", 0.5});
    EXPECT_DOUBLE_EQ(compute_half.projectedUs, 27.5);

    // Scaling a category the trace does not contain changes nothing.
    const WhatIfResult absent =
        projectWhatIf(graph, segments, {"sample", 0.25});
    EXPECT_DOUBLE_EQ(absent.projectedUs, absent.baselineModelUs);
}

TEST(GoldenDag, ExplicitStallSpansModelAsPureWaiting)
{
    // A consumer that wraps its wait in a "stall" span (the trainer's
    // train/pipeline_wait): lane 1 waits [0,10) for P1, computes
    // [10,20). Faster transfer must shorten the projected makespan —
    // the wait is synchronization, not fixed work.
    SpanGraph graph;
    graph.spans = {
        span(1, "train/prefetch", "transfer", 0, 0, 10),
        span(2, "train/pipeline_wait", "stall", 1, 0, 10),
        span(3, "train/forward", "compute", 1, 10, 10),
    };
    graph.flows = {{1, 3, 10}};
    const SegmentGraph segments = mustBuild(&graph);

    const WhatIfResult faster =
        projectWhatIf(graph, segments, {"transfer", 0.5});
    EXPECT_DOUBLE_EQ(faster.baselineModelUs, 20.0);
    EXPECT_DOUBLE_EQ(faster.projectedUs, 15.0);
}

// ------------------------------------------------- property tests

/**
 * A random but realistic pipelined schedule: a producer lane hands
 * off to a consumer lane stage by stage (consumer i starts when both
 * consumer i-1 and producer i are done), plus an independent third
 * lane of sequential work.
 */
SpanGraph
randomPipeline(std::mt19937_64& rng)
{
    std::uniform_int_distribution<int64_t> dur(1, 100);
    std::uniform_int_distribution<int64_t> gap(0, 20);
    std::uniform_int_distribution<int> stages(2, 12);

    SpanGraph graph;
    uint64_t next_id = 1;
    const int n = stages(rng);

    std::vector<int64_t> producer_end(size_t(n), 0);
    int64_t cursor = 0;
    for (int i = 0; i < n; ++i) {
        const int64_t d = dur(rng);
        graph.spans.push_back(span(next_id++, "train/prefetch",
                                   "transfer", 0, cursor, d));
        cursor += d;
        producer_end[size_t(i)] = cursor;
        cursor += gap(rng);
    }

    int64_t consumer_cursor = 0;
    for (int i = 0; i < n; ++i) {
        const int64_t start =
            std::max(consumer_cursor, producer_end[size_t(i)]);
        const int64_t d = dur(rng);
        graph.spans.push_back(span(next_id, "train/forward",
                                   "compute", 1, start, d));
        graph.flows.push_back({uint64_t(i + 1), next_id,
                               producer_end[size_t(i)]});
        ++next_id;
        consumer_cursor = start + d;
    }

    int64_t side_cursor = gap(rng);
    for (int i = 0; i < n / 2; ++i) {
        const int64_t d = dur(rng);
        graph.spans.push_back(span(next_id++, "sample/neighbor",
                                   "sample", 2, side_cursor, d));
        side_cursor += d + gap(rng);
    }
    return graph;
}

TEST(Properties, RandomSchedulesSatisfyTheInvariants)
{
    std::mt19937_64 rng(20260807);
    for (int trial = 0; trial < 50; ++trial) {
        SpanGraph graph = randomPipeline(rng);
        const SegmentGraph segments = mustBuild(&graph);
        const CriticalPathResult result =
            analyzeCriticalPath(graph, segments);

        std::vector<std::string> violations;
        EXPECT_TRUE(validateCriticalPath(result, &violations))
            << "trial " << trial << ": "
            << (violations.empty() ? "" : violations.front());
        EXPECT_LE(result.cpUs, result.wallUs) << "trial " << trial;
        EXPECT_GE(result.cpUs, result.longestStepUs)
            << "trial " << trial;

        double share_sum = 0.0;
        for (const CategoryShare& share : result.categories)
            share_sum += share.share;
        EXPECT_NEAR(share_sum, 1.0, 1e-9) << "trial " << trial;
    }
}

TEST(Properties, WhatIfIdentityAndMonotonicity)
{
    std::mt19937_64 rng(7);
    const char* const categories[] = {"transfer", "compute",
                                      "sample"};
    for (int trial = 0; trial < 50; ++trial) {
        SpanGraph graph = randomPipeline(rng);
        const SegmentGraph segments = mustBuild(&graph);
        for (const char* category : categories) {
            // Identity: scale 1.0 replays the identical schedule
            // (same floating-point operations), bit-exact.
            const WhatIfResult identity =
                projectWhatIf(graph, segments, {category, 1.0});
            EXPECT_EQ(identity.projectedUs, identity.baselineModelUs)
                << "trial " << trial << " " << category;
            EXPECT_DOUBLE_EQ(identity.projectedSpeedupPct, 0.0);

            // Monotone: a smaller scale never lengthens the
            // makespan, a larger one never shortens it.
            double previous = 0.0;
            for (const double scale : {0.1, 0.5, 1.0, 2.0}) {
                const WhatIfResult projected = projectWhatIf(
                    graph, segments, {category, scale});
                EXPECT_GE(projected.projectedUs, previous)
                    << "trial " << trial << " " << category << " x"
                    << scale;
                previous = projected.projectedUs;
            }
        }
    }
}

// ----------------------------------------------- typed error paths

TEST(Validation, DanglingEdgeIsTypedInALosslessTrace)
{
    SpanGraph graph;
    graph.spans = {span(1, "a", "compute", 0, 0, 10)};
    graph.flows = {{1, 99, 10}};
    CritpathError error;
    EXPECT_FALSE(validateSpanGraph(&graph, &error));
    EXPECT_EQ(error.kind, CritpathErrorKind::DanglingEdge);
    EXPECT_NE(error.message.find("99"), std::string::npos);
}

TEST(Validation, DanglingEdgeIsPrunedWhenEventsWereDropped)
{
    SpanGraph graph;
    graph.spans = {span(1, "a", "compute", 0, 0, 10)};
    graph.flows = {{1, 99, 10}};
    graph.droppedEvents = 3;
    CritpathError error;
    EXPECT_TRUE(validateSpanGraph(&graph, &error)) << error.message;
    EXPECT_TRUE(graph.flows.empty());
    EXPECT_EQ(graph.prunedFlows, 1);
}

TEST(Validation, DuplicateIdsAndNegativeDurationsAreMalformed)
{
    {
        SpanGraph graph;
        graph.spans = {span(1, "a", "compute", 0, 0, 10),
                       span(1, "b", "compute", 1, 0, 10)};
        CritpathError error;
        EXPECT_FALSE(validateSpanGraph(&graph, &error));
        EXPECT_EQ(error.kind, CritpathErrorKind::Malformed);
    }
    {
        SpanGraph graph;
        graph.spans = {span(1, "a", "compute", 0, 0, -5)};
        CritpathError error;
        EXPECT_FALSE(validateSpanGraph(&graph, &error));
        EXPECT_EQ(error.kind, CritpathErrorKind::Malformed);
    }
}

TEST(Validation, TimeInconsistentFlowsAreACycle)
{
    // B finished long before A started, yet one edge claims A feeds
    // B and another claims B feeds A: segment-level cycle.
    SpanGraph graph;
    graph.spans = {span(1, "a", "compute", 0, 50, 50),
                   span(2, "b", "compute", 1, 0, 30)};
    graph.flows = {{1, 2, 100}, {2, 1, 30}};
    CritpathError error;
    ASSERT_TRUE(validateSpanGraph(&graph, &error)) << error.message;
    SegmentGraph segments;
    EXPECT_FALSE(buildSegmentGraph(graph, &segments, &error));
    EXPECT_EQ(error.kind, CritpathErrorKind::Cycle);
}

TEST(TraceJson, SchemaErrorsAreTyped)
{
    JsonValue doc;
    std::string parse_error;
    SpanGraph graph;
    CritpathError error;

    ASSERT_TRUE(
        parseJson("{\"traceEvents\":[]}", doc, &parse_error));
    EXPECT_FALSE(buildFromTraceJson(doc, &graph, &error));
    EXPECT_EQ(error.kind, CritpathErrorKind::MissingSchema);

    ASSERT_TRUE(parseJson(
        "{\"schema_version\":99,\"traceEvents\":[]}", doc,
        &parse_error));
    EXPECT_FALSE(buildFromTraceJson(doc, &graph, &error));
    EXPECT_EQ(error.kind, CritpathErrorKind::BadSchema);
}

TEST(TraceJson, RoundTripsTheLiveTraceExport)
{
    Trace::clear();
    Trace::setEnabled(true);
    uint64_t producer_id = 0;
    {
        TraceSpan producer("train/prefetch", "transfer");
        producer_id = producer.id();
    }
    {
        TraceSpan consumer("train/forward", "compute");
        Trace::recordFlow(producer_id, consumer.id());
    }
    const std::string json = Trace::chromeTraceJson();
    Trace::setEnabled(false);
    Trace::clear();

    JsonValue doc;
    std::string parse_error;
    ASSERT_TRUE(parseJson(json, doc, &parse_error)) << parse_error;
    SpanGraph graph;
    CritpathError error;
    ASSERT_TRUE(buildFromTraceJson(doc, &graph, &error))
        << error.message;
    EXPECT_EQ(graph.spans.size(), 2u);
    ASSERT_EQ(graph.flows.size(), 1u);
    EXPECT_EQ(graph.flows[0].from, producer_id);
    EXPECT_EQ(spanCategory(graph.spans[0]), "transfer");
}

// ------------------------------------------------- live recording

TEST(LiveTrace, PipelinedPoolRunPassesTheConsistencyGate)
{
    ThreadPool::setGlobalThreads(4);
    Trace::clear();
    Trace::setEnabled(true);
    {
        TraceSpan root("epoch/sample", "sample");
        ThreadPool::global().parallelFor(
            0, 64, 4, [](int64_t lo, int64_t hi) {
                volatile int64_t sink = 0;
                for (int64_t i = lo; i < hi; ++i)
                    for (int64_t j = 0; j < 2000; ++j)
                        sink = sink + i * j;
            });
    }
    SpanGraph graph = buildFromLiveTrace();
    Trace::setEnabled(false);
    Trace::clear();
    ThreadPool::setGlobalThreads(1);

    // Every span got a nonzero id; the chunks inherited the sample
    // category; spawn and join edges both exist.
    ASSERT_GT(graph.spans.size(), 1u);
    bool chunk_categorized = false;
    for (const GraphSpan& s : graph.spans) {
        EXPECT_NE(s.id, 0u);
        if (s.name == "pool/chunk" &&
            spanCategory(s) == "sample")
            chunk_categorized = true;
    }
    EXPECT_TRUE(chunk_categorized);
    EXPECT_GE(graph.flows.size(), 2u);

    const SegmentGraph segments = mustBuild(&graph);
    const CriticalPathResult result =
        analyzeCriticalPath(graph, segments);
    std::vector<std::string> violations;
    EXPECT_TRUE(validateCriticalPath(result, &violations))
        << (violations.empty() ? "" : violations.front());
    EXPECT_GT(result.cpUs, 0);
    EXPECT_LE(result.cpUs, result.wallUs);
}

} // namespace
} // namespace betty::obs::critpath
