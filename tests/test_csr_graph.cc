/**
 * @file
 * Tests for the CSR graph substrate.
 */
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/csr_graph.h"
#include "test_helpers.h"

namespace betty {
namespace {

CsrGraph
triangle()
{
    return CsrGraph(3, {{0, 1}, {1, 2}, {2, 0}});
}

TEST(CsrGraph, Counts)
{
    const auto g = triangle();
    EXPECT_EQ(g.numNodes(), 3);
    EXPECT_EQ(g.numEdges(), 3);
}

TEST(CsrGraph, OutNeighbors)
{
    const auto g = triangle();
    ASSERT_EQ(g.outDegree(0), 1);
    EXPECT_EQ(g.outNeighbors(0)[0], 1);
    EXPECT_EQ(g.outNeighbors(2)[0], 0);
}

TEST(CsrGraph, InNeighbors)
{
    const auto g = triangle();
    ASSERT_EQ(g.inDegree(1), 1);
    EXPECT_EQ(g.inNeighbors(1)[0], 0);
}

TEST(CsrGraph, ParallelEdgesKept)
{
    const CsrGraph g(2, {{0, 1}, {0, 1}});
    EXPECT_EQ(g.numEdges(), 2);
    EXPECT_EQ(g.outDegree(0), 2);
    EXPECT_EQ(g.inDegree(1), 2);
}

TEST(CsrGraph, SelfLoopDropOption)
{
    const CsrGraph keep(2, {{0, 0}, {0, 1}});
    EXPECT_EQ(keep.numEdges(), 2);
    const CsrGraph drop(2, {{0, 0}, {0, 1}}, /*drop_self_loops=*/true);
    EXPECT_EQ(drop.numEdges(), 1);
    EXPECT_EQ(drop.inDegree(0), 0);
}

TEST(CsrGraph, IsolatedNodes)
{
    const CsrGraph g(5, {{0, 1}});
    EXPECT_EQ(g.outDegree(4), 0);
    EXPECT_EQ(g.inDegree(4), 0);
    EXPECT_TRUE(g.outNeighbors(4).empty());
}

TEST(CsrGraph, EmptyGraph)
{
    const CsrGraph g(0, {});
    EXPECT_EQ(g.numNodes(), 0);
    EXPECT_EQ(g.maxInDegree(), 0);
}

TEST(CsrGraph, MaxInDegree)
{
    const CsrGraph g(4, {{0, 3}, {1, 3}, {2, 3}, {0, 1}});
    EXPECT_EQ(g.maxInDegree(), 3);
}

TEST(CsrGraph, EdgeListRoundTrip)
{
    const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {0, 2}};
    const CsrGraph g(3, edges);
    auto out = g.edgeList();
    auto key = [](const Edge& e) { return e.src * 100 + e.dst; };
    std::vector<int64_t> got, want;
    for (const auto& e : out)
        got.push_back(key(e));
    for (const auto& e : edges)
        want.push_back(key(e));
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
}

TEST(CsrGraph, InDegreeBucketsTailAccumulates)
{
    // Node 3 has in-degree 3; with max_bucket=2 it lands in the tail.
    const CsrGraph g(4, {{0, 3}, {1, 3}, {2, 3}, {3, 0}});
    const auto buckets = g.inDegreeBuckets(2);
    ASSERT_EQ(buckets.size(), 3u);
    EXPECT_EQ(buckets[0], 2); // nodes 1 and 2
    EXPECT_EQ(buckets[1], 1); // node 0
    EXPECT_EQ(buckets[2], 1); // node 3 in the tail
}

TEST(CsrGraph, InDegreeBucketsRestrictedToNodes)
{
    const CsrGraph g(4, {{0, 3}, {1, 3}, {2, 3}, {3, 0}});
    const auto buckets = g.inDegreeBuckets(2, {3});
    EXPECT_EQ(buckets[0], 0);
    EXPECT_EQ(buckets[2], 1);
}

TEST(CsrGraph, ToyGraphSymmetry)
{
    const auto g = testutil::toyGraph();
    // Built from undirected pairs: in-degree equals out-degree.
    for (int64_t v = 0; v < g.numNodes(); ++v)
        EXPECT_EQ(g.inDegree(v), g.outDegree(v)) << "node " << v;
}

TEST(CsrGraphDeathTest, OutOfRangeEdgePanics)
{
    EXPECT_DEATH(CsrGraph(2, {{0, 5}}), "out of range");
}

TEST(CsrGraphDeathTest, OutOfRangeQueryPanics)
{
    const auto g = triangle();
    EXPECT_DEATH(g.outNeighbors(7), "out of range");
}

} // namespace
} // namespace betty
