/**
 * @file
 * Shared test utilities: numerical gradient checking and tiny graph
 * fixtures.
 */
#ifndef BETTY_TESTS_TEST_HELPERS_H
#define BETTY_TESTS_TEST_HELPERS_H

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "graph/csr_graph.h"
#include "sampling/block.h"
#include "tensor/autograd.h"

namespace betty::testutil {

/**
 * Compare analytic gradients against central finite differences.
 *
 * @param make_loss Rebuilds the scalar loss from the current parameter
 * values (called many times with perturbed parameters).
 * @param params Parameters to check.
 */
inline void
checkGradients(const std::function<ag::NodePtr()>& make_loss,
               const std::vector<ag::NodePtr>& params,
               float epsilon = 1e-2f, float tolerance = 2e-2f)
{
    // Analytic gradients.
    for (const auto& p : params)
        if (!p->grad.empty())
            p->grad.setZero();
    ag::backward(make_loss());

    for (size_t pi = 0; pi < params.size(); ++pi) {
        auto& p = params[pi];
        ASSERT_FALSE(p->grad.empty())
            << "param " << pi << " received no gradient";
        for (int64_t i = 0; i < p->value.numel(); ++i) {
            const float saved = p->value.data()[i];
            p->value.data()[i] = saved + epsilon;
            const float up = make_loss()->value.at(0, 0);
            p->value.data()[i] = saved - epsilon;
            const float down = make_loss()->value.at(0, 0);
            p->value.data()[i] = saved;
            const float numeric = (up - down) / (2.0f * epsilon);
            const float analytic = p->grad.data()[i];
            EXPECT_NEAR(analytic, numeric,
                        tolerance * std::max(1.0f, std::fabs(numeric)))
                << "param " << pi << " element " << i;
        }
    }
}

/** The Figure 7/8-style toy graph: 10 nodes, a few shared neighbors. */
inline CsrGraph
toyGraph()
{
    // Undirected pairs made directed both ways.
    const std::vector<std::pair<int64_t, int64_t>> pairs = {
        {0, 1}, {1, 2}, {1, 3}, {3, 5}, {5, 1}, {5, 6}, {6, 1},
        {6, 8}, {7, 1}, {7, 8}, {8, 9}, {4, 8}, {2, 4}, {0, 9},
    };
    std::vector<Edge> edges;
    for (auto [u, v] : pairs) {
        edges.push_back({u, v});
        edges.push_back({v, u});
    }
    return CsrGraph(10, edges);
}

/** A hand-built two-layer batch over toyGraph-like ids for block
 * tests: dst {0,1}, layer-1 sources fixed. */
inline MultiLayerBatch
tinyBatch()
{
    MultiLayerBatch batch;
    // Output layer: dst 0 aggregates {2, 3}; dst 1 aggregates {3, 4}.
    Block outer({0, 1}, {{2, 3}, {3, 4}});
    // Inner layer: dsts are outer's sources {0,1,2,3,4}.
    std::vector<int64_t> inner_dst = outer.srcNodes();
    Block inner(std::move(inner_dst),
                {{5}, {5, 6}, {6}, {7}, {2, 7}});
    batch.blocks = {inner, outer};
    return batch;
}

} // namespace betty::testutil

#endif // BETTY_TESTS_TEST_HELPERS_H
