/**
 * @file
 * Reference-implementation cross-checks for the aggregators: each
 * SageConv aggregation is recomputed with simple per-node loops and
 * compared element-wise, and the estimator's growth properties are
 * verified as monotonicity sweeps. These tests pin down semantics the
 * unit tests only sample (edge ordering of the LSTM sequence, mean
 * over multi-edges, pool's max-of-transformed).
 */
#include <cmath>

#include <gtest/gtest.h>

#include "data/catalog.h"
#include "nn/lstm_cell.h"
#include "nn/sage_conv.h"
#include "sampling/neighbor_sampler.h"
#include "test_helpers.h"

namespace betty {
namespace {

/** A modest random block with mixed degrees (including zero). */
Block
randomBlock(Rng& rng, int64_t num_dst, int64_t pool, int64_t max_deg)
{
    std::vector<int64_t> dsts;
    std::vector<std::vector<int64_t>> srcs;
    for (int64_t d = 0; d < num_dst; ++d) {
        dsts.push_back(d);
        const int64_t deg = int64_t(rng.uniformInt(uint64_t(max_deg + 1)));
        std::vector<int64_t> list;
        for (int64_t e = 0; e < deg; ++e)
            list.push_back(num_dst +
                           int64_t(rng.uniformInt(uint64_t(pool))));
        srcs.push_back(std::move(list));
    }
    return Block(std::move(dsts), srcs);
}

TEST(AggregationReference, MeanMatchesPerNodeLoop)
{
    Rng rng(1);
    const Block block = randomBlock(rng, 20, 30, 5);
    const Tensor h = Tensor::uniform(block.numSrc(), 4, rng);

    SageConv conv(4, 4, AggregatorKind::Mean, rng);
    // Isolate the aggregation: out weight = [0 | I] so the layer
    // output IS the neighbor aggregate (bias zero).
    auto params = conv.parameters();
    Tensor w = Tensor::zeros(8, 4);
    for (int64_t j = 0; j < 4; ++j)
        w.at(4 + j, j) = 1.0f;
    params[0]->value = std::move(w);
    params[1]->value = Tensor::zeros(1, 4);

    const auto y = conv.forward(block, ag::constant(h.clone()));
    for (int64_t d = 0; d < block.numDst(); ++d) {
        for (int64_t j = 0; j < 4; ++j) {
            double ref = 0.0;
            const auto edges = block.inEdges(d);
            for (int64_t s : edges)
                ref += h.at(s, j);
            if (!edges.empty())
                ref /= double(edges.size());
            ASSERT_NEAR(y->value.at(d, j), ref, 1e-4)
                << "dst " << d << " col " << j;
        }
    }
}

TEST(AggregationReference, SumCountsMultiEdges)
{
    // A destination that sampled the same source twice must add it
    // twice (multigraph semantics of sampled blocks).
    Rng rng(2);
    SageConv conv(1, 1, AggregatorKind::Sum, rng);
    auto params = conv.parameters();
    params[0]->value = Tensor::fromValues(2, 1, {0, 1});
    params[1]->value = Tensor::zeros(1, 1);
    const Block block({0}, {{1, 1, 2}});
    const auto h =
        ag::constant(Tensor::fromValues(3, 1, {0, 10, 100}));
    EXPECT_FLOAT_EQ(conv.forward(block, h)->value.at(0, 0), 120.0f);
}

TEST(AggregationReference, PoolMatchesPerNodeLoop)
{
    Rng rng(3);
    const Block block = randomBlock(rng, 15, 25, 4);
    const Tensor h = Tensor::uniform(block.numSrc(), 3, rng);

    SageConv conv(3, 3, AggregatorKind::Pool, rng);
    auto params = conv.parameters();
    // params: pool_fc (W, b), out (W, b). Isolate: out = [0 | I].
    const Tensor pool_w = params[0]->value.clone();
    const Tensor pool_b = params[1]->value.clone();
    Tensor w = Tensor::zeros(6, 3);
    for (int64_t j = 0; j < 3; ++j)
        w.at(3 + j, j) = 1.0f;
    params[2]->value = std::move(w);
    params[3]->value = Tensor::zeros(1, 3);

    const auto y = conv.forward(block, ag::constant(h.clone()));
    for (int64_t d = 0; d < block.numDst(); ++d) {
        for (int64_t j = 0; j < 3; ++j) {
            // max over relu(h[s] . W + b)[j], 0 if no neighbors.
            double best = 0.0;
            bool any = false;
            for (int64_t s : block.inEdges(d)) {
                double acc = pool_b.at(0, j);
                for (int64_t i = 0; i < 3; ++i)
                    acc += double(h.at(s, i)) * double(pool_w.at(i, j));
                acc = std::max(0.0, acc);
                best = any ? std::max(best, acc) : acc;
                any = true;
            }
            ASSERT_NEAR(y->value.at(d, j), any ? best : 0.0, 1e-4)
                << "dst " << d << " col " << j;
        }
    }
}

TEST(AggregationReference, LstmFollowsEdgeOrder)
{
    // The LSTM sequence is the destination's in-edge order; reversing
    // the neighbor list must (generically) change the result.
    Rng rng(4);
    SageConv conv(2, 2, AggregatorKind::Lstm, rng);
    const Tensor h = Tensor::uniform(4, 2, rng);

    const Block forward_block({0}, {{1, 2, 3}});
    const Block reversed_block({0}, {{3, 2, 1}});
    const auto a =
        conv.forward(forward_block, ag::constant(h.clone()));
    const auto b =
        conv.forward(reversed_block, ag::constant(h.clone()));
    double diff = 0.0;
    for (int64_t j = 0; j < 2; ++j)
        diff += std::abs(a->value.at(0, j) - b->value.at(0, j));
    EXPECT_GT(diff, 1e-6) << "order-sensitive recurrence expected";
}

TEST(AggregationReference, LstmMatchesManualUnroll)
{
    // One destination, degree 2: unroll the cell by hand through the
    // same weights and compare.
    Rng rng(5);
    SageConv conv(2, 2, AggregatorKind::Lstm, rng);
    const Tensor h = Tensor::uniform(3, 2, rng);
    const Block block({0}, {{1, 2}});

    // Isolate aggregation through the out projection.
    auto params = conv.parameters();
    // params: lstm (wx, wh, b), out (W, b).
    Tensor w = Tensor::zeros(4, 2);
    w.at(2, 0) = 1.0f;
    w.at(3, 1) = 1.0f;
    params[3]->value = std::move(w);
    params[4]->value = Tensor::zeros(1, 2);

    const auto y = conv.forward(block, ag::constant(h.clone()));

    // Manual unroll with a fresh cell sharing the SAME parameters.
    LstmCell cell(2, 2, rng);
    auto cell_params = cell.parameters();
    for (size_t i = 0; i < 3; ++i)
        cell_params[i]->value = params[i]->value.clone();
    auto state = cell.initialState(1);
    for (int64_t t = 0; t < 2; ++t) {
        Tensor x(1, 2);
        const int64_t src = block.inEdges(0)[size_t(t)];
        x.at(0, 0) = h.at(src, 0);
        x.at(0, 1) = h.at(src, 1);
        state = cell.forward(ag::constant(std::move(x)), state);
    }
    for (int64_t j = 0; j < 2; ++j)
        EXPECT_NEAR(y->value.at(0, j), state.h->value.at(0, j), 1e-5);
}

/** Estimator growth properties over model knobs. */
TEST(EstimatorGrowth, MonotoneInHiddenDepthAndConstant)
{
    const auto ds = loadCatalogDataset("arxiv_like", 0.05, 6);
    NeighborSampler sampler(ds.graph, {4, 6, 8}, 7);
    std::vector<int64_t> seeds(ds.trainNodes.begin(),
                               ds.trainNodes.begin() + 100);
    const auto full = sampler.sample(seeds);

    GnnSpec spec;
    spec.inputDim = ds.featureDim();
    spec.numClasses = ds.numClasses;
    spec.numLayers = 3;
    spec.aggregator = AggregatorKind::Mean;
    spec.paramCountGnn = 10000;

    int64_t previous = 0;
    for (int64_t hidden : {8, 16, 32, 64, 128}) {
        spec.hiddenDim = hidden;
        const int64_t peak = estimateBatchMemory(full, spec).peak;
        EXPECT_GT(peak, previous) << "hidden " << hidden;
        previous = peak;
    }

    // Depth: deeper prefixes of the same batch cost more.
    previous = 0;
    spec.hiddenDim = 32;
    for (int64_t layers = 1; layers <= 3; ++layers) {
        spec.numLayers = layers;
        MultiLayerBatch prefix;
        prefix.blocks.assign(full.blocks.end() - layers,
                             full.blocks.end());
        const int64_t peak = estimateBatchMemory(prefix, spec).peak;
        EXPECT_GT(peak, previous) << "layers " << layers;
        previous = peak;
    }
}

} // namespace
} // namespace betty
