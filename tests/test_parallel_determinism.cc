/**
 * @file
 * Determinism contract of the parallel batch-preparation engine:
 * sampled MultiLayerBatch blocks, REG edge lists, and Betty partition
 * assignments must be bit-identical for any global ThreadPool size
 * (1, 2, 8) and across repeated runs, on a power-law graph and a
 * bipartite-heavy hub graph that exercises the REG hubPairCap path.
 *
 * Each artifact is reduced to an FNV-1a hash; the expected values are
 * a committed golden corpus (tests/golden/, BETTY_GOLDEN_DIR), so any
 * platform- or schedule-dependent drift — not just thread-count
 * divergence within one process — fails loudly. Regenerate the corpus
 * with BETTY_UPDATE_GOLDEN=1 after an intentional output change.
 */
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/betty.h"
#include "data/synthetic.h"
#include "graph/csr_graph.h"
#include "partition/partitioner.h"
#include "partition/reg.h"
#include "sampling/neighbor_sampler.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace betty {
namespace {

// -------------------------------------------------------------------
// FNV-1a over int64 streams.

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void
fnvMix(uint64_t& hash, int64_t value)
{
    auto bits = uint64_t(value);
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (bits >> (8 * byte)) & 0xffu;
        hash *= kFnvPrime;
    }
}

template <typename Range>
void
fnvMixRange(uint64_t& hash, const Range& range)
{
    fnvMix(hash, int64_t(range.size()));
    for (const auto value : range)
        fnvMix(hash, int64_t(value));
}

uint64_t
hashBatch(const MultiLayerBatch& batch)
{
    uint64_t hash = kFnvOffset;
    fnvMix(hash, batch.numLayers());
    for (const auto& block : batch.blocks) {
        fnvMix(hash, block.numDst());
        fnvMixRange(hash, block.srcNodes());
        fnvMixRange(hash, block.edgeOffsets());
        fnvMixRange(hash, block.edgeSources());
    }
    return hash;
}

uint64_t
hashReg(const WeightedGraph& reg)
{
    uint64_t hash = kFnvOffset;
    fnvMix(hash, reg.numNodes());
    fnvMix(hash, reg.numEdges());
    for (int64_t v = 0; v < reg.numNodes(); ++v) {
        fnvMix(hash, reg.vertexWeight(v));
        fnvMixRange(hash, reg.neighbors(v));
        fnvMixRange(hash, reg.edgeWeights(v));
    }
    return hash;
}

uint64_t
hashGroups(const std::vector<std::vector<int64_t>>& groups)
{
    uint64_t hash = kFnvOffset;
    fnvMix(hash, int64_t(groups.size()));
    for (const auto& group : groups)
        fnvMixRange(hash, group);
    return hash;
}

// -------------------------------------------------------------------
// Golden corpus.

std::string
goldenPath(const std::string& graph_name)
{
    return std::string(BETTY_GOLDEN_DIR) + "/" + graph_name +
           ".golden";
}

std::map<std::string, uint64_t>
readGolden(const std::string& path)
{
    std::map<std::string, uint64_t> golden;
    std::ifstream in(path);
    std::string key, hex;
    while (in >> key >> hex)
        golden[key] = std::stoull(hex, nullptr, 16);
    return golden;
}

void
checkAgainstGolden(const std::string& graph_name,
                   const std::map<std::string, uint64_t>& actual)
{
    const std::string path = goldenPath(graph_name);
    if (std::getenv("BETTY_UPDATE_GOLDEN")) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        for (const auto& [key, value] : actual) {
            char hex[32];
            std::snprintf(hex, sizeof(hex), "%016llx",
                          (unsigned long long)value);
            out << key << " " << hex << "\n";
        }
        GTEST_SKIP() << "golden corpus regenerated: " << path;
    }
    const auto golden = readGolden(path);
    ASSERT_FALSE(golden.empty())
        << "missing golden corpus " << path
        << " (generate with BETTY_UPDATE_GOLDEN=1)";
    EXPECT_EQ(golden.size(), actual.size());
    for (const auto& [key, value] : actual) {
        const auto it = golden.find(key);
        ASSERT_NE(it, golden.end()) << "no golden entry for " << key;
        EXPECT_EQ(it->second, value)
            << key << " drifted from the committed golden hash";
    }
}

// -------------------------------------------------------------------
// Fixture graphs.

/** Heavy-tailed synthetic graph (products_like-style hubs). */
CsrGraph
powerLawGraph()
{
    SyntheticSpec spec;
    spec.name = "determinism_power_law";
    spec.numNodes = 1500;
    spec.avgDegree = 9.0;
    spec.powerLawAlpha = 2.1; // heavy tail: strong hubs
    spec.featureDim = 4;      // features unused here; keep it cheap
    return makeSyntheticDataset(spec, 91).graph;
}

/**
 * Bipartite-heavy graph: a small hub layer feeding a wide destination
 * layer, so the output block's sources have huge fan-out and REG
 * construction takes the hubPairCap sampling path.
 */
CsrGraph
bipartiteHeavyGraph()
{
    constexpr int64_t kHubs = 48;
    constexpr int64_t kDsts = 600;
    std::vector<Edge> edges;
    Rng rng(1234);
    for (int64_t d = 0; d < kDsts; ++d) {
        const int64_t dst = kHubs + d;
        const int64_t fan = 6 + int64_t(rng.next() % 10);
        for (int64_t e = 0; e < fan; ++e) {
            const int64_t hub = int64_t(rng.next() % uint64_t(kHubs));
            edges.push_back({hub, dst});
            edges.push_back({dst, hub}); // keep hubs reachable too
        }
    }
    return CsrGraph(kHubs + kDsts, edges);
}

std::vector<int64_t>
seedNodes(const CsrGraph& graph, int64_t count, int64_t first)
{
    std::vector<int64_t> seeds;
    for (int64_t v = first; v < graph.numNodes() &&
                            int64_t(seeds.size()) < count;
         ++v)
        seeds.push_back(v);
    return seeds;
}

// -------------------------------------------------------------------
// One full preparation pipeline run, reduced to hashes.

struct PrepHashes
{
    uint64_t batch = 0;
    uint64_t reg = 0;
    uint64_t groups = 0;
};

PrepHashes
runPreparation(const CsrGraph& graph,
               const std::vector<int64_t>& seeds)
{
    NeighborSampler sampler(graph, {4, 6}, 7);
    const auto batch = sampler.sample(seeds);
    RegOptions opts;
    opts.hubPairCap = 64; // low cap: force the hub guard path
    const auto reg = buildReg(batch.blocks.back(), opts);
    BettyPartitioner partitioner;
    const auto groups = partitioner.partition(batch, 8);
    PrepHashes hashes;
    hashes.batch = hashBatch(batch);
    hashes.reg = hashReg(reg);
    hashes.groups = hashGroups(groups);
    return hashes;
}

class ParallelDeterminism
    : public ::testing::TestWithParam<const char*>
{
  protected:
    void TearDown() override { ThreadPool::setGlobalThreads(1); }

    CsrGraph
    makeGraph() const
    {
        return std::string(GetParam()) == "power_law"
                   ? powerLawGraph()
                   : bipartiteHeavyGraph();
    }
};

TEST_P(ParallelDeterminism, BitIdenticalAcrossThreadCountsAndRuns)
{
    const CsrGraph graph = makeGraph();
    const auto seeds = seedNodes(graph, 384, graph.numNodes() / 3);

    ThreadPool::setGlobalThreads(1);
    const PrepHashes serial = runPreparation(graph, seeds);

    for (const int32_t threads : {1, 2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        for (int run = 0; run < 2; ++run) {
            const PrepHashes parallel = runPreparation(graph, seeds);
            EXPECT_EQ(parallel.batch, serial.batch)
                << "sampled blocks diverged at threads=" << threads
                << " run=" << run;
            EXPECT_EQ(parallel.reg, serial.reg)
                << "REG diverged at threads=" << threads
                << " run=" << run;
            EXPECT_EQ(parallel.groups, serial.groups)
                << "partition assignment diverged at threads="
                << threads << " run=" << run;
        }
    }

    checkAgainstGolden(GetParam(),
                       {{"batch", serial.batch},
                        {"reg", serial.reg},
                        {"groups", serial.groups}});
}

INSTANTIATE_TEST_SUITE_P(Graphs, ParallelDeterminism,
                         ::testing::Values("power_law",
                                           "bipartite_heavy"));

/** Element-wise REG comparison (sharper diagnostics than the hash):
 * the parallel per-block merge must be unobservable in the adjacency
 * arrays themselves, not just in a digest. */
TEST(ParallelDeterminism, RegAdjacencyElementwiseIdentical)
{
    const CsrGraph graph = bipartiteHeavyGraph();
    NeighborSampler sampler(graph, {4, 6}, 7);
    const auto batch =
        sampler.sample(seedNodes(graph, 256, graph.numNodes() / 3));

    ThreadPool::setGlobalThreads(1);
    const auto serial = buildReg(batch.blocks.back());
    ThreadPool::setGlobalThreads(8);
    const auto parallel = buildReg(batch.blocks.back());
    ThreadPool::setGlobalThreads(1);

    ASSERT_EQ(serial.numNodes(), parallel.numNodes());
    ASSERT_EQ(serial.numEdges(), parallel.numEdges());
    for (int64_t v = 0; v < serial.numNodes(); ++v) {
        EXPECT_EQ(serial.vertexWeight(v), parallel.vertexWeight(v));
        const auto s_nbrs = serial.neighbors(v);
        const auto p_nbrs = parallel.neighbors(v);
        const auto s_weights = serial.edgeWeights(v);
        const auto p_weights = parallel.edgeWeights(v);
        ASSERT_EQ(s_nbrs.size(), p_nbrs.size()) << "vertex " << v;
        for (size_t i = 0; i < s_nbrs.size(); ++i) {
            EXPECT_EQ(s_nbrs[i], p_nbrs[i])
                << "vertex " << v << " neighbor " << i;
            EXPECT_EQ(s_weights[i], p_weights[i])
                << "vertex " << v << " weight " << i;
        }
    }
}

} // namespace
} // namespace betty
