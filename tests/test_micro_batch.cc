/**
 * @file
 * Tests for micro-batch extraction — the bipartite-closure property
 * that underpins gradient equivalence.
 */
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/micro_batch.h"
#include "data/catalog.h"
#include "partition/partitioner.h"
#include "sampling/neighbor_sampler.h"
#include "test_helpers.h"

namespace betty {
namespace {

TEST(MicroBatch, TinyBatchSplit)
{
    const auto full = testutil::tinyBatch();
    const auto micros = extractMicroBatches(full, {{0}, {1}});
    ASSERT_EQ(micros.size(), 2u);
    EXPECT_EQ(micros[0].outputNodes().size(), 1u);
    EXPECT_EQ(micros[0].outputNodes()[0], 0);
    EXPECT_EQ(micros[1].outputNodes()[0], 1);
    // dst 0's sampled neighbors in the outer layer were {2, 3}.
    EXPECT_EQ(micros[0].blocks[1].inDegree(0), 2);
}

TEST(MicroBatch, PreservesSampledEdgesPerDestination)
{
    const auto ds = loadCatalogDataset("cora_like", 0.2, 2);
    NeighborSampler sampler(ds.graph, {3, 5}, 4);
    std::vector<int64_t> seeds(ds.trainNodes.begin(),
                               ds.trainNodes.begin() + 60);
    const auto full = sampler.sample(seeds);

    RandomPartitioner part(5);
    const auto groups = part.partition(full, 4);
    const auto micros = extractMicroBatches(full, groups);

    // For every output node, the outer-layer in-neighbor multiset in
    // its micro-batch must equal the full batch's.
    std::map<int64_t, std::multiset<int64_t>> full_nbrs;
    const Block& fblock = full.blocks.back();
    for (int64_t d = 0; d < fblock.numDst(); ++d) {
        auto& set = full_nbrs[fblock.dstNodes()[size_t(d)]];
        for (int64_t s : fblock.inEdges(d))
            set.insert(fblock.srcNodes()[size_t(s)]);
    }
    for (const auto& micro : micros) {
        const Block& mblock = micro.blocks.back();
        for (int64_t d = 0; d < mblock.numDst(); ++d) {
            std::multiset<int64_t> got;
            for (int64_t s : mblock.inEdges(d))
                got.insert(mblock.srcNodes()[size_t(s)]);
            EXPECT_EQ(got,
                      full_nbrs.at(mblock.dstNodes()[size_t(d)]));
        }
    }
}

TEST(MicroBatch, OutputsDisjointAndCovering)
{
    const auto ds = loadCatalogDataset("arxiv_like", 0.03, 3);
    NeighborSampler sampler(ds.graph, {4, 4}, 5);
    std::vector<int64_t> seeds(ds.trainNodes.begin(),
                               ds.trainNodes.begin() + 100);
    const auto full = sampler.sample(seeds);
    RangePartitioner part;
    const auto micros =
        extractMicroBatches(full, part.partition(full, 5));

    std::set<int64_t> seen;
    for (const auto& micro : micros)
        for (int64_t v : micro.outputNodes())
            EXPECT_TRUE(seen.insert(v).second);
    EXPECT_EQ(seen.size(), full.outputNodes().size());
}

TEST(MicroBatch, LayerChainingInvariantHolds)
{
    const auto full = testutil::tinyBatch();
    const auto micros = extractMicroBatches(full, {{0}, {1}});
    for (const auto& micro : micros) {
        const auto inner_dsts = micro.blocks[0].dstNodes();
        const auto& outer_srcs = micro.blocks[1].srcNodes();
        ASSERT_EQ(inner_dsts.size(), outer_srcs.size());
        for (size_t i = 0; i < outer_srcs.size(); ++i)
            EXPECT_EQ(inner_dsts[i], outer_srcs[i]);
    }
}

TEST(MicroBatch, SharedNeighborsDuplicatedAcrossMicroBatches)
{
    // Outputs 0 and 1 share source 5: splitting them must duplicate 5.
    Block outer({0, 1}, {{5, 6}, {5, 7}});
    // outer sources: 0, 1, 5, 6, 7 -> five inner destinations.
    Block inner(outer.srcNodes(), {{8}, {8}, {9}, {9}, {8}});
    MultiLayerBatch full;
    full.blocks = {inner, outer};

    const auto micros = extractMicroBatches(full, {{0}, {1}});
    const auto& in0 = micros[0].blocks[1].srcNodes();
    const auto& in1 = micros[1].blocks[1].srcNodes();
    EXPECT_TRUE(std::count(in0.begin(), in0.end(), 5));
    EXPECT_TRUE(std::count(in1.begin(), in1.end(), 5));
    EXPECT_GT(inputNodeRedundancy(full, micros), 0);
}

TEST(MicroBatch, SingleGroupHasZeroRedundancy)
{
    const auto full = testutil::tinyBatch();
    const auto outputs = full.outputNodes();
    const auto micros = extractMicroBatches(
        full, {{outputs.begin(), outputs.end()}});
    EXPECT_EQ(inputNodeRedundancy(full, micros), 0);
    EXPECT_EQ(micros[0].totalEdges(), full.totalEdges());
}

TEST(MicroBatch, EmptyGroupYieldsEmptyBatch)
{
    const auto full = testutil::tinyBatch();
    const auto micros = extractMicroBatches(full, {{0, 1}, {}});
    ASSERT_EQ(micros.size(), 2u);
    EXPECT_EQ(micros[1].outputNodes().size(), 0u);
}

TEST(MicroBatch, EdgeTotalsPartitionFullBatchOutputLayer)
{
    const auto ds = loadCatalogDataset("pubmed_like", 0.05, 6);
    NeighborSampler sampler(ds.graph, {3, 3}, 7);
    std::vector<int64_t> seeds(ds.trainNodes.begin(),
                               ds.trainNodes.begin() + 80);
    const auto full = sampler.sample(seeds);
    RandomPartitioner part(8);
    const auto micros =
        extractMicroBatches(full, part.partition(full, 4));
    int64_t outer_edges = 0;
    for (const auto& micro : micros)
        outer_edges += micro.blocks.back().numEdges();
    EXPECT_EQ(outer_edges, full.blocks.back().numEdges());
}

TEST(MicroBatchDeathTest, UnknownOutputNodePanics)
{
    const auto full = testutil::tinyBatch();
    EXPECT_DEATH(extractMicroBatches(full, {{12345}}),
                 "not a destination");
}

} // namespace
} // namespace betty
