/**
 * @file
 * The mid-epoch recovery loop (robustness/resilient_trainer.h).
 *
 * The acceptance contract: an injected mid-epoch capacity drop makes
 * the runtime roll back, re-plan at K+1 and complete the epoch, and
 * the final parameters are BIT-IDENTICAL to a run planned at the
 * larger K from the start under the shrunken capacity — rollback is
 * total (one optimizer step per accumulation step) and partitioning
 * is a pure function of (batch, K) on a cold start. Plus: injected
 * OOM and estimator under-prediction (alloc-scale ballast) recover
 * the same way, transfer faults retry without changing results,
 * recovery exhaustion skips the epoch instead of crashing, corrupt
 * feature rows are detected and repaired, and a fault-free run
 * through the resilient runtime is bit-identical to the plain
 * trainer with zero recovery actions.
 *
 * Transfer faults are keyed to each micro-batch's logical
 * program-order position (see test_fault.cc), so these schedules are
 * exact under any thread count or pipeline mode; the runs here stay
 * serial only to keep the suite fast and the traces simple.
 */
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/betty.h"
#include "data/catalog.h"
#include "memory/device_memory.h"
#include "memory/transfer_model.h"
#include "obs/metrics.h"
#include "robustness/resilient_trainer.h"
#include "sampling/neighbor_sampler.h"
#include "train/trainer.h"
#include "util/fault.h"

namespace betty {
namespace {

uint64_t
hashParameters(const GnnModel& model)
{
    uint64_t hash = 1469598103934665603ull;
    for (const auto& param : model.parameters())
        for (int64_t i = 0; i < param->value.numel(); ++i) {
            uint32_t bits;
            std::memcpy(&bits, &param->value.data()[i],
                        sizeof(bits));
            hash = (hash ^ bits) * 1099511628211ull;
        }
    return hash;
}

/** Everything one resilient epoch can be compared on. */
struct RunOutput
{
    ResilientEpochResult result;
    RecoveryReport report;
    uint64_t paramHash = 0;
    int64_t transferFailedAttempts = 0;
};

struct Env
{
    Env() : dataset(loadCatalogDataset("cora_like", 0.2, 11))
    {
        NeighborSampler sampler(dataset.graph, {4, 6}, 12);
        std::vector<int64_t> seeds(dataset.trainNodes.begin(),
                                   dataset.trainNodes.begin() + 120);
        full = sampler.sample(seeds);

        // The estimated peak of the unsplit batch: capacities in the
        // tests are expressed relative to it so no magic byte counts
        // are baked in.
        GraphSage model(sageConfig());
        BettyPartitioner partitioner;
        MemoryAwarePlanner probe(model.memorySpec(), 0);
        const auto plan = probe.plan(full, partitioner, 1);
        peakAtK1 = plan.maxEstimatedPeak;
        EXPECT_GT(peakAtK1, 0);
    }

    SageConfig
    sageConfig() const
    {
        SageConfig cfg;
        cfg.inputDim = dataset.featureDim();
        cfg.hiddenDim = 16;
        cfg.numClasses = dataset.numClasses;
        cfg.numLayers = 2;
        cfg.seed = 5;
        return cfg;
    }

    /**
     * One resilient epoch from a fresh (seeded) model/optimizer/
     * device. @p faults is a spec for util/fault.h ("" = none).
     */
    RunOutput
    run(const std::string& faults, int64_t capacity,
        int32_t initial_k = 1, RecoveryPolicy policy = {},
        uint64_t fault_seed = 0, Dataset* mutable_ds = nullptr)
    {
        if (faults.empty()) {
            fault::Injector::clear();
        } else {
            fault::FaultPlan plan;
            std::string error;
            EXPECT_TRUE(
                fault::FaultPlan::parse(faults, plan, &error))
                << error;
            plan.seed = fault_seed;
            fault::Injector::install(std::move(plan));
        }

        const Dataset& ds = mutable_ds ? *mutable_ds : dataset;
        DeviceMemoryModel device(capacity);
        DeviceMemoryModel::Scope scope(device);
        GraphSage model(sageConfig());
        Adam adam(model.parameters(), 0.01f);
        TransferModel transfer;
        Trainer trainer(ds, model, adam, &device, &transfer);
        trainer.setPipeline(false);
        BettyPartitioner partitioner;
        ResilientTrainer resilient(trainer, model.memorySpec(),
                                   partitioner, &device, policy);
        if (mutable_ds)
            resilient.setFeatureSource(&mutable_ds->features);

        RunOutput out;
        out.result = resilient.trainEpoch(full, 1, initial_k);
        out.report = resilient.report();
        out.paramHash = hashParameters(model);
        out.transferFailedAttempts = transfer.failedAttempts();
        fault::Injector::clear();
        return out;
    }

    Dataset dataset;
    MultiLayerBatch full;
    int64_t peakAtK1 = 0;
};

Env&
env()
{
    static Env instance;
    return instance;
}

TEST(ResilientTrainer, FaultFreeRunIsBitIdenticalToPlainTrainer)
{
    Env& e = env();
    const int64_t capacity = e.peakAtK1;

    // Plain trainer, planned directly.
    uint64_t plain_hash = 0;
    EpochStats plain_stats;
    int32_t plain_k = 0;
    {
        fault::Injector::clear();
        DeviceMemoryModel device(capacity);
        DeviceMemoryModel::Scope scope(device);
        GraphSage model(e.sageConfig());
        Adam adam(model.parameters(), 0.01f);
        TransferModel transfer;
        Trainer trainer(e.dataset, model, adam, &device, &transfer);
        trainer.setPipeline(false);
        BettyPartitioner partitioner;
        MemoryAwarePlanner planner(model.memorySpec(), capacity);
        const auto plan = planner.plan(e.full, partitioner, 1);
        ASSERT_TRUE(plan.fits);
        plain_k = plan.k;
        plain_stats = trainer.trainMicroBatches(plan.microBatches);
        plain_hash = hashParameters(model);
    }

    const RunOutput resilient = e.run("", capacity);
    ASSERT_FALSE(resilient.result.skipped);
    EXPECT_EQ(resilient.result.plan.k, plain_k);
    EXPECT_EQ(resilient.result.stats.loss, plain_stats.loss);
    EXPECT_EQ(resilient.result.stats.accuracy,
              plain_stats.accuracy);
    EXPECT_EQ(resilient.result.stats.peakBytes,
              plain_stats.peakBytes);
    EXPECT_EQ(resilient.result.stats.transferSeconds,
              plain_stats.transferSeconds);
    EXPECT_EQ(resilient.paramHash, plain_hash);

    // Zero recovery actions: the wrapper must be invisible.
    EXPECT_EQ(resilient.report.replans, 0);
    EXPECT_EQ(resilient.report.oomRetries, 0);
    EXPECT_EQ(resilient.report.transferRetries, 0);
    EXPECT_EQ(resilient.report.batchesSkipped, 0);
    EXPECT_EQ(resilient.report.corruptRowsRepaired, 0);
    EXPECT_EQ(resilient.report.faultsInjected, 0);
}

TEST(ResilientTrainer, CapacityDropRecoversAtLargerK)
{
    Env& e = env();
    const int64_t capacity = e.peakAtK1; // K=1 fits exactly
    const int64_t dropped =
        std::max<int64_t>(1, int64_t(double(capacity) * 0.5));

    obs::Metrics::setEnabled(true);
    const int64_t replans_before =
        obs::Metrics::counter("recover.replans").value();

    // Capacity halves right before micro-batch 0 runs: the planned
    // micro-batch (estimated peak == old capacity) no longer fits,
    // the step aborts, and the runtime re-plans at K+1 against the
    // shrunken capacity.
    const RunOutput faulted =
        e.run("capacity-drop=0.5@epoch1.mb0", capacity);
    ASSERT_FALSE(faulted.result.skipped);
    EXPECT_GE(faulted.report.replans, 1);
    EXPECT_GE(faulted.report.oomRetries, 1);
    EXPECT_EQ(faulted.report.faultsInjected, 1);
    EXPECT_GT(faulted.result.plan.k, 1);

    // recover.replans is also visible as a metric.
    EXPECT_GE(obs::Metrics::counter("recover.replans").value(),
              replans_before + 1);

    // THE determinism contract: identical parameters to a run planned
    // at the larger K from the start under the dropped capacity.
    const RunOutput clean = e.run("", dropped, /*initial_k=*/2);
    ASSERT_FALSE(clean.result.skipped);
    EXPECT_EQ(clean.result.plan.k, faulted.result.plan.k);
    EXPECT_EQ(clean.result.stats.loss, faulted.result.stats.loss);
    EXPECT_EQ(clean.paramHash, faulted.paramHash);
}

TEST(ResilientTrainer, InjectedOomTriggersReplanAndCompletes)
{
    Env& e = env();
    const int64_t capacity = e.peakAtK1;

    const RunOutput faulted = e.run("oom@epoch1.mb0", capacity);
    ASSERT_FALSE(faulted.result.skipped);
    EXPECT_EQ(faulted.report.replans, 1);
    EXPECT_EQ(faulted.report.oomRetries, 1);
    EXPECT_GT(faulted.result.plan.k, 1);

    // Same capacity, planned at the final K from the start.
    const RunOutput clean =
        e.run("", capacity, faulted.result.plan.k);
    EXPECT_EQ(clean.result.plan.k, faulted.result.plan.k);
    EXPECT_EQ(clean.paramHash, faulted.paramHash);
}

TEST(ResilientTrainer, AllocScaleBallastOvershootsAndRecovers)
{
    Env& e = env();
    const int64_t capacity = e.peakAtK1;

    // Micro-batch 0 "actually allocates" 2x its estimate: the extra
    // ballast overshoots capacity (estimate == capacity), the review
    // hook aborts, and the re-planned epoch completes fault-free.
    const RunOutput faulted =
        e.run("alloc-scale=2.0@epoch1.mb0", capacity);
    ASSERT_FALSE(faulted.result.skipped);
    EXPECT_GE(faulted.report.replans, 1);
    EXPECT_EQ(faulted.report.faultsInjected, 1);
    EXPECT_FALSE(faulted.result.stats.aborted);
    EXPECT_TRUE(std::isfinite(faulted.result.stats.loss));

    const RunOutput clean =
        e.run("", capacity, faulted.result.plan.k);
    EXPECT_EQ(clean.paramHash, faulted.paramHash);
}

TEST(ResilientTrainer, TransferFaultRetriesWithoutChangingResults)
{
    Env& e = env();
    const int64_t capacity = e.peakAtK1;

    const RunOutput clean = e.run("", capacity);
    const RunOutput faulted =
        e.run("transfer-fail@epoch1:retries=2", capacity);

    ASSERT_FALSE(faulted.result.skipped);
    EXPECT_EQ(faulted.transferFailedAttempts, 2);
    EXPECT_EQ(faulted.report.transferRetries, 2);
    EXPECT_EQ(faulted.report.replans, 0); // retried in place
    // Each failed attempt still pays the link latency...
    EXPECT_GT(faulted.result.stats.transferSeconds,
              clean.result.stats.transferSeconds);
    // ...but the training outcome is untouched.
    EXPECT_EQ(faulted.result.plan.k, clean.result.plan.k);
    EXPECT_EQ(faulted.result.stats.loss, clean.result.stats.loss);
    EXPECT_EQ(faulted.paramHash, clean.paramHash);
}

TEST(ResilientTrainer, ExhaustionSkipsTheEpochInsteadOfCrashing)
{
    Env& e = env();

    // A capacity nothing can ever fit (a handful of bytes): the
    // planner reports fits=false at max K and the epoch is skipped
    // with the parameters untouched.
    const uint64_t fresh_hash = [&] {
        GraphSage model(e.sageConfig());
        return hashParameters(model);
    }();
    RecoveryPolicy tight;
    tight.maxK = 64; // keep the futile search cheap
    const RunOutput skipped = e.run("", 1024, 1, tight);
    EXPECT_TRUE(skipped.result.skipped);
    EXPECT_EQ(skipped.report.batchesSkipped, 1);
    EXPECT_EQ(skipped.paramHash, fresh_hash);

    // Bounded retries: with a zero re-plan budget a single injected
    // OOM exhausts recovery — skip, again without crashing.
    RecoveryPolicy no_retries;
    no_retries.maxReplanAttempts = 0;
    const RunOutput exhausted =
        e.run("oom@epoch1.mb0", e.peakAtK1, 1, no_retries);
    EXPECT_TRUE(exhausted.result.skipped);
    EXPECT_EQ(exhausted.report.oomRetries, 1);
    EXPECT_EQ(exhausted.report.replans, 0);
    EXPECT_EQ(exhausted.report.batchesSkipped, 1);
    EXPECT_EQ(exhausted.paramHash, fresh_hash);
}

TEST(ResilientTrainer, CorruptFeatureRowsAreDetectedAndRepaired)
{
    Env& e = env();
    // A private dataset copy: the fault poisons feature rows in
    // place and the repair zeroes them, so the shared Env dataset
    // must stay pristine.
    Dataset ds = loadCatalogDataset("cora_like", 0.2, 11);

    const RunOutput faulted =
        e.run("corrupt-features=0.05@epoch1", /*capacity=*/0,
              /*initial_k=*/1, {}, /*fault_seed=*/9, &ds);
    ASSERT_FALSE(faulted.result.skipped);
    EXPECT_TRUE(std::isfinite(faulted.result.stats.loss));
    EXPECT_EQ(faulted.report.faultsInjected, 1);

    // Every poisoned row was found: the corrupt-row plan is a pure
    // function of (seed, epoch), so the test can recompute the exact
    // expected count (input node ids are unique within the batch).
    const int64_t expected = std::max<int64_t>(
        1,
        int64_t(double(e.full.inputNodes().size()) * 0.05));
    EXPECT_EQ(faulted.report.corruptRowsRepaired, expected);

    // And the repair left no NaNs behind.
    for (int64_t i = 0; i < ds.features.numel(); ++i)
        ASSERT_TRUE(std::isfinite(ds.features.data()[i]));
}

} // namespace
} // namespace betty
