/**
 * @file
 * Tests for the simulated device memory model and its RAII scope.
 */
#include <gtest/gtest.h>

#include "memory/device_memory.h"
#include "obs/memprof.h"
#include "obs/metrics.h"

namespace betty {
namespace {

/** Enable metrics for one test, restoring the prior state after. */
class MetricsEnabledScope
{
  public:
    MetricsEnabledScope() : was_(obs::Metrics::enabled())
    {
        obs::Metrics::setEnabled(true);
    }
    ~MetricsEnabledScope() { obs::Metrics::setEnabled(was_); }

  private:
    bool was_;
};

int64_t
oomEventCount()
{
    return obs::Metrics::counter("device.oom_events").value();
}

TEST(DeviceMemory, LiveAndPeakTracking)
{
    DeviceMemoryModel device;
    device.onAlloc(100);
    device.onAlloc(50);
    EXPECT_EQ(device.liveBytes(), 150);
    EXPECT_EQ(device.peakBytes(), 150);
    device.onFree(100);
    EXPECT_EQ(device.liveBytes(), 50);
    EXPECT_EQ(device.peakBytes(), 150) << "peak is sticky";
    device.onAlloc(60);
    EXPECT_EQ(device.peakBytes(), 150);
    device.onAlloc(100);
    EXPECT_EQ(device.peakBytes(), 210);
}

TEST(DeviceMemory, ResetPeakKeepsLive)
{
    DeviceMemoryModel device;
    device.onAlloc(100);
    device.onFree(60);
    device.resetPeak();
    EXPECT_EQ(device.peakBytes(), 40);
    EXPECT_EQ(device.liveBytes(), 40);
}

TEST(DeviceMemory, ResetPeakReOomsIfStillOverCapacity)
{
    DeviceMemoryModel device(50);
    device.onAlloc(80);
    device.resetPeak();
    EXPECT_TRUE(device.oomOccurred())
        << "still over capacity after reset";
    EXPECT_EQ(device.worstOvershoot(), 30);
}

TEST(DeviceMemory, CapacityAccessor)
{
    DeviceMemoryModel device(12345);
    EXPECT_EQ(device.capacity(), 12345);
}

TEST(DeviceMemory, GibConversion)
{
    EXPECT_EQ(gib(1.0), int64_t(1) << 30);
    EXPECT_EQ(gib(24.0), int64_t(24) << 30);
    EXPECT_EQ(gib(0.5), int64_t(1) << 29);
}

TEST(DeviceMemory, ScopeInstallsAndRestores)
{
    DeviceMemoryModel device;
    EXPECT_EQ(allocationObserver(), nullptr);
    {
        DeviceMemoryModel::Scope scope(device);
        EXPECT_EQ(allocationObserver(), &device);
        {
            Tensor t(5, 5);
            EXPECT_EQ(device.liveBytes(), 100);
        }
        EXPECT_EQ(device.liveBytes(), 0);
    }
    EXPECT_EQ(allocationObserver(), nullptr);
}

TEST(DeviceMemory, NestedScopes)
{
    DeviceMemoryModel outer, inner;
    DeviceMemoryModel::Scope outer_scope(outer);
    Tensor a(1, 1);
    {
        DeviceMemoryModel::Scope inner_scope(inner);
        Tensor b(1, 1);
        EXPECT_EQ(inner.liveBytes(), 4);
    }
    EXPECT_EQ(allocationObserver(), &outer);
    EXPECT_EQ(outer.liveBytes(), 4);
    EXPECT_EQ(inner.liveBytes(), 0);
}

TEST(DeviceMemory, UnmatchedFreeClampsAtZero)
{
    DeviceMemoryModel device;
    // A model installed mid-lifetime can see frees for storage it
    // never observed being allocated; live must clamp at zero, not
    // underflow and poison later peak comparisons.
    device.onFree(100);
    EXPECT_EQ(device.liveBytes(), 0);
    device.onAlloc(40);
    device.onFree(100);
    EXPECT_EQ(device.liveBytes(), 0);
    device.onAlloc(25);
    EXPECT_EQ(device.liveBytes(), 25);
    EXPECT_EQ(device.peakBytes(), 40) << "peak unaffected by clamp";
}

TEST(DeviceMemory, UnmatchedFreeClampsPerCategory)
{
    DeviceMemoryModel device;
    device.onAlloc(100, obs::MemCategory::Hidden);
    // Freeing more Gradients than were ever allocated must not debit
    // the Hidden bytes.
    device.onFree(60, obs::MemCategory::Gradients);
    EXPECT_EQ(device.liveBytes(), 100);
    EXPECT_EQ(device.liveBytes(obs::MemCategory::Hidden), 100);
    EXPECT_EQ(device.liveBytes(obs::MemCategory::Gradients), 0);
}

TEST(DeviceMemory, PerCategorySumsEqualTotal)
{
    DeviceMemoryModel device;
    device.onAlloc(100, obs::MemCategory::InputFeatures);
    device.onAlloc(50, obs::MemCategory::Blocks);
    device.onAlloc(30, obs::MemCategory::Hidden);
    device.onFree(20, obs::MemCategory::Hidden);
    int64_t sum = 0;
    for (size_t c = 0; c < obs::kMemCategoryCount; ++c)
        sum += device.liveBytes(obs::MemCategory(c));
    EXPECT_EQ(sum, device.liveBytes());
    EXPECT_EQ(device.liveBytes(obs::MemCategory::InputFeatures), 100);
    EXPECT_EQ(device.peakBytes(obs::MemCategory::Hidden), 30);
    EXPECT_EQ(device.liveBytes(obs::MemCategory::Hidden), 10);
}

TEST(DeviceMemory, CategoryScopeRoutesTensorAllocations)
{
    DeviceMemoryModel device;
    DeviceMemoryModel::Scope scope(device);
    {
        obs::MemCategoryScope mem_scope(obs::MemCategory::Gradients);
        Tensor t(4, 4);
        EXPECT_EQ(device.liveBytes(obs::MemCategory::Gradients), 64);
        EXPECT_EQ(device.liveBytes(obs::MemCategory::Uncategorized),
                  0);
    }
    // The free pairs with the alloc's snapshotted category even
    // though the scope has unwound.
    EXPECT_EQ(device.liveBytes(obs::MemCategory::Gradients), 0);
    EXPECT_EQ(device.liveBytes(), 0);
}

TEST(DeviceMemory, UnmatchedFreeChargesOnlyFreedBytesToMetrics)
{
    // Regression: onFree used to charge the REQUESTED bytes to the
    // device.free_bytes metric even when the live clamp meant fewer
    // bytes were actually released, so cumulative free_bytes could
    // exceed cumulative alloc_bytes.
    MetricsEnabledScope metrics;
    const int64_t freed_before =
        obs::Metrics::counter("device.free_bytes").value();
    DeviceMemoryModel device;
    device.onAlloc(40);
    device.onFree(100); // clamped: only 40 live bytes existed
    EXPECT_EQ(obs::Metrics::counter("device.free_bytes").value() -
                  freed_before,
              40);
    EXPECT_EQ(device.liveBytes(), 0);
}

TEST(DeviceMemory, SetCapacityTransitionsOomEpisodes)
{
    MetricsEnabledScope metrics;
    const int64_t before = oomEventCount();
    DeviceMemoryModel device(1000);
    device.onAlloc(500);
    EXPECT_EQ(device.oomEpisodeCount(), 0);

    // A shrink below live usage is a NEW episode starting now.
    device.setCapacity(300);
    EXPECT_EQ(device.oomEpisodeCount(), 1);
    EXPECT_EQ(oomEventCount() - before, 1);
    EXPECT_TRUE(device.oomOccurred());
    EXPECT_EQ(device.worstOvershoot(), 200);

    // Growing back above live closes the episode...
    device.setCapacity(800);
    device.onAlloc(100); // 600 live, under 800: same non-episode
    EXPECT_EQ(device.oomEpisodeCount(), 1);

    // ...and a second shrink is a second episode, not a continuation.
    device.setCapacity(300);
    EXPECT_EQ(device.oomEpisodeCount(), 2);
    EXPECT_EQ(oomEventCount() - before, 2);
}

TEST(DeviceMemory, OomEpisodeCountWorksWithMetricsDisabled)
{
    // EpochStats::oomEvents relies on the episode counter even when
    // the metrics registry is off.
    const bool was = obs::Metrics::enabled();
    obs::Metrics::setEnabled(false);
    DeviceMemoryModel device(100);
    device.onAlloc(150);
    device.onFree(150);
    device.onAlloc(150);
    EXPECT_EQ(device.oomEpisodeCount(), 2);
    obs::Metrics::setEnabled(was);
}

TEST(DeviceMemory, OomEpisodesCountedPerEpisode)
{
    MetricsEnabledScope metrics;
    const int64_t before = oomEventCount();
    DeviceMemoryModel device(100);
    device.onAlloc(150); // episode 1 starts
    device.onAlloc(10);  // same episode: no new event
    EXPECT_EQ(oomEventCount() - before, 1);
    device.onFree(160); // back under capacity: episode 1 ends
    EXPECT_TRUE(device.oomOccurred()) << "latch survives the episode";
    device.onAlloc(150); // episode 2
    EXPECT_EQ(oomEventCount() - before, 2);
}

TEST(DeviceMemory, ResetPeakDoesNotRecountOngoingEpisode)
{
    MetricsEnabledScope metrics;
    const int64_t before = oomEventCount();
    DeviceMemoryModel device(50);
    device.onAlloc(80);
    EXPECT_EQ(oomEventCount() - before, 1);
    device.resetPeak();
    EXPECT_TRUE(device.oomOccurred())
        << "still over capacity after reset";
    device.onAlloc(10); // the SAME over-capacity stretch continues
    EXPECT_EQ(oomEventCount() - before, 1)
        << "ongoing episode must not be double-counted";
}

TEST(DeviceMemory, OomLatchSurvivesResetWindow)
{
    DeviceMemoryModel device(50);
    device.onAlloc(80);
    device.onFree(80);
    device.resetWindow();
    EXPECT_TRUE(device.oomOccurred())
        << "resetWindow must not clear the OOM latch";
    EXPECT_EQ(device.worstOvershoot(), 30);
    device.resetPeak();
    EXPECT_FALSE(device.oomOccurred())
        << "resetPeak clears the latch once back under capacity";
    EXPECT_EQ(device.worstOvershoot(), 0);
}

TEST(DeviceMemory, TimelineSamplesAreInternallyConsistent)
{
    MetricsEnabledScope metrics;
    DeviceMemoryModel device;
    device.onAlloc(100, obs::MemCategory::InputFeatures);
    device.onAlloc(50, obs::MemCategory::Hidden);
    device.onFree(30, obs::MemCategory::Hidden);
    ASSERT_FALSE(device.timeline().empty());
    for (const auto& sample : device.timeline()) {
        int64_t sum = 0;
        for (int64_t bytes : sample.live)
            sum += bytes;
        EXPECT_EQ(sum, sample.totalLive);
    }
    EXPECT_EQ(device.timeline().back().totalLive, 120);
}

} // namespace
} // namespace betty
