/**
 * @file
 * Tests for the simulated device memory model and its RAII scope.
 */
#include <gtest/gtest.h>

#include "memory/device_memory.h"

namespace betty {
namespace {

TEST(DeviceMemory, LiveAndPeakTracking)
{
    DeviceMemoryModel device;
    device.onAlloc(100);
    device.onAlloc(50);
    EXPECT_EQ(device.liveBytes(), 150);
    EXPECT_EQ(device.peakBytes(), 150);
    device.onFree(100);
    EXPECT_EQ(device.liveBytes(), 50);
    EXPECT_EQ(device.peakBytes(), 150) << "peak is sticky";
    device.onAlloc(60);
    EXPECT_EQ(device.peakBytes(), 150);
    device.onAlloc(100);
    EXPECT_EQ(device.peakBytes(), 210);
}

TEST(DeviceMemory, ResetPeakKeepsLive)
{
    DeviceMemoryModel device;
    device.onAlloc(100);
    device.onFree(60);
    device.resetPeak();
    EXPECT_EQ(device.peakBytes(), 40);
    EXPECT_EQ(device.liveBytes(), 40);
}

TEST(DeviceMemory, ResetPeakReOomsIfStillOverCapacity)
{
    DeviceMemoryModel device(50);
    device.onAlloc(80);
    device.resetPeak();
    EXPECT_TRUE(device.oomOccurred())
        << "still over capacity after reset";
    EXPECT_EQ(device.worstOvershoot(), 30);
}

TEST(DeviceMemory, CapacityAccessor)
{
    DeviceMemoryModel device(12345);
    EXPECT_EQ(device.capacity(), 12345);
}

TEST(DeviceMemory, GibConversion)
{
    EXPECT_EQ(gib(1.0), int64_t(1) << 30);
    EXPECT_EQ(gib(24.0), int64_t(24) << 30);
    EXPECT_EQ(gib(0.5), int64_t(1) << 29);
}

TEST(DeviceMemory, ScopeInstallsAndRestores)
{
    DeviceMemoryModel device;
    EXPECT_EQ(allocationObserver(), nullptr);
    {
        DeviceMemoryModel::Scope scope(device);
        EXPECT_EQ(allocationObserver(), &device);
        {
            Tensor t(5, 5);
            EXPECT_EQ(device.liveBytes(), 100);
        }
        EXPECT_EQ(device.liveBytes(), 0);
    }
    EXPECT_EQ(allocationObserver(), nullptr);
}

TEST(DeviceMemory, NestedScopes)
{
    DeviceMemoryModel outer, inner;
    DeviceMemoryModel::Scope outer_scope(outer);
    Tensor a(1, 1);
    {
        DeviceMemoryModel::Scope inner_scope(inner);
        Tensor b(1, 1);
        EXPECT_EQ(inner.liveBytes(), 4);
    }
    EXPECT_EQ(allocationObserver(), &outer);
    EXPECT_EQ(outer.liveBytes(), 4);
    EXPECT_EQ(inner.liveBytes(), 0);
}

} // namespace
} // namespace betty
