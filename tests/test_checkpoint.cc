/**
 * @file
 * Checkpoint/resume (robustness/checkpoint.h): the kill-and-resume
 * contract — training E epochs straight produces bit-identical
 * parameters and loss trajectory to training E1 epochs, checkpointing,
 * constructing a FRESH process state, restoring, and training the
 * remaining epochs — plus the Adam round-trip and the typed rejection
 * of truncated/corrupted/mismatched checkpoint files.
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/betty.h"
#include "data/catalog.h"
#include "memory/device_memory.h"
#include "memory/transfer_model.h"
#include "partition/partitioner.h"
#include "robustness/checkpoint.h"
#include "sampling/neighbor_sampler.h"
#include "train/multi_device.h"
#include "train/trainer.h"
#include "util/fault.h"

namespace betty {
namespace {

std::string
tmpPath(const std::string& name)
{
    return ::testing::TempDir() + "/" + name;
}

uint64_t
hashParameters(const GnnModel& model)
{
    uint64_t hash = 1469598103934665603ull;
    for (const auto& param : model.parameters())
        for (int64_t i = 0; i < param->value.numel(); ++i) {
            uint32_t bits;
            std::memcpy(&bits, &param->value.data()[i],
                        sizeof(bits));
            hash = (hash ^ bits) * 1099511628211ull;
        }
    return hash;
}

/** A process state: everything train_cli builds before its epoch
 * loop. Construct a fresh one to simulate a kill + restart. */
struct Process
{
    Process(const Dataset& ds, int64_t capacity)
        : dataset(ds), model(sageConfig(ds)),
          adam(model.parameters(), 0.01f), device(capacity),
          trainer(dataset, model, adam, &device, &transfer)
    {
    }

    static SageConfig
    sageConfig(const Dataset& ds)
    {
        SageConfig cfg;
        cfg.inputDim = ds.featureDim();
        cfg.hiddenDim = 16;
        cfg.numClasses = ds.numClasses;
        cfg.numLayers = 2;
        cfg.seed = 5;
        return cfg;
    }

    /** One train_cli-style epoch: fresh per-epoch sampler (sampling
     * is a pure function of the epoch seed, which makes resume
     * trivial), plan, accumulate, step. Returns the epoch loss. */
    double
    runEpoch(int epoch, int32_t& last_k)
    {
        NeighborSampler sampler(dataset.graph, {4, 6},
                                uint64_t(epoch));
        std::vector<int64_t> seeds(dataset.trainNodes.begin(),
                                   dataset.trainNodes.begin() + 120);
        const auto full = sampler.sample(seeds);
        MemoryAwarePlanner planner(model.memorySpec(),
                                   device.capacity());
        const auto plan = planner.plan(full, partitioner, last_k);
        EXPECT_TRUE(plan.fits);
        last_k = plan.k;
        DeviceMemoryModel::Scope scope(device);
        return trainer.trainMicroBatches(plan.microBatches).loss;
    }

    const Dataset& dataset;
    GraphSage model;
    Adam adam;
    DeviceMemoryModel device;
    TransferModel transfer;
    Trainer trainer;
    BettyPartitioner partitioner;
};

struct CheckpointEnv : public ::testing::Test
{
    static const Dataset&
    dataset()
    {
        static Dataset ds = loadCatalogDataset("cora_like", 0.2, 11);
        return ds;
    }

    /** A device capacity that forces K > 1 but always fits: 70% of
     * the estimated peak of the unsplit epoch-1 batch. */
    static int64_t
    capacity()
    {
        static int64_t bytes = [] {
            NeighborSampler sampler(dataset().graph, {4, 6}, 1);
            std::vector<int64_t> seeds(
                dataset().trainNodes.begin(),
                dataset().trainNodes.begin() + 120);
            const auto full = sampler.sample(seeds);
            GraphSage model(Process::sageConfig(dataset()));
            BettyPartitioner partitioner;
            MemoryAwarePlanner probe(model.memorySpec(), 0);
            const auto plan = probe.plan(full, partitioner, 1);
            return int64_t(double(plan.maxEstimatedPeak) * 0.7);
        }();
        return bytes;
    }
};

TEST_F(CheckpointEnv, KillAndResumeIsBitIdentical)
{
    const std::string path = tmpPath("resume.ckpt");
    constexpr int kTotalEpochs = 4;
    constexpr int kKillAfter = 2;

    // Reference: one process, all epochs.
    std::vector<double> straight_losses;
    uint64_t straight_hash = 0;
    {
        Process p(dataset(), capacity());
        int32_t last_k = 1;
        for (int epoch = 1; epoch <= kTotalEpochs; ++epoch)
            straight_losses.push_back(p.runEpoch(epoch, last_k));
        straight_hash = hashParameters(p.model);
    }

    // First life: train, checkpoint, "die".
    int32_t saved_k = 1;
    {
        Process p(dataset(), capacity());
        int32_t last_k = 1;
        std::vector<double> losses;
        for (int epoch = 1; epoch <= kKillAfter; ++epoch)
            losses.push_back(p.runEpoch(epoch, last_k));
        for (int i = 0; i < kKillAfter; ++i)
            EXPECT_EQ(losses[size_t(i)], straight_losses[size_t(i)]);
        const auto checkpoint = captureCheckpoint(
            p.model, p.adam, kKillAfter, last_k,
            uint64_t(kKillAfter), 0);
        ASSERT_TRUE(saveCheckpoint(checkpoint, path).ok());
        saved_k = last_k;
    }

    // Second life: fresh process state, restore, finish the run.
    {
        Process p(dataset(), capacity());
        TrainCheckpoint checkpoint;
        ASSERT_TRUE(loadCheckpoint(checkpoint, path).ok());
        ASSERT_TRUE(
            restoreCheckpoint(checkpoint, p.model, p.adam).ok());
        EXPECT_EQ(checkpoint.epochsCompleted, kKillAfter);
        EXPECT_EQ(checkpoint.lastK, saved_k);

        int32_t last_k = int32_t(checkpoint.lastK);
        for (int epoch = kKillAfter + 1; epoch <= kTotalEpochs;
             ++epoch) {
            const double loss = p.runEpoch(epoch, last_k);
            EXPECT_EQ(loss, straight_losses[size_t(epoch - 1)])
                << "loss diverged at resumed epoch " << epoch;
        }
        EXPECT_EQ(hashParameters(p.model), straight_hash);
    }
    std::remove(path.c_str());
}

TEST_F(CheckpointEnv, MultiDeviceDropThenKillAndResume)
{
    // Checkpoint/resume x multi-device: a 4-device run loses device 1
    // in epoch 1, checkpoints after epoch 1, "dies", and resumes on a
    // FRESH engine sized to the survivors. Checkpoints deliberately
    // persist no device state — placement never touches numerics, so
    // the resumed run must stay bit-identical to the uninterrupted
    // survivor run (and, transitively, to every other placement).
    const std::string path = tmpPath("multi_resume.ckpt");
    constexpr int kTotalEpochs = 4;
    constexpr int kKillAfter = 1;

    // One fixed micro-batch set for every epoch, as in
    // test_multi_device_equivalence.cc — the sampler contract is
    // proven there; this test isolates the checkpoint story.
    NeighborSampler sampler(dataset().graph, {4, 6}, 12);
    std::vector<int64_t> seeds(dataset().trainNodes.begin(),
                               dataset().trainNodes.begin() + 160);
    BettyPartitioner partitioner;
    const auto full = sampler.sample(seeds);
    const auto micros =
        extractMicroBatches(full, partitioner.partition(full, 8));

    auto makeModel = [&] {
        return GraphSage(Process::sageConfig(dataset()));
    };
    auto installDrop = [] {
        fault::FaultPlan plan;
        ASSERT_TRUE(fault::FaultPlan::parse("device-drop=1@epoch1",
                                            plan, nullptr));
        fault::Injector::install(std::move(plan));
    };

    // Reference: one process, drop in epoch 1, all epochs straight.
    std::vector<double> straight_losses;
    uint64_t straight_hash = 0;
    {
        GraphSage model = makeModel();
        Adam adam(model.parameters(), 0.01f);
        MultiDeviceConfig config;
        config.numDevices = 4;
        MultiDeviceEngine engine(dataset(), model, adam, config);
        installDrop();
        for (int epoch = 1; epoch <= kTotalEpochs; ++epoch) {
            const MultiDeviceStats stats =
                engine.trainEpoch(micros, epoch);
            straight_losses.push_back(stats.loss);
            if (epoch == 1) {
                EXPECT_EQ(stats.deviceDrops, 1);
                EXPECT_EQ(stats.liveDevices, 3);
            }
        }
        straight_hash = hashParameters(model);
        fault::Injector::clear();
    }

    // First life: drop, train one epoch, checkpoint, "die".
    {
        GraphSage model = makeModel();
        Adam adam(model.parameters(), 0.01f);
        MultiDeviceConfig config;
        config.numDevices = 4;
        MultiDeviceEngine engine(dataset(), model, adam, config);
        installDrop();
        for (int epoch = 1; epoch <= kKillAfter; ++epoch) {
            const double loss =
                engine.trainEpoch(micros, epoch).loss;
            EXPECT_EQ(loss, straight_losses[size_t(epoch - 1)]);
        }
        fault::Injector::clear();
        const auto checkpoint = captureCheckpoint(
            model, adam, kKillAfter, /*last_k=*/8,
            uint64_t(kKillAfter), 0);
        ASSERT_TRUE(saveCheckpoint(checkpoint, path).ok());
    }

    // Second life: fresh everything, sized to the SURVIVORS (the
    // dead device is gone from the fleet a restarted job would see).
    {
        GraphSage model = makeModel();
        Adam adam(model.parameters(), 0.01f);
        TrainCheckpoint checkpoint;
        ASSERT_TRUE(loadCheckpoint(checkpoint, path).ok());
        ASSERT_TRUE(
            restoreCheckpoint(checkpoint, model, adam).ok());
        EXPECT_EQ(checkpoint.epochsCompleted, kKillAfter);

        MultiDeviceConfig config;
        config.numDevices = 3;
        MultiDeviceEngine engine(dataset(), model, adam, config);
        for (int epoch = kKillAfter + 1; epoch <= kTotalEpochs;
             ++epoch) {
            const double loss =
                engine.trainEpoch(micros, epoch).loss;
            EXPECT_EQ(loss, straight_losses[size_t(epoch - 1)])
                << "loss diverged at resumed epoch " << epoch;
        }
        EXPECT_EQ(hashParameters(model), straight_hash);
    }
    std::remove(path.c_str());
}

TEST_F(CheckpointEnv, CaptureRestoreRoundTripsAdamState)
{
    Process p(dataset(), capacity());
    int32_t last_k = 1;
    p.runEpoch(1, last_k); // non-trivial moments + step count

    const auto checkpoint =
        captureCheckpoint(p.model, p.adam, 1, last_k, 1, 0);
    EXPECT_EQ(checkpoint.adamStepCount, p.adam.stepCount());
    ASSERT_EQ(checkpoint.params.size(),
              p.model.parameters().size());
    ASSERT_EQ(checkpoint.adamM.size(), checkpoint.params.size());

    // Restoring into a FRESH model/optimizer reproduces the hash and
    // the optimizer cursor.
    Process q(dataset(), capacity());
    ASSERT_NE(hashParameters(q.model), hashParameters(p.model));
    ASSERT_TRUE(restoreCheckpoint(checkpoint, q.model, q.adam).ok());
    EXPECT_EQ(hashParameters(q.model), hashParameters(p.model));
    EXPECT_EQ(q.adam.stepCount(), p.adam.stepCount());
    for (size_t i = 0; i < q.adam.firstMoments().size(); ++i) {
        const Tensor& a = q.adam.firstMoments()[i];
        const Tensor& b = p.adam.firstMoments()[i];
        ASSERT_TRUE(a.sameShape(b));
        for (int64_t j = 0; j < a.numel(); ++j)
            ASSERT_EQ(a.data()[j], b.data()[j]);
    }
}

TEST_F(CheckpointEnv, FileRoundTripPreservesEveryField)
{
    Process p(dataset(), capacity());
    int32_t last_k = 1;
    p.runEpoch(1, last_k);
    const std::string path = tmpPath("roundtrip.ckpt");
    const auto original =
        captureCheckpoint(p.model, p.adam, 7, 3, 42, 19);
    ASSERT_TRUE(saveCheckpoint(original, path).ok());

    TrainCheckpoint loaded;
    ASSERT_TRUE(loadCheckpoint(loaded, path).ok());
    std::remove(path.c_str());
    EXPECT_EQ(loaded.epochsCompleted, 7);
    EXPECT_EQ(loaded.lastK, 3);
    EXPECT_EQ(loaded.samplerSeed, 42u);
    EXPECT_EQ(loaded.samplerCallIndex, 19u);
    EXPECT_EQ(loaded.adamStepCount, original.adamStepCount);
    ASSERT_EQ(loaded.params.size(), original.params.size());
    for (size_t i = 0; i < loaded.params.size(); ++i)
        for (int64_t j = 0; j < loaded.params[i].numel(); ++j)
            ASSERT_EQ(loaded.params[i].data()[j],
                      original.params[i].data()[j]);
}

TEST_F(CheckpointEnv, TypedLoadErrors)
{
    TrainCheckpoint out;

    // Missing file.
    EXPECT_EQ(loadCheckpoint(out, "/nonexistent/x.ckpt").error,
              IoError::NotFound);

    // Wrong magic.
    const std::string bad_magic = tmpPath("bad_magic.ckpt");
    {
        std::FILE* f = std::fopen(bad_magic.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const char junk[64] = "definitely not a checkpoint";
        std::fwrite(junk, 1, sizeof(junk), f);
        std::fclose(f);
    }
    EXPECT_EQ(loadCheckpoint(out, bad_magic).error,
              IoError::BadMagic);
    std::remove(bad_magic.c_str());

    // A valid checkpoint, then truncate / flip a bit.
    Process p(dataset(), capacity());
    int32_t last_k = 1;
    p.runEpoch(1, last_k);
    const auto checkpoint =
        captureCheckpoint(p.model, p.adam, 1, last_k, 1, 0);
    const std::string good = tmpPath("good.ckpt");
    ASSERT_TRUE(saveCheckpoint(checkpoint, good).ok());

    std::string bytes;
    {
        std::FILE* f = std::fopen(good.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        char buffer[1 << 12];
        size_t got;
        while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0)
            bytes.append(buffer, got);
        std::fclose(f);
    }
    auto writeBytes = [&](const std::string& path,
                          const std::string& data) {
        std::FILE* f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite(data.data(), 1, data.size(), f);
        std::fclose(f);
    };

    // Truncation breaks the checksum (or the frame itself).
    const std::string truncated = tmpPath("truncated.ckpt");
    writeBytes(truncated, bytes.substr(0, bytes.size() / 2));
    const IoStatus trunc_status = loadCheckpoint(out, truncated);
    EXPECT_TRUE(trunc_status.error == IoError::CorruptValues ||
                trunc_status.error == IoError::Truncated)
        << ioErrorName(trunc_status.error);
    std::remove(truncated.c_str());

    // Single flipped payload bit -> checksum mismatch.
    std::string corrupt = bytes;
    corrupt[corrupt.size() / 2] ^= 0x40;
    const std::string corrupted = tmpPath("corrupt.ckpt");
    writeBytes(corrupted, corrupt);
    EXPECT_EQ(loadCheckpoint(out, corrupted).error,
              IoError::CorruptValues);
    std::remove(corrupted.c_str());
    std::remove(good.c_str());
}

TEST_F(CheckpointEnv, RestoreIntoMismatchedModelFailsUntouched)
{
    Process p(dataset(), capacity());
    int32_t last_k = 1;
    p.runEpoch(1, last_k);
    const auto checkpoint =
        captureCheckpoint(p.model, p.adam, 1, last_k, 1, 0);

    // A differently-sized model must be refused, weights untouched.
    SageConfig cfg = Process::sageConfig(dataset());
    cfg.hiddenDim = 8;
    GraphSage other(cfg);
    Adam other_adam(other.parameters(), 0.01f);
    const uint64_t before = hashParameters(other);
    EXPECT_EQ(restoreCheckpoint(checkpoint, other, other_adam).error,
              IoError::ShapeMismatch);
    EXPECT_EQ(hashParameters(other), before);
}

} // namespace
} // namespace betty
