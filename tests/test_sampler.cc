/**
 * @file
 * Tests for multi-layer neighbor sampling.
 */
#include <set>

#include <gtest/gtest.h>

#include "data/catalog.h"
#include "sampling/neighbor_sampler.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace betty {
namespace {

TEST(NeighborSampler, OneLayerFullTakesAllNeighbors)
{
    const auto g = testutil::toyGraph();
    NeighborSampler sampler(g, {-1});
    const auto batch = sampler.sample({1});
    ASSERT_EQ(batch.numLayers(), 1);
    const Block& block = batch.blocks[0];
    EXPECT_EQ(block.numDst(), 1);
    EXPECT_EQ(block.inDegree(0), g.inDegree(1));
}

TEST(NeighborSampler, FanoutBoundsInDegree)
{
    const auto g = testutil::toyGraph();
    NeighborSampler sampler(g, {2});
    const auto batch = sampler.sample({1, 8});
    for (int64_t d = 0; d < batch.blocks[0].numDst(); ++d)
        EXPECT_LE(batch.blocks[0].inDegree(d), 2);
}

TEST(NeighborSampler, SampledNeighborsAreRealNeighbors)
{
    const auto g = testutil::toyGraph();
    NeighborSampler sampler(g, {3});
    const auto batch = sampler.sample({1, 6, 8});
    const Block& block = batch.blocks[0];
    for (int64_t d = 0; d < block.numDst(); ++d) {
        const int64_t dst_global = block.dstNodes()[size_t(d)];
        const auto real = g.inNeighbors(dst_global);
        const std::set<int64_t> real_set(real.begin(), real.end());
        for (int64_t s : block.inEdges(d)) {
            const int64_t src_global = block.srcNodes()[size_t(s)];
            EXPECT_TRUE(real_set.count(src_global))
                << src_global << " is not an in-neighbor of "
                << dst_global;
        }
    }
}

TEST(NeighborSampler, SampledNeighborsDistinct)
{
    const auto g = testutil::toyGraph();
    NeighborSampler sampler(g, {3});
    const auto batch = sampler.sample({1});
    const Block& block = batch.blocks[0];
    std::set<int64_t> seen;
    for (int64_t s : block.inEdges(0))
        EXPECT_TRUE(seen.insert(s).second) << "duplicate neighbor";
}

TEST(NeighborSampler, TwoLayerChainInvariant)
{
    const auto g = testutil::toyGraph();
    NeighborSampler sampler(g, {2, 2});
    const auto batch = sampler.sample({1, 8});
    ASSERT_EQ(batch.numLayers(), 2);
    const auto inner_dsts = batch.blocks[0].dstNodes();
    const auto& outer_srcs = batch.blocks[1].srcNodes();
    ASSERT_EQ(inner_dsts.size(), outer_srcs.size());
    for (size_t i = 0; i < outer_srcs.size(); ++i)
        EXPECT_EQ(inner_dsts[i], outer_srcs[i]);
}

TEST(NeighborSampler, OutputNodesAreTheSeeds)
{
    const auto g = testutil::toyGraph();
    NeighborSampler sampler(g, {2, 2});
    const auto batch = sampler.sample({4, 7, 9});
    const auto outputs = batch.outputNodes();
    ASSERT_EQ(outputs.size(), 3u);
    EXPECT_EQ(outputs[0], 4);
    EXPECT_EQ(outputs[1], 7);
    EXPECT_EQ(outputs[2], 9);
}

TEST(NeighborSampler, DeterministicGivenSeed)
{
    const auto g = testutil::toyGraph();
    NeighborSampler a(g, {2, 2}, 42), b(g, {2, 2}, 42);
    const auto ba = a.sample({1, 5});
    const auto bb = b.sample({1, 5});
    EXPECT_EQ(ba.inputNodes(), bb.inputNodes());
    EXPECT_EQ(ba.totalEdges(), bb.totalEdges());
}

TEST(NeighborSampler, GrowthAcrossLayers)
{
    const auto ds = loadCatalogDataset("arxiv_like", 0.05);
    NeighborSampler sampler(ds.graph, {5, 10});
    std::vector<int64_t> seeds(ds.trainNodes.begin(),
                               ds.trainNodes.begin() + 50);
    const auto batch = sampler.sample(seeds);
    // The receptive field must grow inward.
    EXPECT_GT(batch.blocks[1].numSrc(), batch.blocks[1].numDst());
    EXPECT_GE(batch.blocks[0].numSrc(), batch.blocks[1].numSrc());
    EXPECT_EQ(batch.blocks[1].numDst(), 50);
}

TEST(NeighborSampler, FullSamplingMatchesGraphDegrees)
{
    const auto ds = loadCatalogDataset("cora_like", 0.05);
    NeighborSampler sampler(ds.graph, {-1});
    std::vector<int64_t> seeds = {0, 1, 2, 3};
    const auto batch = sampler.sample(seeds);
    for (int64_t d = 0; d < batch.blocks[0].numDst(); ++d) {
        const int64_t global = batch.blocks[0].dstNodes()[size_t(d)];
        EXPECT_EQ(batch.blocks[0].inDegree(d), ds.graph.inDegree(global));
    }
}

TEST(NeighborSamplerDeathTest, EmptySeedsPanics)
{
    const auto g = testutil::toyGraph();
    NeighborSampler sampler(g, {2});
    EXPECT_DEATH(sampler.sample({}), "empty seed");
}

// -------------------------------------------------------------------
// Counter-based RNG stream contract: the k-th sample() call derives a
// call seed from (seed, k), and each (layer, dst) draws from its own
// stream Rng::stream(call_seed, layer, dst). A destination's sample
// is a pure function of (seed, call index, layer, dst) — never of
// which other seeds are in the batch or how the work is split across
// ThreadPool lanes — while repeated calls (epochs) draw fresh
// neighborhoods instead of replaying one fixed subgraph.

/** The sources sampled for one dst in one one-layer batch. */
std::vector<int64_t>
sampledSourcesOf(const MultiLayerBatch& batch, int64_t dst_global)
{
    const Block& block = batch.blocks[0];
    for (int64_t d = 0; d < block.numDst(); ++d) {
        if (block.dstNodes()[size_t(d)] != dst_global)
            continue;
        std::vector<int64_t> sources;
        for (int64_t s : block.inEdges(d))
            sources.push_back(block.srcNodes()[size_t(s)]);
        return sources;
    }
    ADD_FAILURE() << "dst " << dst_global << " not in batch";
    return {};
}

TEST(NeighborSamplerStreams, RepeatedCallsDrawFreshNeighborhoods)
{
    // Each call advances the sampler's call counter, so a second
    // epoch over the same seeds draws a fresh sampled subgraph (the
    // stochasticity neighbor sampling relies on) — while two samplers
    // with the same seed replay the same call sequence bit-for-bit.
    const auto ds = loadCatalogDataset("arxiv_like", 0.05);
    NeighborSampler a(ds.graph, {5, 10}, 42);
    NeighborSampler b(ds.graph, {5, 10}, 42);
    std::vector<int64_t> seeds(ds.trainNodes.begin(),
                               ds.trainNodes.begin() + 50);
    const auto a1 = a.sample(seeds);
    const auto a2 = a.sample(seeds);
    const auto b1 = b.sample(seeds);
    const auto b2 = b.sample(seeds);
    EXPECT_NE(a1.inputNodes(), a2.inputNodes())
        << "second epoch replayed the first call's sampled subgraph";
    EXPECT_EQ(a1.inputNodes(), b1.inputNodes());
    EXPECT_EQ(a1.blocks[0].edgeSources(), b1.blocks[0].edgeSources());
    EXPECT_EQ(a2.inputNodes(), b2.inputNodes());
    EXPECT_EQ(a2.blocks[0].edgeSources(), b2.blocks[0].edgeSources());
}

TEST(NeighborSamplerStreams, SampleIndependentOfBatchComposition)
{
    // Node 1's sampled neighborhood is the same whether it is sampled
    // alone, with company, or at a different position in the seed
    // list — within one call the stream key is (call_seed, layer,
    // dst), not the iteration index. Fresh samplers pin each call to
    // call index 0.
    const auto g = testutil::toyGraph();
    NeighborSampler s1(g, {2}, 42);
    NeighborSampler s2(g, {2}, 42);
    NeighborSampler s3(g, {2}, 42);
    const auto alone = sampledSourcesOf(s1.sample({1}), 1);
    const auto with_company =
        sampledSourcesOf(s2.sample({6, 1, 8}), 1);
    const auto at_the_back =
        sampledSourcesOf(s3.sample({8, 6, 1}), 1);
    EXPECT_EQ(alone, with_company);
    EXPECT_EQ(alone, at_the_back);
}

TEST(NeighborSamplerStreams, OnlyTheCallIndexCarriesAcrossCalls)
{
    // The only state a call leaves behind is the incremented call
    // counter: the k-th calls of two same-seed samplers agree even
    // when their earlier calls sampled entirely different seed sets.
    const auto g = testutil::toyGraph();
    NeighborSampler a(g, {2, 2}, 7);
    NeighborSampler b(g, {2, 2}, 7);
    a.sample({4, 9});
    a.sample({0});
    b.sample({2});
    b.sample({3, 6, 7});
    const auto third_a = a.sample({1, 5});
    const auto third_b = b.sample({1, 5});
    EXPECT_EQ(third_a.inputNodes(), third_b.inputNodes());
    EXPECT_EQ(third_a.blocks[0].edgeSources(),
              third_b.blocks[0].edgeSources());
}

TEST(NeighborSamplerStreams, LayersDrawFromDistinctStreams)
{
    // The same dst appearing in two layers must not replay the same
    // random draws: the layer index is part of the stream key.
    EXPECT_NE(Rng::streamKey(42, 0, 1), Rng::streamKey(42, 1, 1));
    EXPECT_NE(Rng::streamKey(42, 0, 1), Rng::streamKey(42, 0, 2));
    EXPECT_NE(Rng::streamKey(42, 0, 1), Rng::streamKey(43, 0, 1));
}

/** Property sweep: for any fanout, block degrees never exceed it and
 * every destination with in-neighbors keeps at least one. */
class SamplerFanout : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(SamplerFanout, DegreeBoundHolds)
{
    const int64_t fanout = GetParam();
    const auto g = testutil::toyGraph();
    NeighborSampler sampler(g, {fanout, fanout});
    const auto batch = sampler.sample({1, 6, 8});
    for (const auto& block : batch.blocks) {
        for (int64_t d = 0; d < block.numDst(); ++d) {
            EXPECT_LE(block.inDegree(d), fanout);
            const int64_t global = block.dstNodes()[size_t(d)];
            if (g.inDegree(global) > 0)
                EXPECT_GE(block.inDegree(d), 1);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, SamplerFanout,
                         ::testing::Values(1, 2, 3, 5, 100));

} // namespace
} // namespace betty
