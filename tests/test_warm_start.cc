/**
 * @file
 * Tests for warm-start partitioning (the paper's future-work item on
 * reducing partitioning overhead, §7): kwayPartitionWarm and the
 * BettyPartitioner warm-start path across resampled epochs.
 */
#include <gtest/gtest.h>

#include "core/betty.h"
#include "data/catalog.h"
#include "partition/kway_partitioner.h"
#include "sampling/neighbor_sampler.h"
#include "util/timer.h"

namespace betty {
namespace {

WeightedGraph
communityGraph(int64_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<WeightedEdge> edges;
    // Two halves densely connected internally, sparsely across.
    for (int64_t i = 0; i < n; ++i)
        for (int64_t tries = 0; tries < 4; ++tries) {
            const int64_t half = i < n / 2 ? 0 : 1;
            const int64_t j = half * (n / 2) +
                              int64_t(rng.uniformInt(uint64_t(n / 2)));
            if (j != i)
                edges.push_back({i, j, 5});
        }
    edges.push_back({0, n - 1, 1});
    return WeightedGraph(n, edges);
}

TEST(KwayWarm, RefinesGivenAssignment)
{
    const auto g = communityGraph(200, 1);
    KwayOptions opts;
    opts.k = 2;
    // Start from a poor random assignment; warm refinement must not
    // make the cut worse and should improve it substantially.
    Rng rng(2);
    std::vector<int32_t> initial(200);
    for (auto& p : initial)
        p = int32_t(rng.uniformInt(2));
    const int64_t before = g.cutCost(initial);
    const auto refined = kwayPartitionWarm(g, opts, initial);
    EXPECT_LT(g.cutCost(refined), before);
    EXPECT_LE(partitionImbalance(g, refined, 2),
              opts.imbalance + 1e-9);
}

TEST(KwayWarm, PerfectStartIsStable)
{
    const auto g = communityGraph(200, 3);
    KwayOptions opts;
    opts.k = 2;
    std::vector<int32_t> perfect(200);
    for (int64_t i = 0; i < 200; ++i)
        perfect[size_t(i)] = i < 100 ? 0 : 1;
    const auto refined = kwayPartitionWarm(g, opts, perfect);
    EXPECT_LE(g.cutCost(refined), g.cutCost(perfect));
}

TEST(KwayWarm, KOneTrivial)
{
    const auto g = communityGraph(50, 4);
    KwayOptions opts;
    opts.k = 1;
    const auto parts =
        kwayPartitionWarm(g, opts, std::vector<int32_t>(50, 0));
    for (int32_t p : parts)
        EXPECT_EQ(p, 0);
}

TEST(KwayWarmDeathTest, BadInitialPanics)
{
    const auto g = communityGraph(50, 5);
    KwayOptions opts;
    opts.k = 2;
    std::vector<int32_t> bad(50, 7); // part id out of range
    EXPECT_DEATH(kwayPartitionWarm(g, opts, bad), "out of range");
}

struct Env
{
    Env() : dataset(loadCatalogDataset("arxiv_like", 0.15, 91)) {}

    MultiLayerBatch
    sampleEpoch(uint64_t seed) const
    {
        NeighborSampler sampler(dataset.graph, {5, 8}, seed);
        std::vector<int64_t> seeds(dataset.trainNodes.begin(),
                                   dataset.trainNodes.begin() + 400);
        return sampler.sample(seeds);
    }

    Dataset dataset;
};

TEST(BettyWarmStart, SecondEpochIsWarm)
{
    Env env;
    BettyOptions opts;
    opts.warmStart = true;
    BettyPartitioner part(opts);

    part.partition(env.sampleEpoch(1), 8);
    EXPECT_FALSE(part.lastRunWasWarm()) << "first epoch is cold";
    part.partition(env.sampleEpoch(2), 8);
    EXPECT_TRUE(part.lastRunWasWarm());
}

TEST(BettyWarmStart, ChangingKFallsBackToCold)
{
    Env env;
    BettyOptions opts;
    opts.warmStart = true;
    BettyPartitioner part(opts);
    part.partition(env.sampleEpoch(1), 8);
    part.partition(env.sampleEpoch(2), 4);
    EXPECT_FALSE(part.lastRunWasWarm());
}

TEST(BettyWarmStart, DisjointBatchFallsBackToCold)
{
    Env env;
    BettyOptions opts;
    opts.warmStart = true;
    BettyPartitioner part(opts);
    part.partition(env.sampleEpoch(1), 4);

    // A batch over completely different output nodes.
    NeighborSampler sampler(env.dataset.graph, {5, 8}, 3);
    std::vector<int64_t> other(env.dataset.testNodes.begin(),
                               env.dataset.testNodes.begin() + 300);
    part.partition(sampler.sample(other), 4);
    EXPECT_FALSE(part.lastRunWasWarm());
}

TEST(BettyWarmStart, DisabledByDefault)
{
    Env env;
    BettyPartitioner part;
    part.partition(env.sampleEpoch(1), 8);
    part.partition(env.sampleEpoch(2), 8);
    EXPECT_FALSE(part.lastRunWasWarm());
}

TEST(BettyWarmStart, QualityComparableToCold)
{
    Env env;
    const auto epoch1 = env.sampleEpoch(1);
    const auto epoch2 = env.sampleEpoch(2);

    BettyOptions warm_opts;
    warm_opts.warmStart = true;
    BettyPartitioner warm(warm_opts);
    BettyPartitioner cold;

    warm.partition(epoch1, 8);
    const auto warm_groups = warm.partition(epoch2, 8);
    const auto cold_groups = cold.partition(epoch2, 8);
    ASSERT_TRUE(warm.lastRunWasWarm());

    const int64_t warm_red = inputNodeRedundancy(
        epoch2, extractMicroBatches(epoch2, warm_groups));
    const int64_t cold_red = inputNodeRedundancy(
        epoch2, extractMicroBatches(epoch2, cold_groups));
    // Warm refinement may be slightly worse but must stay close.
    EXPECT_LT(double(warm_red), 1.15 * double(cold_red));
}

TEST(BettyWarmStart, ValidPartitionEitherWay)
{
    Env env;
    BettyOptions opts;
    opts.warmStart = true;
    BettyPartitioner part(opts);
    for (uint64_t epoch = 1; epoch <= 3; ++epoch) {
        const auto batch = env.sampleEpoch(epoch);
        const auto groups = part.partition(batch, 6);
        size_t total = 0;
        for (const auto& group : groups)
            total += group.size();
        EXPECT_EQ(total, batch.outputNodes().size());
    }
}

} // namespace
} // namespace betty
