/**
 * @file
 * Tests for dataset/batch serialization (the gen_data.sh-style cache
 * of sampled full batches, artifact appendix A.4).
 */
#include <cstdio>

#include <gtest/gtest.h>

#include "data/catalog.h"
#include "data/io.h"
#include "sampling/neighbor_sampler.h"
#include "test_helpers.h"

namespace betty {
namespace {

std::string
tmpPath(const std::string& name)
{
    return ::testing::TempDir() + "/" + name;
}

TEST(DatasetIo, RoundTripPreservesEverything)
{
    const auto original = loadCatalogDataset("cora_like", 0.1, 7);
    const std::string path = tmpPath("ds_roundtrip.bin");
    ASSERT_TRUE(saveDataset(original, path));

    Dataset loaded;
    ASSERT_TRUE(loadDataset(loaded, path));
    std::remove(path.c_str());

    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.numNodes(), original.numNodes());
    EXPECT_EQ(loaded.numEdges(), original.numEdges());
    EXPECT_EQ(loaded.numClasses, original.numClasses);
    EXPECT_EQ(loaded.labels, original.labels);
    EXPECT_EQ(loaded.trainNodes, original.trainNodes);
    EXPECT_EQ(loaded.valNodes, original.valNodes);
    EXPECT_EQ(loaded.testNodes, original.testNodes);
    ASSERT_TRUE(loaded.features.sameShape(original.features));
    for (int64_t i = 0; i < original.features.numel(); ++i)
        ASSERT_EQ(loaded.features.data()[i],
                  original.features.data()[i]);
    // Adjacency preserved.
    for (int64_t v = 0; v < original.numNodes(); ++v) {
        const auto a = original.graph.inNeighbors(v);
        const auto b = loaded.graph.inNeighbors(v);
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i)
            ASSERT_EQ(a[i], b[i]);
    }
}

TEST(DatasetIo, MissingFileReturnsFalse)
{
    Dataset ds;
    EXPECT_FALSE(loadDataset(ds, "/nonexistent/path/x.bin"));
    EXPECT_FALSE(saveDataset(ds, "/nonexistent/dir/x.bin"));
}

TEST(DatasetIoDeathTest, WrongMagicIsFatal)
{
    const std::string path = tmpPath("not_a_dataset.bin");
    {
        std::FILE* f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const char junk[32] = "this is not a dataset at all!";
        std::fwrite(junk, 1, sizeof(junk), f);
        std::fclose(f);
    }
    Dataset ds;
    EXPECT_EXIT(loadDataset(ds, path),
                ::testing::ExitedWithCode(1), "not a Betty dataset");
    std::remove(path.c_str());
}

TEST(BatchIo, RoundTripPreservesBlocks)
{
    const auto ds = loadCatalogDataset("arxiv_like", 0.05, 9);
    NeighborSampler sampler(ds.graph, {4, 6}, 10);
    std::vector<int64_t> seeds(ds.trainNodes.begin(),
                               ds.trainNodes.begin() + 60);
    const auto original = sampler.sample(seeds);

    const std::string path = tmpPath("batch_roundtrip.bin");
    ASSERT_TRUE(saveBatch(original, path));
    MultiLayerBatch loaded;
    ASSERT_TRUE(loadBatch(loaded, path));
    std::remove(path.c_str());

    ASSERT_EQ(loaded.numLayers(), original.numLayers());
    for (int64_t layer = 0; layer < original.numLayers(); ++layer) {
        const Block& a = original.blocks[size_t(layer)];
        const Block& b = loaded.blocks[size_t(layer)];
        ASSERT_EQ(a.numDst(), b.numDst());
        ASSERT_EQ(a.numSrc(), b.numSrc());
        ASSERT_EQ(a.numEdges(), b.numEdges());
        // Identical local numbering (constructor is deterministic
        // given edge order), hence identical everything.
        EXPECT_EQ(a.srcNodes(), b.srcNodes());
        EXPECT_EQ(a.edgeOffsets(), b.edgeOffsets());
        EXPECT_EQ(a.edgeSources(), b.edgeSources());
    }
}

TEST(BatchIo, RoundTripOfTinyHandBuiltBatch)
{
    const auto original = testutil::tinyBatch();
    const std::string path = tmpPath("tiny_batch.bin");
    ASSERT_TRUE(saveBatch(original, path));
    MultiLayerBatch loaded;
    ASSERT_TRUE(loadBatch(loaded, path));
    std::remove(path.c_str());
    EXPECT_EQ(loaded.totalEdges(), original.totalEdges());
    EXPECT_EQ(loaded.inputNodes(), original.inputNodes());
}

TEST(BatchIoDeathTest, DatasetFileRejected)
{
    // Writing a dataset and reading it as a batch must fail loudly.
    const auto ds = loadCatalogDataset("cora_like", 0.05, 11);
    const std::string path = tmpPath("mixed_up.bin");
    ASSERT_TRUE(saveDataset(ds, path));
    MultiLayerBatch batch;
    EXPECT_EXIT(loadBatch(batch, path),
                ::testing::ExitedWithCode(1), "not a Betty batch");
    std::remove(path.c_str());
}

} // namespace
} // namespace betty
