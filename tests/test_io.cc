/**
 * @file
 * Tests for dataset/batch serialization (the gen_data.sh-style cache
 * of sampled full batches, artifact appendix A.4).
 */
#include <cstdio>
#include <limits>

#include <gtest/gtest.h>

#include "data/catalog.h"
#include "data/io.h"
#include "sampling/neighbor_sampler.h"
#include "test_helpers.h"

namespace betty {
namespace {

std::string
tmpPath(const std::string& name)
{
    return ::testing::TempDir() + "/" + name;
}

TEST(DatasetIo, RoundTripPreservesEverything)
{
    const auto original = loadCatalogDataset("cora_like", 0.1, 7);
    const std::string path = tmpPath("ds_roundtrip.bin");
    ASSERT_TRUE(saveDataset(original, path));

    Dataset loaded;
    ASSERT_TRUE(loadDataset(loaded, path));
    std::remove(path.c_str());

    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.numNodes(), original.numNodes());
    EXPECT_EQ(loaded.numEdges(), original.numEdges());
    EXPECT_EQ(loaded.numClasses, original.numClasses);
    EXPECT_EQ(loaded.labels, original.labels);
    EXPECT_EQ(loaded.trainNodes, original.trainNodes);
    EXPECT_EQ(loaded.valNodes, original.valNodes);
    EXPECT_EQ(loaded.testNodes, original.testNodes);
    ASSERT_TRUE(loaded.features.sameShape(original.features));
    for (int64_t i = 0; i < original.features.numel(); ++i)
        ASSERT_EQ(loaded.features.data()[i],
                  original.features.data()[i]);
    // Adjacency preserved.
    for (int64_t v = 0; v < original.numNodes(); ++v) {
        const auto a = original.graph.inNeighbors(v);
        const auto b = loaded.graph.inNeighbors(v);
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i)
            ASSERT_EQ(a[i], b[i]);
    }
}

TEST(DatasetIo, MissingFileReturnsFalse)
{
    Dataset ds;
    EXPECT_FALSE(loadDataset(ds, "/nonexistent/path/x.bin"));
    EXPECT_FALSE(saveDataset(ds, "/nonexistent/dir/x.bin"));
}

TEST(DatasetIoDeathTest, WrongMagicIsFatal)
{
    const std::string path = tmpPath("not_a_dataset.bin");
    {
        std::FILE* f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const char junk[32] = "this is not a dataset at all!";
        std::fwrite(junk, 1, sizeof(junk), f);
        std::fclose(f);
    }
    Dataset ds;
    EXPECT_EXIT(loadDataset(ds, path),
                ::testing::ExitedWithCode(1), "not a Betty dataset");
    std::remove(path.c_str());
}

/** The corrupt-file corpus: every malformed input must come back as
 * the right typed IoError from loadDatasetChecked, with the output
 * dataset untouched — never UB, never a silent partial load. */
class DatasetCorruption : public ::testing::Test
{
  protected:
    static const Dataset&
    pristine()
    {
        static Dataset ds = loadCatalogDataset("cora_like", 0.05, 11);
        return ds;
    }

    /** Save a mutated copy of the pristine dataset and load it back
     * checked, asserting the load fails with @p expected and leaves
     * the destination dataset untouched. */
    template <typename Mutate>
    void
    expectError(const std::string& name, Mutate mutate,
                IoError expected)
    {
        Dataset broken = loadCatalogDataset("cora_like", 0.05, 11);
        mutate(broken);
        const std::string path = tmpPath(name);
        ASSERT_TRUE(saveDataset(broken, path));

        Dataset out = loadCatalogDataset("cora_like", 0.02, 3);
        const int64_t nodes_before = out.numNodes();
        const std::string name_before = out.name;
        const IoStatus status = loadDatasetChecked(out, path);
        std::remove(path.c_str());
        EXPECT_EQ(status.error, expected)
            << name << ": " << status.message;
        EXPECT_FALSE(status.message.empty());
        // Failed loads must not leave a partial object behind.
        EXPECT_EQ(out.numNodes(), nodes_before) << name;
        EXPECT_EQ(out.name, name_before) << name;
    }
};

TEST_F(DatasetCorruption, NanFeatureIsCorruptValues)
{
    expectError(
        "nan_feature.bin",
        [](Dataset& ds) {
            ds.features.data()[ds.features.numel() / 2] =
                std::numeric_limits<float>::quiet_NaN();
        },
        IoError::CorruptValues);
}

TEST_F(DatasetCorruption, InfFeatureIsCorruptValues)
{
    expectError(
        "inf_feature.bin",
        [](Dataset& ds) {
            ds.features.data()[0] =
                std::numeric_limits<float>::infinity();
        },
        IoError::CorruptValues);
}

TEST_F(DatasetCorruption, LabelPastNumClassesIsOutOfRange)
{
    expectError(
        "bad_label.bin",
        [](Dataset& ds) { ds.labels[0] = ds.numClasses + 5; },
        IoError::OutOfRange);
}

TEST_F(DatasetCorruption, NegativeLabelIsOutOfRange)
{
    expectError(
        "negative_label.bin",
        [](Dataset& ds) { ds.labels[ds.labels.size() / 2] = -2; },
        IoError::OutOfRange);
}

TEST_F(DatasetCorruption, SplitNodePastGraphIsOutOfRange)
{
    expectError(
        "bad_split.bin",
        [](Dataset& ds) { ds.trainNodes[0] = ds.numNodes() + 3; },
        IoError::OutOfRange);
}

TEST_F(DatasetCorruption, TruncatedFilesAtEveryQuarter)
{
    // A valid file cut at 1/4, 1/2, and 3/4 must always surface as a
    // typed error (Truncated, or CorruptValues when the cut lands
    // inside a validated structure), never as a crash or partial load.
    const std::string path = tmpPath("full.bin");
    ASSERT_TRUE(saveDataset(pristine(), path));
    std::string bytes;
    {
        std::FILE* f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        char buffer[1 << 12];
        size_t got;
        while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0)
            bytes.append(buffer, got);
        std::fclose(f);
    }
    std::remove(path.c_str());
    ASSERT_GT(bytes.size(), 16u);

    for (int quarter = 1; quarter <= 3; ++quarter) {
        const std::string cut_path =
            tmpPath("cut" + std::to_string(quarter) + ".bin");
        {
            std::FILE* f = std::fopen(cut_path.c_str(), "wb");
            ASSERT_NE(f, nullptr);
            const size_t keep = bytes.size() * size_t(quarter) / 4;
            std::fwrite(bytes.data(), 1, keep, f);
            std::fclose(f);
        }
        Dataset out;
        const IoStatus status = loadDatasetChecked(out, cut_path);
        std::remove(cut_path.c_str());
        EXPECT_FALSE(status.ok()) << "cut at quarter " << quarter;
        EXPECT_TRUE(status.error == IoError::Truncated ||
                    status.error == IoError::CorruptValues)
            << "cut at quarter " << quarter << ": "
            << ioErrorName(status.error);
        EXPECT_EQ(out.numNodes(), 0) << "partial load leaked through";
    }
}

TEST_F(DatasetCorruption, CheckedLoaderAcceptsThePristineFile)
{
    const std::string path = tmpPath("pristine.bin");
    ASSERT_TRUE(saveDataset(pristine(), path));
    Dataset out;
    const IoStatus status = loadDatasetChecked(out, path);
    std::remove(path.c_str());
    ASSERT_TRUE(status.ok()) << status.message;
    EXPECT_EQ(out.numNodes(), pristine().numNodes());
    EXPECT_EQ(out.labels, pristine().labels);
}

TEST(BatchIo, RoundTripPreservesBlocks)
{
    const auto ds = loadCatalogDataset("arxiv_like", 0.05, 9);
    NeighborSampler sampler(ds.graph, {4, 6}, 10);
    std::vector<int64_t> seeds(ds.trainNodes.begin(),
                               ds.trainNodes.begin() + 60);
    const auto original = sampler.sample(seeds);

    const std::string path = tmpPath("batch_roundtrip.bin");
    ASSERT_TRUE(saveBatch(original, path));
    MultiLayerBatch loaded;
    ASSERT_TRUE(loadBatch(loaded, path));
    std::remove(path.c_str());

    ASSERT_EQ(loaded.numLayers(), original.numLayers());
    for (int64_t layer = 0; layer < original.numLayers(); ++layer) {
        const Block& a = original.blocks[size_t(layer)];
        const Block& b = loaded.blocks[size_t(layer)];
        ASSERT_EQ(a.numDst(), b.numDst());
        ASSERT_EQ(a.numSrc(), b.numSrc());
        ASSERT_EQ(a.numEdges(), b.numEdges());
        // Identical local numbering (constructor is deterministic
        // given edge order), hence identical everything.
        EXPECT_EQ(a.srcNodes(), b.srcNodes());
        EXPECT_EQ(a.edgeOffsets(), b.edgeOffsets());
        EXPECT_EQ(a.edgeSources(), b.edgeSources());
    }
}

TEST(BatchIo, RoundTripOfTinyHandBuiltBatch)
{
    const auto original = testutil::tinyBatch();
    const std::string path = tmpPath("tiny_batch.bin");
    ASSERT_TRUE(saveBatch(original, path));
    MultiLayerBatch loaded;
    ASSERT_TRUE(loadBatch(loaded, path));
    std::remove(path.c_str());
    EXPECT_EQ(loaded.totalEdges(), original.totalEdges());
    EXPECT_EQ(loaded.inputNodes(), original.inputNodes());
}

TEST(BatchIoDeathTest, DatasetFileRejected)
{
    // Writing a dataset and reading it as a batch must fail loudly.
    const auto ds = loadCatalogDataset("cora_like", 0.05, 11);
    const std::string path = tmpPath("mixed_up.bin");
    ASSERT_TRUE(saveDataset(ds, path));
    MultiLayerBatch batch;
    EXPECT_EXIT(loadBatch(batch, path),
                ::testing::ExitedWithCode(1), "not a Betty batch");
    std::remove(path.c_str());
}

} // namespace
} // namespace betty
