/**
 * @file
 * End-to-end integration: sample -> plan -> micro-batch train, and the
 * paper's headline comparisons in miniature (memory reduction,
 * redundancy ordering, estimation accuracy).
 */
#include <gtest/gtest.h>

#include "core/betty.h"
#include "data/catalog.h"
#include "sampling/neighbor_sampler.h"
#include "train/trainer.h"

namespace betty {
namespace {

struct Env
{
    Env()
        : dataset(loadCatalogDataset("arxiv_like", 0.3, 41)),
          sampler(dataset.graph, {5, 8}, 42)
    {
        std::vector<int64_t> seeds(dataset.trainNodes.begin(),
                                   dataset.trainNodes.begin() + 200);
        full = sampler.sample(seeds);
    }

    SageConfig
    sageConfig() const
    {
        SageConfig cfg;
        cfg.inputDim = dataset.featureDim();
        cfg.hiddenDim = 16;
        cfg.numClasses = dataset.numClasses;
        cfg.numLayers = 2;
        return cfg;
    }

    Dataset dataset;
    NeighborSampler sampler;
    MultiLayerBatch full;
};

TEST(BettyEndToEnd, PlanThenTrainUnderBudget)
{
    Env env;
    DeviceMemoryModel device; // track only; budget enforced by planner
    DeviceMemoryModel::Scope scope(device);

    GraphSage model(env.sageConfig());
    Adam adam(model.parameters(), 0.01f);
    Trainer trainer(env.dataset, model, adam, &device);

    // Budget at 70% of the full batch's estimate: must split.
    const auto spec = model.memorySpec();
    const auto full_est = estimateBatchMemory(env.full, spec);
    BettyConfig config;
    config.deviceCapacityBytes = full_est.peak * 7 / 10;
    Betty betty(spec, config);
    const auto plan = betty.plan(env.full);
    ASSERT_TRUE(plan.fits);
    ASSERT_GT(plan.k, 1);

    const auto stats = trainer.trainMicroBatches(plan.microBatches);
    EXPECT_GT(stats.loss, 0.0);
    // Measured peak must respect the planner's budget within the
    // estimator's documented error band (Table 7: < ~8%).
    EXPECT_LT(double(stats.peakBytes),
              1.15 * double(config.deviceCapacityBytes));
}

TEST(BettyEndToEnd, EstimatorErrorSmall)
{
    // The Table 7 property at unit scale: |estimate - measured| /
    // measured stays within a tight band for the mean aggregator.
    Env env;
    DeviceMemoryModel device;
    DeviceMemoryModel::Scope scope(device);
    GraphSage model(env.sageConfig());
    Adam adam(model.parameters(), 0.01f);
    Trainer trainer(env.dataset, model, adam, &device);

    const auto spec = model.memorySpec();
    const auto est = estimateBatchMemory(env.full, spec);
    const auto stats = trainer.trainMicroBatches({env.full});
    const double err =
        std::abs(double(est.peak) - double(stats.peakBytes)) /
        double(stats.peakBytes);
    EXPECT_LT(err, 0.15) << "estimate " << est.peak << " measured "
                         << stats.peakBytes;
}

TEST(BettyEndToEnd, RedundancyOrderingMatchesPaper)
    // Figure 16's ordering: betty < metis <= random/range (betty
    // strictly smallest). Note the operating point: seeds sparse
    // relative to the graph, as in the paper's datasets. When nearly
    // every node is an output of a tiny dense graph, the REG min-cut
    // <-> redundancy correspondence degrades and locality partitioning
    // can tie or edge ahead.
{
    Env env;
    BettyPartitioner betty;
    MetisBaselinePartitioner metis(env.dataset.graph);
    RandomPartitioner random(3);
    RangePartitioner range;

    const int32_t k = 8;
    const auto red = [&](OutputPartitioner& p) {
        return inputNodeRedundancy(
            env.full,
            extractMicroBatches(env.full, p.partition(env.full, k)));
    };
    const int64_t r_betty = red(betty);
    EXPECT_LT(r_betty, red(metis));
    EXPECT_LT(r_betty, red(random));
    EXPECT_LT(r_betty, red(range));
}

TEST(BettyEndToEnd, MaxMicroBatchMemoryBelowFullBatch)
{
    // Figure 11's effect: max per-micro-batch memory falls as K grows.
    Env env;
    GraphSage model(env.sageConfig());
    const auto spec = model.memorySpec();
    BettyPartitioner part;

    const auto full_est = estimateBatchMemory(env.full, spec);
    int64_t previous = full_est.peak;
    for (int32_t k : {2, 4, 8}) {
        const auto micros =
            extractMicroBatches(env.full, part.partition(env.full, k));
        int64_t worst = 0;
        for (const auto& micro : micros) {
            if (micro.outputNodes().empty())
                continue;
            worst = std::max(worst,
                             estimateBatchMemory(micro, spec).peak);
        }
        EXPECT_LT(worst, previous) << "k=" << k;
        previous = worst;
    }
}

TEST(BettyEndToEnd, MicroBatchTrainingReachesFullBatchAccuracy)
{
    // Table 5 in miniature: same epochs, same hyperparameters; the
    // micro-batch model must match the full-batch model's accuracy.
    Env env;
    SageConfig cfg = env.sageConfig();
    cfg.seed = 7;
    GraphSage full_model(cfg);
    GraphSage micro_model(cfg);
    Adam full_adam(full_model.parameters(), 0.01f);
    Adam micro_adam(micro_model.parameters(), 0.01f);
    Trainer full_trainer(env.dataset, full_model, full_adam);
    Trainer micro_trainer(env.dataset, micro_model, micro_adam);

    BettyPartitioner part;
    const auto micros =
        extractMicroBatches(env.full, part.partition(env.full, 4));

    double full_acc = 0.0, micro_acc = 0.0;
    for (int epoch = 0; epoch < 12; ++epoch) {
        full_acc = full_trainer.trainMicroBatches({env.full}).accuracy;
        micro_acc = micro_trainer.trainMicroBatches(micros).accuracy;
    }
    EXPECT_NEAR(full_acc, micro_acc, 0.02);
    EXPECT_GT(full_acc, 1.5 / double(env.dataset.numClasses));
}

TEST(BettyEndToEnd, LstmUnderTightBudget)
{
    // The Figure 10(a) scenario in miniature: LSTM OOMs the budget at
    // K=1; Betty finds a K that fits and training succeeds.
    Env env;
    DeviceMemoryModel device;
    DeviceMemoryModel::Scope scope(device);

    SageConfig cfg = env.sageConfig();
    cfg.aggregator = AggregatorKind::Lstm;
    cfg.hiddenDim = 8;
    GraphSage model(cfg);
    Adam adam(model.parameters(), 0.01f);
    Trainer trainer(env.dataset, model, adam, &device);

    const auto spec = model.memorySpec();
    const auto full_est = estimateBatchMemory(env.full, spec);
    BettyConfig config;
    config.deviceCapacityBytes = full_est.peak / 3;
    Betty betty(spec, config);
    const auto plan = betty.plan(env.full);
    ASSERT_TRUE(plan.fits);
    EXPECT_GE(plan.k, 2);
    const auto stats = trainer.trainMicroBatches(plan.microBatches);
    EXPECT_GT(stats.loss, 0.0);
}

} // namespace
} // namespace betty
