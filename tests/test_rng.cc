/**
 * @file
 * Unit and property tests for the deterministic RNG.
 */
#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace betty {
namespace {

TEST(Rng, DeterministicGivenSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(7);
    for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.uniformInt(bound), bound);
    }
}

TEST(Rng, UniformIntRangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 500; ++i) {
        const int64_t v = rng.uniformInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(9);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    const int n = 20000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.gaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, GaussianShifted)
{
    Rng rng(12);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i)
        sum += rng.gaussian(5.0, 0.1);
    EXPECT_NEAR(sum / 10000.0, 5.0, 0.02);
}

TEST(Rng, PermutationIsAPermutation)
{
    Rng rng(13);
    const auto perm = rng.permutation(100);
    std::set<int64_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), 99);
}

TEST(Rng, PermutationActuallyShuffles)
{
    Rng rng(14);
    const auto perm = rng.permutation(100);
    std::vector<int64_t> identity(100);
    std::iota(identity.begin(), identity.end(), 0);
    EXPECT_NE(perm, identity);
}

TEST(Rng, SampleWithoutReplacementDistinct)
{
    Rng rng(15);
    for (int trial = 0; trial < 50; ++trial) {
        const auto sample = rng.sampleWithoutReplacement(50, 20);
        std::set<int64_t> seen(sample.begin(), sample.end());
        EXPECT_EQ(seen.size(), 20u);
        for (int64_t v : sample) {
            EXPECT_GE(v, 0);
            EXPECT_LT(v, 50);
        }
    }
}

TEST(Rng, SampleWithoutReplacementFullSet)
{
    Rng rng(16);
    const auto sample = rng.sampleWithoutReplacement(10, 10);
    std::set<int64_t> seen(sample.begin(), sample.end());
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementCoversRange)
{
    // Property: over many draws of k=1, every value should show up.
    Rng rng(17);
    std::set<int64_t> seen;
    for (int i = 0; i < 400; ++i)
        seen.insert(rng.sampleWithoutReplacement(8, 1).front());
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ShuffleKeepsMultiset)
{
    Rng rng(18);
    std::vector<int> values = {1, 1, 2, 3, 5, 8, 13};
    auto copy = values;
    rng.shuffle(copy);
    std::sort(copy.begin(), copy.end());
    EXPECT_EQ(copy, values);
}

/** Parameterized sweep: uniformInt is roughly uniform per bound. */
class RngUniformity : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RngUniformity, ChiSquareIsSane)
{
    const uint64_t bound = GetParam();
    Rng rng(100 + bound);
    std::vector<int64_t> counts(bound, 0);
    const int64_t draws = int64_t(bound) * 1000;
    for (int64_t i = 0; i < draws; ++i)
        ++counts[rng.uniformInt(bound)];
    const double expected = double(draws) / double(bound);
    double chi2 = 0.0;
    for (int64_t c : counts)
        chi2 += (double(c) - expected) * (double(c) - expected) /
                expected;
    // Very loose bound: chi2 mean is bound-1; flag only gross bias.
    EXPECT_LT(chi2, 3.0 * double(bound) + 30.0);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformity,
                         ::testing::Values(2, 3, 7, 10, 32, 100));

} // namespace
} // namespace betty
