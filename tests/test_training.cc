/**
 * @file
 * Integration tests for the Trainer: learning actually happens, stats
 * are populated, device/transfer accounting works, mini-batch loops.
 */
#include <gtest/gtest.h>

#include "data/catalog.h"
#include "sampling/neighbor_sampler.h"
#include "train/trainer.h"

namespace betty {
namespace {

struct Env
{
    Env()
        : dataset(loadCatalogDataset("cora_like", 0.15, 11)),
          sampler(dataset.graph, {-1, -1}, 12)
    {
        std::vector<int64_t> seeds(dataset.trainNodes.begin(),
                                   dataset.trainNodes.begin() + 120);
        full = sampler.sample(seeds);
    }

    SageConfig
    sageConfig(AggregatorKind agg = AggregatorKind::Mean) const
    {
        SageConfig cfg;
        cfg.inputDim = dataset.featureDim();
        cfg.hiddenDim = 16;
        cfg.numClasses = dataset.numClasses;
        cfg.numLayers = 2;
        cfg.aggregator = agg;
        return cfg;
    }

    Dataset dataset;
    NeighborSampler sampler;
    MultiLayerBatch full;
};

TEST(Trainer, LossDecreasesOverEpochs)
{
    Env env;
    GraphSage model(env.sageConfig());
    Adam adam(model.parameters(), 0.01f);
    Trainer trainer(env.dataset, model, adam);

    const double first =
        trainer.trainMicroBatches({env.full}).loss;
    double last = first;
    for (int epoch = 0; epoch < 14; ++epoch)
        last = trainer.trainMicroBatches({env.full}).loss;
    EXPECT_LT(last, 0.6 * first);
}

TEST(Trainer, AccuracyBeatsChance)
{
    Env env;
    GraphSage model(env.sageConfig());
    Adam adam(model.parameters(), 0.01f);
    Trainer trainer(env.dataset, model, adam);
    EpochStats stats;
    for (int epoch = 0; epoch < 20; ++epoch)
        stats = trainer.trainMicroBatches({env.full});
    EXPECT_GT(stats.accuracy,
              2.0 / double(env.dataset.numClasses));
}

TEST(Trainer, StatsPopulated)
{
    Env env;
    GraphSage model(env.sageConfig());
    Adam adam(model.parameters(), 0.01f);
    TransferModel transfer;
    Trainer trainer(env.dataset, model, adam, nullptr, &transfer);
    const auto stats = trainer.trainMicroBatches({env.full});
    EXPECT_GT(stats.loss, 0.0);
    EXPECT_GT(stats.computeSeconds, 0.0);
    EXPECT_GT(stats.transferSeconds, 0.0);
    EXPECT_EQ(stats.inputNodesProcessed,
              int64_t(env.full.inputNodes().size()));
    EXPECT_GT(stats.totalNodesProcessed, stats.inputNodesProcessed);
}

TEST(Trainer, DevicePeakTracked)
{
    Env env;
    DeviceMemoryModel device; // unlimited, tracking only
    DeviceMemoryModel::Scope scope(device);
    GraphSage model(env.sageConfig());
    Adam adam(model.parameters(), 0.01f);
    Trainer trainer(env.dataset, model, adam, &device);
    const auto stats = trainer.trainMicroBatches({env.full});
    EXPECT_GT(stats.peakBytes, 0);
    EXPECT_FALSE(stats.oom);
    // Peak must at least cover parameters + optimizer states + input
    // features of the batch.
    const int64_t floor_bytes =
        model.parameterCount() * 4 * 3 +
        int64_t(env.full.inputNodes().size()) *
            env.dataset.featureDim() * 4;
    EXPECT_GE(stats.peakBytes, floor_bytes);
}

TEST(Trainer, TinyCapacityTriggersOom)
{
    Env env;
    DeviceMemoryModel device(1024); // 1 KiB: everything overflows
    DeviceMemoryModel::Scope scope(device);
    GraphSage model(env.sageConfig());
    Adam adam(model.parameters(), 0.01f);
    Trainer trainer(env.dataset, model, adam, &device);
    const auto stats = trainer.trainMicroBatches({env.full});
    EXPECT_TRUE(stats.oom);
}

TEST(Trainer, MicroBatchPeakLowerThanFullBatch)
{
    // The headline effect: partitioning the batch reduces peak memory.
    Env env;
    DeviceMemoryModel device;
    DeviceMemoryModel::Scope scope(device);
    GraphSage model(env.sageConfig());
    Adam adam(model.parameters(), 0.01f);
    Trainer trainer(env.dataset, model, adam, &device);

    const auto full_stats = trainer.trainMicroBatches({env.full});

    // Split outputs in half by position.
    const auto outputs = env.full.outputNodes();
    std::vector<int64_t> a(outputs.begin(),
                           outputs.begin() + outputs.size() / 2);
    std::vector<int64_t> b(outputs.begin() + outputs.size() / 2,
                           outputs.end());
    // Build micro-batches by re-walking the full batch.
    NeighborSampler resampler(env.dataset.graph, {-1, -1}, 12);
    const auto micro_stats = trainer.trainMicroBatches(
        {resampler.sample(a), resampler.sample(b)});

    EXPECT_LT(micro_stats.peakBytes, full_stats.peakBytes);
}

TEST(Trainer, MiniBatchModeSteps)
{
    Env env;
    GraphSage model(env.sageConfig());
    Adam adam(model.parameters(), 0.01f);
    Trainer trainer(env.dataset, model, adam);

    const auto outputs = env.full.outputNodes();
    std::vector<int64_t> a(outputs.begin(), outputs.begin() + 60);
    std::vector<int64_t> b(outputs.begin() + 60, outputs.end());
    NeighborSampler resampler(env.dataset.graph, {-1, -1}, 13);
    std::vector<MultiLayerBatch> minis = {resampler.sample(a),
                                          resampler.sample(b)};
    double first = trainer.trainMiniBatches(minis).loss;
    double last = first;
    for (int epoch = 0; epoch < 10; ++epoch)
        last = trainer.trainMiniBatches(minis).loss;
    EXPECT_LT(last, first);
}

TEST(Trainer, EvaluateReturnsFraction)
{
    Env env;
    GraphSage model(env.sageConfig());
    Adam adam(model.parameters(), 0.01f);
    Trainer trainer(env.dataset, model, adam);
    const double acc = trainer.evaluate(env.full);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
}

TEST(Trainer, GatTrains)
{
    Env env;
    GatConfig cfg;
    cfg.inputDim = env.dataset.featureDim();
    cfg.hiddenDim = 8;
    cfg.numClasses = env.dataset.numClasses;
    cfg.numLayers = 2;
    cfg.numHeads = 2;
    Gat model(cfg);
    Adam adam(model.parameters(), 0.01f);
    Trainer trainer(env.dataset, model, adam);
    const double first = trainer.trainMicroBatches({env.full}).loss;
    double last = first;
    for (int epoch = 0; epoch < 10; ++epoch)
        last = trainer.trainMicroBatches({env.full}).loss;
    EXPECT_LT(last, first);
}

TEST(Trainer, SkipsEmptyMicroBatches)
{
    Env env;
    GraphSage model(env.sageConfig());
    Adam adam(model.parameters(), 0.01f);
    Trainer trainer(env.dataset, model, adam);
    MultiLayerBatch empty;
    empty.blocks.resize(2); // zero outputs
    const auto stats = trainer.trainMicroBatches({env.full, empty});
    EXPECT_GT(stats.loss, 0.0);
}

} // namespace
} // namespace betty
