/**
 * @file
 * Gradient correctness for every autograd op (central finite
 * differences), plus graph-mechanics tests (accumulation, reuse).
 */
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/autograd.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace betty {
namespace {

using ag::NodePtr;

/** Reduce any [n, c] node to a 1x1 scalar with fixed weightings so
 * gradients do not cancel by symmetry. */
NodePtr
scalarize(const NodePtr& x)
{
    const int64_t n = x->value.rows(), c = x->value.cols();
    Tensor left(1, n);
    for (int64_t i = 0; i < n; ++i)
        left.at(0, i) = 0.3f + 0.17f * float(i);
    Tensor right(c, 1);
    for (int64_t j = 0; j < c; ++j)
        right.at(j, 0) = 0.5f - 0.11f * float(j);
    return ag::matmul(ag::matmul(ag::constant(std::move(left)), x),
                      ag::constant(std::move(right)));
}

NodePtr
param(int64_t rows, int64_t cols, uint64_t seed)
{
    Rng rng(seed);
    return ag::parameter(Tensor::uniform(rows, cols, rng, -1.0f, 1.0f));
}

TEST(Autograd, MatmulGradients)
{
    auto a = param(3, 4, 1);
    auto b = param(4, 2, 2);
    testutil::checkGradients(
        [&] { return scalarize(ag::matmul(a, b)); }, {a, b});
}

TEST(Autograd, AddGradients)
{
    auto a = param(2, 3, 3);
    auto b = param(2, 3, 4);
    testutil::checkGradients([&] { return scalarize(ag::add(a, b)); },
                             {a, b});
}

TEST(Autograd, AddBiasGradients)
{
    auto x = param(4, 3, 5);
    auto b = param(1, 3, 6);
    testutil::checkGradients(
        [&] { return scalarize(ag::addBias(x, b)); }, {x, b});
}

TEST(Autograd, ScaleGradients)
{
    auto x = param(2, 2, 7);
    testutil::checkGradients(
        [&] { return scalarize(ag::scale(x, -2.5f)); }, {x});
}

TEST(Autograd, MulElemGradients)
{
    auto a = param(3, 2, 8);
    auto b = param(3, 2, 9);
    testutil::checkGradients(
        [&] { return scalarize(ag::mulElem(a, b)); }, {a, b});
}

TEST(Autograd, SigmoidGradients)
{
    auto x = param(3, 3, 10);
    testutil::checkGradients(
        [&] { return scalarize(ag::sigmoid(x)); }, {x});
}

TEST(Autograd, TanhGradients)
{
    auto x = param(3, 3, 11);
    testutil::checkGradients([&] { return scalarize(ag::tanhOp(x)); },
                             {x});
}

TEST(Autograd, ReluForwardAndSubgradient)
{
    auto x = ag::parameter(Tensor::fromValues(1, 4, {-2, -0.5, 0.5, 2}));
    auto y = ag::relu(x);
    EXPECT_FLOAT_EQ(y->value.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(y->value.at(0, 3), 2.0f);
    ag::backward(scalarize(y));
    EXPECT_FLOAT_EQ(x->grad.at(0, 0), 0.0f); // negative side: zero grad
    EXPECT_NE(x->grad.at(0, 3), 0.0f);
}

TEST(Autograd, LeakyReluGradients)
{
    auto x = param(3, 3, 12);
    testutil::checkGradients(
        [&] { return scalarize(ag::leakyRelu(x, 0.2f)); }, {x});
}

TEST(Autograd, ConcatColsGradients)
{
    auto a = param(3, 2, 13);
    auto b = param(3, 4, 14);
    testutil::checkGradients(
        [&] { return scalarize(ag::concatCols(a, b)); }, {a, b});
}

TEST(Autograd, ConcatRowsGradients)
{
    auto a = param(2, 3, 15);
    auto b = param(4, 3, 16);
    auto c = param(1, 3, 17);
    testutil::checkGradients(
        [&] { return scalarize(ag::concatRows({a, b, c})); },
        {a, b, c});
}

TEST(Autograd, SliceColsGradients)
{
    auto x = param(3, 6, 18);
    testutil::checkGradients(
        [&] { return scalarize(ag::sliceCols(x, 2, 3)); }, {x});
}

TEST(Autograd, GatherRowsGradientsWithDuplicates)
{
    auto x = param(4, 3, 19);
    // Row 1 gathered twice: its gradient must accumulate both paths.
    const std::vector<int64_t> idx = {1, 3, 1, 0};
    testutil::checkGradients(
        [&] { return scalarize(ag::gatherRows(x, idx)); }, {x});
}

TEST(Autograd, MulColBroadcastGradients)
{
    auto x = param(4, 3, 20);
    auto s = param(4, 1, 21);
    testutil::checkGradients(
        [&] { return scalarize(ag::mulColBroadcast(x, s)); }, {x, s});
}

TEST(Autograd, SegmentSumGradients)
{
    auto x = param(6, 2, 22);
    const std::vector<int64_t> offsets = {0, 2, 2, 5, 6};
    testutil::checkGradients(
        [&] { return scalarize(ag::segmentSum(x, offsets)); }, {x});
}

TEST(Autograd, SegmentMeanGradients)
{
    auto x = param(6, 2, 23);
    const std::vector<int64_t> offsets = {0, 3, 4, 6};
    testutil::checkGradients(
        [&] { return scalarize(ag::segmentMean(x, offsets)); }, {x});
}

TEST(Autograd, SegmentMeanEmptySegmentIsZero)
{
    auto x = ag::constant(Tensor::full(2, 2, 5.0f));
    const auto y = ag::segmentMean(x, {0, 0, 2});
    EXPECT_FLOAT_EQ(y->value.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(y->value.at(1, 0), 5.0f);
}

TEST(Autograd, GatherSegmentReduceMatchesUnfused)
{
    // The fused kernel must equal gatherRows + segmentMean/Sum.
    auto x = param(5, 3, 40);
    const std::vector<int64_t> sources = {0, 2, 2, 4, 1};
    const std::vector<int64_t> offsets = {0, 2, 2, 5};
    for (bool mean : {true, false}) {
        const auto fused =
            ag::gatherSegmentReduce(x, sources, offsets, mean);
        const auto gathered = ag::gatherRows(x, sources);
        const auto unfused =
            mean ? ag::segmentMean(gathered, offsets)
                 : ag::segmentSum(gathered, offsets);
        ASSERT_TRUE(fused->value.sameShape(unfused->value));
        for (int64_t i = 0; i < fused->value.numel(); ++i)
            EXPECT_NEAR(fused->value.data()[i],
                        unfused->value.data()[i], 1e-5);
    }
}

TEST(Autograd, GatherSegmentReduceGradients)
{
    auto x = param(5, 2, 41);
    const std::vector<int64_t> sources = {0, 2, 2, 4, 1, 0};
    const std::vector<int64_t> offsets = {0, 3, 4, 6};
    testutil::checkGradients(
        [&] {
            return scalarize(
                ag::gatherSegmentReduce(x, sources, offsets, true));
        },
        {x});
    testutil::checkGradients(
        [&] {
            return scalarize(
                ag::gatherSegmentReduce(x, sources, offsets, false));
        },
        {x});
}

TEST(Autograd, SegmentMaxForwardAndGradient)
{
    auto x = ag::parameter(
        Tensor::fromValues(4, 1, {1.0f, 3.0f, 2.0f, -1.0f}));
    const auto y = ag::segmentMax(x, {0, 2, 4});
    EXPECT_FLOAT_EQ(y->value.at(0, 0), 3.0f);
    EXPECT_FLOAT_EQ(y->value.at(1, 0), 2.0f);
    ag::backward(scalarize(y));
    // Only the winners receive gradient.
    EXPECT_FLOAT_EQ(x->grad.at(0, 0), 0.0f);
    EXPECT_NE(x->grad.at(1, 0), 0.0f);
    EXPECT_NE(x->grad.at(2, 0), 0.0f);
    EXPECT_FLOAT_EQ(x->grad.at(3, 0), 0.0f);
}

TEST(Autograd, SegmentSoftmaxSumsToOnePerSegment)
{
    auto x = param(5, 1, 24);
    const std::vector<int64_t> offsets = {0, 2, 5};
    const auto y = ag::segmentSoftmax(x, offsets);
    EXPECT_NEAR(y->value.at(0, 0) + y->value.at(1, 0), 1.0, 1e-5);
    EXPECT_NEAR(y->value.at(2, 0) + y->value.at(3, 0) +
                y->value.at(4, 0),
                1.0, 1e-5);
}

TEST(Autograd, SegmentSoftmaxGradients)
{
    auto x = param(5, 2, 25);
    const std::vector<int64_t> offsets = {0, 3, 5};
    testutil::checkGradients(
        [&] { return scalarize(ag::segmentSoftmax(x, offsets)); }, {x});
}

TEST(Autograd, SoftmaxCrossEntropyMatchesManual)
{
    auto logits = ag::constant(
        Tensor::fromValues(2, 2, {2.0f, 0.0f, 0.0f, 2.0f}));
    const auto loss = ag::softmaxCrossEntropy(logits, {0, 1});
    // Both rows: -log(e^2 / (e^2 + 1)).
    const double expected = -std::log(std::exp(2.0) /
                                      (std::exp(2.0) + 1.0));
    EXPECT_NEAR(loss->value.at(0, 0), expected, 1e-5);
}

TEST(Autograd, SoftmaxCrossEntropyGradients)
{
    auto logits = param(4, 3, 26);
    const std::vector<int32_t> labels = {0, 2, 1, 2};
    testutil::checkGradients(
        [&] { return ag::softmaxCrossEntropy(logits, labels); },
        {logits}, 1e-2f, 3e-2f);
}

TEST(Autograd, DropoutDisabledIsIdentity)
{
    Rng rng(30);
    auto x = param(3, 3, 27);
    const auto y = ag::dropout(x, 0.5f, rng, /*training=*/false);
    EXPECT_EQ(y.get(), x.get());
}

TEST(Autograd, DropoutPreservesExpectation)
{
    Rng rng(31);
    auto x = ag::constant(Tensor::full(1000, 1, 1.0f));
    const auto y = ag::dropout(x, 0.3f, rng, true);
    EXPECT_NEAR(y->value.sum() / 1000.0f, 1.0f, 0.1f);
}

TEST(Autograd, GradientAccumulatesAcrossBackwards)
{
    auto x = ag::parameter(Tensor::full(1, 1, 2.0f));
    auto make = [&] { return ag::scale(x, 3.0f); };
    ag::backward(make());
    ag::backward(make());
    EXPECT_FLOAT_EQ(x->grad.at(0, 0), 6.0f); // 3 + 3
}

TEST(Autograd, DiamondGraphGradient)
{
    // y = x*x visits x through two paths: d/dx (x*x) = 2x.
    auto x = ag::parameter(Tensor::full(1, 1, 5.0f));
    ag::backward(ag::mulElem(x, x));
    EXPECT_FLOAT_EQ(x->grad.at(0, 0), 10.0f);
}

TEST(Autograd, ConstantsReceiveNoGradient)
{
    auto c = ag::constant(Tensor::full(1, 1, 1.0f));
    auto x = ag::parameter(Tensor::full(1, 1, 2.0f));
    ag::backward(ag::mulElem(c, x));
    EXPECT_TRUE(c->grad.empty());
    EXPECT_FLOAT_EQ(x->grad.at(0, 0), 1.0f);
}

TEST(Autograd, DeepChainDoesNotOverflowStack)
{
    // Iterative toposort must survive long LSTM-like chains.
    auto x = ag::parameter(Tensor::full(1, 1, 1.0f));
    NodePtr node = x;
    for (int i = 0; i < 20000; ++i)
        node = ag::scale(node, 1.0f);
    ag::backward(node);
    EXPECT_FLOAT_EQ(x->grad.at(0, 0), 1.0f);
}

TEST(AutogradDeathTest, BackwardRequiresScalarRoot)
{
    auto x = ag::parameter(Tensor::zeros(2, 2));
    EXPECT_DEATH(ag::backward(x), "scalar");
}

} // namespace
} // namespace betty
