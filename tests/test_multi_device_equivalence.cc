/**
 * @file
 * Differential proof that multi-device sharding is a pure
 * placement/accounting decision: for device counts {1, 2, 4, 8} x
 * threads {1, 8} x pipeline on/off x per-device cache {0, small},
 * epoch losses and final parameter hashes are bit-identical to the
 * single-device Trainer. The same argument makes device-drop
 * recovery exact: a run that loses a device mid-epoch finishes with
 * the same parameter hash as every other configuration, because
 * assignment never touches the float operation order.
 *
 * Also asserts the sampler contract is untouched by the engine — the
 * precondition for keeping the PR 3 golden-hash corpus
 * (tests/golden/) without regeneration.
 */
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/betty.h"
#include "data/catalog.h"
#include "memory/device_memory.h"
#include "partition/partitioner.h"
#include "sampling/neighbor_sampler.h"
#include "train/multi_device.h"
#include "train/trainer.h"
#include "util/fault.h"
#include "util/thread_pool.h"

namespace betty {
namespace {

uint64_t
hashParameters(const GnnModel& model)
{
    uint64_t hash = 1469598103934665603ull;
    for (const auto& param : model.parameters())
        for (int64_t i = 0; i < param->value.numel(); ++i) {
            uint32_t bits;
            std::memcpy(&bits, &param->value.data()[i],
                        sizeof(bits));
            hash = (hash ^ bits) * 1099511628211ull;
        }
    return hash;
}

/** FNV over a batch's block structure: the sampler's contract. */
uint64_t
hashBatch(const MultiLayerBatch& batch)
{
    uint64_t hash = 1469598103934665603ull;
    auto mix = [&hash](int64_t value) {
        hash = (hash ^ uint64_t(value)) * 1099511628211ull;
    };
    for (const Block& block : batch.blocks) {
        for (const int64_t node : block.srcNodes())
            mix(node);
        for (const int64_t node : block.dstNodes())
            mix(node);
        for (const int64_t offset : block.edgeOffsets())
            mix(offset);
        for (const int64_t src : block.edgeSources())
            mix(src);
    }
    return hash;
}

/** What every configuration must agree on, bit for bit. Simulated
 * seconds, per-device peaks, and transfer bytes are deliberately
 * ABSENT: placement legitimately changes where bytes are charged. */
struct RunResult
{
    std::vector<double> losses;     // one per epoch
    std::vector<double> accuracies; // one per epoch
    uint64_t paramHash = 0;

    // Multi-device extras (not part of the equivalence comparison).
    int64_t deviceDrops = 0;
    int32_t liveDevices = 0;
    std::vector<int64_t> transferBytes; // per device, last epoch

    // Straggler-supervisor extras (summed over epochs).
    int64_t deviceSlowFaults = 0;
    int64_t stragglersDetected = 0;
    int64_t stragglerResharded = 0;

    /** Sum over epochs of max-over-devices simulated link seconds:
     * the deterministic transfer bound on the parallel epoch time
     * (the compute portion is measured wall clock, so the strict
     * better-than comparisons run on this component). */
    double maxTransferSeconds = 0.0;
};

struct Env
{
    Env() : dataset(loadCatalogDataset("cora_like", 0.2, 11))
    {
        NeighborSampler sampler(dataset.graph, {4, 6}, 12);
        std::vector<int64_t> seeds(dataset.trainNodes.begin(),
                                   dataset.trainNodes.begin() + 160);
        const auto full = sampler.sample(seeds);
        BettyPartitioner partitioner;
        micros = extractMicroBatches(full,
                                     partitioner.partition(full, 8));
    }

    SageConfig
    sageConfig() const
    {
        SageConfig cfg;
        cfg.inputDim = dataset.featureDim();
        cfg.hiddenDim = 16;
        cfg.numClasses = dataset.numClasses;
        cfg.numLayers = 2;
        cfg.seed = 5;
        return cfg;
    }

    /** The single-device reference: the plain Trainer. */
    RunResult
    runSingle(int epochs) const
    {
        ThreadPool::setGlobalThreads(1);
        GraphSage model(sageConfig());
        Adam adam(model.parameters(), 0.01f);
        Trainer trainer(dataset, model, adam);
        RunResult result;
        for (int epoch = 0; epoch < epochs; ++epoch) {
            const EpochStats stats =
                trainer.trainMicroBatches(micros);
            result.losses.push_back(stats.loss);
            result.accuracies.push_back(stats.accuracy);
        }
        result.paramHash = hashParameters(model);
        return result;
    }

    /**
     * Train @p epochs through the MultiDeviceEngine. Fresh model /
     * optimizer / engine per call, so two calls differ only in the
     * sharding, scheduling, and cache knobs — exactly what the
     * differential assertions need. @p faults (if non-empty) is
     * installed as the fault plan and cleared before returning.
     */
    RunResult
    runMulti(int32_t devices, int32_t threads, bool pipeline,
             int64_t cache_bytes_per_device, int epochs,
             const std::string& faults = "",
             uint64_t fault_seed = 0,
             double straggler_factor = -1.0) const
    {
        ThreadPool::setGlobalThreads(threads);
        if (!faults.empty()) {
            fault::FaultPlan plan;
            std::string error;
            EXPECT_TRUE(
                fault::FaultPlan::parse(faults, plan, &error))
                << error;
            plan.seed = fault_seed;
            fault::Injector::install(std::move(plan));
        }

        GraphSage model(sageConfig());
        Adam adam(model.parameters(), 0.01f);
        MultiDeviceConfig config;
        config.numDevices = devices;
        config.cacheBytesPerDevice = cache_bytes_per_device;
        config.pipeline = pipeline;
        if (straggler_factor >= 0.0)
            config.stragglerFactor = straggler_factor;
        MultiDeviceEngine engine(dataset, model, adam, config);

        RunResult result;
        for (int epoch = 1; epoch <= epochs; ++epoch) {
            const MultiDeviceStats stats =
                engine.trainEpoch(micros, epoch);
            result.losses.push_back(stats.loss);
            result.accuracies.push_back(stats.accuracy);
            result.deviceDrops += stats.deviceDrops;
            result.liveDevices = stats.liveDevices;
            result.transferBytes = stats.deviceTransferBytes;
            result.deviceSlowFaults += stats.deviceSlowFaults;
            result.stragglersDetected += stats.stragglersDetected;
            result.stragglerResharded += stats.stragglerResharded;
            double slowest = 0.0;
            for (const double s : stats.deviceTransferSeconds)
                slowest = std::max(slowest, s);
            result.maxTransferSeconds += slowest;
        }
        result.paramHash = hashParameters(model);
        fault::Injector::clear();
        ThreadPool::setGlobalThreads(1);
        return result;
    }

    /** Row bytes of this dataset; sizes caches in whole rows. */
    int64_t
    rowBytes() const
    {
        return dataset.featureDim() * int64_t(sizeof(float));
    }

    Dataset dataset;
    std::vector<MultiLayerBatch> micros;
};

void
expectSameNumerics(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.losses, b.losses);
    EXPECT_EQ(a.accuracies, b.accuracies);
    EXPECT_EQ(a.paramHash, b.paramHash);
}

constexpr int kEpochs = 3;

TEST(MultiDeviceEquivalence, BitIdenticalAcrossDevicesThreadsCache)
{
    Env env;
    ASSERT_GT(env.micros.size(), 1u);
    const RunResult reference = env.runSingle(kEpochs);
    EXPECT_GT(reference.losses.front(), 0.0); // real work happened

    const int64_t small = 64 * env.rowBytes();
    for (const int32_t devices : {1, 2, 4, 8})
        for (const int32_t threads : {1, 8})
            for (const bool pipeline : {false, true})
                for (const int64_t cache : {int64_t(0), small}) {
                    SCOPED_TRACE(
                        "devices=" + std::to_string(devices) +
                        " threads=" + std::to_string(threads) +
                        " pipeline=" + std::to_string(pipeline) +
                        " cache=" + std::to_string(cache));
                    const RunResult result = env.runMulti(
                        devices, threads, pipeline, cache, kEpochs);
                    expectSameNumerics(reference, result);
                }
}

TEST(MultiDeviceEquivalence, TransferAccountingScheduleIndependent)
{
    // For a fixed device count and cache size, the PER-DEVICE byte
    // accounting — not just the numerics — must be independent of
    // thread count and pipelining: charges happen at consumption
    // time on the calling thread, in canonical order.
    Env env;
    const int64_t cache = 48 * env.rowBytes();
    const RunResult serial = env.runMulti(4, 1, false, cache, kEpochs);
    const RunResult threaded = env.runMulti(4, 8, false, cache, kEpochs);
    const RunResult pipelined = env.runMulti(4, 8, true, cache, kEpochs);
    EXPECT_EQ(serial.transferBytes, threaded.transferBytes);
    EXPECT_EQ(serial.transferBytes, pipelined.transferBytes);
}

TEST(MultiDeviceEquivalence, EpochDropMatchesFewerDevicesFromStart)
{
    // A device lost at the start of epoch 2 leaves epochs 2..3
    // running on 3 devices. The invariant (multi_device.h): the run
    // finishes bit-identical to running on the survivors from the
    // start — and, because placement never touches numerics, to every
    // other configuration too.
    Env env;
    const RunResult dropped = env.runMulti(4, 1, false, 0, kEpochs,
                                           "device-drop@epoch2");
    EXPECT_EQ(dropped.deviceDrops, 1);
    EXPECT_EQ(dropped.liveDevices, 3);

    const RunResult three = env.runMulti(3, 1, false, 0, kEpochs);
    expectSameNumerics(three, dropped);
    expectSameNumerics(env.runSingle(kEpochs), dropped);
}

TEST(MultiDeviceEquivalence, MidEpochDropReshardsWithExactNumerics)
{
    // The drop fires just before micro-batch 3 of epoch 2: batches
    // already executed on the victim stay counted, pending ones
    // re-shard over the survivors, and the numerics never notice.
    Env env;
    for (const int32_t threads : {1, 8})
        for (const bool pipeline : {false, true}) {
            SCOPED_TRACE("threads=" + std::to_string(threads) +
                         " pipeline=" + std::to_string(pipeline));
            const RunResult dropped =
                env.runMulti(4, threads, pipeline, 0, kEpochs,
                             "device-drop=0@epoch2.mb3");
            EXPECT_EQ(dropped.deviceDrops, 1);
            EXPECT_EQ(dropped.liveDevices, 3);
            expectSameNumerics(env.runSingle(kEpochs), dropped);
        }
}

TEST(MultiDeviceEquivalence, DropRequestsForDeadDevicesAreIgnored)
{
    // Dropping device 2 twice: the second event finds it dead and is
    // ignored (warn + continue), not a crash or a double count.
    Env env;
    const RunResult result = env.runMulti(
        4, 1, false, 0, kEpochs,
        "device-drop=2@epoch1;device-drop=2@epoch2");
    EXPECT_EQ(result.deviceDrops, 1);
    EXPECT_EQ(result.liveDevices, 3);
    expectSameNumerics(env.runSingle(kEpochs), result);
}

TEST(MultiDeviceEquivalence, StragglerReshardBeatsStandingStill)
{
    // The gray-failure acceptance case (docs/MULTI_DEVICE.md): a 4x
    // link slowdown on device 1 from epoch 2 on. The supervisor must
    // notice the straggler from OBSERVED link times and move pending
    // micro-batches toward healthy devices — same numerics, strictly
    // less simulated transfer-bound epoch time than leaving the plan
    // alone (stragglerFactor=0 disables the supervisor; the compute
    // portion of epochSeconds is measured wall clock, so the strict
    // comparison runs on the deterministic link component the fault
    // actually inflates).
    Env env;
    const std::string slow = "device-slow=4@epoch2:device=1";
    const RunResult supervised =
        env.runMulti(4, 1, false, 0, kEpochs, slow);
    const RunResult unsupervised =
        env.runMulti(4, 1, false, 0, kEpochs, slow,
                     /*fault_seed=*/0, /*straggler_factor=*/0.0);

    EXPECT_EQ(supervised.deviceSlowFaults, 1);
    EXPECT_GE(supervised.stragglersDetected, 1);
    EXPECT_GE(supervised.stragglerResharded, 1);
    EXPECT_EQ(unsupervised.stragglersDetected, 0);
    EXPECT_EQ(unsupervised.stragglerResharded, 0);

    // Graceful degradation is attribution-only: both runs stay
    // bit-identical to the fault-free single-device reference.
    const RunResult reference = env.runSingle(kEpochs);
    expectSameNumerics(reference, supervised);
    expectSameNumerics(reference, unsupervised);

    EXPECT_LT(supervised.maxTransferSeconds,
              unsupervised.maxTransferSeconds);
}

TEST(MultiDeviceEquivalence, DeviceSlowHealsAfterItsDuration)
{
    // duration=1 scopes the slowdown to epoch 2 alone; epoch 3 runs
    // on a healed fleet, so the transfer bound of the whole run stays
    // strictly below the same schedule without a duration.
    Env env;
    const RunResult healed = env.runMulti(
        4, 1, false, 0, kEpochs,
        "device-slow=4@epoch2:device=1:duration=1");
    const RunResult forever = env.runMulti(
        4, 1, false, 0, kEpochs, "device-slow=4@epoch2:device=1",
        /*fault_seed=*/0, /*straggler_factor=*/0.0);
    expectSameNumerics(env.runSingle(kEpochs), healed);
    EXPECT_LT(healed.maxTransferSeconds,
              forever.maxTransferSeconds);
}

TEST(MultiDeviceEquivalence, TransferFlakyIsAbsorbedDeterministically)
{
    // Probabilistic link flakiness through the retry policy: the
    // failure pattern is a pure function of (seed, position), so the
    // same seed replays bit-for-bit, and the retries are
    // attribution-only — numerics match the fault-free reference for
    // ANY seed.
    Env env;
    const std::string flaky = "transfer-flaky=0.3@epoch2";
    const RunResult first =
        env.runMulti(2, 1, false, 0, kEpochs, flaky, 77);
    const RunResult replay =
        env.runMulti(2, 1, false, 0, kEpochs, flaky, 77);
    const RunResult other_seed =
        env.runMulti(2, 1, false, 0, kEpochs, flaky, 78);

    const RunResult reference = env.runSingle(kEpochs);
    expectSameNumerics(reference, first);
    expectSameNumerics(reference, other_seed);
    EXPECT_EQ(first.maxTransferSeconds, replay.maxTransferSeconds);
    EXPECT_EQ(first.transferBytes, replay.transferBytes);
}

TEST(MultiDeviceEquivalence, SamplerContractUntouchedByEngine)
{
    // The PR 3 golden-hash corpus (tests/golden) certifies sampler
    // output. Those goldens were NOT regenerated for this change, so
    // prove the precondition: a multi-device training run leaves the
    // sampler's output for a fixed seed bit-identical — the engine
    // never touches sampling state or the RNG stream.
    Env env;
    std::vector<int64_t> seeds(env.dataset.trainNodes.begin(),
                               env.dataset.trainNodes.begin() + 96);
    auto sampleHash = [&]() {
        NeighborSampler sampler(env.dataset.graph, {4, 6}, 21);
        return hashBatch(sampler.sample(seeds));
    };
    const uint64_t before = sampleHash();
    env.runMulti(4, 8, true, 64 * env.rowBytes(), 2);
    const uint64_t after = sampleHash();
    EXPECT_EQ(before, after);
}

} // namespace
} // namespace betty
