/**
 * @file
 * Pipelined micro-batch execution (Trainer::setPipeline +
 * ThreadPool > 1 lane) must be an invisible optimization: every
 * EpochStats field, the trained parameters, the DeviceMemoryModel
 * peak/per-category accounting, and the device.oom_events counter are
 * bit-identical to the serial schedule — overlapping the host-side
 * gather of micro-batch k+1 with the compute of k may only change
 * wall-clock.
 */
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/betty.h"
#include "data/catalog.h"
#include "memory/device_memory.h"
#include "memory/transfer_model.h"
#include "obs/memprof.h"
#include "obs/metrics.h"
#include "partition/partitioner.h"
#include "sampling/neighbor_sampler.h"
#include "train/trainer.h"
#include "util/thread_pool.h"

namespace betty {
namespace {

/** Everything one epoch run can be compared on, bit for bit. */
struct RunResult
{
    EpochStats stats;
    int64_t peakBytes = 0;
    std::vector<int64_t> categoryPeaks;
    int64_t oomEvents = 0; // device.oom_events delta of this run
    uint64_t paramHash = 0;
};

uint64_t
hashParameters(const GnnModel& model)
{
    uint64_t hash = 1469598103934665603ull;
    for (const auto& param : model.parameters())
        for (int64_t i = 0; i < param->value.numel(); ++i) {
            uint32_t bits;
            std::memcpy(&bits, &param->value.data()[i],
                        sizeof(bits));
            hash = (hash ^ bits) * 1099511628211ull;
        }
    return hash;
}

struct Env
{
    Env() : dataset(loadCatalogDataset("cora_like", 0.2, 11))
    {
        NeighborSampler sampler(dataset.graph, {4, 6}, 12);
        std::vector<int64_t> seeds(dataset.trainNodes.begin(),
                                   dataset.trainNodes.begin() + 160);
        const auto full = sampler.sample(seeds);
        BettyPartitioner partitioner;
        micros = extractMicroBatches(full,
                                     partitioner.partition(full, 8));
    }

    SageConfig
    sageConfig() const
    {
        SageConfig cfg;
        cfg.inputDim = dataset.featureDim();
        cfg.hiddenDim = 16;
        cfg.numClasses = dataset.numClasses;
        cfg.numLayers = 2;
        cfg.seed = 5;
        return cfg;
    }

    /**
     * Train @p epochs with a given schedule. Fresh model/optimizer/
     * device per call (seeded), so two calls differ only in how the
     * epoch is scheduled.
     */
    RunResult
    run(int32_t threads, bool pipeline, int epochs,
        int64_t capacity_bytes = 0) const
    {
        ThreadPool::setGlobalThreads(threads);
        obs::Metrics::setEnabled(true);
        const int64_t oom_before =
            obs::Metrics::counter("device.oom_events").value();

        DeviceMemoryModel device(capacity_bytes);
        DeviceMemoryModel::Scope scope(device);
        GraphSage model(sageConfig());
        Adam adam(model.parameters(), 0.01f);
        TransferModel transfer;
        Trainer trainer(dataset, model, adam, &device, &transfer);
        trainer.setPipeline(pipeline);

        RunResult result;
        for (int epoch = 0; epoch < epochs; ++epoch)
            result.stats = trainer.trainMicroBatches(micros);

        result.peakBytes = device.peakBytes();
        for (size_t c = 0; c < obs::kMemCategoryCount; ++c)
            result.categoryPeaks.push_back(
                device.peakBytes(obs::MemCategory(c)));
        result.oomEvents =
            obs::Metrics::counter("device.oom_events").value() -
            oom_before;
        result.paramHash = hashParameters(model);
        ThreadPool::setGlobalThreads(1);
        return result;
    }

    Dataset dataset;
    std::vector<MultiLayerBatch> micros;
};

void
expectBitIdentical(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.stats.loss, b.stats.loss);
    EXPECT_EQ(a.stats.accuracy, b.stats.accuracy);
    EXPECT_EQ(a.stats.transferSeconds, b.stats.transferSeconds);
    EXPECT_EQ(a.stats.peakBytes, b.stats.peakBytes);
    EXPECT_EQ(a.stats.oom, b.stats.oom);
    EXPECT_EQ(a.stats.inputNodesProcessed,
              b.stats.inputNodesProcessed);
    EXPECT_EQ(a.stats.totalNodesProcessed,
              b.stats.totalNodesProcessed);
    EXPECT_EQ(a.peakBytes, b.peakBytes);
    EXPECT_EQ(a.categoryPeaks, b.categoryPeaks);
    EXPECT_EQ(a.oomEvents, b.oomEvents);
    EXPECT_EQ(a.paramHash, b.paramHash);
}

TEST(Pipeline, BitIdenticalToSerialSchedule)
{
    Env env;
    ASSERT_GT(env.micros.size(), 1u);
    const RunResult serial = env.run(1, false, 3);
    const RunResult pipelined = env.run(4, true, 3);
    expectBitIdentical(serial, pipelined);
    // Losses actually moved (the runs did real work).
    EXPECT_GT(serial.stats.loss, 0.0);
}

TEST(Pipeline, ThreadCountDoesNotLeakIntoResults)
{
    Env env;
    const RunResult two = env.run(2, true, 2);
    const RunResult eight = env.run(8, true, 2);
    expectBitIdentical(two, eight);
}

TEST(Pipeline, NoPipelineFlagMatchesPipelinedRun)
{
    // --no-pipeline at 4 threads == pipelined at 4 threads: the flag
    // changes scheduling only, never results.
    Env env;
    const RunResult off = env.run(4, false, 2);
    const RunResult on = env.run(4, true, 2);
    expectBitIdentical(off, on);
}

TEST(Pipeline, OomAccountingUnchangedByOverlap)
{
    // Constrained device: OOM episodes must fire identically whether
    // or not a prefetch is in flight during compute — the staging
    // buffer is host memory and must never appear in device
    // accounting.
    Env env;
    const RunResult serial = env.run(1, false, 2, 64 * 1024);
    const RunResult pipelined = env.run(4, true, 2, 64 * 1024);
    EXPECT_TRUE(serial.stats.oom); // capacity chosen to overflow
    expectBitIdentical(serial, pipelined);
    EXPECT_GT(serial.oomEvents, 0);
}

TEST(Pipeline, SingleMicroBatchFallsBackToSerial)
{
    // One micro-batch leaves nothing to overlap; the pipelined path
    // must degrade to the serial one without deadlock or divergence.
    Env env;
    NeighborSampler sampler(env.dataset.graph, {4, 6}, 12);
    std::vector<int64_t> seeds(env.dataset.trainNodes.begin(),
                               env.dataset.trainNodes.begin() + 64);
    const std::vector<MultiLayerBatch> one = {sampler.sample(seeds)};

    auto runOne = [&](int32_t threads, bool pipeline) {
        ThreadPool::setGlobalThreads(threads);
        GraphSage model(env.sageConfig());
        Adam adam(model.parameters(), 0.01f);
        Trainer trainer(env.dataset, model, adam);
        trainer.setPipeline(pipeline);
        const auto stats = trainer.trainMicroBatches(one);
        ThreadPool::setGlobalThreads(1);
        return std::pair<double, uint64_t>(stats.loss,
                                           hashParameters(model));
    };
    EXPECT_EQ(runOne(1, false), runOne(4, true));
}

} // namespace
} // namespace betty
