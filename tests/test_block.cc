/**
 * @file
 * Tests for the bipartite Block and MultiLayerBatch structures.
 */
#include <set>

#include <gtest/gtest.h>

#include "sampling/block.h"
#include "test_helpers.h"

namespace betty {
namespace {

TEST(Block, DstNodesAreSrcPrefix)
{
    const Block b({10, 20}, {{30, 40}, {40, 50}});
    ASSERT_EQ(b.numDst(), 2);
    ASSERT_EQ(b.numSrc(), 5); // 10, 20, 30, 40, 50
    EXPECT_EQ(b.srcNodes()[0], 10);
    EXPECT_EQ(b.srcNodes()[1], 20);
    EXPECT_EQ(b.dstNodes()[0], 10);
    EXPECT_EQ(b.dstNodes()[1], 20);
}

TEST(Block, SharedSourcesDeduplicated)
{
    const Block b({1, 2}, {{5, 6}, {6, 5}});
    // Sources 5 and 6 shared by both dsts: counted once in srcNodes.
    EXPECT_EQ(b.numSrc(), 4);
    EXPECT_EQ(b.numEdges(), 4);
}

TEST(Block, DstAppearingAsSourceReusesPrefixSlot)
{
    const Block b({1, 2}, {{2}, {1}});
    // 1 and 2 are already local 0/1; no new source slots.
    EXPECT_EQ(b.numSrc(), 2);
    EXPECT_EQ(b.inEdges(0)[0], 1); // dst 1 aggregates node 2 (local 1)
    EXPECT_EQ(b.inEdges(1)[0], 0);
}

TEST(Block, InEdgesLocalIndicesValid)
{
    const auto batch = testutil::tinyBatch();
    for (const auto& block : batch.blocks) {
        for (int64_t d = 0; d < block.numDst(); ++d) {
            for (int64_t s : block.inEdges(d)) {
                EXPECT_GE(s, 0);
                EXPECT_LT(s, block.numSrc());
            }
        }
    }
}

TEST(Block, InDegreeMatchesSourceLists)
{
    const Block b({0, 1, 2}, {{5, 6, 7}, {}, {5}});
    EXPECT_EQ(b.inDegree(0), 3);
    EXPECT_EQ(b.inDegree(1), 0);
    EXPECT_EQ(b.inDegree(2), 1);
    EXPECT_EQ(b.numEdges(), 4);
}

TEST(Block, EdgeOffsetsAreCsr)
{
    const Block b({0, 1}, {{5, 6}, {7}});
    const auto& offsets = b.edgeOffsets();
    ASSERT_EQ(offsets.size(), 3u);
    EXPECT_EQ(offsets[0], 0);
    EXPECT_EQ(offsets[1], 2);
    EXPECT_EQ(offsets[2], 3);
    EXPECT_EQ(int64_t(b.edgeSources().size()), 3);
}

TEST(Block, DegreeBucketsExactAndTail)
{
    // Degrees: 1, 1, 2, 5 with max_bucket 3 -> tail holds the 5.
    const Block b({0, 1, 2, 3},
                  {{10}, {11}, {10, 11}, {10, 11, 12, 13, 14}});
    const auto buckets = b.degreeBuckets(3);
    ASSERT_EQ(buckets.size(), 4u);
    EXPECT_TRUE(buckets[0].empty());
    EXPECT_EQ(buckets[1].size(), 2u);
    EXPECT_EQ(buckets[2].size(), 1u);
    EXPECT_EQ(buckets[3].size(), 1u); // tail
    EXPECT_EQ(buckets[3][0], 3);
}

TEST(MultiLayerBatch, InputAndOutputViews)
{
    const auto batch = testutil::tinyBatch();
    EXPECT_EQ(batch.numLayers(), 2);
    const auto outputs = batch.outputNodes();
    ASSERT_EQ(outputs.size(), 2u);
    EXPECT_EQ(outputs[0], 0);
    EXPECT_EQ(outputs[1], 1);
    // Input nodes are the innermost block's sources.
    EXPECT_EQ(batch.inputNodes().size(),
              size_t(batch.blocks.front().numSrc()));
}

TEST(MultiLayerBatch, LayerChaining)
{
    const auto batch = testutil::tinyBatch();
    // Inner block's destinations are exactly the outer block's sources.
    const auto inner_dsts = batch.blocks[0].dstNodes();
    const auto& outer_srcs = batch.blocks[1].srcNodes();
    ASSERT_EQ(inner_dsts.size(), outer_srcs.size());
    for (size_t i = 0; i < outer_srcs.size(); ++i)
        EXPECT_EQ(inner_dsts[i], outer_srcs[i]);
}

TEST(MultiLayerBatch, TotalEdges)
{
    const auto batch = testutil::tinyBatch();
    EXPECT_EQ(batch.totalEdges(),
              batch.blocks[0].numEdges() + batch.blocks[1].numEdges());
}

TEST(BlockDeathTest, DuplicateDestinationPanics)
{
    EXPECT_DEATH(Block({1, 1}, {{2}, {3}}), "duplicate destination");
}

TEST(BlockDeathTest, MismatchedListsPanics)
{
    EXPECT_DEATH(Block({1, 2}, {{3}}), "one source list");
}

} // namespace
} // namespace betty
