/**
 * @file
 * Differential kernel-equivalence tier (`ctest -L kernels`,
 * docs/KERNELS.md): the AVX2 backend must agree with the scalar
 * reference — bit-for-bit where the ULP policy promises it
 * (elementwise, gatherRows, Sum aggregation, Max aggregation
 * including argmax and NaN ordering), and within a BLAS-style
 * forward error bound everywhere FMA or lane-split accumulation
 * reassociates rounding (gemm*, Mean aggregation). Shapes are
 * randomized across remainder lanes, empty rows, and single-row
 * blocks; the end-to-end tests check gradient and loss parity of a
 * real model between kernel modes.
 *
 * Every test skips (vacuously passes) on hardware or toolchains
 * without AVX2+FMA — the dispatch tier covers that fallback.
 */
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/betty.h"
#include "core/micro_batch.h"
#include "data/catalog.h"
#include "kernels/dispatch.h"
#include "kernels/kernels.h"
#include "nn/models.h"
#include "nn/optim.h"
#include "sampling/neighbor_sampler.h"
#include "tensor/autograd.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace betty {
namespace {

bool
avx2Available()
{
    return kernels::builtWithAvx2() && kernels::cpuSupportsAvx2();
}

/** Run @p fn under each backend; returns {scalar, avx2} outputs. */
template <typename Fn>
std::pair<std::vector<float>, std::vector<float>>
runBothBackends(size_t out_elems, Fn&& fn)
{
    std::vector<float> scalar_out(out_elems, 0.0f);
    std::vector<float> avx2_out(out_elems, 0.0f);
    kernels::setKernelMode(kernels::KernelMode::Scalar);
    fn(scalar_out.data());
    kernels::setKernelMode(kernels::KernelMode::Avx2);
    fn(avx2_out.data());
    kernels::setKernelMode(kernels::KernelMode::Scalar);
    return {std::move(scalar_out), std::move(avx2_out)};
}

/** Bitwise equality that treats every NaN as equal to every NaN. */
void
expectBitExact(const std::vector<float>& ref,
               const std::vector<float>& got)
{
    ASSERT_EQ(ref.size(), got.size());
    for (size_t i = 0; i < ref.size(); ++i) {
        if (std::isnan(ref[i]) && std::isnan(got[i]))
            continue;
        uint32_t rb, gb;
        std::memcpy(&rb, &ref[i], 4);
        std::memcpy(&gb, &got[i], 4);
        ASSERT_EQ(rb, gb) << "elem " << i << ": " << ref[i] << " vs "
                          << got[i];
    }
}

/**
 * The docs/KERNELS.md forward error bound:
 * |got - ref| <= C * depth * eps * scale, with C = 8, depth the
 * reduction length, and scale the magnitude of the inputs feeding
 * one output element. NaN matches NaN; +-0 are equal; infinities
 * must match exactly.
 */
void
expectWithinBound(const std::vector<float>& ref,
                  const std::vector<float>& got, int64_t depth,
                  float scale)
{
    ASSERT_EQ(ref.size(), got.size());
    const float tol = 8.0f * float(depth) * 1.1920929e-7f * scale;
    for (size_t i = 0; i < ref.size(); ++i) {
        if (std::isnan(ref[i])) {
            ASSERT_TRUE(std::isnan(got[i])) << "elem " << i;
            continue;
        }
        if (std::isinf(ref[i])) {
            ASSERT_EQ(ref[i], got[i]) << "elem " << i;
            continue;
        }
        ASSERT_NEAR(ref[i], got[i], tol)
            << "elem " << i << " (depth " << depth << ")";
    }
}

std::vector<float>
randomValues(Rng& rng, int64_t n, float lo = -2.0f, float hi = 2.0f)
{
    std::vector<float> values(static_cast<size_t>(n));
    for (auto& v : values)
        v = float(rng.uniformReal(lo, hi));
    return values;
}

/** Random CSR block: returns {sources, offsets} over @p rows input
 * rows, deliberately including empty and single-edge segments. */
std::pair<std::vector<int64_t>, std::vector<int64_t>>
randomCsr(Rng& rng, int64_t segments, int64_t rows)
{
    std::vector<int64_t> sources;
    std::vector<int64_t> offsets{0};
    for (int64_t s = 0; s < segments; ++s) {
        // ~1/4 empty, ~1/4 single-edge, rest up to 9 edges.
        const int64_t pick = rng.uniformInt(4);
        const int64_t deg = pick == 0   ? 0
                            : pick == 1 ? 1
                                        : rng.uniformInt(8) + 2;
        for (int64_t e = 0; e < deg; ++e)
            sources.push_back(rng.uniformInt(rows));
        offsets.push_back(int64_t(sources.size()));
    }
    return {std::move(sources), std::move(offsets)};
}

class KernelEquivalence : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (!avx2Available())
            GTEST_SKIP() << "AVX2+FMA unavailable; covered by the "
                            "dispatch fallback tier";
    }

    void TearDown() override
    {
        kernels::setKernelMode(kernels::KernelMode::Scalar);
    }
};

TEST_F(KernelEquivalence, GemmRandomShapesWithinBound)
{
    Rng rng(101);
    for (int trial = 0; trial < 30; ++trial) {
        // Shapes straddle the 32-column tile, the 8-lane block, and
        // the scalar tail (n in [1, 40]).
        const int64_t m = rng.uniformInt(17) + 1;
        const int64_t k = rng.uniformInt(33) + 1;
        const int64_t n = rng.uniformInt(40) + 1;
        auto a = randomValues(rng, m * k);
        auto b = randomValues(rng, k * n);
        // Plant zeros so the sparsity skip takes both arms.
        for (size_t i = 0; i < a.size(); i += 3)
            a[i] = 0.0f;
        auto [ref, got] = runBothBackends(
            size_t(m * n), [&](float* out) {
                kernels::gemm(a.data(), b.data(), out, m, k, n);
            });
        expectWithinBound(ref, got, k, 4.0f * float(k));
    }
}

TEST_F(KernelEquivalence, GemmTransAWithinBound)
{
    Rng rng(102);
    for (int trial = 0; trial < 30; ++trial) {
        const int64_t m = rng.uniformInt(17) + 1;
        const int64_t k = rng.uniformInt(33) + 1;
        const int64_t n = rng.uniformInt(40) + 1;
        auto a = randomValues(rng, k * m);
        auto b = randomValues(rng, k * n);
        auto [ref, got] = runBothBackends(
            size_t(m * n), [&](float* out) {
                kernels::gemmTransA(a.data(), b.data(), out, m, k, n);
            });
        expectWithinBound(ref, got, k, 4.0f * float(k));
    }
}

TEST_F(KernelEquivalence, GemmTransBWithinBound)
{
    Rng rng(103);
    for (int trial = 0; trial < 30; ++trial) {
        const int64_t m = rng.uniformInt(17) + 1;
        const int64_t k = rng.uniformInt(40) + 1;
        const int64_t n = rng.uniformInt(17) + 1;
        auto a = randomValues(rng, m * k);
        auto b = randomValues(rng, n * k);
        auto [ref, got] = runBothBackends(
            size_t(m * n), [&](float* out) {
                kernels::gemmTransB(a.data(), b.data(), out, m, k, n);
            });
        expectWithinBound(ref, got, k, 4.0f * float(k));
    }
}

TEST_F(KernelEquivalence, GemmAccumulatesIntoExistingOutput)
{
    Rng rng(104);
    const int64_t m = 5, k = 7, n = 19;
    auto a = randomValues(rng, m * k);
    auto b = randomValues(rng, k * n);
    auto seed_c = randomValues(rng, m * n);
    auto [ref, got] =
        runBothBackends(size_t(m * n), [&](float* out) {
            std::copy(seed_c.begin(), seed_c.end(), out);
            kernels::gemm(a.data(), b.data(), out, m, k, n);
        });
    expectWithinBound(ref, got, k, 4.0f * float(k));
}

TEST_F(KernelEquivalence, GatherAggregateSumBitExact)
{
    Rng rng(105);
    for (int trial = 0; trial < 30; ++trial) {
        const int64_t rows = rng.uniformInt(40) + 1;
        const int64_t cols = rng.uniformInt(70) + 1;
        const int64_t segments = rng.uniformInt(12) + 1;
        auto x = randomValues(rng, rows * cols);
        auto [sources, offsets] = randomCsr(rng, segments, rows);
        auto [ref, got] = runBothBackends(
            size_t(segments * cols), [&](float* out) {
                kernels::gatherAggregate(
                    x.data(), rows, cols, sources.data(),
                    offsets.data(), segments, kernels::Reduce::Sum,
                    out);
            });
        // Sum multiplies by exactly 1.0, which FMA cannot re-round:
        // the vector path is bit-identical, not merely close.
        expectBitExact(ref, got);
    }
}

TEST_F(KernelEquivalence, GatherAggregateMeanWithinBound)
{
    Rng rng(106);
    for (int trial = 0; trial < 30; ++trial) {
        const int64_t rows = rng.uniformInt(40) + 1;
        const int64_t cols = rng.uniformInt(70) + 1;
        const int64_t segments = rng.uniformInt(12) + 1;
        auto x = randomValues(rng, rows * cols);
        auto [sources, offsets] = randomCsr(rng, segments, rows);
        int64_t max_deg = 1;
        for (int64_t s = 0; s < segments; ++s)
            max_deg = std::max(max_deg,
                               offsets[size_t(s) + 1] -
                                   offsets[size_t(s)]);
        auto [ref, got] = runBothBackends(
            size_t(segments * cols), [&](float* out) {
                kernels::gatherAggregate(
                    x.data(), rows, cols, sources.data(),
                    offsets.data(), segments, kernels::Reduce::Mean,
                    out);
            });
        expectWithinBound(ref, got, max_deg, 4.0f);
    }
}

TEST_F(KernelEquivalence, GatherAggregateMaxBitExactWithArgmax)
{
    Rng rng(107);
    for (int trial = 0; trial < 30; ++trial) {
        const int64_t rows = rng.uniformInt(40) + 1;
        const int64_t cols = rng.uniformInt(70) + 1;
        const int64_t segments = rng.uniformInt(12) + 1;
        auto x = randomValues(rng, rows * cols);
        // Duplicate some rows so first-wins tie-breaking is exercised.
        if (rows > 1)
            std::copy_n(x.begin(), cols, x.begin() + cols);
        auto [sources, offsets] = randomCsr(rng, segments, rows);
        std::vector<int64_t> ref_arg(size_t(segments * cols), -2);
        std::vector<int64_t> got_arg(size_t(segments * cols), -2);
        kernels::setKernelMode(kernels::KernelMode::Scalar);
        std::vector<float> ref(size_t(segments * cols));
        kernels::gatherAggregate(x.data(), rows, cols, sources.data(),
                                 offsets.data(), segments,
                                 kernels::Reduce::Max, ref.data(),
                                 ref_arg.data());
        kernels::setKernelMode(kernels::KernelMode::Avx2);
        std::vector<float> got(size_t(segments * cols));
        kernels::gatherAggregate(x.data(), rows, cols, sources.data(),
                                 offsets.data(), segments,
                                 kernels::Reduce::Max, got.data(),
                                 got_arg.data());
        kernels::setKernelMode(kernels::KernelMode::Scalar);
        expectBitExact(ref, got);
        EXPECT_EQ(ref_arg, got_arg);
    }
}

TEST_F(KernelEquivalence, NanAndInfPropagateIdenticallyInAggregates)
{
    // The aggregate kernels follow IEEE propagation: NaN contaminates
    // Sum/Mean; Max keeps a leading NaN (nothing compares greater)
    // and ignores a later one (v > best is false) — the scalar chain
    // and the AVX2 blend must agree lane-for-lane.
    const int64_t rows = 6, cols = 11, segments = 3;
    std::vector<float> x(size_t(rows * cols), 1.0f);
    const float nan = std::nanf("");
    const float inf = std::numeric_limits<float>::infinity();
    x[0 * cols + 0] = nan;   // row 0 leads segment 0
    x[1 * cols + 3] = nan;   // row 1 follows in segment 0
    x[2 * cols + 5] = inf;
    x[3 * cols + 7] = -inf;
    std::vector<int64_t> sources{0, 1, 2, 3, 4};
    std::vector<int64_t> offsets{0, 2, 4, 5};
    for (auto reduce : {kernels::Reduce::Sum, kernels::Reduce::Mean,
                        kernels::Reduce::Max}) {
        std::vector<int64_t> ref_arg(size_t(segments * cols));
        std::vector<int64_t> got_arg(size_t(segments * cols));
        const bool is_max = reduce == kernels::Reduce::Max;
        auto [ref, got] = runBothBackends(
            size_t(segments * cols), [&](float* out) {
                std::vector<int64_t>& arg =
                    kernels::activeBackend() ==
                            kernels::Backend::Avx2
                        ? got_arg
                        : ref_arg;
                kernels::gatherAggregate(
                    x.data(), rows, cols, sources.data(),
                    offsets.data(), segments, reduce, out,
                    is_max ? arg.data() : nullptr);
            });
        expectBitExact(ref, got);
        if (is_max)
            EXPECT_EQ(ref_arg, got_arg);
    }
}

TEST_F(KernelEquivalence, AggregateBackwardSumBitExactMeanBounded)
{
    Rng rng(108);
    for (int trial = 0; trial < 20; ++trial) {
        const int64_t rows = rng.uniformInt(30) + 1;
        const int64_t cols = rng.uniformInt(40) + 1;
        const int64_t segments = rng.uniformInt(10) + 1;
        auto grad_out = randomValues(rng, segments * cols);
        auto [sources, offsets] = randomCsr(rng, segments, rows);
        for (bool mean : {false, true}) {
            auto [ref, got] = runBothBackends(
                size_t(rows * cols), [&](float* gx) {
                    kernels::gatherAggregateBackward(
                        grad_out.data(), cols, sources.data(),
                        offsets.data(), segments, mean, gx);
                });
            if (mean)
                expectWithinBound(
                    ref, got, int64_t(sources.size()), 4.0f);
            else
                expectBitExact(ref, got);
        }
    }
}

TEST_F(KernelEquivalence, RowMovementAndElementwiseBitExact)
{
    Rng rng(109);
    const int64_t rows = 23, cols = 37; // straddles the 8-lane edge
    auto x = randomValues(rng, rows * cols);
    std::vector<int64_t> idx;
    for (int64_t i = 0; i < 50; ++i)
        idx.push_back(rng.uniformInt(rows));

    auto [gather_ref, gather_got] = runBothBackends(
        idx.size() * size_t(cols), [&](float* out) {
            kernels::gatherRows(x.data(), rows, cols, idx.data(),
                                int64_t(idx.size()), out);
        });
    expectBitExact(gather_ref, gather_got);

    auto grad = randomValues(rng, int64_t(idx.size()) * cols);
    auto [scatter_ref, scatter_got] = runBothBackends(
        size_t(rows * cols), [&](float* gx) {
            kernels::scatterAddRows(grad.data(), cols, idx.data(),
                                    int64_t(idx.size()), gx);
        });
    expectBitExact(scatter_ref, scatter_got);

    const int64_t n = 1003; // 125 full lanes + 3 tail
    auto base = randomValues(rng, n);
    auto other = randomValues(rng, n);
    auto [add_ref, add_got] =
        runBothBackends(size_t(n), [&](float* y) {
            std::copy(base.begin(), base.end(), y);
            kernels::addInPlace(y, other.data(), n);
            kernels::addScaledInPlace(y, other.data(), -0.37f, n);
            kernels::scaleInPlace(y, 1.7f, n);
        });
    expectBitExact(add_ref, add_got);
}

/** Shared fixture for the end-to-end parity tests. */
struct TrainSetup
{
    TrainSetup()
        : dataset(loadCatalogDataset("arxiv_like", 0.02, 31)),
          sampler(dataset.graph, {4, 6}, 32)
    {
        std::vector<int64_t> seeds(dataset.trainNodes.begin(),
                                   dataset.trainNodes.begin() + 64);
        batch = sampler.sample(seeds);
    }

    GraphSage makeModel(AggregatorKind aggregator)
    {
        SageConfig cfg;
        cfg.inputDim = dataset.featureDim();
        cfg.hiddenDim = 16;
        cfg.numClasses = dataset.numClasses;
        cfg.numLayers = 2;
        cfg.aggregator = aggregator;
        cfg.seed = 77;
        return GraphSage(cfg);
    }

    Dataset dataset;
    NeighborSampler sampler;
    MultiLayerBatch batch;
};

/** One forward/backward of a fresh model under @p mode; returns
 * {loss, param gradients}. */
std::pair<float, std::vector<Tensor>>
lossAndGrads(TrainSetup& setup, AggregatorKind aggregator,
             kernels::KernelMode mode)
{
    kernels::setKernelMode(mode);
    GraphSage model = setup.makeModel(aggregator);
    Tensor feats(int64_t(setup.batch.inputNodes().size()),
                 setup.dataset.featureDim());
    for (size_t i = 0; i < setup.batch.inputNodes().size(); ++i)
        std::copy_n(setup.dataset.features.data() +
                        setup.batch.inputNodes()[i] *
                            setup.dataset.featureDim(),
                    setup.dataset.featureDim(),
                    feats.data() +
                        int64_t(i) * setup.dataset.featureDim());
    std::vector<int32_t> labels;
    for (int64_t v : setup.batch.outputNodes())
        labels.push_back(setup.dataset.labels[size_t(v)]);
    const auto logits =
        model.forward(setup.batch, ag::constant(std::move(feats)));
    const auto loss =
        ag::softmaxCrossEntropy(logits, std::move(labels));
    ag::backward(loss);
    std::vector<Tensor> grads;
    for (const auto& p : model.parameters())
        grads.push_back(p->grad.empty()
                            ? Tensor::zeros(p->value.rows(),
                                            p->value.cols())
                            : p->grad.clone());
    kernels::setKernelMode(kernels::KernelMode::Scalar);
    return {loss->value.at(0, 0), std::move(grads)};
}

class KernelEndToEnd
    : public ::testing::TestWithParam<AggregatorKind>
{
  protected:
    void SetUp() override
    {
        if (!avx2Available())
            GTEST_SKIP() << "AVX2+FMA unavailable";
    }

    void TearDown() override
    {
        kernels::setKernelMode(kernels::KernelMode::Scalar);
    }
};

TEST_P(KernelEndToEnd, GradientEquivalenceAcrossBackends)
{
    TrainSetup setup;
    auto [scalar_loss, scalar_grads] = lossAndGrads(
        setup, GetParam(), kernels::KernelMode::Scalar);
    auto [avx2_loss, avx2_grads] =
        lossAndGrads(setup, GetParam(), kernels::KernelMode::Avx2);

    EXPECT_NEAR(scalar_loss, avx2_loss,
                1e-4f * std::max(1.0f, std::fabs(scalar_loss)));
    ASSERT_EQ(scalar_grads.size(), avx2_grads.size());
    for (size_t i = 0; i < scalar_grads.size(); ++i) {
        const float scale =
            std::max(1e-6f, scalar_grads[i].maxAbs());
        for (int64_t j = 0; j < scalar_grads[i].numel(); ++j)
            ASSERT_NEAR(scalar_grads[i].data()[j],
                        avx2_grads[i].data()[j], 2e-4f * scale)
                << "param " << i << " elem " << j;
    }
}

INSTANTIATE_TEST_SUITE_P(Aggregators, KernelEndToEnd,
                         ::testing::Values(AggregatorKind::Mean,
                                           AggregatorKind::Sum,
                                           AggregatorKind::Pool));

TEST_F(KernelEquivalence, EndToEndLossParityOverEpochs)
{
    // Full Trainer loop (arena, pipelining, micro-batches) under each
    // backend: per-epoch losses must track within tolerance — the
    // backends are interchangeable for training, which is what lets
    // bench_training_time report auto-mode speedups against
    // scalar-mode baselines.
    std::vector<std::vector<double>> losses;
    for (auto mode : {kernels::KernelMode::Scalar,
                      kernels::KernelMode::Avx2}) {
        kernels::setKernelMode(mode);
        TrainSetup setup;
        GraphSage model = setup.makeModel(AggregatorKind::Mean);
        Adam opt(model.parameters(), 0.01f);
        Trainer trainer(setup.dataset, model, opt);
        const auto micros = extractMicroBatches(
            setup.batch,
            BettyPartitioner().partition(setup.batch, 4));
        std::vector<double> epoch_losses;
        for (int epoch = 0; epoch < 3; ++epoch)
            epoch_losses.push_back(
                trainer.trainMicroBatches(micros).loss);
        losses.push_back(std::move(epoch_losses));
        kernels::setKernelMode(kernels::KernelMode::Scalar);
    }
    ASSERT_EQ(losses[0].size(), losses[1].size());
    for (size_t e = 0; e < losses[0].size(); ++e)
        EXPECT_NEAR(losses[0][e], losses[1][e],
                    1e-3 * std::max(1.0, std::fabs(losses[0][e])))
            << "epoch " << e;
}

} // namespace
} // namespace betty
