/**
 * @file
 * Tests for the range/random/metis baseline partitioners and the
 * Betty (REG) partitioner's shared contract.
 */
#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "core/betty.h"
#include "data/catalog.h"
#include "partition/partitioner.h"
#include "sampling/neighbor_sampler.h"
#include "test_helpers.h"

namespace betty {
namespace {

struct Fixture
{
    Fixture()
        : dataset(loadCatalogDataset("arxiv_like", 0.05, 5)),
          sampler(dataset.graph, {5, 10}, 3)
    {
        std::vector<int64_t> seeds(dataset.trainNodes.begin(),
                                   dataset.trainNodes.begin() + 120);
        batch = sampler.sample(seeds);
    }

    Dataset dataset;
    NeighborSampler sampler;
    MultiLayerBatch batch;
};

Fixture&
fixture()
{
    static Fixture f;
    return f;
}

void
expectValidPartition(const std::vector<std::vector<int64_t>>& groups,
                     const MultiLayerBatch& batch, int32_t k)
{
    EXPECT_EQ(int32_t(groups.size()), k);
    std::set<int64_t> covered;
    for (const auto& group : groups)
        for (int64_t node : group)
            EXPECT_TRUE(covered.insert(node).second)
                << "node " << node << " in two groups";
    const auto outputs = batch.outputNodes();
    EXPECT_EQ(covered.size(), outputs.size());
    for (int64_t node : outputs)
        EXPECT_TRUE(covered.count(node));
}

TEST(RangePartitioner, ValidAndContiguous)
{
    auto& f = fixture();
    RangePartitioner part;
    const auto groups = part.partition(f.batch, 4);
    expectValidPartition(groups, f.batch, 4);
    // Each group sorted and below the next group's minimum.
    for (size_t g = 0; g + 1 < groups.size(); ++g) {
        EXPECT_TRUE(std::is_sorted(groups[g].begin(), groups[g].end()));
        EXPECT_LT(groups[g].back(), groups[g + 1].front());
    }
}

TEST(RangePartitioner, EvenSizes)
{
    auto& f = fixture();
    RangePartitioner part;
    const auto groups = part.partition(f.batch, 7);
    size_t lo = groups[0].size(), hi = groups[0].size();
    for (const auto& g : groups) {
        lo = std::min(lo, g.size());
        hi = std::max(hi, g.size());
    }
    EXPECT_LE(hi - lo, 1u);
}

TEST(RandomPartitioner, ValidAndEven)
{
    auto& f = fixture();
    RandomPartitioner part(7);
    const auto groups = part.partition(f.batch, 5);
    expectValidPartition(groups, f.batch, 5);
    for (const auto& g : groups)
        EXPECT_NEAR(double(g.size()), 120.0 / 5.0, 1.0);
}

TEST(RandomPartitioner, DiffersFromRange)
{
    auto& f = fixture();
    RangePartitioner range;
    RandomPartitioner random(7);
    const auto a = range.partition(f.batch, 4);
    const auto b = random.partition(f.batch, 4);
    // Same sizes but (almost surely) different membership.
    EXPECT_NE(a[0], b[0]);
}

TEST(MetisBaseline, ValidPartition)
{
    auto& f = fixture();
    MetisBaselinePartitioner part(f.dataset.graph);
    const auto groups = part.partition(f.batch, 4);
    expectValidPartition(groups, f.batch, 4);
}

TEST(BettyPartitioner, ValidPartition)
{
    auto& f = fixture();
    BettyPartitioner part;
    const auto groups = part.partition(f.batch, 4);
    expectValidPartition(groups, f.batch, 4);
}

TEST(BettyPartitioner, KOneReturnsEverything)
{
    auto& f = fixture();
    BettyPartitioner part;
    const auto groups = part.partition(f.batch, 1);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].size(), f.batch.outputNodes().size());
}

TEST(BettyPartitioner, LowerRedundancyThanRandom)
{
    // The core claim of §4.3: REG partitioning duplicates fewer input
    // nodes than redundancy-unaware splits.
    auto& f = fixture();
    BettyPartitioner betty;
    RandomPartitioner random(11);
    const int32_t k = 8;
    const auto betty_micros =
        extractMicroBatches(f.batch, betty.partition(f.batch, k));
    const auto random_micros =
        extractMicroBatches(f.batch, random.partition(f.batch, k));
    EXPECT_LT(inputNodeRedundancy(f.batch, betty_micros),
              inputNodeRedundancy(f.batch, random_micros));
}

TEST(Partitioners, Names)
{
    EXPECT_EQ(RangePartitioner().name(), "range");
    EXPECT_EQ(RandomPartitioner().name(), "random");
    EXPECT_EQ(MetisBaselinePartitioner(fixture().dataset.graph).name(),
              "metis");
    EXPECT_EQ(BettyPartitioner().name(), "betty");
}

TEST(GroupByPart, GroupsInOrder)
{
    const std::vector<int64_t> nodes = {10, 20, 30, 40};
    const std::vector<int32_t> parts = {1, 0, 1, 0};
    const auto groups = groupByPart(nodes, parts, 2);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0], (std::vector<int64_t>{20, 40}));
    EXPECT_EQ(groups[1], (std::vector<int64_t>{10, 30}));
}

/** Property sweep over K and partitioner: the contract holds. */
class PartitionerSweep
    : public ::testing::TestWithParam<std::tuple<int32_t, int32_t>>
{
};

TEST_P(PartitionerSweep, ContractHolds)
{
    auto& f = fixture();
    const auto [which, k] = GetParam();
    std::unique_ptr<OutputPartitioner> part;
    switch (which) {
      case 0:
        part = std::make_unique<RangePartitioner>();
        break;
      case 1:
        part = std::make_unique<RandomPartitioner>(3);
        break;
      case 2:
        part = std::make_unique<MetisBaselinePartitioner>(
            f.dataset.graph);
        break;
      default:
        part = std::make_unique<BettyPartitioner>();
        break;
    }
    expectValidPartition(part->partition(f.batch, k), f.batch, k);
}

INSTANTIATE_TEST_SUITE_P(
    All, PartitionerSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 2, 3, 8, 16)));

} // namespace
} // namespace betty
