/**
 * @file
 * Property/invariant tests for the feature-cache accounting
 * (cache/feature_cache.h). Companion to
 * test_feature_cache_equivalence.cc, which proves the cache changes
 * nothing but bytes moved; this file pins down the accounting itself:
 * hits + misses == rows requested, the reservation never lets
 * live bytes exceed device capacity across capacity-drop faults,
 * eviction order is identical across repeated seeded runs, and an
 * adversarial access sequence (the SpitefulPartitioner of caching: a
 * cyclic working set one row larger than capacity) forces a full
 * eviction every step. Also the TransferModel lifetime-counter audit:
 * savedBytes must survive reset() exactly like failedAttempts.
 */
#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "cache/feature_cache.h"
#include "memory/device_memory.h"
#include "memory/transfer_model.h"
#include "obs/memprof.h"
#include "util/fault.h"
#include "util/rng.h"

namespace betty {
namespace {

constexpr int64_t kRowBytes = 512; // 128 floats, arxiv_like-shaped

/** Seeded access trace: @p accesses batches of @p batch_rows rows
 * drawn from a universe of @p universe distinct row IDs. */
std::vector<std::vector<int64_t>>
makeTrace(uint64_t seed, int64_t universe, int64_t accesses,
          int64_t batch_rows)
{
    Rng rng(seed);
    std::vector<std::vector<int64_t>> trace;
    for (int64_t a = 0; a < accesses; ++a) {
        std::vector<int64_t> rows;
        for (int64_t r = 0; r < batch_rows; ++r)
            rows.push_back(int64_t(rng.uniformInt(uint64_t(universe))));
        trace.push_back(std::move(rows));
    }
    return trace;
}

TEST(FeatureCacheProperty, HitsPlusMissesEqualsRowsRequested)
{
    const auto trace = makeTrace(7, 64, 200, 17);
    for (const CachePolicy policy :
         {CachePolicy::Lru, CachePolicy::LruPinned}) {
        FeatureCache cache(nullptr, 32 * kRowBytes, kRowBytes, policy);
        int64_t requested = 0;
        for (const auto& rows : trace) {
            const auto result = cache.access(rows);
            EXPECT_EQ(result.hits + result.misses,
                      int64_t(rows.size()));
            EXPECT_EQ(result.bytesSaved, result.hits * kRowBytes);
            requested += int64_t(rows.size());
        }
        const FeatureCacheStats stats = cache.stats();
        EXPECT_EQ(stats.hits + stats.misses, requested);
        EXPECT_EQ(stats.bytesSaved, stats.hits * kRowBytes);
    }
}

TEST(FeatureCacheProperty, ReservationChargedAndReturnedOnDestruction)
{
    DeviceMemoryModel device;
    const int64_t capacity_bytes = 10 * kRowBytes + kRowBytes / 2;
    {
        FeatureCache cache(&device, capacity_bytes, kRowBytes);
        // The FULL carve-out is charged, not the row-rounded part.
        EXPECT_EQ(device.liveBytes(obs::MemCategory::FeatureCache),
                  capacity_bytes);
        EXPECT_EQ(device.liveBytes(), capacity_bytes);
        EXPECT_EQ(cache.capacityRows(), 10);
        EXPECT_EQ(cache.reservedBytes(), capacity_bytes);
    }
    EXPECT_EQ(device.liveBytes(obs::MemCategory::FeatureCache), 0);
    EXPECT_EQ(device.liveBytes(), 0);
}

TEST(FeatureCacheProperty, ResidencyNeverExceedsCapacityRows)
{
    const auto trace = makeTrace(13, 256, 300, 23);
    FeatureCache cache(nullptr, 16 * kRowBytes, kRowBytes);
    for (const auto& rows : trace) {
        cache.access(rows);
        EXPECT_LE(cache.residentRows(), cache.capacityRows());
    }
}

TEST(FeatureCacheProperty,
     LiveNeverExceedsCapacityAcrossCapacityDropFaults)
{
    // The robustness contract: when a capacity-drop fault fires, the
    // recovery loop shrinks the reservation BEFORE any training
    // tensor is refused. Replay that protocol over a schedule of
    // drops (parsed through the real fault grammar) and assert the
    // invariant live + reservation <= capacity after every recovery.
    fault::FaultPlan plan;
    std::string error;
    ASSERT_TRUE(fault::FaultPlan::parse(
        "capacity-drop=0.6@epoch2;capacity-drop=0.5@epoch4;"
        "capacity-drop=0.5@epoch5",
        plan, &error))
        << error;
    fault::Injector::install(plan);

    DeviceMemoryModel device(64 * kRowBytes);
    FeatureCache cache(&device, 32 * kRowBytes, kRowBytes);
    // Non-cache tensors, small enough that the final capacity (the
    // schedule drops 64 -> 38.4 -> 19.2 -> 9.6 rows) still fits them
    // once the cache gives everything back.
    const int64_t training_live = 8 * kRowBytes;
    device.onAlloc(training_live, obs::MemCategory::Hidden);
    const auto trace = makeTrace(17, 128, 6, 11);

    for (int64_t epoch = 1; epoch <= 6; ++epoch) {
        fault::Injector::beginEpoch(epoch);
        double factor = 1.0;
        if (fault::Injector::takeCapacityDrop(&factor))
            device.setCapacity(
                int64_t(double(device.capacity()) * factor));
        // Recovery: give back exactly enough reservation for the
        // training working set to fit (release-before-refuse).
        if (device.liveBytes() > device.capacity()) {
            const int64_t headroom =
                device.capacity() - training_live;
            cache.shrinkTo(std::max<int64_t>(0, headroom));
        }
        EXPECT_LE(device.liveBytes(), device.capacity())
            << "epoch " << epoch;
        EXPECT_LE(cache.reservedBytes() + training_live,
                  device.capacity())
            << "epoch " << epoch;
        cache.access(trace[size_t(epoch - 1)]);
        // Accesses never re-grow the reservation.
        EXPECT_LE(device.liveBytes(), device.capacity())
            << "epoch " << epoch;
    }
    // By the final drop the cache must have given back most of its
    // carve-out (9.6 rows of capacity minus 8 rows of tensors leaves
    // under 2 rows of reservation).
    EXPECT_LT(cache.reservedBytes(), 32 * kRowBytes);
    EXPECT_GE(cache.stats().releases, 2);
    EXPECT_EQ(cache.stats().releasedBytes,
              32 * kRowBytes - cache.reservedBytes());
    fault::Injector::clear();
}

TEST(FeatureCacheProperty, EvictionOrderIdenticalAcrossSeededRuns)
{
    const auto trace = makeTrace(29, 96, 400, 19);
    auto run = [&trace]() {
        FeatureCache cache(nullptr, 24 * kRowBytes, kRowBytes);
        cache.setRecordEvictions(true);
        for (const auto& rows : trace)
            cache.access(rows);
        return cache.evictionLog();
    };
    const std::vector<int64_t> first = run();
    const std::vector<int64_t> second = run();
    ASSERT_FALSE(first.empty()); // the trace actually evicts
    EXPECT_EQ(first, second);
}

TEST(FeatureCacheProperty, AdversarialCycleForcesFullEvictionEveryStep)
{
    // The SpitefulPartitioner of caching: a cyclic working set one
    // row larger than capacity is LRU's worst case — after warm-up
    // every access misses and every miss evicts. hits == 0 and
    // evictions == misses - capacity must hold exactly.
    const int64_t capacity_rows = 8;
    FeatureCache cache(nullptr, capacity_rows * kRowBytes, kRowBytes);
    cache.setRecordEvictions(true);
    const int64_t cycle = capacity_rows + 1;
    int64_t accesses = 0;
    for (int64_t step = 0; step < 10 * cycle; ++step, ++accesses)
        cache.access({step % cycle});
    const FeatureCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 0);
    EXPECT_EQ(stats.misses, accesses);
    EXPECT_EQ(stats.evictions, accesses - capacity_rows);
    // Steady state evicts in strict cycle order too.
    const std::vector<int64_t> log = cache.evictionLog();
    for (size_t i = 1; i < log.size(); ++i)
        EXPECT_EQ(log[i], (log[i - 1] + 1) % cycle);
}

TEST(FeatureCacheProperty, LruMissesMonotoneNonIncreasingInCapacity)
{
    // LRU's stack-inclusion property, the theorem behind the
    // differential tier's "transfer.bytes non-increasing in cache
    // size" assertion. Holds for pure Lru only (pinning breaks
    // inclusion, which is why pin() is a no-op under Lru).
    const auto trace = makeTrace(31, 80, 250, 13);
    int64_t previous_misses = -1;
    for (const int64_t capacity_rows : {0, 4, 16, 40, 80, 200}) {
        FeatureCache cache(nullptr, capacity_rows * kRowBytes,
                           kRowBytes);
        for (const auto& rows : trace)
            cache.access(rows);
        const int64_t misses = cache.stats().misses;
        if (previous_misses >= 0) {
            EXPECT_LE(misses, previous_misses)
                << "capacity " << capacity_rows << " rows";
        }
        previous_misses = misses;
    }
}

TEST(FeatureCacheProperty, ZeroCapacityTransfersThroughWithoutState)
{
    FeatureCache cache(nullptr, 0, kRowBytes);
    const auto result = cache.access({1, 2, 3, 1});
    EXPECT_EQ(result.hits, 0);
    EXPECT_EQ(result.misses, 4);
    EXPECT_EQ(result.bytesSaved, 0);
    EXPECT_EQ(cache.residentRows(), 0);
    EXPECT_EQ(cache.stats().evictions, 0);
    EXPECT_EQ(cache.reservedBytes(), 0);
}

TEST(FeatureCacheProperty, PinnedRowsSurviveAdversarialEviction)
{
    const int64_t capacity_rows = 8;
    FeatureCache cache(nullptr, capacity_rows * kRowBytes, kRowBytes,
                       CachePolicy::LruPinned);
    cache.pin({1000, 1001, 1002});
    EXPECT_EQ(cache.pinnedRows(), 3);
    // Flood with the full-eviction cycle over disjoint row IDs.
    for (int64_t step = 0; step < 100; ++step)
        cache.access({step % (capacity_rows + 1)});
    // Pinned rows are still resident: accessing them hits.
    const auto pinned = cache.access({1000, 1001, 1002});
    EXPECT_EQ(pinned.hits, 3);
    EXPECT_EQ(pinned.misses, 0);
}

TEST(FeatureCacheProperty, PinIsNoOpUnderPureLru)
{
    FeatureCache cache(nullptr, 8 * kRowBytes, kRowBytes,
                       CachePolicy::Lru);
    cache.pin({1, 2, 3});
    EXPECT_EQ(cache.pinnedRows(), 0);
    EXPECT_EQ(cache.residentRows(), 0);
}

TEST(FeatureCacheProperty, PinTruncatesToCapacity)
{
    FeatureCache cache(nullptr, 4 * kRowBytes, kRowBytes,
                       CachePolicy::LruPinned);
    std::vector<int64_t> hot(16);
    std::iota(hot.begin(), hot.end(), 0);
    cache.pin(hot);
    EXPECT_EQ(cache.pinnedRows(), 4);
    // A fully pinned cache has no unpinned slots: new rows transfer
    // through without insertion or eviction.
    cache.access({100, 101});
    EXPECT_EQ(cache.residentRows(), 4);
    EXPECT_EQ(cache.stats().evictions, 0);
}

TEST(FeatureCacheProperty, ShrinkToReturnsBytesAndCountsRelease)
{
    DeviceMemoryModel device;
    FeatureCache cache(&device, 16 * kRowBytes, kRowBytes);
    for (int64_t row = 0; row < 16; ++row)
        cache.access({row});
    ASSERT_EQ(cache.residentRows(), 16);

    cache.shrinkTo(4 * kRowBytes);
    EXPECT_EQ(cache.reservedBytes(), 4 * kRowBytes);
    EXPECT_EQ(device.liveBytes(obs::MemCategory::FeatureCache),
              4 * kRowBytes);
    EXPECT_EQ(cache.residentRows(), 4);
    EXPECT_EQ(cache.stats().releases, 1);
    EXPECT_EQ(cache.stats().releasedBytes, 12 * kRowBytes);

    // The survivors are the four most-recently-used rows.
    const auto survivors = cache.access({12, 13, 14, 15});
    EXPECT_EQ(survivors.hits, 4);

    // Growing back is not supported (a carve-out only shrinks):
    // clamped to the current reservation, no release counted.
    cache.shrinkTo(32 * kRowBytes);
    EXPECT_EQ(cache.reservedBytes(), 4 * kRowBytes);
    EXPECT_EQ(cache.stats().releases, 1);

    cache.releaseAll();
    EXPECT_EQ(cache.reservedBytes(), 0);
    EXPECT_EQ(cache.residentRows(), 0);
    EXPECT_EQ(device.liveBytes(obs::MemCategory::FeatureCache), 0);
    EXPECT_EQ(cache.stats().releases, 2);
    EXPECT_EQ(cache.stats().releasedBytes, 16 * kRowBytes);
}

TEST(FeatureCacheProperty, InvalidateDropsResidencyKeepsReservation)
{
    // The checkpoint/resume contract: cache contents are never
    // persisted, so a resumed run starts cold — but the reservation
    // (part of the memory plan) stays charged.
    DeviceMemoryModel device;
    FeatureCache cache(&device, 8 * kRowBytes, kRowBytes,
                       CachePolicy::LruPinned);
    cache.pin({1, 2});
    cache.access({3, 4, 5});
    ASSERT_EQ(cache.residentRows(), 5);

    cache.invalidate();
    EXPECT_EQ(cache.residentRows(), 0);
    EXPECT_EQ(cache.pinnedRows(), 0);
    EXPECT_EQ(cache.reservedBytes(), 8 * kRowBytes);
    EXPECT_EQ(device.liveBytes(obs::MemCategory::FeatureCache),
              8 * kRowBytes);
    const auto cold = cache.access({1, 2, 3});
    EXPECT_EQ(cold.hits, 0);
}

TEST(FeatureCacheProperty, PolicyNamesRoundTrip)
{
    CachePolicy policy;
    ASSERT_TRUE(parseCachePolicy("lru", &policy));
    EXPECT_EQ(policy, CachePolicy::Lru);
    EXPECT_STREQ(cachePolicyName(policy), "lru");
    ASSERT_TRUE(parseCachePolicy("lru-pinned", &policy));
    EXPECT_EQ(policy, CachePolicy::LruPinned);
    EXPECT_STREQ(cachePolicyName(policy), "lru-pinned");
    EXPECT_FALSE(parseCachePolicy("fifo", &policy));
    EXPECT_FALSE(parseCachePolicy("", &policy));
}

TEST(TransferModelAudit, SavedBytesSurvivesResetLikeFailedAttempts)
{
    // Regression test for the lifetime-counter audit: reset() re-arms
    // the per-episode accumulators (seconds, bytes, transfer count)
    // but must NOT clear the lifetime counters, or run-report deltas
    // computed across epochs would be skewed.
    TransferModel transfer;
    transfer.transfer(1000);
    transfer.chargeFailedAttempt();
    transfer.noteSavedBytes(4096);
    ASSERT_GT(transfer.seconds(), 0.0);
    ASSERT_EQ(transfer.totalBytes(), 1000);
    ASSERT_EQ(transfer.savedBytes(), 4096);

    transfer.reset();
    EXPECT_EQ(transfer.seconds(), 0.0);
    EXPECT_EQ(transfer.totalBytes(), 0);
    EXPECT_EQ(transfer.numTransfers(), 0);
    // Lifetime counters survive.
    EXPECT_EQ(transfer.failedAttempts(), 1);
    EXPECT_EQ(transfer.savedBytes(), 4096);

    transfer.noteSavedBytes(100);
    EXPECT_EQ(transfer.savedBytes(), 4196);
}

} // namespace
} // namespace betty
