/**
 * @file
 * Tests for the observability subsystem (src/obs/): trace spans and
 * ring buffers, the metrics registry, estimator-residual tracking,
 * the JSON parser used to validate exports, and the logging-level /
 * warn-once helpers from util/logging.h.
 *
 * The collectors are process-global, so every test starts from a
 * known state (ObsTest fixture) and the metric names it registers are
 * unique to the test.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/memprof.h"
#include "obs/metrics.h"
#include "obs/residual.h"
#include "obs/run_meta.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace betty {
namespace {

using obs::JsonValue;
using obs::parseJson;

class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::Trace::setEnabled(false);
        obs::Trace::clear();
        obs::Metrics::setEnabled(false);
        obs::Metrics::reset();
    }

    void
    TearDown() override
    {
        obs::Trace::setEnabled(false);
        obs::Trace::clear();
        obs::Metrics::setEnabled(false);
        obs::Metrics::reset();
    }
};

/** Events in the current snapshot carrying @p name. */
std::vector<obs::TraceEvent>
eventsNamed(const char* name)
{
    std::vector<obs::TraceEvent> matched;
    for (const auto& event : obs::Trace::snapshot())
        if (std::string(event.name) == name)
            matched.push_back(event);
    return matched;
}

TEST_F(ObsTest, DisabledSpanRecordsNothing)
{
    const size_t before = obs::Trace::snapshot().size();
    for (int i = 0; i < 100; ++i) {
        BETTY_TRACE_SPAN("obs_test/disabled");
    }
    EXPECT_EQ(obs::Trace::snapshot().size(), before);
}

TEST_F(ObsTest, SpanCountsMatchScopes)
{
    obs::Trace::setEnabled(true);
    for (int i = 0; i < 5; ++i) {
        BETTY_TRACE_SPAN("obs_test/counted");
    }
    EXPECT_EQ(eventsNamed("obs_test/counted").size(), 5u);
}

TEST_F(ObsTest, NestedSpansAreContainedAndOrdered)
{
    obs::Trace::setEnabled(true);
    {
        BETTY_TRACE_SPAN("obs_test/outer");
        {
            BETTY_TRACE_SPAN("obs_test/inner");
        }
    }
    const auto outer = eventsNamed("obs_test/outer");
    const auto inner = eventsNamed("obs_test/inner");
    ASSERT_EQ(outer.size(), 1u);
    ASSERT_EQ(inner.size(), 1u);
    // The inner span completes first, so it is recorded first.
    EXPECT_GE(inner[0].startUs, outer[0].startUs);
    EXPECT_LE(inner[0].startUs + inner[0].durUs,
              outer[0].startUs + outer[0].durUs);
    EXPECT_GE(outer[0].durUs, inner[0].durUs);
}

TEST_F(ObsTest, LaneScopeOverridesAndRestores)
{
    obs::Trace::setEnabled(true);
    const int32_t base_lane = obs::Trace::currentLane();
    {
        obs::TraceLaneScope lane(1007, "device7");
        EXPECT_EQ(obs::Trace::currentLane(), 1007);
        BETTY_TRACE_SPAN("obs_test/laned");
    }
    EXPECT_EQ(obs::Trace::currentLane(), base_lane);
    const auto laned = eventsNamed("obs_test/laned");
    ASSERT_EQ(laned.size(), 1u);
    EXPECT_EQ(laned[0].lane, 1007);
}

TEST_F(ObsTest, MultiThreadSpansAllRetained)
{
    obs::Trace::setEnabled(true);
    constexpr int kThreads = 4;
    constexpr int kSpansPerThread = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kSpansPerThread; ++i) {
                BETTY_TRACE_SPAN("obs_test/mt");
            }
        });
    }
    for (auto& thread : threads)
        thread.join();
    EXPECT_EQ(eventsNamed("obs_test/mt").size(),
              size_t(kThreads * kSpansPerThread));
}

TEST_F(ObsTest, RingOverflowKeepsNewestAndCountsDropped)
{
    obs::Trace::setEnabled(true);
    const int64_t dropped_before = obs::Trace::droppedEvents();
    // Capacity applies to buffers of threads that have not recorded
    // yet, so exercise overflow on a fresh thread.
    obs::Trace::setRingCapacity(8);
    std::thread recorder([] {
        for (int i = 0; i < 20; ++i) {
            BETTY_TRACE_SPAN("obs_test/overflow");
        }
    });
    recorder.join();
    obs::Trace::setRingCapacity(1 << 16);
    EXPECT_EQ(eventsNamed("obs_test/overflow").size(), 8u);
    EXPECT_EQ(obs::Trace::droppedEvents() - dropped_before, 12);
}

TEST_F(ObsTest, ChromeTraceJsonParsesWithMetadataAndSpans)
{
    obs::Trace::setEnabled(true);
    {
        obs::TraceLaneScope lane(1003, "device3");
        BETTY_TRACE_SPAN("obs_test/chrome");
    }
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(obs::Trace::chromeTraceJson(), doc, &error))
        << error;
    const JsonValue* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    bool saw_process_name = false;
    bool saw_device3 = false;
    bool saw_span = false;
    for (const auto& event : events->array) {
        const JsonValue* name = event.find("name");
        const JsonValue* phase = event.find("ph");
        ASSERT_NE(name, nullptr);
        ASSERT_NE(phase, nullptr);
        if (phase->string == "M" && name->string == "process_name")
            saw_process_name = true;
        if (phase->string == "M" && name->string == "thread_name") {
            const JsonValue* args = event.find("args");
            ASSERT_NE(args, nullptr);
            const JsonValue* lane_name = args->find("name");
            if (lane_name && lane_name->string == "device3")
                saw_device3 = true;
        }
        if (phase->string == "X" &&
            name->string == "obs_test/chrome") {
            saw_span = true;
            EXPECT_EQ(event.find("tid")->asInt(), 1003);
            EXPECT_GE(event.find("dur")->asInt(), 0);
        }
    }
    EXPECT_TRUE(saw_process_name);
    EXPECT_TRUE(saw_device3);
    EXPECT_TRUE(saw_span);
}

TEST_F(ObsTest, DisabledMetricsAreNoOps)
{
    obs::Counter& counter = obs::Metrics::counter("obs_test.noop_c");
    obs::Gauge& gauge = obs::Metrics::gauge("obs_test.noop_g");
    obs::Histogram& histogram =
        obs::Metrics::histogram("obs_test.noop_h", {1.0});
    counter.add(5);
    gauge.set(5);
    gauge.max(5);
    histogram.observe(0.5);
    obs::residuals().record(100, 90);
    EXPECT_EQ(counter.value(), 0);
    EXPECT_EQ(gauge.value(), 0);
    EXPECT_EQ(histogram.count(), 0);
    EXPECT_TRUE(obs::residuals().entries().empty());
}

TEST_F(ObsTest, CounterAndGaugeBasics)
{
    obs::Metrics::setEnabled(true);
    obs::Counter& counter = obs::Metrics::counter("obs_test.basic_c");
    counter.add(3);
    counter.increment();
    EXPECT_EQ(counter.value(), 4);
    // Same name resolves to the same counter.
    EXPECT_EQ(obs::Metrics::counter("obs_test.basic_c").value(), 4);

    obs::Gauge& gauge = obs::Metrics::gauge("obs_test.basic_g");
    gauge.set(10);
    gauge.max(7); // below current: no effect
    EXPECT_EQ(gauge.value(), 10);
    gauge.max(25);
    EXPECT_EQ(gauge.value(), 25);
}

TEST_F(ObsTest, HistogramBucketBoundaries)
{
    obs::Metrics::setEnabled(true);
    obs::Histogram& histogram =
        obs::Metrics::histogram("obs_test.bounds_h", {1.0, 2.0, 4.0});
    ASSERT_EQ(histogram.bounds().size(), 3u);

    histogram.observe(0.5); // bucket 0
    histogram.observe(1.0); // bucket 0: value <= bounds[0]
    histogram.observe(1.5); // bucket 1
    histogram.observe(4.0); // bucket 2 (boundary is inclusive)
    histogram.observe(100.0); // overflow bucket

    EXPECT_EQ(histogram.bucketCount(0), 2);
    EXPECT_EQ(histogram.bucketCount(1), 1);
    EXPECT_EQ(histogram.bucketCount(2), 1);
    EXPECT_EQ(histogram.bucketCount(3), 1);
    EXPECT_EQ(histogram.count(), 5);
    EXPECT_DOUBLE_EQ(histogram.sum(), 107.0);
}

TEST_F(ObsTest, ResidualMath)
{
    obs::Metrics::setEnabled(true);
    obs::residuals().record(120, 100); // +20, +0.2
    obs::residuals().record(80, 100);  // -20, -0.2
    obs::residuals().record(50, 0);    // excluded from relative stats

    const auto entries = obs::residuals().entries();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].residualBytes(), 20);
    EXPECT_DOUBLE_EQ(entries[0].relativeError(), 0.2);
    EXPECT_EQ(entries[1].residualBytes(), -20);
    EXPECT_DOUBLE_EQ(entries[1].relativeError(), -0.2);
    EXPECT_DOUBLE_EQ(entries[2].relativeError(), 0.0);

    const auto summary = obs::residuals().summary();
    EXPECT_EQ(summary.count, 3);
    EXPECT_DOUBLE_EQ(summary.meanAbsBytes, 30.0);
    EXPECT_DOUBLE_EQ(summary.meanAbsRelative, 0.2);
    EXPECT_DOUBLE_EQ(summary.maxAbsRelative, 0.2);
    EXPECT_DOUBLE_EQ(summary.bias, 0.0);
}

TEST_F(ObsTest, MetricsJsonRoundTrip)
{
    obs::Metrics::setEnabled(true);
    obs::Metrics::counter("obs_test.rt_c").add(7);
    obs::Metrics::gauge("obs_test.rt_g").set(42);
    obs::Metrics::histogram("obs_test.rt_h", {1.0, 2.0}).observe(1.5);
    obs::residuals().record(110, 100);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(obs::Metrics::snapshotJson(), doc, &error))
        << error;

    const JsonValue* counters = doc.find("counters");
    ASSERT_NE(counters, nullptr);
    const JsonValue* rt_c = counters->find("obs_test.rt_c");
    ASSERT_NE(rt_c, nullptr);
    EXPECT_EQ(rt_c->asInt(), 7);

    const JsonValue* gauges = doc.find("gauges");
    ASSERT_NE(gauges, nullptr);
    EXPECT_EQ(gauges->find("obs_test.rt_g")->asInt(), 42);

    const JsonValue* histograms = doc.find("histograms");
    ASSERT_NE(histograms, nullptr);
    const JsonValue* rt_h = histograms->find("obs_test.rt_h");
    ASSERT_NE(rt_h, nullptr);
    ASSERT_EQ(rt_h->find("bounds")->array.size(), 2u);
    ASSERT_EQ(rt_h->find("counts")->array.size(), 3u);
    EXPECT_EQ(rt_h->find("counts")->array[1].asInt(), 1);
    EXPECT_EQ(rt_h->find("count")->asInt(), 1);
    EXPECT_DOUBLE_EQ(rt_h->find("sum")->number, 1.5);

    const JsonValue* residuals = doc.find("estimator_residuals");
    ASSERT_NE(residuals, nullptr);
    const JsonValue* res_entries = residuals->find("entries");
    ASSERT_NE(res_entries, nullptr);
    ASSERT_EQ(res_entries->array.size(), 1u);
    EXPECT_EQ(
        res_entries->array[0].find("predicted_bytes")->asInt(), 110);
    EXPECT_EQ(res_entries->array[0].find("actual_bytes")->asInt(),
              100);
    const JsonValue* summary = residuals->find("summary");
    ASSERT_NE(summary, nullptr);
    EXPECT_EQ(summary->find("count")->asInt(), 1);
}

TEST_F(ObsTest, MetricsResetClearsValuesKeepsRegistrations)
{
    obs::Metrics::setEnabled(true);
    obs::Counter& counter = obs::Metrics::counter("obs_test.reset_c");
    counter.add(9);
    obs::residuals().record(10, 10);
    obs::Metrics::reset();
    EXPECT_EQ(counter.value(), 0);
    EXPECT_TRUE(obs::residuals().entries().empty());
    // Still the same registered object.
    EXPECT_EQ(&obs::Metrics::counter("obs_test.reset_c"), &counter);
}

TEST_F(ObsTest, JsonParserAcceptsAndRejects)
{
    JsonValue doc;
    EXPECT_TRUE(parseJson(
        R"({"a": [1, 2.5, -3e2], "b": "x\n\"y\"", "c": true,
            "d": null, "e": {}})",
        doc));
    EXPECT_EQ(doc.find("a")->array.size(), 3u);
    EXPECT_DOUBLE_EQ(doc.find("a")->array[2].number, -300.0);
    EXPECT_EQ(doc.find("b")->string, "x\n\"y\"");
    EXPECT_TRUE(doc.find("c")->boolean);
    EXPECT_TRUE(doc.find("d")->isNull());
    EXPECT_TRUE(doc.find("e")->isObject());

    std::string error;
    EXPECT_FALSE(parseJson("{\"a\": }", doc, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseJson("{} trailing", doc));
    EXPECT_FALSE(parseJson("[1, 2", doc));
    EXPECT_FALSE(parseJson("", doc));
}

TEST_F(ObsTest, MemCategoryScopeNestsAndRestores)
{
    EXPECT_EQ(obs::currentMemCategory(),
              obs::MemCategory::Uncategorized);
    {
        obs::MemCategoryScope outer(obs::MemCategory::Hidden);
        EXPECT_EQ(obs::currentMemCategory(), obs::MemCategory::Hidden);
        {
            obs::MemCategoryScope inner(
                obs::MemCategory::Aggregator);
            EXPECT_EQ(obs::currentMemCategory(),
                      obs::MemCategory::Aggregator);
        }
        EXPECT_EQ(obs::currentMemCategory(), obs::MemCategory::Hidden);
    }
    EXPECT_EQ(obs::currentMemCategory(),
              obs::MemCategory::Uncategorized);
}

TEST_F(ObsTest, MemCategoryNamesAreStableAndDistinct)
{
    std::vector<std::string> names;
    for (size_t c = 0; c < obs::kMemCategoryCount; ++c)
        names.push_back(
            obs::memCategoryName(obs::MemCategory(c)));
    EXPECT_EQ(names.front(), "parameters");
    EXPECT_EQ(names.back(), "uncategorized");
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::unique(names.begin(), names.end()), names.end())
        << "category names must be distinct (they key JSON objects)";
}

TEST_F(ObsTest, MemProfilerRecordsOnlyWhenEnabled)
{
    obs::MicroBatchMemRecord record;
    record.actualTotalPeak = 100;
    obs::memProfiler().record(record);
    EXPECT_TRUE(obs::memProfiler().records().empty())
        << "disabled metrics must make record() a no-op";

    obs::Metrics::setEnabled(true);
    obs::memProfiler().record(record);
    ASSERT_EQ(obs::memProfiler().records().size(), 1u);
    EXPECT_EQ(obs::memProfiler().records()[0].actualTotalPeak, 100);
}

TEST_F(ObsTest, MemProfilerJsonRoundTrip)
{
    obs::Metrics::setEnabled(true);
    obs::MicroBatchMemRecord record;
    record.predicted[size_t(obs::MemCategory::InputFeatures)] = 120;
    record.actualPeak[size_t(obs::MemCategory::InputFeatures)] = 100;
    record.predictedTotalPeak = 120;
    record.actualTotalPeak = 100;
    obs::memProfiler().record(record);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(obs::memProfiler().toJson(), doc, &error))
        << error;
    const JsonValue* batches = doc.find("micro_batches");
    ASSERT_NE(batches, nullptr);
    ASSERT_EQ(batches->array.size(), 1u);
    const JsonValue* categories =
        batches->array[0].find("categories");
    ASSERT_NE(categories, nullptr);
    const JsonValue* features = categories->find("input_features");
    ASSERT_NE(features, nullptr);
    EXPECT_EQ(features->find("predicted_bytes")->asInt(), 120);
    EXPECT_EQ(features->find("actual_bytes")->asInt(), 100);
    EXPECT_EQ(features->find("residual_bytes")->asInt(), 20);
    const JsonValue* peaks = doc.find("category_peaks");
    ASSERT_NE(peaks, nullptr);
    EXPECT_EQ(peaks->find("input_features")->asInt(), 100);
}

TEST_F(ObsTest, TraceCounterEventsAppearInChromeJson)
{
    obs::Trace::setEnabled(true);
    obs::Trace::recordCounter("obs_test/counter",
                              {{"hidden", 64}, {"gradients", 32}});
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(obs::Trace::chromeTraceJson(), doc, &error))
        << error;
    EXPECT_EQ(doc.find("schema_version")->asInt(),
              obs::kObsSchemaVersion);
    bool saw_counter = false;
    for (const auto& event : doc.find("traceEvents")->array) {
        if (event.find("ph")->string != "C" ||
            event.find("name")->string != "obs_test/counter")
            continue;
        saw_counter = true;
        const JsonValue* args = event.find("args");
        ASSERT_NE(args, nullptr);
        EXPECT_EQ(args->find("hidden")->asInt(), 64);
        EXPECT_EQ(args->find("gradients")->asInt(), 32);
    }
    EXPECT_TRUE(saw_counter);
}

TEST_F(ObsTest, ExportsCarrySchemaVersionAndRunMeta)
{
    obs::Metrics::setEnabled(true);
    obs::setRunMeta("binary", "test_obs");
    const std::string snapshot = obs::Metrics::snapshotJson();
    obs::clearRunMeta();

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(snapshot, doc, &error)) << error;
    EXPECT_EQ(doc.find("schema_version")->asInt(),
              obs::kObsSchemaVersion);
    const JsonValue* meta = doc.find("meta");
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(meta->find("binary")->string, "test_obs");
    ASSERT_NE(meta->find("timestamp"), nullptr);
    // ISO-8601 UTC: "YYYY-MM-DDTHH:MM:SSZ".
    const std::string& stamp = meta->find("timestamp")->string;
    ASSERT_EQ(stamp.size(), 20u);
    EXPECT_EQ(stamp[10], 'T');
    EXPECT_EQ(stamp.back(), 'Z');
    ASSERT_NE(doc.find("memory_profile"), nullptr);
}

TEST_F(ObsTest, RunReportJsonRoundTrip)
{
    obs::RunReport report;
    report.setBinary("test_obs");
    report.setDataset("synthetic", 100, 400, 4, 16);
    report.setConfig("epochs", "2");
    report.setConfig("epochs", "3"); // updates, no duplicate
    obs::RunReportEpoch epoch;
    epoch.epoch = 0;
    epoch.k = 4;
    epoch.loss = 1.5;
    epoch.peakBytes = 2048;
    report.addEpoch(epoch);
    obs::MemTimelineSample sample;
    sample.tsUs = 7;
    sample.live[size_t(obs::MemCategory::Hidden)] = 30;
    sample.live[size_t(obs::MemCategory::Blocks)] = 12;
    sample.totalLive = 42;
    report.setTimeline({sample});
    report.setPeakBytes(2048);
    report.setOomEvents(1);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(report.toJson(), doc, &error)) << error;
    EXPECT_EQ(doc.find("schema_version")->asInt(),
              obs::kObsSchemaVersion);
    EXPECT_EQ(doc.find("binary")->string, "test_obs");
    EXPECT_EQ(doc.find("dataset")->find("nodes")->asInt(), 100);

    const JsonValue* config = doc.find("config");
    ASSERT_NE(config, nullptr);
    EXPECT_EQ(config->find("epochs")->string, "3");
    ASSERT_EQ(config->object.size(), 1u) << "setConfig must dedup";

    const JsonValue* epochs = doc.find("epochs");
    ASSERT_EQ(epochs->array.size(), 1u);
    EXPECT_EQ(epochs->array[0].find("k")->asInt(), 4);
    EXPECT_EQ(epochs->array[0].find("peak_bytes")->asInt(), 2048);

    const JsonValue* timeline = doc.find("timeline");
    ASSERT_EQ(timeline->array.size(), 1u);
    EXPECT_EQ(
        timeline->array[0].find("total_live_bytes")->asInt(), 42);
    const JsonValue* categories =
        timeline->array[0].find("categories");
    ASSERT_NE(categories, nullptr);
    EXPECT_EQ(categories->find("hidden")->asInt(), 30);
    EXPECT_EQ(categories->find("blocks")->asInt(), 12);

    EXPECT_EQ(doc.find("summary")->find("peak_bytes")->asInt(), 2048);
    EXPECT_EQ(doc.find("summary")->find("oom_events")->asInt(), 1);
}

TEST(ObsLoggingTest, LogLevelFiltersWarnings)
{
    setLogLevel(LogLevel::Silent);
    testing::internal::CaptureStderr();
    warn("obs_test: should be filtered");
    warnOnce("obs_test: also filtered");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

    setLogLevel(LogLevel::Warn);
    testing::internal::CaptureStderr();
    warn("obs_test: visible at warn level");
    const std::string captured = testing::internal::GetCapturedStderr();
    EXPECT_NE(captured.find("visible at warn level"),
              std::string::npos);
    setLogLevel(LogLevel::Info);
}

TEST(ObsLoggingTest, WarnOnceDeduplicatesByMessage)
{
    setLogLevel(LogLevel::Warn);
    testing::internal::CaptureStderr();
    for (int i = 0; i < 3; ++i)
        warnOnce("obs_test: dedup-by-message");
    warnOnce("obs_test: a different message");
    const std::string captured = testing::internal::GetCapturedStderr();
    EXPECT_EQ(captured,
              "warn: obs_test: dedup-by-message\n"
              "warn: obs_test: a different message\n");
    setLogLevel(LogLevel::Info);
}

TEST(ObsLoggingTest, WarnOnceMacroFiresPerCallSite)
{
    setLogLevel(LogLevel::Warn);
    testing::internal::CaptureStderr();
    for (int i = 0; i < 3; ++i)
        BETTY_WARN_ONCE("obs_test: macro call site, i=", i);
    const std::string captured = testing::internal::GetCapturedStderr();
    // One line total even though the message text varies.
    EXPECT_EQ(captured, "warn: obs_test: macro call site, i=0\n");
    setLogLevel(LogLevel::Info);
}

} // namespace
} // namespace betty
