/**
 * @file
 * The always-on flight recorder (obs/perf/flight_recorder.h).
 *
 * Contracts under test: recording is cheap enough to leave on in
 * every run (bounded per-event overhead), the ring never loses
 * accounting (recorded = retained + dropped, seq strictly
 * increasing), concurrent recorders are safe, a fault-injected
 * resilient epoch leaves the fault and the K -> K+1 re-plan in the
 * ring with monotonic timestamps, and the recorder observes without
 * perturbing — parameters are bit-identical with recording on or
 * off.
 */
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/betty.h"
#include "data/catalog.h"
#include "memory/device_memory.h"
#include "memory/transfer_model.h"
#include "obs/json.h"
#include "obs/perf/flight_recorder.h"
#include "robustness/resilient_trainer.h"
#include "sampling/neighbor_sampler.h"
#include "train/trainer.h"
#include "util/fault.h"
#include "util/timer.h"

namespace betty {
namespace {

using obs::FlightRecorder;
using obs::FrCategory;
using obs::FrEvent;
using obs::FrPhase;

/** Fresh default-capacity ring for every test. */
class FlightRecorderTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        FlightRecorder::setCapacity(8192);
        FlightRecorder::setEnabled(true);
        FlightRecorder::clear();
    }

    void
    TearDown() override
    {
        FlightRecorder::clear();
        FlightRecorder::setEnabled(true);
    }

    uint64_t last_hash_ = 0;
};

uint64_t
hashParameters(const GnnModel& model)
{
    uint64_t hash = 1469598103934665603ull;
    for (const auto& param : model.parameters())
        for (int64_t i = 0; i < param->value.numel(); ++i) {
            uint32_t bits;
            std::memcpy(&bits, &param->value.data()[i],
                        sizeof(bits));
            hash = (hash ^ bits) * 1099511628211ull;
        }
    return hash;
}

TEST_F(FlightRecorderTest, RecordsAndSnapshotsInSeqOrder)
{
    FlightRecorder::record(FrCategory::Mark, "one", 1, 10);
    FlightRecorder::record(FrCategory::Mark, "two", 2, 20);
    FlightRecorder::recordBegin("span", 3);
    FlightRecorder::recordEnd("span", 3);

    const auto events = FlightRecorder::snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_STREQ(events[0].name, "one");
    EXPECT_EQ(events[0].a, 1);
    EXPECT_EQ(events[0].b, 10);
    EXPECT_EQ(events[2].phase, FrPhase::Begin);
    EXPECT_EQ(events[3].phase, FrPhase::End);
    for (size_t i = 1; i < events.size(); ++i) {
        EXPECT_GT(events[i].seq, events[i - 1].seq);
        EXPECT_GE(events[i].tsUs, events[i - 1].tsUs);
    }
    EXPECT_EQ(FlightRecorder::recordedEvents(), 4);
    EXPECT_EQ(FlightRecorder::droppedEvents(), 0);
}

TEST_F(FlightRecorderTest, DisabledRecorderKeepsWhatWasRecorded)
{
    FlightRecorder::record(FrCategory::Mark, "kept");
    FlightRecorder::setEnabled(false);
    FlightRecorder::record(FrCategory::Mark, "ignored");
    EXPECT_EQ(FlightRecorder::recordedEvents(), 1);
    const auto events = FlightRecorder::snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "kept");
    FlightRecorder::setEnabled(true);
}

TEST_F(FlightRecorderTest, RingOverwriteIsCountedAsDropped)
{
    FlightRecorder::setCapacity(64);
    for (int i = 0; i < 200; ++i)
        FlightRecorder::record(FrCategory::Mark, "evt", i);
    EXPECT_EQ(FlightRecorder::recordedEvents(), 200);
    EXPECT_EQ(FlightRecorder::droppedEvents(), 200 - 64);
    const auto events = FlightRecorder::snapshot();
    ASSERT_EQ(events.size(), 64u);
    // The retained window is the most recent events, oldest first.
    EXPECT_EQ(events.front().a, 200 - 64);
    EXPECT_EQ(events.back().a, 199);
}

TEST_F(FlightRecorderTest, PerEventOverheadIsBounded)
{
    constexpr int kEvents = 200000;
    Timer timer;
    for (int i = 0; i < kEvents; ++i)
        FlightRecorder::record(FrCategory::Mark, "bench", i, i);
    const double per_event_us =
        timer.seconds() * 1e6 / double(kEvents);
    // Recording is a slot claim + a few relaxed stores — tens of
    // nanoseconds. 2us is ~50x headroom for a loaded CI machine; a
    // lock or allocation on this path would blow through it.
    EXPECT_LT(per_event_us, 2.0);
    EXPECT_EQ(FlightRecorder::recordedEvents(), kEvents);
}

TEST_F(FlightRecorderTest, ConcurrentRecordersLoseNothing)
{
    constexpr int kThreads = 4;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([t] {
            for (int i = 0; i < kPerThread; ++i)
                FlightRecorder::record(FrCategory::Mark, "mt", t, i);
        });
    for (auto& thread : threads)
        thread.join();

    EXPECT_EQ(FlightRecorder::recordedEvents(),
              kThreads * kPerThread);
    EXPECT_EQ(FlightRecorder::droppedEvents(),
              kThreads * kPerThread -
                  int64_t(FlightRecorder::capacity()));
    const auto events = FlightRecorder::snapshot();
    EXPECT_EQ(events.size(), FlightRecorder::capacity());
    std::set<int64_t> seqs;
    for (const auto& event : events)
        seqs.insert(event.seq);
    EXPECT_EQ(seqs.size(), events.size()); // no duplicate slots
}

TEST_F(FlightRecorderTest, DumpJsonIsWellFormed)
{
    FlightRecorder::record(FrCategory::Cache, "cache/evict-batch", 3,
                           7);
    obs::JsonValue doc;
    std::string error;
    ASSERT_TRUE(obs::parseJson(FlightRecorder::dumpJson(), doc,
                               &error))
        << error;
    ASSERT_TRUE(doc.isObject());
    EXPECT_TRUE(doc.find("schema_version"));
    EXPECT_EQ(doc.find("recorded")->asInt(), 1);
    const obs::JsonValue* events = doc.find("events");
    ASSERT_TRUE(events && events->isArray());
    ASSERT_EQ(events->array.size(), 1u);
    const obs::JsonValue& event = events->array[0];
    EXPECT_EQ(event.find("name")->string, "cache/evict-batch");
    EXPECT_EQ(event.find("category")->string, "cache");
    EXPECT_EQ(event.find("a")->asInt(), 3);
    EXPECT_EQ(event.find("b")->asInt(), 7);
}

/**
 * The acceptance scenario: an injected OOM in epoch 1 makes the
 * resilient trainer abort at K=1 and re-plan at K=2. The black box
 * must tell that story — the consumed fault, the abort, and the
 * K -> K+1 re-plan, in causal order with monotonic timestamps — and
 * the recorder itself must not perturb training (bit-identical
 * parameters with recording on or off).
 */
TEST_F(FlightRecorderTest, FaultInjectedRunLeavesTheRecoveryStory)
{
    const Dataset dataset = loadCatalogDataset("cora_like", 0.2, 11);
    NeighborSampler sampler(dataset.graph, {4, 6}, 12);
    std::vector<int64_t> seeds(dataset.trainNodes.begin(),
                               dataset.trainNodes.begin() + 120);
    const MultiLayerBatch full = sampler.sample(seeds);

    SageConfig cfg;
    cfg.inputDim = dataset.featureDim();
    cfg.hiddenDim = 16;
    cfg.numClasses = dataset.numClasses;
    cfg.numLayers = 2;
    cfg.seed = 5;

    auto runEpoch = [&](bool recorder_on) {
        FlightRecorder::clear();
        FlightRecorder::setEnabled(recorder_on);
        fault::FaultPlan plan;
        ASSERT_TRUE(
            fault::FaultPlan::parse("oom@epoch1.mb0", plan, nullptr));
        fault::Injector::install(std::move(plan));

        DeviceMemoryModel device(0);
        DeviceMemoryModel::Scope scope(device);
        GraphSage model(cfg);
        Adam adam(model.parameters(), 0.01f);
        TransferModel transfer;
        Trainer trainer(dataset, model, adam, &device, &transfer);
        trainer.setPipeline(false);
        BettyPartitioner partitioner;
        ResilientTrainer resilient(trainer, model.memorySpec(),
                                   partitioner, &device);
        const auto result = resilient.trainEpoch(full, 1, 1);
        EXPECT_FALSE(result.skipped);
        EXPECT_EQ(result.plan.k, 2);
        fault::Injector::clear();
        FlightRecorder::setEnabled(true);
        last_hash_ = hashParameters(model);
    };

    runEpoch(true);
    const uint64_t hash_with_recorder = last_hash_;
    const auto events = FlightRecorder::snapshot();

    auto findEvent = [&](const char* name) -> const FrEvent* {
        for (const auto& event : events)
            if (std::strcmp(event.name, name) == 0)
                return &event;
        return nullptr;
    };

    const FrEvent* fault = findEvent("oom");
    ASSERT_TRUE(fault) << "consumed fault not recorded";
    EXPECT_EQ(fault->category, FrCategory::Fault);
    EXPECT_EQ(fault->a, 1); // epoch
    EXPECT_EQ(fault->b, 0); // micro-batch

    const FrEvent* abort_event = findEvent("oom/epoch-abort");
    ASSERT_TRUE(abort_event);
    const FrEvent* replan = findEvent("recover/replan");
    ASSERT_TRUE(replan) << "K -> K+1 re-plan not recorded";
    EXPECT_EQ(replan->a, 1); // aborted K
    EXPECT_EQ(replan->b, 2); // next K

    // Causal order with monotonic timestamps: fault -> abort ->
    // re-plan, and the whole (serial) ring is time-ordered.
    EXPECT_LT(fault->seq, abort_event->seq);
    EXPECT_LT(abort_event->seq, replan->seq);
    for (size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].tsUs, events[i - 1].tsUs);

    // Epoch span markers bracket everything recovery-related.
    const FrEvent* begin = findEvent("epoch/train");
    ASSERT_TRUE(begin);
    EXPECT_EQ(begin->phase, FrPhase::Begin);

    // Observe, never perturb: the same run with the recorder off
    // lands on bit-identical parameters.
    runEpoch(false);
    EXPECT_EQ(last_hash_, hash_with_recorder);
}

} // namespace
} // namespace betty
