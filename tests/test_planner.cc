/**
 * @file
 * Tests for the memory-aware planner (§4.4.3 re-partitioning loop).
 */
#include <gtest/gtest.h>

#include "core/betty.h"
#include "data/catalog.h"
#include "sampling/neighbor_sampler.h"

namespace betty {
namespace {

struct Env
{
    Env()
        : dataset(loadCatalogDataset("arxiv_like", 0.03, 31)),
          sampler(dataset.graph, {5, 8}, 32)
    {
        std::vector<int64_t> seeds(dataset.trainNodes.begin(),
                                   dataset.trainNodes.begin() + 150);
        full = sampler.sample(seeds);

        spec.inputDim = dataset.featureDim();
        spec.hiddenDim = 32;
        spec.numClasses = dataset.numClasses;
        spec.numLayers = 2;
        spec.aggregator = AggregatorKind::Mean;
        spec.paramCountGnn = 50000;
    }

    Dataset dataset;
    NeighborSampler sampler;
    MultiLayerBatch full;
    GnnSpec spec;
};

TEST(Planner, UnlimitedCapacityKeepsKOne)
{
    Env env;
    MemoryAwarePlanner planner(env.spec, /*capacity=*/0);
    BettyPartitioner part;
    const auto plan = planner.plan(env.full, part);
    EXPECT_TRUE(plan.fits);
    EXPECT_EQ(plan.k, 1);
    EXPECT_EQ(plan.attempts, 1);
    EXPECT_EQ(plan.microBatches.size(), 1u);
}

TEST(Planner, GenerousCapacityFitsImmediately)
{
    Env env;
    const auto full_est = estimateBatchMemory(env.full, env.spec);
    MemoryAwarePlanner planner(env.spec, full_est.peak + 1);
    BettyPartitioner part;
    const auto plan = planner.plan(env.full, part);
    EXPECT_TRUE(plan.fits);
    EXPECT_EQ(plan.k, 1);
}

TEST(Planner, TightCapacityIncreasesK)
{
    Env env;
    const auto full_est = estimateBatchMemory(env.full, env.spec);
    // Force a split: less than the full batch needs.
    MemoryAwarePlanner planner(env.spec, full_est.peak * 3 / 4);
    BettyPartitioner part;
    const auto plan = planner.plan(env.full, part);
    EXPECT_TRUE(plan.fits);
    EXPECT_GT(plan.k, 1);
    EXPECT_EQ(plan.attempts, plan.k);
    EXPECT_LE(plan.maxEstimatedPeak, full_est.peak * 3 / 4);
}

TEST(Planner, EveryMicroBatchMeetsBudget)
{
    Env env;
    const auto full_est = estimateBatchMemory(env.full, env.spec);
    const int64_t budget = full_est.peak / 2;
    MemoryAwarePlanner planner(env.spec, budget);
    BettyPartitioner part;
    const auto plan = planner.plan(env.full, part);
    ASSERT_TRUE(plan.fits);
    for (const auto& est : plan.estimates)
        EXPECT_LE(est.peak, budget);
    EXPECT_EQ(plan.estimates.size(), plan.microBatches.size());
}

TEST(Planner, TighterBudgetNeverNeedsFewerBatches)
{
    Env env;
    const auto full_est = estimateBatchMemory(env.full, env.spec);
    BettyPartitioner part;
    MemoryAwarePlanner loose(env.spec, full_est.peak * 3 / 4);
    MemoryAwarePlanner tight(env.spec, full_est.peak / 2);
    EXPECT_GE(tight.plan(env.full, part).k,
              loose.plan(env.full, part).k);
}

TEST(Planner, ImpossibleBudgetReportsNoFit)
{
    Env env;
    // Parameters alone exceed this budget: no K can ever fit.
    MemoryAwarePlanner planner(env.spec, 1000);
    BettyPartitioner part;
    const auto plan = planner.plan(env.full, part, 1, 8);
    EXPECT_FALSE(plan.fits);
    EXPECT_GE(plan.attempts, 8);
}

TEST(Planner, InitialKRespected)
{
    Env env;
    MemoryAwarePlanner planner(env.spec, 0);
    BettyPartitioner part;
    const auto plan = planner.plan(env.full, part, /*initial_k=*/4);
    EXPECT_EQ(plan.k, 4);
    EXPECT_EQ(plan.microBatches.size(), 4u);
}

TEST(Planner, WorksWithBaselinePartitioners)
{
    Env env;
    const auto full_est = estimateBatchMemory(env.full, env.spec);
    MemoryAwarePlanner planner(env.spec, full_est.peak * 2 / 3);
    RangePartitioner range;
    RandomPartitioner random(7);
    for (OutputPartitioner* part :
         std::initializer_list<OutputPartitioner*>{&range, &random}) {
        const auto plan = planner.plan(env.full, *part);
        EXPECT_TRUE(plan.fits) << part->name();
        EXPECT_GT(plan.k, 1) << part->name();
    }
}

TEST(PlannerGeometric, MatchesLinearSearchResult)
{
    Env env;
    const auto full_est = estimateBatchMemory(env.full, env.spec);
    // Divisor 2 fits at this scale; tighter budgets fall below the
    // fixed-cost floor (params + optimizer states live in EVERY
    // micro-batch) and must be reported unfittable by BOTH searches.
    for (int64_t divisor : {2, 3, 5}) {
        const int64_t budget = full_est.peak / divisor;
        MemoryAwarePlanner planner(env.spec, budget);
        BettyPartitioner part;
        const auto linear = planner.plan(env.full, part);
        const auto fast = planner.planGeometric(env.full, part);
        ASSERT_EQ(linear.fits, fast.fits) << "divisor " << divisor;
        if (linear.fits) {
            // Never below the strict minimum (linear returns the
            // first fitting K, so any fitting K is >= it). Above it,
            // worst-case memory is not monotone in K — repartitioning
            // can make the worst micro-batch of K+1 larger than K's —
            // so the binary search may skip past a fitting K it never
            // probed and settle a couple of steps high.
            EXPECT_GE(fast.k, linear.k) << "divisor " << divisor;
            EXPECT_LE(fast.k, linear.k + 2) << "divisor " << divisor;
            EXPECT_LE(fast.maxEstimatedPeak, budget);
        }
    }
}

TEST(PlannerGeometric, FewerAttemptsWhenKIsLarge)
{
    // Whether or not the tight budget fits, geometric probing must
    // reach its conclusion in O(log K) rounds where linear needs O(K).
    Env env;
    const auto full_est = estimateBatchMemory(env.full, env.spec);
    MemoryAwarePlanner planner(env.spec, full_est.peak / 8);
    BettyPartitioner part;
    const auto linear = planner.plan(env.full, part);
    const auto fast = planner.planGeometric(env.full, part);
    EXPECT_EQ(linear.fits, fast.fits);
    if (linear.attempts >= 8)
        EXPECT_LT(fast.attempts, linear.attempts / 2);
}

TEST(PlannerGeometric, UnlimitedCapacityIsKOne)
{
    Env env;
    MemoryAwarePlanner planner(env.spec, 0);
    BettyPartitioner part;
    const auto plan = planner.planGeometric(env.full, part);
    EXPECT_TRUE(plan.fits);
    EXPECT_EQ(plan.k, 1);
    EXPECT_EQ(plan.attempts, 1);
}

TEST(PlannerGeometric, ImpossibleBudgetReportsNoFit)
{
    Env env;
    MemoryAwarePlanner planner(env.spec, 1000);
    BettyPartitioner part;
    const auto plan = planner.planGeometric(env.full, part);
    EXPECT_FALSE(plan.fits);
}

/** A partitioner with a deliberately pathological K: for one chosen
 * K it dumps almost every output into group 0 (worst micro-batch ≈
 * the whole batch), everywhere else it splits round-robin. Worst-case
 * memory is therefore NON-monotone in K, which is the regime the
 * planner's searches must survive. */
class SpitefulPartitioner : public OutputPartitioner
{
  public:
    explicit SpitefulPartitioner(int32_t bad_k) : bad_k_(bad_k) {}

    std::vector<std::vector<int64_t>>
    partition(const MultiLayerBatch& batch, int32_t k) override
    {
        const auto outputs = batch.outputNodes();
        std::vector<std::vector<int64_t>> groups;
        groups.resize(size_t(k));
        if (k == bad_k_) {
            // One token output per minor group, the rest in group 0.
            for (size_t i = 0; i < outputs.size(); ++i) {
                const size_t g = i < size_t(k) - 1 ? i + 1 : 0;
                groups[g].push_back(outputs[i]);
            }
        } else {
            for (size_t i = 0; i < outputs.size(); ++i)
                groups[i % size_t(k)].push_back(outputs[i]);
        }
        return groups;
    }

    std::string name() const override { return "spiteful"; }

  private:
    int32_t bad_k_;
};

TEST(Planner, ExhaustionAtMaxKIsReportedNotFatal)
{
    Env env;
    // Parameters alone exceed this budget: no K can ever fit. The
    // caller (the resilient trainer's skip-with-report path) relies
    // on getting a well-formed "no" back rather than a crash.
    MemoryAwarePlanner planner(env.spec, 1000);
    BettyPartitioner part;
    const auto plan = planner.plan(env.full, part, 1, 8);
    EXPECT_FALSE(plan.fits);
    EXPECT_EQ(plan.k, 8) << "stops exactly at max_k";
    EXPECT_GE(plan.attempts, 8);
    ASSERT_EQ(plan.microBatches.size(), 8u)
        << "the last attempted plan is still returned";
    EXPECT_EQ(plan.estimates.size(), plan.microBatches.size());
    for (const auto& est : plan.estimates)
        EXPECT_GT(est.peak, 1000) << "every piece really is too big";
}

TEST(Planner, SetCapacityRetargetsTheSearch)
{
    Env env;
    const auto full_est = estimateBatchMemory(env.full, env.spec);
    MemoryAwarePlanner planner(env.spec, full_est.peak + 1);
    BettyPartitioner part;
    EXPECT_EQ(planner.plan(env.full, part).k, 1);

    // The resilient trainer calls this after a capacity-drop fault:
    // the same planner must now split.
    planner.setCapacity(full_est.peak / 2);
    EXPECT_EQ(planner.capacity(), full_est.peak / 2);
    const auto tight = planner.plan(env.full, part);
    ASSERT_TRUE(tight.fits);
    EXPECT_GT(tight.k, 1);
    EXPECT_LE(tight.maxEstimatedPeak, full_est.peak / 2);

    planner.setCapacity(0);
    EXPECT_EQ(planner.plan(env.full, part).k, 1)
        << "back to unlimited";
}

TEST(Planner, LinearSearchSurvivesNonMonotoneWorstCase)
{
    Env env;
    constexpr int32_t kBadK = 4;
    SpitefulPartitioner part(kBadK);

    // Probe the worst-case estimate at a few fixed K (capacity 0
    // accepts the initial K, so plan(k, 0) is "partition at exactly
    // k and estimate").
    MemoryAwarePlanner probe(env.spec, 0);
    const int64_t worst_at_3 =
        probe.plan(env.full, part, 3).maxEstimatedPeak;
    const int64_t worst_at_4 =
        probe.plan(env.full, part, kBadK).maxEstimatedPeak;
    ASSERT_GT(worst_at_4, worst_at_3)
        << "the stub must make worst-case memory non-monotone";

    // Fits at K=3 but NOT at K=4: a search that assumed monotonicity
    // and stopped at the first non-fitting K above a fitting one (or
    // started above it) would fail here.
    MemoryAwarePlanner planner(env.spec, worst_at_3);
    const auto from_low = planner.plan(env.full, part);
    ASSERT_TRUE(from_low.fits);
    EXPECT_LE(from_low.k, 3);
    EXPECT_NE(from_low.k, kBadK);

    // Starting the search AT the pathological K (exactly what a
    // re-plan at K+1 can do) must step over it, not give up.
    const auto from_bad = planner.plan(env.full, part, kBadK);
    ASSERT_TRUE(from_bad.fits);
    EXPECT_GT(from_bad.k, kBadK);
    EXPECT_LE(from_bad.maxEstimatedPeak, worst_at_3);
}

TEST(PlannerGeometric, NonMonotoneWorstCaseStillFindsAFit)
{
    Env env;
    constexpr int32_t kBadK = 4;
    SpitefulPartitioner part(kBadK);
    MemoryAwarePlanner probe(env.spec, 0);
    const int64_t worst_at_3 =
        probe.plan(env.full, part, 3).maxEstimatedPeak;

    // The geometric search may probe the pathological K and settle
    // above the strict minimum, but whatever it returns must fit.
    MemoryAwarePlanner planner(env.spec, worst_at_3);
    const auto fast = planner.planGeometric(env.full, part);
    ASSERT_TRUE(fast.fits);
    EXPECT_LE(fast.maxEstimatedPeak, worst_at_3);
    EXPECT_GE(fast.k, 2);
}

TEST(BettyFacade, PlanFastFitsBudget)
{
    Env env;
    const auto full_est = estimateBatchMemory(env.full, env.spec);
    BettyConfig config;
    config.deviceCapacityBytes = full_est.peak * 3 / 5;
    Betty betty(env.spec, config);
    const auto plan = betty.planFast(env.full);
    ASSERT_TRUE(plan.fits);
    EXPECT_LE(plan.maxEstimatedPeak, config.deviceCapacityBytes);
}

TEST(BettyFacade, PlanAndPartition)
{
    Env env;
    const auto full_est = estimateBatchMemory(env.full, env.spec);
    BettyConfig config;
    config.deviceCapacityBytes = full_est.peak * 3 / 4;
    Betty betty(env.spec, config);

    const auto plan = betty.plan(env.full);
    EXPECT_TRUE(plan.fits);
    EXPECT_GT(plan.k, 1);

    const auto fixed = betty.partition(env.full, 6);
    EXPECT_EQ(fixed.size(), 6u);
    size_t outputs = 0;
    for (const auto& micro : fixed)
        outputs += micro.outputNodes().size();
    EXPECT_EQ(outputs, env.full.outputNodes().size());
}

TEST(Planner, BettyNeedsNoMoreBatchesThanRandom)
{
    // Betty's lower redundancy means its micro-batches are smaller at
    // equal K, so it should never need MORE batches than random to
    // meet the same budget.
    Env env;
    const auto full_est = estimateBatchMemory(env.full, env.spec);
    const int64_t budget = full_est.peak * 3 / 5;
    MemoryAwarePlanner planner(env.spec, budget);
    BettyPartitioner betty;
    RandomPartitioner random(9);
    EXPECT_LE(planner.plan(env.full, betty).k,
              planner.plan(env.full, random).k);
}

} // namespace
} // namespace betty
