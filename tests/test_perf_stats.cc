/**
 * @file
 * Repeat statistics, phase aggregation, and the bench harness
 * (obs/perf/phase_stats.h, obs/perf/bench_harness.h) plus the
 * histogram percentile export they surface.
 *
 * Contracts under test: BenchStats matches hand-computed values on
 * known samples (including the linear interpolation between order
 * statistics), PhaseTimer turns trace spans into one sample per
 * measured repeat with warmup discarded and absent phases
 * zero-filled, histogram percentiles interpolate within buckets and
 * the count/sum consistency check holds, and BenchRunner produces a
 * parseable schema-versioned report with exactly `repeats` wall
 * samples per scenario.
 */
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/perf/bench_harness.h"
#include "obs/perf/phase_stats.h"
#include "obs/trace.h"

namespace betty::obs {
namespace {

TEST(BenchStats, KnownSamples)
{
    BenchStats stats;
    for (double v : {4.0, 1.0, 3.0, 2.0})
        stats.add(v);
    EXPECT_EQ(stats.count(), 4u);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 4.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
    EXPECT_DOUBLE_EQ(stats.median(), 2.5);
    // Population stddev of {1,2,3,4}: sqrt(5/4).
    EXPECT_NEAR(stats.stddev(), 1.1180339887498949, 1e-12);
    // Interpolated percentiles over sorted {1,2,3,4}: rank
    // q*(n-1) = 2.85 for p95 -> 3 + 0.85.
    EXPECT_NEAR(stats.percentile(0.95), 3.85, 1e-12);
    EXPECT_DOUBLE_EQ(stats.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(stats.percentile(1.0), 4.0);
}

TEST(BenchStats, DegenerateCases)
{
    BenchStats empty;
    EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
    EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(empty.stddev(), 0.0);

    BenchStats one;
    one.add(7.0);
    EXPECT_DOUBLE_EQ(one.median(), 7.0);
    EXPECT_DOUBLE_EQ(one.stddev(), 0.0);
}

TEST(BenchStats, JsonRoundTrips)
{
    BenchStats stats;
    stats.add(0.25);
    stats.add(0.75);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(stats.toJson(), doc, &error)) << error;
    EXPECT_DOUBLE_EQ(doc.find("median")->number, 0.5);
    EXPECT_DOUBLE_EQ(doc.find("min")->number, 0.25);
    ASSERT_TRUE(doc.find("samples")->isArray());
    EXPECT_EQ(doc.find("samples")->array.size(), 2u);
}

TEST(HistogramPercentile, InterpolatesWithinBuckets)
{
    Metrics::setEnabled(true);
    Histogram hist({1.0, 2.0, 4.0});
    // 10 observations in [1, 2), none elsewhere: every mid quantile
    // interpolates inside that bucket.
    for (int i = 0; i < 10; ++i)
        hist.observe(1.5);
    EXPECT_EQ(hist.count(), 10);
    EXPECT_DOUBLE_EQ(hist.sum(), 15.0);
    EXPECT_TRUE(hist.bucketsConsistent());
    const double p50 = hist.percentile(0.5);
    EXPECT_GT(p50, 1.0);
    EXPECT_LE(p50, 2.0);
    const double p95 = hist.percentile(0.95);
    EXPECT_GE(p95, p50);
    EXPECT_LE(p95, 2.0);
    Metrics::setEnabled(false);
}

TEST(HistogramPercentile, OverflowBucketClampsToLastBound)
{
    Metrics::setEnabled(true);
    Histogram hist({1.0, 2.0});
    hist.observe(100.0); // lands in the overflow bucket
    EXPECT_DOUBLE_EQ(hist.percentile(0.99), 2.0);
    Metrics::setEnabled(false);
}

TEST(PhaseTimer, OneSamplePerMeasuredRepeatWithZeroFill)
{
    const bool was_tracing = Trace::enabled();
    PhaseTimer timer;

    // Warmup repeat: records a span, must leave no samples.
    timer.beginRepeat();
    {
        BETTY_TRACE_SPAN("perftest/warm");
    }
    timer.endRepeat(true);
    EXPECT_EQ(timer.measuredRepeats(), 0);
    EXPECT_TRUE(timer.phases().empty());

    // Repeat 1 runs phase a only; repeat 2 runs a and b. Phase b
    // must be zero-backfilled so both series have 2 samples.
    timer.beginRepeat();
    {
        BETTY_TRACE_SPAN("perftest/a");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    timer.endRepeat();
    timer.beginRepeat();
    {
        BETTY_TRACE_SPAN("perftest/a");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        BETTY_TRACE_SPAN("perftest/b");
    }
    timer.endRepeat();

    EXPECT_EQ(timer.measuredRepeats(), 2);
    const auto& phases = timer.phases();
    ASSERT_TRUE(phases.count("perftest/a"));
    ASSERT_TRUE(phases.count("perftest/b"));
    const BenchStats& a = phases.at("perftest/a");
    const BenchStats& b = phases.at("perftest/b");
    ASSERT_EQ(a.count(), 2u);
    ASSERT_EQ(b.count(), 2u);
    EXPECT_GT(a.samples()[0], 0.0);
    EXPECT_GT(a.samples()[1], 0.0);
    EXPECT_DOUBLE_EQ(b.samples()[0], 0.0); // absent in repeat 1
    EXPECT_EQ(Trace::enabled(), was_tracing); // state restored
}

TEST(BenchRunner, TrivialScenarioProducesAValidReport)
{
    BenchConfig config;
    config.repeats = 3;
    config.warmup = 1;
    BenchRunner runner(config);
    runner.setConfigNote("note", "value");

    int setups = 0, runs = 0, teardowns = 0;
    BenchScenario scenario;
    scenario.name = "trivial";
    scenario.description = "counts invocations";
    scenario.setup = [&] { ++setups; };
    scenario.run = [&] {
        ++runs;
        BETTY_TRACE_SPAN("perftest/body");
        if (Metrics::enabled())
            Metrics::counter("perftest.count").increment();
    };
    scenario.teardown = [&] { ++teardowns; };
    runner.run(scenario);

    EXPECT_EQ(setups, 1);
    EXPECT_EQ(runs, config.repeats + config.warmup);
    EXPECT_EQ(teardowns, 1);
    EXPECT_EQ(runner.scenarioCount(), 1);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(runner.reportJson(), doc, &error)) << error;
    EXPECT_EQ(doc.find("bench_schema_version")->asInt(),
              kBenchSchemaVersion);
    ASSERT_TRUE(doc.find("fingerprint"));
    EXPECT_GT(doc.find("fingerprint")->find("cores")->asInt(), 0);
    EXPECT_EQ(doc.find("config")->find("note")->string, "value");

    const JsonValue* entry =
        doc.find("scenarios")->find("trivial");
    ASSERT_TRUE(entry);
    // Warmup is discarded: exactly `repeats` wall samples.
    EXPECT_EQ(
        entry->find("wall_seconds")->find("samples")->array.size(),
        size_t(config.repeats));
    // The counter delta series and the phase series align with it.
    const JsonValue* counter =
        entry->find("counters")->find("perftest.count");
    ASSERT_TRUE(counter);
    EXPECT_EQ(counter->find("samples")->array.size(),
              size_t(config.repeats));
    EXPECT_DOUBLE_EQ(counter->find("median")->number, 1.0);
    ASSERT_TRUE(entry->find("phases")->find("perftest/body"));
}

} // namespace
} // namespace betty::obs
