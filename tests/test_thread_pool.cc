/**
 * @file
 * Tests for the work-stealing ThreadPool (util/thread_pool.h):
 * submit/wait semantics, parallelFor chunk coverage, exception
 * propagation out of workers, nested submission, and clean shutdown
 * under load (repeated as a mini stress test).
 */
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace betty {
namespace {

TEST(ThreadPool, SubmitReturnsValueThroughFuture)
{
    ThreadPool pool(4);
    auto future = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitRunsInlineWithoutWorkers)
{
    ThreadPool pool(1);
    std::atomic<int> ran{0};
    auto future = pool.submit([&ran] { ran.store(1); return 5; });
    // No workers: the task completed during submit().
    EXPECT_EQ(ran.load(), 1);
    EXPECT_EQ(future.get(), 5);
}

TEST(ThreadPool, ManySubmitsAllComplete)
{
    ThreadPool pool(4);
    constexpr int kTasks = 500;
    std::atomic<int64_t> sum{0};
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i)
        futures.push_back(pool.submit([&sum, i] { sum += i; }));
    for (auto& f : futures)
        f.get();
    EXPECT_EQ(sum.load(), int64_t(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPool, SubmitPropagatesException)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

/** parallelFor must cover every index exactly once, for any pool
 * size and any grain (including grains that do not divide the
 * range). */
class PoolSweep
    : public ::testing::TestWithParam<std::pair<int32_t, int64_t>>
{
};

TEST_P(PoolSweep, ParallelForCoversEveryIndexOnce)
{
    const auto [threads, grain] = GetParam();
    ThreadPool pool(threads);
    constexpr int64_t kN = 1000;
    std::vector<std::atomic<int32_t>> hits(kN);
    pool.parallelFor(0, kN, grain, [&](int64_t lo, int64_t hi) {
        ASSERT_LE(hi - lo, grain);
        for (int64_t i = lo; i < hi; ++i)
            hits[size_t(i)].fetch_add(1);
    });
    for (int64_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[size_t(i)].load(), 1) << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsTimesGrain, PoolSweep,
    ::testing::Values(std::pair<int32_t, int64_t>{1, 1},
                      std::pair<int32_t, int64_t>{1, 64},
                      std::pair<int32_t, int64_t>{2, 7},
                      std::pair<int32_t, int64_t>{4, 1},
                      std::pair<int32_t, int64_t>{4, 33},
                      std::pair<int32_t, int64_t>{8, 1000},
                      std::pair<int32_t, int64_t>{8, 5000}));

TEST(ThreadPool, ParallelForEmptyRangeIsNoop)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
    pool.parallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForChunkBoundariesIndependentOfThreads)
{
    // The chunk set is a function of (begin, end, grain) only; record
    // it at two pool sizes and compare.
    auto chunksOf = [](int32_t threads) {
        ThreadPool pool(threads);
        std::mutex mutex;
        std::vector<std::pair<int64_t, int64_t>> chunks;
        pool.parallelFor(3, 250, 16, [&](int64_t lo, int64_t hi) {
            std::lock_guard<std::mutex> lock(mutex);
            chunks.emplace_back(lo, hi);
        });
        std::sort(chunks.begin(), chunks.end());
        return chunks;
    };
    EXPECT_EQ(chunksOf(1), chunksOf(7));
}

TEST(ThreadPool, ParallelForPropagatesBodyException)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 100, 1,
                         [](int64_t lo, int64_t) {
                             if (lo == 50)
                                 throw std::runtime_error("chunk 50");
                         }),
        std::runtime_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    ThreadPool pool(4);
    constexpr int64_t kOuter = 16, kInner = 64;
    std::vector<std::atomic<int32_t>> hits(kOuter * kInner);
    pool.parallelFor(0, kOuter, 1, [&](int64_t olo, int64_t ohi) {
        for (int64_t o = olo; o < ohi; ++o)
            pool.parallelFor(0, kInner, 8,
                             [&, o](int64_t lo, int64_t hi) {
                                 for (int64_t i = lo; i < hi; ++i)
                                     hits[size_t(o * kInner + i)]
                                         .fetch_add(1);
                             });
    });
    for (auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedSubmitFromWorkerCompletes)
{
    ThreadPool pool(4);
    auto outer = pool.submit([&pool] {
        auto inner = pool.submit([] { return 11; });
        return inner.get() + 31;
    });
    EXPECT_EQ(outer.get(), 42);
}

/** Mini stress test: 200+ iterations of construct / flood with work /
 * destroy, alternating pool sizes — shutdown must drain cleanly with
 * tasks still queued behind the workers. */
TEST(ThreadPoolStress, RepeatedShutdownUnderLoad)
{
    for (int iteration = 0; iteration < 220; ++iteration) {
        const int32_t threads = 1 + iteration % 5;
        ThreadPool pool(threads);
        std::atomic<int64_t> sum{0};
        std::vector<std::future<void>> futures;
        for (int t = 0; t < 16; ++t)
            futures.push_back(
                pool.submit([&sum, t] { sum += t + 1; }));
        pool.parallelFor(0, 64, 5, [&](int64_t lo, int64_t hi) {
            sum += hi - lo;
        });
        for (auto& f : futures)
            f.get();
        EXPECT_EQ(sum.load(), 16 * 17 / 2 + 64);
        // The destructor must join without losing queued work.
    }
}

TEST(ThreadPool, GlobalPoolResizeTakesEffect)
{
    ThreadPool::setGlobalThreads(3);
    EXPECT_EQ(ThreadPool::globalThreads(), 3);
    EXPECT_EQ(ThreadPool::global().numThreads(), 3);
    ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(ThreadPool::globalThreads(), 1);
}

TEST(ThreadPool, ClampsNonPositiveThreadCounts)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.numThreads(), 1);
    std::atomic<int> ran{0};
    pool.parallelFor(0, 10, 4,
                     [&](int64_t lo, int64_t hi) { ran += int(hi - lo); });
    EXPECT_EQ(ran.load(), 10);
}

} // namespace
} // namespace betty
