/**
 * @file
 * Tests for the GCN and GIN layers/models: forward math, gradient
 * checks, training, estimator accuracy and micro-batch equivalence.
 */
#include <gtest/gtest.h>

#include "core/betty.h"
#include "data/catalog.h"
#include "nn/gcn_conv.h"
#include "nn/models.h"
#include "nn/optim.h"
#include "sampling/neighbor_sampler.h"
#include "test_helpers.h"
#include "train/trainer.h"

namespace betty {
namespace {

TEST(GcnConvTest, ForwardMatchesManual)
{
    Rng rng(1);
    GcnConv conv(1, 1, rng);
    auto params = conv.parameters();
    params[0]->value = Tensor::fromValues(1, 1, {1}); // identity W
    params[1]->value = Tensor::zeros(1, 1);

    // dst 0 (feature 10) aggregates {20, 30}:
    // (20 + 30 + 10) / (2 + 1) = 20.
    const Block block({0}, {{1, 2}});
    const auto h =
        ag::constant(Tensor::fromValues(3, 1, {10, 20, 30}));
    const auto y = conv.forward(block, h);
    EXPECT_FLOAT_EQ(y->value.at(0, 0), 20.0f);
}

TEST(GcnConvTest, ZeroDegreeFallsBackToSelf)
{
    Rng rng(2);
    GcnConv conv(1, 1, rng);
    auto params = conv.parameters();
    params[0]->value = Tensor::fromValues(1, 1, {1});
    params[1]->value = Tensor::zeros(1, 1);
    const Block block({0}, {{}});
    const auto h = ag::constant(Tensor::fromValues(1, 1, {8}));
    // (0 + 8) / (0 + 1) = 8.
    EXPECT_FLOAT_EQ(conv.forward(block, h)->value.at(0, 0), 8.0f);
}

TEST(GcnConvTest, GradientCheck)
{
    Rng rng(3);
    GcnConv conv(2, 2, rng);
    const Block block({0, 1}, {{2, 3}, {3}});
    const Tensor h = Tensor::uniform(4, 2, rng);
    testutil::checkGradients(
        [&] {
            const auto y =
                conv.forward(block, ag::constant(h.clone()));
            return ag::softmaxCrossEntropy(y, {0, 1});
        },
        conv.parameters(), 1e-2f, 5e-2f);
}

TEST(GinConvTest, ForwardUsesEpsilon)
{
    Rng rng(4);
    GinConv conv(1, 1, rng);
    EXPECT_FLOAT_EQ(conv.epsilon(), 0.0f);
    // With eps = 0: combined = self + sum(neigh).
    auto params = conv.parameters();
    // params: eps, fc1 (W, b), fc2 (W, b) -> make MLP the identity.
    params[1]->value = Tensor::fromValues(1, 1, {1}); // fc1 W
    params[2]->value = Tensor::zeros(1, 1);           // fc1 b
    params[3]->value = Tensor::fromValues(1, 1, {1}); // fc2 W
    params[4]->value = Tensor::zeros(1, 1);           // fc2 b
    const Block block({0}, {{1, 2}});
    const auto h = ag::constant(
        Tensor::fromValues(3, 1, {10, 20, 30}));
    // relu(10 + 50) = 60.
    EXPECT_FLOAT_EQ(conv.forward(block, h)->value.at(0, 0), 60.0f);

    // eps = 1 doubles the self term: relu(20 + 50) = 70.
    params[0]->value = Tensor::fromValues(1, 1, {1});
    EXPECT_FLOAT_EQ(conv.forward(block, h)->value.at(0, 0), 70.0f);
}

TEST(GinConvTest, GradientCheckIncludingEpsilon)
{
    Rng rng(5);
    GinConv conv(2, 2, rng);
    const Block block({0, 1}, {{2, 3}, {3}});
    const Tensor h = Tensor::uniform(4, 2, rng);
    testutil::checkGradients(
        [&] {
            const auto y =
                conv.forward(block, ag::constant(h.clone()));
            return ag::softmaxCrossEntropy(y, {0, 1});
        },
        conv.parameters(), 1e-2f, 8e-2f);
}

struct Env
{
    Env()
        : dataset(loadCatalogDataset("cora_like", 0.15, 71)),
          sampler(dataset.graph, {-1, -1}, 72)
    {
        std::vector<int64_t> seeds(dataset.trainNodes.begin(),
                                   dataset.trainNodes.begin() + 120);
        full = sampler.sample(seeds);
        config.inputDim = dataset.featureDim();
        config.hiddenDim = 16;
        config.numClasses = dataset.numClasses;
        config.numLayers = 2;
    }

    Dataset dataset;
    NeighborSampler sampler;
    MultiLayerBatch full;
    StackConfig config;
};

template <typename Model>
void
expectTrains(Env& env)
{
    Model model(env.config);
    Adam adam(model.parameters(), 0.01f);
    Trainer trainer(env.dataset, model, adam);
    const double first = trainer.trainMicroBatches({env.full}).loss;
    double last = first;
    for (int epoch = 0; epoch < 12; ++epoch)
        last = trainer.trainMicroBatches({env.full}).loss;
    EXPECT_LT(last, 0.7 * first);
}

TEST(GcnModel, TrainsOnCora)
{
    Env env;
    expectTrains<Gcn>(env);
}

TEST(GinModel, TrainsOnCora)
{
    Env env;
    expectTrains<Gin>(env);
}

template <typename Model>
void
expectEstimatorAccurate(Env& env, double band)
{
    DeviceMemoryModel device;
    DeviceMemoryModel::Scope scope(device);
    Model model(env.config);
    Adam adam(model.parameters(), 0.01f);
    Trainer trainer(env.dataset, model, adam, &device);
    const auto est = estimateBatchMemory(env.full, model.memorySpec());
    const auto stats = trainer.trainMicroBatches({env.full});
    const double err =
        std::abs(double(est.peak) - double(stats.peakBytes)) /
        double(stats.peakBytes);
    EXPECT_LT(err, band) << "est " << est.peak << " measured "
                         << stats.peakBytes;
}

TEST(GcnModel, EstimatorWithinPaperBand)
{
    Env env;
    expectEstimatorAccurate<Gcn>(env, 0.08);
}

TEST(GinModel, EstimatorWithinPaperBand)
{
    Env env;
    expectEstimatorAccurate<Gin>(env, 0.08);
}

template <typename Model>
void
expectMicroEqualsFull(Env& env)
{
    // Same init, full-batch vs 4 Betty micro-batches: losses match.
    Model full_model(env.config);
    Model micro_model(env.config);
    Adam full_adam(full_model.parameters(), 0.01f);
    Adam micro_adam(micro_model.parameters(), 0.01f);
    Trainer full_trainer(env.dataset, full_model, full_adam);
    Trainer micro_trainer(env.dataset, micro_model, micro_adam);
    BettyPartitioner part;
    const auto micros =
        extractMicroBatches(env.full, part.partition(env.full, 4));
    for (int epoch = 0; epoch < 4; ++epoch) {
        const double a =
            full_trainer.trainMicroBatches({env.full}).loss;
        const double b = micro_trainer.trainMicroBatches(micros).loss;
        ASSERT_NEAR(a, b, 5e-3 * std::max(1.0, a)) << epoch;
    }
}

TEST(GcnModel, MicroBatchEquivalence)
{
    Env env;
    expectMicroEqualsFull<Gcn>(env);
}

TEST(GinModel, MicroBatchEquivalence)
{
    Env env;
    expectMicroEqualsFull<Gin>(env);
}

TEST(StackModels, SpecsIdentifyKind)
{
    Env env;
    EXPECT_EQ(Gcn(env.config).memorySpec().aggregator,
              AggregatorKind::Gcn);
    EXPECT_EQ(Gin(env.config).memorySpec().aggregator,
              AggregatorKind::Gin);
    EXPECT_EQ(aggregatorName(AggregatorKind::Gcn), "gcn");
    EXPECT_EQ(aggregatorName(AggregatorKind::Gin), "gin");
}

} // namespace
} // namespace betty
