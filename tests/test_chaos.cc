/**
 * @file
 * The chaos tier (robustness/chaos.h, docs/ROBUSTNESS.md "Chaos
 * testing"): randomized seeded fault schedules through the full
 * stack, with the generator's own contracts checked first.
 *
 * Scales by environment so one binary serves both tiers:
 *   BETTY_CHAOS_SCHEDULES  schedules to run (default 20 — the smoke
 *                          subset; the CI chaos job sets 200)
 *   BETTY_CHAOS_SEED       base seed (default 1); schedule i runs
 *                          seed base+i, and every failure message
 *                          carries the seed and a --faults spec that
 *                          replays it verbatim.
 */
#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "robustness/chaos.h"
#include "util/fault.h"

namespace betty::robustness {
namespace {

int64_t
envInt(const char* name, int64_t fallback)
{
    const char* text = std::getenv(name);
    if (!text || !*text)
        return fallback;
    char* end = nullptr;
    const long long value = std::strtoll(text, &end, 10);
    return (end && *end == '\0') ? int64_t(value) : fallback;
}

TEST(ChaosGenerator, ScheduleIsAPureFunctionOfTheSeed)
{
    const ChaosSchedule a = generateSchedule(42);
    const ChaosSchedule b = generateSchedule(42);
    EXPECT_EQ(a.spec, b.spec);
    EXPECT_EQ(a.target, b.target);
    EXPECT_EQ(a.plan.seed, 42u);
    ASSERT_FALSE(a.plan.events.empty());
    ASSERT_EQ(a.plan.events.size(), b.plan.events.size());
}

TEST(ChaosGenerator, SpecsRoundTripThroughTheGrammar)
{
    // The printed spec IS the replay artifact: parsing it back must
    // reproduce the plan (format() is tested to be injective enough
    // in test_fault.cc; here we close the loop on generated output).
    for (uint64_t seed = 1; seed <= 64; ++seed) {
        const ChaosSchedule schedule = generateSchedule(seed);
        fault::FaultPlan plan;
        std::string error;
        ASSERT_TRUE(fault::FaultPlan::parse(schedule.spec, plan,
                                            &error))
            << "seed " << seed << ": '" << schedule.spec << "': "
            << error;
        EXPECT_EQ(plan.format(), schedule.spec) << "seed " << seed;
        EXPECT_EQ(plan.events.size(), schedule.plan.events.size());
    }
}

TEST(ChaosGenerator, CoversBothTargetsAndMostKinds)
{
    int single = 0;
    int multi = 0;
    std::set<fault::FaultKind> kinds;
    for (uint64_t seed = 1; seed <= 128; ++seed) {
        const ChaosSchedule schedule = generateSchedule(seed);
        (schedule.target == ChaosTarget::SingleDevice ? single
                                                      : multi)++;
        for (const fault::FaultEvent& event : schedule.plan.events)
            kinds.insert(event.kind);
    }
    EXPECT_GT(single, 16);
    EXPECT_GT(multi, 16);
    // All eight grammar kinds should appear across 128 schedules.
    EXPECT_EQ(kinds.size(), 8u);
}

TEST(ChaosGenerator, AttributionOnlyClassification)
{
    fault::FaultPlan plan;
    ASSERT_TRUE(fault::FaultPlan::parse(
        "transfer-fail@epoch1;transfer-flaky=0.2@epoch1;"
        "device-slow=2@epoch1",
        plan, nullptr));
    EXPECT_TRUE(attributionOnly(plan, ChaosTarget::SingleDevice));
    EXPECT_TRUE(attributionOnly(plan, ChaosTarget::MultiDevice));

    ASSERT_TRUE(fault::FaultPlan::parse("device-drop@epoch1", plan,
                                        nullptr));
    EXPECT_FALSE(attributionOnly(plan, ChaosTarget::SingleDevice));
    EXPECT_TRUE(attributionOnly(plan, ChaosTarget::MultiDevice));

    ASSERT_TRUE(fault::FaultPlan::parse(
        "transfer-fail@epoch1;capacity-drop=0.5@epoch1", plan,
        nullptr));
    EXPECT_FALSE(attributionOnly(plan, ChaosTarget::SingleDevice));
}

TEST(ChaosHarness, RandomSchedulesHoldTheInvariants)
{
    const int64_t schedules =
        std::max<int64_t>(1, envInt("BETTY_CHAOS_SCHEDULES", 20));
    const uint64_t base = uint64_t(envInt("BETTY_CHAOS_SEED", 1));

    ChaosHarness harness;
    for (int64_t i = 0; i < schedules; ++i) {
        const uint64_t seed = base + uint64_t(i);
        const ChaosResult result = harness.run(seed);
        // The seed is echoed on success too, so a CI log alone is
        // enough to rerun any schedule of the batch.
        SCOPED_TRACE("chaos seed " + std::to_string(seed) + " (" +
                     chaosTargetName(result.target) + "): " +
                     result.spec);
        ASSERT_TRUE(result.ok) << result.failure;
    }
}

TEST(ChaosHarness, ResultEchoesTheReplayHandle)
{
    ChaosHarness harness;
    const ChaosSchedule schedule = generateSchedule(7);
    const ChaosResult result = harness.run(schedule);
    EXPECT_EQ(result.seed, 7u);
    EXPECT_EQ(result.target, schedule.target);
    EXPECT_EQ(result.spec, schedule.spec);
    EXPECT_TRUE(result.ok) << result.failure;
}

} // namespace
} // namespace betty::robustness
