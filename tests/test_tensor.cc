/**
 * @file
 * Tests for the dense tensor, its kernels, and allocation observation.
 */
#include <vector>

#include <gtest/gtest.h>

#include "memory/device_memory.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace betty {
namespace {

TEST(Tensor, DefaultIsEmpty)
{
    Tensor t;
    EXPECT_EQ(t.rows(), 0);
    EXPECT_EQ(t.cols(), 0);
    EXPECT_TRUE(t.empty());
}

TEST(Tensor, ZerosAndFull)
{
    auto z = Tensor::zeros(2, 3);
    EXPECT_EQ(z.numel(), 6);
    EXPECT_FLOAT_EQ(z.sum(), 0.0f);
    auto f = Tensor::full(2, 3, 1.5f);
    EXPECT_FLOAT_EQ(f.sum(), 9.0f);
}

TEST(Tensor, FromValuesAndAt)
{
    auto t = Tensor::fromValues(2, 2, {1, 2, 3, 4});
    EXPECT_FLOAT_EQ(t.at(0, 0), 1);
    EXPECT_FLOAT_EQ(t.at(0, 1), 2);
    EXPECT_FLOAT_EQ(t.at(1, 0), 3);
    EXPECT_FLOAT_EQ(t.at(1, 1), 4);
}

TEST(Tensor, CopyIsShallowCloneIsDeep)
{
    auto a = Tensor::zeros(2, 2);
    Tensor shallow = a;
    Tensor deep = a.clone();
    a.at(0, 0) = 7.0f;
    EXPECT_FLOAT_EQ(shallow.at(0, 0), 7.0f);
    EXPECT_FLOAT_EQ(deep.at(0, 0), 0.0f);
}

TEST(Tensor, AddScaleInPlace)
{
    auto a = Tensor::full(2, 2, 1.0f);
    auto b = Tensor::full(2, 2, 2.0f);
    a.addInPlace(b);
    EXPECT_FLOAT_EQ(a.at(1, 1), 3.0f);
    a.addScaledInPlace(b, -0.5f);
    EXPECT_FLOAT_EQ(a.at(0, 0), 2.0f);
    a.scaleInPlace(2.0f);
    EXPECT_FLOAT_EQ(a.at(0, 1), 4.0f);
}

TEST(Tensor, MaxAbs)
{
    auto t = Tensor::fromValues(1, 3, {-5, 2, 4});
    EXPECT_FLOAT_EQ(t.maxAbs(), 5.0f);
}

TEST(Tensor, UniformWithinBounds)
{
    Rng rng(5);
    auto t = Tensor::uniform(10, 10, rng, -2.0f, 3.0f);
    for (int64_t i = 0; i < t.numel(); ++i) {
        EXPECT_GE(t.data()[i], -2.0f);
        EXPECT_LT(t.data()[i], 3.0f);
    }
}

TEST(Tensor, XavierScale)
{
    Rng rng(6);
    auto t = Tensor::xavier(100, 100, rng);
    // Bound is sqrt(6/200) ~ 0.173.
    EXPECT_LE(t.maxAbs(), 0.1733f);
    EXPECT_GT(t.maxAbs(), 0.1f);
}

TEST(Matmul, MatchesHandComputed)
{
    auto a = Tensor::fromValues(2, 3, {1, 2, 3, 4, 5, 6});
    auto b = Tensor::fromValues(3, 2, {7, 8, 9, 10, 11, 12});
    Tensor c(2, 2);
    matmul(a, b, c);
    EXPECT_FLOAT_EQ(c.at(0, 0), 58);
    EXPECT_FLOAT_EQ(c.at(0, 1), 64);
    EXPECT_FLOAT_EQ(c.at(1, 0), 139);
    EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(Matmul, AccumulateAddsIntoOutput)
{
    auto a = Tensor::fromValues(1, 1, {2});
    auto b = Tensor::fromValues(1, 1, {3});
    auto c = Tensor::full(1, 1, 10.0f);
    matmul(a, b, c, /*accumulate=*/true);
    EXPECT_FLOAT_EQ(c.at(0, 0), 16.0f);
}

TEST(Matmul, TransAMatchesExplicitTranspose)
{
    Rng rng(7);
    auto a = Tensor::uniform(4, 3, rng);
    auto b = Tensor::uniform(4, 5, rng);
    Tensor out(3, 5);
    matmulTransA(a, b, out);
    // Reference: build aT explicitly.
    Tensor at(3, 4);
    for (int64_t i = 0; i < 4; ++i)
        for (int64_t j = 0; j < 3; ++j)
            at.at(j, i) = a.at(i, j);
    Tensor ref(3, 5);
    matmul(at, b, ref);
    for (int64_t i = 0; i < ref.numel(); ++i)
        EXPECT_NEAR(out.data()[i], ref.data()[i], 1e-5);
}

TEST(Matmul, TransBMatchesExplicitTranspose)
{
    Rng rng(8);
    auto a = Tensor::uniform(4, 3, rng);
    auto b = Tensor::uniform(5, 3, rng);
    Tensor out(4, 5);
    matmulTransB(a, b, out);
    Tensor bt(3, 5);
    for (int64_t i = 0; i < 5; ++i)
        for (int64_t j = 0; j < 3; ++j)
            bt.at(j, i) = b.at(i, j);
    Tensor ref(4, 5);
    matmul(a, bt, ref);
    for (int64_t i = 0; i < ref.numel(); ++i)
        EXPECT_NEAR(out.data()[i], ref.data()[i], 1e-5);
}

TEST(AllocationObserver, TracksAllocAndFree)
{
    DeviceMemoryModel device;
    {
        DeviceMemoryModel::Scope scope(device);
        Tensor t(10, 10); // 400 bytes
        EXPECT_EQ(device.liveBytes(), 400);
        EXPECT_EQ(device.peakBytes(), 400);
    }
    EXPECT_EQ(device.liveBytes(), 0);
    EXPECT_EQ(device.peakBytes(), 400);
}

TEST(AllocationObserver, SharedStorageFreedOnce)
{
    DeviceMemoryModel device;
    {
        DeviceMemoryModel::Scope scope(device);
        Tensor a(4, 4);
        Tensor b = a; // shallow copy shares storage
        EXPECT_EQ(device.liveBytes(), 64);
    }
    EXPECT_EQ(device.liveBytes(), 0);
}

TEST(AllocationObserver, FreeRoutedToAllocatingObserver)
{
    // A tensor allocated inside a scope but destroyed after the scope
    // ends must still decrement the model it was charged to.
    DeviceMemoryModel device;
    Tensor escaped;
    {
        DeviceMemoryModel::Scope scope(device);
        escaped = Tensor(8, 8);
    }
    EXPECT_EQ(device.liveBytes(), 256);
    escaped = Tensor();
    EXPECT_EQ(device.liveBytes(), 0);
}

TEST(AllocationObserver, ScopeRestoresPrevious)
{
    DeviceMemoryModel outer, inner;
    DeviceMemoryModel::Scope outer_scope(outer);
    {
        DeviceMemoryModel::Scope inner_scope(inner);
        Tensor t(2, 2);
        EXPECT_EQ(inner.liveBytes(), 16);
        EXPECT_EQ(outer.liveBytes(), 0);
    }
    Tensor t(2, 2);
    EXPECT_EQ(outer.liveBytes(), 16);
}

} // namespace
} // namespace betty
