/**
 * @file
 * Tests for the bench table/CSV writer.
 */
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/table.h"

namespace betty {
namespace {

TEST(TablePrinter, NumFormatsPrecision)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
    EXPECT_EQ(TablePrinter::num(-1.5, 1), "-1.5");
}

TEST(TablePrinter, CountGroupsThousands)
{
    EXPECT_EQ(TablePrinter::count(0), "0");
    EXPECT_EQ(TablePrinter::count(999), "999");
    EXPECT_EQ(TablePrinter::count(1000), "1,000");
    EXPECT_EQ(TablePrinter::count(1829066), "1,829,066");
    EXPECT_EQ(TablePrinter::count(-12345), "-12,345");
}

TEST(TablePrinter, CsvRoundTrip)
{
    TablePrinter table("t");
    table.setHeader({"a", "b"});
    table.addRow({"1", "2"});
    table.addRow({"x", "y"});
    const std::string path = ::testing::TempDir() + "/betty_table.csv";
    ASSERT_TRUE(table.writeCsv(path));
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    std::remove(path.c_str());
}

TEST(TablePrinter, PrintDoesNotCrashOnEmpty)
{
    TablePrinter table("empty");
    table.setHeader({"only"});
    table.print();
}

TEST(TablePrinterDeathTest, RowWidthMismatchPanics)
{
    TablePrinter table("t");
    table.setHeader({"a", "b"});
    EXPECT_DEATH(table.addRow({"just-one"}), "row width");
}

} // namespace
} // namespace betty
