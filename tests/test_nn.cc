/**
 * @file
 * Tests for the neural layers: Linear, LSTM cell, SAGE conv (all four
 * aggregators), GAT conv, optimizers and parameter accounting.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "memory/device_memory.h"
#include "nn/gat_conv.h"
#include "nn/linear.h"
#include "nn/lstm_cell.h"
#include "nn/models.h"
#include "nn/optim.h"
#include "nn/sage_conv.h"
#include "test_helpers.h"

namespace betty {
namespace {

TEST(LinearLayer, ForwardMatchesManual)
{
    Rng rng(1);
    Linear layer(2, 2, rng);
    // Overwrite params with known values via grad-free poke.
    auto params = layer.parameters();
    params[0]->value = Tensor::fromValues(2, 2, {1, 2, 3, 4}); // W
    params[1]->value = Tensor::fromValues(1, 2, {10, 20});     // b
    const auto x = ag::constant(Tensor::fromValues(1, 2, {1, 1}));
    const auto y = layer.forward(x);
    EXPECT_FLOAT_EQ(y->value.at(0, 0), 1 + 3 + 10);
    EXPECT_FLOAT_EQ(y->value.at(0, 1), 2 + 4 + 20);
}

TEST(LinearLayer, ParameterCount)
{
    Rng rng(2);
    Linear layer(8, 4, rng);
    EXPECT_EQ(layer.parameterCount(), 8 * 4 + 4);
}

TEST(LinearLayer, GradientCheck)
{
    Rng rng(3);
    Linear layer(3, 2, rng);
    const Tensor x_val = Tensor::uniform(4, 3, rng);
    testutil::checkGradients(
        [&] {
            const auto y = layer.forward(ag::constant(x_val.clone()));
            return ag::softmaxCrossEntropy(y, {0, 1, 0, 1});
        },
        layer.parameters(), 1e-2f, 3e-2f);
}

TEST(LstmCellTest, StateShapes)
{
    Rng rng(4);
    LstmCell cell(3, 5, rng);
    auto state = cell.initialState(7);
    EXPECT_EQ(state.h->value.rows(), 7);
    EXPECT_EQ(state.h->value.cols(), 5);
    const auto x = ag::constant(Tensor::zeros(7, 3));
    state = cell.forward(x, state);
    EXPECT_EQ(state.h->value.rows(), 7);
    EXPECT_EQ(state.c->value.cols(), 5);
}

TEST(LstmCellTest, ZeroInputZeroStateGivesBoundedOutput)
{
    Rng rng(5);
    LstmCell cell(2, 2, rng);
    auto state = cell.initialState(1);
    state = cell.forward(ag::constant(Tensor::zeros(1, 2)), state);
    // tanh/sigmoid outputs: |h| < 1 always.
    EXPECT_LT(state.h->value.maxAbs(), 1.0f);
}

TEST(LstmCellTest, GradientCheckThroughTwoSteps)
{
    Rng rng(6);
    LstmCell cell(2, 2, rng);
    const Tensor x1 = Tensor::uniform(3, 2, rng);
    const Tensor x2 = Tensor::uniform(3, 2, rng);
    testutil::checkGradients(
        [&] {
            auto state = cell.initialState(3);
            state = cell.forward(ag::constant(x1.clone()), state);
            state = cell.forward(ag::constant(x2.clone()), state);
            return ag::softmaxCrossEntropy(state.h, {0, 1, 0});
        },
        cell.parameters(), 1e-2f, 5e-2f);
}

TEST(SageConvTest, MeanForwardMatchesManual)
{
    Rng rng(7);
    SageConv conv(1, 1, AggregatorKind::Mean, rng);
    auto params = conv.parameters();
    // out linear: W [2,1] = [1, 1]^T, b = 0 -> y = self + mean(neigh).
    params[0]->value = Tensor::fromValues(2, 1, {1, 1});
    params[1]->value = Tensor::zeros(1, 1);

    // One dst (node 0) with neighbors {1, 2}; features 10, 20, 30.
    const Block block({0}, {{1, 2}});
    const auto h =
        ag::constant(Tensor::fromValues(3, 1, {10, 20, 30}));
    const auto y = conv.forward(block, h);
    EXPECT_FLOAT_EQ(y->value.at(0, 0), 10 + 25);
}

TEST(SageConvTest, SumAggregator)
{
    Rng rng(8);
    SageConv conv(1, 1, AggregatorKind::Sum, rng);
    auto params = conv.parameters();
    params[0]->value = Tensor::fromValues(2, 1, {0, 1}); // only agg
    params[1]->value = Tensor::zeros(1, 1);
    const Block block({0}, {{1, 2}});
    const auto h =
        ag::constant(Tensor::fromValues(3, 1, {10, 20, 30}));
    const auto y = conv.forward(block, h);
    EXPECT_FLOAT_EQ(y->value.at(0, 0), 50);
}

TEST(SageConvTest, ZeroDegreeDestinationGetsSelfOnly)
{
    Rng rng(9);
    SageConv conv(1, 1, AggregatorKind::Mean, rng);
    auto params = conv.parameters();
    params[0]->value = Tensor::fromValues(2, 1, {1, 1});
    params[1]->value = Tensor::zeros(1, 1);
    const Block block({0}, {{}});
    const auto h = ag::constant(Tensor::fromValues(1, 1, {7}));
    const auto y = conv.forward(block, h);
    EXPECT_FLOAT_EQ(y->value.at(0, 0), 7);
}

TEST(SageConvTest, OutputShapes)
{
    Rng rng(10);
    for (auto agg : {AggregatorKind::Mean, AggregatorKind::Sum,
                     AggregatorKind::Pool, AggregatorKind::Lstm}) {
        SageConv conv(4, 6, agg, rng);
        const Block block({0, 1}, {{2, 3}, {3}});
        const auto h = ag::constant(Tensor::uniform(4, 4, rng));
        const auto y = conv.forward(block, h);
        EXPECT_EQ(y->value.rows(), 2) << aggregatorName(agg);
        EXPECT_EQ(y->value.cols(), 6) << aggregatorName(agg);
    }
}

TEST(SageConvTest, LstmBucketingMixedDegrees)
{
    Rng rng(11);
    SageConv conv(3, 2, AggregatorKind::Lstm, rng);
    // Degrees 0, 1, 3, 3: exercises empty, singleton and tail groups.
    const Block block({0, 1, 2, 3},
                      {{}, {4}, {4, 5, 6}, {5, 6, 4}});
    const auto h = ag::constant(Tensor::uniform(7, 3, rng));
    const auto y = conv.forward(block, h);
    EXPECT_EQ(y->value.rows(), 4);
    EXPECT_EQ(y->value.cols(), 2);
}

TEST(SageConvTest, GradientCheckMean)
{
    Rng rng(12);
    SageConv conv(2, 2, AggregatorKind::Mean, rng);
    const Block block({0, 1}, {{2, 3}, {3}});
    const Tensor h = Tensor::uniform(4, 2, rng);
    testutil::checkGradients(
        [&] {
            const auto y =
                conv.forward(block, ag::constant(h.clone()));
            return ag::softmaxCrossEntropy(y, {0, 1});
        },
        conv.parameters(), 1e-2f, 5e-2f);
}

TEST(SageConvTest, GradientCheckPool)
{
    Rng rng(13);
    SageConv conv(2, 2, AggregatorKind::Pool, rng);
    const Block block({0, 1}, {{2, 3}, {3}});
    const Tensor h = Tensor::uniform(4, 2, rng);
    testutil::checkGradients(
        [&] {
            const auto y =
                conv.forward(block, ag::constant(h.clone()));
            return ag::softmaxCrossEntropy(y, {0, 1});
        },
        conv.parameters(), 1e-2f, 8e-2f);
}

TEST(SageConvTest, GradientCheckLstm)
{
    Rng rng(14);
    SageConv conv(2, 2, AggregatorKind::Lstm, rng);
    const Block block({0, 1}, {{2, 3}, {3}});
    const Tensor h = Tensor::uniform(4, 2, rng);
    testutil::checkGradients(
        [&] {
            const auto y =
                conv.forward(block, ag::constant(h.clone()));
            return ag::softmaxCrossEntropy(y, {0, 1});
        },
        conv.parameters(), 1e-2f, 8e-2f);
}

TEST(SageConvTest, AggregatorParameterCounts)
{
    Rng rng(15);
    SageConv mean(4, 4, AggregatorKind::Mean, rng);
    EXPECT_EQ(mean.aggregatorParameterCount(), 0);
    SageConv pool(4, 4, AggregatorKind::Pool, rng);
    EXPECT_EQ(pool.aggregatorParameterCount(), 4 * 4 + 4);
    SageConv lstm(4, 4, AggregatorKind::Lstm, rng);
    EXPECT_EQ(lstm.aggregatorParameterCount(),
              4 * 16 + 4 * 16 + 16);
}

TEST(GatConvTest, OutputShapesConcatAndAverage)
{
    Rng rng(16);
    GatConv conv(4, 3, 2, rng);
    const Block block({0, 1}, {{2}, {2, 3}});
    const auto h = ag::constant(Tensor::uniform(4, 4, rng));
    EXPECT_EQ(conv.forward(block, h, false)->value.cols(), 6);
    EXPECT_EQ(conv.forward(block, h, true)->value.cols(), 3);
}

TEST(GatConvTest, ZeroDegreeAttendsToSelf)
{
    Rng rng(17);
    GatConv conv(2, 2, 1, rng);
    const Block block({0}, {{}});
    const auto h = ag::constant(Tensor::uniform(1, 2, rng));
    const auto y = conv.forward(block, h);
    // Self-attention weight is 1 for a lone self edge: y = z.
    EXPECT_EQ(y->value.rows(), 1);
    EXPECT_TRUE(std::isfinite(y->value.at(0, 0)));
}

TEST(GatConvTest, GradientCheck)
{
    Rng rng(18);
    GatConv conv(2, 2, 1, rng);
    const Block block({0, 1}, {{2, 3}, {3}});
    const Tensor h = Tensor::uniform(4, 2, rng);
    testutil::checkGradients(
        [&] {
            const auto y =
                conv.forward(block, ag::constant(h.clone()));
            return ag::softmaxCrossEntropy(y, {0, 1});
        },
        conv.parameters(), 1e-2f, 8e-2f);
}

TEST(Optim, SgdStepsDownhill)
{
    auto p = ag::parameter(Tensor::full(1, 1, 4.0f));
    Sgd sgd({p}, 0.1f);
    // d/dp (p^2) = 2p = 8.
    ag::backward(ag::mulElem(p, p));
    sgd.step();
    EXPECT_NEAR(p->value.at(0, 0), 4.0f - 0.1f * 8.0f, 1e-5);
}

TEST(Optim, ZeroGradClears)
{
    auto p = ag::parameter(Tensor::full(1, 1, 1.0f));
    Sgd sgd({p}, 0.1f);
    ag::backward(ag::mulElem(p, p));
    EXPECT_NE(p->grad.at(0, 0), 0.0f);
    sgd.zeroGrad();
    EXPECT_FLOAT_EQ(p->grad.at(0, 0), 0.0f);
}

TEST(Optim, AdamConvergesOnQuadratic)
{
    auto p = ag::parameter(Tensor::full(1, 1, 5.0f));
    Adam adam({p}, 0.3f);
    for (int step = 0; step < 200; ++step) {
        adam.zeroGrad();
        ag::backward(ag::mulElem(p, p));
        adam.step();
    }
    EXPECT_NEAR(p->value.at(0, 0), 0.0f, 0.05f);
}

TEST(Optim, AdamStatesChargedToDevice)
{
    DeviceMemoryModel device;
    auto p = ag::parameter(Tensor::zeros(10, 10));
    {
        DeviceMemoryModel::Scope scope(device);
        Adam adam({p});
        EXPECT_EQ(device.liveBytes(), 2 * 400) << "m and v eagerly";
    }
}

TEST(Models, GraphSageParameterSplit)
{
    SageConfig cfg;
    cfg.inputDim = 8;
    cfg.hiddenDim = 16;
    cfg.numClasses = 4;
    cfg.numLayers = 2;
    cfg.aggregator = AggregatorKind::Lstm;
    GraphSage model(cfg);
    const auto spec = model.memorySpec();
    EXPECT_GT(spec.paramCountAgg, 0);
    EXPECT_EQ(spec.paramCountGnn + spec.paramCountAgg,
              model.parameterCount());
    EXPECT_EQ(spec.aggregator, AggregatorKind::Lstm);
    EXPECT_EQ(spec.numLayers, 2);
}

TEST(Models, ForwardShapes)
{
    const auto batch = testutil::tinyBatch();
    SageConfig cfg;
    cfg.inputDim = 6;
    cfg.hiddenDim = 8;
    cfg.numClasses = 3;
    cfg.numLayers = 2;
    GraphSage model(cfg);
    Rng rng(19);
    const auto feats = ag::constant(Tensor::uniform(
        int64_t(batch.inputNodes().size()), 6, rng));
    const auto logits = model.forward(batch, feats);
    EXPECT_EQ(logits->value.rows(),
              int64_t(batch.outputNodes().size()));
    EXPECT_EQ(logits->value.cols(), 3);
}

TEST(Models, GatForwardShapes)
{
    const auto batch = testutil::tinyBatch();
    GatConfig cfg;
    cfg.inputDim = 6;
    cfg.hiddenDim = 4;
    cfg.numClasses = 3;
    cfg.numLayers = 2;
    cfg.numHeads = 2;
    Gat model(cfg);
    Rng rng(20);
    const auto feats = ag::constant(Tensor::uniform(
        int64_t(batch.inputNodes().size()), 6, rng));
    const auto logits = model.forward(batch, feats);
    EXPECT_EQ(logits->value.rows(),
              int64_t(batch.outputNodes().size()));
    EXPECT_EQ(logits->value.cols(), 3);
}

} // namespace
} // namespace betty
