/**
 * @file
 * CTest helper validating train_cli's observability exports.
 *
 * Usage: check_obs_output <trace.json> <metrics.json>
 *
 * Parses both files with obs/json.h and checks the acceptance
 * contract: the Chrome trace contains the pipeline phase spans
 * (sampling, REG build, partitioning, transfer, forward, backward,
 * optimizer step) and the metrics snapshot contains the
 * device.peak_bytes and partition.edge_cut gauges plus per-micro-batch
 * estimator-residual entries. Exits 0 on success; prints every
 * violation and exits 1 otherwise.
 */
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/memprof.h"
#include "obs/run_meta.h"

namespace {

using betty::obs::JsonValue;
using betty::obs::parseJson;

int failures = 0;

void
fail(const std::string& message)
{
    std::fprintf(stderr, "check_obs_output: FAIL: %s\n",
                 message.c_str());
    ++failures;
}

bool
readFile(const std::string& path, std::string& out)
{
    std::ifstream file(path);
    if (!file)
        return false;
    std::ostringstream buffer;
    buffer << file.rdbuf();
    out = buffer.str();
    return true;
}

bool
loadJson(const std::string& path, JsonValue& doc)
{
    std::string text;
    if (!readFile(path, text)) {
        fail("cannot read '" + path + "'");
        return false;
    }
    std::string error;
    if (!parseJson(text, doc, &error)) {
        fail("'" + path + "' is not valid JSON: " + error);
        return false;
    }
    return true;
}

void
checkTrace(const JsonValue& doc)
{
    const JsonValue* events = doc.find("traceEvents");
    if (!events || !events->isArray()) {
        fail("trace has no traceEvents array");
        return;
    }

    const JsonValue* schema = doc.find("schema_version");
    if (!schema || schema->asInt() != betty::obs::kObsSchemaVersion)
        fail("trace schema_version missing or stale");

    std::set<std::string> span_names;
    size_t complete_events = 0;
    size_t memory_counters = 0;
    for (const auto& event : events->array) {
        const JsonValue* phase = event.find("ph");
        const JsonValue* name = event.find("name");
        if (!phase || !name) {
            fail("trace event missing ph/name");
            continue;
        }
        if (phase->string == "C" &&
            name->string == "device/memory") {
            // One stacked-counter sample: all Table 3 categories must
            // be present so Perfetto renders the full breakdown.
            const JsonValue* args = event.find("args");
            bool complete = args && args->isObject();
            for (size_t c = 0;
                 complete && c < betty::obs::kMemCategoryCount; ++c)
                complete = args->find(betty::obs::memCategoryName(
                               betty::obs::MemCategory(c))) != nullptr;
            if (!complete)
                fail("device/memory counter event lacks a category");
            else
                ++memory_counters;
            continue;
        }
        if (phase->string != "X")
            continue;
        ++complete_events;
        span_names.insert(name->string);
        const JsonValue* ts = event.find("ts");
        const JsonValue* dur = event.find("dur");
        if (!ts || !ts->isNumber() || !dur || !dur->isNumber() ||
            dur->number < 0)
            fail("span '" + name->string + "' has bad ts/dur");
    }
    if (complete_events == 0)
        fail("trace contains no complete (ph=X) spans");

    const std::vector<std::string> required = {
        "sample/neighbor",    // sampling
        "partition/reg_build", // REG construction
        "partition/kway",     // K-way partitioning
        "train/micro_batch",  // per-micro-batch umbrella
        "train/transfer",     // host->device movement
        "train/forward",      // forward pass
        "train/backward",     // backward pass
        "train/step",         // optimizer step
    };
    for (const auto& name : required)
        if (!span_names.count(name))
            fail("trace is missing required span '" + name + "'");
    if (memory_counters == 0)
        fail("trace has no device/memory counter (ph=C) events");
}

void
checkMetrics(const JsonValue& doc)
{
    const JsonValue* schema = doc.find("schema_version");
    if (!schema || schema->asInt() != betty::obs::kObsSchemaVersion)
        fail("metrics schema_version missing or stale");
    const JsonValue* meta = doc.find("meta");
    if (!meta || !meta->find("binary"))
        fail("metrics meta.binary is missing");

    const JsonValue* profile = doc.find("memory_profile");
    const JsonValue* micro_batches =
        profile ? profile->find("micro_batches") : nullptr;
    if (!micro_batches || !micro_batches->isArray() ||
        micro_batches->array.empty())
        fail("memory_profile.micro_batches is missing or empty");

    const JsonValue* gauges = doc.find("gauges");
    if (!gauges || !gauges->isObject()) {
        fail("metrics has no gauges object");
    } else {
        const JsonValue* peak = gauges->find("device.peak_bytes");
        if (!peak)
            fail("metrics is missing gauge device.peak_bytes");
        else if (peak->asInt() <= 0)
            fail("device.peak_bytes is not positive");
        if (!gauges->find("partition.edge_cut"))
            fail("metrics is missing gauge partition.edge_cut");
    }

    if (!doc.find("counters"))
        fail("metrics has no counters object");

    const JsonValue* residuals = doc.find("estimator_residuals");
    if (!residuals || !residuals->isObject()) {
        fail("metrics has no estimator_residuals object");
        return;
    }
    const JsonValue* entries = residuals->find("entries");
    if (!entries || !entries->isArray() || entries->array.empty()) {
        fail("estimator_residuals.entries is missing or empty");
        return;
    }
    for (const auto& entry : entries->array) {
        if (!entry.find("predicted_bytes") ||
            !entry.find("actual_bytes") ||
            !entry.find("residual_bytes")) {
            fail("residual entry missing predicted/actual/residual");
            break;
        }
    }
    const JsonValue* summary = residuals->find("summary");
    if (!summary || !summary->find("count") ||
        summary->find("count")->asInt() !=
            int64_t(entries->array.size()))
        fail("residual summary count disagrees with entries");
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc != 3) {
        std::fprintf(stderr,
                     "usage: check_obs_output <trace.json> "
                     "<metrics.json>\n");
        return 2;
    }

    JsonValue trace;
    if (loadJson(argv[1], trace))
        checkTrace(trace);

    JsonValue metrics;
    if (loadJson(argv[2], metrics))
        checkMetrics(metrics);

    if (failures) {
        std::fprintf(stderr, "check_obs_output: %d failure(s)\n",
                     failures);
        return 1;
    }
    std::printf("check_obs_output: OK (%s, %s)\n", argv[1], argv[2]);
    return 0;
}
