/**
 * @file
 * The shared configuration-knob parser (util/env_config.h).
 *
 * The contract under test: flag > environment > built-in default
 * precedence, whole-string parsing (no partial parses, no silent
 * zero), and loud rejection of malformed values — a misspelled
 * BETTY_THREADS must be a startup error naming the variable, never a
 * silent fallback to 1 thread.
 */
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "util/env_config.h"

namespace betty::envcfg {
namespace {

/** RAII setenv/unsetenv so tests cannot leak into each other. */
class ScopedEnv
{
  public:
    ScopedEnv(const char* name, const char* value) : name_(name)
    {
        if (const char* old = std::getenv(name)) {
            had_old_ = true;
            old_ = old;
        }
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (had_old_)
            setenv(name_.c_str(), old_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string old_;
    bool had_old_ = false;
};

TEST(ParseInt, AcceptsWholeStringIntegers)
{
    int64_t out = 0;
    EXPECT_TRUE(parseInt("42", &out));
    EXPECT_EQ(out, 42);
    EXPECT_TRUE(parseInt("-7", &out));
    EXPECT_EQ(out, -7);
    EXPECT_TRUE(parseInt("0", &out));
    EXPECT_EQ(out, 0);
}

TEST(ParseInt, RejectsEmptyPartialAndOverflow)
{
    int64_t out = 0;
    EXPECT_FALSE(parseInt("", &out));
    EXPECT_FALSE(parseInt("4x", &out));
    EXPECT_FALSE(parseInt("x4", &out));
    EXPECT_FALSE(parseInt("4.5", &out));
    EXPECT_FALSE(parseInt(" 4", &out)); // no silent whitespace skip
    EXPECT_FALSE(parseInt("99999999999999999999999", &out));
}

TEST(ParseDouble, AcceptsWholeStringFiniteDoubles)
{
    double out = 0.0;
    EXPECT_TRUE(parseDouble("0.5", &out));
    EXPECT_DOUBLE_EQ(out, 0.5);
    EXPECT_TRUE(parseDouble("-2", &out));
    EXPECT_DOUBLE_EQ(out, -2.0);
    EXPECT_TRUE(parseDouble("1e-3", &out));
    EXPECT_DOUBLE_EQ(out, 1e-3);
}

TEST(ParseDouble, RejectsEmptyPartialAndNonFinite)
{
    double out = 0.0;
    EXPECT_FALSE(parseDouble("", &out));
    EXPECT_FALSE(parseDouble("0.5gb", &out));
    EXPECT_FALSE(parseDouble("nan", &out));
    EXPECT_FALSE(parseDouble("inf", &out));
    EXPECT_FALSE(parseDouble("-inf", &out));
    EXPECT_FALSE(parseDouble("1e999", &out)); // overflows to inf
}

TEST(EnvInt, FallsBackWhenUnsetAndReadsWhenSet)
{
    ScopedEnv unset("BETTY_TEST_KNOB", nullptr);
    EXPECT_EQ(envInt("BETTY_TEST_KNOB", 17), 17);
    ScopedEnv set("BETTY_TEST_KNOB", "23");
    EXPECT_EQ(envInt("BETTY_TEST_KNOB", 17), 23);
}

TEST(EnvInt, MalformedValueIsFatalNamingTheVariable)
{
    ScopedEnv set("BETTY_TEST_KNOB", "abc");
    EXPECT_DEATH(envInt("BETTY_TEST_KNOB", 1), "BETTY_TEST_KNOB");
}

TEST(EnvDouble, MalformedValueIsFatalNamingTheVariable)
{
    ScopedEnv set("BETTY_TEST_KNOB", "0.5gb");
    EXPECT_DEATH(envDouble("BETTY_TEST_KNOB", 1.0),
                 "BETTY_TEST_KNOB");
}

TEST(Resolve, FlagBeatsEnvBeatsDefault)
{
    ScopedEnv set("BETTY_TEST_KNOB", "5");
    EXPECT_EQ(resolveInt("9", "--knob", "BETTY_TEST_KNOB", 1), 9);
    EXPECT_EQ(resolveInt("", "--knob", "BETTY_TEST_KNOB", 1), 5);
    ScopedEnv unset("BETTY_TEST_KNOB", nullptr);
    EXPECT_EQ(resolveInt("", "--knob", "BETTY_TEST_KNOB", 1), 1);

    ScopedEnv setd("BETTY_TEST_KNOB", "0.25");
    EXPECT_DOUBLE_EQ(
        resolveDouble("0.75", "--knob", "BETTY_TEST_KNOB", 1.0),
        0.75);
    EXPECT_DOUBLE_EQ(
        resolveDouble("", "--knob", "BETTY_TEST_KNOB", 1.0), 0.25);
}

TEST(Resolve, MalformedFlagIsFatalNamingTheFlag)
{
    EXPECT_DEATH(resolveInt("4x", "--knob", "BETTY_TEST_KNOB", 1),
                 "--knob");
    EXPECT_DEATH(
        resolveDouble("nan", "--knob", "BETTY_TEST_KNOB", 1.0),
        "--knob");
}

TEST(Resolve, StringPrecedence)
{
    ScopedEnv set("BETTY_TEST_KNOB", "from-env");
    EXPECT_EQ(resolveString("from-flag", "BETTY_TEST_KNOB", "dflt"),
              "from-flag");
    EXPECT_EQ(resolveString("", "BETTY_TEST_KNOB", "dflt"),
              "from-env");
    ScopedEnv unset("BETTY_TEST_KNOB", nullptr);
    EXPECT_EQ(resolveString("", "BETTY_TEST_KNOB", "dflt"), "dflt");
}

TEST(Knobs, DefaultsMatchTheDocumentedValues)
{
    ScopedEnv t("BETTY_THREADS", nullptr);
    ScopedEnv s("BETTY_BENCH_SCALE", nullptr);
    ScopedEnv d("BETTY_DEVICE_GIB", nullptr);
    ScopedEnv c("BETTY_CACHE_GIB", nullptr);
    ScopedEnv p("BETTY_CACHE_POLICY", nullptr);
    EXPECT_EQ(threads(), 1);
    EXPECT_DOUBLE_EQ(benchScale(), 1.0);
    EXPECT_EQ(deviceCapacityBytes(), gibToBytes(0.25));
    EXPECT_EQ(cacheCapacityBytes(), gibToBytes(0.05));
    EXPECT_EQ(cachePolicyName(), "lru");
    ScopedEnv r("BETTY_TRACE_RING", nullptr);
    EXPECT_EQ(traceRingCapacity(), 1 << 16);
}

TEST(Knobs, TraceRingReadsTheEnvironment)
{
    ScopedEnv r("BETTY_TRACE_RING", "1024");
    EXPECT_EQ(traceRingCapacity(), 1024);
}

TEST(Knobs, OutOfDomainValuesAreFatal)
{
    {
        ScopedEnv t("BETTY_THREADS", "0");
        EXPECT_DEATH(threads(), "BETTY_THREADS");
    }
    {
        ScopedEnv s("BETTY_BENCH_SCALE", "-1");
        EXPECT_DEATH(benchScale(), "BETTY_BENCH_SCALE");
    }
    {
        ScopedEnv r("BETTY_TRACE_RING", "0");
        EXPECT_DEATH(traceRingCapacity(), "BETTY_TRACE_RING");
    }
    {
        ScopedEnv r("BETTY_TRACE_RING", "64k");
        EXPECT_DEATH(traceRingCapacity(), "BETTY_TRACE_RING");
    }
}

} // namespace
} // namespace betty::envcfg
