/**
 * @file
 * Tests for the multilevel K-way min-cut partitioner (our METIS
 * equivalent) and its phases.
 */
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "graph/csr_graph.h"
#include "partition/coarsen.h"
#include "partition/initial.h"
#include "partition/kway_partitioner.h"
#include "partition/refine.h"
#include "util/rng.h"

namespace betty {
namespace {

/** Two dense 10-cliques joined by one weak edge. */
WeightedGraph
twoCliques()
{
    std::vector<WeightedEdge> edges;
    for (int64_t c = 0; c < 2; ++c)
        for (int64_t i = 0; i < 10; ++i)
            for (int64_t j = i + 1; j < 10; ++j)
                edges.push_back({c * 10 + i, c * 10 + j, 10});
    edges.push_back({0, 10, 1});
    return WeightedGraph(20, edges);
}

WeightedGraph
randomGraph(int64_t n, int64_t edges_per_node, uint64_t seed)
{
    Rng rng(seed);
    std::vector<WeightedEdge> edges;
    for (int64_t v = 0; v < n; ++v)
        for (int64_t e = 0; e < edges_per_node; ++e)
            edges.push_back({v, int64_t(rng.uniformInt(uint64_t(n))),
                             int64_t(1 + rng.uniformInt(5))});
    return WeightedGraph(n, edges);
}

TEST(HeavyEdgeMatching, ProducesValidMatching)
{
    const auto g = randomGraph(200, 4, 1);
    Rng rng(2);
    const auto match = heavyEdgeMatching(g, rng);
    for (int64_t v = 0; v < g.numNodes(); ++v) {
        const int64_t partner = match[size_t(v)];
        ASSERT_GE(partner, 0);
        ASSERT_LT(partner, g.numNodes());
        EXPECT_EQ(match[size_t(partner)], v) << "matching not mutual";
    }
}

TEST(HeavyEdgeMatching, MatchesMostVerticesOnDenseGraph)
{
    const auto g = twoCliques();
    Rng rng(3);
    const auto match = heavyEdgeMatching(g, rng);
    int64_t singletons = 0;
    for (int64_t v = 0; v < g.numNodes(); ++v)
        singletons += match[size_t(v)] == v;
    EXPECT_LE(singletons, 2);
}

TEST(Coarsen, PreservesTotalVertexWeight)
{
    const auto g = randomGraph(100, 3, 4);
    Rng rng(5);
    const auto level = coarsen(g, heavyEdgeMatching(g, rng));
    EXPECT_EQ(level.graph.totalVertexWeight(), g.totalVertexWeight());
    EXPECT_LT(level.graph.numNodes(), g.numNodes());
}

TEST(Coarsen, MappingCoversAllCoarseVertices)
{
    const auto g = randomGraph(100, 3, 6);
    Rng rng(7);
    const auto level = coarsen(g, heavyEdgeMatching(g, rng));
    std::set<int64_t> coarse_ids(level.fineToCoarse.begin(),
                                 level.fineToCoarse.end());
    EXPECT_EQ(int64_t(coarse_ids.size()), level.graph.numNodes());
}

TEST(Coarsen, CutIsPreservedUnderProjection)
{
    // Any coarse partition, projected to the fine graph, must have the
    // same cut (intra-pair edges never cross parts).
    const auto g = randomGraph(80, 4, 8);
    Rng rng(9);
    const auto matching = heavyEdgeMatching(g, rng);
    const auto level = coarsen(g, matching);
    std::vector<int32_t> coarse_parts(size_t(level.graph.numNodes()));
    for (size_t i = 0; i < coarse_parts.size(); ++i)
        coarse_parts[i] = int32_t(i % 2);
    std::vector<int32_t> fine_parts(size_t(g.numNodes()));
    for (int64_t v = 0; v < g.numNodes(); ++v)
        fine_parts[size_t(v)] =
            coarse_parts[size_t(level.fineToCoarse[size_t(v)])];
    EXPECT_EQ(g.cutCost(fine_parts),
              level.graph.cutCost(coarse_parts));
}

TEST(GreedyGrow, AssignsEveryVertex)
{
    const auto g = randomGraph(150, 3, 10);
    Rng rng(11);
    const auto parts = greedyGrowPartition(g, 4, rng);
    for (int32_t p : parts) {
        EXPECT_GE(p, 0);
        EXPECT_LT(p, 4);
    }
}

TEST(GreedyGrow, RoughBalance)
{
    const auto g = randomGraph(200, 3, 12);
    Rng rng(13);
    const auto parts = greedyGrowPartition(g, 4, rng);
    std::vector<int64_t> sizes(4, 0);
    for (int32_t p : parts)
        ++sizes[size_t(p)];
    EXPECT_GE(*std::min_element(sizes.begin(), sizes.end()), 25);
}

TEST(Refine, NeverWorsensCut)
{
    const auto g = randomGraph(150, 4, 14);
    Rng part_rng(15);
    std::vector<int32_t> parts(size_t(g.numNodes()));
    for (auto& p : parts)
        p = int32_t(part_rng.uniformInt(3));
    const int64_t before = g.cutCost(parts);
    Rng rng(16);
    const int64_t gain = refineKway(g, parts, 3, 1.1, 8, rng);
    EXPECT_EQ(g.cutCost(parts), before - gain);
    EXPECT_GE(gain, 0);
}

TEST(Rebalance, RestoresBound)
{
    const auto g = randomGraph(100, 3, 17);
    // Pathological start: everything in part 0.
    std::vector<int32_t> parts(size_t(g.numNodes()), 0);
    Rng rng(18);
    rebalance(g, parts, 4, 1.1, rng);
    EXPECT_LE(partitionImbalance(g, parts, 4), 1.1 + 1e-9);
}

TEST(KwayPartition, SeparatesCliques)
{
    const auto g = twoCliques();
    KwayOptions opts;
    opts.k = 2;
    const auto parts = kwayPartition(g, opts);
    // Perfect answer: the weak edge is the only cut.
    EXPECT_EQ(g.cutCost(parts), 1);
}

TEST(KwayPartition, KOneIsTrivial)
{
    const auto g = randomGraph(50, 3, 19);
    KwayOptions opts;
    opts.k = 1;
    const auto parts = kwayPartition(g, opts);
    for (int32_t p : parts)
        EXPECT_EQ(p, 0);
}

TEST(KwayPartition, HandlesIsolatedVertices)
{
    const WeightedGraph g(10, {{0, 1, 1}});
    KwayOptions opts;
    opts.k = 3;
    const auto parts = kwayPartition(g, opts);
    EXPECT_EQ(int64_t(parts.size()), 10);
    EXPECT_LE(partitionImbalance(g, parts, 3), opts.imbalance + 1e-9);
}

TEST(KwayPartition, KLargerThanGraph)
{
    const WeightedGraph g(3, {{0, 1, 1}, {1, 2, 1}});
    KwayOptions opts;
    opts.k = 8;
    const auto parts = kwayPartition(g, opts);
    for (int32_t p : parts) {
        EXPECT_GE(p, 0);
        EXPECT_LT(p, 8);
    }
}

TEST(KwayPartition, EmptyGraph)
{
    const WeightedGraph g(0, {});
    KwayOptions opts;
    opts.k = 4;
    EXPECT_TRUE(kwayPartition(g, opts).empty());
}

TEST(KwayPartition, BeatsRandomOnCommunityGraph)
{
    // A homophilous synthetic graph has community structure the
    // min-cut partitioner must exploit far better than random.
    SyntheticSpec spec;
    spec.numNodes = 600;
    spec.avgDegree = 10;
    spec.numClasses = 4;
    spec.homophily = 0.9;
    spec.featureDim = 4;
    const auto ds = makeSyntheticDataset(spec, 20);
    std::vector<WeightedEdge> wedges;
    for (const auto& e : ds.graph.edgeList())
        wedges.push_back({e.src, e.dst, 1});
    const WeightedGraph g(ds.numNodes(), wedges);

    KwayOptions opts;
    opts.k = 4;
    const auto parts = kwayPartition(g, opts);

    Rng rng(21);
    std::vector<int32_t> random_parts(size_t(g.numNodes()));
    for (auto& p : random_parts)
        p = int32_t(rng.uniformInt(4));

    EXPECT_LT(double(g.cutCost(parts)),
              0.6 * double(g.cutCost(random_parts)));
}

/** Property sweep over k: validity, balance, and beating random. */
class KwaySweep : public ::testing::TestWithParam<int32_t>
{
};

TEST_P(KwaySweep, ValidBalancedAndCompetitive)
{
    const int32_t k = GetParam();
    const auto g = randomGraph(300, 5, 22);
    KwayOptions opts;
    opts.k = k;
    const auto parts = kwayPartition(g, opts);
    ASSERT_EQ(int64_t(parts.size()), g.numNodes());
    for (int32_t p : parts) {
        ASSERT_GE(p, 0);
        ASSERT_LT(p, k);
    }
    EXPECT_LE(partitionImbalance(g, parts, k), opts.imbalance + 1e-9);

    Rng rng(23);
    std::vector<int32_t> random_parts(size_t(g.numNodes()));
    for (auto& p : random_parts)
        p = int32_t(rng.uniformInt(uint64_t(k)));
    if (k > 1)
        EXPECT_LE(g.cutCost(parts), g.cutCost(random_parts));
}

INSTANTIATE_TEST_SUITE_P(Ks, KwaySweep,
                         ::testing::Values(2, 3, 4, 8, 16, 32));

} // namespace
} // namespace betty
