/**
 * @file
 * Tests for the multi-accelerator engine (paper future work §7):
 * LPT scheduling, the vertex-cut sharder's properties (exactly-once
 * assignment, load-balance bound, duplication no worse than
 * round-robin, thread-count determinism), bit-identical equivalence
 * with single-device training, per-device memory/interconnect
 * accounting, and device-drop re-sharding mechanics.
 *
 * The deeper differential sweep (device counts x threads x pipeline x
 * cache, golden-corpus precondition, drop-equivalence invariant)
 * lives in tests/test_multi_device_equivalence.cc.
 */
#include <algorithm>
#include <cstring>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/betty.h"
#include "data/catalog.h"
#include "data/synthetic.h"
#include "graph/csr_graph.h"
#include "partition/partitioner.h"
#include "sampling/neighbor_sampler.h"
#include "train/multi_device.h"
#include "train/trainer.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace betty {
namespace {

TEST(ScheduleLpt, SingleDeviceTakesAll)
{
    const auto assignment = scheduleLpt({5, 3, 9}, 1);
    EXPECT_EQ(assignment, (std::vector<int32_t>{0, 0, 0}));
}

TEST(ScheduleLpt, BalancesLoad)
{
    // Costs 9, 5, 4, 3, 3: LPT on 2 devices -> {9,3} vs {5,4,3}.
    const std::vector<int64_t> costs = {9, 5, 4, 3, 3};
    const auto assignment = scheduleLpt(costs, 2);
    int64_t load[2] = {0, 0};
    for (size_t i = 0; i < costs.size(); ++i)
        load[assignment[i]] += costs[i];
    EXPECT_EQ(std::max(load[0], load[1]), 12);
}

TEST(ScheduleLpt, AllDevicesUsedWhenEnoughWork)
{
    const auto assignment = scheduleLpt({1, 1, 1, 1, 1, 1, 1, 1}, 4);
    std::vector<int32_t> seen(4, 0);
    for (int32_t device : assignment)
        ++seen[size_t(device)];
    for (int32_t count : seen)
        EXPECT_EQ(count, 2);
}

TEST(ScheduleLpt, ValidDeviceIds)
{
    const auto assignment = scheduleLpt({7, 1, 3, 3, 2, 8, 1}, 3);
    for (int32_t device : assignment) {
        EXPECT_GE(device, 0);
        EXPECT_LT(device, 3);
    }
}

// -------------------------------------------------------------------
// Vertex-cut sharder properties.

/** Heavy-tailed synthetic graph (products_like-style hubs) — the
 * fixture the parallel-determinism golden corpus uses. */
CsrGraph
powerLawGraph()
{
    SyntheticSpec spec;
    spec.name = "determinism_power_law";
    spec.numNodes = 1500;
    spec.avgDegree = 9.0;
    spec.powerLawAlpha = 2.1; // heavy tail: strong hubs
    spec.featureDim = 4;
    return makeSyntheticDataset(spec, 91).graph;
}

/** Bipartite-heavy hub graph: a small hub layer feeding a wide
 * destination layer, so micro-batches share a dense common halo. */
CsrGraph
bipartiteHeavyGraph()
{
    constexpr int64_t kHubs = 48;
    constexpr int64_t kDsts = 600;
    std::vector<Edge> edges;
    Rng rng(1234);
    for (int64_t d = 0; d < kDsts; ++d) {
        const int64_t dst = kHubs + d;
        const int64_t fan = 6 + int64_t(rng.next() % 10);
        for (int64_t e = 0; e < fan; ++e) {
            const int64_t hub = int64_t(rng.next() % uint64_t(kHubs));
            edges.push_back({hub, dst});
            edges.push_back({dst, hub}); // keep hubs reachable too
        }
    }
    return CsrGraph(kHubs + kDsts, edges);
}

std::vector<MultiLayerBatch>
microBatchesFor(const CsrGraph& graph, int32_t k)
{
    std::vector<int64_t> seeds;
    for (int64_t v = graph.numNodes() / 3;
         v < graph.numNodes() && int64_t(seeds.size()) < 384; ++v)
        seeds.push_back(v);
    NeighborSampler sampler(graph, {4, 6}, 7);
    const auto full = sampler.sample(seeds);
    BettyPartitioner partitioner;
    return extractMicroBatches(full, partitioner.partition(full, k));
}

/** The sharder's documented cost: feature + structure bytes. */
int64_t
shardCost(const MultiLayerBatch& batch, int64_t feature_dim)
{
    return int64_t(batch.inputNodes().size()) * feature_dim *
               int64_t(sizeof(float)) +
           batch.structureBytes();
}

constexpr int64_t kDim = 16;

class ShardVertexCut : public ::testing::TestWithParam<const char*>
{
  protected:
    CsrGraph
    makeGraph() const
    {
        return std::string(GetParam()) == "power_law"
                   ? powerLawGraph()
                   : bipartiteHeavyGraph();
    }
};

TEST_P(ShardVertexCut, EveryActiveBatchAssignedExactlyOnce)
{
    const auto micros = microBatchesFor(makeGraph(), 8);
    ASSERT_GT(micros.size(), 1u);
    for (const int32_t devices : {1, 2, 4, 8}) {
        const ShardPlan plan =
            shardVertexCut(micros, devices, kDim);
        ASSERT_EQ(plan.assignment.size(), micros.size());
        for (size_t i = 0; i < micros.size(); ++i) {
            if (micros[i].outputNodes().empty()) {
                EXPECT_EQ(plan.assignment[i], -1);
            } else {
                EXPECT_GE(plan.assignment[i], 0);
                EXPECT_LT(plan.assignment[i], devices);
            }
        }
    }
}

TEST_P(ShardVertexCut, LoadWithinBalanceBound)
{
    const auto micros = microBatchesFor(makeGraph(), 8);
    int64_t total = 0;
    int64_t max_single = 0;
    for (const auto& batch : micros) {
        if (batch.outputNodes().empty())
            continue;
        const int64_t cost = shardCost(batch, kDim);
        total += cost;
        max_single = std::max(max_single, cost);
    }
    for (const int32_t devices : {2, 4, 8}) {
        const double slack = 1.2;
        const ShardPlan plan =
            shardVertexCut(micros, devices, kDim, slack);
        ASSERT_EQ(int32_t(plan.deviceCostBytes.size()), devices);
        int64_t recomputed_total = 0;
        for (size_t i = 0; i < micros.size(); ++i)
            if (plan.assignment[i] >= 0)
                recomputed_total += shardCost(micros[i], kDim);
        EXPECT_EQ(recomputed_total, total);
        const double per_device = double(total) / double(devices);
        const double bound = std::max(
            slack * per_device, per_device + double(max_single));
        for (const int64_t load : plan.deviceCostBytes)
            EXPECT_LE(double(load), bound + 1.0)
                << "devices=" << devices;
    }
}

TEST_P(ShardVertexCut, DuplicationNoWorseThanRoundRobin)
{
    const auto micros = microBatchesFor(makeGraph(), 8);
    for (const int32_t devices : {2, 4, 8}) {
        const ShardPlan plan =
            shardVertexCut(micros, devices, kDim);
        const double round_robin = shardDuplicationFactor(
            micros, roundRobinAssignment(micros, devices));
        EXPECT_GE(plan.duplicationFactor, 1.0);
        EXPECT_LE(plan.duplicationFactor, double(devices));
        EXPECT_LE(plan.duplicationFactor, round_robin + 1e-12)
            << "devices=" << devices;
    }
}

TEST_P(ShardVertexCut, ReportedFactorMatchesDefinition)
{
    const auto micros = microBatchesFor(makeGraph(), 8);
    const ShardPlan plan = shardVertexCut(micros, 4, kDim);
    ASSERT_GT(plan.globalUniqueInputs, 0);
    int64_t replicated = 0;
    for (const int64_t unique : plan.deviceUniqueInputs)
        replicated += unique;
    EXPECT_DOUBLE_EQ(plan.duplicationFactor,
                     double(replicated) /
                         double(plan.globalUniqueInputs));
    EXPECT_DOUBLE_EQ(plan.duplicationFactor,
                     shardDuplicationFactor(micros, plan.assignment));
}

TEST_P(ShardVertexCut, DeterministicAcrossThreadCounts)
{
    const auto micros = microBatchesFor(makeGraph(), 8);
    ThreadPool::setGlobalThreads(1);
    const ShardPlan serial = shardVertexCut(micros, 4, kDim);
    ThreadPool::setGlobalThreads(8);
    const ShardPlan threaded = shardVertexCut(micros, 4, kDim);
    ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(serial.assignment, threaded.assignment);
    EXPECT_EQ(serial.deviceCostBytes, threaded.deviceCostBytes);
    EXPECT_EQ(serial.deviceUniqueInputs, threaded.deviceUniqueInputs);
    EXPECT_EQ(serial.globalUniqueInputs, threaded.globalUniqueInputs);
}

INSTANTIATE_TEST_SUITE_P(Graphs, ShardVertexCut,
                         ::testing::Values("power_law",
                                           "bipartite_heavy"));

// -------------------------------------------------------------------
// Engine behaviour.

struct Env
{
    Env()
        : dataset(loadCatalogDataset("arxiv_like", 0.1, 77)),
          sampler(dataset.graph, {5, 8}, 78)
    {
        std::vector<int64_t> seeds(dataset.trainNodes.begin(),
                                   dataset.trainNodes.begin() + 200);
        full = sampler.sample(seeds);
        BettyPartitioner part;
        micros = extractMicroBatches(full, part.partition(full, 8));
    }

    SageConfig
    config() const
    {
        SageConfig cfg;
        cfg.inputDim = dataset.featureDim();
        cfg.hiddenDim = 16;
        cfg.numClasses = dataset.numClasses;
        cfg.numLayers = 2;
        cfg.seed = 9;
        return cfg;
    }

    Dataset dataset;
    NeighborSampler sampler;
    MultiLayerBatch full;
    std::vector<MultiLayerBatch> micros;
};

TEST(MultiDevice, BitIdenticalToSingleDeviceTrainer)
{
    Env env;
    // Single-device reference.
    GraphSage single_model(env.config());
    Adam single_adam(single_model.parameters(), 0.01f);
    Trainer single(env.dataset, single_model, single_adam);
    const auto single_stats = single.trainMicroBatches(env.micros);

    // Two simulated devices, same init: the engine computes through
    // the same numeric path, so equality is exact, not approximate.
    GraphSage multi_model(env.config());
    Adam multi_adam(multi_model.parameters(), 0.01f);
    MultiDeviceConfig config;
    config.numDevices = 2;
    MultiDeviceEngine multi(env.dataset, multi_model, multi_adam,
                            config);
    const auto multi_stats = multi.trainMicroBatches(env.micros);

    EXPECT_EQ(multi_stats.loss, single_stats.loss);
    EXPECT_EQ(multi_stats.accuracy, single_stats.accuracy);

    const auto& pa = single_model.parameters();
    const auto& pb = multi_model.parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i)
        for (int64_t j = 0; j < pa[i]->value.numel(); ++j)
            ASSERT_EQ(pa[i]->value.data()[j],
                      pb[i]->value.data()[j])
                << "param " << i << " element " << j;
}

TEST(MultiDevice, EveryDeviceGetsWork)
{
    Env env;
    GraphSage model(env.config());
    Adam adam(model.parameters(), 0.01f);
    MultiDeviceConfig config;
    config.numDevices = 4;
    MultiDeviceEngine engine(env.dataset, model, adam, config);
    const auto stats = engine.trainMicroBatches(env.micros);
    ASSERT_EQ(stats.batchesPerDevice.size(), 4u);
    int32_t executed = 0;
    for (int32_t count : stats.batchesPerDevice) {
        EXPECT_GT(count, 0);
        executed += count;
    }
    int32_t active = 0;
    for (const auto& batch : env.micros)
        if (!batch.outputNodes().empty())
            ++active;
    EXPECT_EQ(executed, active); // exactly-once execution
    EXPECT_EQ(engine.liveDevices(), 4);
}

TEST(MultiDevice, PerDevicePeakBelowSingleDevice)
{
    Env env;
    // Single device holding all 8 micro-batches sequentially peaks at
    // the largest micro-batch; with 4 devices each holds ~2 and the
    // max per-device peak must not exceed the single-device peak.
    DeviceMemoryModel reference;
    int64_t single_peak;
    {
        DeviceMemoryModel::Scope scope(reference);
        GraphSage model(env.config());
        Adam adam(model.parameters(), 0.01f);
        Trainer trainer(env.dataset, model, adam, &reference);
        single_peak = trainer.trainMicroBatches(env.micros).peakBytes;
    }

    GraphSage model(env.config());
    Adam adam(model.parameters(), 0.01f);
    MultiDeviceConfig config;
    config.numDevices = 4;
    MultiDeviceEngine engine(env.dataset, model, adam, config);
    const auto stats = engine.trainMicroBatches(env.micros);
    EXPECT_LE(stats.maxDevicePeakBytes, single_peak);
    EXPECT_GT(stats.maxDevicePeakBytes, 0);
}

TEST(MultiDevice, AllreduceChargedByTheRingFormula)
{
    Env env;
    GraphSage model(env.config());
    Adam adam(model.parameters(), 0.01f);
    MultiDeviceConfig config;
    config.numDevices = 4;
    config.interconnect.name = "custom";
    config.interconnect.bandwidth = 1e6; // deliberately slow link
    config.interconnect.latencySeconds = 0.0;
    MultiDeviceEngine engine(env.dataset, model, adam, config);
    const auto stats = engine.trainMicroBatches(env.micros);
    // allreduceSeconds = ring cost + optimizer-step wall time, so it
    // must be at least the analytic ring term.
    int64_t grad_bytes = 0;
    for (const auto& param : model.parameters())
        grad_bytes += param->value.bytes();
    const double ring =
        engine.interconnect().allReduceSeconds(grad_bytes, 4);
    EXPECT_GT(ring, 0.0);
    EXPECT_GE(stats.allreduceSeconds, ring);
    EXPECT_EQ(engine.interconnect().collectives(), 1);
    EXPECT_GT(engine.interconnect().bytesMoved(), 0);
}

TEST(MultiDevice, OomDetectedPerDevice)
{
    Env env;
    GraphSage model(env.config());
    Adam adam(model.parameters(), 0.01f);
    MultiDeviceConfig config;
    config.numDevices = 2;
    config.deviceCapacityBytes = 1024;
    MultiDeviceEngine engine(env.dataset, model, adam, config);
    const auto stats = engine.trainMicroBatches(env.micros);
    EXPECT_TRUE(stats.oom);
}

TEST(MultiDevice, TrainsToLowerLoss)
{
    Env env;
    GraphSage model(env.config());
    Adam adam(model.parameters(), 0.01f);
    MultiDeviceConfig config;
    config.numDevices = 3;
    MultiDeviceEngine engine(env.dataset, model, adam, config);
    const double first = engine.trainMicroBatches(env.micros).loss;
    double last = first;
    for (int epoch = 0; epoch < 8; ++epoch)
        last = engine.trainMicroBatches(env.micros).loss;
    EXPECT_LT(last, first);
}

TEST(MultiDevice, EpochScopedDeviceDropReshardsAndFinishes)
{
    Env env;
    fault::FaultPlan plan;
    ASSERT_TRUE(
        fault::FaultPlan::parse("device-drop@epoch2", plan, nullptr));
    fault::Injector::install(plan);

    GraphSage model(env.config());
    Adam adam(model.parameters(), 0.01f);
    MultiDeviceConfig config;
    config.numDevices = 4;
    MultiDeviceEngine engine(env.dataset, model, adam, config);

    const auto first = engine.trainEpoch(env.micros, 1);
    EXPECT_EQ(first.liveDevices, 4);
    EXPECT_EQ(first.deviceDrops, 0);

    // The drop fires before sharding, so the victim (highest-indexed
    // live device) executes nothing and every batch still runs.
    const auto second = engine.trainEpoch(env.micros, 2);
    EXPECT_EQ(second.liveDevices, 3);
    EXPECT_EQ(second.deviceDrops, 1);
    EXPECT_EQ(engine.liveDevices(), 3);
    ASSERT_EQ(second.batchesPerDevice.size(), 4u);
    EXPECT_EQ(second.batchesPerDevice[3], 0);
    int32_t executed = 0;
    for (int32_t count : second.batchesPerDevice)
        executed += count;
    int32_t active = 0;
    for (const auto& batch : env.micros)
        if (!batch.outputNodes().empty())
            ++active;
    EXPECT_EQ(executed, active);
    fault::Injector::clear();
}

TEST(MultiDevice, NeverDropsTheLastLiveDevice)
{
    Env env;
    fault::FaultPlan plan;
    ASSERT_TRUE(
        fault::FaultPlan::parse("device-drop@epoch1", plan, nullptr));
    fault::Injector::install(plan);

    GraphSage model(env.config());
    Adam adam(model.parameters(), 0.01f);
    MultiDeviceConfig config;
    config.numDevices = 1;
    MultiDeviceEngine engine(env.dataset, model, adam, config);
    const auto stats = engine.trainEpoch(env.micros, 1);
    EXPECT_EQ(stats.liveDevices, 1);
    EXPECT_EQ(stats.deviceDrops, 0);
    EXPECT_GT(stats.loss, 0.0);
    fault::Injector::clear();
}

} // namespace
} // namespace betty
