/**
 * @file
 * Tests for the multi-accelerator extension (paper future work §7):
 * LPT scheduling, loss/accuracy equivalence with single-device
 * training, per-device memory, and scaling behaviour.
 */
#include <algorithm>

#include <gtest/gtest.h>

#include "core/betty.h"
#include "data/catalog.h"
#include "sampling/neighbor_sampler.h"
#include "train/multi_device.h"
#include "train/trainer.h"

namespace betty {
namespace {

TEST(ScheduleLpt, SingleDeviceTakesAll)
{
    const auto assignment = scheduleLpt({5, 3, 9}, 1);
    EXPECT_EQ(assignment, (std::vector<int32_t>{0, 0, 0}));
}

TEST(ScheduleLpt, BalancesLoad)
{
    // Costs 9, 5, 4, 3, 3: LPT on 2 devices -> {9,3} vs {5,4,3}.
    const std::vector<int64_t> costs = {9, 5, 4, 3, 3};
    const auto assignment = scheduleLpt(costs, 2);
    int64_t load[2] = {0, 0};
    for (size_t i = 0; i < costs.size(); ++i)
        load[assignment[i]] += costs[i];
    EXPECT_EQ(std::max(load[0], load[1]), 12);
}

TEST(ScheduleLpt, AllDevicesUsedWhenEnoughWork)
{
    const auto assignment = scheduleLpt({1, 1, 1, 1, 1, 1, 1, 1}, 4);
    std::vector<int32_t> seen(4, 0);
    for (int32_t device : assignment)
        ++seen[size_t(device)];
    for (int32_t count : seen)
        EXPECT_EQ(count, 2);
}

TEST(ScheduleLpt, ValidDeviceIds)
{
    const auto assignment = scheduleLpt({7, 1, 3, 3, 2, 8, 1}, 3);
    for (int32_t device : assignment) {
        EXPECT_GE(device, 0);
        EXPECT_LT(device, 3);
    }
}

struct Env
{
    Env()
        : dataset(loadCatalogDataset("arxiv_like", 0.1, 77)),
          sampler(dataset.graph, {5, 8}, 78)
    {
        std::vector<int64_t> seeds(dataset.trainNodes.begin(),
                                   dataset.trainNodes.begin() + 200);
        full = sampler.sample(seeds);
        BettyPartitioner part;
        micros = extractMicroBatches(full, part.partition(full, 8));
    }

    SageConfig
    config() const
    {
        SageConfig cfg;
        cfg.inputDim = dataset.featureDim();
        cfg.hiddenDim = 16;
        cfg.numClasses = dataset.numClasses;
        cfg.numLayers = 2;
        cfg.seed = 9;
        return cfg;
    }

    Dataset dataset;
    NeighborSampler sampler;
    MultiLayerBatch full;
    std::vector<MultiLayerBatch> micros;
};

TEST(MultiDevice, LossMatchesSingleDeviceTrainer)
{
    Env env;
    // Single-device reference.
    GraphSage single_model(env.config());
    Adam single_adam(single_model.parameters(), 0.01f);
    Trainer single(env.dataset, single_model, single_adam);
    const auto single_stats = single.trainMicroBatches(env.micros);

    // Two simulated devices, same init.
    GraphSage multi_model(env.config());
    Adam multi_adam(multi_model.parameters(), 0.01f);
    MultiDeviceConfig config;
    config.numDevices = 2;
    MultiDeviceTrainer multi(env.dataset, multi_model, multi_adam,
                             config);
    const auto multi_stats = multi.trainMicroBatches(env.micros);

    EXPECT_NEAR(multi_stats.loss, single_stats.loss, 1e-5);
    EXPECT_NEAR(multi_stats.accuracy, single_stats.accuracy, 1e-9);

    // Parameters must end identical (same accumulated gradients).
    const auto& pa = single_model.parameters();
    const auto& pb = multi_model.parameters();
    for (size_t i = 0; i < pa.size(); ++i)
        for (int64_t j = 0; j < pa[i]->value.numel(); ++j)
            ASSERT_NEAR(pa[i]->value.data()[j],
                        pb[i]->value.data()[j], 1e-6);
}

TEST(MultiDevice, EveryDeviceGetsWork)
{
    Env env;
    GraphSage model(env.config());
    Adam adam(model.parameters(), 0.01f);
    MultiDeviceConfig config;
    config.numDevices = 4;
    MultiDeviceTrainer trainer(env.dataset, model, adam, config);
    const auto stats = trainer.trainMicroBatches(env.micros);
    ASSERT_EQ(stats.batchesPerDevice.size(), 4u);
    for (int32_t count : stats.batchesPerDevice)
        EXPECT_GT(count, 0);
}

TEST(MultiDevice, PerDevicePeakBelowSingleDevice)
{
    Env env;
    // Single device holding all 8 micro-batches sequentially peaks at
    // the largest micro-batch; with 4 devices each holds ~2 and the
    // max per-device peak must not exceed the single-device peak.
    DeviceMemoryModel reference;
    int64_t single_peak;
    {
        DeviceMemoryModel::Scope scope(reference);
        GraphSage model(env.config());
        Adam adam(model.parameters(), 0.01f);
        Trainer trainer(env.dataset, model, adam, &reference);
        single_peak = trainer.trainMicroBatches(env.micros).peakBytes;
    }

    GraphSage model(env.config());
    Adam adam(model.parameters(), 0.01f);
    MultiDeviceConfig config;
    config.numDevices = 4;
    MultiDeviceTrainer trainer(env.dataset, model, adam, config);
    const auto stats = trainer.trainMicroBatches(env.micros);
    EXPECT_LE(stats.maxDevicePeakBytes, single_peak);
    EXPECT_GT(stats.maxDevicePeakBytes, 0);
}

TEST(MultiDevice, EpochTimeImprovesWithDevices)
{
    Env env;
    double previous = 1e30;
    for (int32_t devices : {1, 2, 4}) {
        GraphSage model(env.config());
        Adam adam(model.parameters(), 0.01f);
        MultiDeviceConfig config;
        config.numDevices = devices;
        MultiDeviceTrainer trainer(env.dataset, model, adam, config);
        const auto stats = trainer.trainMicroBatches(env.micros);
        // Allow generous slack: wall-clock noise on a busy machine.
        EXPECT_LT(stats.epochSeconds, previous * 1.2)
            << devices << " devices";
        previous = stats.epochSeconds;
    }
}

TEST(MultiDevice, AllreduceChargedForMultipleDevices)
{
    Env env;
    GraphSage model(env.config());
    Adam adam(model.parameters(), 0.01f);
    MultiDeviceConfig config;
    config.numDevices = 4;
    config.interconnectBandwidth = 1e6; // deliberately slow link
    MultiDeviceTrainer trainer(env.dataset, model, adam, config);
    const auto stats = trainer.trainMicroBatches(env.micros);
    // grad bytes / 1 MB/s with the ring factor must be visible.
    const double grad_bytes = double(model.parameterCount() * 4);
    EXPECT_GT(stats.allreduceSeconds,
              0.5 * 2.0 * (3.0 / 4.0) * grad_bytes / 1e6);
}

TEST(MultiDevice, OomDetectedPerDevice)
{
    Env env;
    GraphSage model(env.config());
    Adam adam(model.parameters(), 0.01f);
    MultiDeviceConfig config;
    config.numDevices = 2;
    config.deviceCapacityBytes = 1024;
    MultiDeviceTrainer trainer(env.dataset, model, adam, config);
    const auto stats = trainer.trainMicroBatches(env.micros);
    EXPECT_TRUE(stats.oom);
}

TEST(MultiDevice, TrainsToLowerLoss)
{
    Env env;
    GraphSage model(env.config());
    Adam adam(model.parameters(), 0.01f);
    MultiDeviceConfig config;
    config.numDevices = 3;
    MultiDeviceTrainer trainer(env.dataset, model, adam, config);
    const double first = trainer.trainMicroBatches(env.micros).loss;
    double last = first;
    for (int epoch = 0; epoch < 8; ++epoch)
        last = trainer.trainMicroBatches(env.micros).loss;
    EXPECT_LT(last, first);
}

} // namespace
} // namespace betty
