/**
 * @file
 * Tests for Redundancy-Embedded Graph construction (Algorithm 1).
 */
#include <gtest/gtest.h>

#include "partition/reg.h"
#include "sampling/neighbor_sampler.h"
#include "test_helpers.h"

namespace betty {
namespace {

/** Find the weight of edge (u, v) in a weighted graph; 0 if absent. */
int64_t
edgeWeight(const WeightedGraph& g, int64_t u, int64_t v)
{
    const auto nbrs = g.neighbors(u);
    const auto wts = g.edgeWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i)
        if (nbrs[i] == v)
            return wts[i];
    return 0;
}

TEST(Reg, CountsSharedNeighborsExactly)
{
    // dst 0 <- {10, 11, 12}; dst 1 <- {11, 12, 13}; dst 2 <- {13}.
    const Block block({0, 1, 2}, {{10, 11, 12}, {11, 12, 13}, {13}});
    const auto reg = buildReg(block);
    EXPECT_EQ(reg.numNodes(), 3);
    EXPECT_EQ(edgeWeight(reg, 0, 1), 2); // share 11 and 12
    EXPECT_EQ(edgeWeight(reg, 1, 2), 1); // share 13
    EXPECT_EQ(edgeWeight(reg, 0, 2), 0); // nothing shared
}

TEST(Reg, PaperFigure8Example)
{
    // Figure 8's input graph: outputs 1 and 8 with 1-hop neighborhoods
    // N(1) = {0,2,3,5,6,7,9}, N(8) = {3,4,5,6,7,9} (reading the
    // figure's partition (a): shared = {3,5,6,7} plus 9 appears in
    // both; we encode shared in-neighbors {3,5,6,7,9}).
    const Block block({1, 8},
                      {{0, 2, 3, 5, 6, 7, 9}, {3, 4, 5, 6, 7, 9}});
    const auto reg = buildReg(block);
    EXPECT_EQ(edgeWeight(reg, 0, 1), 5);
}

TEST(Reg, NoSelfLoops)
{
    const Block block({0, 1}, {{5, 6}, {6, 7}});
    const auto reg = buildReg(block);
    for (int64_t v = 0; v < reg.numNodes(); ++v)
        for (int64_t u : reg.neighbors(v))
            EXPECT_NE(u, v);
}

TEST(Reg, DestinationAsSharedSourceCounts)
{
    // dst 0 is itself a source of dst 1 (local prefix reuse): a source
    // shared via the prefix must still count.
    const Block block({0, 1}, {{5}, {0, 5}});
    const auto reg = buildReg(block);
    EXPECT_EQ(edgeWeight(reg, 0, 1), 1); // share node 5
}

TEST(Reg, DisjointNeighborhoodsGiveEmptyReg)
{
    const Block block({0, 1}, {{5, 6}, {7, 8}});
    const auto reg = buildReg(block);
    EXPECT_EQ(reg.numEdges(), 0);
}

TEST(Reg, DuplicateSampledEdgeCountsOnce)
{
    // Multigraph: dst 0 sampled source 5 twice; shared count with
    // dst 1 is still 1 (distinct nodes).
    const Block block({0, 1}, {{5, 5}, {5}});
    const auto reg = buildReg(block);
    EXPECT_EQ(edgeWeight(reg, 0, 1), 1);
}

TEST(Reg, VertexWeightsUnitByDefault)
{
    const Block block({0, 1}, {{5, 6, 7}, {5}});
    const auto reg = buildReg(block);
    EXPECT_EQ(reg.vertexWeight(0), 1);
    EXPECT_EQ(reg.vertexWeight(1), 1);
}

TEST(Reg, DegreeVertexWeightsOption)
{
    const Block block({0, 1}, {{5, 6, 7}, {5}});
    RegOptions opts;
    opts.degreeVertexWeights = true;
    const auto reg = buildReg(block, opts);
    EXPECT_EQ(reg.vertexWeight(0), 4); // 1 + in-degree 3
    EXPECT_EQ(reg.vertexWeight(1), 2);
}

TEST(Reg, HubCapStillConnectsCoDestinations)
{
    // One hub source feeds 20 destinations; with a cap of 5 the REG
    // must still contain edges among (a sample of) them.
    std::vector<int64_t> dsts;
    std::vector<std::vector<int64_t>> srcs;
    for (int64_t d = 0; d < 20; ++d) {
        dsts.push_back(d);
        srcs.push_back({100});
    }
    const Block block(dsts, srcs);
    RegOptions opts;
    opts.hubPairCap = 5;
    const auto reg = buildReg(block, opts);
    EXPECT_GT(reg.numEdges(), 0);
    EXPECT_LE(reg.numEdges(), 10); // 5 choose 2
}

TEST(Reg, HubCapDisabledEnumeratesAllPairs)
{
    std::vector<int64_t> dsts;
    std::vector<std::vector<int64_t>> srcs;
    for (int64_t d = 0; d < 12; ++d) {
        dsts.push_back(d);
        srcs.push_back({100});
    }
    const Block block(dsts, srcs);
    RegOptions opts;
    opts.hubPairCap = 0;
    const auto reg = buildReg(block, opts);
    EXPECT_EQ(reg.numEdges(), 66); // 12 choose 2
}

TEST(Reg, OnSampledBatchMatchesBruteForce)
{
    const auto g = testutil::toyGraph();
    NeighborSampler sampler(g, {-1});
    const auto batch = sampler.sample({1, 6, 8});
    const Block& block = batch.blocks.back();
    const auto reg = buildReg(block);

    // Brute force shared-in-neighbor counts over global ids.
    for (int64_t i = 0; i < block.numDst(); ++i) {
        for (int64_t j = i + 1; j < block.numDst(); ++j) {
            int64_t shared = 0;
            for (int64_t si : block.inEdges(i))
                for (int64_t sj : block.inEdges(j))
                    shared += si == sj;
            EXPECT_EQ(edgeWeight(reg, i, j), shared)
                << "pair " << i << "," << j;
        }
    }
}

} // namespace
} // namespace betty
