/**
 * @file
 * Tests for the analytical memory estimator (§4.4.3 components).
 */
#include <gtest/gtest.h>

#include "data/catalog.h"
#include "memory/device_memory.h"
#include "memory/estimator.h"
#include "memory/transfer_model.h"
#include "sampling/neighbor_sampler.h"
#include "test_helpers.h"

namespace betty {
namespace {

GnnSpec
specFor(AggregatorKind agg, int64_t layers = 2)
{
    GnnSpec spec;
    spec.inputDim = 32;
    spec.hiddenDim = 64;
    spec.numClasses = 8;
    spec.numLayers = layers;
    spec.aggregator = agg;
    spec.paramCountGnn = 10000;
    spec.paramCountAgg = agg == AggregatorKind::Mean ? 0 : 5000;
    spec.lstmIntermediatesPerNode = 30;
    return spec;
}

TEST(GnnSpec, LayerDims)
{
    const auto spec = specFor(AggregatorKind::Mean, 3);
    EXPECT_EQ(spec.layerInDim(0), 32);
    EXPECT_EQ(spec.layerOutDim(0), 64);
    EXPECT_EQ(spec.layerInDim(1), 64);
    EXPECT_EQ(spec.layerOutDim(2), 8);
}

TEST(Estimator, ComponentsPopulated)
{
    const auto batch = testutil::tinyBatch();
    const auto est =
        estimateBatchMemory(batch, specFor(AggregatorKind::Mean));
    EXPECT_GT(est.parameters, 0);
    EXPECT_GT(est.inputFeatures, 0);
    EXPECT_GT(est.labels, 0);
    EXPECT_GT(est.blocks, 0);
    EXPECT_GT(est.hidden, 0);
    EXPECT_GT(est.aggregator, 0);
    EXPECT_GT(est.gradients, 0);
    EXPECT_GT(est.optimizerStates, 0);
    EXPECT_GT(est.peak, est.parameters + est.inputFeatures);
}

TEST(Estimator, ExactComponentValues)
{
    const auto batch = testutil::tinyBatch();
    const auto spec = specFor(AggregatorKind::Mean);
    const auto est = estimateBatchMemory(batch, spec);
    // (1) params * 4 bytes
    EXPECT_EQ(est.parameters, 10000 * 4);
    // (2) input nodes x inputDim x 4
    EXPECT_EQ(est.inputFeatures,
              int64_t(batch.inputNodes().size()) * 32 * 4);
    // (3) output labels, 4 bytes each
    EXPECT_EQ(est.labels, int64_t(batch.outputNodes().size()) * 4);
    // (4) edges x (2 ids + weight)
    EXPECT_EQ(est.blocks, batch.totalEdges() * 20);
    // (7) gradients = all params
    EXPECT_EQ(est.gradients, 10000 * 4);
    // (8) Adam: two states per param
    EXPECT_EQ(est.optimizerStates, 2 * 10000 * 4);
}

TEST(Estimator, SgdHasNoOptimizerState)
{
    auto spec = specFor(AggregatorKind::Mean);
    spec.optimizer = OptimizerKind::Sgd;
    const auto est = estimateBatchMemory(testutil::tinyBatch(), spec);
    EXPECT_EQ(est.optimizerStates, 0);
}

TEST(Estimator, LstmDominatesMean)
{
    const auto batch = testutil::tinyBatch();
    const auto mean =
        estimateBatchMemory(batch, specFor(AggregatorKind::Mean));
    const auto lstm =
        estimateBatchMemory(batch, specFor(AggregatorKind::Lstm));
    // The paper's Figure 2(a): LSTM is the memory hog.
    EXPECT_GT(lstm.aggregator, 5 * mean.aggregator);
    EXPECT_GT(lstm.peak, mean.peak);
}

TEST(Estimator, PoolBetweenMeanAndLstm)
{
    const auto batch = testutil::tinyBatch();
    const auto mean =
        estimateBatchMemory(batch, specFor(AggregatorKind::Mean));
    const auto pool =
        estimateBatchMemory(batch, specFor(AggregatorKind::Pool));
    const auto lstm =
        estimateBatchMemory(batch, specFor(AggregatorKind::Lstm));
    EXPECT_GE(pool.aggregator, mean.aggregator);
    EXPECT_LT(pool.aggregator, lstm.aggregator);
}

TEST(Estimator, LstmScalesWithEq5Constant)
{
    const auto batch = testutil::tinyBatch();
    auto spec = specFor(AggregatorKind::Lstm);
    spec.lstmIntermediatesPerNode = 10;
    const auto low = estimateBatchMemory(batch, spec);
    spec.lstmIntermediatesPerNode = 20;
    const auto high = estimateBatchMemory(batch, spec);
    EXPECT_GT(high.aggregator, low.aggregator);
}

TEST(Estimator, MonotoneInBatchSize)
{
    const auto ds = loadCatalogDataset("arxiv_like", 0.05, 7);
    NeighborSampler sampler(ds.graph, {5, 10}, 8);
    std::vector<int64_t> small_seeds(ds.trainNodes.begin(),
                                     ds.trainNodes.begin() + 20);
    std::vector<int64_t> big_seeds(ds.trainNodes.begin(),
                                   ds.trainNodes.begin() + 200);
    const auto spec = specFor(AggregatorKind::Mean);
    const auto small =
        estimateBatchMemory(sampler.sample(small_seeds), spec);
    const auto big =
        estimateBatchMemory(sampler.sample(big_seeds), spec);
    EXPECT_LT(small.peak, big.peak);
}

TEST(Estimator, PeakGiB)
{
    MemoryEstimate est;
    est.peak = gib(2.0);
    EXPECT_NEAR(est.peakGiB(), 2.0, 1e-9);
}

TEST(Estimator, AggregatorNames)
{
    EXPECT_EQ(aggregatorName(AggregatorKind::Mean), "mean");
    EXPECT_EQ(aggregatorName(AggregatorKind::Sum), "sum");
    EXPECT_EQ(aggregatorName(AggregatorKind::Pool), "pool");
    EXPECT_EQ(aggregatorName(AggregatorKind::Lstm), "lstm");
}

TEST(EstimatorDeathTest, LayerMismatchPanics)
{
    const auto batch = testutil::tinyBatch(); // 2 blocks
    EXPECT_DEATH(
        estimateBatchMemory(batch, specFor(AggregatorKind::Mean, 3)),
        "blocks");
}

TEST(DeviceMemory, OomFlagAndOvershoot)
{
    DeviceMemoryModel device(100);
    device.onAlloc(80);
    EXPECT_FALSE(device.oomOccurred());
    device.onAlloc(50);
    EXPECT_TRUE(device.oomOccurred());
    EXPECT_EQ(device.worstOvershoot(), 30);
    device.onFree(50);
    EXPECT_TRUE(device.oomOccurred()) << "OOM is sticky until reset";
    device.resetPeak();
    EXPECT_FALSE(device.oomOccurred());
    EXPECT_EQ(device.peakBytes(), 80);
}

TEST(DeviceMemory, UnlimitedCapacityNeverOoms)
{
    DeviceMemoryModel device(0);
    device.onAlloc(int64_t(1) << 40);
    EXPECT_FALSE(device.oomOccurred());
}

TEST(TransferModelTest, SecondsMatchFormula)
{
    TransferModel transfer(1e9, 1e-5);
    transfer.transfer(1000000); // 1 MB at 1 GB/s = 1 ms + 10 us
    EXPECT_NEAR(transfer.seconds(), 0.00101, 1e-6);
    EXPECT_EQ(transfer.totalBytes(), 1000000);
    EXPECT_EQ(transfer.numTransfers(), 1);
    transfer.reset();
    EXPECT_EQ(transfer.seconds(), 0.0);
}

} // namespace
} // namespace betty
