/**
 * @file
 * Runtime kernel dispatch tests (kernels/dispatch.h): strict
 * BETTY_KERNELS parsing (malformed values are fatal, naming the
 * variable), the avx2-unavailable fallback with its single-warning /
 * counter contract, auto resolution on both kinds of hardware, and
 * backend caching.
 */
#include <gtest/gtest.h>

#include <cstdlib>

#include "kernels/dispatch.h"

namespace betty::kernels {
namespace {

/** Restores a clean dispatch state no matter how a test exits. */
class DispatchTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        ::unsetenv("BETTY_KERNELS");
        setCpuSupportsAvx2ForTest(-1);
        setKernelMode(KernelMode::Scalar);
    }
};

TEST_F(DispatchTest, ParseAcceptsExactlyTheThreeModes)
{
    KernelMode mode = KernelMode::Auto;
    EXPECT_TRUE(parseKernelMode("scalar", &mode));
    EXPECT_EQ(mode, KernelMode::Scalar);
    EXPECT_TRUE(parseKernelMode("avx2", &mode));
    EXPECT_EQ(mode, KernelMode::Avx2);
    EXPECT_TRUE(parseKernelMode("auto", &mode));
    EXPECT_EQ(mode, KernelMode::Auto);

    EXPECT_FALSE(parseKernelMode("", &mode));
    EXPECT_FALSE(parseKernelMode("AVX2", &mode));
    EXPECT_FALSE(parseKernelMode("sse", &mode));
    EXPECT_FALSE(parseKernelMode("scalar ", &mode));
    EXPECT_FALSE(parseKernelMode("avx512", &mode));
}

TEST_F(DispatchTest, ModeAndBackendNames)
{
    EXPECT_STREQ(kernelModeName(KernelMode::Scalar), "scalar");
    EXPECT_STREQ(kernelModeName(KernelMode::Avx2), "avx2");
    EXPECT_STREQ(kernelModeName(KernelMode::Auto), "auto");
    EXPECT_STREQ(backendName(Backend::Scalar), "scalar");
    EXPECT_STREQ(backendName(Backend::Avx2), "avx2");
}

TEST_F(DispatchTest, DefaultModeIsScalar)
{
    ::unsetenv("BETTY_KERNELS");
    resetKernelModeForTest();
    EXPECT_EQ(kernelMode(), KernelMode::Scalar);
    EXPECT_EQ(activeBackend(), Backend::Scalar);
}

TEST_F(DispatchTest, EnvironmentSelectsTheMode)
{
    ::setenv("BETTY_KERNELS", "auto", 1);
    resetKernelModeForTest();
    EXPECT_EQ(kernelMode(), KernelMode::Auto);

    ::setenv("BETTY_KERNELS", "avx2", 1);
    resetKernelModeForTest();
    EXPECT_EQ(kernelMode(), KernelMode::Avx2);
}

TEST_F(DispatchTest, MalformedEnvironmentValueIsFatal)
{
    ::setenv("BETTY_KERNELS", "turbo", 1);
    resetKernelModeForTest();
    EXPECT_DEATH(kernelMode(), "BETTY_KERNELS");
}

TEST_F(DispatchTest, ScalarModeNeverUsesAvx2)
{
    setCpuSupportsAvx2ForTest(1);
    setKernelMode(KernelMode::Scalar);
    EXPECT_EQ(activeBackend(), Backend::Scalar);
}

TEST_F(DispatchTest, Avx2ModeUsesAvx2WhenAvailable)
{
    if (!builtWithAvx2())
        GTEST_SKIP() << "binary built without AVX2 support";
    setCpuSupportsAvx2ForTest(1);
    setKernelMode(KernelMode::Avx2);
    EXPECT_EQ(activeBackend(), Backend::Avx2);
}

TEST_F(DispatchTest, Avx2ModeFallsBackOnceWhenCpuLacksAvx2)
{
    // Pretend the CPU has no AVX2/FMA: the request degrades to the
    // scalar reference with exactly one fallback tally per
    // resolution, not one per kernel call (the backend is cached).
    setCpuSupportsAvx2ForTest(0);
    setKernelMode(KernelMode::Avx2);
    const int64_t before = dispatchFallbackCount();
    EXPECT_EQ(activeBackend(), Backend::Scalar);
    EXPECT_EQ(dispatchFallbackCount(), before + 1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(activeBackend(), Backend::Scalar);
    EXPECT_EQ(dispatchFallbackCount(), before + 1);
}

TEST_F(DispatchTest, AutoPicksByCpuCapability)
{
    setCpuSupportsAvx2ForTest(0);
    setKernelMode(KernelMode::Auto);
    const int64_t before = dispatchFallbackCount();
    EXPECT_EQ(activeBackend(), Backend::Scalar);
    // auto degrades silently: no fallback is counted.
    EXPECT_EQ(dispatchFallbackCount(), before);

    if (builtWithAvx2()) {
        setCpuSupportsAvx2ForTest(1);
        setKernelMode(KernelMode::Auto);
        EXPECT_EQ(activeBackend(), Backend::Avx2);
    }
}

TEST_F(DispatchTest, SetKernelModeReResolvesTheBackend)
{
    if (!builtWithAvx2())
        GTEST_SKIP() << "binary built without AVX2 support";
    setCpuSupportsAvx2ForTest(1);
    setKernelMode(KernelMode::Avx2);
    EXPECT_EQ(activeBackend(), Backend::Avx2);
    setKernelMode(KernelMode::Scalar);
    EXPECT_EQ(activeBackend(), Backend::Scalar);
    setKernelMode(KernelMode::Auto);
    EXPECT_EQ(activeBackend(), Backend::Avx2);
}

TEST_F(DispatchTest, CpuOverrideRestores)
{
    const bool real = []() {
        setCpuSupportsAvx2ForTest(-1);
        return cpuSupportsAvx2();
    }();
    setCpuSupportsAvx2ForTest(0);
    EXPECT_FALSE(cpuSupportsAvx2());
    setCpuSupportsAvx2ForTest(1);
    EXPECT_TRUE(cpuSupportsAvx2());
    setCpuSupportsAvx2ForTest(-1);
    EXPECT_EQ(cpuSupportsAvx2(), real);
}

} // namespace
} // namespace betty::kernels
