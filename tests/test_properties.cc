/**
 * @file
 * Cross-cutting property sweeps that tie the subsystems together:
 * estimator-vs-measured accuracy for every aggregator and depth,
 * micro-batch edge conservation for every partitioner, and
 * determinism of the full pipeline.
 */
#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "core/betty.h"
#include "data/catalog.h"
#include "sampling/neighbor_sampler.h"
#include "train/trainer.h"

namespace betty {
namespace {

struct Env
{
    Env()
        : dataset(loadCatalogDataset("arxiv_like", 0.05, 51)),
          sampler(dataset.graph, {4, 6}, 52)
    {
        std::vector<int64_t> seeds(dataset.trainNodes.begin(),
                                   dataset.trainNodes.begin() + 120);
        full = sampler.sample(seeds);
    }

    Dataset dataset;
    NeighborSampler sampler;
    MultiLayerBatch full;
};

/**
 * Property: for every aggregator and depth, the analytical estimate
 * of peak memory stays within the paper's 8% band of the
 * byte-accurate measurement (ours lands ~1%).
 */
class EstimatorSweep
    : public ::testing::TestWithParam<
          std::tuple<AggregatorKind, int64_t>>
{
};

TEST_P(EstimatorSweep, WithinPaperErrorBand)
{
    const auto [agg, layers] = GetParam();
    const auto ds = loadCatalogDataset("arxiv_like", 0.05, 53);
    std::vector<int64_t> fanouts;
    for (int64_t l = 0; l < layers; ++l)
        fanouts.push_back(3 + l);
    NeighborSampler sampler(ds.graph, fanouts, 54);
    std::vector<int64_t> seeds(ds.trainNodes.begin(),
                               ds.trainNodes.begin() + 80);
    const auto full = sampler.sample(seeds);

    DeviceMemoryModel device;
    DeviceMemoryModel::Scope scope(device);
    SageConfig cfg;
    cfg.inputDim = ds.featureDim();
    cfg.hiddenDim = 16;
    cfg.numClasses = ds.numClasses;
    cfg.numLayers = layers;
    cfg.aggregator = agg;
    GraphSage model(cfg);
    Adam adam(model.parameters(), 0.01f);
    Trainer trainer(ds, model, adam, &device);

    const auto est = estimateBatchMemory(full, model.memorySpec());
    const auto stats = trainer.trainMicroBatches({full});
    const double err =
        std::abs(double(est.peak) - double(stats.peakBytes)) /
        double(stats.peakBytes);
    EXPECT_LT(err, 0.08) << aggregatorName(agg) << " x " << layers
                         << " layers: est " << est.peak
                         << " measured " << stats.peakBytes;
}

INSTANTIATE_TEST_SUITE_P(
    AggTimesDepth, EstimatorSweep,
    ::testing::Combine(::testing::Values(AggregatorKind::Mean,
                                         AggregatorKind::Sum,
                                         AggregatorKind::Pool,
                                         AggregatorKind::Lstm),
                       ::testing::Values(int64_t(1), int64_t(2),
                                         int64_t(3))));

/**
 * Property: the GAT (attention) estimator also stays within the
 * paper's 8% band, for every head count.
 */
class GatEstimatorSweep : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(GatEstimatorSweep, WithinPaperErrorBand)
{
    const int64_t heads = GetParam();
    const auto ds = loadCatalogDataset("arxiv_like", 0.05, 55);
    NeighborSampler sampler(ds.graph, {5, 8}, 56);
    std::vector<int64_t> seeds(ds.trainNodes.begin(),
                               ds.trainNodes.begin() + 150);
    const auto full = sampler.sample(seeds);

    DeviceMemoryModel device;
    DeviceMemoryModel::Scope scope(device);
    GatConfig cfg;
    cfg.inputDim = ds.featureDim();
    cfg.hiddenDim = 16;
    cfg.numClasses = ds.numClasses;
    cfg.numLayers = 2;
    cfg.numHeads = heads;
    Gat model(cfg);
    Adam adam(model.parameters(), 0.01f);
    Trainer trainer(ds, model, adam, &device);

    const auto est = estimateBatchMemory(full, model.memorySpec());
    EXPECT_EQ(model.memorySpec().aggregator,
              AggregatorKind::Attention);
    const auto stats = trainer.trainMicroBatches({full});
    const double err =
        std::abs(double(est.peak) - double(stats.peakBytes)) /
        double(stats.peakBytes);
    EXPECT_LT(err, 0.08) << heads << " heads: est " << est.peak
                         << " measured " << stats.peakBytes;
}

INSTANTIATE_TEST_SUITE_P(Heads, GatEstimatorSweep,
                         ::testing::Values(int64_t(1), int64_t(2),
                                           int64_t(4)));

/**
 * Property: for every partitioner and K, micro-batches conserve the
 * full batch's output-layer edges exactly (disjoint destinations,
 * identical per-destination edge lists) — the precondition of
 * gradient equivalence.
 */
class ConservationSweep
    : public ::testing::TestWithParam<std::tuple<int32_t, int32_t>>
{
};

TEST_P(ConservationSweep, EdgesConserved)
{
    const auto [which, k] = GetParam();
    Env env;
    std::unique_ptr<OutputPartitioner> part;
    switch (which) {
      case 0:
        part = std::make_unique<RangePartitioner>();
        break;
      case 1:
        part = std::make_unique<RandomPartitioner>(7);
        break;
      case 2:
        part = std::make_unique<MetisBaselinePartitioner>(
            env.dataset.graph);
        break;
      default:
        part = std::make_unique<BettyPartitioner>();
        break;
    }
    const auto micros = extractMicroBatches(
        env.full, part->partition(env.full, k));

    int64_t outputs = 0, outer_edges = 0;
    for (const auto& micro : micros) {
        outputs += int64_t(micro.outputNodes().size());
        outer_edges += micro.blocks.back().numEdges();
    }
    EXPECT_EQ(outputs, int64_t(env.full.outputNodes().size()));
    EXPECT_EQ(outer_edges, env.full.blocks.back().numEdges());
    EXPECT_GE(inputNodeRedundancy(env.full, micros), 0);
}

INSTANTIATE_TEST_SUITE_P(
    PartitionerTimesK, ConservationSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(2, 5, 16, 64)));

/** Property: the whole pipeline is deterministic given its seeds. */
TEST(PipelineDeterminism, SamePlanTwice)
{
    auto run = [] {
        const auto ds = loadCatalogDataset("pubmed_like", 0.05, 61);
        NeighborSampler sampler(ds.graph, {4, 6}, 62);
        std::vector<int64_t> seeds(ds.trainNodes.begin(),
                                   ds.trainNodes.begin() + 100);
        const auto full = sampler.sample(seeds);
        BettyPartitioner part;
        return part.partition(full, 6);
    };
    EXPECT_EQ(run(), run());
}

TEST(PipelineDeterminism, TrainingLossBitStable)
{
    auto run = [] {
        const auto ds = loadCatalogDataset("cora_like", 0.1, 63);
        NeighborSampler sampler(ds.graph, {4, 6}, 64);
        std::vector<int64_t> seeds(ds.trainNodes.begin(),
                                   ds.trainNodes.begin() + 80);
        const auto full = sampler.sample(seeds);
        SageConfig cfg;
        cfg.inputDim = ds.featureDim();
        cfg.hiddenDim = 8;
        cfg.numClasses = ds.numClasses;
        cfg.numLayers = 2;
        GraphSage model(cfg);
        Adam adam(model.parameters(), 0.01f);
        Trainer trainer(ds, model, adam);
        double loss = 0.0;
        for (int epoch = 0; epoch < 3; ++epoch)
            loss = trainer.trainMicroBatches({full}).loss;
        return loss;
    };
    EXPECT_EQ(run(), run());
}

/** Property: planner K is non-decreasing in batch size. */
TEST(PlannerMonotonicity, KGrowsWithBatch)
{
    const auto ds = loadCatalogDataset("arxiv_like", 0.1, 65);
    NeighborSampler sampler(ds.graph, {4, 6}, 66);
    GnnSpec spec;
    spec.inputDim = ds.featureDim();
    spec.hiddenDim = 32;
    spec.numClasses = ds.numClasses;
    spec.numLayers = 2;
    spec.paramCountGnn = 20000;

    BettyPartitioner part;
    int32_t previous_k = 0;
    int64_t budget = 0;
    for (size_t batch_size : {100, 300, 600}) {
        std::vector<int64_t> seeds(
            ds.trainNodes.begin(),
            ds.trainNodes.begin() + int64_t(batch_size));
        const auto full = sampler.sample(seeds);
        if (budget == 0)
            budget = estimateBatchMemory(full, spec).peak * 2 / 3;
        MemoryAwarePlanner planner(spec, budget);
        const auto plan = planner.plan(full, part);
        ASSERT_TRUE(plan.fits);
        EXPECT_GE(plan.k, previous_k) << batch_size;
        previous_k = plan.k;
    }
}

/** Property: in-degree buckets of a block partition its dsts. */
TEST(BucketProperty, BucketsPartitionDestinations)
{
    Env env;
    for (const auto& block : env.full.blocks) {
        for (int64_t max_bucket : {1, 3, 10}) {
            const auto buckets = block.degreeBuckets(max_bucket);
            int64_t total = 0;
            for (const auto& bucket : buckets)
                total += int64_t(bucket.size());
            EXPECT_EQ(total, block.numDst());
        }
    }
}

/** Property: estimator peak decomposes into its components. */
TEST(EstimatorProperty, PeakIsAtLeastComponentSum)
{
    Env env;
    GnnSpec spec;
    spec.inputDim = env.dataset.featureDim();
    spec.hiddenDim = 16;
    spec.numClasses = env.dataset.numClasses;
    spec.numLayers = 2;
    spec.paramCountGnn = 10000;
    const auto est = estimateBatchMemory(env.full, spec);
    const int64_t component_sum =
        est.parameters + est.inputFeatures + est.labels + est.blocks +
        est.hidden + est.aggregator + est.gradients +
        est.optimizerStates;
    EXPECT_GE(est.peak, component_sum)
        << "peak must include backward buffers on top";
}

} // namespace
} // namespace betty
