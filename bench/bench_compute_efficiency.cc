/**
 * @file
 * Figure 15 and the §6.4 headline numbers: computation efficiency
 * (total nodes processed across all micro-batches divided by epoch
 * time) vs the number of batches, for all four partitioners.
 *
 * The paper's point: although redundancy adds nodes, Betty's
 * efficiency stays flat and matches full-batch training — the extra
 * time is proportional to the extra nodes, not worse.
 */
#include <cstdio>
#include <map>

#include "bench_common.h"

int
main()
{
    using namespace betty;
    using namespace betty::benchutil;

    std::printf("Figure 15: computation efficiency (nodes/s) vs "
                "#batches, 3-layer SAGE + Mean, products_like\n");
    const auto ds = loadBenchDataset("products_like", 1.0);
    NeighborSampler sampler(ds.graph, {10, 15, 20}, 7);
    std::vector<int64_t> seeds(
        ds.trainNodes.begin(),
        ds.trainNodes.begin() +
            std::min<size_t>(ds.trainNodes.size(), 512));
    const auto full = sampler.sample(seeds);

    SageConfig cfg;
    cfg.inputDim = ds.featureDim();
    cfg.hiddenDim = 32;
    cfg.numClasses = ds.numClasses;
    cfg.numLayers = 3;
    cfg.seed = 3;

    TablePrinter table("nodes processed per second");
    table.setHeader(
        {"K", "range", "random", "metis", "betty"});
    std::map<std::string, std::vector<double>> efficiency;
    for (int32_t k : {1, 2, 4, 8, 16, 32}) {
        std::vector<std::string> row = {std::to_string(k)};
        for (const auto& pname : partitionerNames()) {
            auto part = makePartitioner(pname, ds.graph);
            const auto micros =
                extractMicroBatches(full, part->partition(full, k));
            GraphSage model(cfg);
            Adam adam(model.parameters(), 0.01f);
            TransferModel transfer;
            Trainer trainer(ds, model, adam, nullptr, &transfer);
            // Three repetitions; keep the fastest compute time (the
            // usual noise-robust estimator for single-core timing)
            // and the deterministic simulated transfer time. Epoch
            // time includes the transfer: loading duplicated features
            // is a first-order cost on the paper's testbed, and it is
            // exactly the cost redundancy inflates.
            EpochStats stats;
            double best_compute = 1e30;
            for (int rep = 0; rep < 3; ++rep) {
                stats = trainer.trainMicroBatches(micros);
                best_compute =
                    std::min(best_compute, stats.computeSeconds);
            }
            const double eff = double(stats.totalNodesProcessed) /
                               (best_compute + stats.transferSeconds);
            efficiency[pname].push_back(eff);
            row.push_back(TablePrinter::num(eff / 1e3, 1) + "k");
        }
        table.addRow(row);
    }
    table.print();

    // §6.4: Betty's efficiency advantage averaged over K.
    auto mean = [](const std::vector<double>& v) {
        double acc = 0.0;
        for (double x : v)
            acc += x;
        return acc / double(v.size());
    };
    const double betty_eff = mean(efficiency["betty"]);
    std::printf("\nBetty mean-efficiency delta: vs metis %+.1f%%, "
                "vs range %+.1f%%, vs random %+.1f%%\n",
                100.0 * (betty_eff / mean(efficiency["metis"]) - 1.0),
                100.0 * (betty_eff / mean(efficiency["range"]) - 1.0),
                100.0 * (betty_eff / mean(efficiency["random"]) - 1.0));
    std::printf(
        "Shape target (paper §6.4): Betty's efficiency stays in the "
        "same band as full-batch training as K grows — it does not "
        "unproportionally increase training time. Reproduced here as "
        "partitioner deltas within noise on a CPU substrate; the "
        "paper's additional +20.6/21.1/22.9%% lead over "
        "metis/range/random is a GPU-utilization effect with no CPU "
        "analog — the underlying advantage (fewer nodes, less time) "
        "is what Figures 14 and 16 measure directly.\n");
    return 0;
}
