/**
 * @file
 * Figure 3 + Table 3: where the memory goes in one GNN training step,
 * predicted vs. measured.
 *
 * The paper's breakdown (1-layer GraphSAGE, Mean, ogbn-products,
 * fanout 10, hidden 64) found input node features the largest share
 * (~55%). We print the analytical estimator's per-component figures
 * side-by-side with the byte-accurate device model's per-category
 * peaks from one real training step, so the table doubles as a
 * Table 3 predicted-vs-actual check.
 */
#include <cstdio>

#include "bench_common.h"
#include "memory/estimator.h"
#include "obs/memprof.h"

int
main()
{
    using namespace betty;
    using namespace betty::benchutil;

    std::printf("Figure 3: memory breakdown, 1-layer SAGE + Mean, "
                "products_like, fanout 10, hidden 64\n");
    // A 1024-seed batch on a graph large enough that the sampled
    // neighborhood expands ~10x — the paper's operating point (on a
    // saturated tiny graph the input set collapses to the whole graph
    // and the breakdown shifts).
    const auto ds = loadBenchDataset("products_like", 0.5);

    NeighborSampler sampler(ds.graph, {10}, 7);
    std::vector<int64_t> seeds(
        ds.trainNodes.begin(),
        ds.trainNodes.begin() +
            std::min<size_t>(ds.trainNodes.size(), 1024));
    const auto full = sampler.sample(seeds);

    // Build the model and optimizer UNDER the device scope so their
    // parameter/state allocations are measured in the right category,
    // matching where they live in GPU training.
    DeviceMemoryModel device;
    DeviceMemoryModel::Scope scope(device);
    SageConfig cfg;
    cfg.inputDim = ds.featureDim();
    cfg.hiddenDim = 64;
    cfg.numClasses = ds.numClasses;
    cfg.numLayers = 1;
    cfg.aggregator = AggregatorKind::Mean;
    GraphSage model(cfg);
    Adam adam(model.parameters(), 0.01f);
    TransferModel transfer;
    Trainer trainer(ds, model, adam, &device, &transfer);

    const auto est = estimateBatchMemory(full, model.memorySpec());
    const double total = double(est.peak);

    // One real training step: the device model's per-category window
    // peaks now hold the measured side of Table 3.
    trainer.trainMicroBatches({full});

    TablePrinter table(
        "memory breakdown (full batch, predicted vs measured)");
    table.setHeader({"component", "est_MiB", "share_%", "meas_MiB",
                     "residual_%"});
    auto row = [&](const std::string& name, obs::MemCategory cat) {
        const int64_t predicted = componentBytes(est, cat);
        const int64_t measured = device.windowPeakBytes(cat);
        const double residual =
            measured > 0
                ? 100.0 * double(predicted - measured) /
                      double(measured)
                : 0.0;
        table.addRow(
            {name, TablePrinter::num(toMiB(predicted), 2),
             TablePrinter::num(100.0 * double(predicted) / total, 1),
             TablePrinter::num(toMiB(measured), 2),
             TablePrinter::num(residual, 1)});
    };
    row("input node features", obs::MemCategory::InputFeatures);
    row("output node labels", obs::MemCategory::Labels);
    row("edges (blocks)", obs::MemCategory::Blocks);
    row("hidden layer output", obs::MemCategory::Hidden);
    row("aggregator intermediates", obs::MemCategory::Aggregator);
    row("model parameters", obs::MemCategory::Parameters);
    row("gradients (+backward buffers)", obs::MemCategory::Gradients);
    row("optimizer states", obs::MemCategory::OptimizerState);
    table.addRow({"total peak", TablePrinter::num(toMiB(est.peak), 2),
                  "100.0",
                  TablePrinter::num(toMiB(device.peakBytes()), 2),
                  TablePrinter::num(
                      100.0 *
                          double(est.peak - device.peakBytes()) /
                          double(device.peakBytes()),
                      1)});
    table.print();

    std::printf("\nShape target: input node features are the largest "
                "single component (paper: ~55%% on the real "
                "ogbn-products).\n");
    return 0;
}
