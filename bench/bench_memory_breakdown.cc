/**
 * @file
 * Figure 3: where the memory goes in one GNN training step.
 *
 * The paper's breakdown (1-layer GraphSAGE, Mean, ogbn-products,
 * fanout 10, hidden 64) found input node features the largest share
 * (~55%). We reproduce the breakdown from the analytical estimator
 * (whose totals the test suite validates against the byte-accurate
 * device model to within ~1%).
 */
#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace betty;
    using namespace betty::benchutil;

    std::printf("Figure 3: memory breakdown, 1-layer SAGE + Mean, "
                "products_like, fanout 10, hidden 64\n");
    // A 1024-seed batch on a graph large enough that the sampled
    // neighborhood expands ~10x — the paper's operating point (on a
    // saturated tiny graph the input set collapses to the whole graph
    // and the breakdown shifts).
    const auto ds = loadBenchDataset("products_like", 0.5);

    NeighborSampler sampler(ds.graph, {10}, 7);
    std::vector<int64_t> seeds(
        ds.trainNodes.begin(),
        ds.trainNodes.begin() +
            std::min<size_t>(ds.trainNodes.size(), 1024));
    const auto full = sampler.sample(seeds);

    SageConfig cfg;
    cfg.inputDim = ds.featureDim();
    cfg.hiddenDim = 64;
    cfg.numClasses = ds.numClasses;
    cfg.numLayers = 1;
    cfg.aggregator = AggregatorKind::Mean;
    GraphSage model(cfg);

    const auto est = estimateBatchMemory(full, model.memorySpec());
    const double total = double(est.peak);

    TablePrinter table("memory breakdown (full batch)");
    table.setHeader({"component", "MiB", "share_%"});
    auto row = [&](const std::string& name, int64_t bytes) {
        table.addRow({name, TablePrinter::num(toMiB(bytes), 2),
                      TablePrinter::num(100.0 * double(bytes) / total,
                                        1)});
    };
    row("input node features", est.inputFeatures);
    row("output node labels", est.labels);
    row("edges (blocks)", est.blocks);
    row("hidden layer output", est.hidden);
    row("aggregator intermediates", est.aggregator);
    row("model parameters", est.parameters);
    row("gradients", est.gradients);
    row("optimizer states", est.optimizerStates);
    const int64_t accounted =
        est.inputFeatures + est.labels + est.blocks + est.hidden +
        est.aggregator + est.parameters + est.gradients +
        est.optimizerStates;
    row("backward buffers (rest)", est.peak - accounted);
    table.print();

    std::printf("\nShape target: input node features are the largest "
                "single component (paper: ~55%% on the real "
                "ogbn-products).\n");
    return 0;
}
