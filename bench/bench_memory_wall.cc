/**
 * @file
 * Figures 2 and 10: the GNN memory capacity wall, and Betty breaking
 * it.
 *
 * Four sweeps on the products-like dataset mirror Figure 2's panels:
 * (a) aggregator type, (b) number of SAGE layers, (c) hidden size,
 * (d) fanout with the LSTM aggregator. For each configuration we
 * report the estimated full-batch peak, whether it exceeds the
 * simulated device capacity (the paper's OOM), and — the Figure 10
 * half — the number of micro-batches Betty's memory-aware planner
 * chooses to make the run fit.
 */
#include <cstdio>

#include "bench_common.h"

namespace betty {
namespace {

using benchutil::toGiB;

struct Row
{
    std::string label;
    SageConfig config;
    std::vector<int64_t> fanouts;
};

void
runPanel(const std::string& title, const Dataset& ds,
         const std::vector<Row>& rows, int64_t capacity)
{
    TablePrinter table(title);
    table.setHeader({"config", "est_full_GiB", "full_batch",
                     "betty_K", "betty_maxGiB"});
    for (const Row& row : rows) {
        NeighborSampler sampler(ds.graph, row.fanouts, 7);
        // A 4096-seed batch: sparse enough that the receptive field
        // multiplies per layer instead of saturating the graph.
        std::vector<int64_t> seeds(
            ds.trainNodes.begin(),
            ds.trainNodes.begin() +
                std::min<size_t>(ds.trainNodes.size(), 4096));
        const auto full = sampler.sample(seeds);
        GraphSage model(row.config);
        const auto spec = model.memorySpec();
        const auto est = estimateBatchMemory(full, spec);

        BettyConfig config;
        config.deviceCapacityBytes = capacity;
        Betty betty(spec, config);
        const auto plan = betty.planFast(full);

        table.addRow({row.label, TablePrinter::num(toGiB(est.peak), 3),
                      est.peak > capacity ? "OOM" : "fits",
                      plan.fits ? std::to_string(plan.k) : "none",
                      TablePrinter::num(toGiB(plan.maxEstimatedPeak),
                                        3)});
    }
    table.print();
}

} // namespace
} // namespace betty

int
main()
{
    using namespace betty;
    using namespace betty::benchutil;

    const int64_t capacity = deviceCapacityBytes();
    std::printf("Figures 2 + 10: memory wall on products_like; "
                "simulated device = %.2f GiB\n",
                toGiB(capacity));
    const auto ds = loadBenchDataset("products_like", 0.3);
    std::printf("dataset: %lld nodes, %lld edges, %lld train seeds\n",
                (long long)ds.numNodes(), (long long)ds.numEdges(),
                (long long)ds.trainNodes.size());

    auto base = [&](AggregatorKind agg, int64_t layers,
                    int64_t hidden) {
        SageConfig cfg;
        cfg.inputDim = ds.featureDim();
        cfg.hiddenDim = hidden;
        cfg.numClasses = ds.numClasses;
        cfg.numLayers = layers;
        cfg.aggregator = agg;
        return cfg;
    };

    // (a) Aggregators, 2 layers, fanout (10, 25) scaled to (5, 12).
    {
        std::vector<Row> rows;
        for (auto agg : {AggregatorKind::Mean, AggregatorKind::Sum,
                         AggregatorKind::Pool, AggregatorKind::Lstm})
            rows.push_back({aggregatorName(agg), base(agg, 2, 64),
                            {5, 12}});
        runPanel("(a) aggregator sweep (2-layer SAGE, hidden 64)", ds,
                 rows, capacity);
    }

    // (b) Depth 1-5, Mean, fanouts (10,25,30,40) scaled to
    // (5,12,15,20) plus a 5th layer.
    {
        const std::vector<int64_t> all_fanouts = {5, 12, 15, 20, 20};
        std::vector<Row> rows;
        for (int64_t layers = 1; layers <= 5; ++layers) {
            std::vector<int64_t> fanouts(
                all_fanouts.begin(), all_fanouts.begin() + layers);
            rows.push_back({std::to_string(layers) + "-layer",
                            base(AggregatorKind::Mean, layers, 64),
                            fanouts});
        }
        runPanel("(b) depth sweep (Mean, hidden 64)", ds, rows,
                 capacity);
    }

    // (c) Hidden size sweep, Mean, 4 layers.
    {
        std::vector<Row> rows;
        for (int64_t hidden : {32, 64, 128, 256, 512})
            rows.push_back({"hidden " + std::to_string(hidden),
                            base(AggregatorKind::Mean, 4, hidden),
                            {5, 12, 15, 20}});
        runPanel("(c) hidden-size sweep (Mean, 4 layers)", ds, rows,
                 capacity);
    }

    // (d) Fanout sweep, 1-layer LSTM (the paper's 10 -> 800 becomes
    // 5 -> 100; the graph caps the effective degree).
    {
        std::vector<Row> rows;
        for (int64_t fanout : {5, 10, 25, 100})
            rows.push_back({"fanout " + std::to_string(fanout),
                            base(AggregatorKind::Lstm, 1, 64),
                            {fanout}});
        runPanel("(d) fanout sweep (1-layer LSTM)", ds, rows, capacity);
    }

    std::printf("\nShape targets: LSTM >> pool/sum/mean in (a); "
                "near-exponential growth with depth in (b); growth "
                "with hidden in (c) and fanout in (d); Betty finds a "
                "finite K for every OOM row (Figure 10).\n");
    return 0;
}
