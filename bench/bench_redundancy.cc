/**
 * @file
 * Figure 16: input-node redundancy vs the number of batches, for all
 * four partitioners (3-layer SAGE configuration of the paper).
 *
 * Redundancy = sum over micro-batches of first-layer input nodes
 * minus the full batch's input nodes: every extra count is a feature
 * vector loaded, transferred and aggregated more than once.
 */
#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace betty;
    using namespace betty::benchutil;

    std::printf("Figure 16: input-node redundancy vs #batches, "
                "3-layer SAGE, products_like\n");
    const auto ds = loadBenchDataset("products_like", 1.0);
    NeighborSampler sampler(ds.graph, {10, 15, 20}, 7);
    std::vector<int64_t> seeds(
        ds.trainNodes.begin(),
        ds.trainNodes.begin() +
            std::min<size_t>(ds.trainNodes.size(), 512));
    const auto full = sampler.sample(seeds);
    std::printf("full batch: %lld input nodes, %lld edges\n",
                (long long)full.inputNodes().size(),
                (long long)full.totalEdges());

    TablePrinter table("redundant input nodes");
    table.setHeader({"K", "range", "random", "metis", "betty",
                     "betty_saving_%"});
    for (int32_t k : {2, 4, 8, 16, 32, 64}) {
        std::vector<std::string> row = {std::to_string(k)};
        int64_t betty_red = 0, best_other = -1;
        for (const auto& pname : partitionerNames()) {
            auto part = makePartitioner(pname, ds.graph);
            const int64_t red = inputNodeRedundancy(
                full,
                extractMicroBatches(full, part->partition(full, k)));
            row.push_back(TablePrinter::count(red));
            if (pname == "betty")
                betty_red = red;
            else if (best_other < 0 || red < best_other)
                best_other = red;
        }
        row.push_back(TablePrinter::num(
            100.0 * (1.0 - double(betty_red) / double(best_other)),
            1));
        table.addRow(row);
    }
    table.print();

    std::printf("\nShape targets: betty has the smallest redundancy "
                "in every row, with the advantage growing with K "
                "(paper: up to 49.2%% fewer redundant nodes, 28.4%% "
                "on average).\n");
    return 0;
}
