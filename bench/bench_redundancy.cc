/**
 * @file
 * Figure 16: input-node redundancy vs the number of batches, for all
 * four partitioners (3-layer SAGE configuration of the paper).
 *
 * Redundancy = sum over micro-batches of first-layer input nodes
 * minus the full batch's input nodes: every extra count is a feature
 * vector loaded, transferred and aggregated more than once.
 */
#include <cstdio>

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace betty;
    using namespace betty::benchutil;
    ObsSession obs("bench_redundancy", &argc, argv);

    std::printf("Figure 16: input-node redundancy vs #batches, "
                "3-layer SAGE, products_like\n");
    const auto ds = loadBenchDataset("products_like", 1.0);
    NeighborSampler sampler(ds.graph, {10, 15, 20}, 7);
    std::vector<int64_t> seeds(
        ds.trainNodes.begin(),
        ds.trainNodes.begin() +
            std::min<size_t>(ds.trainNodes.size(), 512));
    const auto full = sampler.sample(seeds);
    std::printf("full batch: %lld input nodes, %lld edges\n",
                (long long)full.inputNodes().size(),
                (long long)full.totalEdges());

    TablePrinter table("redundant input nodes");
    table.setHeader({"K", "range", "random", "metis", "betty",
                     "betty_saving_%"});
    for (int32_t k : {2, 4, 8, 16, 32, 64}) {
        std::vector<std::string> row = {std::to_string(k)};
        int64_t betty_red = 0, best_other = -1;
        for (const auto& pname : partitionerNames()) {
            auto part = makePartitioner(pname, ds.graph);
            const int64_t red = inputNodeRedundancy(
                full,
                extractMicroBatches(full, part->partition(full, k)));
            row.push_back(TablePrinter::count(red));
            if (pname == "betty")
                betty_red = red;
            else if (best_other < 0 || red < best_other)
                best_other = red;
            obs.result(pname + ".k" + std::to_string(k) +
                           ".redundant_nodes",
                       double(red));
        }
        row.push_back(TablePrinter::num(
            100.0 * (1.0 - double(betty_red) / double(best_other)),
            1));
        table.addRow(row);
    }
    table.print();

    // What the residual redundancy costs in transfer bytes, and how
    // much a device-resident feature cache (docs/CACHING.md) claws
    // back: feed each micro-batch's input rows through a FeatureCache
    // for two epochs and count only the missed rows as transferred.
    // Pure accounting — cached and uncached training are bit-identical
    // in numerics (tests/test_feature_cache_equivalence.cc).
    {
        const int64_t row_bytes =
            ds.featureDim() * int64_t(sizeof(float));
        const int64_t cache_bytes = cacheCapacityBytes();
        const int epochs = 2;
        std::printf("\nfeature cache: %.3f GiB (%lld rows) on a "
                    "%.2f GiB device, policy %s\n",
                    toGiB(cache_bytes),
                    (long long)(cache_bytes / row_bytes),
                    toGiB(deviceCapacityBytes()),
                    cachePolicyName(cachePolicy()));
        TablePrinter table("transfer bytes with a feature cache "
                           "(betty partitioner, 2 epochs)");
        table.setHeader({"K", "uncached_mib", "cached_mib",
                         "saved_mib", "saved_%"});
        for (int32_t k : {2, 4, 8, 16, 32, 64}) {
            auto part = makePartitioner("betty", ds.graph);
            const auto micros =
                extractMicroBatches(full, part->partition(full, k));
            DeviceMemoryModel device(deviceCapacityBytes());
            FeatureCache cache(&device, cache_bytes, row_bytes,
                               cachePolicy());
            int64_t uncached = 0, cached = 0;
            for (int epoch = 0; epoch < epochs; ++epoch)
                for (const auto& micro : micros) {
                    const auto result =
                        cache.access(micro.inputNodes());
                    uncached += int64_t(micro.inputNodes().size()) *
                                row_bytes;
                    cached += result.misses * row_bytes;
                }
            table.addRow(
                {std::to_string(k), TablePrinter::num(toMiB(uncached), 2),
                 TablePrinter::num(toMiB(cached), 2),
                 TablePrinter::num(toMiB(uncached - cached), 2),
                 TablePrinter::num(
                     100.0 * (1.0 - double(cached) / double(uncached)),
                     1)});
        }
        table.print();
    }

    std::printf("\nShape targets: betty has the smallest redundancy "
                "in every row, with the advantage growing with K "
                "(paper: up to 49.2%% fewer redundant nodes, 28.4%% "
                "on average). With the default 0.05 GiB cache on the "
                "0.25 GiB device, saved_%% is >= 20 at every K: the "
                "second epoch re-reads rows the first inserted, and "
                "within an epoch the cache absorbs cross-micro-batch "
                "duplicates.\n");
    return 0;
}
