/**
 * @file
 * Figure 11: reduction of max per-micro-batch memory vs the range,
 * random and Metis partitioners, plus the §6.1 per-dataset summary.
 *
 * For each number of batches K, each partitioner splits the same
 * full batch; the peak device memory is set by the LARGEST
 * micro-batch, so the metric is max_k estimate(micro_k).
 */
#include <cstdio>

#include "bench_common.h"

namespace betty {
namespace {

using benchutil::makePartitioner;
using benchutil::partitionerNames;
using benchutil::toMiB;

/** Max per-micro-batch estimated peak for one partitioner at K. */
int64_t
maxMicroPeak(const MultiLayerBatch& full, OutputPartitioner& part,
             int32_t k, const GnnSpec& spec)
{
    const auto micros = extractMicroBatches(full, part.partition(full, k));
    int64_t worst = 0;
    for (const auto& micro : micros) {
        if (micro.outputNodes().empty())
            continue;
        worst = std::max(worst, estimateBatchMemory(micro, spec).peak);
    }
    return worst;
}

} // namespace
} // namespace betty

int
main()
{
    using namespace betty;
    using namespace betty::benchutil;

    std::printf("Figure 11: max memory vs partitioner, "
                "SAGE + Mean\n");

    // Main panel: products_like across batch counts.
    {
        const auto ds = loadBenchDataset("products_like", 1.0);
        NeighborSampler sampler(ds.graph, {5, 10}, 7);
        std::vector<int64_t> seeds(
            ds.trainNodes.begin(),
            ds.trainNodes.begin() +
                std::min<size_t>(ds.trainNodes.size(), 512));
        const auto full = sampler.sample(seeds);

        SageConfig cfg;
        cfg.inputDim = ds.featureDim();
        cfg.hiddenDim = 32;
        cfg.numClasses = ds.numClasses;
        cfg.numLayers = 2;
        GraphSage model(cfg);
        const auto spec = model.memorySpec();

        TablePrinter table(
            "products_like: max micro-batch memory (MiB) vs K");
        table.setHeader({"K", "range", "random", "metis", "betty",
                         "betty_vs_best_other_%"});
        for (int32_t k : {2, 4, 8, 16, 32}) {
            std::vector<std::string> row = {std::to_string(k)};
            int64_t best_other = 0, betty_peak = 0;
            for (const auto& name : partitionerNames()) {
                auto part = makePartitioner(name, ds.graph);
                const int64_t peak = maxMicroPeak(full, *part, k, spec);
                row.push_back(TablePrinter::num(toMiB(peak), 1));
                if (name == "betty")
                    betty_peak = peak;
                else if (best_other == 0 || peak < best_other)
                    best_other = peak;
            }
            row.push_back(TablePrinter::num(
                100.0 * (1.0 - double(betty_peak) /
                                   double(best_other)),
                1));
            table.addRow(row);
        }
        table.print();
    }

    // §6.1 summary: per-dataset reduction at K = 8.
    {
        TablePrinter table("per-dataset max-memory reduction vs best "
                           "baseline (K = 8)");
        table.setHeader({"dataset", "betty_MiB", "best_other_MiB",
                         "reduction_%"});
        // Full catalog scale; seeds stay a small fraction of each
        // graph so the receptive field does not saturate (the regime
        // where batch partitioning matters; see DESIGN.md).
        // Seed counts mirror the real datasets' labelled splits
        // (Planetoid trains on 140/60 nodes of Cora/Pubmed), keeping
        // receptive fields below saturation.
        const std::vector<std::tuple<std::string, double, size_t>>
            datasets = {{"cora_like", 1.0, 140},
                        {"pubmed_like", 1.0, 60},
                        {"reddit_like", 1.0, 100},
                        {"arxiv_like", 1.0, 400},
                        {"products_like", 1.0, 400}};
        for (const auto& [name, scale, seed_count] : datasets) {
            const auto ds = loadBenchDataset(name, scale);
            NeighborSampler sampler(ds.graph, {5, 10}, 7);
            std::vector<int64_t> seeds(
                ds.trainNodes.begin(),
                ds.trainNodes.begin() +
                    std::min(ds.trainNodes.size(), seed_count));
            const auto full = sampler.sample(seeds);

            SageConfig cfg;
            cfg.inputDim = ds.featureDim();
            cfg.hiddenDim = 32;
            cfg.numClasses = ds.numClasses;
            cfg.numLayers = 2;
            GraphSage model(cfg);
            const auto spec = model.memorySpec();

            int64_t betty_peak = 0, best_other = 0;
            for (const auto& pname : partitionerNames()) {
                auto part = makePartitioner(pname, ds.graph);
                const int64_t peak = maxMicroPeak(full, *part, 8, spec);
                if (pname == "betty")
                    betty_peak = peak;
                else if (best_other == 0 || peak < best_other)
                    best_other = peak;
            }
            table.addRow(
                {name, TablePrinter::num(toMiB(betty_peak), 1),
                 TablePrinter::num(toMiB(best_other), 1),
                 TablePrinter::num(
                     100.0 * (1.0 - double(betty_peak) /
                                        double(best_other)),
                     1)});
        }
        table.print();
    }

    std::printf(
        "\nShape targets: on the main panel betty's max memory is "
        "smallest or tied at every K. The paper's large per-dataset "
        "reductions (up to 48.3%%) come from redundancy dominating "
        "peak memory at billion-edge scale; at our scale the balance "
        "constraint equalizes most of the per-micro-batch memory, so "
        "per-dataset deltas are small — the redundancy mechanism "
        "itself is measured directly by bench_redundancy.\n");
    return 0;
}
