/**
 * @file
 * Table 5: test accuracy of full-batch training ("DGL") vs Betty's
 * micro-batch training, for GraphSAGE and GAT on all five datasets.
 *
 * Three seeds per cell give mean +- stddev, as the paper reports.
 * GAT is skipped on products_like, matching the paper ("GAT cannot
 * use the ogbn-product dataset").
 */
#include <cmath>
#include <cstdio>

#include "bench_common.h"

namespace betty {
namespace {

struct Cell
{
    double mean = 0.0;
    double stddev = 0.0;
};

Cell
statsOf(const std::vector<double>& values)
{
    double mean = 0.0;
    for (double v : values)
        mean += v;
    mean /= double(values.size());
    double var = 0.0;
    for (double v : values)
        var += (v - mean) * (v - mean);
    return {mean, std::sqrt(var / double(values.size()))};
}

std::string
fmt(const Cell& cell)
{
    return TablePrinter::num(100.0 * cell.mean, 2) + " +- " +
           TablePrinter::num(100.0 * cell.stddev, 2);
}

/** Train @p epochs and return final test accuracy. */
double
runOnce(const Dataset& ds, bool use_gat, bool micro_batch,
        uint64_t seed)
{
    NeighborSampler sampler(ds.graph, {5, 8}, seed);
    const auto full = sampler.sample(ds.trainNodes);
    NeighborSampler test_sampler(ds.graph, {5, 8}, seed + 100);
    const auto test_batch = test_sampler.sample(ds.testNodes);

    std::unique_ptr<GnnModel> model;
    if (use_gat) {
        GatConfig cfg;
        cfg.inputDim = ds.featureDim();
        cfg.hiddenDim = 8;
        cfg.numClasses = ds.numClasses;
        cfg.numLayers = 2;
        cfg.numHeads = 2;
        cfg.seed = seed;
        model = std::make_unique<Gat>(cfg);
    } else {
        SageConfig cfg;
        cfg.inputDim = ds.featureDim();
        cfg.hiddenDim = 16;
        cfg.numClasses = ds.numClasses;
        cfg.numLayers = 2;
        cfg.seed = seed;
        model = std::make_unique<GraphSage>(cfg);
    }
    Adam adam(model->parameters(), 0.01f);
    Trainer trainer(ds, *model, adam);

    std::vector<MultiLayerBatch> batches;
    if (micro_batch) {
        BettyPartitioner part;
        batches = extractMicroBatches(full, part.partition(full, 4));
    } else {
        batches.push_back(full);
    }
    for (int epoch = 0; epoch < 20; ++epoch)
        trainer.trainMicroBatches(batches);
    return trainer.evaluate(test_batch);
}

} // namespace
} // namespace betty

int
main()
{
    using namespace betty;
    using namespace betty::benchutil;

    std::printf("Table 5: full-batch (DGL) vs Betty micro-batch test "
                "accuracy, mean +- std over 3 seeds\n");

    const std::vector<std::pair<std::string, double>> datasets = {
        {"cora_like", 0.6},   {"pubmed_like", 0.25},
        {"reddit_like", 0.2}, {"arxiv_like", 0.15},
        {"products_like", 0.06}};

    TablePrinter table("Table 5 analog");
    table.setHeader({"dataset", "model", "full_acc_%", "betty_acc_%"});
    for (const auto& [name, scale] : datasets) {
        const auto ds = loadBenchDataset(name, scale);
        for (bool use_gat : {false, true}) {
            if (use_gat && name == "products_like")
                continue; // paper: GAT not run on ogbn-products
            std::vector<double> full_accs, micro_accs;
            for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
                full_accs.push_back(runOnce(ds, use_gat, false, seed));
                micro_accs.push_back(runOnce(ds, use_gat, true, seed));
            }
            table.addRow({name, use_gat ? "GAT" : "SAGE",
                          fmt(statsOf(full_accs)),
                          fmt(statsOf(micro_accs))});
        }
    }
    table.print();

    std::printf("\nShape target: per-row accuracies match within "
                "noise — micro-batch training is mathematically "
                "equivalent to full-batch (paper Table 5).\n");
    return 0;
}
