/**
 * @file
 * google-benchmark microbenchmarks of Betty's building blocks:
 * REG construction, K-way partitioning, neighbor sampling,
 * micro-batch extraction, and the memory estimator. These are the
 * components whose overhead the paper's future-work section proposes
 * to optimize.
 *
 * Also measures the observability subsystem itself: BM_*Disabled
 * pins down the cost instrumented hot paths pay when no collector is
 * active (the "one branch per span" guarantee — compare
 * BM_RegConstruction here against a pre-instrumentation build to see
 * the ≤1% end-to-end bound), and BM_*Enabled the cost when recording.
 *
 * Accepts --trace-out=FILE / --metrics-out=FILE (or BETTY_TRACE_OUT /
 * BETTY_METRICS_OUT) to export a trace/metrics snapshot of the bench
 * run itself; see benchutil::ObsSession.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace betty {
namespace {

const Dataset&
dataset()
{
    static Dataset ds = benchutil::loadBenchDataset("arxiv_like", 0.2);
    return ds;
}

const MultiLayerBatch&
fullBatch()
{
    static MultiLayerBatch batch = [] {
        NeighborSampler sampler(dataset().graph, {5, 8}, 7);
        std::vector<int64_t> seeds(
            dataset().trainNodes.begin(),
            dataset().trainNodes.begin() + 800);
        return sampler.sample(seeds);
    }();
    return batch;
}

void
BM_RegConstruction(benchmark::State& state)
{
    const auto& batch = fullBatch();
    for (auto _ : state) {
        auto reg = buildReg(batch.blocks.back());
        benchmark::DoNotOptimize(reg.numEdges());
    }
}
BENCHMARK(BM_RegConstruction);

void
BM_KwayPartition(benchmark::State& state)
{
    const auto reg = buildReg(fullBatch().blocks.back());
    KwayOptions opts;
    opts.k = int32_t(state.range(0));
    for (auto _ : state) {
        auto parts = kwayPartition(reg, opts);
        benchmark::DoNotOptimize(parts.data());
    }
}
BENCHMARK(BM_KwayPartition)->Arg(2)->Arg(8)->Arg(32);

void
BM_BettyPartition(benchmark::State& state)
{
    BettyPartitioner part;
    const auto& batch = fullBatch();
    for (auto _ : state) {
        auto groups = part.partition(batch, int32_t(state.range(0)));
        benchmark::DoNotOptimize(groups.size());
    }
}
BENCHMARK(BM_BettyPartition)->Arg(8);

void
BM_NeighborSampling(benchmark::State& state)
{
    NeighborSampler sampler(dataset().graph, {5, 8}, 7);
    std::vector<int64_t> seeds(dataset().trainNodes.begin(),
                               dataset().trainNodes.begin() + 800);
    for (auto _ : state) {
        auto batch = sampler.sample(seeds);
        benchmark::DoNotOptimize(batch.totalEdges());
    }
}
BENCHMARK(BM_NeighborSampling);

void
BM_MicroBatchExtraction(benchmark::State& state)
{
    BettyPartitioner part;
    const auto& batch = fullBatch();
    const auto groups = part.partition(batch, 8);
    for (auto _ : state) {
        auto micros = extractMicroBatches(batch, groups);
        benchmark::DoNotOptimize(micros.size());
    }
}
BENCHMARK(BM_MicroBatchExtraction);

void
BM_TraceSpanDisabled(benchmark::State& state)
{
    obs::Trace::setEnabled(false);
    for (auto _ : state) {
        BETTY_TRACE_SPAN("bench/disabled");
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_TraceSpanDisabled);

void
BM_TraceSpanEnabled(benchmark::State& state)
{
    obs::Trace::setEnabled(true);
    for (auto _ : state) {
        BETTY_TRACE_SPAN("bench/enabled");
        benchmark::ClobberMemory();
    }
    obs::Trace::setEnabled(false);
    obs::Trace::clear();
}
BENCHMARK(BM_TraceSpanEnabled);

void
BM_CounterDisabled(benchmark::State& state)
{
    obs::Metrics::setEnabled(false);
    obs::Counter& counter =
        obs::Metrics::counter("bench.disabled_counter");
    for (auto _ : state) {
        counter.add(1);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_CounterDisabled);

void
BM_CounterEnabled(benchmark::State& state)
{
    obs::Metrics::setEnabled(true);
    obs::Counter& counter =
        obs::Metrics::counter("bench.enabled_counter");
    for (auto _ : state) {
        counter.add(1);
        benchmark::ClobberMemory();
    }
    obs::Metrics::setEnabled(false);
    counter.reset();
}
BENCHMARK(BM_CounterEnabled);

void
BM_MemoryEstimate(benchmark::State& state)
{
    GnnSpec spec;
    spec.inputDim = dataset().featureDim();
    spec.hiddenDim = 64;
    spec.numClasses = dataset().numClasses;
    spec.numLayers = 2;
    spec.aggregator = AggregatorKind::Lstm;
    spec.paramCountGnn = 100000;
    spec.paramCountAgg = 30000;
    for (auto _ : state) {
        auto est = estimateBatchMemory(fullBatch(), spec);
        benchmark::DoNotOptimize(est.peak);
    }
}
BENCHMARK(BM_MemoryEstimate);

} // namespace
} // namespace betty

int
main(int argc, char** argv)
{
    // Strips --trace-out/--metrics-out before google-benchmark sees
    // them; writes the exports when main returns.
    betty::benchutil::ObsSession obs_session("bench_micro_kernels",
                                             &argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
