/**
 * @file
 * Microbenchmarks of Betty's building blocks, run under the
 * warmup+repeats discipline of obs/perf/bench_harness.h (the same
 * BenchRunner behind tools/betty_bench) and reported as one
 * schema-v1 BENCH_report.json.
 *
 * Two scenario families:
 *
 *  - Components: REG construction, K-way partitioning, neighbor
 *    sampling, micro-batch extraction, and the memory estimator —
 *    the pipeline stages whose overhead the paper's future-work
 *    section proposes to optimize.
 *  - Kernels (docs/KERNELS.md): the fused gather-aggregate, the
 *    cache-blocked GEMM variants, and the bump-arena allocator, each
 *    measured on BOTH dispatch backends. The run ends with an
 *    aligned scalar-vs-avx2 sweep table; the speedup column is the
 *    acceptance figure (>= 2x fused gather-aggregate, >= 1.5x GEMM).
 *    On hardware or builds without AVX2+FMA the avx2 rows fall back
 *    to scalar (kernels/dispatch.h) and the table says so.
 *
 *   bench_micro_kernels [--repeats=N] [--warmup=N] [--out=FILE]
 *                       [--trace-out=FILE] [--metrics-out=FILE]
 *                       [--json=FILE] [--threads=N]
 */
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "kernels/arena.h"
#include "kernels/dispatch.h"
#include "kernels/kernels.h"
#include "obs/perf/bench_harness.h"
#include "util/rng.h"
#include "util/timer.h"

namespace betty {
namespace {

const Dataset&
dataset()
{
    static Dataset ds = benchutil::loadBenchDataset("arxiv_like", 0.2);
    return ds;
}

const MultiLayerBatch&
fullBatch()
{
    static MultiLayerBatch batch = [] {
        NeighborSampler sampler(dataset().graph, {5, 8}, 7);
        std::vector<int64_t> seeds(
            dataset().trainNodes.begin(),
            dataset().trainNodes.begin() + 800);
        return sampler.sample(seeds);
    }();
    return batch;
}

/**
 * Per-scenario wall-clock samples recorded by this binary itself (in
 * addition to the runner's report) so the sweep table can print
 * scalar-vs-avx2 means without re-parsing the JSON.
 */
std::map<std::string, std::vector<double>> g_samples;

int32_t g_warmup = 1;

/** Mean of a scenario's measured (post-warmup) repeats, seconds. */
double
meanSeconds(const std::string& name)
{
    const auto it = g_samples.find(name);
    if (it == g_samples.end())
        return 0.0;
    const auto& all = it->second;
    const size_t skip = std::min(all.size(), size_t(g_warmup));
    double sum = 0.0;
    size_t n = 0;
    for (size_t i = skip; i < all.size(); ++i, ++n)
        sum += all[i];
    return n ? sum / double(n) : 0.0;
}

/** Wrap a workload so every repeat also lands in g_samples. */
obs::BenchScenario
timed(std::string name, std::string description,
      std::function<void()> setup, std::function<void()> fn,
      std::function<void()> teardown = nullptr)
{
    obs::BenchScenario scenario;
    scenario.name = name;
    scenario.description = std::move(description);
    scenario.setup = std::move(setup);
    scenario.run = [name, fn = std::move(fn)] {
        Timer timer;
        fn();
        g_samples[name].push_back(timer.seconds());
    };
    scenario.teardown = std::move(teardown);
    return scenario;
}

// ---------------------------------------------------------------
// Component scenarios (the paper's pipeline stages).

std::vector<obs::BenchScenario>
componentScenarios()
{
    std::vector<obs::BenchScenario> scenarios;

    scenarios.push_back(timed(
        "reg_construction",
        "REG build over the innermost block, arxiv_like",
        [] { fullBatch(); },
        [] {
            auto reg = buildReg(fullBatch().blocks.back());
            if (reg.numEdges() < 0)
                fatal("impossible REG");
        }));

    scenarios.push_back(timed(
        "kway_partition", "K-way REG partition at K=8",
        [] { fullBatch(); },
        [] {
            const auto reg = buildReg(fullBatch().blocks.back());
            KwayOptions opts;
            opts.k = 8;
            auto parts = kwayPartition(reg, opts);
            if (parts.empty())
                fatal("empty partition");
        }));

    scenarios.push_back(timed(
        "betty_partition",
        "full batch-level partitioning pipeline at K=8",
        [] { fullBatch(); },
        [] {
            BettyPartitioner partitioner;
            auto groups = partitioner.partition(fullBatch(), 8);
            if (groups.empty())
                fatal("empty groups");
        }));

    scenarios.push_back(timed(
        "neighbor_sampling",
        "multi-layer neighbour sampling, 800 seeds",
        [] { dataset(); },
        [] {
            NeighborSampler sampler(dataset().graph, {5, 8}, 7);
            std::vector<int64_t> seeds(
                dataset().trainNodes.begin(),
                dataset().trainNodes.begin() + 800);
            auto batch = sampler.sample(seeds);
            if (batch.totalEdges() == 0)
                fatal("empty batch");
        }));

    scenarios.push_back(timed(
        "micro_batch_extraction",
        "micro-batch extraction from the K=8 partition",
        [] { fullBatch(); },
        [] {
            BettyPartitioner partitioner;
            const auto groups = partitioner.partition(fullBatch(), 8);
            auto micros = extractMicroBatches(fullBatch(), groups);
            if (micros.empty())
                fatal("no micro-batches");
        }));

    scenarios.push_back(timed(
        "memory_estimate",
        "closed-form per-batch memory estimate (Table 3)",
        [] { fullBatch(); },
        [] {
            GnnSpec spec;
            spec.inputDim = dataset().featureDim();
            spec.hiddenDim = 64;
            spec.numClasses = dataset().numClasses;
            spec.numLayers = 2;
            spec.aggregator = AggregatorKind::Lstm;
            spec.paramCountGnn = 100000;
            spec.paramCountAgg = 30000;
            auto est = estimateBatchMemory(fullBatch(), spec);
            if (est.peak <= 0)
                fatal("impossible estimate");
        }));

    return scenarios;
}

// ---------------------------------------------------------------
// Kernel scenarios: each workload registered twice, once per
// dispatch backend, over identical inputs.

/** Synthetic CSR block sized like a first-layer REG micro-batch. */
struct GatherWork
{
    int64_t rows = 40000;
    int64_t cols = 64;
    int64_t segments = 8192;
    std::vector<float> x;
    std::vector<int64_t> sources;
    std::vector<int64_t> offsets;
    std::vector<float> out;

    void
    build()
    {
        if (!x.empty())
            return;
        Rng rng(1234);
        x.resize(size_t(rows * cols));
        for (auto& v : x)
            v = float(rng.uniformReal(-1.0, 1.0));
        offsets.push_back(0);
        for (int64_t s = 0; s < segments; ++s) {
            const int64_t degree = 2 + int64_t(rng.uniformInt(13));
            for (int64_t e = 0; e < degree; ++e)
                sources.push_back(int64_t(rng.uniformInt(
                    uint64_t(rows))));
            offsets.push_back(int64_t(sources.size()));
        }
        out.assign(size_t(segments * cols), 0.0f);
    }
};

GatherWork g_gather;

struct GemmWork
{
    int64_t m = 256, k = 64, n = 64;
    std::vector<float> a, b, c;

    void
    build()
    {
        if (!a.empty())
            return;
        Rng rng(99);
        a.resize(size_t(m * k));
        b.resize(size_t(k * n));
        c.resize(size_t(m * n));
        for (auto& v : a)
            v = float(rng.uniformReal(0.1, 1.0)); // no zero-skip
        for (auto& v : b)
            v = float(rng.uniformReal(-1.0, 1.0));
    }
};

GemmWork g_gemm;

/** Register one kernel workload under both backends. */
void
pushKernelPair(std::vector<obs::BenchScenario>* scenarios,
               const std::string& base,
               const std::string& description,
               std::function<void()> setup, std::function<void()> fn)
{
    for (const kernels::KernelMode mode :
         {kernels::KernelMode::Scalar, kernels::KernelMode::Avx2}) {
        const std::string name =
            base + "_" + kernels::kernelModeName(mode);
        scenarios->push_back(timed(
            name, description + " [" + kernels::kernelModeName(mode) +
                      " backend]",
            [setup, mode] {
                setup();
                kernels::setKernelMode(mode);
            },
            fn, [] {
                kernels::setKernelMode(kernels::KernelMode::Scalar);
            }));
    }
}

std::vector<obs::BenchScenario>
kernelScenarios()
{
    std::vector<obs::BenchScenario> scenarios;

    pushKernelPair(
        &scenarios, "gather_aggregate",
        "fused gather + mean-aggregate, 8192 segments x 64 features",
        [] { g_gather.build(); },
        [] {
            for (int iter = 0; iter < 10; ++iter)
                kernels::gatherAggregate(
                    g_gather.x.data(), g_gather.rows, g_gather.cols,
                    g_gather.sources.data(), g_gather.offsets.data(),
                    g_gather.segments, kernels::Reduce::Mean,
                    g_gather.out.data());
        });

    pushKernelPair(
        &scenarios, "gemm",
        "cache-blocked GEMM, 256x64 @ 64x64 (the SAGE layer shape)",
        [] { g_gemm.build(); },
        [] {
            for (int iter = 0; iter < 50; ++iter) {
                std::memset(g_gemm.c.data(), 0,
                            g_gemm.c.size() * sizeof(float));
                kernels::gemm(g_gemm.a.data(), g_gemm.b.data(),
                              g_gemm.c.data(), g_gemm.m, g_gemm.k,
                              g_gemm.n);
            }
        });

    pushKernelPair(
        &scenarios, "gemm_transb",
        "GEMM against a transposed weight (backward dX shape)",
        [] { g_gemm.build(); },
        [] {
            // b reinterpreted as n x k: same buffer, transposed walk.
            for (int iter = 0; iter < 50; ++iter) {
                std::memset(g_gemm.c.data(), 0,
                            g_gemm.c.size() * sizeof(float));
                kernels::gemmTransB(g_gemm.a.data(), g_gemm.b.data(),
                                    g_gemm.c.data(), g_gemm.m,
                                    g_gemm.k, g_gemm.n);
            }
        });

    // Allocation discipline: the arena's pointer-bump against the
    // same request stream on the general-purpose heap.
    const auto churn = [](auto alloc, auto finish) {
        for (int batch = 0; batch < 200; ++batch) {
            for (int i = 0; i < 100; ++i) {
                const int64_t bytes = 256 << (i % 9); // 256 B..64 KiB
                void* p = alloc(bytes);
                // Touch one line so the page is really there.
                *static_cast<char*>(p) = char(i);
            }
            finish();
        }
    };
    scenarios.push_back(timed(
        "alloc_churn_arena",
        "micro-batch allocation churn through the bump arena",
        nullptr, [churn] {
            kernels::Arena arena;
            churn([&](int64_t b) { return arena.allocate(b); },
                  [&] { arena.reset(); });
        }));
    scenarios.push_back(timed(
        "alloc_churn_heap",
        "identical allocation churn through operator new/delete",
        nullptr, [churn] {
            std::vector<void*> live;
            live.reserve(100);
            churn(
                [&](int64_t b) {
                    void* p = ::operator new(size_t(b));
                    live.push_back(p);
                    return p;
                },
                [&] {
                    for (void* p : live)
                        ::operator delete(p);
                    live.clear();
                });
        }));

    return scenarios;
}

void
printSweepTable()
{
    const bool avx2 = kernels::builtWithAvx2() &&
                      kernels::cpuSupportsAvx2();
    TablePrinter table(avx2
                           ? "Kernel sweep: scalar vs avx2 (mean "
                             "seconds per repeat)"
                           : "Kernel sweep: AVX2+FMA UNAVAILABLE — "
                             "avx2 rows fell back to scalar");
    table.setHeader({"kernel", "scalar_s", "avx2_s", "speedup"});
    for (const char* base :
         {"gather_aggregate", "gemm", "gemm_transb"}) {
        const double scalar_s =
            meanSeconds(std::string(base) + "_scalar");
        const double avx2_s = meanSeconds(std::string(base) + "_avx2");
        table.addRow({base, TablePrinter::num(scalar_s, 6),
                      TablePrinter::num(avx2_s, 6),
                      avx2_s > 0.0
                          ? TablePrinter::num(scalar_s / avx2_s, 2) +
                                "x"
                          : "-"});
    }
    const double arena_s = meanSeconds("alloc_churn_arena");
    const double heap_s = meanSeconds("alloc_churn_heap");
    table.addRow({"alloc_churn (arena vs heap)",
                  TablePrinter::num(heap_s, 6),
                  TablePrinter::num(arena_s, 6),
                  arena_s > 0.0
                      ? TablePrinter::num(heap_s / arena_s, 2) + "x"
                      : "-"});
    table.print();
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: bench_micro_kernels [--repeats=N] [--warmup=N]\n"
        "                           [--out=FILE] [--threads=N]\n"
        "                           [--trace-out=FILE] "
        "[--metrics-out=FILE] [--json=FILE]\n");
    return 2;
}

} // namespace
} // namespace betty

int
main(int argc, char** argv)
{
    using namespace betty;
    benchutil::ObsSession obs_session("bench_micro_kernels", &argc,
                                      argv);
    obs::BenchConfig config;
    config.repeats = 5;
    config.warmup = 1;
    std::string out_path = "BENCH_micro_kernels.json";
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        int64_t parsed = 0;
        if (std::strncmp(arg, "--repeats=", 10) == 0) {
            if (!envcfg::parseInt(arg + 10, &parsed) || parsed < 1)
                fatal("malformed --repeats='", arg + 10, "'");
            config.repeats = int32_t(parsed);
        } else if (std::strncmp(arg, "--warmup=", 9) == 0) {
            if (!envcfg::parseInt(arg + 9, &parsed) || parsed < 0)
                fatal("malformed --warmup='", arg + 9, "'");
            config.warmup = int32_t(parsed);
        } else if (std::strncmp(arg, "--out=", 6) == 0) {
            out_path = arg + 6;
        } else {
            return usage();
        }
    }
    g_warmup = config.warmup;

    obs::BenchRunner runner(config);
    runner.setConfigNote("bench_scale",
                         std::to_string(envcfg::benchScale()));
    runner.setConfigNote(
        "avx2_available",
        kernels::builtWithAvx2() && kernels::cpuSupportsAvx2() ? "1"
                                                               : "0");

    for (const auto& scenario : componentScenarios()) {
        std::printf("bench_micro_kernels: %s\n",
                    scenario.name.c_str());
        std::fflush(stdout);
        runner.run(scenario);
    }
    for (const auto& scenario : kernelScenarios()) {
        std::printf("bench_micro_kernels: %s\n",
                    scenario.name.c_str());
        std::fflush(stdout);
        runner.run(scenario);
    }

    if (!runner.writeJson(out_path))
        fatal("cannot write '", out_path, "'");
    std::printf("bench_micro_kernels: wrote %s (%lld scenarios)\n\n",
                out_path.c_str(), (long long)runner.scenarioCount());
    printSweepTable();
    return 0;
}
