/**
 * @file
 * Figure 12: peak memory falls and epoch time rises as the number of
 * micro-batches grows, across five dataset/model configurations.
 *
 * Configurations mirror the paper's five panels (model depth and
 * aggregator per dataset), scaled to CPU-sized graphs. Each row
 * trains one epoch with Betty's partitioning at the given K and
 * reports measured peak device memory and wall-clock compute time
 * (data movement excluded, as in the paper's figure).
 */
#include <cstdio>

#include "bench_common.h"

namespace betty {
namespace {

struct Panel
{
    std::string dataset;
    double scale;
    int64_t layers;
    AggregatorKind aggregator;
    std::vector<int64_t> fanouts;
    int64_t hidden;
    size_t maxSeeds;
    /** Override the dataset's feature width (0 = keep). The LSTM
     * aggregator's width equals the input width, so the raw 1433-dim
     * Cora features would make one CPU epoch take minutes; a narrower
     * width preserves the memory/time-vs-K shape this figure is
     * about. */
    int64_t featureDimOverride = 0;
};

void
runPanel(const Panel& panel)
{
    using namespace benchutil;
    Dataset ds;
    if (panel.featureDimOverride > 0) {
        SyntheticSpec spec;
        if (panel.dataset == "cora_like")
            spec = coraSpec();
        else if (panel.dataset == "pubmed_like")
            spec = pubmedSpec();
        else
            fatal("no spec override for ", panel.dataset);
        spec.numNodes = std::max<int64_t>(
            32, int64_t(double(spec.numNodes) * panel.scale *
                        envScale()));
        spec.featureDim = panel.featureDimOverride;
        ds = makeSyntheticDataset(spec, 42);
    } else {
        ds = loadBenchDataset(panel.dataset, panel.scale);
    }
    NeighborSampler sampler(ds.graph, panel.fanouts, 7);
    std::vector<int64_t> seeds(
        ds.trainNodes.begin(),
        ds.trainNodes.begin() +
            std::min(ds.trainNodes.size(), panel.maxSeeds));
    const auto full = sampler.sample(seeds);

    TablePrinter table(
        panel.dataset + ": " + std::to_string(panel.layers) +
        "-layer SAGE " + aggregatorName(panel.aggregator));
    table.setHeader({"K", "peak_MiB", "epoch_time_s"});

    for (int32_t k : {1, 2, 4, 8, 16}) {
        DeviceMemoryModel device;
        DeviceMemoryModel::Scope scope(device);

        SageConfig cfg;
        cfg.inputDim = ds.featureDim();
        cfg.hiddenDim = panel.hidden;
        cfg.numClasses = ds.numClasses;
        cfg.numLayers = panel.layers;
        cfg.aggregator = panel.aggregator;
        GraphSage model(cfg);
        Adam adam(model.parameters(), 0.01f);
        Trainer trainer(ds, model, adam, &device);

        BettyPartitioner part;
        const auto micros =
            extractMicroBatches(full, part.partition(full, k));
        const auto stats = trainer.trainMicroBatches(micros);
        table.addRow({std::to_string(k),
                      TablePrinter::num(toMiB(stats.peakBytes), 1),
                      TablePrinter::num(stats.computeSeconds, 3)});
    }
    table.print();
}

} // namespace
} // namespace betty

int
main()
{
    using namespace betty;

    std::printf("Figure 12: peak memory vs training time as K "
                "grows (Betty partitioning)\n");

    const std::vector<Panel> panels = {
        // (a) ogbn-arxiv, 2-layer Mean
        {"arxiv_like", 0.15, 2, AggregatorKind::Mean, {5, 10}, 32,
         1200},
        // (b) Reddit, 4-layer Mean
        {"reddit_like", 0.15, 4, AggregatorKind::Mean, {4, 4, 4, 4},
         32, 400},
        // (c) Pubmed, 2-layer LSTM (LSTM panels are kept small:
        // the unrolled recurrence is by far the most expensive layer;
        // feature widths reduced per the Panel comment)
        {"pubmed_like", 0.3, 2, AggregatorKind::Lstm, {3, 5}, 16, 256,
         128},
        // (d) Cora, 2-layer LSTM
        {"cora_like", 1.0, 2, AggregatorKind::Lstm, {3, 5}, 16, 256,
         128},
        // (e) ogbn-products, 1-layer LSTM
        {"products_like", 0.03, 1, AggregatorKind::Lstm, {8}, 16,
         512},
    };
    for (const auto& panel : panels)
        runPanel(panel);

    std::printf("\nShape targets: memory decreases monotonically with "
                "K while epoch time increases; the sweet spot sits "
                "around K = 4-8 (paper §6.1).\n");
    return 0;
}
