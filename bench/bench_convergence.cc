/**
 * @file
 * Figure 13: convergence curves for full-batch training and
 * micro-batch training with 2, 4 and 8 micro-batches coincide.
 *
 * 3-layer GraphSAGE + Mean on the arxiv-like dataset, identical
 * hyperparameters and initialization across all four runs; test
 * accuracy per epoch is the plotted series.
 */
#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace betty;
    using namespace betty::benchutil;

    std::printf("Figure 13: convergence of full-batch vs 2/4/8 "
                "micro-batches, 3-layer SAGE + Mean, arxiv_like\n");
    const auto ds = loadBenchDataset("arxiv_like", 0.12);

    SageConfig cfg;
    cfg.inputDim = ds.featureDim();
    cfg.hiddenDim = 32;
    cfg.numClasses = ds.numClasses;
    cfg.numLayers = 3;
    cfg.seed = 11;

    NeighborSampler sampler(ds.graph, {5, 5, 8}, 7);
    const auto full = sampler.sample(ds.trainNodes);
    NeighborSampler test_sampler(ds.graph, {5, 5, 8}, 8);
    const auto test_batch = test_sampler.sample(ds.testNodes);

    // Identical model init (same seed) for the four runs.
    const std::vector<int32_t> k_values = {1, 2, 4, 8};
    std::vector<std::unique_ptr<GraphSage>> models;
    std::vector<std::unique_ptr<Adam>> optimizers;
    std::vector<std::unique_ptr<Trainer>> trainers;
    std::vector<std::vector<MultiLayerBatch>> batch_sets;
    BettyPartitioner part;
    for (int32_t k : k_values) {
        models.push_back(std::make_unique<GraphSage>(cfg));
        optimizers.push_back(
            std::make_unique<Adam>(models.back()->parameters(),
                                   0.01f));
        trainers.push_back(std::make_unique<Trainer>(
            ds, *models.back(), *optimizers.back()));
        batch_sets.push_back(
            extractMicroBatches(full, part.partition(full, k)));
    }

    TablePrinter table("test accuracy per epoch");
    table.setHeader({"epoch", "full_batch", "2_micro", "4_micro",
                     "8_micro", "max_spread"});
    const int epochs = 25;
    double final_spread = 0.0;
    for (int epoch = 1; epoch <= epochs; ++epoch) {
        std::vector<std::string> row = {std::to_string(epoch)};
        double lo = 1.0, hi = 0.0;
        for (size_t i = 0; i < k_values.size(); ++i) {
            trainers[i]->trainMicroBatches(batch_sets[i]);
            const double acc = trainers[i]->evaluate(test_batch);
            row.push_back(TablePrinter::num(acc, 4));
            lo = std::min(lo, acc);
            hi = std::max(hi, acc);
        }
        final_spread = hi - lo;
        row.push_back(TablePrinter::num(final_spread, 4));
        table.addRow(row);
    }
    table.print();

    std::printf("\nfinal-epoch accuracy spread across the four runs: "
                "%.4f\n",
                final_spread);
    std::printf("Shape target: the four curves coincide (micro-batch "
                "gradient accumulation is mathematically equivalent "
                "to full-batch training; spread is float noise).\n");
    return 0;
}
