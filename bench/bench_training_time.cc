/**
 * @file
 * Figure 14: epoch training time + simulated data-movement time vs
 * the number of batches, for all four partitioners.
 *
 * 3-layer GraphSAGE + Mean on products_like (the paper's
 * configuration with fanout (25,35,40), scaled to (10,15,20)). Redundant input
 * nodes cost both compute and transfer, so redundancy-unaware
 * partitioners grow more expensive with K.
 */
#include <cstdio>

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace betty;
    using namespace betty::benchutil;
    ObsSession obs("bench_training_time", &argc, argv);

    std::printf("Figure 14: train + transfer time vs #batches, "
                "3-layer SAGE + Mean, products_like\n");
    const auto ds = loadBenchDataset("products_like", 1.0);
    NeighborSampler sampler(ds.graph, {10, 15, 20}, 7);
    std::vector<int64_t> seeds(
        ds.trainNodes.begin(),
        ds.trainNodes.begin() +
            std::min<size_t>(ds.trainNodes.size(), 512));
    const auto full = sampler.sample(seeds);

    SageConfig cfg;
    cfg.inputDim = ds.featureDim();
    cfg.hiddenDim = 32;
    cfg.numClasses = ds.numClasses;
    cfg.numLayers = 3;
    cfg.seed = 3;

    TablePrinter table(
        "epoch time (s): compute + simulated transfer");
    table.setHeader({"K", "partitioner", "compute_s", "transfer_s",
                     "total_s", "input_nodes"});
    for (int32_t k : {1, 2, 4, 8, 16, 32}) {
        for (const auto& pname : partitionerNames()) {
            if (k == 1 && pname != "betty")
                continue; // K=1 is identical for everyone
            auto part = makePartitioner(pname, ds.graph);
            const auto micros =
                extractMicroBatches(full, part->partition(full, k));

            GraphSage model(cfg);
            Adam adam(model.parameters(), 0.01f);
            TransferModel transfer;
            Trainer trainer(ds, model, adam, nullptr, &transfer);
            // Fastest of three repetitions: noise-robust on one core.
            EpochStats stats = trainer.trainMicroBatches(micros);
            for (int rep = 0; rep < 2; ++rep) {
                auto again = trainer.trainMicroBatches(micros);
                if (again.computeSeconds < stats.computeSeconds)
                    stats = again;
            }
            table.addRow(
                {std::to_string(k), pname,
                 TablePrinter::num(stats.computeSeconds, 3),
                 TablePrinter::num(stats.transferSeconds, 4),
                 TablePrinter::num(stats.computeSeconds +
                                       stats.transferSeconds,
                                   3),
                 TablePrinter::count(stats.inputNodesProcessed)});
            obs.result(pname + ".k" + std::to_string(k) +
                           ".total_s",
                       stats.computeSeconds +
                           stats.transferSeconds);
        }
    }
    table.print();

    // Transfer-compute pipelining: epoch wall-clock vs thread count
    // (betty partitioning at K = 16; identical losses/stats at every
    // thread count — see tests/test_pipeline.cc).
    {
        auto part = makePartitioner("betty", ds.graph);
        const auto micros =
            extractMicroBatches(full, part->partition(full, 16));
        TablePrinter table("pipelined epoch wall-clock vs threads "
                           "(K = 16, best of 3)");
        table.setHeader({"threads", "wall_s", "compute_s",
                         "transfer_s", "speedup"});
        double serial_wall = 0.0;
        for (int32_t threads : {1, 2, 4}) {
            ThreadPool::setGlobalThreads(threads);
            GraphSage model(cfg);
            Adam adam(model.parameters(), 0.01f);
            TransferModel transfer;
            Trainer trainer(ds, model, adam, nullptr, &transfer);
            double best_wall = 1e300;
            EpochStats stats;
            for (int rep = 0; rep < 3; ++rep) {
                Timer wall;
                const auto run = trainer.trainMicroBatches(micros);
                if (wall.seconds() < best_wall) {
                    best_wall = wall.seconds();
                    stats = run;
                }
            }
            if (threads == 1)
                serial_wall = best_wall;
            obs.result("pipeline.threads" +
                           std::to_string(threads) + ".wall_s",
                       best_wall);
            table.addRow({std::to_string(threads),
                          TablePrinter::num(best_wall, 3),
                          TablePrinter::num(stats.computeSeconds, 3),
                          TablePrinter::num(stats.transferSeconds, 4),
                          TablePrinter::num(serial_wall / best_wall,
                                            2) +
                              "x"});
        }
        ThreadPool::setGlobalThreads(1);
        table.print();
    }

    // Transfer-seconds saved as a function of cache size and K: the
    // same trained epochs with a FeatureCache between the gather and
    // the TransferModel (betty partitioning, 2 epochs so the second
    // epoch hits rows the first inserted). Numerics are bit-identical
    // to the uncached rows above; only bytes moved change.
    {
        const int64_t row_bytes =
            ds.featureDim() * int64_t(sizeof(float));
        TablePrinter table("transfer seconds vs cache size "
                           "(betty partitioner, 2 epochs)");
        table.setHeader({"K", "cache_gib", "transfer_s", "saved_mib",
                         "hit_rate_%"});
        for (int32_t k : {4, 16}) {
            auto part = makePartitioner("betty", ds.graph);
            const auto micros =
                extractMicroBatches(full, part->partition(full, k));
            for (double cache_gib : {0.0, 0.01, 0.05}) {
                GraphSage model(cfg);
                Adam adam(model.parameters(), 0.01f);
                TransferModel transfer;
                DeviceMemoryModel device(deviceCapacityBytes());
                Trainer trainer(ds, model, adam, &device, &transfer);
                std::unique_ptr<FeatureCache> cache;
                if (cache_gib > 0.0) {
                    cache = std::make_unique<FeatureCache>(
                        &device, gib(cache_gib), row_bytes,
                        cachePolicy());
                    trainer.setFeatureCache(cache.get());
                }
                double transfer_s = 0.0;
                for (int epoch = 0; epoch < 2; ++epoch)
                    transfer_s +=
                        trainer.trainMicroBatches(micros)
                            .transferSeconds;
                const FeatureCacheStats stats =
                    cache ? cache->stats() : FeatureCacheStats{};
                const int64_t rows = stats.hits + stats.misses;
                table.addRow(
                    {std::to_string(k), TablePrinter::num(cache_gib, 3),
                     TablePrinter::num(transfer_s, 4),
                     TablePrinter::num(toMiB(stats.bytesSaved), 2),
                     TablePrinter::num(
                         rows ? 100.0 * double(stats.hits) /
                                    double(rows)
                              : 0.0,
                         1)});
            }
        }
        table.print();
    }

    std::printf("\nShape targets: time grows with K for every "
                "partitioner (redundancy + lower efficiency); betty "
                "is the fastest column at every K (paper: 20.6-22.9%% "
                "better compute efficiency). With >= 2 cores the "
                "pipelined sweep overlaps the feature gather with "
                "compute, shrinking wall-clock at identical stats. "
                "In the cache sweep transfer_s falls as cache_gib "
                "grows (never rises: LRU stack inclusion), with the "
                "epoch-2 re-reads fully absorbed once the working set "
                "fits.\n");
    return 0;
}
