/**
 * @file
 * Figure 4: full-batch vs small-mini-batch training statistics.
 *
 * Reducing the batch size does cut memory, but it changes the
 * effective batch size: the mini-batch run steps the optimizer per
 * batch, producing a noisier loss and drifting test accuracy — the
 * paper's motivation for micro-batches (which Figure 13 /
 * bench_convergence shows do NOT have this problem).
 */
#include <cmath>
#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace betty;
    using namespace betty::benchutil;

    std::printf("Figure 4: full-batch vs small mini-batch training, "
                "SAGE + Mean, products_like\n");
    // A noisy variant of products_like: with easily separable
    // features both regimes hit 100% accuracy and the statistical
    // difference is invisible; noise keeps the problem hard, like the
    // real ogbn-products.
    SyntheticSpec spec = productsSpec();
    spec.numNodes = 5000;
    spec.featureNoise = 4.0;
    spec.homophily = 0.5;
    const Dataset ds = makeSyntheticDataset(spec, 42);

    SageConfig cfg;
    cfg.inputDim = ds.featureDim();
    cfg.hiddenDim = 16;
    cfg.numClasses = ds.numClasses;
    cfg.numLayers = 2;
    cfg.seed = 5;

    const std::vector<int64_t> fanouts = {5, 10};
    const int num_minibatches = 16;
    const int epochs = 40;

    // Full-batch setup.
    GraphSage full_model(cfg);
    Adam full_adam(full_model.parameters(), 0.05f);
    Trainer full_trainer(ds, full_model, full_adam);
    NeighborSampler full_sampler(ds.graph, fanouts, 7);
    const auto full = full_sampler.sample(ds.trainNodes);

    // Mini-batch setup: same graph, 16 independently sampled batches,
    // optimizer step per batch (same hyperparameters — the point).
    GraphSage mini_model(cfg);
    Adam mini_adam(mini_model.parameters(), 0.05f);
    Trainer mini_trainer(ds, mini_model, mini_adam);
    NeighborSampler mini_sampler(ds.graph, fanouts, 8);
    std::vector<std::vector<int64_t>> mini_seed_groups(
        num_minibatches);
    for (size_t i = 0; i < ds.trainNodes.size(); ++i)
        mini_seed_groups[i % num_minibatches].push_back(
            ds.trainNodes[i]);

    // Test batch for accuracy tracking.
    NeighborSampler test_sampler(ds.graph, fanouts, 9);
    const auto test_batch = test_sampler.sample(ds.testNodes);

    TablePrinter table("loss / test accuracy per epoch");
    table.setHeader({"epoch", "full_loss", "full_test_acc",
                     "mini_loss", "mini_test_acc"});
    double full_var = 0.0, mini_var = 0.0, prev_full = -1.0,
           prev_mini = -1.0;
    std::vector<double> full_accs, mini_accs; // late-stage tracking
    for (int epoch = 1; epoch <= epochs; ++epoch) {
        const auto full_stats =
            full_trainer.trainMicroBatches({full});
        std::vector<MultiLayerBatch> minis;
        for (const auto& seeds : mini_seed_groups)
            minis.push_back(mini_sampler.sample(seeds));
        const auto mini_stats = mini_trainer.trainMiniBatches(minis);

        const double full_acc = full_trainer.evaluate(test_batch);
        const double mini_acc = mini_trainer.evaluate(test_batch);
        table.addRow({std::to_string(epoch),
                      TablePrinter::num(full_stats.loss, 4),
                      TablePrinter::num(full_acc, 4),
                      TablePrinter::num(mini_stats.loss, 4),
                      TablePrinter::num(mini_acc, 4)});
        if (prev_full >= 0.0 && epoch > epochs / 2) {
            full_var += std::abs(full_stats.loss - prev_full);
            mini_var += std::abs(mini_stats.loss - prev_mini);
            full_accs.push_back(full_acc);
            mini_accs.push_back(mini_acc);
        }
        prev_full = full_stats.loss;
        prev_mini = mini_stats.loss;
    }
    table.print();

    auto stddev = [](const std::vector<double>& v) {
        double mean = 0.0;
        for (double x : v)
            mean += x;
        mean /= double(v.size());
        double var = 0.0;
        for (double x : v)
            var += (x - mean) * (x - mean);
        return std::sqrt(var / double(v.size()));
    };
    std::printf("\nsecond-half mean |loss delta| per epoch: full=%.4f "
                "mini=%.4f\n",
                full_var / double(epochs / 2),
                mini_var / double(epochs / 2));
    std::printf("second-half test-accuracy stddev: full=%.4f "
                "mini=%.4f\n",
                stddev(full_accs), stddev(mini_accs));
    std::printf("Shape target: the mini-batch loss moves faster early "
                "but is the noisier curve; its statistics differ from "
                "full-batch under identical hyperparameters.\n");
    return 0;
}
