/**
 * @file
 * Extension bench (paper future work §7): multi-accelerator scaling
 * of Betty micro-batch training, on the BenchRunner discipline.
 *
 * The same K=32 Betty plan is trained on 1, 2, 4 and 8 simulated
 * devices through the MultiDeviceEngine (vertex-cut sharding + ring
 * all-reduce). Each device count is one scenario under warmup +
 * repeats, so the schema-versioned BENCH_multi_gpu.json this writes
 * can be gated with `betty_report bench-diff` like the betty_bench
 * report. The end-of-run table reports simulated parallel step time
 * (max device busy + all-reduce), speedup over one device, the
 * vertex-cut duplication factor against the round-robin baseline,
 * per-device peak memory, and the loss — identical across rows,
 * because sharding never touches the numerics.
 *
 * Shape targets: >= 3x simulated step-time speedup from 1 -> 8
 * devices at K=32, with a vertex-cut duplication factor no worse
 * than round-robin.
 *
 *   bench_multi_gpu [--repeats=N] [--warmup=N] [--threads=N]
 *                   [--out=FILE]
 */
#include <cstdio>
#include <cstring>
#include <map>

#include "bench_common.h"
#include "obs/perf/bench_harness.h"
#include "train/multi_device.h"

namespace {

using namespace betty;
using namespace betty::benchutil;

struct Sweep
{
    Dataset dataset;
    std::vector<MultiLayerBatch> micros;
    /** Last repeat's stats per device count (the table rows). */
    std::map<int32_t, MultiDeviceStats> stats;
    /** Round-robin duplication baseline, computed once. */
    std::map<int32_t, double> roundRobinDup;
};

SageConfig
sweepModelConfig(const Dataset& ds)
{
    SageConfig cfg;
    cfg.inputDim = ds.featureDim();
    cfg.hiddenDim = 32;
    cfg.numClasses = ds.numClasses;
    cfg.numLayers = 2;
    cfg.seed = 5;
    return cfg;
}

} // namespace

int
main(int argc, char** argv)
{
    obs::BenchConfig config;
    config.repeats = 3;
    config.warmup = 1;
    std::string out_path = "BENCH_multi_gpu.json";
    int32_t threads = 0;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        auto intValue = [&](const char* flag, const char* text) {
            int64_t parsed = 0;
            if (!envcfg::parseInt(text, &parsed) || parsed < 0)
                fatal("malformed ", flag, "='", text,
                      "': expected an integer >= 0");
            return parsed;
        };
        if (std::strncmp(arg, "--repeats=", 10) == 0)
            config.repeats = int32_t(intValue("--repeats", arg + 10));
        else if (std::strncmp(arg, "--warmup=", 9) == 0)
            config.warmup = int32_t(intValue("--warmup", arg + 9));
        else if (std::strncmp(arg, "--threads=", 10) == 0)
            threads = int32_t(intValue("--threads", arg + 10));
        else if (std::strncmp(arg, "--out=", 6) == 0)
            out_path = arg + 6;
        else
            fatal("unknown flag '", arg, "'");
    }
    if (config.repeats < 1)
        fatal("--repeats must be >= 1");
    if (threads > 0)
        ThreadPool::setGlobalThreads(threads);

    std::printf("Multi-accelerator scaling of Betty micro-batch "
                "training, 2-layer SAGE + Mean, products_like\n");
    Sweep sweep;
    sweep.dataset = loadBenchDataset("products_like", 0.3);
    const Dataset& ds = sweep.dataset;
    NeighborSampler sampler(ds.graph, {5, 10}, 7);
    std::vector<int64_t> seeds(
        ds.trainNodes.begin(),
        ds.trainNodes.begin() +
            std::min<size_t>(ds.trainNodes.size(), 2048));
    const auto full = sampler.sample(seeds);

    BettyPartitioner part;
    const int32_t k = 32;
    sweep.micros = extractMicroBatches(full, part.partition(full, k));
    std::printf("plan: %d micro-batches over %lld output nodes\n", k,
                (long long)full.outputNodes().size());

    obs::BenchRunner runner(config);
    runner.setConfigNote("threads",
                         std::to_string(ThreadPool::globalThreads()));
    runner.setConfigNote("k", std::to_string(k));
    runner.setConfigNote("bench_scale",
                         std::to_string(envcfg::benchScale()));

    for (const int32_t devices : {1, 2, 4, 8}) {
        sweep.roundRobinDup[devices] = shardDuplicationFactor(
            sweep.micros,
            roundRobinAssignment(sweep.micros, devices));
        obs::BenchScenario scenario;
        scenario.name =
            "multi_device_n" + std::to_string(devices);
        scenario.description =
            "one K=32 accumulation step sharded over " +
            std::to_string(devices) + " simulated device(s)";
        scenario.run = [&sweep, devices] {
            GraphSage model(sweepModelConfig(sweep.dataset));
            Adam adam(model.parameters(), 0.01f);
            MultiDeviceConfig engine_config;
            engine_config.numDevices = devices;
            MultiDeviceEngine engine(sweep.dataset, model, adam,
                                     engine_config);
            sweep.stats[devices] =
                engine.trainMicroBatches(sweep.micros);
        };
        std::printf("bench_multi_gpu: %s (%d warmup + %d repeats)\n",
                    scenario.name.c_str(), config.warmup,
                    config.repeats);
        std::fflush(stdout);
        runner.run(scenario);
    }

    if (!runner.writeJson(out_path))
        fatal("cannot write '", out_path, "'");
    std::printf("bench_multi_gpu: wrote %s\n", out_path.c_str());

    TablePrinter table("scaling with simulated devices");
    table.setHeader({"devices", "step_s", "allreduce_s", "speedup",
                     "dup", "rr_dup", "max_dev_peak_MiB",
                     "batches/device", "loss"});
    const double baseline = sweep.stats[1].epochSeconds;
    for (const int32_t devices : {1, 2, 4, 8}) {
        const MultiDeviceStats& stats = sweep.stats[devices];
        std::string split;
        for (int32_t count : stats.batchesPerDevice)
            split += (split.empty() ? "" : "/") +
                     std::to_string(count);
        table.addRow(
            {std::to_string(devices),
             TablePrinter::num(stats.epochSeconds, 3),
             TablePrinter::num(stats.allreduceSeconds, 4),
             TablePrinter::num(baseline / stats.epochSeconds, 2) +
                 "x",
             TablePrinter::num(stats.duplicationFactor, 2) + "x",
             TablePrinter::num(sweep.roundRobinDup[devices], 2) +
                 "x",
             TablePrinter::num(toMiB(stats.maxDevicePeakBytes), 1),
             split, TablePrinter::num(stats.loss, 4)});
    }
    table.print();

    std::printf("\nShape targets: >= 3x speedup at 8 devices while "
                "each holds >= 2 batches, then the allreduce and the "
                "largest micro-batch bound it; dup <= rr_dup (the "
                "vertex-cut sharder never duplicates more halo than "
                "round-robin); loss identical in every row (sharding "
                "changes nothing numerically).\n");
    return 0;
}
