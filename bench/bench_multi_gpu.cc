/**
 * @file
 * Extension bench (paper future work §7): multi-accelerator scaling
 * of Betty micro-batch training.
 *
 * The same Betty plan is trained on 1, 2, 4 and 8 simulated devices;
 * reported are the simulated parallel epoch time (max device busy
 * time + ring allreduce), per-device peak memory, scheduling balance,
 * and the loss (identical across device counts — data-parallel
 * gradient accumulation does not change the math).
 */
#include <cstdio>

#include "bench_common.h"
#include "train/multi_device.h"

int
main()
{
    using namespace betty;
    using namespace betty::benchutil;

    std::printf("Multi-accelerator scaling of Betty micro-batch "
                "training, 2-layer SAGE + Mean, products_like\n");
    const auto ds = loadBenchDataset("products_like", 0.3);
    NeighborSampler sampler(ds.graph, {5, 10}, 7);
    std::vector<int64_t> seeds(
        ds.trainNodes.begin(),
        ds.trainNodes.begin() +
            std::min<size_t>(ds.trainNodes.size(), 2048));
    const auto full = sampler.sample(seeds);

    SageConfig cfg;
    cfg.inputDim = ds.featureDim();
    cfg.hiddenDim = 32;
    cfg.numClasses = ds.numClasses;
    cfg.numLayers = 2;
    cfg.seed = 5;

    BettyPartitioner part;
    const int32_t k = 16;
    const auto micros =
        extractMicroBatches(full, part.partition(full, k));
    std::printf("plan: %d micro-batches over %lld output nodes\n", k,
                (long long)full.outputNodes().size());

    TablePrinter table("scaling with simulated devices");
    table.setHeader({"devices", "epoch_s", "allreduce_s", "speedup",
                     "max_dev_peak_MiB", "batches/device", "loss"});
    double baseline = 0.0;
    for (int32_t devices : {1, 2, 4, 8}) {
        GraphSage model(cfg);
        Adam adam(model.parameters(), 0.01f);
        MultiDeviceConfig config;
        config.numDevices = devices;
        MultiDeviceTrainer trainer(ds, model, adam, config);
        const auto stats = trainer.trainMicroBatches(micros);
        if (devices == 1)
            baseline = stats.epochSeconds;
        std::string split;
        for (int32_t count : stats.batchesPerDevice)
            split += (split.empty() ? "" : "/") +
                     std::to_string(count);
        table.addRow({std::to_string(devices),
                      TablePrinter::num(stats.epochSeconds, 3),
                      TablePrinter::num(stats.allreduceSeconds, 4),
                      TablePrinter::num(baseline / stats.epochSeconds,
                                        2) + "x",
                      TablePrinter::num(
                          toMiB(stats.maxDevicePeakBytes), 1),
                      split, TablePrinter::num(stats.loss, 4)});
    }
    table.print();

    std::printf("\nShape targets: near-linear speedup while devices "
                "have >= 2 batches each, then the allreduce and the "
                "largest micro-batch bound it; loss identical in "
                "every row (data parallelism changes nothing "
                "statistically).\n");
    return 0;
}
