/**
 * @file
 * Table 6: micro-batch (Betty) vs mini-batch training at equal batch
 * counts — first-layer input totals, epoch time, and memory.
 *
 * Micro-batches partition ONE sampled full batch, so their combined
 * input nodes grow slowly with K; mini-batches sample each batch's
 * multi-hop neighborhood independently, so their combined input
 * nodes explode (the paper's 4.2x vs 15.3x redundancy at K=64).
 */
#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace betty;
    using namespace betty::benchutil;

    std::printf("Table 6: micro-batch vs mini-batch, 2-layer SAGE + "
                "Mean, products_like, fanout (5, 10)\n");
    // Seeds are a large fraction of the training set, as in the paper
    // (its full batch is ALL 196k train nodes): micro-batches then
    // share neighborhoods heavily, which is exactly what independent
    // mini-batch sampling throws away.
    const auto ds = loadBenchDataset("products_like", 0.3);
    const std::vector<int64_t> fanouts = {5, 10};

    NeighborSampler sampler(ds.graph, fanouts, 7);
    std::vector<int64_t> seeds(
        ds.trainNodes.begin(),
        ds.trainNodes.begin() +
            std::min<size_t>(ds.trainNodes.size(), 8192));
    const auto full = sampler.sample(seeds);
    const int64_t full_inputs = int64_t(full.inputNodes().size());

    SageConfig cfg;
    cfg.inputDim = ds.featureDim();
    cfg.hiddenDim = 32;
    cfg.numClasses = ds.numClasses;
    cfg.numLayers = 2;
    cfg.seed = 5;

    TablePrinter table("Table 6 analog");
    table.setHeader({"K", "micro_inputs", "mini_inputs",
                     "micro_time_s", "mini_time_s", "micro_peak_MiB",
                     "mini_peak_MiB"});

    BettyPartitioner part;
    NeighborSampler mini_sampler(ds.graph, fanouts, 8);
    for (int32_t k : {1, 2, 4, 8, 16, 32, 64}) {
        // Micro: partition the one full batch.
        const auto micros =
            extractMicroBatches(full, part.partition(full, k));

        // Mini: K independently sampled batches over the same seeds.
        std::vector<std::vector<int64_t>> groups(static_cast<size_t>(k));
        for (size_t i = 0; i < seeds.size(); ++i)
            groups[i % size_t(k)].push_back(seeds[i]);
        std::vector<MultiLayerBatch> minis;
        for (const auto& group : groups)
            if (!group.empty())
                minis.push_back(mini_sampler.sample(group));

        auto run = [&](const std::vector<MultiLayerBatch>& batches,
                       bool micro) {
            DeviceMemoryModel device;
            DeviceMemoryModel::Scope scope(device);
            GraphSage model(cfg);
            Adam adam(model.parameters(), 0.01f);
            Trainer trainer(ds, model, adam, &device);
            return micro ? trainer.trainMicroBatches(batches)
                         : trainer.trainMiniBatches(batches);
        };
        const auto micro_stats = run(micros, true);
        const auto mini_stats = run(minis, false);

        table.addRow(
            {std::to_string(k),
             TablePrinter::count(micro_stats.inputNodesProcessed),
             TablePrinter::count(mini_stats.inputNodesProcessed),
             TablePrinter::num(micro_stats.computeSeconds, 3),
             TablePrinter::num(mini_stats.computeSeconds, 3),
             TablePrinter::num(toMiB(micro_stats.peakBytes), 1),
             TablePrinter::num(toMiB(mini_stats.peakBytes), 1)});
    }
    table.print();

    std::printf("\nfull-batch first-layer inputs: %s\n",
                TablePrinter::count(full_inputs).c_str());
    std::printf("Shape targets: micro inputs grow far slower than "
                "mini inputs with K (paper at K=64: 4.2x vs 15.3x of "
                "the full batch); micro is faster and uses less "
                "memory at every K > 1.\n");
    return 0;
}
