/**
 * @file
 * Table 2 and Figure 9: load imbalance across REG micro-batches and
 * the in-degree bucketing explosion that causes it.
 *
 * Table 2: per-micro-batch estimated memory for K=2 and K=4 REG
 * partitions of an arxiv-like batch — the spread motivates
 * memory-aware planning.
 * Figure 9(a): destination in-degree bucket histogram (long tail in
 * the last bucket). Figure 9(b): the same histogram per micro-batch
 * for K=2, showing the tail bucket splits unevenly.
 */
#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace betty;
    using namespace betty::benchutil;

    std::printf("Table 2 + Figure 9: imbalance and in-degree "
                "bucketing, SAGE on arxiv_like\n");
    const auto ds = loadBenchDataset("arxiv_like", 0.3);

    NeighborSampler sampler(ds.graph, {-1, -1}, 7);
    const auto full = sampler.sample(ds.trainNodes);

    SageConfig cfg;
    cfg.inputDim = ds.featureDim();
    cfg.hiddenDim = 32;
    cfg.numClasses = ds.numClasses;
    cfg.numLayers = 2;
    GraphSage model(cfg);
    const auto spec = model.memorySpec();

    BettyPartitioner betty;

    // Table 2: per-micro-batch memory for K = 2 and K = 4.
    for (int32_t k : {2, 4}) {
        const auto micros =
            extractMicroBatches(full, betty.partition(full, k));
        TablePrinter table("Table 2 analog: K = " + std::to_string(k) +
                           " REG micro-batches");
        table.setHeader({"batch_id", "est_mem_MiB", "outputs",
                         "input_nodes"});
        int64_t lo = 0, hi = 0;
        for (size_t i = 0; i < micros.size(); ++i) {
            const auto est = estimateBatchMemory(micros[i], spec);
            table.addRow(
                {std::to_string(i),
                 TablePrinter::num(toMiB(est.peak), 2),
                 std::to_string(micros[i].outputNodes().size()),
                 std::to_string(micros[i].inputNodes().size())});
            lo = (i == 0) ? est.peak : std::min(lo, est.peak);
            hi = std::max(hi, est.peak);
        }
        table.print();
        std::printf("memory spread (max/min - 1): %.1f%%\n",
                    100.0 * (double(hi) / double(lo) - 1.0));
    }

    // Figure 9(a): in-degree bucket histogram of the output block.
    const int64_t max_bucket = 10;
    const Block& out_block = full.blocks.back();
    {
        TablePrinter table("Figure 9(a): destination in-degree "
                           "buckets (tail = degree >= 10)");
        table.setHeader({"bucket(degree)", "#nodes"});
        const auto buckets = out_block.degreeBuckets(max_bucket);
        for (size_t b = 0; b < buckets.size(); ++b) {
            const std::string label =
                (int64_t(b) == max_bucket)
                    ? ">=" + std::to_string(max_bucket)
                    : std::to_string(b);
            table.addRow({label,
                          std::to_string(buckets[b].size())});
        }
        table.print();
    }

    // Figure 9(b): the bucket histogram per micro-batch for K = 2.
    {
        const auto micros =
            extractMicroBatches(full, betty.partition(full, 2));
        TablePrinter table("Figure 9(b): buckets per micro-batch "
                           "(K = 2, REG partitioning)");
        table.setHeader({"bucket(degree)", "micro_0", "micro_1"});
        const auto b0 =
            micros[0].blocks.back().degreeBuckets(max_bucket);
        const auto b1 =
            micros[1].blocks.back().degreeBuckets(max_bucket);
        for (size_t b = 0; b < b0.size(); ++b) {
            const std::string label =
                (int64_t(b) == max_bucket)
                    ? ">=" + std::to_string(max_bucket)
                    : std::to_string(b);
            table.addRow({label, std::to_string(b0[b].size()),
                          std::to_string(b1[b].size())});
        }
        table.print();
        const double tail0 = double(b0.back().size());
        const double tail1 = double(b1.back().size());
        std::printf("\ntail-bucket imbalance: %.1f%% more nodes in "
                    "the heavier micro-batch\n",
                    100.0 * (std::max(tail0, tail1) /
                                 std::max(1.0, std::min(tail0, tail1)) -
                             1.0));
    }

    std::printf("Shape targets: the last bucket dominates the "
                "histogram (power-law tail); REG micro-batches split "
                "that tail unevenly (paper: ~19%%), motivating "
                "memory-aware partitioning.\n");
    return 0;
}
