/**
 * @file
 * Ablation study of Betty's design choices (DESIGN.md §5):
 *
 *   1. REG vs plain-adjacency min cut (is the redundancy embedding
 *      itself what wins, or just "a good partitioner"?)
 *   2. Multilevel refinement and restarts on/off inside the K-way
 *      solver (solution quality vs cut).
 *   3. REG vertex weights: unit (paper) vs degree-weighted.
 *   4. Memory-aware planning vs fixed-K guessing: how many on-device
 *      OOM retries the planner avoids.
 */
#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace betty;
    using namespace betty::benchutil;

    std::printf("Ablations of Betty's design choices, arxiv_like\n");
    const auto ds = loadBenchDataset("arxiv_like", 1.0);
    NeighborSampler sampler(ds.graph, {5, 8}, 7);
    std::vector<int64_t> seeds(
        ds.trainNodes.begin(),
        ds.trainNodes.begin() +
            std::min<size_t>(ds.trainNodes.size(), 512));
    const auto full = sampler.sample(seeds);
    const int32_t k = 8;

    // --- 1 + 2 + 3: partitioning variants vs redundancy. ---
    {
        TablePrinter table("partitioning variants (K = 8)");
        table.setHeader({"variant", "redundant_inputs", "vs_betty_%"});
        auto redundancy = [&](OutputPartitioner& part) {
            return inputNodeRedundancy(
                full,
                extractMicroBatches(full, part.partition(full, k)));
        };

        BettyPartitioner betty;
        const int64_t base = redundancy(betty);

        auto addRow = [&](const std::string& name, int64_t red) {
            table.addRow({name, TablePrinter::count(red),
                          TablePrinter::num(
                              100.0 * (double(red) / double(base) -
                                       1.0),
                              1)});
        };
        addRow("betty (REG, default)", base);

        // REG off: same solver on the plain output adjacency.
        MetisBaselinePartitioner plain(ds.graph);
        addRow("no REG (plain min cut)", redundancy(plain));

        // Refinement off.
        {
            BettyOptions opts;
            opts.kway.refinePasses = 0;
            BettyPartitioner variant(opts);
            addRow("no refinement", redundancy(variant));
        }
        // Restarts off.
        {
            BettyOptions opts;
            opts.kway.restarts = 1;
            BettyPartitioner variant(opts);
            addRow("single restart", redundancy(variant));
        }
        // Degree vertex weights.
        {
            BettyOptions opts;
            opts.reg.degreeVertexWeights = true;
            BettyPartitioner variant(opts);
            addRow("degree vertex weights", redundancy(variant));
        }
        // Hub cap very small (approximate REG).
        {
            BettyOptions opts;
            opts.reg.hubPairCap = 8;
            BettyPartitioner variant(opts);
            addRow("hub cap 8 (coarse REG)", redundancy(variant));
        }
        table.print();
    }

    // --- 4: memory-aware planning vs fixed-K trial and error. ---
    {
        SageConfig cfg;
        cfg.inputDim = ds.featureDim();
        cfg.hiddenDim = 32;
        cfg.numClasses = ds.numClasses;
        cfg.numLayers = 2;
        GraphSage model(cfg);
        const auto spec = model.memorySpec();
        const auto full_est = estimateBatchMemory(full, spec);
        const int64_t budget = full_est.peak / 3;

        BettyPartitioner part;
        MemoryAwarePlanner planner(spec, budget);
        const auto plan = planner.plan(full, part);

        // Fixed-K guessing: how many K values would OOM on device
        // before a guesser starting at K=1 found a fitting K?
        int32_t oom_retries = 0;
        for (int32_t guess = 1; guess < plan.k; ++guess)
            ++oom_retries;

        TablePrinter table("memory-aware planning (budget = 1/3 of "
                           "full batch)");
        table.setHeader({"metric", "value"});
        table.addRow({"planner K", std::to_string(plan.k)});
        table.addRow({"planner estimate calls",
                      std::to_string(plan.attempts)});
        table.addRow({"on-device OOM retries avoided",
                      std::to_string(oom_retries)});
        table.addRow({"max micro-batch est (MiB)",
                      TablePrinter::num(toMiB(plan.maxEstimatedPeak),
                                        1)});
        table.addRow({"budget (MiB)",
                      TablePrinter::num(toMiB(budget), 1)});
        table.print();
    }

    std::printf("\nShape targets: removing REG, refinement or "
                "restarts increases redundancy; the planner replaces "
                "on-device OOM retries with cheap estimator calls. "
                "(Degree vertex weights — our extension, not in the "
                "paper — can edge ahead of unit weights.)\n");
    return 0;
}
