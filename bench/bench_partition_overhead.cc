/**
 * @file
 * Extension bench (paper future work §7, "optimize the REG
 * construction and graph partition to reduce the partitioning
 * overhead"): per-epoch partitioning cost, broken into REG build vs
 * K-way solve, the warm-start speedup across resampled epochs, and
 * the parallel batch-preparation speedup (sampling + REG build) vs
 * the global ThreadPool size. Preparation outputs are bit-identical
 * at every thread count (tests/test_parallel_determinism.cc), so the
 * sweep measures pure wall-clock.
 */
#include <cstdio>

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace betty;
    using namespace betty::benchutil;
    ObsSession obs("bench_partition_overhead", &argc, argv);

    std::printf("Partitioning overhead and warm-start speedup, "
                "products_like\n");
    const auto ds = loadBenchDataset("products_like", 0.3);
    std::vector<int64_t> seeds(
        ds.trainNodes.begin(),
        ds.trainNodes.begin() +
            std::min<size_t>(ds.trainNodes.size(), 2048));

    // Phase breakdown at several K on one batch.
    {
        NeighborSampler sampler(ds.graph, {5, 10}, 7);
        const auto full = sampler.sample(seeds);
        TablePrinter table("cold-start phase breakdown (one batch)");
        table.setHeader({"K", "reg_build_ms", "kway_ms",
                         "extract_ms"});
        for (int32_t k : {4, 16, 64}) {
            Timer reg_timer;
            const auto reg = buildReg(full.blocks.back());
            const double reg_ms = reg_timer.milliseconds();

            Timer kway_timer;
            KwayOptions opts;
            opts.k = k;
            const auto parts = kwayPartition(reg, opts);
            const double kway_ms = kway_timer.milliseconds();

            Timer extract_timer;
            const auto micros = extractMicroBatches(
                full, groupByPart(full.outputNodes(), parts, k));
            const double extract_ms = extract_timer.milliseconds();

            table.addRow({std::to_string(k),
                          TablePrinter::num(reg_ms, 2),
                          TablePrinter::num(kway_ms, 2),
                          TablePrinter::num(extract_ms, 2)});
            obs.result("cold.k" + std::to_string(k) + ".reg_ms",
                       reg_ms);
            obs.result("cold.k" + std::to_string(k) + ".kway_ms",
                       kway_ms);
        }
        table.print();
    }

    // Warm start across resampled epochs.
    {
        const int32_t k = 16;
        const int epochs = 6;

        BettyOptions warm_opts;
        warm_opts.warmStart = true;
        BettyPartitioner warm(warm_opts);
        BettyPartitioner cold;

        TablePrinter table("partition time per epoch (K = 16, "
                           "resampled batch each epoch)");
        table.setHeader({"epoch", "cold_ms", "warm_ms", "speedup",
                         "cold_red", "warm_red"});
        for (int epoch = 1; epoch <= epochs; ++epoch) {
            NeighborSampler sampler(ds.graph, {5, 10},
                                    uint64_t(epoch));
            const auto batch = sampler.sample(seeds);

            Timer cold_timer;
            const auto cold_groups = cold.partition(batch, k);
            const double cold_ms = cold_timer.milliseconds();

            Timer warm_timer;
            const auto warm_groups = warm.partition(batch, k);
            const double warm_ms = warm_timer.milliseconds();

            const int64_t cold_red = inputNodeRedundancy(
                batch, extractMicroBatches(batch, cold_groups));
            const int64_t warm_red = inputNodeRedundancy(
                batch, extractMicroBatches(batch, warm_groups));
            if (epoch == epochs)
                obs.result("warm.final_speedup",
                           cold_ms / warm_ms);
            table.addRow({std::to_string(epoch),
                          TablePrinter::num(cold_ms, 2),
                          TablePrinter::num(warm_ms, 2),
                          TablePrinter::num(cold_ms / warm_ms, 2) +
                              "x",
                          TablePrinter::count(cold_red),
                          TablePrinter::count(warm_red)});
        }
        table.print();
    }

    // Parallel preparation: sampling + REG build vs thread count.
    {
        TablePrinter table("parallel batch preparation (sample + "
                           "REG build, best of 3)");
        table.setHeader({"threads", "sample_ms", "reg_ms",
                         "total_ms", "speedup"});
        double serial_total = 0.0;
        for (int32_t threads : {1, 2, 4}) {
            ThreadPool::setGlobalThreads(threads);
            double best_sample = 1e300, best_reg = 1e300;
            for (int rep = 0; rep < 3; ++rep) {
                NeighborSampler sampler(ds.graph, {5, 10}, 7);
                Timer sample_timer;
                const auto batch = sampler.sample(seeds);
                best_sample = std::min(best_sample,
                                       sample_timer.milliseconds());
                Timer reg_timer;
                const auto reg = buildReg(batch.blocks.back());
                best_reg =
                    std::min(best_reg, reg_timer.milliseconds());
            }
            const double total = best_sample + best_reg;
            if (threads == 1)
                serial_total = total;
            table.addRow({std::to_string(threads),
                          TablePrinter::num(best_sample, 2),
                          TablePrinter::num(best_reg, 2),
                          TablePrinter::num(total, 2),
                          TablePrinter::num(serial_total / total, 2) +
                              "x"});
        }
        ThreadPool::setGlobalThreads(1);
        table.print();
    }

    // Redundancy capture: how much of each partitioner's residual
    // input-node redundancy a feature cache (docs/CACHING.md) turns
    // back into hits. Feeds micro-batch input rows straight into a
    // FeatureCache — no training — so the table isolates the
    // partitioner/cache interaction: betty leaves the least
    // redundancy, so it also leaves the least for the cache to
    // recapture within an epoch.
    {
        const int32_t k = 16;
        const int64_t row_bytes =
            ds.featureDim() * int64_t(sizeof(float));
        NeighborSampler sampler(ds.graph, {5, 10}, 7);
        const auto full = sampler.sample(seeds);
        TablePrinter table("redundancy captured by a feature cache "
                           "(K = 16, one epoch)");
        table.setHeader({"partitioner", "redundant_nodes",
                         "cache_hits", "saved_mib", "captured_%"});
        for (const auto& pname : partitionerNames()) {
            auto part = makePartitioner(pname, ds.graph);
            const auto micros =
                extractMicroBatches(full, part->partition(full, k));
            const int64_t redundancy =
                inputNodeRedundancy(full, micros);
            FeatureCache cache(nullptr, cacheCapacityBytes(),
                               row_bytes, cachePolicy());
            int64_t hits = 0;
            for (const auto& micro : micros)
                hits += cache.access(micro.inputNodes()).hits;
            table.addRow(
                {pname, TablePrinter::count(redundancy),
                 TablePrinter::count(hits),
                 TablePrinter::num(toMiB(hits * row_bytes), 2),
                 TablePrinter::num(redundancy
                                       ? 100.0 * double(hits) /
                                             double(redundancy)
                                       : 0.0,
                                   1)});
        }
        table.print();
    }

    std::printf("\nShape targets: REG build and K-way solve dominate "
                "the cold path; from epoch 2 on, warm start cuts the "
                "solve cost by skipping the multilevel V-cycles while "
                "keeping redundancy within a few percent of cold. "
                "With >= 4 cores the parallel-preparation sweep "
                "should show >= 1.5x total speedup at 4 threads.\n");
    return 0;
}
