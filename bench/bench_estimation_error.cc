/**
 * @file
 * Table 7: memory-estimation error for the LSTM aggregator.
 *
 * For every dataset and K in {4, 8}, the micro-batch with the largest
 * estimate is trained once against the byte-accurate device model and
 * the relative error |estimate - measured| / measured is reported.
 * The paper's bar is < 8%.
 */
#include <cmath>
#include <cstdio>

#include "bench_common.h"

int
main()
{
    using namespace betty;
    using namespace betty::benchutil;

    std::printf("Table 7: memory estimation error, 1-layer SAGE + "
                "LSTM, fanout 10, hidden 16\n");

    const std::vector<std::pair<std::string, double>> datasets = {
        {"cora_like", 0.6},   {"pubmed_like", 0.25},
        {"reddit_like", 0.15}, {"arxiv_like", 0.1},
        {"products_like", 0.05}};

    TablePrinter table("Table 7 analog");
    table.setHeader({"dataset", "K", "est_MiB", "measured_MiB",
                     "error_%"});
    double worst = 0.0;
    for (const auto& [name, scale] : datasets) {
        const auto ds = loadBenchDataset(name, scale);
        NeighborSampler sampler(ds.graph, {10}, 7);
        std::vector<int64_t> seeds(
            ds.trainNodes.begin(),
            ds.trainNodes.begin() +
                std::min<size_t>(ds.trainNodes.size(), 600));
        const auto full = sampler.sample(seeds);

        for (int32_t k : {4, 8}) {
            BettyPartitioner part;
            const auto micros =
                extractMicroBatches(full, part.partition(full, k));

            DeviceMemoryModel device;
            DeviceMemoryModel::Scope scope(device);
            SageConfig cfg;
            cfg.inputDim = ds.featureDim();
            cfg.hiddenDim = 16;
            cfg.numClasses = ds.numClasses;
            cfg.numLayers = 1;
            cfg.aggregator = AggregatorKind::Lstm;
            GraphSage model(cfg);
            Adam adam(model.parameters(), 0.01f);
            Trainer trainer(ds, model, adam, &device);
            const auto spec = model.memorySpec();

            // The largest micro-batch sets the peak.
            int64_t best_est = 0;
            size_t best_idx = 0;
            for (size_t i = 0; i < micros.size(); ++i) {
                if (micros[i].outputNodes().empty())
                    continue;
                const auto est =
                    estimateBatchMemory(micros[i], spec);
                if (est.peak > best_est) {
                    best_est = est.peak;
                    best_idx = i;
                }
            }
            const auto stats =
                trainer.trainMicroBatches({micros[best_idx]});
            const double err =
                100.0 *
                std::abs(double(best_est) -
                         double(stats.peakBytes)) /
                double(stats.peakBytes);
            worst = std::max(worst, err);
            table.addRow({name, std::to_string(k),
                          TablePrinter::num(toMiB(best_est), 2),
                          TablePrinter::num(toMiB(stats.peakBytes), 2),
                          TablePrinter::num(err, 2)});
        }
    }
    table.print();

    std::printf("\nworst-case error: %.2f%%\n", worst);
    std::printf("Shape target: every error below the paper's 8%% "
                "bar. (Our Eq. 5 constant is 30 — measured for this "
                "from-scratch LSTM — where PyTorch's is 18; see "
                "DESIGN.md.)\n");
    return 0;
}
