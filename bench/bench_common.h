/**
 * @file
 * Shared plumbing for the experiment harness.
 *
 * Every binary in bench/ regenerates one table or figure of the paper
 * (see DESIGN.md's per-experiment index) and prints the same
 * rows/series the paper reports. Two environment variables scale the
 * whole harness:
 *
 *   BETTY_BENCH_SCALE  multiplies dataset sizes (default 1.0 = the
 *                      scaled-down defaults chosen for minutes-long
 *                      CPU runs; raise toward paper sizes if you have
 *                      the patience).
 *   BETTY_DEVICE_GIB   simulated accelerator capacity (default 0.25
 *                      GiB — plays the role of the paper's 24 GB
 *                      RTX6000 at our dataset scale).
 *   BETTY_THREADS      global ThreadPool lanes for parallel batch
 *                      preparation (default 1 = serial). Results are
 *                      bit-identical for any value; only wall-clock
 *                      changes. Benches also accept --threads=N.
 *   BETTY_CACHE_GIB    feature-cache reservation for the cache-aware
 *                      sweeps (default 0.05 GiB; docs/CACHING.md).
 *                      Benches also accept --cache-gib=X.
 *   BETTY_CACHE_POLICY feature-cache replacement policy ("lru",
 *                      "lru-pinned"; default lru). Also
 *                      --cache-policy=NAME.
 */
#ifndef BETTY_BENCH_BENCH_COMMON_H
#define BETTY_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/feature_cache.h"
#include "core/betty.h"
#include "data/catalog.h"
#include "memory/device_memory.h"
#include "memory/transfer_model.h"
#include "nn/models.h"
#include "nn/optim.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/partitioner.h"
#include "sampling/neighbor_sampler.h"
#include "train/trainer.h"
#include "util/env_config.h"
#include "util/logging.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace betty::benchutil {

/** BETTY_BENCH_SCALE (default 1.0). Validation: util/env_config. */
inline double
envScale()
{
    return envcfg::benchScale();
}

/** BETTY_DEVICE_GIB as bytes (default 0.25 GiB). */
inline int64_t
deviceCapacityBytes()
{
    return envcfg::deviceCapacityBytes();
}

/** BETTY_CACHE_GIB as bytes (default 0.05 GiB): the feature-cache
 * reservation the cache-aware sweeps carve out of the device. */
inline int64_t
cacheCapacityBytes()
{
    return envcfg::cacheCapacityBytes();
}

/** BETTY_CACHE_POLICY (default pure LRU). */
inline CachePolicy
cachePolicy()
{
    const std::string name = envcfg::cachePolicyName();
    CachePolicy policy = CachePolicy::Lru;
    if (!parseCachePolicy(name, &policy))
        fatal("unknown BETTY_CACHE_POLICY '", name, "'");
    return policy;
}

/** Load a catalog dataset at bench scale (base further scalable). */
inline Dataset
loadBenchDataset(const std::string& name, double base_scale,
                 uint64_t seed = 42)
{
    return loadCatalogDataset(name, base_scale * envScale(), seed);
}

/** Build one of the four compared partitioners by name. */
inline std::unique_ptr<OutputPartitioner>
makePartitioner(const std::string& name, const CsrGraph& raw_graph)
{
    if (name == "range")
        return std::make_unique<RangePartitioner>();
    if (name == "random")
        return std::make_unique<RandomPartitioner>(17);
    if (name == "metis")
        return std::make_unique<MetisBaselinePartitioner>(raw_graph);
    if (name == "betty")
        return std::make_unique<BettyPartitioner>();
    fatal("unknown partitioner '", name, "'");
}

/** The sweep order used in every comparison figure. */
inline std::vector<std::string>
partitionerNames()
{
    return {"range", "random", "metis", "betty"};
}

/** Bytes -> GiB for table cells. */
inline double
toGiB(int64_t bytes)
{
    return double(bytes) / (1024.0 * 1024.0 * 1024.0);
}

/** Bytes -> MiB for table cells. */
inline double
toMiB(int64_t bytes)
{
    return double(bytes) / (1024.0 * 1024.0);
}

/**
 * Observability hookup for bench binaries: enables the collectors
 * when asked for via flags or environment, and writes the exports
 * when the session object is destroyed (end of main).
 *
 *   --trace-out=FILE / BETTY_TRACE_OUT=FILE    Chrome trace JSON
 *   --metrics-out=FILE / BETTY_METRICS_OUT=FILE  metrics snapshot
 *   --json=FILE / BETTY_BENCH_JSON=FILE   machine-readable results:
 *     key figures the bench records via result(), plus the full
 *     metrics snapshot (writeBenchJson below)
 *   --threads=N / BETTY_THREADS=N   global ThreadPool lanes
 *   --cache-gib=X / --cache-policy=NAME  feature-cache knobs
 *     (forwarded to the BETTY_CACHE_* variables read by
 *     cacheCapacityBytes()/cachePolicy())
 *
 * Recognized flags are removed from argc/argv so they never reach
 * google-benchmark's (strict) flag parser. With neither flag nor
 * env set, the collectors stay disabled: one branch per site.
 */
inline bool
writeBenchJson(const std::string& path, const std::string& bench_name,
               const std::vector<std::pair<std::string, double>>&
                   results);

class ObsSession
{
  public:
    ObsSession(const std::string& bench_name = "", int* argc = nullptr,
               char** argv = nullptr)
        : bench_name_(bench_name)
    {
        if (argc && argv)
            stripFlags(argc, argv);
        if (trace_out_.empty())
            if (const char* env = std::getenv("BETTY_TRACE_OUT"))
                trace_out_ = env;
        if (metrics_out_.empty())
            if (const char* env = std::getenv("BETTY_METRICS_OUT"))
                metrics_out_ = env;
        if (json_out_.empty())
            if (const char* env = std::getenv("BETTY_BENCH_JSON"))
                json_out_ = env;
        if (!trace_out_.empty())
            obs::Trace::setEnabled(true);
        // --json embeds the metrics snapshot, so it implies
        // collection even without --metrics-out.
        if (!metrics_out_.empty() || !json_out_.empty())
            obs::Metrics::setEnabled(true);
        if (threads_ > 0)
            ThreadPool::setGlobalThreads(threads_);
    }

    /** Record one key figure for the --json export ("k16.total_s"). */
    void
    result(const std::string& name, double value)
    {
        results_.emplace_back(name, value);
    }

    ~ObsSession()
    {
        if (!trace_out_.empty() &&
            !obs::Trace::writeChromeTrace(trace_out_))
            warn("could not write trace '", trace_out_, "'");
        if (!metrics_out_.empty() &&
            !obs::Metrics::writeJson(metrics_out_))
            warn("could not write metrics '", metrics_out_, "'");
        if (!json_out_.empty() &&
            !writeBenchJson(json_out_, bench_name_, results_))
            warn("could not write bench json '", json_out_, "'");
    }

    ObsSession(const ObsSession&) = delete;
    ObsSession& operator=(const ObsSession&) = delete;

  private:
    void
    stripFlags(int* argc, char** argv)
    {
        int kept = 1;
        for (int i = 1; i < *argc; ++i) {
            const char* arg = argv[i];
            if (std::strncmp(arg, "--trace-out=", 12) == 0)
                trace_out_ = arg + 12;
            else if (std::strncmp(arg, "--metrics-out=", 14) == 0)
                metrics_out_ = arg + 14;
            else if (std::strncmp(arg, "--json=", 7) == 0)
                json_out_ = arg + 7;
            else if (std::strncmp(arg, "--threads=", 10) == 0) {
                int64_t parsed = 0;
                if (!envcfg::parseInt(arg + 10, &parsed) ||
                    parsed < 1)
                    fatal("malformed --threads='", arg + 10,
                          "': expected an integer >= 1");
                threads_ = int32_t(parsed);
            }
            else if (std::strncmp(arg, "--cache-gib=", 12) == 0)
                setenv("BETTY_CACHE_GIB", arg + 12, 1);
            else if (std::strncmp(arg, "--cache-policy=", 15) == 0)
                setenv("BETTY_CACHE_POLICY", arg + 15, 1);
            else
                argv[kept++] = argv[i];
        }
        *argc = kept;
    }

    std::string bench_name_;
    std::string trace_out_;
    std::string metrics_out_;
    std::string json_out_;
    std::vector<std::pair<std::string, double>> results_;
    int32_t threads_ = 0;
};

/**
 * Persist one bench result as JSON with the current metrics snapshot
 * embedded, so a BENCH_*.json entry carries the per-phase breakdown
 * (counters/histograms/residuals), not just end-to-end seconds.
 * Returns success.
 */
inline bool
writeBenchJson(const std::string& path, const std::string& bench_name,
               const std::vector<std::pair<std::string, double>>&
                   results)
{
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (!file)
        return false;
    std::string out = "{\n  \"bench\": \"" + bench_name + "\",\n";
    out += "  \"results\": {";
    for (size_t i = 0; i < results.size(); ++i) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", results[i].second);
        out += i ? ",\n    \"" : "\n    \"";
        out += results[i].first + "\": " + buf;
    }
    out += results.empty() ? "},\n" : "\n  },\n";
    out += "  \"metrics\": " + obs::Metrics::snapshotJson();
    out += "}\n";
    const size_t written =
        std::fwrite(out.data(), 1, out.size(), file);
    std::fclose(file);
    return written == out.size();
}

} // namespace betty::benchutil

#endif // BETTY_BENCH_BENCH_COMMON_H
