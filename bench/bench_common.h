/**
 * @file
 * Shared plumbing for the experiment harness.
 *
 * Every binary in bench/ regenerates one table or figure of the paper
 * (see DESIGN.md's per-experiment index) and prints the same
 * rows/series the paper reports. Two environment variables scale the
 * whole harness:
 *
 *   BETTY_BENCH_SCALE  multiplies dataset sizes (default 1.0 = the
 *                      scaled-down defaults chosen for minutes-long
 *                      CPU runs; raise toward paper sizes if you have
 *                      the patience).
 *   BETTY_DEVICE_GIB   simulated accelerator capacity (default 0.25
 *                      GiB — plays the role of the paper's 24 GB
 *                      RTX6000 at our dataset scale).
 */
#ifndef BETTY_BENCH_BENCH_COMMON_H
#define BETTY_BENCH_BENCH_COMMON_H

#include <cstdlib>
#include <memory>
#include <string>

#include "core/betty.h"
#include "data/catalog.h"
#include "memory/device_memory.h"
#include "memory/transfer_model.h"
#include "nn/models.h"
#include "nn/optim.h"
#include "partition/partitioner.h"
#include "sampling/neighbor_sampler.h"
#include "train/trainer.h"
#include "util/logging.h"
#include "util/table.h"
#include "util/timer.h"

namespace betty::benchutil {

/** BETTY_BENCH_SCALE (default 1.0). */
inline double
envScale()
{
    if (const char* env = std::getenv("BETTY_BENCH_SCALE"))
        return std::atof(env);
    return 1.0;
}

/** BETTY_DEVICE_GIB as bytes (default 0.25 GiB). */
inline int64_t
deviceCapacityBytes()
{
    double gib_value = 0.25;
    if (const char* env = std::getenv("BETTY_DEVICE_GIB"))
        gib_value = std::atof(env);
    return gib(gib_value);
}

/** Load a catalog dataset at bench scale (base further scalable). */
inline Dataset
loadBenchDataset(const std::string& name, double base_scale,
                 uint64_t seed = 42)
{
    return loadCatalogDataset(name, base_scale * envScale(), seed);
}

/** Build one of the four compared partitioners by name. */
inline std::unique_ptr<OutputPartitioner>
makePartitioner(const std::string& name, const CsrGraph& raw_graph)
{
    if (name == "range")
        return std::make_unique<RangePartitioner>();
    if (name == "random")
        return std::make_unique<RandomPartitioner>(17);
    if (name == "metis")
        return std::make_unique<MetisBaselinePartitioner>(raw_graph);
    if (name == "betty")
        return std::make_unique<BettyPartitioner>();
    fatal("unknown partitioner '", name, "'");
}

/** The sweep order used in every comparison figure. */
inline std::vector<std::string>
partitionerNames()
{
    return {"range", "random", "metis", "betty"};
}

/** Bytes -> GiB for table cells. */
inline double
toGiB(int64_t bytes)
{
    return double(bytes) / (1024.0 * 1024.0 * 1024.0);
}

/** Bytes -> MiB for table cells. */
inline double
toMiB(int64_t bytes)
{
    return double(bytes) / (1024.0 * 1024.0);
}

} // namespace betty::benchutil

#endif // BETTY_BENCH_BENCH_COMMON_H
