/**
 * @file
 * Shared plumbing for the experiment harness.
 *
 * Every binary in bench/ regenerates one table or figure of the paper
 * (see DESIGN.md's per-experiment index) and prints the same
 * rows/series the paper reports. Two environment variables scale the
 * whole harness:
 *
 *   BETTY_BENCH_SCALE  multiplies dataset sizes (default 1.0 = the
 *                      scaled-down defaults chosen for minutes-long
 *                      CPU runs; raise toward paper sizes if you have
 *                      the patience).
 *   BETTY_DEVICE_GIB   simulated accelerator capacity (default 0.25
 *                      GiB — plays the role of the paper's 24 GB
 *                      RTX6000 at our dataset scale).
 *   BETTY_THREADS      global ThreadPool lanes for parallel batch
 *                      preparation (default 1 = serial). Results are
 *                      bit-identical for any value; only wall-clock
 *                      changes. Benches also accept --threads=N.
 *   BETTY_CACHE_GIB    feature-cache reservation for the cache-aware
 *                      sweeps (default 0.05 GiB; docs/CACHING.md).
 *                      Benches also accept --cache-gib=X.
 *   BETTY_CACHE_POLICY feature-cache replacement policy ("lru",
 *                      "lru-pinned"; default lru). Also
 *                      --cache-policy=NAME.
 */
#ifndef BETTY_BENCH_BENCH_COMMON_H
#define BETTY_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/feature_cache.h"
#include "core/betty.h"
#include "data/catalog.h"
#include "memory/device_memory.h"
#include "memory/transfer_model.h"
#include "nn/models.h"
#include "nn/optim.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/partitioner.h"
#include "sampling/neighbor_sampler.h"
#include "train/trainer.h"
#include "util/logging.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace betty::benchutil {

/** BETTY_BENCH_SCALE (default 1.0). */
inline double
envScale()
{
    if (const char* env = std::getenv("BETTY_BENCH_SCALE"))
        return std::atof(env);
    return 1.0;
}

/** BETTY_DEVICE_GIB as bytes (default 0.25 GiB). */
inline int64_t
deviceCapacityBytes()
{
    double gib_value = 0.25;
    if (const char* env = std::getenv("BETTY_DEVICE_GIB"))
        gib_value = std::atof(env);
    return gib(gib_value);
}

/** BETTY_CACHE_GIB as bytes (default 0.05 GiB): the feature-cache
 * reservation the cache-aware sweeps carve out of the device. */
inline int64_t
cacheCapacityBytes()
{
    double gib_value = 0.05;
    if (const char* env = std::getenv("BETTY_CACHE_GIB"))
        gib_value = std::atof(env);
    return gib(gib_value);
}

/** BETTY_CACHE_POLICY (default pure LRU). */
inline CachePolicy
cachePolicy()
{
    CachePolicy policy = CachePolicy::Lru;
    if (const char* env = std::getenv("BETTY_CACHE_POLICY"))
        if (!parseCachePolicy(env, &policy))
            fatal("unknown BETTY_CACHE_POLICY '", env, "'");
    return policy;
}

/** Load a catalog dataset at bench scale (base further scalable). */
inline Dataset
loadBenchDataset(const std::string& name, double base_scale,
                 uint64_t seed = 42)
{
    return loadCatalogDataset(name, base_scale * envScale(), seed);
}

/** Build one of the four compared partitioners by name. */
inline std::unique_ptr<OutputPartitioner>
makePartitioner(const std::string& name, const CsrGraph& raw_graph)
{
    if (name == "range")
        return std::make_unique<RangePartitioner>();
    if (name == "random")
        return std::make_unique<RandomPartitioner>(17);
    if (name == "metis")
        return std::make_unique<MetisBaselinePartitioner>(raw_graph);
    if (name == "betty")
        return std::make_unique<BettyPartitioner>();
    fatal("unknown partitioner '", name, "'");
}

/** The sweep order used in every comparison figure. */
inline std::vector<std::string>
partitionerNames()
{
    return {"range", "random", "metis", "betty"};
}

/** Bytes -> GiB for table cells. */
inline double
toGiB(int64_t bytes)
{
    return double(bytes) / (1024.0 * 1024.0 * 1024.0);
}

/** Bytes -> MiB for table cells. */
inline double
toMiB(int64_t bytes)
{
    return double(bytes) / (1024.0 * 1024.0);
}

/**
 * Observability hookup for bench binaries: enables the collectors
 * when asked for via flags or environment, and writes the exports
 * when the session object is destroyed (end of main).
 *
 *   --trace-out=FILE / BETTY_TRACE_OUT=FILE    Chrome trace JSON
 *   --metrics-out=FILE / BETTY_METRICS_OUT=FILE  metrics snapshot
 *   --threads=N / BETTY_THREADS=N   global ThreadPool lanes
 *   --cache-gib=X / --cache-policy=NAME  feature-cache knobs
 *     (forwarded to the BETTY_CACHE_* variables read by
 *     cacheCapacityBytes()/cachePolicy())
 *
 * Recognized flags are removed from argc/argv so they never reach
 * google-benchmark's (strict) flag parser. With neither flag nor
 * env set, the collectors stay disabled: one branch per site.
 */
class ObsSession
{
  public:
    ObsSession(int* argc = nullptr, char** argv = nullptr)
    {
        if (argc && argv)
            stripFlags(argc, argv);
        if (trace_out_.empty())
            if (const char* env = std::getenv("BETTY_TRACE_OUT"))
                trace_out_ = env;
        if (metrics_out_.empty())
            if (const char* env = std::getenv("BETTY_METRICS_OUT"))
                metrics_out_ = env;
        if (!trace_out_.empty())
            obs::Trace::setEnabled(true);
        if (!metrics_out_.empty())
            obs::Metrics::setEnabled(true);
        if (threads_ > 0)
            ThreadPool::setGlobalThreads(threads_);
    }

    ~ObsSession()
    {
        if (!trace_out_.empty() &&
            !obs::Trace::writeChromeTrace(trace_out_))
            warn("could not write trace '", trace_out_, "'");
        if (!metrics_out_.empty() &&
            !obs::Metrics::writeJson(metrics_out_))
            warn("could not write metrics '", metrics_out_, "'");
    }

    ObsSession(const ObsSession&) = delete;
    ObsSession& operator=(const ObsSession&) = delete;

  private:
    void
    stripFlags(int* argc, char** argv)
    {
        int kept = 1;
        for (int i = 1; i < *argc; ++i) {
            const char* arg = argv[i];
            if (std::strncmp(arg, "--trace-out=", 12) == 0)
                trace_out_ = arg + 12;
            else if (std::strncmp(arg, "--metrics-out=", 14) == 0)
                metrics_out_ = arg + 14;
            else if (std::strncmp(arg, "--threads=", 10) == 0)
                threads_ = std::atoi(arg + 10);
            else if (std::strncmp(arg, "--cache-gib=", 12) == 0)
                setenv("BETTY_CACHE_GIB", arg + 12, 1);
            else if (std::strncmp(arg, "--cache-policy=", 15) == 0)
                setenv("BETTY_CACHE_POLICY", arg + 15, 1);
            else
                argv[kept++] = argv[i];
        }
        *argc = kept;
    }

    std::string trace_out_;
    std::string metrics_out_;
    int32_t threads_ = 0;
};

/**
 * Persist one bench result as JSON with the current metrics snapshot
 * embedded, so a BENCH_*.json entry carries the per-phase breakdown
 * (counters/histograms/residuals), not just end-to-end seconds.
 * Returns success.
 */
inline bool
writeBenchJson(const std::string& path, const std::string& bench_name,
               const std::vector<std::pair<std::string, double>>&
                   results)
{
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (!file)
        return false;
    std::string out = "{\n  \"bench\": \"" + bench_name + "\",\n";
    out += "  \"results\": {";
    for (size_t i = 0; i < results.size(); ++i) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", results[i].second);
        out += i ? ",\n    \"" : "\n    \"";
        out += results[i].first + "\": " + buf;
    }
    out += results.empty() ? "},\n" : "\n  },\n";
    out += "  \"metrics\": " + obs::Metrics::snapshotJson();
    out += "}\n";
    const size_t written =
        std::fwrite(out.data(), 1, out.size(), file);
    std::fclose(file);
    return written == out.size();
}

} // namespace betty::benchutil

#endif // BETTY_BENCH_BENCH_COMMON_H
