file(REMOVE_RECURSE
  "libbetty_partition.a"
)
