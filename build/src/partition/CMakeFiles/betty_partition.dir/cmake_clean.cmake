file(REMOVE_RECURSE
  "CMakeFiles/betty_partition.dir/coarsen.cc.o"
  "CMakeFiles/betty_partition.dir/coarsen.cc.o.d"
  "CMakeFiles/betty_partition.dir/initial.cc.o"
  "CMakeFiles/betty_partition.dir/initial.cc.o.d"
  "CMakeFiles/betty_partition.dir/kway_partitioner.cc.o"
  "CMakeFiles/betty_partition.dir/kway_partitioner.cc.o.d"
  "CMakeFiles/betty_partition.dir/partitioner.cc.o"
  "CMakeFiles/betty_partition.dir/partitioner.cc.o.d"
  "CMakeFiles/betty_partition.dir/refine.cc.o"
  "CMakeFiles/betty_partition.dir/refine.cc.o.d"
  "CMakeFiles/betty_partition.dir/reg.cc.o"
  "CMakeFiles/betty_partition.dir/reg.cc.o.d"
  "libbetty_partition.a"
  "libbetty_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/betty_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
