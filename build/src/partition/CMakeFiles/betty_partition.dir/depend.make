# Empty dependencies file for betty_partition.
# This may be replaced when dependencies are built.
