
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/coarsen.cc" "src/partition/CMakeFiles/betty_partition.dir/coarsen.cc.o" "gcc" "src/partition/CMakeFiles/betty_partition.dir/coarsen.cc.o.d"
  "/root/repo/src/partition/initial.cc" "src/partition/CMakeFiles/betty_partition.dir/initial.cc.o" "gcc" "src/partition/CMakeFiles/betty_partition.dir/initial.cc.o.d"
  "/root/repo/src/partition/kway_partitioner.cc" "src/partition/CMakeFiles/betty_partition.dir/kway_partitioner.cc.o" "gcc" "src/partition/CMakeFiles/betty_partition.dir/kway_partitioner.cc.o.d"
  "/root/repo/src/partition/partitioner.cc" "src/partition/CMakeFiles/betty_partition.dir/partitioner.cc.o" "gcc" "src/partition/CMakeFiles/betty_partition.dir/partitioner.cc.o.d"
  "/root/repo/src/partition/refine.cc" "src/partition/CMakeFiles/betty_partition.dir/refine.cc.o" "gcc" "src/partition/CMakeFiles/betty_partition.dir/refine.cc.o.d"
  "/root/repo/src/partition/reg.cc" "src/partition/CMakeFiles/betty_partition.dir/reg.cc.o" "gcc" "src/partition/CMakeFiles/betty_partition.dir/reg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/betty_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/betty_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/betty_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
