# Empty dependencies file for betty_train.
# This may be replaced when dependencies are built.
