file(REMOVE_RECURSE
  "libbetty_train.a"
)
