file(REMOVE_RECURSE
  "CMakeFiles/betty_train.dir/multi_device.cc.o"
  "CMakeFiles/betty_train.dir/multi_device.cc.o.d"
  "CMakeFiles/betty_train.dir/trainer.cc.o"
  "CMakeFiles/betty_train.dir/trainer.cc.o.d"
  "libbetty_train.a"
  "libbetty_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/betty_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
