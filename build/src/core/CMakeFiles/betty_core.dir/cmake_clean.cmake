file(REMOVE_RECURSE
  "CMakeFiles/betty_core.dir/betty.cc.o"
  "CMakeFiles/betty_core.dir/betty.cc.o.d"
  "CMakeFiles/betty_core.dir/micro_batch.cc.o"
  "CMakeFiles/betty_core.dir/micro_batch.cc.o.d"
  "libbetty_core.a"
  "libbetty_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/betty_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
