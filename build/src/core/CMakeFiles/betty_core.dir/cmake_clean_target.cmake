file(REMOVE_RECURSE
  "libbetty_core.a"
)
