# Empty compiler generated dependencies file for betty_core.
# This may be replaced when dependencies are built.
