file(REMOVE_RECURSE
  "CMakeFiles/betty_nn.dir/gat_conv.cc.o"
  "CMakeFiles/betty_nn.dir/gat_conv.cc.o.d"
  "CMakeFiles/betty_nn.dir/gcn_conv.cc.o"
  "CMakeFiles/betty_nn.dir/gcn_conv.cc.o.d"
  "CMakeFiles/betty_nn.dir/models.cc.o"
  "CMakeFiles/betty_nn.dir/models.cc.o.d"
  "CMakeFiles/betty_nn.dir/optim.cc.o"
  "CMakeFiles/betty_nn.dir/optim.cc.o.d"
  "CMakeFiles/betty_nn.dir/sage_conv.cc.o"
  "CMakeFiles/betty_nn.dir/sage_conv.cc.o.d"
  "libbetty_nn.a"
  "libbetty_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/betty_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
