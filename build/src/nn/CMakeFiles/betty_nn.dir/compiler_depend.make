# Empty compiler generated dependencies file for betty_nn.
# This may be replaced when dependencies are built.
