file(REMOVE_RECURSE
  "libbetty_nn.a"
)
