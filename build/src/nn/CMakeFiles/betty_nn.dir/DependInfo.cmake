
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/gat_conv.cc" "src/nn/CMakeFiles/betty_nn.dir/gat_conv.cc.o" "gcc" "src/nn/CMakeFiles/betty_nn.dir/gat_conv.cc.o.d"
  "/root/repo/src/nn/gcn_conv.cc" "src/nn/CMakeFiles/betty_nn.dir/gcn_conv.cc.o" "gcc" "src/nn/CMakeFiles/betty_nn.dir/gcn_conv.cc.o.d"
  "/root/repo/src/nn/models.cc" "src/nn/CMakeFiles/betty_nn.dir/models.cc.o" "gcc" "src/nn/CMakeFiles/betty_nn.dir/models.cc.o.d"
  "/root/repo/src/nn/optim.cc" "src/nn/CMakeFiles/betty_nn.dir/optim.cc.o" "gcc" "src/nn/CMakeFiles/betty_nn.dir/optim.cc.o.d"
  "/root/repo/src/nn/sage_conv.cc" "src/nn/CMakeFiles/betty_nn.dir/sage_conv.cc.o" "gcc" "src/nn/CMakeFiles/betty_nn.dir/sage_conv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memory/CMakeFiles/betty_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/betty_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/betty_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/betty_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/betty_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
