# Empty dependencies file for betty_tensor.
# This may be replaced when dependencies are built.
