file(REMOVE_RECURSE
  "CMakeFiles/betty_tensor.dir/autograd.cc.o"
  "CMakeFiles/betty_tensor.dir/autograd.cc.o.d"
  "CMakeFiles/betty_tensor.dir/tensor.cc.o"
  "CMakeFiles/betty_tensor.dir/tensor.cc.o.d"
  "libbetty_tensor.a"
  "libbetty_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/betty_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
