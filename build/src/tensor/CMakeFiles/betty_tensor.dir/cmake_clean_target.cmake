file(REMOVE_RECURSE
  "libbetty_tensor.a"
)
