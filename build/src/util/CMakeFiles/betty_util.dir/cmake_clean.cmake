file(REMOVE_RECURSE
  "CMakeFiles/betty_util.dir/rng.cc.o"
  "CMakeFiles/betty_util.dir/rng.cc.o.d"
  "CMakeFiles/betty_util.dir/table.cc.o"
  "CMakeFiles/betty_util.dir/table.cc.o.d"
  "libbetty_util.a"
  "libbetty_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/betty_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
