file(REMOVE_RECURSE
  "libbetty_util.a"
)
