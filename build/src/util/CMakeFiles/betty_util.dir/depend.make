# Empty dependencies file for betty_util.
# This may be replaced when dependencies are built.
