file(REMOVE_RECURSE
  "libbetty_memory.a"
)
