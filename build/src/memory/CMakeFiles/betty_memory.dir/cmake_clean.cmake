file(REMOVE_RECURSE
  "CMakeFiles/betty_memory.dir/estimator.cc.o"
  "CMakeFiles/betty_memory.dir/estimator.cc.o.d"
  "libbetty_memory.a"
  "libbetty_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/betty_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
