# Empty dependencies file for betty_memory.
# This may be replaced when dependencies are built.
