file(REMOVE_RECURSE
  "libbetty_graph.a"
)
