# Empty dependencies file for betty_graph.
# This may be replaced when dependencies are built.
