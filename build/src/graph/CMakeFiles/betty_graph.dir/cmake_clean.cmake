file(REMOVE_RECURSE
  "CMakeFiles/betty_graph.dir/csr_graph.cc.o"
  "CMakeFiles/betty_graph.dir/csr_graph.cc.o.d"
  "CMakeFiles/betty_graph.dir/weighted_graph.cc.o"
  "CMakeFiles/betty_graph.dir/weighted_graph.cc.o.d"
  "libbetty_graph.a"
  "libbetty_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/betty_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
