# Empty dependencies file for betty_data.
# This may be replaced when dependencies are built.
