file(REMOVE_RECURSE
  "libbetty_data.a"
)
