file(REMOVE_RECURSE
  "CMakeFiles/betty_data.dir/catalog.cc.o"
  "CMakeFiles/betty_data.dir/catalog.cc.o.d"
  "CMakeFiles/betty_data.dir/io.cc.o"
  "CMakeFiles/betty_data.dir/io.cc.o.d"
  "CMakeFiles/betty_data.dir/synthetic.cc.o"
  "CMakeFiles/betty_data.dir/synthetic.cc.o.d"
  "libbetty_data.a"
  "libbetty_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/betty_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
