file(REMOVE_RECURSE
  "libbetty_sampling.a"
)
