# Empty dependencies file for betty_sampling.
# This may be replaced when dependencies are built.
