file(REMOVE_RECURSE
  "CMakeFiles/betty_sampling.dir/block.cc.o"
  "CMakeFiles/betty_sampling.dir/block.cc.o.d"
  "CMakeFiles/betty_sampling.dir/neighbor_sampler.cc.o"
  "CMakeFiles/betty_sampling.dir/neighbor_sampler.cc.o.d"
  "libbetty_sampling.a"
  "libbetty_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/betty_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
