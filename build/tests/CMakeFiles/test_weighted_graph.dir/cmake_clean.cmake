file(REMOVE_RECURSE
  "CMakeFiles/test_weighted_graph.dir/test_weighted_graph.cc.o"
  "CMakeFiles/test_weighted_graph.dir/test_weighted_graph.cc.o.d"
  "test_weighted_graph"
  "test_weighted_graph.pdb"
  "test_weighted_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weighted_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
