# Empty dependencies file for test_weighted_graph.
# This may be replaced when dependencies are built.
