file(REMOVE_RECURSE
  "CMakeFiles/test_micro_batch.dir/test_micro_batch.cc.o"
  "CMakeFiles/test_micro_batch.dir/test_micro_batch.cc.o.d"
  "test_micro_batch"
  "test_micro_batch.pdb"
  "test_micro_batch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_micro_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
