file(REMOVE_RECURSE
  "CMakeFiles/test_gradient_equivalence.dir/test_gradient_equivalence.cc.o"
  "CMakeFiles/test_gradient_equivalence.dir/test_gradient_equivalence.cc.o.d"
  "test_gradient_equivalence"
  "test_gradient_equivalence.pdb"
  "test_gradient_equivalence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gradient_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
