# Empty dependencies file for test_gradient_equivalence.
# This may be replaced when dependencies are built.
