file(REMOVE_RECURSE
  "CMakeFiles/test_gcn_gin.dir/test_gcn_gin.cc.o"
  "CMakeFiles/test_gcn_gin.dir/test_gcn_gin.cc.o.d"
  "test_gcn_gin"
  "test_gcn_gin.pdb"
  "test_gcn_gin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcn_gin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
