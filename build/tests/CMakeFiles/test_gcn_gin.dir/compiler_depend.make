# Empty compiler generated dependencies file for test_gcn_gin.
# This may be replaced when dependencies are built.
