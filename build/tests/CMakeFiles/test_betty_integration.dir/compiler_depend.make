# Empty compiler generated dependencies file for test_betty_integration.
# This may be replaced when dependencies are built.
