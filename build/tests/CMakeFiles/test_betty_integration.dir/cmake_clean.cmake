file(REMOVE_RECURSE
  "CMakeFiles/test_betty_integration.dir/test_betty_integration.cc.o"
  "CMakeFiles/test_betty_integration.dir/test_betty_integration.cc.o.d"
  "test_betty_integration"
  "test_betty_integration.pdb"
  "test_betty_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_betty_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
