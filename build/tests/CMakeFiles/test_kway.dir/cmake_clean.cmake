file(REMOVE_RECURSE
  "CMakeFiles/test_kway.dir/test_kway.cc.o"
  "CMakeFiles/test_kway.dir/test_kway.cc.o.d"
  "test_kway"
  "test_kway.pdb"
  "test_kway[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
