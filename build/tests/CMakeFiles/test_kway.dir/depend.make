# Empty dependencies file for test_kway.
# This may be replaced when dependencies are built.
