# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_table[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_autograd[1]_include.cmake")
include("/root/repo/build/tests/test_csr_graph[1]_include.cmake")
include("/root/repo/build/tests/test_weighted_graph[1]_include.cmake")
include("/root/repo/build/tests/test_synthetic[1]_include.cmake")
include("/root/repo/build/tests/test_block[1]_include.cmake")
include("/root/repo/build/tests/test_sampler[1]_include.cmake")
include("/root/repo/build/tests/test_kway[1]_include.cmake")
include("/root/repo/build/tests/test_reg[1]_include.cmake")
include("/root/repo/build/tests/test_partitioners[1]_include.cmake")
include("/root/repo/build/tests/test_micro_batch[1]_include.cmake")
include("/root/repo/build/tests/test_estimator[1]_include.cmake")
include("/root/repo/build/tests/test_device_memory[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_training[1]_include.cmake")
include("/root/repo/build/tests/test_gradient_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_planner[1]_include.cmake")
include("/root/repo/build/tests/test_betty_integration[1]_include.cmake")
include("/root/repo/build/tests/test_multi_device[1]_include.cmake")
include("/root/repo/build/tests/test_warm_start[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_gcn_gin[1]_include.cmake")
