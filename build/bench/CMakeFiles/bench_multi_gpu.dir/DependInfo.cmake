
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_multi_gpu.cc" "bench/CMakeFiles/bench_multi_gpu.dir/bench_multi_gpu.cc.o" "gcc" "bench/CMakeFiles/bench_multi_gpu.dir/bench_multi_gpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/betty_core.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/betty_train.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/betty_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/betty_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/betty_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/betty_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/betty_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/betty_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/betty_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/betty_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
