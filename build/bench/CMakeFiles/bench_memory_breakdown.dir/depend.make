# Empty dependencies file for bench_memory_breakdown.
# This may be replaced when dependencies are built.
