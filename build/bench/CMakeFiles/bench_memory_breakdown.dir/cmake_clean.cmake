file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_breakdown.dir/bench_memory_breakdown.cc.o"
  "CMakeFiles/bench_memory_breakdown.dir/bench_memory_breakdown.cc.o.d"
  "bench_memory_breakdown"
  "bench_memory_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
