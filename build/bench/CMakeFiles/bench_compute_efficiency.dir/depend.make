# Empty dependencies file for bench_compute_efficiency.
# This may be replaced when dependencies are built.
