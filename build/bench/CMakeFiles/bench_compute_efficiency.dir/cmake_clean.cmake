file(REMOVE_RECURSE
  "CMakeFiles/bench_compute_efficiency.dir/bench_compute_efficiency.cc.o"
  "CMakeFiles/bench_compute_efficiency.dir/bench_compute_efficiency.cc.o.d"
  "bench_compute_efficiency"
  "bench_compute_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compute_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
