file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_vs_mini.dir/bench_micro_vs_mini.cc.o"
  "CMakeFiles/bench_micro_vs_mini.dir/bench_micro_vs_mini.cc.o.d"
  "bench_micro_vs_mini"
  "bench_micro_vs_mini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_vs_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
