# Empty compiler generated dependencies file for bench_micro_vs_mini.
# This may be replaced when dependencies are built.
