file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_wall.dir/bench_memory_wall.cc.o"
  "CMakeFiles/bench_memory_wall.dir/bench_memory_wall.cc.o.d"
  "bench_memory_wall"
  "bench_memory_wall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_wall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
