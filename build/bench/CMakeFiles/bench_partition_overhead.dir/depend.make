# Empty dependencies file for bench_partition_overhead.
# This may be replaced when dependencies are built.
