file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_overhead.dir/bench_partition_overhead.cc.o"
  "CMakeFiles/bench_partition_overhead.dir/bench_partition_overhead.cc.o.d"
  "bench_partition_overhead"
  "bench_partition_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
