file(REMOVE_RECURSE
  "CMakeFiles/bench_mem_time_tradeoff.dir/bench_mem_time_tradeoff.cc.o"
  "CMakeFiles/bench_mem_time_tradeoff.dir/bench_mem_time_tradeoff.cc.o.d"
  "bench_mem_time_tradeoff"
  "bench_mem_time_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mem_time_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
