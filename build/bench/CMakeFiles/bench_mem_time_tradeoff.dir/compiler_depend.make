# Empty compiler generated dependencies file for bench_mem_time_tradeoff.
# This may be replaced when dependencies are built.
