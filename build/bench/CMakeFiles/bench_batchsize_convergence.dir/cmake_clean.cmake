file(REMOVE_RECURSE
  "CMakeFiles/bench_batchsize_convergence.dir/bench_batchsize_convergence.cc.o"
  "CMakeFiles/bench_batchsize_convergence.dir/bench_batchsize_convergence.cc.o.d"
  "bench_batchsize_convergence"
  "bench_batchsize_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batchsize_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
