# Empty dependencies file for bench_batchsize_convergence.
# This may be replaced when dependencies are built.
