file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_memory.dir/bench_partition_memory.cc.o"
  "CMakeFiles/bench_partition_memory.dir/bench_partition_memory.cc.o.d"
  "bench_partition_memory"
  "bench_partition_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
