# Empty dependencies file for bench_imbalance.
# This may be replaced when dependencies are built.
