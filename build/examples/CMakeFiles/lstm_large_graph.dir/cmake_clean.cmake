file(REMOVE_RECURSE
  "CMakeFiles/lstm_large_graph.dir/lstm_large_graph.cpp.o"
  "CMakeFiles/lstm_large_graph.dir/lstm_large_graph.cpp.o.d"
  "lstm_large_graph"
  "lstm_large_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lstm_large_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
