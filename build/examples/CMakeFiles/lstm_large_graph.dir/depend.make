# Empty dependencies file for lstm_large_graph.
# This may be replaced when dependencies are built.
