# Empty dependencies file for deep_sage.
# This may be replaced when dependencies are built.
