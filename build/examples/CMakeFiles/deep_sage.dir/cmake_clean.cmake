file(REMOVE_RECURSE
  "CMakeFiles/deep_sage.dir/deep_sage.cpp.o"
  "CMakeFiles/deep_sage.dir/deep_sage.cpp.o.d"
  "deep_sage"
  "deep_sage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_sage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
