/**
 * @file
 * Binary serialization of datasets and sampled batches.
 *
 * Mirrors the artifact's workflow (appendix A.4: gen_data.sh writes
 * "pickle files of full batch data after sampling" which the training
 * scripts then reload): sampling a large full batch once and reusing
 * it across experiments is much cheaper than resampling, and makes
 * runs byte-reproducible across processes.
 *
 * Format: little-endian, a magic tag + version per object, then raw
 * int64/float arrays. Not portable to big-endian machines — this is a
 * cache format, not an interchange format.
 */
#ifndef BETTY_DATA_IO_H
#define BETTY_DATA_IO_H

#include <string>

#include "data/dataset.h"
#include "sampling/block.h"

namespace betty {

/** @name Dataset serialization */
/** @{ */

/** Write @p dataset to @p path; returns false on I/O failure. */
bool saveDataset(const Dataset& dataset, const std::string& path);

/**
 * Read a dataset written by saveDataset. fatal() on malformed input
 * (bad magic/version); returns false only on plain I/O failure.
 */
bool loadDataset(Dataset& dataset, const std::string& path);

/** @} */

/** @name Batch serialization */
/** @{ */

/** Write a sampled multi-level batch to @p path. */
bool saveBatch(const MultiLayerBatch& batch, const std::string& path);

/** Read a batch written by saveBatch. */
bool loadBatch(MultiLayerBatch& batch, const std::string& path);

/** @} */

} // namespace betty

#endif // BETTY_DATA_IO_H
