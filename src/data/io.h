/**
 * @file
 * Binary serialization of datasets and sampled batches.
 *
 * Mirrors the artifact's workflow (appendix A.4: gen_data.sh writes
 * "pickle files of full batch data after sampling" which the training
 * scripts then reload): sampling a large full batch once and reusing
 * it across experiments is much cheaper than resampling, and makes
 * runs byte-reproducible across processes.
 *
 * Format: little-endian, a magic tag + version per object, then raw
 * int64/float arrays. Not portable to big-endian machines — this is a
 * cache format, not an interchange format.
 *
 * Malformed input (truncation, counts past end-of-file, NaN/Inf
 * features, out-of-range node/label ids) is detected and reported as
 * a typed IoStatus by the *Checked loaders — never undefined
 * behaviour, never a silent partial object. The bool wrappers keep
 * the historical behaviour of fatal()ing loudly on corruption.
 */
#ifndef BETTY_DATA_IO_H
#define BETTY_DATA_IO_H

#include <string>

#include "data/dataset.h"
#include "sampling/block.h"

namespace betty {

/** What went wrong reading or writing a serialized object. */
enum class IoError
{
    None = 0,
    /** The file could not be opened for reading. */
    NotFound,
    /** The magic tag is not the expected object type. */
    BadMagic,
    /** The format version is not supported by this build. */
    BadVersion,
    /** The file ends before the data its counts promise. */
    Truncated,
    /** Values that can never be valid (NaN/Inf features,
     * inconsistent array lengths, non-monotone offsets). */
    CorruptValues,
    /** An id (edge endpoint, label, split node) outside its domain. */
    OutOfRange,
    /** Array dimensions disagree with the object's own header. */
    ShapeMismatch,
    /** The file could not be opened or fully written. */
    WriteFailed,
};

/** Printable error category name. */
const char* ioErrorName(IoError error);

/** Typed result of a checked load/save. */
struct IoStatus
{
    IoError error = IoError::None;
    /** Human-readable detail ("" when ok). */
    std::string message;

    bool ok() const { return error == IoError::None; }
};

/** @name Dataset serialization */
/** @{ */

/** Write @p dataset to @p path; returns false on I/O failure. */
bool saveDataset(const Dataset& dataset, const std::string& path);

/**
 * Read a dataset written by saveDataset, validating structure and
 * values: truncated files, NaN/Inf features, and out-of-range
 * edge/label/split ids all produce a typed error with @p dataset
 * untouched — never UB or a silent partial dataset.
 */
IoStatus loadDatasetChecked(Dataset& dataset, const std::string& path);

/**
 * Read a dataset written by saveDataset. fatal() on malformed input
 * (bad magic/version/corruption); returns false only on plain I/O
 * failure.
 */
bool loadDataset(Dataset& dataset, const std::string& path);

/** @} */

/** @name Batch serialization */
/** @{ */

/** Write a sampled multi-level batch to @p path. */
bool saveBatch(const MultiLayerBatch& batch, const std::string& path);

/** Read a batch written by saveBatch, with full validation (see
 * loadDatasetChecked). */
IoStatus loadBatchChecked(MultiLayerBatch& batch,
                          const std::string& path);

/** Read a batch written by saveBatch. fatal() on malformed input. */
bool loadBatch(MultiLayerBatch& batch, const std::string& path);

/** @} */

} // namespace betty

#endif // BETTY_DATA_IO_H
