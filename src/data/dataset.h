/**
 * @file
 * A node-classification dataset: graph + features + labels + splits.
 */
#ifndef BETTY_DATA_DATASET_H
#define BETTY_DATA_DATASET_H

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "tensor/tensor.h"

namespace betty {

/**
 * Everything a training run needs about one input graph.
 *
 * Features live on the host ("CPU memory"); the training loops move
 * only the rows a micro-batch needs to the simulated device, which is
 * exactly the heterogeneous-memory usage Betty exploits (paper §4.1).
 */
struct Dataset
{
    std::string name;

    /** Directed graph; edge u -> v means v aggregates u's features. */
    CsrGraph graph;

    /** Node features, numNodes x featureDim, resident on host. */
    Tensor features;

    /** Integer class label per node. */
    std::vector<int32_t> labels;

    int32_t numClasses = 0;

    /** Node-id splits for train / validation / test. */
    std::vector<int64_t> trainNodes;
    std::vector<int64_t> valNodes;
    std::vector<int64_t> testNodes;

    int64_t numNodes() const { return graph.numNodes(); }
    int64_t numEdges() const { return graph.numEdges(); }
    int64_t featureDim() const { return features.cols(); }
};

} // namespace betty

#endif // BETTY_DATA_DATASET_H
