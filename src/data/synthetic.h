/**
 * @file
 * Synthetic dataset generation.
 *
 * Substitute for the paper's OGB/Reddit/Planetoid downloads (none are
 * available offline). The generator is a degree-corrected stochastic
 * block model: power-law degree weights reproduce the long-tail
 * in-degree distribution that drives the bucketing-explosion analysis
 * (paper §4.4.2, Figure 9), block structure (homophily) makes labels
 * genuinely learnable so the accuracy/convergence experiments
 * (Table 5, Figures 4 and 13) are meaningful, and hub sharing creates
 * the cross-micro-batch redundancy REG exists to remove (§4.3).
 */
#ifndef BETTY_DATA_SYNTHETIC_H
#define BETTY_DATA_SYNTHETIC_H

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace betty {

/** Parameters of one synthetic dataset. */
struct SyntheticSpec
{
    std::string name = "synthetic";
    int64_t numNodes = 1000;
    /** Average undirected degree; each pair adds both edge directions. */
    double avgDegree = 8.0;
    int64_t featureDim = 64;
    int32_t numClasses = 8;
    /** Probability an edge stays inside its source's class. */
    double homophily = 0.7;

    /**
     * Locality of cross-class edges. Classes sit on a ring; an edge
     * that leaves its class lands d classes away with d geometric of
     * this parameter, so leakage prefers NEARBY communities — the
     * hierarchical locality real co-purchase/social graphs have, and
     * the property that keeps a well-partitioned micro-batch's k-hop
     * receptive field local (without it, neighborhoods mix globally
     * within two hops and no partitioner can contain them).
     * 0 disables: cross-class edges pick a uniform random class.
     */
    double classLocality = 0.5;
    /** Pareto exponent of the degree weights (smaller = heavier tail). */
    double powerLawAlpha = 2.5;
    /** Feature noise stddev around the class centroid. */
    double featureNoise = 1.0;
    /** Fractions of nodes in the train / val splits (rest is test). */
    double trainFraction = 0.6;
    double valFraction = 0.2;
};

/** Generate a dataset from @p spec, deterministically from @p seed. */
Dataset makeSyntheticDataset(const SyntheticSpec& spec, uint64_t seed);

/**
 * R-MAT edge generator (Chakrabarti et al.) for partitioner stress
 * tests: produces 2^scale nodes and approximately @p num_edges directed
 * edges with the classic (a, b, c) skew.
 */
std::vector<Edge> rmatEdges(int scale, int64_t num_edges, uint64_t seed,
                            double a = 0.57, double b = 0.19,
                            double c = 0.19);

} // namespace betty

#endif // BETTY_DATA_SYNTHETIC_H
