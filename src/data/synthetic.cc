#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"
#include "util/rng.h"

namespace betty {

namespace {

/**
 * Weighted sampler over a fixed weight vector via binary search on the
 * cumulative distribution. O(log n) per draw; rebuilt once per class.
 */
class CumulativeSampler
{
  public:
    CumulativeSampler(const std::vector<double>& weights,
                      const std::vector<int64_t>& ids)
        : ids_(ids)
    {
        cumulative_.reserve(ids.size());
        double acc = 0.0;
        for (int64_t id : ids) {
            acc += weights[size_t(id)];
            cumulative_.push_back(acc);
        }
        total_ = acc;
    }

    bool empty() const { return ids_.empty() || total_ <= 0.0; }

    int64_t
    draw(Rng& rng) const
    {
        const double target = rng.uniformReal() * total_;
        const auto it = std::lower_bound(cumulative_.begin(),
                                         cumulative_.end(), target);
        const size_t idx = std::min(
            size_t(it - cumulative_.begin()), ids_.size() - 1);
        return ids_[idx];
    }

  private:
    std::vector<int64_t> ids_;
    std::vector<double> cumulative_;
    double total_ = 0.0;
};

} // namespace

Dataset
makeSyntheticDataset(const SyntheticSpec& spec, uint64_t seed)
{
    BETTY_ASSERT(spec.numNodes > 0 && spec.numClasses > 0,
                 "empty synthetic spec");
    Rng rng(seed);
    const int64_t n = spec.numNodes;

    // Labels: uniform over classes.
    std::vector<int32_t> labels(static_cast<size_t>(n));
    for (auto& label : labels)
        label = int32_t(rng.uniformInt(uint64_t(spec.numClasses)));

    // Power-law degree weights: Pareto with exponent alpha.
    std::vector<double> theta(static_cast<size_t>(n));
    for (auto& t : theta) {
        const double u = std::max(1e-12, rng.uniformReal());
        t = std::pow(u, -1.0 / (spec.powerLawAlpha - 1.0));
    }

    std::vector<int64_t> all_ids(static_cast<size_t>(n));
    for (int64_t v = 0; v < n; ++v)
        all_ids[size_t(v)] = v;
    std::vector<std::vector<int64_t>> class_ids(size_t(spec.numClasses));
    for (int64_t v = 0; v < n; ++v)
        class_ids[size_t(labels[size_t(v)])].push_back(v);

    const CumulativeSampler global(theta, all_ids);
    std::vector<CumulativeSampler> per_class;
    per_class.reserve(size_t(spec.numClasses));
    for (int32_t cls = 0; cls < spec.numClasses; ++cls)
        per_class.emplace_back(theta, class_ids[size_t(cls)]);

    // Sample undirected pairs; each adds both directions so the
    // aggregation neighborhood is symmetric.
    const int64_t target_pairs =
        int64_t(double(n) * spec.avgDegree / 2.0);
    std::unordered_set<int64_t> seen;
    seen.reserve(size_t(target_pairs) * 2);
    std::vector<Edge> edges;
    edges.reserve(size_t(target_pairs) * 2 + size_t(n) * 2);

    auto add_pair = [&](int64_t u, int64_t v) {
        if (u == v)
            return false;
        const int64_t lo = std::min(u, v), hi = std::max(u, v);
        if (!seen.insert(lo * n + hi).second)
            return false;
        edges.push_back({u, v});
        edges.push_back({v, u});
        return true;
    };

    // Guarantee connectivity-ish base: chain every node to a random
    // earlier node (preferential by theta would need incremental
    // structures; uniform-earlier is enough for a connected backbone).
    for (int64_t v = 1; v < n; ++v)
        add_pair(v, int64_t(rng.uniformInt(uint64_t(v))));

    // Cross-class target chooser: nearby classes on the ring when
    // classLocality is enabled, uniform otherwise.
    auto leak_class = [&](int32_t cls) {
        if (spec.classLocality <= 0.0)
            return int32_t(rng.uniformInt(uint64_t(spec.numClasses)));
        int64_t dist = 1;
        while (rng.uniformReal() > spec.classLocality &&
               dist < spec.numClasses)
            ++dist;
        const int64_t dir = rng.uniformReal() < 0.5 ? -1 : 1;
        const int64_t target =
            ((cls + dir * dist) % spec.numClasses + spec.numClasses) %
            spec.numClasses;
        return int32_t(target);
    };

    int64_t made = 0;
    int64_t attempts = 0;
    const int64_t max_attempts = target_pairs * 20 + 1000;
    while (made < target_pairs && attempts < max_attempts) {
        ++attempts;
        const int64_t u = global.draw(rng);
        const int32_t u_class = labels[size_t(u)];
        int64_t v;
        const int32_t target_class =
            rng.uniformReal() < spec.homophily ? u_class
                                               : leak_class(u_class);
        const auto& cls_sampler = per_class[size_t(target_class)];
        if (!cls_sampler.empty())
            v = cls_sampler.draw(rng);
        else
            v = global.draw(rng);
        if (add_pair(u, v))
            ++made;
    }

    Dataset ds;
    ds.name = spec.name;
    ds.graph = CsrGraph(n, edges);
    ds.labels = std::move(labels);
    ds.numClasses = spec.numClasses;

    // Class-correlated Gaussian features: centroid per class plus noise.
    Tensor centroids = Tensor(spec.numClasses, spec.featureDim);
    for (int64_t i = 0; i < centroids.numel(); ++i)
        centroids.data()[i] = float(rng.gaussian());
    ds.features = Tensor(n, spec.featureDim);
    for (int64_t v = 0; v < n; ++v) {
        const int32_t cls = ds.labels[size_t(v)];
        for (int64_t f = 0; f < spec.featureDim; ++f)
            ds.features.at(v, f) =
                centroids.at(cls, f) +
                float(rng.gaussian(0.0, spec.featureNoise));
    }

    // Splits from one shared permutation.
    std::vector<int64_t> perm = rng.permutation(n);
    const int64_t train_end = int64_t(double(n) * spec.trainFraction);
    const int64_t val_end =
        train_end + int64_t(double(n) * spec.valFraction);
    ds.trainNodes.assign(perm.begin(), perm.begin() + train_end);
    ds.valNodes.assign(perm.begin() + train_end, perm.begin() + val_end);
    ds.testNodes.assign(perm.begin() + val_end, perm.end());
    std::sort(ds.trainNodes.begin(), ds.trainNodes.end());
    std::sort(ds.valNodes.begin(), ds.valNodes.end());
    std::sort(ds.testNodes.begin(), ds.testNodes.end());
    return ds;
}

std::vector<Edge>
rmatEdges(int scale, int64_t num_edges, uint64_t seed, double a, double b,
          double c)
{
    BETTY_ASSERT(scale >= 1 && scale < 31, "rmat scale out of range");
    BETTY_ASSERT(a + b + c < 1.0, "rmat probabilities must sum below 1");
    Rng rng(seed);
    std::vector<Edge> edges;
    edges.reserve(size_t(num_edges));
    for (int64_t e = 0; e < num_edges; ++e) {
        int64_t src = 0, dst = 0;
        for (int bit = 0; bit < scale; ++bit) {
            const double r = rng.uniformReal();
            src <<= 1;
            dst <<= 1;
            if (r < a) {
                // top-left quadrant: neither bit set
            } else if (r < a + b) {
                dst |= 1;
            } else if (r < a + b + c) {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        edges.push_back({src, dst});
    }
    return edges;
}

} // namespace betty
