#include "data/io.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <vector>

#include "util/logging.h"

namespace betty {

namespace {

constexpr uint64_t kDatasetMagic = 0x42455454595F4453ULL; // "BETTY_DS"
constexpr uint64_t kBatchMagic = 0x42455454595F4254ULL;   // "BETTY_BT"
constexpr uint64_t kVersion = 1;

void
writeU64(std::ostream& out, uint64_t value)
{
    out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void
writeI64Vec(std::ostream& out, const std::vector<int64_t>& values)
{
    writeU64(out, values.size());
    out.write(reinterpret_cast<const char*>(values.data()),
              std::streamsize(values.size() * sizeof(int64_t)));
}

void
writeString(std::ostream& out, const std::string& text)
{
    writeU64(out, text.size());
    out.write(text.data(), std::streamsize(text.size()));
}

/**
 * Size-bounded reader: every read is checked against the bytes the
 * file actually contains, so a truncated file or a corrupt length
 * prefix yields IoError::Truncated instead of a garbage-sized
 * allocation and an uninitialized-memory read (the historical UB
 * this layer is hardened against).
 */
struct Reader
{
    std::istream& in;
    const std::string& path;
    uint64_t remaining;
    IoStatus status;

    bool
    fail(IoError error, const std::string& message)
    {
        if (status.ok()) {
            status.error = error;
            status.message = message;
        }
        return false;
    }

    bool
    truncated(const char* what)
    {
        return fail(IoError::Truncated,
                    "'" + path + "' is truncated (while reading " +
                        what + ")");
    }

    bool
    readRaw(void* out, uint64_t bytes, const char* what)
    {
        if (bytes > remaining)
            return truncated(what);
        in.read(static_cast<char*>(out), std::streamsize(bytes));
        if (uint64_t(in.gcount()) != bytes)
            return truncated(what);
        remaining -= bytes;
        return true;
    }

    bool
    readU64(uint64_t& value, const char* what)
    {
        return readRaw(&value, sizeof(value), what);
    }

    /** A count whose payload of @p elem_size-byte elements must still
     * fit in the file — rejects corrupt length prefixes before any
     * allocation happens. */
    bool
    readCount(uint64_t& count, uint64_t elem_size, const char* what)
    {
        if (!readU64(count, what))
            return false;
        if (elem_size > 0 && count > remaining / elem_size)
            return truncated(what);
        return true;
    }

    bool
    readI64Vec(std::vector<int64_t>& values, const char* what)
    {
        uint64_t count = 0;
        if (!readCount(count, sizeof(int64_t), what))
            return false;
        values.resize(count);
        return readRaw(values.data(), count * sizeof(int64_t), what);
    }

    bool
    readString(std::string& text, const char* what)
    {
        uint64_t count = 0;
        if (!readCount(count, 1, what))
            return false;
        text.assign(count, '\0');
        return readRaw(text.data(), count, what);
    }
};

/** Open @p path and size the reader; IoError::NotFound on failure. */
bool
openReader(std::ifstream& in, const std::string& path,
           uint64_t& remaining, IoStatus& status)
{
    in.open(path, std::ios::binary | std::ios::ate);
    if (!in) {
        status.error = IoError::NotFound;
        status.message = "cannot open '" + path + "'";
        return false;
    }
    remaining = uint64_t(in.tellg());
    in.seekg(0);
    return true;
}

void
writeBlock(std::ostream& out, const Block& block)
{
    std::vector<int64_t> dsts(block.dstNodes().begin(),
                              block.dstNodes().end());
    writeI64Vec(out, dsts);
    writeI64Vec(out, block.edgeOffsets());
    // Edge sources in GLOBAL ids: reconstruction re-derives the local
    // numbering (the Block constructor assigns it deterministically
    // from edge order, which is exactly how the original was built).
    std::vector<int64_t> sources;
    sources.reserve(size_t(block.numEdges()));
    for (int64_t local : block.edgeSources())
        sources.push_back(block.srcNodes()[size_t(local)]);
    writeI64Vec(out, sources);
}

bool
readBlock(Reader& r, Block& block)
{
    std::vector<int64_t> dsts, offsets, sources;
    if (!r.readI64Vec(dsts, "block destinations") ||
        !r.readI64Vec(offsets, "block offsets") ||
        !r.readI64Vec(sources, "block sources"))
        return false;
    if (offsets.size() != dsts.size() + 1)
        return r.fail(IoError::CorruptValues,
                      "'" + r.path +
                          "': block offset count disagrees with "
                          "destination count");
    if (!offsets.empty() && offsets.front() != 0)
        return r.fail(IoError::CorruptValues,
                      "'" + r.path +
                          "': block offsets do not start at 0");
    for (size_t d = 1; d < offsets.size(); ++d)
        if (offsets[d] < offsets[d - 1])
            return r.fail(IoError::CorruptValues,
                          "'" + r.path +
                              "': block offsets are not monotone");
    if (!offsets.empty() &&
        uint64_t(offsets.back()) != sources.size())
        return r.fail(IoError::CorruptValues,
                      "'" + r.path +
                          "': block edge count disagrees with "
                          "source array");
    std::vector<std::vector<int64_t>> src_per_dst(dsts.size());
    for (size_t d = 0; d < dsts.size(); ++d)
        src_per_dst[d].assign(sources.begin() + offsets[d],
                              sources.begin() + offsets[d + 1]);
    block = Block(std::move(dsts), src_per_dst);
    return true;
}

} // namespace

const char*
ioErrorName(IoError error)
{
    switch (error) {
      case IoError::None:
        return "none";
      case IoError::NotFound:
        return "not-found";
      case IoError::BadMagic:
        return "bad-magic";
      case IoError::BadVersion:
        return "bad-version";
      case IoError::Truncated:
        return "truncated";
      case IoError::CorruptValues:
        return "corrupt-values";
      case IoError::OutOfRange:
        return "out-of-range";
      case IoError::ShapeMismatch:
        return "shape-mismatch";
      case IoError::WriteFailed:
        return "write-failed";
    }
    return "?";
}

bool
saveDataset(const Dataset& dataset, const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    writeU64(out, kDatasetMagic);
    writeU64(out, kVersion);
    writeString(out, dataset.name);
    writeU64(out, uint64_t(dataset.numNodes()));

    // Edges.
    const auto edges = dataset.graph.edgeList();
    std::vector<int64_t> srcs, dsts;
    srcs.reserve(edges.size());
    dsts.reserve(edges.size());
    for (const Edge& e : edges) {
        srcs.push_back(e.src);
        dsts.push_back(e.dst);
    }
    writeI64Vec(out, srcs);
    writeI64Vec(out, dsts);

    // Features.
    writeU64(out, uint64_t(dataset.features.rows()));
    writeU64(out, uint64_t(dataset.features.cols()));
    if (dataset.features.numel() > 0)
        out.write(reinterpret_cast<const char*>(
                      dataset.features.data()),
                  std::streamsize(dataset.features.bytes()));

    // Labels and splits.
    writeU64(out, uint64_t(dataset.numClasses));
    writeU64(out, dataset.labels.size());
    out.write(reinterpret_cast<const char*>(dataset.labels.data()),
              std::streamsize(dataset.labels.size() *
                              sizeof(int32_t)));
    writeI64Vec(out, dataset.trainNodes);
    writeI64Vec(out, dataset.valNodes);
    writeI64Vec(out, dataset.testNodes);
    return static_cast<bool>(out);
}

IoStatus
loadDatasetChecked(Dataset& dataset, const std::string& path)
{
    IoStatus status;
    std::ifstream in;
    uint64_t remaining = 0;
    if (!openReader(in, path, remaining, status))
        return status;
    Reader r{in, path, remaining, {}};

    uint64_t magic = 0, version = 0;
    if (!r.readU64(magic, "magic"))
        return r.status;
    if (magic != kDatasetMagic) {
        r.fail(IoError::BadMagic,
               "'" + path + "' is not a Betty dataset file");
        return r.status;
    }
    if (!r.readU64(version, "version"))
        return r.status;
    if (version != kVersion) {
        r.fail(IoError::BadVersion,
               "'" + path + "' has an unsupported dataset version");
        return r.status;
    }

    // Parse into a fresh object; @p dataset is only touched on full
    // success, so a corrupt file can never leave a partial dataset.
    Dataset loaded;
    uint64_t num_nodes_u = 0;
    if (!r.readString(loaded.name, "name") ||
        !r.readU64(num_nodes_u, "node count"))
        return r.status;
    const int64_t num_nodes = int64_t(num_nodes_u);
    if (num_nodes < 0) {
        r.fail(IoError::CorruptValues,
               "'" + path + "': negative node count");
        return r.status;
    }

    std::vector<int64_t> srcs, dsts;
    if (!r.readI64Vec(srcs, "edge sources") ||
        !r.readI64Vec(dsts, "edge destinations"))
        return r.status;
    if (srcs.size() != dsts.size()) {
        r.fail(IoError::CorruptValues,
               "'" + path + "': edge source/destination arrays "
                            "have different lengths");
        return r.status;
    }
    std::vector<Edge> edges;
    edges.reserve(srcs.size());
    for (size_t i = 0; i < srcs.size(); ++i) {
        if (srcs[i] < 0 || srcs[i] >= num_nodes || dsts[i] < 0 ||
            dsts[i] >= num_nodes) {
            r.fail(IoError::OutOfRange,
                   "'" + path + "': edge " + std::to_string(i) +
                       " references a node outside [0, " +
                       std::to_string(num_nodes) + ")");
            return r.status;
        }
        edges.push_back({srcs[i], dsts[i]});
    }

    uint64_t rows_u = 0, cols_u = 0;
    if (!r.readU64(rows_u, "feature rows") ||
        !r.readU64(cols_u, "feature cols"))
        return r.status;
    const int64_t rows = int64_t(rows_u);
    const int64_t cols = int64_t(cols_u);
    // Bound both dims before multiplying so a corrupt header cannot
    // overflow the byte count into a "fits" verdict.
    if (rows < 0 || cols < 0 || rows_u > (uint64_t(1) << 40) ||
        cols_u > (uint64_t(1) << 40) ||
        (cols_u > 0 &&
         rows_u > r.remaining / (cols_u * sizeof(float)))) {
        r.fail(IoError::Truncated,
               "'" + path + "': feature matrix larger than the file");
        return r.status;
    }
    if (rows != num_nodes) {
        r.fail(IoError::ShapeMismatch,
               "'" + path + "': feature rows " + std::to_string(rows) +
                   " != node count " + std::to_string(num_nodes));
        return r.status;
    }
    loaded.features = Tensor(rows, cols);
    if (loaded.features.numel() > 0 &&
        !r.readRaw(loaded.features.data(),
                   uint64_t(loaded.features.bytes()), "features"))
        return r.status;
    for (int64_t i = 0; i < loaded.features.numel(); ++i) {
        if (!std::isfinite(loaded.features.data()[i])) {
            r.fail(IoError::CorruptValues,
                   "'" + path + "': feature value " +
                       std::to_string(i) + " is NaN or Inf");
            return r.status;
        }
    }

    uint64_t num_classes_u = 0, num_labels = 0;
    if (!r.readU64(num_classes_u, "class count") ||
        !r.readCount(num_labels, sizeof(int32_t), "label count"))
        return r.status;
    loaded.numClasses = int32_t(num_classes_u);
    if (loaded.numClasses < 0) {
        r.fail(IoError::CorruptValues,
               "'" + path + "': negative class count");
        return r.status;
    }
    std::vector<int32_t> labels(num_labels);
    if (!r.readRaw(labels.data(), num_labels * sizeof(int32_t),
                   "labels"))
        return r.status;
    if (int64_t(labels.size()) != num_nodes) {
        r.fail(IoError::ShapeMismatch,
               "'" + path + "': label count " +
                   std::to_string(labels.size()) + " != node count " +
                   std::to_string(num_nodes));
        return r.status;
    }
    for (size_t i = 0; i < labels.size(); ++i) {
        if (labels[i] < 0 || labels[i] >= loaded.numClasses) {
            r.fail(IoError::OutOfRange,
                   "'" + path + "': label of node " +
                       std::to_string(i) + " (" +
                       std::to_string(labels[i]) +
                       ") outside [0, " +
                       std::to_string(loaded.numClasses) + ")");
            return r.status;
        }
    }
    loaded.labels = std::move(labels);

    for (auto* split : {&loaded.trainNodes, &loaded.valNodes,
                        &loaded.testNodes}) {
        if (!r.readI64Vec(*split, "split nodes"))
            return r.status;
        for (int64_t node : *split) {
            if (node < 0 || node >= num_nodes) {
                r.fail(IoError::OutOfRange,
                       "'" + path + "': split references node " +
                           std::to_string(node) + " outside [0, " +
                           std::to_string(num_nodes) + ")");
                return r.status;
            }
        }
    }

    loaded.graph = CsrGraph(num_nodes, edges);
    dataset = std::move(loaded);
    return r.status;
}

bool
loadDataset(Dataset& dataset, const std::string& path)
{
    const IoStatus status = loadDatasetChecked(dataset, path);
    if (status.ok())
        return true;
    if (status.error == IoError::NotFound)
        return false;
    fatal(status.message);
    return false;
}

bool
saveBatch(const MultiLayerBatch& batch, const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    writeU64(out, kBatchMagic);
    writeU64(out, kVersion);
    writeU64(out, batch.blocks.size());
    for (const Block& block : batch.blocks)
        writeBlock(out, block);
    return static_cast<bool>(out);
}

IoStatus
loadBatchChecked(MultiLayerBatch& batch, const std::string& path)
{
    IoStatus status;
    std::ifstream in;
    uint64_t remaining = 0;
    if (!openReader(in, path, remaining, status))
        return status;
    Reader r{in, path, remaining, {}};

    uint64_t magic = 0, version = 0;
    if (!r.readU64(magic, "magic"))
        return r.status;
    if (magic != kBatchMagic) {
        r.fail(IoError::BadMagic,
               "'" + path + "' is not a Betty batch file");
        return r.status;
    }
    if (!r.readU64(version, "version"))
        return r.status;
    if (version != kVersion) {
        r.fail(IoError::BadVersion,
               "'" + path + "' has an unsupported batch version");
        return r.status;
    }

    uint64_t layers = 0;
    if (!r.readCount(layers, 1, "layer count"))
        return r.status;
    MultiLayerBatch loaded;
    loaded.blocks.reserve(layers);
    for (uint64_t layer = 0; layer < layers; ++layer) {
        Block block;
        if (!readBlock(r, block))
            return r.status;
        loaded.blocks.push_back(std::move(block));
    }
    batch = std::move(loaded);
    return r.status;
}

bool
loadBatch(MultiLayerBatch& batch, const std::string& path)
{
    const IoStatus status = loadBatchChecked(batch, path);
    if (status.ok())
        return true;
    if (status.error == IoError::NotFound)
        return false;
    fatal(status.message);
    return false;
}

} // namespace betty
