#include "data/io.h"

#include <cstdint>
#include <fstream>
#include <vector>

#include "util/logging.h"

namespace betty {

namespace {

constexpr uint64_t kDatasetMagic = 0x42455454595F4453ULL; // "BETTY_DS"
constexpr uint64_t kBatchMagic = 0x42455454595F4254ULL;   // "BETTY_BT"
constexpr uint64_t kVersion = 1;

void
writeU64(std::ostream& out, uint64_t value)
{
    out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

uint64_t
readU64(std::istream& in)
{
    uint64_t value = 0;
    in.read(reinterpret_cast<char*>(&value), sizeof(value));
    return value;
}

void
writeI64Vec(std::ostream& out, const std::vector<int64_t>& values)
{
    writeU64(out, values.size());
    out.write(reinterpret_cast<const char*>(values.data()),
              std::streamsize(values.size() * sizeof(int64_t)));
}

std::vector<int64_t>
readI64Vec(std::istream& in)
{
    std::vector<int64_t> values(readU64(in));
    in.read(reinterpret_cast<char*>(values.data()),
            std::streamsize(values.size() * sizeof(int64_t)));
    return values;
}

void
writeString(std::ostream& out, const std::string& text)
{
    writeU64(out, text.size());
    out.write(text.data(), std::streamsize(text.size()));
}

std::string
readString(std::istream& in)
{
    std::string text(readU64(in), '\0');
    in.read(text.data(), std::streamsize(text.size()));
    return text;
}

void
writeBlock(std::ostream& out, const Block& block)
{
    std::vector<int64_t> dsts(block.dstNodes().begin(),
                              block.dstNodes().end());
    writeI64Vec(out, dsts);
    writeI64Vec(out, block.edgeOffsets());
    // Edge sources in GLOBAL ids: reconstruction re-derives the local
    // numbering (the Block constructor assigns it deterministically
    // from edge order, which is exactly how the original was built).
    std::vector<int64_t> sources;
    sources.reserve(size_t(block.numEdges()));
    for (int64_t local : block.edgeSources())
        sources.push_back(block.srcNodes()[size_t(local)]);
    writeI64Vec(out, sources);
}

Block
readBlock(std::istream& in)
{
    auto dsts = readI64Vec(in);
    const auto offsets = readI64Vec(in);
    const auto sources = readI64Vec(in);
    BETTY_ASSERT(offsets.size() == dsts.size() + 1,
                 "corrupt block: offset count");
    std::vector<std::vector<int64_t>> src_per_dst(dsts.size());
    for (size_t d = 0; d < dsts.size(); ++d)
        src_per_dst[d].assign(sources.begin() + offsets[d],
                              sources.begin() + offsets[d + 1]);
    return Block(std::move(dsts), src_per_dst);
}

} // namespace

bool
saveDataset(const Dataset& dataset, const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    writeU64(out, kDatasetMagic);
    writeU64(out, kVersion);
    writeString(out, dataset.name);
    writeU64(out, uint64_t(dataset.numNodes()));

    // Edges.
    const auto edges = dataset.graph.edgeList();
    std::vector<int64_t> srcs, dsts;
    srcs.reserve(edges.size());
    dsts.reserve(edges.size());
    for (const Edge& e : edges) {
        srcs.push_back(e.src);
        dsts.push_back(e.dst);
    }
    writeI64Vec(out, srcs);
    writeI64Vec(out, dsts);

    // Features.
    writeU64(out, uint64_t(dataset.features.rows()));
    writeU64(out, uint64_t(dataset.features.cols()));
    if (dataset.features.numel() > 0)
        out.write(reinterpret_cast<const char*>(
                      dataset.features.data()),
                  std::streamsize(dataset.features.bytes()));

    // Labels and splits.
    writeU64(out, uint64_t(dataset.numClasses));
    writeU64(out, dataset.labels.size());
    out.write(reinterpret_cast<const char*>(dataset.labels.data()),
              std::streamsize(dataset.labels.size() *
                              sizeof(int32_t)));
    writeI64Vec(out, dataset.trainNodes);
    writeI64Vec(out, dataset.valNodes);
    writeI64Vec(out, dataset.testNodes);
    return static_cast<bool>(out);
}

bool
loadDataset(Dataset& dataset, const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    if (readU64(in) != kDatasetMagic)
        fatal("'", path, "' is not a Betty dataset file");
    if (readU64(in) != kVersion)
        fatal("'", path, "' has an unsupported dataset version");

    dataset.name = readString(in);
    const int64_t num_nodes = int64_t(readU64(in));
    const auto srcs = readI64Vec(in);
    const auto dsts = readI64Vec(in);
    BETTY_ASSERT(srcs.size() == dsts.size(), "corrupt edge arrays");
    std::vector<Edge> edges;
    edges.reserve(srcs.size());
    for (size_t i = 0; i < srcs.size(); ++i)
        edges.push_back({srcs[i], dsts[i]});
    dataset.graph = CsrGraph(num_nodes, edges);

    const int64_t rows = int64_t(readU64(in));
    const int64_t cols = int64_t(readU64(in));
    dataset.features = Tensor(rows, cols);
    if (dataset.features.numel() > 0)
        in.read(reinterpret_cast<char*>(dataset.features.data()),
                std::streamsize(dataset.features.bytes()));

    dataset.numClasses = int32_t(readU64(in));
    dataset.labels.resize(readU64(in));
    in.read(reinterpret_cast<char*>(dataset.labels.data()),
            std::streamsize(dataset.labels.size() * sizeof(int32_t)));
    dataset.trainNodes = readI64Vec(in);
    dataset.valNodes = readI64Vec(in);
    dataset.testNodes = readI64Vec(in);
    return static_cast<bool>(in);
}

bool
saveBatch(const MultiLayerBatch& batch, const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    writeU64(out, kBatchMagic);
    writeU64(out, kVersion);
    writeU64(out, batch.blocks.size());
    for (const Block& block : batch.blocks)
        writeBlock(out, block);
    return static_cast<bool>(out);
}

bool
loadBatch(MultiLayerBatch& batch, const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    if (readU64(in) != kBatchMagic)
        fatal("'", path, "' is not a Betty batch file");
    if (readU64(in) != kVersion)
        fatal("'", path, "' has an unsupported batch version");
    batch.blocks.clear();
    const uint64_t layers = readU64(in);
    batch.blocks.reserve(layers);
    for (uint64_t layer = 0; layer < layers; ++layer)
        batch.blocks.push_back(readBlock(in));
    return static_cast<bool>(in);
}

} // namespace betty
