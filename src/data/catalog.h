/**
 * @file
 * The five evaluation datasets of the paper (Table 4), as synthetic
 * stand-ins with matched shape.
 *
 * Feature dimensions, class counts and degree structure follow the real
 * datasets; node counts of the two large graphs (Reddit, ogbn-products)
 * and ogbn-arxiv are scaled down so the full evaluation suite runs on
 * one CPU core in minutes. The @p scale argument shrinks/grows node
 * counts further (average degree is preserved).
 *
 *   name            feat  classes  nodes(paper)   nodes(default here)
 *   cora_like       1433     7        2,708          2,708
 *   pubmed_like      500     3       19,717         19,717 * 0.5
 *   reddit_like      602    41      232,965         10,000 (deg ~100)
 *   arxiv_like       128    40      169,343         15,000
 *   products_like    100    47    2,449,029        100,000
 */
#ifndef BETTY_DATA_CATALOG_H
#define BETTY_DATA_CATALOG_H

#include <string>
#include <vector>

#include "data/synthetic.h"

namespace betty {

/** @name Per-dataset specs (before scaling) */
/** @{ */
SyntheticSpec coraSpec();
SyntheticSpec pubmedSpec();
SyntheticSpec redditSpec();
SyntheticSpec arxivSpec();
SyntheticSpec productsSpec();
/** @} */

/** Names accepted by loadCatalogDataset, in paper order. */
std::vector<std::string> catalogNames();

/**
 * Build a catalog dataset. @p scale multiplies the node count
 * (average degree preserved); fatal() on an unknown name.
 */
Dataset loadCatalogDataset(const std::string& name, double scale = 1.0,
                           uint64_t seed = 42);

} // namespace betty

#endif // BETTY_DATA_CATALOG_H
