#include "data/catalog.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace betty {

SyntheticSpec
coraSpec()
{
    SyntheticSpec spec;
    spec.name = "cora_like";
    spec.numNodes = 2708;
    spec.avgDegree = 3.9; // 10,556 directed edges / 2,708 nodes
    spec.featureDim = 1433;
    spec.numClasses = 7;
    spec.homophily = 0.8; // citation graphs are strongly homophilous
    spec.powerLawAlpha = 2.9;
    return spec;
}

SyntheticSpec
pubmedSpec()
{
    SyntheticSpec spec;
    spec.name = "pubmed_like";
    spec.numNodes = 9858; // 19,717 * 0.5
    spec.avgDegree = 2.25;
    spec.featureDim = 500;
    spec.numClasses = 3;
    spec.homophily = 0.8;
    spec.powerLawAlpha = 2.9;
    return spec;
}

SyntheticSpec
redditSpec()
{
    SyntheticSpec spec;
    spec.name = "reddit_like";
    spec.numNodes = 10000;
    // Real Reddit averages ~492 neighbors; 100 keeps the "dense graph"
    // regime (orders denser than the citation graphs) while tractable.
    spec.avgDegree = 100.0;
    spec.featureDim = 602;
    spec.numClasses = 41;
    spec.homophily = 0.6;
    spec.powerLawAlpha = 2.2; // heavy tail: community hubs
    return spec;
}

SyntheticSpec
arxivSpec()
{
    SyntheticSpec spec;
    spec.name = "arxiv_like";
    spec.numNodes = 15000;
    spec.avgDegree = 13.7;
    spec.featureDim = 128;
    spec.numClasses = 40;
    spec.homophily = 0.65;
    spec.powerLawAlpha = 2.4;
    return spec;
}

SyntheticSpec
productsSpec()
{
    SyntheticSpec spec;
    spec.name = "products_like";
    spec.numNodes = 100000;
    spec.avgDegree = 25.3; // 61.9M / 2.45M
    spec.featureDim = 100;
    spec.numClasses = 47;
    spec.homophily = 0.65;
    spec.powerLawAlpha = 2.2; // co-purchase hubs: heavy tail
    return spec;
}

std::vector<std::string>
catalogNames()
{
    return {"cora_like", "pubmed_like", "reddit_like", "arxiv_like",
            "products_like"};
}

Dataset
loadCatalogDataset(const std::string& name, double scale, uint64_t seed)
{
    BETTY_ASSERT(scale > 0.0, "scale must be positive");
    SyntheticSpec spec;
    if (name == "cora_like") {
        spec = coraSpec();
    } else if (name == "pubmed_like") {
        spec = pubmedSpec();
    } else if (name == "reddit_like") {
        spec = redditSpec();
    } else if (name == "arxiv_like") {
        spec = arxivSpec();
    } else if (name == "products_like") {
        spec = productsSpec();
    } else {
        fatal("unknown catalog dataset '", name, "'");
    }
    spec.numNodes = std::max<int64_t>(
        int64_t(32), int64_t(std::llround(double(spec.numNodes) * scale)));
    // Keep average degree below the node count for tiny test scales.
    spec.avgDegree = std::min(spec.avgDegree,
                              double(spec.numNodes - 1) / 2.0);
    return makeSyntheticDataset(spec, seed);
}

} // namespace betty
