#include "util/table.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace betty {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void
TablePrinter::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    BETTY_ASSERT(header_.empty() || row.size() == header_.size(),
                 "row width ", row.size(), " != header width ",
                 header_.size());
    rows_.push_back(std::move(row));
}

void
TablePrinter::print() const
{
    std::vector<size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto& row : rows_)
        widen(row);

    std::printf("\n== %s ==\n", title_.c_str());
    auto emit = [&](const std::vector<std::string>& row) {
        for (size_t i = 0; i < row.size(); ++i)
            std::printf("%-*s  ", static_cast<int>(widths[i]),
                        row[i].c_str());
        std::printf("\n");
    };
    emit(header_);
    size_t total = header_.size() * 2;
    for (size_t w : widths)
        total += w;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_)
        emit(row);
    std::fflush(stdout);

    if (const char* dir = std::getenv("BETTY_CSV_DIR")) {
        std::string slug;
        for (char c : title_)
            slug.push_back(
                std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
        if (!writeCsv(std::string(dir) + "/" + slug + ".csv"))
            std::fprintf(stderr,
                         "warn: could not write CSV for '%s'\n",
                         title_.c_str());
    }
}

bool
TablePrinter::writeCsv(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    auto emit = [&](const std::vector<std::string>& row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i)
                out << ',';
            out << row[i];
        }
        out << '\n';
    };
    emit(header_);
    for (const auto& row : rows_)
        emit(row);
    return static_cast<bool>(out);
}

std::string
TablePrinter::num(double value, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << value;
    return os.str();
}

std::string
TablePrinter::count(long long value)
{
    std::string digits = std::to_string(value < 0 ? -value : value);
    std::string grouped;
    int since_sep = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (since_sep == 3) {
            grouped.push_back(',');
            since_sep = 0;
        }
        grouped.push_back(*it);
        ++since_sep;
    }
    if (value < 0)
        grouped.push_back('-');
    return std::string(grouped.rbegin(), grouped.rend());
}

} // namespace betty
