/**
 * @file
 * Console table and CSV emission for the benchmark harness.
 *
 * Every bench binary reproduces a paper table or figure; TablePrinter
 * renders the rows in an aligned ASCII table (the "same rows/series the
 * paper reports") and can additionally persist them as CSV for plotting.
 */
#ifndef BETTY_UTIL_TABLE_H
#define BETTY_UTIL_TABLE_H

#include <string>
#include <vector>

namespace betty {

/** Accumulates rows of strings and renders them aligned. */
class TablePrinter
{
  public:
    /** @param title Caption printed above the table. */
    explicit TablePrinter(std::string title);

    /** Set the column headers; defines the column count. */
    void setHeader(std::vector<std::string> header);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /**
     * Render to stdout. If the environment variable BETTY_CSV_DIR is
     * set, additionally persist the table as
     * $BETTY_CSV_DIR/<slug-of-title>.csv for plotting.
     */
    void print() const;

    /** Render as comma-separated values into a file; returns success. */
    bool writeCsv(const std::string& path) const;

    /** Format a double with the given precision. */
    static std::string num(double value, int precision = 3);

    /** Format an integer with thousands separators for readability. */
    static std::string count(long long value);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace betty

#endif // BETTY_UTIL_TABLE_H
