/**
 * @file
 * Error-reporting and status-message helpers, following the gem5
 * fatal()/panic()/warn()/inform() conventions.
 *
 * fatal(): the run cannot continue because of a user-visible condition
 * (bad configuration, impossible request). Exits with code 1.
 * panic(): an internal invariant was violated — a bug in this library.
 * Aborts so a debugger/core dump can capture the state.
 */
#ifndef BETTY_UTIL_LOGGING_H
#define BETTY_UTIL_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace betty {

namespace detail {

/** Stream-concatenate any printable arguments into one string. */
template <typename... Args>
std::string
concatMessage(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report a user-caused unrecoverable error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    std::fprintf(stderr, "fatal: %s\n",
                 detail::concatMessage(std::forward<Args>(args)...).c_str());
    std::exit(1);
}

/** Report an internal invariant violation (library bug) and abort(). */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    std::fprintf(stderr, "panic: %s\n",
                 detail::concatMessage(std::forward<Args>(args)...).c_str());
    std::abort();
}

/** Report a condition that might indicate a problem but is survivable. */
template <typename... Args>
void
warn(Args&&... args)
{
    std::fprintf(stderr, "warn: %s\n",
                 detail::concatMessage(std::forward<Args>(args)...).c_str());
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args&&... args)
{
    std::fprintf(stdout, "info: %s\n",
                 detail::concatMessage(std::forward<Args>(args)...).c_str());
}

/**
 * Check an invariant that must hold regardless of user input.
 * Active in all build types (unlike assert).
 */
#define BETTY_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::betty::panic("assertion '", #cond, "' failed at ", __FILE__, \
                           ":", __LINE__, " ", ##__VA_ARGS__);             \
        }                                                                  \
    } while (0)

} // namespace betty

#endif // BETTY_UTIL_LOGGING_H
