/**
 * @file
 * Error-reporting and status-message helpers, following the gem5
 * fatal()/panic()/warn()/inform() conventions.
 *
 * fatal(): the run cannot continue because of a user-visible condition
 * (bad configuration, impossible request). Exits with code 1.
 * panic(): an internal invariant was violated — a bug in this library.
 * Aborts so a debugger/core dump can capture the state.
 *
 * Verbosity: warn()/inform()/debugLog() are filtered by a level read
 * from the BETTY_LOG_LEVEL environment variable (a number 0-4 or one
 * of silent/error/warn/info/debug; default info) and overridable at
 * runtime with setLogLevel(). fatal()/panic() always print.
 * warnOnce() and BETTY_WARN_ONCE suppress repeats so a per-micro-batch
 * warning cannot flood a long training run.
 */
#ifndef BETTY_UTIL_LOGGING_H
#define BETTY_UTIL_LOGGING_H

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_set>
#include <utility>

namespace betty {

/** Message severities, most to least severe. */
enum class LogLevel : int {
    Silent = 0, ///< nothing below fatal/panic
    Error = 1,  ///< reserved for recoverable-error reporting
    Warn = 2,   ///< warn()
    Info = 3,   ///< inform() — the default
    Debug = 4,  ///< debugLog()
};

namespace detail {

/** Stream-concatenate any printable arguments into one string. */
template <typename... Args>
std::string
concatMessage(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

inline std::atomic<int>&
logLevelStorage()
{
    static std::atomic<int> level{-1}; // -1 = read env on first use
    return level;
}

inline int
parseLogLevel(const char* text)
{
    if (std::strcmp(text, "silent") == 0)
        return int(LogLevel::Silent);
    if (std::strcmp(text, "error") == 0)
        return int(LogLevel::Error);
    if (std::strcmp(text, "warn") == 0)
        return int(LogLevel::Warn);
    if (std::strcmp(text, "info") == 0)
        return int(LogLevel::Info);
    if (std::strcmp(text, "debug") == 0)
        return int(LogLevel::Debug);
    if (text[0] >= '0' && text[0] <= '9')
        return std::atoi(text);
    return int(LogLevel::Info);
}

/** True exactly once per distinct message text. */
inline bool
firstSighting(const std::string& message)
{
    static std::mutex mutex;
    static std::unordered_set<std::string> seen;
    std::lock_guard<std::mutex> lock(mutex);
    return seen.insert(message).second;
}

/** Callback fatal()/panic() invoke before dying (see setFatalHook). */
using FatalHook = void (*)();

inline std::atomic<FatalHook>&
fatalHookStorage()
{
    static std::atomic<FatalHook> hook{nullptr};
    return hook;
}

/** Run the registered fatal hook, at most once per process so a
 * hook that itself dies fatally cannot recurse. */
inline void
runFatalHook()
{
    static std::atomic<bool> ran{false};
    if (ran.exchange(true, std::memory_order_relaxed))
        return;
    if (FatalHook hook =
            fatalHookStorage().load(std::memory_order_acquire))
        hook();
}

} // namespace detail

/**
 * Register @p hook to run just before fatal() exits or panic()
 * aborts — the post-mortem seam the flight recorder
 * (obs/perf/flight_recorder.h) uses to dump its ring on the way
 * down. One hook slot; nullptr unregisters.
 */
inline void
setFatalHook(detail::FatalHook hook)
{
    detail::fatalHookStorage().store(hook, std::memory_order_release);
}

/** Active verbosity (BETTY_LOG_LEVEL, unless setLogLevel() ran). */
inline LogLevel
logLevel()
{
    auto& storage = detail::logLevelStorage();
    int level = storage.load(std::memory_order_relaxed);
    if (level < 0) {
        const char* env = std::getenv("BETTY_LOG_LEVEL");
        level = env ? detail::parseLogLevel(env)
                    : int(LogLevel::Info);
        storage.store(level, std::memory_order_relaxed);
    }
    return LogLevel(level);
}

/** Override the verbosity (wins over BETTY_LOG_LEVEL). */
inline void
setLogLevel(LogLevel level)
{
    detail::logLevelStorage().store(int(level),
                                    std::memory_order_relaxed);
}

/** Report a user-caused unrecoverable error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    std::fprintf(stderr, "fatal: %s\n",
                 detail::concatMessage(std::forward<Args>(args)...).c_str());
    detail::runFatalHook();
    std::exit(1);
}

/** Report an internal invariant violation (library bug) and abort(). */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    std::fprintf(stderr, "panic: %s\n",
                 detail::concatMessage(std::forward<Args>(args)...).c_str());
    detail::runFatalHook();
    std::abort();
}

/** Report a condition that might indicate a problem but is survivable. */
template <typename... Args>
void
warn(Args&&... args)
{
    if (logLevel() < LogLevel::Warn)
        return;
    std::fprintf(stderr, "warn: %s\n",
                 detail::concatMessage(std::forward<Args>(args)...).c_str());
}

/**
 * Like warn(), but each distinct message text prints at most once per
 * process — for warnings raised per micro-batch or per epoch that
 * would otherwise flood a long run.
 */
template <typename... Args>
void
warnOnce(Args&&... args)
{
    if (logLevel() < LogLevel::Warn)
        return;
    std::string message =
        detail::concatMessage(std::forward<Args>(args)...);
    if (!detail::firstSighting(message))
        return;
    std::fprintf(stderr, "warn: %s\n", message.c_str());
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args&&... args)
{
    if (logLevel() < LogLevel::Info)
        return;
    std::fprintf(stdout, "info: %s\n",
                 detail::concatMessage(std::forward<Args>(args)...).c_str());
}

/** Verbose diagnostics, printed only at BETTY_LOG_LEVEL=debug. */
template <typename... Args>
void
debugLog(Args&&... args)
{
    if (logLevel() < LogLevel::Debug)
        return;
    std::fprintf(stderr, "debug: %s\n",
                 detail::concatMessage(std::forward<Args>(args)...).c_str());
}

/**
 * Check an invariant that must hold regardless of user input.
 * Active in all build types (unlike assert).
 */
#define BETTY_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::betty::panic("assertion '", #cond, "' failed at ", __FILE__, \
                           ":", __LINE__, " ", ##__VA_ARGS__);             \
        }                                                                  \
    } while (0)

/**
 * Warn at most once per call site (cheaper than warnOnce(): no
 * message formatting or dedup lookup after the first hit).
 */
#define BETTY_WARN_ONCE(...)                                         \
    do {                                                             \
        static std::atomic<bool> betty_warned_once{false};           \
        if (!betty_warned_once.exchange(true,                        \
                                        std::memory_order_relaxed))  \
            ::betty::warn(__VA_ARGS__);                              \
    } while (0)

} // namespace betty

#endif // BETTY_UTIL_LOGGING_H
