/**
 * @file
 * Work-stealing thread pool powering Betty's parallel batch
 * preparation (REG construction, neighbor sampling, transfer-compute
 * pipelining).
 *
 * Determinism contract (docs/PARALLELISM.md): the pool only ever
 * executes *independent* work items — parallelFor() chunks a range
 * into fixed-size blocks whose boundaries depend on the range and the
 * grain, never on the thread count, and every caller writes results
 * into per-chunk (or per-index) slots. Scheduling order is therefore
 * free to vary while outputs stay bit-identical for any `--threads`
 * value, including 1.
 *
 * Threading model: a pool of size N runs N-1 worker threads and
 * conscripts the calling thread as the N-th lane. Each worker owns a
 * deque; submissions are distributed round-robin, workers pop from
 * their own front and steal from other backs when idle. parallelFor
 * is cooperative: the caller claims chunks alongside the workers, so
 * nested parallelFor calls from inside a worker cannot deadlock —
 * the inner caller simply processes its own chunks.
 *
 * Exceptions thrown by a parallelFor body are captured (first one
 * wins, remaining chunks are skipped) and rethrown on the calling
 * thread; submit() propagates exceptions through its std::future.
 *
 * Observability: pool.tasks / pool.parallel_fors / pool.chunks /
 * pool.steals metrics, plus a per-chunk "pool/chunk" trace span so
 * worker lanes show up as parallel tracks in the Chrome trace.
 */
#ifndef BETTY_UTIL_THREAD_POOL_H
#define BETTY_UTIL_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace betty {

/** Work-stealing pool; see the file comment for the contract. */
class ThreadPool
{
  public:
    /**
     * @param num_threads Total parallel lanes including the caller:
     * N spawns N-1 workers. Values < 1 are clamped to 1 (no workers;
     * submit() and parallelFor() run inline on the caller).
     */
    explicit ThreadPool(int32_t num_threads);

    /** Joins all workers; pending tasks are drained first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Configured lane count (workers + the calling thread). */
    int32_t numThreads() const { return num_threads_; }

    /**
     * Run @p fn asynchronously; the returned future delivers the
     * result or rethrows what @p fn threw. With no workers the task
     * runs inline before submit() returns (still through the future,
     * so threads=1 keeps identical semantics and ordering).
     */
    template <typename F>
    auto
    submit(F&& fn) -> std::future<std::invoke_result_t<F>>
    {
        using Result = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        auto future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /**
     * Apply @p body to [begin, end) in chunks of at most @p grain
     * indices: body(lo, hi) covers [lo, hi). Chunk boundaries depend
     * only on (begin, end, grain) — NOT on the thread count — so a
     * body writing to per-index slots yields identical output for any
     * pool size. Blocks until every chunk ran; rethrows the first
     * exception a chunk raised (remaining chunks are skipped).
     */
    void parallelFor(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& body);

    /**
     * The process-wide pool used by the parallel batch-preparation
     * paths. Sized by the last setGlobalThreads() call, else the
     * BETTY_THREADS environment variable, else 1 (serial).
     */
    static ThreadPool& global();

    /**
     * Resize the global pool (drains and joins the previous one).
     * Call only from configuration points (CLI startup, test
     * setup/teardown) with no pool work in flight: threads still
     * blocked inside the old pool's parallelFor/submit would be
     * waiting on state the swap destroys.
     */
    static void setGlobalThreads(int32_t num_threads);

    /** Lane count of the global pool without forcing its creation. */
    static int32_t globalThreads();

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    /** Shared state of one parallelFor region. */
    struct ForState
    {
        int64_t begin = 0;
        int64_t grain = 1;
        int64_t end = 0;
        int64_t numChunks = 0;
        const std::function<void(int64_t, int64_t)>* body = nullptr;
        std::atomic<int64_t> nextChunk{0};
        std::atomic<int64_t> doneChunks{0};
        std::atomic<bool> cancelled{false};
        std::mutex mutex;
        std::condition_variable done;
        std::exception_ptr exception;

        /** Span enclosing the parallelFor call (0 = none/disabled);
         * source of the spawn flow edges into each chunk span. */
        uint64_t callerSpan = 0;
        /** When the region was entered (spawn-edge timestamp). */
        int64_t spawnTsUs = 0;
        /** Attribution category inherited from the caller's span
         * (literal or nullptr) — a chunk of sampling is sampling. */
        const char* traceCategory = nullptr;
        /** Chunk span ids, collected under mutex for the join edges
         * the caller records after the wait. */
        std::vector<uint64_t> chunkSpans;
    };

    void enqueue(std::function<void()> task);
    void workerLoop(size_t index);
    bool tryPop(size_t index, std::function<void()>& task);

    /** Claim and run chunks of @p state until none remain. */
    static void runChunks(const std::shared_ptr<ForState>& state);

    int32_t num_threads_;
    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;
    std::mutex wake_mutex_;
    std::condition_variable wake_;
    std::atomic<int64_t> next_queue_{0};
    std::atomic<int64_t> pending_{0};
    std::atomic<bool> shutdown_{false};
};

} // namespace betty

#endif // BETTY_UTIL_THREAD_POOL_H
