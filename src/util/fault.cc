#include "util/fault.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/metrics.h"
#include "obs/perf/flight_recorder.h"
#include "util/rng.h"

namespace betty::fault {

namespace {

/** Installed plan + clock + consumption state, mutex-guarded. */
struct InjectorState
{
    std::mutex mutex;
    FaultPlan plan;
    bool installed = false;
    int64_t epoch = 0;
    int64_t microBatch = -1;
    /** Per-event consumed flag; TransferFail tracks attempts left.
     * TransferFlaky never consumes (it stays armed for its whole
     * scope) — its firings are counted in `fired` only. */
    std::vector<int64_t> remaining;
    /** Per-event count of times the event actually fired. */
    std::vector<int64_t> fired;
    int64_t injected = 0;
};

InjectorState&
state()
{
    static InjectorState s;
    return s;
}

/** Does @p event fire at clock position (epoch, mb)? */
bool
matches(const FaultEvent& event, int64_t epoch, int64_t mb)
{
    if (event.epoch != epoch)
        return false;
    // Transfer faults are consumed per transfer attempt anywhere in
    // the epoch unless the spec pins a micro-batch.
    if (event.kind == FaultKind::TransferFail ||
        event.kind == FaultKind::TransferFlaky)
        return event.microBatch < 0 || event.microBatch == mb;
    return event.microBatch == mb;
}

void
chargeInjected(InjectorState& s, size_t index)
{
    ++s.injected;
    ++s.fired[index];
    if (obs::Metrics::enabled()) {
        static obs::Counter& counter =
            obs::Metrics::counter("recover.faults_injected");
        counter.increment();
    }
    // The consumed fault is exactly the kind of state change the
    // flight recorder exists for: it names the black-box story.
    obs::FlightRecorder::record(
        obs::FrCategory::Fault,
        faultKindName(s.plan.events[index].kind), s.epoch,
        s.microBatch);
}

/** Consume the first matching unconsumed event of @p kind; returns
 * its index or -1. Caller holds the mutex. */
int64_t
takeOneShot(InjectorState& s, FaultKind kind)
{
    if (!s.installed)
        return -1;
    for (size_t i = 0; i < s.plan.events.size(); ++i) {
        const FaultEvent& event = s.plan.events[i];
        if (event.kind != kind || s.remaining[i] <= 0)
            continue;
        if (!matches(event, s.epoch, s.microBatch))
            continue;
        s.remaining[i] = 0;
        chargeInjected(s, i);
        return int64_t(i);
    }
    return -1;
}

// ------------------------------------------------------------- parsing

bool
parseKind(const std::string& word, FaultKind& kind)
{
    if (word == "oom")
        kind = FaultKind::InjectOom;
    else if (word == "capacity-drop")
        kind = FaultKind::CapacityDrop;
    else if (word == "transfer-fail")
        kind = FaultKind::TransferFail;
    else if (word == "alloc-scale")
        kind = FaultKind::AllocScale;
    else if (word == "corrupt-features")
        kind = FaultKind::CorruptFeatures;
    else if (word == "device-drop")
        kind = FaultKind::DeviceDrop;
    else if (word == "device-slow")
        kind = FaultKind::DeviceSlow;
    else if (word == "transfer-flaky")
        kind = FaultKind::TransferFlaky;
    else
        return false;
    return true;
}

bool
parseInt(const std::string& text, int64_t& value)
{
    if (text.empty())
        return false;
    char* end = nullptr;
    value = std::strtoll(text.c_str(), &end, 10);
    return end && *end == '\0';
}

bool
parseDouble(const std::string& text, double& value)
{
    if (text.empty())
        return false;
    char* end = nullptr;
    value = std::strtod(text.c_str(), &end);
    return end && *end == '\0';
}

bool
fail(std::string* error, const std::string& message)
{
    if (error)
        *error = message;
    return false;
}

/** One `kind[=value]@epochN[.mbM][:key=value...]` clause. */
bool
parseEvent(const std::string& clause, FaultEvent& event,
           std::string* error)
{
    const size_t at = clause.find('@');
    if (at == std::string::npos)
        return fail(error, "'" + clause + "': missing '@epochN'");

    std::string head = clause.substr(0, at);
    std::string tail = clause.substr(at + 1);

    // kind[=value]
    double value = 0.0;
    bool has_value = false;
    if (const size_t eq = head.find('='); eq != std::string::npos) {
        if (!parseDouble(head.substr(eq + 1), value))
            return fail(error, "'" + clause + "': bad value '" +
                                   head.substr(eq + 1) + "'");
        has_value = true;
        head = head.substr(0, eq);
    }
    if (!parseKind(head, event.kind))
        return fail(error,
                    "'" + clause + "': unknown fault kind '" + head +
                        "' (oom, capacity-drop, transfer-fail, "
                        "alloc-scale, corrupt-features, "
                        "device-drop, device-slow, transfer-flaky)");
    event.value = value;

    // :key=value modifiers (after the position).
    std::string position = tail;
    if (const size_t colon = tail.find(':');
        colon != std::string::npos) {
        position = tail.substr(0, colon);
        std::string mods = tail.substr(colon + 1);
        while (!mods.empty()) {
            const size_t next = mods.find(':');
            const std::string mod = mods.substr(0, next);
            mods = next == std::string::npos ? ""
                                             : mods.substr(next + 1);
            const size_t eq = mod.find('=');
            if (eq == std::string::npos)
                return fail(error, "'" + clause +
                                       "': modifier '" + mod +
                                       "' is not key=value");
            const std::string key = mod.substr(0, eq);
            if (key == "retries") {
                if (!parseInt(mod.substr(eq + 1), event.retries) ||
                    event.retries < 1)
                    return fail(error, "'" + clause +
                                           "': bad retries count");
            } else if (key == "device") {
                if (!parseInt(mod.substr(eq + 1), event.device) ||
                    event.device < 0)
                    return fail(error,
                                "'" + clause +
                                    "': bad device index (needs a "
                                    "whole index >= 0)");
            } else if (key == "duration") {
                if (!parseInt(mod.substr(eq + 1),
                              event.durationEpochs) ||
                    event.durationEpochs < 0)
                    return fail(error,
                                "'" + clause +
                                    "': bad duration (epochs >= 0; "
                                    "0 = permanent)");
            } else {
                return fail(error, "'" + clause +
                                       "': unknown modifier '" + key +
                                       "'");
            }
        }
    }

    // epochN[.mbM]
    if (position.rfind("epoch", 0) != 0)
        return fail(error, "'" + clause +
                               "': position must start with 'epoch'");
    std::string epoch_text = position.substr(5);
    if (const size_t dot = epoch_text.find(".mb");
        dot != std::string::npos) {
        if (!parseInt(epoch_text.substr(dot + 3), event.microBatch) ||
            event.microBatch < 0)
            return fail(error,
                        "'" + clause + "': bad micro-batch index");
        epoch_text = epoch_text.substr(0, dot);
    }
    if (!parseInt(epoch_text, event.epoch) || event.epoch < 1)
        return fail(error, "'" + clause + "': bad epoch number");

    // Kind-specific value validation.
    switch (event.kind) {
      case FaultKind::CapacityDrop:
        if (!has_value || event.value <= 0.0 || event.value >= 1.0)
            return fail(error, "'" + clause +
                                   "': capacity-drop needs a factor "
                                   "in (0, 1)");
        break;
      case FaultKind::AllocScale:
        if (!has_value || event.value <= 1.0)
            return fail(error, "'" + clause +
                                   "': alloc-scale needs a scale "
                                   "> 1");
        break;
      case FaultKind::CorruptFeatures:
        if (!has_value || event.value <= 0.0 || event.value > 1.0)
            return fail(error, "'" + clause +
                                   "': corrupt-features needs a "
                                   "fraction in (0, 1]");
        break;
      case FaultKind::DeviceDrop:
        // Optional value: a whole non-negative device index. No
        // value means "drop the highest-indexed live device", which
        // the engine encodes as -1.
        if (has_value) {
            if (event.value < 0.0 ||
                event.value != double(int64_t(event.value)))
                return fail(error, "'" + clause +
                                       "': device-drop needs a whole "
                                       "device index >= 0");
        } else {
            event.value = -1.0;
        }
        break;
      case FaultKind::DeviceSlow:
        if (!has_value || event.value <= 1.0)
            return fail(error, "'" + clause +
                                   "': device-slow needs a slowdown "
                                   "factor > 1");
        break;
      case FaultKind::TransferFlaky:
        if (!has_value || event.value <= 0.0 || event.value >= 1.0)
            return fail(error, "'" + clause +
                                   "': transfer-flaky needs a "
                                   "probability in (0, 1)");
        break;
      case FaultKind::InjectOom:
      case FaultKind::TransferFail:
        if (has_value)
            return fail(error, "'" + clause + "': " +
                                   faultKindName(event.kind) +
                                   " takes no '=value'");
        break;
    }
    return true;
}

/** %.12g — compact, and enough digits to round-trip every magnitude
 * the grammar accepts (factors, fractions, probabilities). */
std::string
formatValue(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.12g", value);
    return buffer;
}

} // namespace

const char*
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::InjectOom:
        return "oom";
      case FaultKind::CapacityDrop:
        return "capacity-drop";
      case FaultKind::TransferFail:
        return "transfer-fail";
      case FaultKind::AllocScale:
        return "alloc-scale";
      case FaultKind::CorruptFeatures:
        return "corrupt-features";
      case FaultKind::DeviceDrop:
        return "device-drop";
      case FaultKind::DeviceSlow:
        return "device-slow";
      case FaultKind::TransferFlaky:
        return "transfer-flaky";
    }
    return "?";
}

bool
FaultPlan::parse(const std::string& spec, FaultPlan& plan,
                 std::string* error)
{
    FaultPlan parsed;
    parsed.seed = plan.seed; // spec carries no seed; keep the caller's
    std::string rest = spec;
    while (!rest.empty()) {
        const size_t semi = rest.find(';');
        const std::string clause = rest.substr(0, semi);
        rest = semi == std::string::npos ? "" : rest.substr(semi + 1);
        if (clause.empty())
            continue;
        FaultEvent event;
        if (!parseEvent(clause, event, error))
            return false;
        parsed.events.push_back(event);
    }
    plan = std::move(parsed);
    return true;
}

std::string
FaultPlan::format() const
{
    std::string spec;
    for (const FaultEvent& event : events) {
        if (!spec.empty())
            spec += ';';
        spec += faultKindName(event.kind);
        const bool has_value =
            event.kind == FaultKind::CapacityDrop ||
            event.kind == FaultKind::AllocScale ||
            event.kind == FaultKind::CorruptFeatures ||
            event.kind == FaultKind::DeviceSlow ||
            event.kind == FaultKind::TransferFlaky ||
            (event.kind == FaultKind::DeviceDrop &&
             event.value >= 0.0);
        if (has_value)
            spec += "=" + formatValue(event.value);
        spec += "@epoch" + std::to_string(event.epoch);
        if (event.microBatch >= 0)
            spec += ".mb" + std::to_string(event.microBatch);
        if (event.kind == FaultKind::TransferFail &&
            event.retries != 1)
            spec += ":retries=" + std::to_string(event.retries);
        if (event.device >= 0)
            spec += ":device=" + std::to_string(event.device);
        if (event.durationEpochs > 0)
            spec +=
                ":duration=" + std::to_string(event.durationEpochs);
    }
    return spec;
}

void
Injector::install(FaultPlan plan)
{
    InjectorState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.plan = std::move(plan);
    s.installed = !s.plan.events.empty();
    s.epoch = 0;
    s.microBatch = -1;
    s.remaining.assign(s.plan.events.size(), 0);
    for (size_t i = 0; i < s.plan.events.size(); ++i)
        s.remaining[i] =
            s.plan.events[i].kind == FaultKind::TransferFail
                ? s.plan.events[i].retries
                : 1;
    s.fired.assign(s.plan.events.size(), 0);
    s.injected = 0;
}

void
Injector::clear()
{
    install(FaultPlan{});
}

bool
Injector::active()
{
    InjectorState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.installed;
}

void
Injector::beginEpoch(int64_t epoch)
{
    InjectorState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.epoch = epoch;
    s.microBatch = -1;
}

void
Injector::beginMicroBatch(int64_t index)
{
    InjectorState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.microBatch = index;
}

bool
Injector::takeInjectedOom()
{
    InjectorState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return takeOneShot(s, FaultKind::InjectOom) >= 0;
}

bool
Injector::takeCapacityDrop(double* factor)
{
    InjectorState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    const int64_t index = takeOneShot(s, FaultKind::CapacityDrop);
    if (index < 0)
        return false;
    if (factor)
        *factor = s.plan.events[size_t(index)].value;
    return true;
}

bool
Injector::takeAllocScale(double* scale)
{
    InjectorState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    const int64_t index = takeOneShot(s, FaultKind::AllocScale);
    if (index < 0)
        return false;
    if (scale)
        *scale = s.plan.events[size_t(index)].value;
    return true;
}

bool
Injector::takeTransferFailure(int64_t micro_batch)
{
    InjectorState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.installed)
        return false;
    for (size_t i = 0; i < s.plan.events.size(); ++i) {
        const FaultEvent& event = s.plan.events[i];
        if (event.kind != FaultKind::TransferFail ||
            s.remaining[i] <= 0)
            continue;
        // Program-order position: the epoch comes from the clock
        // (stable across one trainMicroBatches call) but the
        // micro-batch is the caller's logical index, so a pipelined
        // prefetch worker gathering ahead still consumes the fault
        // scheduled for ITS micro-batch, not the clock's.
        if (!matches(event, s.epoch, micro_batch))
            continue;
        --s.remaining[i];
        chargeInjected(s, i);
        return true;
    }
    return false;
}

bool
Injector::takeTransferFlakyFailure(int64_t micro_batch,
                                   int64_t attempt)
{
    InjectorState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.installed)
        return false;
    for (size_t i = 0; i < s.plan.events.size(); ++i) {
        const FaultEvent& event = s.plan.events[i];
        if (event.kind != FaultKind::TransferFlaky)
            continue;
        if (!matches(event, s.epoch, micro_batch))
            continue;
        // One independent stream per (event, epoch, micro-batch,
        // attempt): the outcome is a pure function of position, so
        // any thread interleaving replays identically.
        Rng rng = Rng::stream(
            s.plan.seed,
            (uint64_t(s.epoch) << 16) ^ uint64_t(i) ^
                0xF1A6FA117ULL,
            (uint64_t(micro_batch + 1) << 20) ^ uint64_t(attempt));
        if (rng.uniformReal() < event.value) {
            chargeInjected(s, i);
            return true;
        }
    }
    return false;
}

bool
Injector::takeDeviceDrop(int64_t* device)
{
    InjectorState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    const int64_t index = takeOneShot(s, FaultKind::DeviceDrop);
    if (index < 0)
        return false;
    if (device)
        *device = int64_t(s.plan.events[size_t(index)].value);
    return true;
}

bool
Injector::takeDeviceSlow(double* factor, int64_t* device,
                         int64_t* duration_epochs)
{
    InjectorState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    const int64_t index = takeOneShot(s, FaultKind::DeviceSlow);
    if (index < 0)
        return false;
    const FaultEvent& event = s.plan.events[size_t(index)];
    if (factor)
        *factor = event.value;
    if (device)
        *device = event.device;
    if (duration_epochs)
        *duration_epochs = event.durationEpochs;
    return true;
}

bool
Injector::takeCorruptFeatures(double* fraction)
{
    InjectorState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    const int64_t index = takeOneShot(s, FaultKind::CorruptFeatures);
    if (index < 0)
        return false;
    if (fraction)
        *fraction = s.plan.events[size_t(index)].value;
    return true;
}

std::vector<int64_t>
Injector::corruptRowPlan(int64_t num_rows, double fraction)
{
    uint64_t seed = 0;
    int64_t epoch = 0;
    {
        InjectorState& s = state();
        std::lock_guard<std::mutex> lock(s.mutex);
        seed = s.plan.seed;
        epoch = s.epoch;
    }
    if (num_rows <= 0 || fraction <= 0.0)
        return {};
    int64_t count = int64_t(double(num_rows) * fraction);
    count = std::max<int64_t>(1, std::min(count, num_rows));
    // Keyed on (seed, epoch) only: the same epoch always corrupts the
    // same rows, regardless of how many queries ran before.
    Rng rng = Rng::stream(seed, uint64_t(epoch), 0xC0DEFA117ULL);
    auto rows = rng.sampleWithoutReplacement(num_rows, count);
    std::sort(rows.begin(), rows.end());
    return rows;
}

int64_t
Injector::faultsInjected()
{
    InjectorState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.injected;
}

int64_t
Injector::faultsInjected(FaultKind kind)
{
    InjectorState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    int64_t consumed = 0;
    for (size_t i = 0; i < s.plan.events.size(); ++i)
        if (s.plan.events[i].kind == kind)
            consumed += s.fired[i];
    return consumed;
}

} // namespace betty::fault
