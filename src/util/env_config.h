/**
 * @file
 * Shared parsing for the BETTY_* configuration knobs.
 *
 * The bench harness, train_cli, and the thread pool all read the same
 * environment variables (BETTY_THREADS, BETTY_DEVICES,
 * BETTY_BENCH_SCALE, BETTY_DEVICE_GIB, BETTY_CACHE_GIB,
 * BETTY_CACHE_POLICY), and the CLI
 * surfaces most of them as flags too. This header is the single place
 * that defines their precedence and validation:
 *
 *   flag > environment > built-in default
 *
 * Malformed values are rejected loudly (fatal naming the offending
 *_variable/flag), never silently coerced: `BETTY_THREADS=abc` used to
 * mean 1 thread via strtol's zero return — now it is a startup error.
 *
 * Layering: util only. Cache-policy values stay strings here; callers
 * that need the CachePolicy enum convert with parseCachePolicy().
 */
#ifndef BETTY_UTIL_ENV_CONFIG_H
#define BETTY_UTIL_ENV_CONFIG_H

#include <cstdint>
#include <string>

namespace betty::envcfg {

/**
 * Parse @p text as a whole-string base-10 integer. Rejects empty
 * input, partial parses ("4x"), and out-of-range values.
 */
bool parseInt(const std::string& text, int64_t* out);

/**
 * Parse @p text as a whole-string finite double. Rejects empty input,
 * partial parses ("0.5gb"), and non-finite spellings ("nan", "inf") —
 * no capacity or scale knob has a meaningful non-finite value.
 */
bool parseDouble(const std::string& text, double* out);

/**
 * The integer value of environment variable @p name, or @p fallback
 * when unset. A set-but-malformed value is fatal.
 */
int64_t envInt(const char* name, int64_t fallback);

/** Double-valued twin of envInt (same malformed-value policy). */
double envDouble(const char* name, double fallback);

/** String value of @p name, or @p fallback when unset. */
std::string envString(const char* name, const std::string& fallback);

/**
 * Resolve an integer knob with flag > env > default precedence.
 * @p flag_value is the flag's raw text ("" = flag absent; malformed
 * text is fatal, blaming @p flag_name).
 */
int64_t resolveInt(const std::string& flag_value,
                   const char* flag_name, const char* env_name,
                   int64_t fallback);

/** Double-valued twin of resolveInt. */
double resolveDouble(const std::string& flag_value,
                     const char* flag_name, const char* env_name,
                     double fallback);

/** String-valued twin ("" = flag absent; no validation here). */
std::string resolveString(const std::string& flag_value,
                          const char* env_name,
                          const std::string& fallback);

// ----------------------------------------------- the shared knobs

/** Global ThreadPool lanes: BETTY_THREADS, >= 1 (default 1). */
int32_t threads();

/** Simulated accelerators: BETTY_DEVICES, >= 1 (default 1). */
int32_t devices();

/** Dataset scale multiplier: BETTY_BENCH_SCALE, > 0 (default 1.0). */
double benchScale();

/** Simulated accelerator bytes: BETTY_DEVICE_GIB (default 0.25). */
int64_t deviceCapacityBytes();

/** Feature-cache reservation bytes: BETTY_CACHE_GIB (default 0.05). */
int64_t cacheCapacityBytes();

/**
 * Replacement-policy name: BETTY_CACHE_POLICY (default "lru").
 * Returned unvalidated — parseCachePolicy() owns the vocabulary.
 */
std::string cachePolicyName();

/**
 * Per-thread trace ring capacity (events): BETTY_TRACE_RING, >= 1
 * (default 65536). Read once when the trace registry initializes;
 * obs::Trace::setRingCapacity() (the --trace-ring flag) overrides it.
 */
int64_t traceRingCapacity();

/** GiB -> bytes, matching betty::gib() (util cannot include it). */
constexpr int64_t
gibToBytes(double g)
{
    return int64_t(g * 1024.0 * 1024.0 * 1024.0);
}

} // namespace betty::envcfg

#endif // BETTY_UTIL_ENV_CONFIG_H
