#include "util/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/perf/flight_recorder.h"
#include "obs/trace.h"
#include "util/env_config.h"
#include "util/logging.h"

namespace betty {

namespace {

/** BETTY_THREADS environment default (1 = serial when unset). */
int32_t
defaultGlobalThreads()
{
    return envcfg::threads();
}

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

} // namespace

ThreadPool::ThreadPool(int32_t num_threads)
    : num_threads_(std::max<int32_t>(1, num_threads))
{
    const size_t workers = size_t(num_threads_ - 1);
    queues_.reserve(workers);
    for (size_t i = 0; i < workers; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(workers);
    for (size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        shutdown_.store(true, std::memory_order_release);
    }
    wake_.notify_all();
    for (auto& worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    if (obs::Metrics::enabled()) {
        static obs::Counter& tasks =
            obs::Metrics::counter("pool.tasks");
        tasks.increment();
    }
    if (queues_.empty()) {
        // No workers: run inline so threads=1 keeps serial ordering.
        task();
        return;
    }
    if (obs::Trace::enabled()) {
        // Wrap the task in its span here (not in workerLoop) so the
        // spawn flow edge can capture the submitting span and the
        // submission time — the dependency critpath analysis follows
        // from a worker-lane task back to the code that queued it.
        const uint64_t parent = obs::Trace::currentSpanId();
        const char* category = obs::Trace::currentSpanCategory();
        const int64_t spawn_ts = obs::Trace::nowUs();
        task = [inner = std::move(task), parent, category,
                spawn_ts] {
            // The task inherits the submitter's category: a chunk of
            // sampling is still sampling, wherever it ran.
            obs::TraceSpan span("pool/task", category);
            obs::Trace::recordFlow(parent, span.id(), spawn_ts);
            inner();
        };
    }
    const size_t target =
        size_t(next_queue_.fetch_add(1, std::memory_order_relaxed)) %
        queues_.size();
    {
        std::lock_guard<std::mutex> lock(queues_[target]->mutex);
        queues_[target]->tasks.push_back(std::move(task));
    }
    {
        // The increment must be ordered with the workers' predicate
        // check (which runs under wake_mutex_): bumping pending_
        // outside the lock lets a worker read pending_ == 0, then miss
        // the notify below while it is still entering wait() — the
        // task would strand until the next enqueue. Mirrors ~ThreadPool.
        std::lock_guard<std::mutex> lock(wake_mutex_);
        pending_.fetch_add(1, std::memory_order_release);
    }
    wake_.notify_one();
}

bool
ThreadPool::tryPop(size_t index, std::function<void()>& task)
{
    // Own queue first (front), then steal from the back of the others.
    {
        WorkerQueue& own = *queues_[index];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            task = std::move(own.tasks.front());
            own.tasks.pop_front();
            return true;
        }
    }
    for (size_t offset = 1; offset < queues_.size(); ++offset) {
        WorkerQueue& victim =
            *queues_[(index + offset) % queues_.size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            task = std::move(victim.tasks.back());
            victim.tasks.pop_back();
            if (obs::Metrics::enabled()) {
                static obs::Counter& steals =
                    obs::Metrics::counter("pool.steals");
                steals.increment();
            }
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(size_t index)
{
    obs::Trace::nameCurrentLane("pool/worker-" +
                                std::to_string(index + 1));
    while (true) {
        std::function<void()> task;
        if (tryPop(index, task)) {
            pending_.fetch_sub(1, std::memory_order_acq_rel);
            task();
            continue;
        }
        if (obs::Metrics::enabled()) {
            static obs::Counter& stalls =
                obs::Metrics::counter("pool.stalls");
            stalls.increment();
        }
        const int64_t idle_from = obs::Trace::nowUs();
        std::unique_lock<std::mutex> lock(wake_mutex_);
        wake_.wait(lock, [this] {
            return shutdown_.load(std::memory_order_acquire) ||
                   pending_.load(std::memory_order_acquire) > 0;
        });
        // Flight-record only waits long enough to matter (>= 10ms):
        // per-wave wake/sleep churn would flood the ring, a worker
        // starved between phases is the story the black box wants.
        const int64_t idle_us = obs::Trace::nowUs() - idle_from;
        if (idle_us >= 10000 &&
            !shutdown_.load(std::memory_order_acquire))
            obs::FlightRecorder::record(obs::FrCategory::Pool,
                                        "pool/stall",
                                        int64_t(index), idle_us);
        if (shutdown_.load(std::memory_order_acquire) &&
            pending_.load(std::memory_order_acquire) == 0)
            return;
    }
}

void
ThreadPool::runChunks(const std::shared_ptr<ForState>& state)
{
    while (true) {
        const int64_t chunk =
            state->nextChunk.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= state->numChunks)
            return;
        if (!state->cancelled.load(std::memory_order_acquire)) {
            const int64_t lo = state->begin + chunk * state->grain;
            const int64_t hi =
                std::min(lo + state->grain, state->end);
            try {
                obs::TraceSpan span("pool/chunk",
                                    state->traceCategory);
                if (span.id() != 0) {
                    obs::Trace::recordFlow(state->callerSpan,
                                           span.id(),
                                           state->spawnTsUs);
                    std::lock_guard<std::mutex> lock(state->mutex);
                    state->chunkSpans.push_back(span.id());
                }
                (*state->body)(lo, hi);
            } catch (...) {
                std::lock_guard<std::mutex> lock(state->mutex);
                if (!state->exception)
                    state->exception = std::current_exception();
                state->cancelled.store(true,
                                       std::memory_order_release);
            }
        }
        const int64_t done =
            state->doneChunks.fetch_add(1,
                                        std::memory_order_acq_rel) +
            1;
        if (done == state->numChunks) {
            std::lock_guard<std::mutex> lock(state->mutex);
            state->done.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t)>& body)
{
    if (end <= begin)
        return;
    grain = std::max<int64_t>(1, grain);
    const int64_t num_chunks = (end - begin + grain - 1) / grain;

    if (obs::Metrics::enabled()) {
        static obs::Counter& calls =
            obs::Metrics::counter("pool.parallel_fors");
        static obs::Counter& chunks =
            obs::Metrics::counter("pool.chunks");
        calls.increment();
        chunks.add(num_chunks);
    }

    // Chunk boundaries are identical on every path below (they depend
    // only on begin/end/grain), so the serial fallback, the caller
    // lane, and every worker produce the same per-chunk ranges.
    if (queues_.empty() || num_chunks == 1) {
        for (int64_t lo = begin; lo < end; lo += grain)
            body(lo, std::min(lo + grain, end));
        return;
    }

    auto state = std::make_shared<ForState>();
    state->begin = begin;
    state->end = end;
    state->grain = grain;
    state->numChunks = num_chunks;
    state->body = &body;
    if (obs::Trace::enabled()) {
        state->callerSpan = obs::Trace::currentSpanId();
        state->traceCategory = obs::Trace::currentSpanCategory();
        state->spawnTsUs = obs::Trace::nowUs();
    }

    const int64_t helpers =
        std::min<int64_t>(int64_t(workers_.size()), num_chunks - 1);
    for (int64_t h = 0; h < helpers; ++h)
        enqueue([state] { runChunks(state); });

    runChunks(state); // the caller is a full participant (nesting-safe)

    {
        std::unique_lock<std::mutex> lock(state->mutex);
        state->done.wait(lock, [&state] {
            return state->doneChunks.load(
                       std::memory_order_acquire) ==
                   state->numChunks;
        });
        if (state->exception)
            std::rethrow_exception(state->exception);
    }

    // Join edges: the caller could not proceed past this point until
    // every chunk finished.
    if (state->callerSpan != 0 && obs::Trace::enabled()) {
        const int64_t join_ts = obs::Trace::nowUs();
        std::lock_guard<std::mutex> lock(state->mutex);
        for (uint64_t chunk : state->chunkSpans)
            obs::Trace::recordFlow(chunk, state->callerSpan,
                                   join_ts);
    }
}

ThreadPool&
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(defaultGlobalThreads());
    return *g_pool;
}

void
ThreadPool::setGlobalThreads(int32_t num_threads)
{
    auto fresh =
        std::make_unique<ThreadPool>(std::max<int32_t>(1, num_threads));
    std::unique_ptr<ThreadPool> old;
    {
        std::lock_guard<std::mutex> lock(g_pool_mutex);
        old = std::move(g_pool);
        g_pool = std::move(fresh);
    }
    // `old` drains and joins here, after g_pool_mutex is released: a
    // drained task calling ThreadPool::global()/globalThreads() would
    // otherwise self-deadlock on the mutex.
}

int32_t
ThreadPool::globalThreads()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    return g_pool ? g_pool->numThreads() : defaultGlobalThreads();
}

} // namespace betty
