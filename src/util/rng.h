/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components (samplers, random partitioner, dataset
 * synthesis, weight init) draw from a Rng seeded explicitly, so every
 * experiment in this repository is reproducible bit-for-bit.
 */
#ifndef BETTY_UTIL_RNG_H
#define BETTY_UTIL_RNG_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace betty {

/**
 * xoshiro256** generator seeded through SplitMix64.
 *
 * Small, fast, and high quality; deliberately not std::mt19937 so the
 * stream is identical across standard libraries.
 */
class Rng
{
  public:
    /** Seed the four 64-bit words of state from one user seed. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform integer in [0, bound) using Lemire rejection. */
    uint64_t uniformInt(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Uniform real in [0, 1). */
    double uniformReal();

    /** Uniform real in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Standard normal draw (Box-Muller, cached spare). */
    double gaussian();

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Fisher-Yates shuffle of a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T>& values)
    {
        for (size_t i = values.size(); i > 1; --i) {
            const size_t j = uniformInt(i);
            std::swap(values[i - 1], values[j]);
        }
    }

    /** Random permutation of [0, n). */
    std::vector<int64_t> permutation(int64_t n);

    /**
     * Sample k distinct values from [0, n) without replacement.
     * Uses Floyd's algorithm; O(k) expected.
     */
    std::vector<int64_t> sampleWithoutReplacement(int64_t n, int64_t k);

    /**
     * Counter-based stream derivation: a generator keyed on
     * (seed, a, b) via SplitMix64 mixing. Streams for distinct keys
     * are statistically independent, and — unlike drawing from one
     * shared generator — a stream's output depends only on its key,
     * never on how many draws other streams made first. This is what
     * lets the parallel sampler produce bit-identical blocks for any
     * thread count and any iteration order (docs/PARALLELISM.md).
     */
    static Rng stream(uint64_t seed, uint64_t a, uint64_t b);

    /** The mixed 64-bit key stream() seeds from (exposed for tests). */
    static uint64_t streamKey(uint64_t seed, uint64_t a, uint64_t b);

  private:
    uint64_t state_[4];
};

} // namespace betty

#endif // BETTY_UTIL_RNG_H
