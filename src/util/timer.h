/**
 * @file
 * Wall-clock timing helper used by the training loops and benches.
 */
#ifndef BETTY_UTIL_TIMER_H
#define BETTY_UTIL_TIMER_H

#include <chrono>

namespace betty {

/** Monotonic stopwatch; starts on construction. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        const auto delta = Clock::now() - start_;
        return std::chrono::duration<double>(delta).count();
    }

    /** Milliseconds elapsed. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace betty

#endif // BETTY_UTIL_TIMER_H
