#include "util/env_config.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/logging.h"

namespace betty::envcfg {

bool
parseInt(const std::string& text, int64_t* out)
{
    // strtoll silently skips leading whitespace; whole-string means
    // whole string, so reject it up front.
    if (text.empty() || std::isspace((unsigned char)text[0]))
        return false;
    errno = 0;
    char* end = nullptr;
    const long long parsed = std::strtoll(text.c_str(), &end, 10);
    if (errno == ERANGE || !end || *end != '\0')
        return false;
    *out = int64_t(parsed);
    return true;
}

bool
parseDouble(const std::string& text, double* out)
{
    if (text.empty() || std::isspace((unsigned char)text[0]))
        return false;
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(text.c_str(), &end);
    if (errno == ERANGE || !end || *end != '\0' ||
        !std::isfinite(parsed))
        return false;
    *out = parsed;
    return true;
}

int64_t
envInt(const char* name, int64_t fallback)
{
    const char* env = std::getenv(name);
    if (!env)
        return fallback;
    int64_t value = 0;
    if (!parseInt(env, &value))
        fatal("malformed ", name, "='", env,
              "': expected an integer");
    return value;
}

double
envDouble(const char* name, double fallback)
{
    const char* env = std::getenv(name);
    if (!env)
        return fallback;
    double value = 0.0;
    if (!parseDouble(env, &value))
        fatal("malformed ", name, "='", env,
              "': expected a finite number");
    return value;
}

std::string
envString(const char* name, const std::string& fallback)
{
    const char* env = std::getenv(name);
    return env ? std::string(env) : fallback;
}

int64_t
resolveInt(const std::string& flag_value, const char* flag_name,
           const char* env_name, int64_t fallback)
{
    if (!flag_value.empty()) {
        int64_t value = 0;
        if (!parseInt(flag_value, &value))
            fatal("malformed ", flag_name, "='", flag_value,
                  "': expected an integer");
        return value;
    }
    return envInt(env_name, fallback);
}

double
resolveDouble(const std::string& flag_value, const char* flag_name,
              const char* env_name, double fallback)
{
    if (!flag_value.empty()) {
        double value = 0.0;
        if (!parseDouble(flag_value, &value))
            fatal("malformed ", flag_name, "='", flag_value,
                  "': expected a finite number");
        return value;
    }
    return envDouble(env_name, fallback);
}

std::string
resolveString(const std::string& flag_value, const char* env_name,
              const std::string& fallback)
{
    if (!flag_value.empty())
        return flag_value;
    return envString(env_name, fallback);
}

int32_t
threads()
{
    const int64_t value = envInt("BETTY_THREADS", 1);
    if (value < 1)
        fatal("BETTY_THREADS=", value, " out of range: need >= 1");
    return int32_t(value);
}

int32_t
devices()
{
    const int64_t value = envInt("BETTY_DEVICES", 1);
    if (value < 1)
        fatal("BETTY_DEVICES=", value, " out of range: need >= 1");
    return int32_t(value);
}

double
benchScale()
{
    const double value = envDouble("BETTY_BENCH_SCALE", 1.0);
    if (value <= 0.0)
        fatal("BETTY_BENCH_SCALE=", value, " out of range: need > 0");
    return value;
}

int64_t
deviceCapacityBytes()
{
    return gibToBytes(envDouble("BETTY_DEVICE_GIB", 0.25));
}

int64_t
cacheCapacityBytes()
{
    return gibToBytes(envDouble("BETTY_CACHE_GIB", 0.05));
}

std::string
cachePolicyName()
{
    return envString("BETTY_CACHE_POLICY", "lru");
}

int64_t
traceRingCapacity()
{
    const int64_t value = envInt("BETTY_TRACE_RING", 1 << 16);
    if (value < 1)
        fatal("BETTY_TRACE_RING=", value, " out of range: need >= 1");
    return value;
}

} // namespace betty::envcfg
