#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "util/logging.h"

namespace betty {

namespace {

/** SplitMix64 step, used only to expand the user seed. */
uint64_t
splitMix64(uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto& word : state_)
        word = splitMix64(s);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::uniformInt(uint64_t bound)
{
    BETTY_ASSERT(bound > 0, "uniformInt bound must be positive");
    // Lemire's multiply-shift rejection method: unbiased and division-free
    // on the fast path.
    uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
        const uint64_t threshold = -bound % bound;
        while (low < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<uint64_t>(m);
        }
    }
    return static_cast<uint64_t>(m >> 64);
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    BETTY_ASSERT(lo <= hi, "uniformInt range is empty");
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(uniformInt(span));
}

double
Rng::uniformReal()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniformReal();
}

double
Rng::gaussian()
{
    // Box-Muller without caching the spare keeps the generator stateless
    // beyond the xoshiro words, which keeps replay simple.
    double u1 = uniformReal();
    while (u1 <= 0.0)
        u1 = uniformReal();
    const double u2 = uniformReal();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

std::vector<int64_t>
Rng::permutation(int64_t n)
{
    std::vector<int64_t> perm(static_cast<size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    shuffle(perm);
    return perm;
}

uint64_t
Rng::streamKey(uint64_t seed, uint64_t a, uint64_t b)
{
    // Three dependent SplitMix64 steps: each absorbs one key word, so
    // (seed, a, b) and (seed, b, a) land in unrelated streams.
    uint64_t x = seed;
    uint64_t key = splitMix64(x);
    x ^= a;
    key ^= splitMix64(x);
    x ^= b;
    key ^= splitMix64(x);
    return key;
}

Rng
Rng::stream(uint64_t seed, uint64_t a, uint64_t b)
{
    return Rng(streamKey(seed, a, b));
}

std::vector<int64_t>
Rng::sampleWithoutReplacement(int64_t n, int64_t k)
{
    BETTY_ASSERT(k <= n, "cannot sample ", k, " distinct values from ", n);
    if (k == n)
        return permutation(n);

    // Floyd's algorithm: each iteration inserts exactly one new element.
    std::unordered_set<int64_t> chosen;
    std::vector<int64_t> result;
    result.reserve(static_cast<size_t>(k));
    for (int64_t j = n - k; j < n; ++j) {
        const int64_t t = uniformInt(0, j);
        if (chosen.insert(t).second) {
            result.push_back(t);
        } else {
            chosen.insert(j);
            result.push_back(j);
        }
    }
    return result;
}

} // namespace betty
