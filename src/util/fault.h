/**
 * @file
 * Deterministic fault injection for the fault-tolerant training
 * runtime (docs/ROBUSTNESS.md).
 *
 * A FaultPlan is a schedule of failure events parsed from a compact
 * spec string (the train_cli --faults flag / BETTY_FAULTS variable):
 *
 *   spec  := event (';' event)*
 *   event := kind ['=' value] '@epoch' N ['.mb' M]
 *            (':' key '=' value)*
 *   kind  := oom | capacity-drop | transfer-fail | alloc-scale
 *            | corrupt-features | device-drop | device-slow
 *            | transfer-flaky
 *
 * Examples:
 *   oom@epoch2.mb1                 injected OOM in epoch 2's second
 *                                  micro-batch
 *   capacity-drop=0.5@epoch3       device capacity halves at the
 *                                  start of epoch 3 (a co-tenant
 *                                  grabbing memory)
 *   transfer-fail@epoch1:retries=2 the next two transfer attempts in
 *                                  epoch 1 fail (each retry still
 *                                  pays the link latency)
 *   alloc-scale=1.5@epoch2.mb0     the estimator under-predicted:
 *                                  micro-batch 0 of epoch 2 actually
 *                                  allocates 1.5x its estimate
 *   corrupt-features=0.01@epoch1   1% of epoch 1's gathered feature
 *                                  rows arrive as NaN garbage
 *   device-drop@epoch2             the highest-indexed live device
 *                                  dies at the start of epoch 2; its
 *                                  micro-batches are re-sharded over
 *                                  the survivors
 *   device-drop=1@epoch2.mb3       device 1 dies just before epoch
 *                                  2's micro-batch 3
 *   device-slow=4@epoch2:duration=1
 *                                  one device's host link and
 *                                  interconnect lane degrade to 1/4
 *                                  bandwidth for one epoch
 *                                  (`:device=D` names the victim;
 *                                  `:duration=0` = permanent)
 *   transfer-flaky=0.2@epoch3      every transfer attempt in epoch 3
 *                                  fails with probability 0.2, drawn
 *                                  from the plan seed so the exact
 *                                  attempt outcomes replay
 *
 * Every event fires exactly once (transfer-fail fires `retries`
 * attempts; transfer-flaky fires per losing per-attempt draw), at a
 * position fixed by the schedule, and every stochastic choice
 * (corrupt-row selection, flaky-attempt outcomes) is a pure function
 * of the plan seed and the clock position — so a test can assert the
 * exact recovery behaviour and replay it bit-for-bit.
 *
 * The process-global Injector follows the obs::Metrics pattern: when
 * no plan is installed every query is a cheap early-out, so fault-
 * free runs pay one predictable branch per site and nothing else.
 */
#ifndef BETTY_UTIL_FAULT_H
#define BETTY_UTIL_FAULT_H

#include <cstdint>
#include <string>
#include <vector>

namespace betty::fault {

/** The failure modes the runtime can rehearse. */
enum class FaultKind
{
    /** Report an OOM for one micro-batch regardless of real usage. */
    InjectOom,

    /** Shrink the device capacity by a factor (epoch- or mb-scoped). */
    CapacityDrop,

    /** Fail the next transfer attempt(s); each costs link latency. */
    TransferFail,

    /** Scale one micro-batch's actual allocations past the estimate
     * (simulated estimator under-prediction). */
    AllocScale,

    /** Deliver a fraction of gathered feature rows as NaN garbage. */
    CorruptFeatures,

    /** Kill one simulated device of the multi-device engine; its
     * pending micro-batches re-shard over the survivors
     * (train/multi_device.h). Value = device index, or none for
     * "the highest-indexed live device". */
    DeviceDrop,

    /** Gray failure: one device's host link and interconnect lane
     * degrade to 1/FACTOR bandwidth (value = FACTOR > 1). Optional
     * `:device=D` names the victim (default: the engine picks the
     * highest-indexed live device), `:duration=E` heals it after E
     * epochs (0 = permanent). */
    DeviceSlow,

    /** Gray failure: while active, each transfer attempt fails with
     * probability value in (0, 1). Outcomes are drawn via
     * Rng::stream keyed on (plan seed, epoch, micro-batch, attempt)
     * — deterministic no matter which thread asks. */
    TransferFlaky,
};

/** Printable kind name (the spec keyword). */
const char* faultKindName(FaultKind kind);

/** One scheduled failure. */
struct FaultEvent
{
    FaultKind kind = FaultKind::InjectOom;

    /** Epoch the event fires in (1-based, matching train_cli). */
    int64_t epoch = 1;

    /** Micro-batch within the epoch; -1 = epoch-scoped (fires before
     * the first micro-batch). */
    int64_t microBatch = -1;

    /** Kind-dependent magnitude: capacity factor, allocation scale,
     * corrupt-row fraction, slowdown factor, or flaky probability. */
    double value = 0.0;

    /** TransferFail: how many consecutive attempts fail. */
    int64_t retries = 1;

    /** DeviceSlow: victim device index, or -1 = engine's choice. */
    int64_t device = -1;

    /** DeviceSlow: epochs the slowdown lasts; 0 = permanent. */
    int64_t durationEpochs = 0;
};

/** A parsed schedule plus the seed all stochastic choices key on. */
struct FaultPlan
{
    std::vector<FaultEvent> events;
    uint64_t seed = 0;

    /**
     * Parse @p spec (grammar above) into @p plan. Returns false and
     * fills @p error (if non-null) on malformed input; @p plan is
     * left untouched on failure. An empty spec parses to an empty
     * plan.
     */
    static bool parse(const std::string& spec, FaultPlan& plan,
                      std::string* error = nullptr);

    /**
     * Render the plan back to a spec string that parse() accepts and
     * that round-trips to an equal plan — the replay handle the chaos
     * harness prints for a failing schedule (the seed travels
     * separately via --fault-seed).
     */
    std::string format() const;
};

/**
 * Process-global fault clock + event queue. The trainer advances the
 * clock (beginEpoch/beginMicroBatch); injection sites issue one-shot
 * consuming queries that fire when an unconsumed event matches the
 * clock position. All entry points are thread-safe: transfer faults
 * are consumed from pool workers under pipelining, which is also why
 * the transfer queries take the micro-batch's *logical* position as
 * an argument instead of trusting the clock — a prefetch worker may
 * gather micro-batch 3 while the clock still says 1.
 */
class Injector
{
  public:
    /** Install @p plan and reset the clock and all counters. */
    static void install(FaultPlan plan);

    /** Remove any installed plan (queries become no-ops). */
    static void clear();

    /** True when a non-empty plan is installed. */
    static bool active();

    /** @name Clock */
    /** @{ */

    /** Enter @p epoch (1-based); micro-batch position resets to -1
     * (the epoch-scoped slot). */
    static void beginEpoch(int64_t epoch);

    /** Enter micro-batch @p index (0-based) of the current epoch. */
    static void beginMicroBatch(int64_t index);

    /** @} */

    /** @name One-shot consuming queries */
    /** @{ */

    /** True if an InjectOom event fires at the clock position. */
    static bool takeInjectedOom();

    /** True (with the factor) if a CapacityDrop fires here. */
    static bool takeCapacityDrop(double* factor);

    /** True (with the scale) if an AllocScale fires here. */
    static bool takeAllocScale(double* scale);

    /**
     * True while a TransferFail event has failed attempts left for
     * the current epoch; call once per attempt. @p micro_batch is
     * the attempt's logical (program-order) position — pass -1 for
     * gathers outside the micro-batch loop (evaluation) — so a
     * `.mbM`-pinned schedule lands on exactly that micro-batch even
     * when a pool worker gathers ahead of the clock.
     */
    static bool takeTransferFailure(int64_t micro_batch);

    /**
     * True if a TransferFlaky event active at the clock's epoch (and
     * @p micro_batch, if pinned) loses its per-attempt draw. The
     * draw is Rng::stream keyed on (plan seed, epoch, micro_batch,
     * attempt ordinal) — a pure function of position, never of call
     * order or thread identity.
     */
    static bool takeTransferFlakyFailure(int64_t micro_batch,
                                         int64_t attempt);

    /** True (with the row fraction) if a CorruptFeatures event fires
     * at the current epoch's epoch-scoped slot. */
    static bool takeCorruptFeatures(double* fraction);

    /**
     * True if a DeviceDrop fires at the clock position. @p device
     * receives the spec's device index, or -1 when the spec named no
     * device (the engine then drops the highest-indexed live one).
     */
    static bool takeDeviceDrop(int64_t* device);

    /**
     * True if a DeviceSlow fires at the clock position. @p factor
     * receives the slowdown (> 1), @p device the victim index or -1
     * for "engine's choice", @p duration_epochs how many epochs the
     * degradation lasts (0 = permanent).
     */
    static bool takeDeviceSlow(double* factor, int64_t* device,
                               int64_t* duration_epochs);

    /** @} */

    /**
     * The rows of an @p num_rows-row feature gather to corrupt for a
     * @p fraction-sized corruption event: a sorted, duplicate-free
     * index list, at least one row when fraction > 0. A pure function
     * of (plan seed, current epoch, num_rows) — never of call order —
     * via Rng::stream, so repair tests can recompute the exact set.
     */
    static std::vector<int64_t> corruptRowPlan(int64_t num_rows,
                                               double fraction);

    /** Total events consumed since install() (retries count each). */
    static int64_t faultsInjected();

    /** Consumed events of one kind (TransferFail counts attempts,
     * TransferFlaky counts losing draws). */
    static int64_t faultsInjected(FaultKind kind);
};

} // namespace betty::fault

#endif // BETTY_UTIL_FAULT_H
