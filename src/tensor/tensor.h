/**
 * @file
 * Dense 2-D float32 tensor with byte-accurate allocation accounting.
 *
 * Every Tensor's backing storage reports its size to the installed
 * AllocationObserver (see memory/device_memory.h) on allocation and
 * release. The simulated accelerator memory model is built on these
 * notifications, which is what lets the repository measure "GPU" peak
 * memory without a GPU.
 */
#ifndef BETTY_TENSOR_TENSOR_H
#define BETTY_TENSOR_TENSOR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/memprof.h"

namespace betty {

class Rng;

/**
 * Receives storage lifetime events from every Tensor allocation.
 *
 * Events carry the Table 3 memory category (obs/memprof.h) the
 * allocation happened under; paired alloc/free events always report
 * the same category because Tensor::Storage snapshots it at
 * allocation time. Observers that do not care about provenance can
 * ignore the argument; callers that do not care can use the 1-arg
 * convenience overloads, which tag with the calling thread's current
 * MemCategoryScope.
 */
class AllocationObserver
{
  public:
    virtual ~AllocationObserver() = default;

    /** Called when @p bytes of tensor storage are allocated. */
    virtual void onAlloc(int64_t bytes, obs::MemCategory category) = 0;

    /** Called when @p bytes of tensor storage are released. */
    virtual void onFree(int64_t bytes, obs::MemCategory category) = 0;

    /** @name Convenience: tag with the thread's current category. */
    /** @{ */
    void onAlloc(int64_t bytes)
    {
        onAlloc(bytes, obs::currentMemCategory());
    }

    void onFree(int64_t bytes)
    {
        onFree(bytes, obs::currentMemCategory());
    }
    /** @} */
};

/**
 * Install the observer that receives all subsequent allocation events.
 * Pass nullptr to detach. Returns the previously installed observer.
 */
AllocationObserver* setAllocationObserver(AllocationObserver* observer);

/** The currently installed observer, or nullptr. */
AllocationObserver* allocationObserver();

/**
 * Lifetime count of tensor storages allocated from the system heap —
 * allocations under an active kernels::ArenaScope do not count. A
 * steady-state micro-batch should not move this counter (the O(1)
 * allocation regression tests in tests/test_arena.cc pin that down).
 */
int64_t tensorHeapAllocCount();

/**
 * A reference-counted dense row-major matrix of float32.
 *
 * Copies are shallow (shared storage); use clone() for a deep copy.
 * A default-constructed Tensor is empty (0 x 0) and owns no storage.
 */
class Tensor
{
  public:
    Tensor() = default;

    /** Allocate an uninitialized rows x cols tensor. */
    Tensor(int64_t rows, int64_t cols);

    /** @name Shape */
    /** @{ */
    int64_t rows() const { return rows_; }
    int64_t cols() const { return cols_; }
    int64_t numel() const { return rows_ * cols_; }
    int64_t bytes() const { return numel() * int64_t(sizeof(float)); }
    bool empty() const { return numel() == 0; }
    bool sameShape(const Tensor& other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_;
    }
    /** @} */

    /** @name Element access */
    /** @{ */
    float* data();
    const float* data() const;
    float& at(int64_t r, int64_t c);
    float at(int64_t r, int64_t c) const;
    /** @} */

    /** @name Factories */
    /** @{ */
    static Tensor zeros(int64_t rows, int64_t cols);
    static Tensor full(int64_t rows, int64_t cols, float value);
    /** Uniform values in [lo, hi). */
    static Tensor uniform(int64_t rows, int64_t cols, Rng& rng,
                          float lo = -1.0f, float hi = 1.0f);
    /** Xavier/Glorot uniform init for a fan_in x fan_out weight. */
    static Tensor xavier(int64_t fan_in, int64_t fan_out, Rng& rng);
    /** Build from an explicit row-major value list (for tests). */
    static Tensor fromValues(int64_t rows, int64_t cols,
                             std::vector<float> values);
    /** @} */

    /** @name Whole-tensor mutation */
    /** @{ */
    void fill(float value);
    void setZero() { fill(0.0f); }
    /** Deep copy with fresh storage. */
    Tensor clone() const;
    /** this += other (shapes must match). */
    void addInPlace(const Tensor& other);
    /** this += alpha * other. */
    void addScaledInPlace(const Tensor& other, float alpha);
    /** this *= alpha. */
    void scaleInPlace(float alpha);
    /** @} */

    /** @name Reductions (value-only helpers, no autograd) */
    /** @{ */
    float sum() const;
    float maxAbs() const;
    /** @} */

  private:
    struct Storage;

    int64_t rows_ = 0;
    int64_t cols_ = 0;
    std::shared_ptr<Storage> storage_;
};

/** @name Value-only kernels
 * Shared by the autograd layer; out must be preallocated to the correct
 * shape. accumulate=true adds into out instead of overwriting.
 */
/** @{ */

/** out = a x b (or out += if accumulate). */
void matmul(const Tensor& a, const Tensor& b, Tensor& out,
            bool accumulate = false);

/** out = aᵀ x b. */
void matmulTransA(const Tensor& a, const Tensor& b, Tensor& out,
                  bool accumulate = false);

/** out = a x bᵀ. */
void matmulTransB(const Tensor& a, const Tensor& b, Tensor& out,
                  bool accumulate = false);

/** @} */

} // namespace betty

#endif // BETTY_TENSOR_TENSOR_H
