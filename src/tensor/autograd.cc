#include "tensor/autograd.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "kernels/arena.h"
#include "kernels/kernels.h"
#include "obs/memprof.h"
#include "util/logging.h"
#include "util/rng.h"

namespace betty {
namespace ag {

Tensor&
Node::ensureGrad()
{
    if (grad.empty() && value.numel() > 0) {
        // Every gradient buffer — parameter gradients and the
        // backward buffers of intermediates alike — is item (7).
        obs::MemCategoryScope mem_scope(obs::MemCategory::Gradients);
        if (requiresGrad) {
            // Parameter gradients accumulate across micro-batches and
            // feed the optimizer step — they must not live in the
            // per-micro-batch arena.
            kernels::ArenaSuspend off_arena;
            grad = Tensor::zeros(value.rows(), value.cols());
        } else {
            grad = Tensor::zeros(value.rows(), value.cols());
        }
    }
    return grad;
}

bool
Node::needsGrad() const
{
    if (requiresGrad)
        return true;
    for (const auto& in : inputs)
        if (in->needsGrad())
            return true;
    return false;
}

namespace {

/** Build an op node over its inputs; requiresGrad stays false for ops —
 * gradient need is derived transitively through needsGrad(). */
NodePtr
makeOp(Tensor value, std::vector<NodePtr> inputs,
       std::function<void(Node&)> backward_fn)
{
    auto node = std::make_shared<Node>();
    node->value = std::move(value);
    node->inputs = std::move(inputs);
    node->backwardFn = std::move(backward_fn);
    return node;
}

} // namespace

NodePtr
constant(Tensor value)
{
    auto node = std::make_shared<Node>();
    node->value = std::move(value);
    return node;
}

NodePtr
parameter(Tensor value)
{
    auto node = std::make_shared<Node>();
    node->value = std::move(value);
    node->requiresGrad = true;
    return node;
}

NodePtr
matmul(const NodePtr& a, const NodePtr& b)
{
    Tensor out(a->value.rows(), b->value.cols());
    betty::matmul(a->value, b->value, out);
    return makeOp(std::move(out), {a, b}, [](Node& n) {
        const auto& a_in = n.inputs[0];
        const auto& b_in = n.inputs[1];
        if (a_in->needsGrad())
            matmulTransB(n.grad, b_in->value, a_in->ensureGrad(), true);
        if (b_in->needsGrad())
            matmulTransA(a_in->value, n.grad, b_in->ensureGrad(), true);
    });
}

NodePtr
add(const NodePtr& a, const NodePtr& b)
{
    BETTY_ASSERT(a->value.sameShape(b->value), "add shape mismatch");
    Tensor out = a->value.clone();
    out.addInPlace(b->value);
    return makeOp(std::move(out), {a, b}, [](Node& n) {
        for (auto& in : n.inputs)
            if (in->needsGrad())
                in->ensureGrad().addInPlace(n.grad);
    });
}

NodePtr
addBias(const NodePtr& x, const NodePtr& bias)
{
    BETTY_ASSERT(bias->value.rows() == 1 &&
                 bias->value.cols() == x->value.cols(),
                 "addBias: bias must be 1 x cols(x)");
    Tensor out = x->value.clone();
    const int64_t n = out.rows(), c = out.cols();
    const float* pb = bias->value.data();
    float* po = out.data();
    for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < c; ++j)
            po[i * c + j] += pb[j];
    return makeOp(std::move(out), {x, bias}, [](Node& node) {
        const auto& x_in = node.inputs[0];
        const auto& b_in = node.inputs[1];
        if (x_in->needsGrad())
            x_in->ensureGrad().addInPlace(node.grad);
        if (b_in->needsGrad()) {
            Tensor& bg = b_in->ensureGrad();
            const int64_t n = node.grad.rows(), c = node.grad.cols();
            const float* pg = node.grad.data();
            float* pbg = bg.data();
            for (int64_t i = 0; i < n; ++i)
                for (int64_t j = 0; j < c; ++j)
                    pbg[j] += pg[i * c + j];
        }
    });
}

NodePtr
scale(const NodePtr& x, float alpha)
{
    Tensor out = x->value.clone();
    out.scaleInPlace(alpha);
    return makeOp(std::move(out), {x}, [alpha](Node& n) {
        if (n.inputs[0]->needsGrad())
            n.inputs[0]->ensureGrad().addScaledInPlace(n.grad, alpha);
    });
}

NodePtr
mulElem(const NodePtr& a, const NodePtr& b)
{
    BETTY_ASSERT(a->value.sameShape(b->value), "mulElem shape mismatch");
    Tensor out = a->value.clone();
    {
        float* po = out.data();
        const float* pb = b->value.data();
        for (int64_t i = 0; i < out.numel(); ++i)
            po[i] *= pb[i];
    }
    return makeOp(std::move(out), {a, b}, [](Node& n) {
        const auto& a_in = n.inputs[0];
        const auto& b_in = n.inputs[1];
        const float* pg = n.grad.data();
        if (a_in->needsGrad()) {
            float* pag = a_in->ensureGrad().data();
            const float* pbv = b_in->value.data();
            for (int64_t i = 0; i < n.grad.numel(); ++i)
                pag[i] += pg[i] * pbv[i];
        }
        if (b_in->needsGrad()) {
            float* pbg = b_in->ensureGrad().data();
            const float* pav = a_in->value.data();
            for (int64_t i = 0; i < n.grad.numel(); ++i)
                pbg[i] += pg[i] * pav[i];
        }
    });
}

namespace {

/** Shared shape for unary elementwise ops defined by f and df(y, x). */
template <typename Fwd, typename Bwd>
NodePtr
unaryOp(const NodePtr& x, Fwd fwd, Bwd bwd)
{
    Tensor out(x->value.rows(), x->value.cols());
    const float* pi = x->value.empty() ? nullptr : x->value.data();
    float* po = out.empty() ? nullptr : out.data();
    for (int64_t i = 0; i < out.numel(); ++i)
        po[i] = fwd(pi[i]);
    return makeOp(std::move(out), {x}, [bwd](Node& n) {
        if (!n.inputs[0]->needsGrad())
            return;
        float* pg_in = n.inputs[0]->ensureGrad().data();
        const float* pg = n.grad.data();
        const float* px = n.inputs[0]->value.data();
        const float* py = n.value.data();
        for (int64_t i = 0; i < n.grad.numel(); ++i)
            pg_in[i] += pg[i] * bwd(py[i], px[i]);
    });
}

} // namespace

NodePtr
relu(const NodePtr& x)
{
    return unaryOp(
        x, [](float v) { return v > 0.0f ? v : 0.0f; },
        [](float, float xv) { return xv > 0.0f ? 1.0f : 0.0f; });
}

NodePtr
leakyRelu(const NodePtr& x, float alpha)
{
    return unaryOp(
        x, [alpha](float v) { return v > 0.0f ? v : alpha * v; },
        [alpha](float, float xv) { return xv > 0.0f ? 1.0f : alpha; });
}

NodePtr
sigmoid(const NodePtr& x)
{
    return unaryOp(
        x, [](float v) { return 1.0f / (1.0f + std::exp(-v)); },
        [](float y, float) { return y * (1.0f - y); });
}

NodePtr
tanhOp(const NodePtr& x)
{
    return unaryOp(
        x, [](float v) { return std::tanh(v); },
        [](float y, float) { return 1.0f - y * y; });
}

NodePtr
concatCols(const NodePtr& a, const NodePtr& b)
{
    BETTY_ASSERT(a->value.rows() == b->value.rows(),
                 "concatCols row mismatch");
    const int64_t n = a->value.rows();
    const int64_t ca = a->value.cols(), cb = b->value.cols();
    Tensor out(n, ca + cb);
    for (int64_t i = 0; i < n; ++i) {
        std::copy_n(a->value.data() + i * ca, ca,
                    out.data() + i * (ca + cb));
        std::copy_n(b->value.data() + i * cb, cb,
                    out.data() + i * (ca + cb) + ca);
    }
    return makeOp(std::move(out), {a, b}, [ca, cb](Node& node) {
        const int64_t n = node.grad.rows();
        const float* pg = node.grad.data();
        if (node.inputs[0]->needsGrad()) {
            float* pa = node.inputs[0]->ensureGrad().data();
            for (int64_t i = 0; i < n; ++i)
                for (int64_t j = 0; j < ca; ++j)
                    pa[i * ca + j] += pg[i * (ca + cb) + j];
        }
        if (node.inputs[1]->needsGrad()) {
            float* pb = node.inputs[1]->ensureGrad().data();
            for (int64_t i = 0; i < n; ++i)
                for (int64_t j = 0; j < cb; ++j)
                    pb[i * cb + j] += pg[i * (ca + cb) + ca + j];
        }
    });
}

NodePtr
concatRows(const std::vector<NodePtr>& parts)
{
    BETTY_ASSERT(!parts.empty(), "concatRows needs at least one part");
    const int64_t c = parts.front()->value.cols();
    int64_t total_rows = 0;
    for (const auto& p : parts) {
        BETTY_ASSERT(p->value.cols() == c, "concatRows column mismatch");
        total_rows += p->value.rows();
    }
    Tensor out(total_rows, c);
    int64_t cursor = 0;
    for (const auto& p : parts) {
        const int64_t rows = p->value.rows();
        if (rows > 0)
            std::copy_n(p->value.data(), rows * c,
                        out.data() + cursor * c);
        cursor += rows;
    }
    return makeOp(std::move(out), parts, [c](Node& node) {
        int64_t cursor = 0;
        for (auto& in : node.inputs) {
            const int64_t rows = in->value.rows();
            if (in->needsGrad() && rows > 0) {
                float* pg_in = in->ensureGrad().data();
                const float* pg = node.grad.data() + cursor * c;
                for (int64_t i = 0; i < rows * c; ++i)
                    pg_in[i] += pg[i];
            }
            cursor += rows;
        }
    });
}

NodePtr
mulColBroadcast(const NodePtr& x, const NodePtr& s)
{
    BETTY_ASSERT(s->value.cols() == 1 &&
                 s->value.rows() == x->value.rows(),
                 "mulColBroadcast: s must be rows(x) x 1");
    const int64_t n = x->value.rows(), c = x->value.cols();
    Tensor out = x->value.clone();
    for (int64_t i = 0; i < n; ++i) {
        const float m = s->value.at(i, 0);
        for (int64_t j = 0; j < c; ++j)
            out.at(i, j) *= m;
    }
    return makeOp(std::move(out), {x, s}, [c](Node& node) {
        const auto& x_in = node.inputs[0];
        const auto& s_in = node.inputs[1];
        const int64_t n = node.grad.rows();
        if (x_in->needsGrad()) {
            Tensor& xg = x_in->ensureGrad();
            for (int64_t i = 0; i < n; ++i) {
                const float m = s_in->value.at(i, 0);
                for (int64_t j = 0; j < c; ++j)
                    xg.at(i, j) += node.grad.at(i, j) * m;
            }
        }
        if (s_in->needsGrad()) {
            Tensor& sg = s_in->ensureGrad();
            for (int64_t i = 0; i < n; ++i) {
                double acc = 0.0;
                for (int64_t j = 0; j < c; ++j)
                    acc += double(node.grad.at(i, j)) *
                           double(x_in->value.at(i, j));
                sg.at(i, 0) += float(acc);
            }
        }
    });
}

NodePtr
sliceCols(const NodePtr& x, int64_t start, int64_t len)
{
    BETTY_ASSERT(start >= 0 && start + len <= x->value.cols(),
                 "sliceCols out of range");
    const int64_t n = x->value.rows(), c = x->value.cols();
    Tensor out(n, len);
    for (int64_t i = 0; i < n; ++i)
        std::copy_n(x->value.data() + i * c + start, len,
                    out.data() + i * len);
    return makeOp(std::move(out), {x}, [start, len, c](Node& node) {
        if (!node.inputs[0]->needsGrad())
            return;
        float* pxg = node.inputs[0]->ensureGrad().data();
        const float* pg = node.grad.data();
        const int64_t n = node.grad.rows();
        for (int64_t i = 0; i < n; ++i)
            for (int64_t j = 0; j < len; ++j)
                pxg[i * c + start + j] += pg[i * len + j];
    });
}

NodePtr
gatherRows(const NodePtr& x, std::vector<int64_t> indices)
{
    const int64_t c = x->value.cols();
    Tensor out(int64_t(indices.size()), c);
    if (!out.empty())
        kernels::gatherRows(x->value.data(), x->value.rows(), c,
                            indices.data(), int64_t(indices.size()),
                            out.data());
    return makeOp(std::move(out), {x},
                  [idx = std::move(indices), c](Node& node) {
        if (!node.inputs[0]->needsGrad() || node.grad.empty())
            return;
        Tensor& xg = node.inputs[0]->ensureGrad();
        if (xg.empty())
            return;
        kernels::scatterAddRows(node.grad.data(), c, idx.data(),
                                int64_t(idx.size()), xg.data());
    });
}

namespace {

void
checkOffsets(const std::vector<int64_t>& offsets, int64_t rows)
{
    BETTY_ASSERT(!offsets.empty() && offsets.front() == 0 &&
                 offsets.back() == rows,
                 "segment offsets must span [0, rows]");
    for (size_t s = 1; s < offsets.size(); ++s)
        BETTY_ASSERT(offsets[s] >= offsets[s - 1],
                     "segment offsets must be nondecreasing");
}

} // namespace

NodePtr
segmentSum(const NodePtr& x, std::vector<int64_t> offsets)
{
    checkOffsets(offsets, x->value.rows());
    const int64_t segments = int64_t(offsets.size()) - 1;
    const int64_t c = x->value.cols();
    Tensor out = Tensor::zeros(segments, c);
    if (!out.empty() && !x->value.empty())
        // Null sources = the contiguous-segment identity: row r of x
        // is edge r.
        kernels::gatherAggregate(x->value.data(), x->value.rows(), c,
                                 nullptr, offsets.data(), segments,
                                 kernels::Reduce::Sum, out.data());
    return makeOp(std::move(out), {x},
                  [off = std::move(offsets), c](Node& node) {
        if (!node.inputs[0]->needsGrad() || node.grad.empty())
            return;
        Tensor& xg = node.inputs[0]->ensureGrad();
        if (xg.empty())
            return;
        kernels::gatherAggregateBackward(
            node.grad.data(), c, nullptr, off.data(),
            int64_t(off.size()) - 1, /*mean=*/false, xg.data());
    });
}

NodePtr
segmentMean(const NodePtr& x, std::vector<int64_t> offsets)
{
    checkOffsets(offsets, x->value.rows());
    const int64_t segments = int64_t(offsets.size()) - 1;
    const int64_t c = x->value.cols();
    Tensor out = Tensor::zeros(segments, c);
    if (!out.empty() && !x->value.empty())
        kernels::gatherAggregate(x->value.data(), x->value.rows(), c,
                                 nullptr, offsets.data(), segments,
                                 kernels::Reduce::Mean, out.data());
    return makeOp(std::move(out), {x},
                  [off = std::move(offsets), c](Node& node) {
        if (!node.inputs[0]->needsGrad() || node.grad.empty())
            return;
        Tensor& xg = node.inputs[0]->ensureGrad();
        if (xg.empty())
            return;
        kernels::gatherAggregateBackward(
            node.grad.data(), c, nullptr, off.data(),
            int64_t(off.size()) - 1, /*mean=*/true, xg.data());
    });
}

NodePtr
gatherSegmentReduce(const NodePtr& x, std::vector<int64_t> sources,
                    std::vector<int64_t> offsets, bool mean)
{
    const int64_t segments = int64_t(offsets.size()) - 1;
    const int64_t c = x->value.cols();
    BETTY_ASSERT(!offsets.empty() && offsets.front() == 0 &&
                 offsets.back() == int64_t(sources.size()),
                 "offsets must span the source list");
    Tensor out = Tensor::zeros(segments, c);
    if (!out.empty() && !x->value.empty())
        kernels::gatherAggregate(
            x->value.data(), x->value.rows(), c, sources.data(),
            offsets.data(), segments,
            mean ? kernels::Reduce::Mean : kernels::Reduce::Sum,
            out.data());
    return makeOp(std::move(out), {x},
                  [src_list = std::move(sources),
                   off = std::move(offsets), c, mean](Node& node) {
        if (!node.inputs[0]->needsGrad() || node.grad.empty())
            return;
        Tensor& xg = node.inputs[0]->ensureGrad();
        if (xg.empty())
            return;
        kernels::gatherAggregateBackward(
            node.grad.data(), c, src_list.data(), off.data(),
            int64_t(off.size()) - 1, mean, xg.data());
    });
}

NodePtr
segmentMax(const NodePtr& x, std::vector<int64_t> offsets)
{
    checkOffsets(offsets, x->value.rows());
    const int64_t segments = int64_t(offsets.size()) - 1;
    const int64_t c = x->value.cols();
    Tensor out = Tensor::zeros(segments, c);
    // argmax[s*c + j] records which input row won, for the backward pass.
    auto argmax = std::make_shared<std::vector<int64_t>>(
        size_t(segments * c), int64_t(-1));
    if (!out.empty() && !x->value.empty())
        kernels::gatherAggregate(x->value.data(), x->value.rows(), c,
                                 nullptr, offsets.data(), segments,
                                 kernels::Reduce::Max, out.data(),
                                 argmax->data());
    return makeOp(std::move(out), {x}, [argmax, c](Node& node) {
        if (!node.inputs[0]->needsGrad())
            return;
        Tensor& xg = node.inputs[0]->ensureGrad();
        const int64_t segments = node.grad.rows();
        for (int64_t s = 0; s < segments; ++s)
            for (int64_t j = 0; j < c; ++j) {
                const int64_t r = (*argmax)[size_t(s * c + j)];
                if (r >= 0)
                    xg.at(r, j) += node.grad.at(s, j);
            }
    });
}

NodePtr
segmentSoftmax(const NodePtr& x, std::vector<int64_t> offsets)
{
    checkOffsets(offsets, x->value.rows());
    const int64_t segments = int64_t(offsets.size()) - 1;
    const int64_t c = x->value.cols();
    Tensor out(x->value.rows(), c);
    for (int64_t s = 0; s < segments; ++s) {
        for (int64_t j = 0; j < c; ++j) {
            float maxv = -1e30f;
            for (int64_t r = offsets[s]; r < offsets[s + 1]; ++r)
                maxv = std::max(maxv, x->value.at(r, j));
            double denom = 0.0;
            for (int64_t r = offsets[s]; r < offsets[s + 1]; ++r)
                denom += std::exp(double(x->value.at(r, j) - maxv));
            for (int64_t r = offsets[s]; r < offsets[s + 1]; ++r)
                out.at(r, j) = float(
                    std::exp(double(x->value.at(r, j) - maxv)) / denom);
        }
    }
    return makeOp(std::move(out), {x},
                  [off = std::move(offsets), c](Node& node) {
        if (!node.inputs[0]->needsGrad())
            return;
        Tensor& xg = node.inputs[0]->ensureGrad();
        const int64_t segments = int64_t(off.size()) - 1;
        // d x_r = y_r * (g_r - sum_k y_k g_k), per segment and column.
        for (int64_t s = 0; s < segments; ++s) {
            for (int64_t j = 0; j < c; ++j) {
                double dot = 0.0;
                for (int64_t r = off[s]; r < off[s + 1]; ++r)
                    dot += double(node.value.at(r, j)) *
                           double(node.grad.at(r, j));
                for (int64_t r = off[s]; r < off[s + 1]; ++r)
                    xg.at(r, j) += node.value.at(r, j) *
                                   (node.grad.at(r, j) - float(dot));
            }
        }
    });
}

NodePtr
dropout(const NodePtr& x, float p, Rng& rng, bool training)
{
    if (!training || p <= 0.0f)
        return x;
    BETTY_ASSERT(p < 1.0f, "dropout probability must be < 1");
    const float keep_scale = 1.0f / (1.0f - p);
    auto mask = std::make_shared<std::vector<float>>(size_t(x->value.numel()));
    Tensor out = x->value.clone();
    float* po = out.data();
    for (int64_t i = 0; i < out.numel(); ++i) {
        const float m = rng.uniformReal() < p ? 0.0f : keep_scale;
        (*mask)[size_t(i)] = m;
        po[i] *= m;
    }
    return makeOp(std::move(out), {x}, [mask](Node& n) {
        if (!n.inputs[0]->needsGrad())
            return;
        float* pxg = n.inputs[0]->ensureGrad().data();
        const float* pg = n.grad.data();
        for (int64_t i = 0; i < n.grad.numel(); ++i)
            pxg[i] += pg[i] * (*mask)[size_t(i)];
    });
}

NodePtr
softmaxCrossEntropy(const NodePtr& logits, std::vector<int32_t> labels)
{
    const int64_t n = logits->value.rows();
    const int64_t classes = logits->value.cols();
    BETTY_ASSERT(int64_t(labels.size()) == n,
                 "labels size mismatch: ", labels.size(), " vs ", n);
    BETTY_ASSERT(n > 0, "cross entropy over empty batch");

    // probs is captured for the backward pass: d logits = (p - y) / n.
    auto probs = std::make_shared<Tensor>(n, classes);
    double loss = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        float maxv = -1e30f;
        for (int64_t j = 0; j < classes; ++j)
            maxv = std::max(maxv, logits->value.at(i, j));
        double denom = 0.0;
        for (int64_t j = 0; j < classes; ++j)
            denom += std::exp(double(logits->value.at(i, j) - maxv));
        for (int64_t j = 0; j < classes; ++j)
            probs->at(i, j) = float(
                std::exp(double(logits->value.at(i, j) - maxv)) / denom);
        const int32_t y = labels[size_t(i)];
        BETTY_ASSERT(y >= 0 && y < classes, "label ", y, " out of range");
        loss -= std::log(std::max(1e-12, double(probs->at(i, y))));
    }
    Tensor out = Tensor::full(1, 1, float(loss / double(n)));
    return makeOp(std::move(out), {logits},
                  [probs, lab = std::move(labels)](Node& node) {
        if (!node.inputs[0]->needsGrad())
            return;
        Tensor& lg = node.inputs[0]->ensureGrad();
        const int64_t n = lg.rows(), classes = lg.cols();
        const float upstream = node.grad.at(0, 0) / float(n);
        for (int64_t i = 0; i < n; ++i) {
            for (int64_t j = 0; j < classes; ++j) {
                const float indicator =
                    (j == lab[size_t(i)]) ? 1.0f : 0.0f;
                lg.at(i, j) += upstream * (probs->at(i, j) - indicator);
            }
        }
    });
}

void
backward(const NodePtr& root)
{
    BETTY_ASSERT(root->value.rows() == 1 && root->value.cols() == 1,
                 "backward expects a scalar root");
    // Iterative post-order topological sort (graphs can be deep for
    // LSTM aggregators over high-degree buckets).
    std::vector<Node*> order;
    std::unordered_set<Node*> visited;
    std::vector<std::pair<Node*, size_t>> stack;
    stack.emplace_back(root.get(), 0);
    visited.insert(root.get());
    while (!stack.empty()) {
        auto& [node, next_child] = stack.back();
        if (next_child < node->inputs.size()) {
            Node* child = node->inputs[next_child++].get();
            if (visited.insert(child).second)
                stack.emplace_back(child, 0);
        } else {
            order.push_back(node);
            stack.pop_back();
        }
    }

    root->ensureGrad().fill(1.0f);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        Node* node = *it;
        if (node->backwardFn && !node->grad.empty())
            node->backwardFn(*node);
    }
}

int64_t
countCorrect(const Tensor& logits, const std::vector<int32_t>& labels)
{
    BETTY_ASSERT(int64_t(labels.size()) == logits.rows(),
                 "countCorrect size mismatch");
    int64_t correct = 0;
    for (int64_t i = 0; i < logits.rows(); ++i) {
        int64_t best = 0;
        for (int64_t j = 1; j < logits.cols(); ++j)
            if (logits.at(i, j) > logits.at(i, best))
                best = j;
        if (best == labels[size_t(i)])
            ++correct;
    }
    return correct;
}

} // namespace ag
} // namespace betty
