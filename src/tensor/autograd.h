/**
 * @file
 * Minimal reverse-mode automatic differentiation over Tensor.
 *
 * The GNN layers (SAGE with mean/sum/pool/LSTM aggregators, GAT) are
 * expressed as compositions of the ops declared here; backward() then
 * produces exact gradients, which is what makes micro-batch gradient
 * accumulation mathematically identical to full-batch training — the
 * core equivalence Betty relies on (paper §4.2).
 *
 * The graph is dynamic: every op allocates a Node holding its output
 * value and a closure that routes the output gradient to its inputs.
 * Dropping the root NodePtr after a step releases all intermediate
 * activations, which the simulated device memory model observes as
 * frees (mirroring "intermediate results are released after backward",
 * paper §4.2.3).
 */
#ifndef BETTY_TENSOR_AUTOGRAD_H
#define BETTY_TENSOR_AUTOGRAD_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace betty {

class Rng;

namespace ag {

struct Node;
using NodePtr = std::shared_ptr<Node>;

/** One vertex of the dynamic computation graph. */
struct Node
{
    /** Forward value. */
    Tensor value;

    /** Accumulated gradient w.r.t. value; empty until first needed. */
    Tensor grad;

    /** Leaves with requiresGrad accumulate into grad across backwards. */
    bool requiresGrad = false;

    /** Upstream nodes; kept alive for the backward pass. */
    std::vector<NodePtr> inputs;

    /** Distributes this->grad to inputs' grads; null for leaves. */
    std::function<void(Node&)> backwardFn;

    /** Allocate-and-zero grad if it does not exist yet. */
    Tensor& ensureGrad();

    /** True if this node or anything upstream wants gradients. */
    bool needsGrad() const;
};

/** @name Leaf constructors */
/** @{ */

/** Wrap a value that does not require gradients (input features, etc). */
NodePtr constant(Tensor value);

/** Wrap a trainable parameter; its grad persists across backward calls. */
NodePtr parameter(Tensor value);

/** @} */

/** @name Differentiable operators */
/** @{ */

/** out = a x b. */
NodePtr matmul(const NodePtr& a, const NodePtr& b);

/** out = a + b, identical shapes. */
NodePtr add(const NodePtr& a, const NodePtr& b);

/** out = x + bias, bias is 1 x C broadcast over rows. */
NodePtr addBias(const NodePtr& x, const NodePtr& bias);

/** out = alpha * x. */
NodePtr scale(const NodePtr& x, float alpha);

/** out = a ⊙ b elementwise, identical shapes. */
NodePtr mulElem(const NodePtr& a, const NodePtr& b);

/** Rectified linear unit. */
NodePtr relu(const NodePtr& x);

/** Leaky ReLU with slope @p alpha for negative inputs (GAT uses 0.2). */
NodePtr leakyRelu(const NodePtr& x, float alpha);

/** Logistic sigmoid. */
NodePtr sigmoid(const NodePtr& x);

/** Hyperbolic tangent. */
NodePtr tanhOp(const NodePtr& x);

/** Column-wise concatenation [a | b]; equal row counts. */
NodePtr concatCols(const NodePtr& a, const NodePtr& b);

/** Row-wise concatenation (vertical stack); equal column counts. */
NodePtr concatRows(const std::vector<NodePtr>& parts);

/** out[i][j] = x[i][j] * s[i][0]: per-row scaling by a column vector
 * (used to weight GAT messages by edge attention). */
NodePtr mulColBroadcast(const NodePtr& x, const NodePtr& s);

/** Columns [start, start+len) of x. */
NodePtr sliceCols(const NodePtr& x, int64_t start, int64_t len);

/** Row gather: out[i] = x[indices[i]]; backward scatter-adds. */
NodePtr gatherRows(const NodePtr& x, std::vector<int64_t> indices);

/**
 * Segment reduction. Rows [offsets[s], offsets[s+1]) of x reduce to
 * output row s; offsets.size() == segments + 1, offsets.back() == rows.
 * Empty segments produce zero rows.
 */
NodePtr segmentSum(const NodePtr& x, std::vector<int64_t> offsets);

/** Per-segment arithmetic mean; empty segments produce zeros. */
NodePtr segmentMean(const NodePtr& x, std::vector<int64_t> offsets);

/**
 * Fused gather + segment reduction (DGL's fused message-passing
 * kernel, the paper's §2.2): out[s] = reduce over rows x[sources[e]]
 * for e in [offsets[s], offsets[s+1]), WITHOUT materializing the
 * [edges, cols] gather. mean=true averages, else sums; empty
 * segments produce zeros. This is why the Mean/Sum aggregators cost
 * O(N x d) memory instead of O(E x d).
 */
NodePtr gatherSegmentReduce(const NodePtr& x,
                            std::vector<int64_t> sources,
                            std::vector<int64_t> offsets, bool mean);

/** Per-segment column-wise max; empty segments produce zeros. */
NodePtr segmentMax(const NodePtr& x, std::vector<int64_t> offsets);

/**
 * Softmax over the rows inside each segment, per column — the edge
 * attention normalization used by GAT.
 */
NodePtr segmentSoftmax(const NodePtr& x, std::vector<int64_t> offsets);

/**
 * Inverted dropout. Active only when @p training; scales survivors by
 * 1/(1-p) so the expected activation is unchanged.
 */
NodePtr dropout(const NodePtr& x, float p, Rng& rng, bool training);

/**
 * Mean softmax cross-entropy between logits [N, classes] and integer
 * labels (size N). Returns a 1x1 scalar node.
 */
NodePtr softmaxCrossEntropy(const NodePtr& logits,
                            std::vector<int32_t> labels);

/** @} */

/**
 * Run reverse-mode differentiation from a scalar @p root.
 * Seeds d(root)/d(root) = 1 and accumulates into every reachable
 * parameter's grad. May be called repeatedly (gradient accumulation).
 */
void backward(const NodePtr& root);

/** Number of correct argmax predictions of logits vs labels. */
int64_t countCorrect(const Tensor& logits,
                     const std::vector<int32_t>& labels);

} // namespace ag
} // namespace betty

#endif // BETTY_TENSOR_AUTOGRAD_H
