#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <new>

#include "kernels/arena.h"
#include "kernels/kernels.h"
#include "util/logging.h"
#include "util/rng.h"

namespace betty {

namespace {

AllocationObserver* g_observer = nullptr;

/** Lifetime count of tensor storages that hit the system heap (as
 * opposed to an active kernels::Arena) — the regression tests pin a
 * steady-state micro-batch at zero growth of this counter. */
std::atomic<int64_t> g_heap_allocs{0};

} // namespace

int64_t
tensorHeapAllocCount()
{
    return g_heap_allocs.load(std::memory_order_relaxed);
}

AllocationObserver*
setAllocationObserver(AllocationObserver* observer)
{
    AllocationObserver* old = g_observer;
    g_observer = observer;
    return old;
}

AllocationObserver*
allocationObserver()
{
    return g_observer;
}

/**
 * Backing buffer. Reports its byte size to the observer that was
 * installed at allocation time; the same observer is notified on
 * release even if the global observer changed in between, so paired
 * alloc/free events always reach the same memory model. The memory
 * category is likewise snapshotted at allocation time, so a tensor
 * freed outside the MemCategoryScope it was allocated under is still
 * debited from the right category.
 *
 * The buffer itself draws from the thread's active kernels::Arena
 * when one is in scope (micro-batch temporaries; the arena reclaims
 * the bytes wholesale at reset) and from the system heap otherwise
 * (parameters, datasets, anything long-lived). Arena-backed storage
 * registers as a live handle so an escape past the owning reset()
 * panics instead of dangling. Either way the buffer is zero-filled
 * and 64-byte aligned.
 */
struct Tensor::Storage
{
    explicit Storage(int64_t count)
        : bytes(count * int64_t(sizeof(float))),
          observer(g_observer),
          category(obs::currentMemCategory()),
          arena(kernels::currentArena())
    {
        if (arena) {
            values = static_cast<float*>(
                arena->allocate(bytes, kernels::kArenaAlign));
            arena->noteLiveAttach();
        } else {
            values = static_cast<float*>(::operator new(
                size_t(bytes),
                std::align_val_t(kernels::kArenaAlign)));
            g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
        }
        std::memset(values, 0, size_t(bytes));
        if (observer)
            observer->onAlloc(bytes, category);
    }

    ~Storage()
    {
        if (observer)
            observer->onFree(bytes, category);
        if (arena)
            arena->noteLiveDetach();
        else
            ::operator delete(
                values, std::align_val_t(kernels::kArenaAlign));
    }

    Storage(const Storage&) = delete;
    Storage& operator=(const Storage&) = delete;

    float* values;
    int64_t bytes;
    AllocationObserver* observer;
    obs::MemCategory category;
    kernels::Arena* arena;
};

Tensor::Tensor(int64_t rows, int64_t cols) : rows_(rows), cols_(cols)
{
    BETTY_ASSERT(rows >= 0 && cols >= 0, "negative tensor shape");
    if (numel() > 0)
        storage_ = std::make_shared<Storage>(numel());
}

float*
Tensor::data()
{
    BETTY_ASSERT(storage_, "data() on empty tensor");
    return storage_->values;
}

const float*
Tensor::data() const
{
    BETTY_ASSERT(storage_, "data() on empty tensor");
    return storage_->values;
}

float&
Tensor::at(int64_t r, int64_t c)
{
    return data()[r * cols_ + c];
}

float
Tensor::at(int64_t r, int64_t c) const
{
    return data()[r * cols_ + c];
}

Tensor
Tensor::zeros(int64_t rows, int64_t cols)
{
    Tensor t(rows, cols);
    t.fill(0.0f);
    return t;
}

Tensor
Tensor::full(int64_t rows, int64_t cols, float value)
{
    Tensor t(rows, cols);
    t.fill(value);
    return t;
}

Tensor
Tensor::uniform(int64_t rows, int64_t cols, Rng& rng, float lo, float hi)
{
    Tensor t(rows, cols);
    float* p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] = static_cast<float>(rng.uniformReal(lo, hi));
    return t;
}

Tensor
Tensor::xavier(int64_t fan_in, int64_t fan_out, Rng& rng)
{
    const float bound =
        std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
    return uniform(fan_in, fan_out, rng, -bound, bound);
}

Tensor
Tensor::fromValues(int64_t rows, int64_t cols, std::vector<float> values)
{
    BETTY_ASSERT(int64_t(values.size()) == rows * cols,
                 "fromValues: ", values.size(), " values for ", rows, "x",
                 cols);
    Tensor t(rows, cols);
    std::copy(values.begin(), values.end(), t.data());
    return t;
}

void
Tensor::fill(float value)
{
    if (empty())
        return;
    std::fill_n(data(), numel(), value);
}

Tensor
Tensor::clone() const
{
    Tensor copy(rows_, cols_);
    if (numel() > 0)
        std::memcpy(copy.data(), data(), size_t(bytes()));
    return copy;
}

void
Tensor::addInPlace(const Tensor& other)
{
    BETTY_ASSERT(sameShape(other), "addInPlace shape mismatch");
    if (empty())
        return;
    kernels::addInPlace(data(), other.data(), numel());
}

void
Tensor::addScaledInPlace(const Tensor& other, float alpha)
{
    BETTY_ASSERT(sameShape(other), "addScaledInPlace shape mismatch");
    if (empty())
        return;
    kernels::addScaledInPlace(data(), other.data(), alpha, numel());
}

void
Tensor::scaleInPlace(float alpha)
{
    if (empty())
        return;
    kernels::scaleInPlace(data(), alpha, numel());
}

float
Tensor::sum() const
{
    if (empty())
        return 0.0f;
    double acc = 0.0;
    const float* a = data();
    for (int64_t i = 0; i < numel(); ++i)
        acc += a[i];
    return static_cast<float>(acc);
}

float
Tensor::maxAbs() const
{
    float best = 0.0f;
    if (empty())
        return best;
    const float* a = data();
    for (int64_t i = 0; i < numel(); ++i)
        best = std::max(best, std::fabs(a[i]));
    return best;
}

void
matmul(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate)
{
    BETTY_ASSERT(a.cols() == b.rows(), "matmul inner dim mismatch: ",
                 a.cols(), " vs ", b.rows());
    BETTY_ASSERT(out.rows() == a.rows() && out.cols() == b.cols(),
                 "matmul output shape mismatch");
    if (!accumulate)
        out.setZero();
    if (a.numel() == 0 || b.numel() == 0)
        return;

    kernels::gemm(a.data(), b.data(), out.data(), a.rows(), a.cols(),
                  b.cols());
}

void
matmulTransA(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate)
{
    BETTY_ASSERT(a.rows() == b.rows(), "matmulTransA inner dim mismatch");
    BETTY_ASSERT(out.rows() == a.cols() && out.cols() == b.cols(),
                 "matmulTransA output shape mismatch");
    if (!accumulate)
        out.setZero();
    if (a.numel() == 0 || b.numel() == 0)
        return;

    kernels::gemmTransA(a.data(), b.data(), out.data(), a.cols(),
                        a.rows(), b.cols());
}

void
matmulTransB(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate)
{
    BETTY_ASSERT(a.cols() == b.cols(), "matmulTransB inner dim mismatch");
    BETTY_ASSERT(out.rows() == a.rows() && out.cols() == b.rows(),
                 "matmulTransB output shape mismatch");
    if (!accumulate)
        out.setZero();
    if (a.numel() == 0 || b.numel() == 0)
        return;

    kernels::gemmTransB(a.data(), b.data(), out.data(), a.rows(),
                        a.cols(), b.rows());
}

} // namespace betty
