#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.h"
#include "util/rng.h"

namespace betty {

namespace {

AllocationObserver* g_observer = nullptr;

} // namespace

AllocationObserver*
setAllocationObserver(AllocationObserver* observer)
{
    AllocationObserver* old = g_observer;
    g_observer = observer;
    return old;
}

AllocationObserver*
allocationObserver()
{
    return g_observer;
}

/**
 * Backing buffer. Reports its byte size to the observer that was
 * installed at allocation time; the same observer is notified on
 * release even if the global observer changed in between, so paired
 * alloc/free events always reach the same memory model. The memory
 * category is likewise snapshotted at allocation time, so a tensor
 * freed outside the MemCategoryScope it was allocated under is still
 * debited from the right category.
 */
struct Tensor::Storage
{
    explicit Storage(int64_t count)
        : values(static_cast<size_t>(count)),
          bytes(count * int64_t(sizeof(float))),
          observer(g_observer),
          category(obs::currentMemCategory())
    {
        if (observer)
            observer->onAlloc(bytes, category);
    }

    ~Storage()
    {
        if (observer)
            observer->onFree(bytes, category);
    }

    Storage(const Storage&) = delete;
    Storage& operator=(const Storage&) = delete;

    std::vector<float> values;
    int64_t bytes;
    AllocationObserver* observer;
    obs::MemCategory category;
};

Tensor::Tensor(int64_t rows, int64_t cols) : rows_(rows), cols_(cols)
{
    BETTY_ASSERT(rows >= 0 && cols >= 0, "negative tensor shape");
    if (numel() > 0)
        storage_ = std::make_shared<Storage>(numel());
}

float*
Tensor::data()
{
    BETTY_ASSERT(storage_, "data() on empty tensor");
    return storage_->values.data();
}

const float*
Tensor::data() const
{
    BETTY_ASSERT(storage_, "data() on empty tensor");
    return storage_->values.data();
}

float&
Tensor::at(int64_t r, int64_t c)
{
    return data()[r * cols_ + c];
}

float
Tensor::at(int64_t r, int64_t c) const
{
    return data()[r * cols_ + c];
}

Tensor
Tensor::zeros(int64_t rows, int64_t cols)
{
    Tensor t(rows, cols);
    t.fill(0.0f);
    return t;
}

Tensor
Tensor::full(int64_t rows, int64_t cols, float value)
{
    Tensor t(rows, cols);
    t.fill(value);
    return t;
}

Tensor
Tensor::uniform(int64_t rows, int64_t cols, Rng& rng, float lo, float hi)
{
    Tensor t(rows, cols);
    float* p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] = static_cast<float>(rng.uniformReal(lo, hi));
    return t;
}

Tensor
Tensor::xavier(int64_t fan_in, int64_t fan_out, Rng& rng)
{
    const float bound =
        std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
    return uniform(fan_in, fan_out, rng, -bound, bound);
}

Tensor
Tensor::fromValues(int64_t rows, int64_t cols, std::vector<float> values)
{
    BETTY_ASSERT(int64_t(values.size()) == rows * cols,
                 "fromValues: ", values.size(), " values for ", rows, "x",
                 cols);
    Tensor t(rows, cols);
    std::copy(values.begin(), values.end(), t.data());
    return t;
}

void
Tensor::fill(float value)
{
    if (empty())
        return;
    std::fill_n(data(), numel(), value);
}

Tensor
Tensor::clone() const
{
    Tensor copy(rows_, cols_);
    if (numel() > 0)
        std::memcpy(copy.data(), data(), size_t(bytes()));
    return copy;
}

void
Tensor::addInPlace(const Tensor& other)
{
    BETTY_ASSERT(sameShape(other), "addInPlace shape mismatch");
    float* a = data();
    const float* b = other.data();
    for (int64_t i = 0; i < numel(); ++i)
        a[i] += b[i];
}

void
Tensor::addScaledInPlace(const Tensor& other, float alpha)
{
    BETTY_ASSERT(sameShape(other), "addScaledInPlace shape mismatch");
    float* a = data();
    const float* b = other.data();
    for (int64_t i = 0; i < numel(); ++i)
        a[i] += alpha * b[i];
}

void
Tensor::scaleInPlace(float alpha)
{
    if (empty())
        return;
    float* a = data();
    for (int64_t i = 0; i < numel(); ++i)
        a[i] *= alpha;
}

float
Tensor::sum() const
{
    if (empty())
        return 0.0f;
    double acc = 0.0;
    const float* a = data();
    for (int64_t i = 0; i < numel(); ++i)
        acc += a[i];
    return static_cast<float>(acc);
}

float
Tensor::maxAbs() const
{
    float best = 0.0f;
    if (empty())
        return best;
    const float* a = data();
    for (int64_t i = 0; i < numel(); ++i)
        best = std::max(best, std::fabs(a[i]));
    return best;
}

void
matmul(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate)
{
    BETTY_ASSERT(a.cols() == b.rows(), "matmul inner dim mismatch: ",
                 a.cols(), " vs ", b.rows());
    BETTY_ASSERT(out.rows() == a.rows() && out.cols() == b.cols(),
                 "matmul output shape mismatch");
    if (!accumulate)
        out.setZero();
    if (a.numel() == 0 || b.numel() == 0)
        return;

    const int64_t m = a.rows(), k = a.cols(), n = b.cols();
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = out.data();
    // i-k-j loop order streams B and C rows; good cache behaviour for the
    // tall-skinny shapes (many nodes x small hidden) GNN training produces.
    for (int64_t i = 0; i < m; ++i) {
        const float* arow = pa + i * k;
        float* crow = pc + i * n;
        for (int64_t kk = 0; kk < k; ++kk) {
            const float aval = arow[kk];
            if (aval == 0.0f)
                continue;
            const float* brow = pb + kk * n;
            for (int64_t j = 0; j < n; ++j)
                crow[j] += aval * brow[j];
        }
    }
}

void
matmulTransA(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate)
{
    BETTY_ASSERT(a.rows() == b.rows(), "matmulTransA inner dim mismatch");
    BETTY_ASSERT(out.rows() == a.cols() && out.cols() == b.cols(),
                 "matmulTransA output shape mismatch");
    if (!accumulate)
        out.setZero();
    if (a.numel() == 0 || b.numel() == 0)
        return;

    const int64_t m = a.cols(), k = a.rows(), n = b.cols();
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = out.data();
    for (int64_t kk = 0; kk < k; ++kk) {
        const float* arow = pa + kk * m;
        const float* brow = pb + kk * n;
        for (int64_t i = 0; i < m; ++i) {
            const float aval = arow[i];
            if (aval == 0.0f)
                continue;
            float* crow = pc + i * n;
            for (int64_t j = 0; j < n; ++j)
                crow[j] += aval * brow[j];
        }
    }
}

void
matmulTransB(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate)
{
    BETTY_ASSERT(a.cols() == b.cols(), "matmulTransB inner dim mismatch");
    BETTY_ASSERT(out.rows() == a.rows() && out.cols() == b.rows(),
                 "matmulTransB output shape mismatch");
    if (!accumulate)
        out.setZero();
    if (a.numel() == 0 || b.numel() == 0)
        return;

    const int64_t m = a.rows(), k = a.cols(), n = b.rows();
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = out.data();
    for (int64_t i = 0; i < m; ++i) {
        const float* arow = pa + i * k;
        float* crow = pc + i * n;
        for (int64_t j = 0; j < n; ++j) {
            const float* brow = pb + j * k;
            double acc = 0.0;
            for (int64_t kk = 0; kk < k; ++kk)
                acc += double(arow[kk]) * double(brow[kk]);
            crow[j] += static_cast<float>(acc);
        }
    }
}

} // namespace betty
