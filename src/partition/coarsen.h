/**
 * @file
 * Coarsening phase of the multilevel partitioner: heavy-edge matching
 * and coarse-graph construction.
 */
#ifndef BETTY_PARTITION_COARSEN_H
#define BETTY_PARTITION_COARSEN_H

#include <cstdint>
#include <vector>

#include "graph/weighted_graph.h"

namespace betty {

class Rng;

/** One coarsening step's output. */
struct CoarseLevel
{
    /** The coarse graph (merged vertex and edge weights). */
    WeightedGraph graph;

    /** fineToCoarse[v] = coarse vertex that fine vertex v collapsed
     * into. */
    std::vector<int64_t> fineToCoarse;
};

/**
 * Heavy-edge matching: visit vertices in random order; each unmatched
 * vertex pairs with its unmatched neighbor of maximum edge weight
 * (itself if none). Returns match[v] = partner (possibly v).
 */
std::vector<int64_t> heavyEdgeMatching(const WeightedGraph& graph,
                                       Rng& rng);

/**
 * Collapse matched pairs into coarse vertices. Vertex weights add;
 * parallel coarse edges have their weights summed; intra-pair edges
 * disappear (they can never be cut once merged).
 */
CoarseLevel coarsen(const WeightedGraph& graph,
                    const std::vector<int64_t>& matching);

} // namespace betty

#endif // BETTY_PARTITION_COARSEN_H
