/**
 * @file
 * Multilevel K-way minimum-edge-cut graph partitioning.
 *
 * From-scratch reimplementation of the algorithm family METIS belongs
 * to (Karypis & Kumar), which the paper uses both to partition the
 * redundancy-embedded graph (Algorithm 1, line 8) and as its "Metis"
 * baseline. Pipeline:
 *
 *   1. Coarsening — heavy-edge matching collapses the graph level by
 *      level until it is small (coarsen.h).
 *   2. Initial partitioning — greedy graph growing on the coarsest
 *      level (initial.h).
 *   3. Uncoarsening — the partition is projected back level by level,
 *      with boundary Kernighan-Lin/FM-style refinement after each
 *      projection (refine.h).
 *
 * The objective is the weighted edge cut, subject to a vertex-weight
 * balance constraint: every part's weight must stay below
 * imbalance * ceil(totalWeight / k).
 */
#ifndef BETTY_PARTITION_KWAY_PARTITIONER_H
#define BETTY_PARTITION_KWAY_PARTITIONER_H

#include <cstdint>
#include <vector>

#include "graph/weighted_graph.h"

namespace betty {

/** Tuning knobs for the multilevel partitioner. */
struct KwayOptions
{
    /** Number of parts; must be >= 1. */
    int32_t k = 2;

    /** Allowed part weight relative to perfect balance (METIS ufactor). */
    double imbalance = 1.05;

    /** Stop coarsening when the graph has at most max(k * this, 64)
     * vertices. */
    int64_t coarsenToPerPart = 15;

    /** Refinement passes per uncoarsening level. */
    int32_t refinePasses = 8;

    /** Seed for matching and initial-growth tie breaking. */
    uint64_t seed = 13;

    /** Independent multilevel runs; the lowest-cut result wins.
     * Matches METIS's multiple-initial-partition strategy. */
    int32_t restarts = 3;
};

/**
 * Partition @p graph into opts.k parts minimizing the weighted edge
 * cut. Returns a part id in [0, k) for every vertex. Handles k = 1,
 * graphs with isolated vertices, and graphs smaller than k (parts may
 * then be empty).
 */
std::vector<int32_t> kwayPartition(const WeightedGraph& graph,
                                   const KwayOptions& opts);

/** Largest part weight divided by perfect balance (1.0 = perfect). */
double partitionImbalance(const WeightedGraph& graph,
                          const std::vector<int32_t>& parts, int32_t k);

/**
 * Warm-start partitioning: skip the multilevel V-cycle and instead
 * rebalance + refine an existing assignment on the flat graph. Orders
 * of magnitude cheaper than kwayPartition when the graph changed
 * little — the paper's future-work item on reducing the partitioning
 * overhead of repeated batches (§7). The result never has a worse cut
 * than the rebalanced input.
 */
std::vector<int32_t> kwayPartitionWarm(const WeightedGraph& graph,
                                       const KwayOptions& opts,
                                       std::vector<int32_t> initial);

} // namespace betty

#endif // BETTY_PARTITION_KWAY_PARTITIONER_H
