/**
 * @file
 * Initial partitioning on the coarsest graph: greedy graph growing.
 */
#ifndef BETTY_PARTITION_INITIAL_H
#define BETTY_PARTITION_INITIAL_H

#include <cstdint>
#include <vector>

#include "graph/weighted_graph.h"

namespace betty {

class Rng;

/**
 * Grow k regions greedily. Parts 0..k-2 are grown one after another
 * from a random unassigned seed, preferring the frontier vertex with
 * the strongest connection to the growing part, until the part reaches
 * its weight target; the final part takes the remainder. Every vertex
 * receives a part id in [0, k).
 */
std::vector<int32_t> greedyGrowPartition(const WeightedGraph& graph,
                                         int32_t k, Rng& rng);

} // namespace betty

#endif // BETTY_PARTITION_INITIAL_H
