#include "partition/initial.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"
#include "util/rng.h"

namespace betty {

std::vector<int32_t>
greedyGrowPartition(const WeightedGraph& graph, int32_t k, Rng& rng)
{
    const int64_t n = graph.numNodes();
    BETTY_ASSERT(k >= 1, "k must be >= 1");
    std::vector<int32_t> parts(size_t(n), -1);
    if (k == 1) {
        std::fill(parts.begin(), parts.end(), 0);
        return parts;
    }

    const int64_t total = graph.totalVertexWeight();
    const int64_t target = (total + k - 1) / k;

    // connection[v] = accumulated edge weight from v into the part
    // currently being grown; reset between parts.
    std::vector<int64_t> connection(size_t(n), 0);
    std::vector<int64_t> touched;

    const std::vector<int64_t> seed_order = rng.permutation(n);
    size_t seed_cursor = 0;

    for (int32_t part = 0; part < k - 1; ++part) {
        int64_t grown = 0;
        for (int64_t t : touched)
            connection[size_t(t)] = 0;
        touched.clear();

        // Max-heap of (connection weight, vertex); stale entries are
        // skipped on pop (lazy deletion).
        std::priority_queue<std::pair<int64_t, int64_t>> frontier;

        while (grown < target) {
            // Find a growth vertex: best frontier entry, else a fresh
            // random seed from the unassigned pool.
            int64_t v = -1;
            while (!frontier.empty()) {
                const auto [w, u] = frontier.top();
                frontier.pop();
                if (parts[size_t(u)] == -1 &&
                    w == connection[size_t(u)]) {
                    v = u;
                    break;
                }
            }
            if (v == -1) {
                while (seed_cursor < seed_order.size() &&
                       parts[size_t(seed_order[seed_cursor])] != -1)
                    ++seed_cursor;
                if (seed_cursor == seed_order.size())
                    break; // nothing left anywhere
                v = seed_order[seed_cursor];
            }

            parts[size_t(v)] = part;
            grown += graph.vertexWeight(v);
            const auto nbrs = graph.neighbors(v);
            const auto wts = graph.edgeWeights(v);
            for (size_t i = 0; i < nbrs.size(); ++i) {
                const int64_t u = nbrs[i];
                if (parts[size_t(u)] != -1)
                    continue;
                if (connection[size_t(u)] == 0)
                    touched.push_back(u);
                connection[size_t(u)] += wts[i];
                frontier.emplace(connection[size_t(u)], u);
            }
        }
    }

    // Remainder goes to the last part.
    for (int64_t v = 0; v < n; ++v)
        if (parts[size_t(v)] == -1)
            parts[size_t(v)] = k - 1;
    return parts;
}

} // namespace betty
