/**
 * @file
 * Redundancy-Embedded Graph construction (paper §4.3.2, Algorithm 1).
 *
 * The REG's vertices are the batch's output nodes; the weight of edge
 * (i, j) counts the in-neighbor sources the two output nodes share in
 * the output (last) bipartite layer — exactly the entry c_ij of
 * C = AᵀA with diagonal removed and non-output rows/columns dropped.
 * A minimum-cut K-way partition of the REG therefore minimizes the
 * number of input nodes that must be duplicated across micro-batches.
 *
 * The paper computes C with a sparse matrix product
 * (dgl.adj_product_graph); we enumerate co-destination pairs per
 * source, which is the same computation row by row.
 */
#ifndef BETTY_PARTITION_REG_H
#define BETTY_PARTITION_REG_H

#include <cstdint>

#include "graph/weighted_graph.h"
#include "sampling/block.h"

namespace betty {

/** Options for REG construction. */
struct RegOptions
{
    /**
     * Hub guard: a source feeding more than this many destinations has
     * its co-destination pairs enumerated over a deterministic sample
     * of this size (the pairs form a near-clique either way, so the
     * "keep these together" signal survives). <= 0 disables the guard.
     */
    int64_t hubPairCap = 512;

    /**
     * Vertex weights of the REG. false (paper setting): unit weights,
     * the K-way balance equalizes output-node counts. true: weight
     * each output node by 1 + its last-layer in-degree so balance
     * tracks edge load instead (used by an ablation bench).
     */
    bool degreeVertexWeights = false;
};

/**
 * Build the REG from the output (last) bipartite layer of a batch.
 * Vertex v of the result corresponds to local destination v of
 * @p last_block (i.e. position v in last_block.dstNodes()).
 */
WeightedGraph buildReg(const Block& last_block,
                       const RegOptions& opts = {});

} // namespace betty

#endif // BETTY_PARTITION_REG_H
