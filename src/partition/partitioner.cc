#include "partition/partitioner.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace betty {

namespace {

/** Split @p nodes into k contiguous chunks of near-equal size. */
std::vector<std::vector<int64_t>>
chunkEvenly(const std::vector<int64_t>& nodes, int32_t k)
{
    BETTY_ASSERT(k >= 1, "k must be >= 1");
    std::vector<std::vector<int64_t>> groups(static_cast<size_t>(k));
    const int64_t n = int64_t(nodes.size());
    const int64_t base = n / k;
    const int64_t extra = n % k;
    int64_t cursor = 0;
    for (int32_t part = 0; part < k; ++part) {
        const int64_t len = base + (part < extra ? 1 : 0);
        groups[size_t(part)].assign(nodes.begin() + cursor,
                                    nodes.begin() + cursor + len);
        cursor += len;
    }
    return groups;
}

} // namespace

std::vector<std::vector<int64_t>>
RangePartitioner::partition(const MultiLayerBatch& batch, int32_t k)
{
    const auto outputs = batch.outputNodes();
    std::vector<int64_t> sorted(outputs.begin(), outputs.end());
    std::sort(sorted.begin(), sorted.end());
    return chunkEvenly(sorted, k);
}

std::vector<std::vector<int64_t>>
RandomPartitioner::partition(const MultiLayerBatch& batch, int32_t k)
{
    const auto outputs = batch.outputNodes();
    std::vector<int64_t> shuffled(outputs.begin(), outputs.end());
    rng_.shuffle(shuffled);
    return chunkEvenly(shuffled, k);
}

MetisBaselinePartitioner::MetisBaselinePartitioner(
    const CsrGraph& raw_graph, KwayOptions opts)
    : raw_graph_(raw_graph), opts_(std::move(opts))
{
}

std::vector<std::vector<int64_t>>
MetisBaselinePartitioner::partition(const MultiLayerBatch& batch,
                                    int32_t k)
{
    const auto outputs = batch.outputNodes();
    const int64_t n = int64_t(outputs.size());

    std::unordered_map<int64_t, int64_t> local;
    local.reserve(size_t(n) * 2);
    for (int64_t i = 0; i < n; ++i)
        local.emplace(outputs[size_t(i)], i);

    // Induced output-node graph from raw edges, unit weights.
    std::vector<WeightedEdge> edges;
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t nbr : raw_graph_.outNeighbors(outputs[size_t(i)])) {
            const auto it = local.find(nbr);
            if (it != local.end() && it->second != i)
                edges.push_back({i, it->second, 1});
        }
    }
    const WeightedGraph induced(n, edges);

    KwayOptions opts = opts_;
    opts.k = k;
    const auto parts = kwayPartition(induced, opts);
    return groupByPart(outputs, parts, k);
}

std::vector<std::vector<int64_t>>
groupByPart(std::span<const int64_t> output_nodes,
            const std::vector<int32_t>& parts, int32_t k)
{
    BETTY_ASSERT(output_nodes.size() == parts.size(),
                 "one part id per output node required");
    std::vector<std::vector<int64_t>> groups(static_cast<size_t>(k));
    for (size_t i = 0; i < output_nodes.size(); ++i) {
        const int32_t p = parts[i];
        BETTY_ASSERT(p >= 0 && p < k, "part id out of range");
        groups[size_t(p)].push_back(output_nodes[i]);
    }
    return groups;
}

} // namespace betty
