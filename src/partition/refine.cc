#include "partition/refine.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace betty {

namespace {

std::vector<int64_t>
partWeights(const WeightedGraph& graph, const std::vector<int32_t>& parts,
            int32_t k)
{
    std::vector<int64_t> weights(size_t(k), 0);
    for (int64_t v = 0; v < graph.numNodes(); ++v)
        weights[size_t(parts[size_t(v)])] += graph.vertexWeight(v);
    return weights;
}

int64_t
maxPartWeight(const WeightedGraph& graph, int32_t k, double imbalance)
{
    const int64_t target =
        (graph.totalVertexWeight() + k - 1) / std::max<int32_t>(k, 1);
    // Never below the ceil-average (a perfectly balanced partition
    // must always be feasible), never above imbalance * target.
    return std::max(target, int64_t(double(target) * imbalance));
}

} // namespace

int64_t
refineKway(const WeightedGraph& graph, std::vector<int32_t>& parts,
           int32_t k, double imbalance, int32_t passes, Rng& rng)
{
    if (k <= 1)
        return 0;
    const int64_t n = graph.numNodes();
    const int64_t max_weight = maxPartWeight(graph, k, imbalance);
    std::vector<int64_t> weights = partWeights(graph, parts, k);

    // conn[p] = edge weight from the current vertex into part p;
    // reset per vertex via the touched list.
    std::vector<int64_t> conn(size_t(k), 0);
    std::vector<int32_t> touched;

    int64_t total_gain = 0;
    for (int32_t pass = 0; pass < passes; ++pass) {
        bool moved = false;
        const std::vector<int64_t> order = rng.permutation(n);
        for (int64_t v : order) {
            const auto nbrs = graph.neighbors(v);
            if (nbrs.empty())
                continue;
            const auto wts = graph.edgeWeights(v);
            const int32_t own = parts[size_t(v)];

            for (int32_t p : touched)
                conn[size_t(p)] = 0;
            touched.clear();
            for (size_t i = 0; i < nbrs.size(); ++i) {
                const int32_t p = parts[size_t(nbrs[i])];
                if (conn[size_t(p)] == 0)
                    touched.push_back(p);
                conn[size_t(p)] += wts[i];
            }

            // Best feasible destination by cut gain; ties broken toward
            // the lighter part to nudge balance for free.
            int32_t best_part = own;
            int64_t best_gain = 0;
            const int64_t vwgt = graph.vertexWeight(v);
            for (int32_t p : touched) {
                if (p == own)
                    continue;
                if (weights[size_t(p)] + vwgt > max_weight)
                    continue;
                const int64_t gain = conn[size_t(p)] - conn[size_t(own)];
                if (gain > best_gain ||
                    (gain == best_gain && best_part != own &&
                     weights[size_t(p)] < weights[size_t(best_part)])) {
                    best_gain = gain;
                    best_part = p;
                }
            }

            if (best_part != own && best_gain > 0) {
                parts[size_t(v)] = best_part;
                weights[size_t(own)] -= vwgt;
                weights[size_t(best_part)] += vwgt;
                total_gain += best_gain;
                moved = true;
            }
        }
        if (!moved)
            break;
    }
    return total_gain;
}

void
rebalance(const WeightedGraph& graph, std::vector<int32_t>& parts,
          int32_t k, double imbalance, Rng& rng)
{
    if (k <= 1)
        return;
    const int64_t n = graph.numNodes();
    const int64_t max_weight = maxPartWeight(graph, k, imbalance);
    std::vector<int64_t> weights = partWeights(graph, parts, k);

    const std::vector<int64_t> order = rng.permutation(n);
    // Greedy eviction: any vertex in an overweight part moves to the
    // currently lightest part. One sweep is enough because each move
    // strictly reduces overweight mass, and a vertex heavier than
    // max_weight can never be placed anyway (then nothing can help).
    for (int64_t v : order) {
        const int32_t own = parts[size_t(v)];
        if (weights[size_t(own)] <= max_weight)
            continue;
        const int32_t lightest = int32_t(
            std::min_element(weights.begin(), weights.end()) -
            weights.begin());
        if (lightest == own)
            continue;
        const int64_t vwgt = graph.vertexWeight(v);
        parts[size_t(v)] = lightest;
        weights[size_t(own)] -= vwgt;
        weights[size_t(lightest)] += vwgt;
    }
}

} // namespace betty
