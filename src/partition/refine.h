/**
 * @file
 * K-way boundary refinement (greedy Kernighan-Lin / FM style) and
 * balance enforcement, run after each uncoarsening projection.
 */
#ifndef BETTY_PARTITION_REFINE_H
#define BETTY_PARTITION_REFINE_H

#include <cstdint>
#include <vector>

#include "graph/weighted_graph.h"

namespace betty {

class Rng;

/**
 * Greedy boundary refinement: repeatedly move boundary vertices to the
 * adjacent part with the largest positive cut gain, subject to the
 * balance bound maxPartWeight = imbalance * ceil(total / k). Runs up
 * to @p passes sweeps or until a sweep makes no move.
 *
 * @return Total cut-weight improvement achieved.
 */
int64_t refineKway(const WeightedGraph& graph,
                   std::vector<int32_t>& parts, int32_t k,
                   double imbalance, int32_t passes, Rng& rng);

/**
 * Restore the balance bound if projection (or a caller) violated it:
 * evict the cheapest-to-move vertices from overweight parts into the
 * lightest parts. Cut quality is secondary to feasibility here.
 */
void rebalance(const WeightedGraph& graph, std::vector<int32_t>& parts,
               int32_t k, double imbalance, Rng& rng);

} // namespace betty

#endif // BETTY_PARTITION_REFINE_H
