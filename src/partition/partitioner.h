/**
 * @file
 * Output-node partitioner interface and the paper's three baselines.
 *
 * All of Betty's comparisons (Figures 11, 14, 15, 16) sweep four
 * partitioners over the same batches: range, random, Metis(-style min
 * cut on the output-node graph) and Betty's REG partitioning. The
 * first three live here; Betty's is in core/betty.h because it is the
 * paper's contribution.
 *
 * Per §6.1: "The three partition algorithms partition the graph based
 * on the IDs of output nodes" — they split the output-node set into K
 * groups, and each micro-batch is then regenerated as the hierarchical
 * bipartite closure of its group.
 */
#ifndef BETTY_PARTITION_PARTITIONER_H
#define BETTY_PARTITION_PARTITIONER_H

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "partition/kway_partitioner.h"
#include "sampling/block.h"
#include "util/rng.h"

namespace betty {

/** Splits a batch's output nodes into K groups. */
class OutputPartitioner
{
  public:
    virtual ~OutputPartitioner() = default;

    /**
     * Partition the output nodes of @p batch into @p k groups of
     * raw-graph node IDs. Groups may differ in size; a group may be
     * empty only when k exceeds the number of output nodes.
     */
    virtual std::vector<std::vector<int64_t>> partition(
        const MultiLayerBatch& batch, int32_t k) = 0;

    /** Short name used in benchmark tables ("range", "betty", ...). */
    virtual std::string name() const = 0;
};

/** Evenly sized contiguous chunks of the ID-sorted output nodes. */
class RangePartitioner : public OutputPartitioner
{
  public:
    std::vector<std::vector<int64_t>> partition(
        const MultiLayerBatch& batch, int32_t k) override;
    std::string name() const override { return "range"; }
};

/** Evenly sized chunks of a random permutation of the output nodes. */
class RandomPartitioner : public OutputPartitioner
{
  public:
    explicit RandomPartitioner(uint64_t seed = 17) : rng_(seed) {}

    std::vector<std::vector<int64_t>> partition(
        const MultiLayerBatch& batch, int32_t k) override;
    std::string name() const override { return "random"; }

  private:
    Rng rng_;
};

/**
 * The paper's "Metis" baseline: a min-cut K-way partition of the
 * output-node graph induced from the *raw* graph (unit edge weights,
 * redundancy-unaware) — connectivity-aware but blind to shared
 * neighbors, which is exactly the gap REG closes.
 */
class MetisBaselinePartitioner : public OutputPartitioner
{
  public:
    /** @param raw_graph Must outlive the partitioner. */
    explicit MetisBaselinePartitioner(const CsrGraph& raw_graph,
                                      KwayOptions opts = {});

    std::vector<std::vector<int64_t>> partition(
        const MultiLayerBatch& batch, int32_t k) override;
    std::string name() const override { return "metis"; }

  private:
    const CsrGraph& raw_graph_;
    KwayOptions opts_;
};

/** Group output nodes by a per-node part assignment (shared helper). */
std::vector<std::vector<int64_t>> groupByPart(
    std::span<const int64_t> output_nodes,
    const std::vector<int32_t>& parts, int32_t k);

} // namespace betty

#endif // BETTY_PARTITION_PARTITIONER_H
