#include "partition/kway_partitioner.h"

#include <algorithm>

#include "obs/trace.h"
#include "partition/coarsen.h"
#include "partition/initial.h"
#include "partition/refine.h"
#include "util/logging.h"
#include "util/rng.h"

namespace betty {

namespace {

/** One multilevel V-cycle: coarsen, initial partition, refine back. */
std::vector<int32_t>
multilevelCycle(const WeightedGraph& graph, const KwayOptions& opts,
                Rng& rng)
{
    const int64_t coarsen_target =
        std::max<int64_t>(opts.k * opts.coarsenToPerPart, 64);

    // Coarsening: keep matching until the graph is small or matching
    // stops shrinking it (>95% survival means mostly singletons).
    std::vector<CoarseLevel> levels;
    const WeightedGraph* current = &graph;
    {
        BETTY_TRACE_SPAN_CAT("partition/coarsen", "partition");
        while (current->numNodes() > coarsen_target) {
            const auto matching = heavyEdgeMatching(*current, rng);
            CoarseLevel level = coarsen(*current, matching);
            if (level.graph.numNodes() >
                int64_t(double(current->numNodes()) * 0.95)) {
                break;
            }
            levels.push_back(std::move(level));
            current = &levels.back().graph;
        }
    }

    // Initial partition on the coarsest graph, then refine it there.
    std::vector<int32_t> parts;
    {
        BETTY_TRACE_SPAN_CAT("partition/initial", "partition");
        parts = greedyGrowPartition(*current, opts.k, rng);
        rebalance(*current, parts, opts.k, opts.imbalance, rng);
        refineKway(*current, parts, opts.k, opts.imbalance,
                   opts.refinePasses, rng);
    }

    // Uncoarsening: project through the levels, refining each time.
    BETTY_TRACE_SPAN_CAT("partition/refine", "partition");
    for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
        const WeightedGraph& finer =
            (std::next(it) == levels.rend()) ? graph
                                             : std::next(it)->graph;
        std::vector<int32_t> fine_parts(size_t(finer.numNodes()));
        for (int64_t v = 0; v < finer.numNodes(); ++v)
            fine_parts[size_t(v)] =
                parts[size_t(it->fineToCoarse[size_t(v)])];
        parts = std::move(fine_parts);
        rebalance(finer, parts, opts.k, opts.imbalance, rng);
        refineKway(finer, parts, opts.k, opts.imbalance,
                   opts.refinePasses, rng);
    }

    return parts;
}

} // namespace

std::vector<int32_t>
kwayPartition(const WeightedGraph& graph, const KwayOptions& opts)
{
    BETTY_ASSERT(opts.k >= 1, "k must be >= 1");
    BETTY_TRACE_SPAN_CAT("partition/kway", "partition");
    const int64_t n = graph.numNodes();
    if (opts.k == 1 || n == 0)
        return std::vector<int32_t>(size_t(n), 0);

    // Several independent V-cycles; keep the lowest cut (METIS runs
    // multiple initial partitions for the same reason).
    std::vector<int32_t> best;
    int64_t best_cut = 0;
    const int32_t runs = std::max<int32_t>(1, opts.restarts);
    for (int32_t run = 0; run < runs; ++run) {
        Rng rng(opts.seed + uint64_t(run) * 0x9e3779b9ULL);
        auto parts = multilevelCycle(graph, opts, rng);
        const int64_t cut = graph.cutCost(parts);
        if (run == 0 || cut < best_cut) {
            best_cut = cut;
            best = std::move(parts);
        }
    }
    return best;
}

std::vector<int32_t>
kwayPartitionWarm(const WeightedGraph& graph, const KwayOptions& opts,
                  std::vector<int32_t> initial)
{
    BETTY_ASSERT(opts.k >= 1, "k must be >= 1");
    BETTY_TRACE_SPAN_CAT("partition/kway_warm", "partition");
    BETTY_ASSERT(int64_t(initial.size()) == graph.numNodes(),
                 "initial assignment size mismatch");
    if (opts.k == 1 || graph.numNodes() == 0)
        return std::vector<int32_t>(size_t(graph.numNodes()), 0);
    for (int32_t p : initial)
        BETTY_ASSERT(p >= 0 && p < opts.k,
                     "initial part id out of range");

    Rng rng(opts.seed);
    rebalance(graph, initial, opts.k, opts.imbalance, rng);
    refineKway(graph, initial, opts.k, opts.imbalance,
               opts.refinePasses, rng);
    return initial;
}

double
partitionImbalance(const WeightedGraph& graph,
                   const std::vector<int32_t>& parts, int32_t k)
{
    BETTY_ASSERT(k >= 1, "k must be >= 1");
    std::vector<int64_t> weights(size_t(k), 0);
    for (int64_t v = 0; v < graph.numNodes(); ++v)
        weights[size_t(parts[size_t(v)])] += graph.vertexWeight(v);
    const int64_t target = (graph.totalVertexWeight() + k - 1) / k;
    if (target == 0)
        return 1.0;
    const int64_t heaviest =
        *std::max_element(weights.begin(), weights.end());
    return double(heaviest) / double(target);
}

} // namespace betty
