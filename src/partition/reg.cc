#include "partition/reg.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace betty {

namespace {

/**
 * Sources per enumeration block. Fixed (never derived from the thread
 * count) so the work decomposition — and therefore the set of partial
 * weight maps — is identical for any pool size; only the schedule
 * varies. ~4k sources is coarse enough to amortize task overhead and
 * fine enough to balance hub-heavy blocks across workers.
 */
constexpr int64_t kSourceBlock = 4096;

/**
 * Accumulate the co-destination pair weights of sources [lo, hi) into
 * @p weights (key = lo_dst * num_dst + hi_dst).
 */
void
accumulateBlock(std::vector<std::vector<int64_t>>& dsts_of_src,
                int64_t lo, int64_t hi, int64_t num_dst,
                const RegOptions& opts,
                std::unordered_map<int64_t, int64_t>& weights)
{
    for (int64_t s = lo; s < hi; ++s) {
        auto& dsts = dsts_of_src[size_t(s)];
        if (dsts.size() < 2)
            continue;
        // A destination can sample the same source more than once in a
        // multigraph; shared-neighbor counts are over distinct nodes.
        std::sort(dsts.begin(), dsts.end());
        dsts.erase(std::unique(dsts.begin(), dsts.end()), dsts.end());

        const int64_t limit =
            (opts.hubPairCap > 0 &&
             int64_t(dsts.size()) > opts.hubPairCap)
                ? opts.hubPairCap
                : int64_t(dsts.size());
        // Deterministic stride sample keeps the guard reproducible.
        const double step = double(dsts.size()) / double(limit);
        for (int64_t a = 0; a < limit; ++a) {
            const int64_t i = dsts[size_t(double(a) * step)];
            for (int64_t b = a + 1; b < limit; ++b) {
                const int64_t j = dsts[size_t(double(b) * step)];
                if (i == j)
                    continue;
                const int64_t lo_d = std::min(i, j);
                const int64_t hi_d = std::max(i, j);
                ++weights[lo_d * num_dst + hi_d];
            }
        }
    }
}

} // namespace

WeightedGraph
buildReg(const Block& last_block, const RegOptions& opts)
{
    BETTY_TRACE_SPAN_CAT("partition/reg_build", "partition");
    const int64_t num_dst = last_block.numDst();
    const int64_t num_src = last_block.numSrc();

    // Invert the block's dst->src CSR: which destinations does each
    // source feed? (Column view of the adjacency matrix A.)
    std::vector<std::vector<int64_t>> dsts_of_src(
        static_cast<size_t>(num_src));
    for (int64_t d = 0; d < num_dst; ++d)
        for (int64_t s : last_block.inEdges(d))
            dsts_of_src[size_t(s)].push_back(d);

    // c_ij = sum over sources of [i in dsts(s)][j in dsts(s)]:
    // enumerate co-destination pairs per source and accumulate.
    // Row-blocked: each fixed block of sources fills its own weight
    // map (no sharing, no locks); the maps are then merged in block
    // order. Weight totals are sums, so the merge order cannot change
    // a value, and the final edge list is sorted by endpoint pair —
    // the output is byte-identical for any thread count (and no
    // longer depends on unordered_map iteration order at all).
    const int64_t num_blocks =
        num_src == 0 ? 0 : (num_src + kSourceBlock - 1) / kSourceBlock;
    std::vector<std::unordered_map<int64_t, int64_t>> block_weights(
        static_cast<size_t>(num_blocks));
    ThreadPool::global().parallelFor(
        0, num_blocks, 1, [&](int64_t block_lo, int64_t block_hi) {
            for (int64_t block = block_lo; block < block_hi;
                 ++block) {
                const int64_t lo = block * kSourceBlock;
                const int64_t hi =
                    std::min(lo + kSourceBlock, num_src);
                accumulateBlock(dsts_of_src, lo, hi, num_dst, opts,
                                block_weights[size_t(block)]);
            }
        });

    std::unordered_map<int64_t, int64_t> weights;
    for (auto& partial : block_weights) {
        if (weights.empty()) {
            weights = std::move(partial);
            continue;
        }
        for (const auto& [key, w] : partial)
            weights[key] += w;
        partial.clear();
    }

    std::vector<WeightedEdge> edges;
    edges.reserve(weights.size());
    for (const auto& [key, w] : weights)
        edges.push_back({key / num_dst, key % num_dst, w});
    // Canonical order: platform- and schedule-independent output.
    std::sort(edges.begin(), edges.end(),
              [](const WeightedEdge& a, const WeightedEdge& b) {
                  return a.u != b.u ? a.u < b.u : a.v < b.v;
              });

    std::vector<int64_t> vertex_weights;
    if (opts.degreeVertexWeights) {
        vertex_weights.resize(size_t(num_dst));
        for (int64_t d = 0; d < num_dst; ++d)
            vertex_weights[size_t(d)] = 1 + last_block.inDegree(d);
    }

    if (obs::Metrics::enabled()) {
        static obs::Counter& builds =
            obs::Metrics::counter("partition.reg_builds");
        static obs::Counter& reg_edges =
            obs::Metrics::counter("partition.reg_edges");
        builds.increment();
        reg_edges.add(int64_t(edges.size()));
    }
    return WeightedGraph(num_dst, edges, std::move(vertex_weights));
}

} // namespace betty
