#include "partition/reg.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace betty {

WeightedGraph
buildReg(const Block& last_block, const RegOptions& opts)
{
    BETTY_TRACE_SPAN("partition/reg_build");
    const int64_t num_dst = last_block.numDst();
    const int64_t num_src = last_block.numSrc();

    // Invert the block's dst->src CSR: which destinations does each
    // source feed? (Column view of the adjacency matrix A.)
    std::vector<std::vector<int64_t>> dsts_of_src(
        static_cast<size_t>(num_src));
    for (int64_t d = 0; d < num_dst; ++d)
        for (int64_t s : last_block.inEdges(d))
            dsts_of_src[size_t(s)].push_back(d);

    // c_ij = sum over sources of [i in dsts(s)][j in dsts(s)]:
    // enumerate co-destination pairs per source and accumulate.
    std::unordered_map<int64_t, int64_t> weights;
    for (int64_t s = 0; s < num_src; ++s) {
        auto& dsts = dsts_of_src[size_t(s)];
        if (dsts.size() < 2)
            continue;
        // A destination can sample the same source more than once in a
        // multigraph; shared-neighbor counts are over distinct nodes.
        std::sort(dsts.begin(), dsts.end());
        dsts.erase(std::unique(dsts.begin(), dsts.end()), dsts.end());

        const int64_t limit =
            (opts.hubPairCap > 0 &&
             int64_t(dsts.size()) > opts.hubPairCap)
                ? opts.hubPairCap
                : int64_t(dsts.size());
        // Deterministic stride sample keeps the guard reproducible.
        const double step = double(dsts.size()) / double(limit);
        for (int64_t a = 0; a < limit; ++a) {
            const int64_t i = dsts[size_t(double(a) * step)];
            for (int64_t b = a + 1; b < limit; ++b) {
                const int64_t j = dsts[size_t(double(b) * step)];
                if (i == j)
                    continue;
                const int64_t lo = std::min(i, j), hi = std::max(i, j);
                ++weights[lo * num_dst + hi];
            }
        }
    }

    std::vector<WeightedEdge> edges;
    edges.reserve(weights.size());
    for (const auto& [key, w] : weights)
        edges.push_back({key / num_dst, key % num_dst, w});

    std::vector<int64_t> vertex_weights;
    if (opts.degreeVertexWeights) {
        vertex_weights.resize(size_t(num_dst));
        for (int64_t d = 0; d < num_dst; ++d)
            vertex_weights[size_t(d)] = 1 + last_block.inDegree(d);
    }

    if (obs::Metrics::enabled()) {
        static obs::Counter& builds =
            obs::Metrics::counter("partition.reg_builds");
        static obs::Counter& reg_edges =
            obs::Metrics::counter("partition.reg_edges");
        builds.increment();
        reg_edges.add(int64_t(edges.size()));
    }
    return WeightedGraph(num_dst, edges, std::move(vertex_weights));
}

} // namespace betty
