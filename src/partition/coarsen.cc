#include "partition/coarsen.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace betty {

std::vector<int64_t>
heavyEdgeMatching(const WeightedGraph& graph, Rng& rng)
{
    const int64_t n = graph.numNodes();
    std::vector<int64_t> match(size_t(n), -1);
    const std::vector<int64_t> order = rng.permutation(n);

    for (int64_t v : order) {
        if (match[size_t(v)] != -1)
            continue;
        const auto nbrs = graph.neighbors(v);
        const auto wts = graph.edgeWeights(v);
        int64_t best = -1;
        int64_t best_weight = -1;
        for (size_t i = 0; i < nbrs.size(); ++i) {
            const int64_t u = nbrs[i];
            if (u == v || match[size_t(u)] != -1)
                continue;
            if (wts[i] > best_weight) {
                best_weight = wts[i];
                best = u;
            }
        }
        if (best == -1) {
            match[size_t(v)] = v;
        } else {
            match[size_t(v)] = best;
            match[size_t(best)] = v;
        }
    }
    return match;
}

CoarseLevel
coarsen(const WeightedGraph& graph, const std::vector<int64_t>& matching)
{
    const int64_t n = graph.numNodes();
    BETTY_ASSERT(int64_t(matching.size()) == n, "matching size mismatch");

    CoarseLevel level;
    level.fineToCoarse.assign(size_t(n), -1);

    // Assign coarse ids: each matched pair (or singleton) becomes one
    // coarse vertex; the smaller endpoint claims the id.
    int64_t coarse_count = 0;
    for (int64_t v = 0; v < n; ++v) {
        if (level.fineToCoarse[size_t(v)] != -1)
            continue;
        const int64_t partner = matching[size_t(v)];
        BETTY_ASSERT(partner >= 0 && partner < n, "bad matching entry");
        level.fineToCoarse[size_t(v)] = coarse_count;
        level.fineToCoarse[size_t(partner)] = coarse_count;
        ++coarse_count;
    }

    std::vector<int64_t> coarse_vwgt(size_t(coarse_count), 0);
    for (int64_t v = 0; v < n; ++v)
        coarse_vwgt[size_t(level.fineToCoarse[size_t(v)])] +=
            graph.vertexWeight(v);

    std::vector<WeightedEdge> coarse_edges;
    coarse_edges.reserve(size_t(graph.numEdges()));
    for (int64_t v = 0; v < n; ++v) {
        const int64_t cv = level.fineToCoarse[size_t(v)];
        const auto nbrs = graph.neighbors(v);
        const auto wts = graph.edgeWeights(v);
        for (size_t i = 0; i < nbrs.size(); ++i) {
            const int64_t cu = level.fineToCoarse[size_t(nbrs[i])];
            // Each undirected fine edge appears twice; keep one copy by
            // the v < nbrs[i] rule; intra-pair edges collapse away.
            if (cv != cu && v < nbrs[i])
                coarse_edges.push_back({cv, cu, wts[i]});
        }
    }

    level.graph = WeightedGraph(coarse_count, coarse_edges,
                                std::move(coarse_vwgt));
    return level;
}

} // namespace betty
