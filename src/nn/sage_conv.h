/**
 * @file
 * GraphSAGE convolution layer over one bipartite block.
 *
 * Computes, per destination node v of the block,
 *     h'_v = W [ h_v || AGG_{u->v}(h_u) ] + b
 * with AGG one of the Table 1 aggregators: Mean, Sum, Pool
 * (max over a transformed neighborhood) or LSTM.
 *
 * The LSTM aggregator performs in-degree bucketing exactly as the
 * paper describes for DGL (§4.4.2): destinations are grouped by
 * in-degree so each group runs the recurrence as dense [B, d] steps;
 * the long-tailed degree distribution therefore concentrates work and
 * memory in the large-degree groups, which is the "bucketing
 * explosion" Betty's memory-aware partitioning reacts to.
 */
#ifndef BETTY_NN_SAGE_CONV_H
#define BETTY_NN_SAGE_CONV_H

#include <memory>

#include "memory/estimator.h"
#include "nn/linear.h"
#include "nn/lstm_cell.h"
#include "nn/module.h"
#include "sampling/block.h"

namespace betty {

/** One SAGE layer; owns the output projection and aggregator params. */
class SageConv : public Module
{
  public:
    SageConv(int64_t in_dim, int64_t out_dim, AggregatorKind aggregator,
             Rng& rng);

    /**
     * @param block The bipartite layer to convolve over.
     * @param h_src Representations of the block's source nodes,
     * [block.numSrc(), inDim], destinations in the prefix.
     * @return Destination representations [block.numDst(), outDim].
     */
    ag::NodePtr forward(const Block& block,
                        const ag::NodePtr& h_src) const;

    AggregatorKind aggregator() const { return aggregator_; }
    int64_t inDim() const { return in_dim_; }
    int64_t outDim() const { return out_->outDim(); }

    /** Trainable scalars belonging to the aggregator alone (NP_Agg). */
    int64_t aggregatorParameterCount() const;

  private:
    /** Neighborhood aggregation -> [numDst, inDim]. */
    ag::NodePtr aggregate(const Block& block,
                          const ag::NodePtr& h_src) const;

    ag::NodePtr lstmAggregate(const Block& block,
                              const ag::NodePtr& h_src) const;

    int64_t in_dim_;
    AggregatorKind aggregator_;
    std::unique_ptr<Linear> pool_fc_; // Pool only
    std::unique_ptr<LstmCell> lstm_;  // LSTM only
    std::unique_ptr<Linear> out_;     // projection over [self || agg]
};

} // namespace betty

#endif // BETTY_NN_SAGE_CONV_H
