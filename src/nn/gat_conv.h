/**
 * @file
 * Graph attention (GAT) convolution layer over one bipartite block.
 *
 * Per head: z = h W; edge score e_{uv} = LeakyReLU(aₗ·z_v + aᵣ·z_u);
 * attention = softmax over each destination's in-edges (plus an
 * implicit self edge so every destination attends to itself);
 * h'_v = sum over in-edges of attention * z_u. Head outputs are
 * concatenated (hidden layers) or averaged (output layer).
 */
#ifndef BETTY_NN_GAT_CONV_H
#define BETTY_NN_GAT_CONV_H

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"
#include "sampling/block.h"

namespace betty {

/** Multi-head graph attention layer. */
class GatConv : public Module
{
  public:
    /**
     * @param out_dim Per-head output width; the concatenated output is
     * num_heads * out_dim wide unless heads are averaged.
     */
    GatConv(int64_t in_dim, int64_t out_dim, int64_t num_heads,
            Rng& rng);

    /**
     * @param average_heads Average head outputs ([numDst, outDim])
     * instead of concatenating ([numDst, numHeads * outDim]); used on
     * the output layer.
     */
    ag::NodePtr forward(const Block& block, const ag::NodePtr& h_src,
                        bool average_heads = false) const;

    int64_t inDim() const { return in_dim_; }
    int64_t outDimPerHead() const { return out_dim_; }
    int64_t numHeads() const { return int64_t(heads_.size()); }

  private:
    struct Head
    {
        std::unique_ptr<Linear> fc;
        ag::NodePtr attnDst; // a_l, [out_dim, 1]
        ag::NodePtr attnSrc; // a_r, [out_dim, 1]
    };

    ag::NodePtr headForward(const Head& head, const Block& block,
                            const ag::NodePtr& h_src,
                            const std::vector<int64_t>& edge_src,
                            const std::vector<int64_t>& edge_dst,
                            const std::vector<int64_t>& offsets) const;

    int64_t in_dim_;
    int64_t out_dim_;
    std::vector<Head> heads_;
};

} // namespace betty

#endif // BETTY_NN_GAT_CONV_H
