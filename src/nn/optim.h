/**
 * @file
 * Optimizers. Adam is the paper's default (its two state tensors per
 * parameter are item (8) of the memory estimate); plain SGD is
 * provided for ablations.
 */
#ifndef BETTY_NN_OPTIM_H
#define BETTY_NN_OPTIM_H

#include <vector>

#include "tensor/autograd.h"

namespace betty {

/** Optimizer interface over a fixed parameter list. */
class Optimizer
{
  public:
    explicit Optimizer(std::vector<ag::NodePtr> params)
        : params_(std::move(params))
    {
    }

    virtual ~Optimizer() = default;

    /** Apply one update from the parameters' accumulated gradients. */
    virtual void step() = 0;

    /** Zero all parameter gradients. */
    void
    zeroGrad()
    {
        for (const auto& p : params_)
            if (!p->grad.empty())
                p->grad.setZero();
    }

    /** The parameter list this optimizer updates. */
    const std::vector<ag::NodePtr>& parameters() const
    {
        return params_;
    }

  protected:
    std::vector<ag::NodePtr> params_;
};

/** Stochastic gradient descent with optional weight decay. */
class Sgd : public Optimizer
{
  public:
    Sgd(std::vector<ag::NodePtr> params, float lr,
        float weight_decay = 0.0f)
        : Optimizer(std::move(params)), lr_(lr),
          weight_decay_(weight_decay)
    {
    }

    void step() override;

  private:
    float lr_;
    float weight_decay_;
};

/**
 * Adam (Kingma & Ba). Moment tensors are allocated eagerly in the
 * constructor so that creating the optimizer inside a device-memory
 * scope charges the optimizer states to the device, matching where
 * they live in GPU training.
 */
class Adam : public Optimizer
{
  public:
    Adam(std::vector<ag::NodePtr> params, float lr = 1e-3f,
         float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);

    void step() override;

    /** @name Checkpoint/resume state access (robustness/checkpoint.h)
     * Adam's update depends on the step count and both moment
     * tensors; a bit-identical resume must restore all three. */
    /** @{ */
    int64_t stepCount() const { return t_; }
    const std::vector<Tensor>& firstMoments() const { return m_; }
    const std::vector<Tensor>& secondMoments() const { return v_; }

    /**
     * Restore serialized state. Moment shapes must match this
     * optimizer's parameters; returns false (leaving the optimizer
     * untouched) on any mismatch.
     */
    bool restoreState(int64_t step_count, std::vector<Tensor> m,
                      std::vector<Tensor> v);
    /** @} */

  private:
    float lr_, beta1_, beta2_, eps_;
    int64_t t_ = 0;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
};

} // namespace betty

#endif // BETTY_NN_OPTIM_H
