/**
 * @file
 * Fully connected layer: y = x W + b.
 */
#ifndef BETTY_NN_LINEAR_H
#define BETTY_NN_LINEAR_H

#include "nn/module.h"
#include "util/rng.h"

namespace betty {

/** Affine transform with Xavier-initialized weights. */
class Linear : public Module
{
  public:
    Linear(int64_t in_dim, int64_t out_dim, Rng& rng)
        : w_(registerParameter(Tensor::xavier(in_dim, out_dim, rng))),
          b_(registerParameter(Tensor::zeros(1, out_dim)))
    {
    }

    ag::NodePtr
    forward(const ag::NodePtr& x) const
    {
        return ag::addBias(ag::matmul(x, w_), b_);
    }

    int64_t inDim() const { return w_->value.rows(); }
    int64_t outDim() const { return w_->value.cols(); }

  private:
    ag::NodePtr w_;
    ag::NodePtr b_;
};

} // namespace betty

#endif // BETTY_NN_LINEAR_H
