/**
 * @file
 * Standard LSTM cell, used as the memory-hungry GraphSAGE aggregator
 * of Table 1 ("LSTM_{u->v}(h^l)").
 */
#ifndef BETTY_NN_LSTM_CELL_H
#define BETTY_NN_LSTM_CELL_H

#include <utility>

#include "nn/module.h"
#include "util/rng.h"

namespace betty {

/**
 * One LSTM step over a batch of rows.
 *
 * Gate layout in the packed 4h weight matrices: [i | f | g | o].
 * Each forward() call materializes ~29 intermediate scalars per
 * (row, hidden unit) in the autograd graph — the implementation-
 * dependent constant of the paper's Eq. 5 (PyTorch's is 18); the
 * memory estimator uses the value exported by GraphSage::memorySpec().
 */
class LstmCell : public Module
{
  public:
    LstmCell(int64_t input_dim, int64_t hidden_dim, Rng& rng)
        : hidden_dim_(hidden_dim),
          wx_(registerParameter(
              Tensor::xavier(input_dim, 4 * hidden_dim, rng))),
          wh_(registerParameter(
              Tensor::xavier(hidden_dim, 4 * hidden_dim, rng))),
          b_(registerParameter(Tensor::zeros(1, 4 * hidden_dim)))
    {
    }

    /** State pair (hidden, cell). */
    struct State
    {
        ag::NodePtr h;
        ag::NodePtr c;
    };

    /** Zero initial state for @p batch rows. */
    State
    initialState(int64_t batch) const
    {
        return {ag::constant(Tensor::zeros(batch, hidden_dim_)),
                ag::constant(Tensor::zeros(batch, hidden_dim_))};
    }

    /** Advance the cell one timestep on input @p x ([batch, in]). */
    State
    forward(const ag::NodePtr& x, const State& state) const
    {
        using namespace ag;
        const auto gates = addBias(
            add(matmul(x, wx_), matmul(state.h, wh_)), b_);
        const auto i = sigmoid(sliceCols(gates, 0, hidden_dim_));
        const auto f = sigmoid(sliceCols(gates, hidden_dim_,
                                         hidden_dim_));
        const auto g = tanhOp(sliceCols(gates, 2 * hidden_dim_,
                                        hidden_dim_));
        const auto o = sigmoid(sliceCols(gates, 3 * hidden_dim_,
                                         hidden_dim_));
        const auto c = add(mulElem(f, state.c), mulElem(i, g));
        const auto h = mulElem(o, tanhOp(c));
        return {h, c};
    }

    int64_t hiddenDim() const { return hidden_dim_; }

  private:
    int64_t hidden_dim_;
    ag::NodePtr wx_;
    ag::NodePtr wh_;
    ag::NodePtr b_;
};

} // namespace betty

#endif // BETTY_NN_LSTM_CELL_H
