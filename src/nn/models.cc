#include "nn/models.h"

#include "obs/memprof.h"
#include "util/logging.h"
#include "util/rng.h"

namespace betty {

GraphSage::GraphSage(const SageConfig& config) : config_(config)
{
    obs::MemCategoryScope mem_scope(obs::MemCategory::Parameters);
    BETTY_ASSERT(config.inputDim > 0 && config.numClasses > 0 &&
                 config.numLayers >= 1,
                 "incomplete SageConfig");
    Rng rng(config.seed);
    for (int64_t layer = 0; layer < config.numLayers; ++layer) {
        const int64_t in =
            layer == 0 ? config.inputDim : config.hiddenDim;
        const int64_t out = layer + 1 == config.numLayers
                                ? config.numClasses
                                : config.hiddenDim;
        layers_.push_back(std::make_unique<SageConv>(
            in, out, config.aggregator, rng));
        registerChild(*layers_.back());
    }
}

ag::NodePtr
GraphSage::forward(const MultiLayerBatch& batch,
                   const ag::NodePtr& input_features) const
{
    BETTY_ASSERT(batch.numLayers() == config_.numLayers,
                 "batch has ", batch.numLayers(), " blocks, model has ",
                 config_.numLayers, " layers");
    ag::NodePtr h = input_features;
    for (int64_t layer = 0; layer < config_.numLayers; ++layer) {
        h = layers_[size_t(layer)]->forward(batch.blocks[size_t(layer)],
                                            h);
        if (layer + 1 < config_.numLayers)
            h = ag::relu(h);
    }
    return h;
}

GnnSpec
GraphSage::memorySpec() const
{
    GnnSpec spec;
    spec.inputDim = config_.inputDim;
    spec.hiddenDim = config_.hiddenDim;
    spec.numClasses = config_.numClasses;
    spec.numLayers = config_.numLayers;
    spec.aggregator = config_.aggregator;
    int64_t agg_params = 0;
    for (const auto& layer : layers_)
        agg_params += layer->aggregatorParameterCount();
    spec.paramCountAgg = agg_params;
    spec.paramCountGnn = parameterCount() - agg_params;
    // Our LstmCell materializes ~29 intermediate scalars per
    // (node, step, unit) plus the x_t gather: the constant of Eq. 5
    // for this implementation (PyTorch's is 18).
    spec.lstmIntermediatesPerNode = 30;
    return spec;
}

Gat::Gat(const GatConfig& config) : config_(config)
{
    obs::MemCategoryScope mem_scope(obs::MemCategory::Parameters);
    BETTY_ASSERT(config.inputDim > 0 && config.numClasses > 0 &&
                 config.numLayers >= 1,
                 "incomplete GatConfig");
    Rng rng(config.seed);
    for (int64_t layer = 0; layer < config.numLayers; ++layer) {
        const bool last = layer + 1 == config.numLayers;
        const int64_t in = layer == 0
                               ? config.inputDim
                               : config.hiddenDim * config.numHeads;
        const int64_t out = last ? config.numClasses : config.hiddenDim;
        const int64_t heads = last ? 1 : config.numHeads;
        layers_.push_back(
            std::make_unique<GatConv>(in, out, heads, rng));
        registerChild(*layers_.back());
    }
}

ag::NodePtr
Gat::forward(const MultiLayerBatch& batch,
             const ag::NodePtr& input_features) const
{
    BETTY_ASSERT(batch.numLayers() == config_.numLayers,
                 "batch/model layer mismatch");
    ag::NodePtr h = input_features;
    for (int64_t layer = 0; layer < config_.numLayers; ++layer) {
        const bool last = layer + 1 == config_.numLayers;
        h = layers_[size_t(layer)]->forward(
            batch.blocks[size_t(layer)], h, /*average_heads=*/last);
        if (!last)
            h = ag::relu(h);
    }
    return h;
}

GnnSpec
Gat::memorySpec() const
{
    GnnSpec spec;
    spec.inputDim = config_.inputDim;
    spec.hiddenDim = config_.hiddenDim * config_.numHeads;
    spec.numClasses = config_.numClasses;
    spec.numLayers = config_.numLayers;
    spec.aggregator = AggregatorKind::Attention;
    spec.attentionHeads = config_.numHeads;
    spec.paramCountGnn = parameterCount();
    spec.paramCountAgg = 0;
    return spec;
}

namespace {

/** Shared layer-size schedule of the simple stacks. */
std::pair<int64_t, int64_t>
stackDims(const StackConfig& config, int64_t layer)
{
    const int64_t in =
        layer == 0 ? config.inputDim : config.hiddenDim;
    const int64_t out = layer + 1 == config.numLayers
                            ? config.numClasses
                            : config.hiddenDim;
    return {in, out};
}

GnnSpec
stackSpec(const StackConfig& config, AggregatorKind kind,
          int64_t param_count)
{
    GnnSpec spec;
    spec.inputDim = config.inputDim;
    spec.hiddenDim = config.hiddenDim;
    spec.numClasses = config.numClasses;
    spec.numLayers = config.numLayers;
    spec.aggregator = kind;
    spec.paramCountGnn = param_count;
    return spec;
}

} // namespace

Gcn::Gcn(const StackConfig& config) : config_(config)
{
    obs::MemCategoryScope mem_scope(obs::MemCategory::Parameters);
    BETTY_ASSERT(config.inputDim > 0 && config.numClasses > 0 &&
                 config.numLayers >= 1,
                 "incomplete StackConfig");
    Rng rng(config.seed);
    for (int64_t layer = 0; layer < config.numLayers; ++layer) {
        const auto [in, out] = stackDims(config, layer);
        layers_.push_back(std::make_unique<GcnConv>(in, out, rng));
        registerChild(*layers_.back());
    }
}

ag::NodePtr
Gcn::forward(const MultiLayerBatch& batch,
             const ag::NodePtr& input_features) const
{
    BETTY_ASSERT(batch.numLayers() == config_.numLayers,
                 "batch/model layer mismatch");
    ag::NodePtr h = input_features;
    for (int64_t layer = 0; layer < config_.numLayers; ++layer) {
        h = layers_[size_t(layer)]->forward(batch.blocks[size_t(layer)],
                                            h);
        if (layer + 1 < config_.numLayers)
            h = ag::relu(h);
    }
    return h;
}

GnnSpec
Gcn::memorySpec() const
{
    return stackSpec(config_, AggregatorKind::Gcn, parameterCount());
}

Gin::Gin(const StackConfig& config) : config_(config)
{
    obs::MemCategoryScope mem_scope(obs::MemCategory::Parameters);
    BETTY_ASSERT(config.inputDim > 0 && config.numClasses > 0 &&
                 config.numLayers >= 1,
                 "incomplete StackConfig");
    Rng rng(config.seed);
    for (int64_t layer = 0; layer < config.numLayers; ++layer) {
        const auto [in, out] = stackDims(config, layer);
        layers_.push_back(std::make_unique<GinConv>(in, out, rng));
        registerChild(*layers_.back());
    }
}

ag::NodePtr
Gin::forward(const MultiLayerBatch& batch,
             const ag::NodePtr& input_features) const
{
    BETTY_ASSERT(batch.numLayers() == config_.numLayers,
                 "batch/model layer mismatch");
    ag::NodePtr h = input_features;
    for (int64_t layer = 0; layer < config_.numLayers; ++layer) {
        h = layers_[size_t(layer)]->forward(batch.blocks[size_t(layer)],
                                            h);
        if (layer + 1 < config_.numLayers)
            h = ag::relu(h);
    }
    return h;
}

GnnSpec
Gin::memorySpec() const
{
    return stackSpec(config_, AggregatorKind::Gin, parameterCount());
}

} // namespace betty
