#include "nn/gat_conv.h"

#include "obs/memprof.h"
#include "util/logging.h"

namespace betty {

GatConv::GatConv(int64_t in_dim, int64_t out_dim, int64_t num_heads,
                 Rng& rng)
    : in_dim_(in_dim), out_dim_(out_dim)
{
    BETTY_ASSERT(num_heads >= 1, "need at least one head");
    heads_.reserve(size_t(num_heads));
    for (int64_t h = 0; h < num_heads; ++h) {
        Head head;
        head.fc = std::make_unique<Linear>(in_dim, out_dim, rng);
        registerChild(*head.fc);
        head.attnDst =
            registerParameter(Tensor::xavier(out_dim, 1, rng));
        head.attnSrc =
            registerParameter(Tensor::xavier(out_dim, 1, rng));
        heads_.push_back(std::move(head));
    }
}

ag::NodePtr
GatConv::forward(const Block& block, const ag::NodePtr& h_src,
                 bool average_heads) const
{
    BETTY_ASSERT(h_src->value.rows() == block.numSrc(),
                 "h_src rows mismatch");

    // The estimator prices the whole attention chain — projections,
    // score chain, messages, head concatenation — as item (6).
    obs::MemCategoryScope mem_scope(obs::MemCategory::Aggregator);

    // Extended edge lists: every destination gets an implicit self
    // edge in front of its sampled in-edges, so attention segments are
    // never empty and each node attends to itself.
    std::vector<int64_t> edge_src, edge_dst, offsets;
    offsets.reserve(size_t(block.numDst()) + 1);
    offsets.push_back(0);
    for (int64_t d = 0; d < block.numDst(); ++d) {
        edge_src.push_back(d); // self (dst locals are the src prefix)
        edge_dst.push_back(d);
        for (int64_t s : block.inEdges(d)) {
            edge_src.push_back(s);
            edge_dst.push_back(d);
        }
        offsets.push_back(int64_t(edge_src.size()));
    }

    std::vector<ag::NodePtr> outputs;
    outputs.reserve(heads_.size());
    for (const Head& head : heads_)
        outputs.push_back(headForward(head, block, h_src, edge_src,
                                      edge_dst, offsets));

    if (outputs.size() == 1)
        return outputs.front();
    if (!average_heads) {
        ag::NodePtr cat = outputs.front();
        for (size_t h = 1; h < outputs.size(); ++h)
            cat = ag::concatCols(cat, outputs[h]);
        return cat;
    }
    ag::NodePtr sum = outputs.front();
    for (size_t h = 1; h < outputs.size(); ++h)
        sum = ag::add(sum, outputs[h]);
    return ag::scale(sum, 1.0f / float(outputs.size()));
}

ag::NodePtr
GatConv::headForward(const Head& head, const Block& block,
                     const ag::NodePtr& h_src,
                     const std::vector<int64_t>& edge_src,
                     const std::vector<int64_t>& edge_dst,
                     const std::vector<int64_t>& offsets) const
{
    (void)block;
    using namespace ag;
    const auto z = head.fc->forward(h_src);           // [S, out]
    const auto el = matmul(z, head.attnDst);          // [S, 1]
    const auto er = matmul(z, head.attnSrc);          // [S, 1]

    const auto score_dst = gatherRows(el, edge_dst);  // [E, 1]
    const auto score_src = gatherRows(er, edge_src);  // [E, 1]
    const auto scores =
        leakyRelu(add(score_dst, score_src), 0.2f);   // [E, 1]
    const auto alpha = segmentSoftmax(scores, offsets);

    const auto messages = gatherRows(z, edge_src);    // [E, out]
    const auto weighted = mulColBroadcast(messages, alpha);
    return segmentSum(weighted, offsets);             // [N, out]
}

} // namespace betty
