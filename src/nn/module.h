/**
 * @file
 * Base class for parameterized layers and models.
 */
#ifndef BETTY_NN_MODULE_H
#define BETTY_NN_MODULE_H

#include <vector>

#include "tensor/autograd.h"

namespace betty {

/**
 * A layer/model owning trainable parameters.
 *
 * Parameters are autograd leaf nodes with requiresGrad set; children
 * register theirs into the owning module so parameters() spans the
 * whole tree (what the optimizer consumes).
 */
class Module
{
  public:
    virtual ~Module() = default;

    /** All trainable parameters of this module and its children. */
    const std::vector<ag::NodePtr>& parameters() const { return params_; }

    /** Total number of trainable scalars. */
    int64_t
    parameterCount() const
    {
        int64_t total = 0;
        for (const auto& p : params_)
            total += p->value.numel();
        return total;
    }

    /** Reset all parameter gradients to zero (kept allocated). */
    void
    zeroGrad()
    {
        for (const auto& p : params_)
            if (!p->grad.empty())
                p->grad.setZero();
    }

  protected:
    /** Wrap @p value as a trainable parameter and register it. */
    ag::NodePtr
    registerParameter(Tensor value)
    {
        auto node = ag::parameter(std::move(value));
        params_.push_back(node);
        return node;
    }

    /** Adopt a child's parameters into this module's list. */
    void
    registerChild(const Module& child)
    {
        params_.insert(params_.end(), child.params_.begin(),
                       child.params_.end());
    }

  private:
    std::vector<ag::NodePtr> params_;
};

} // namespace betty

#endif // BETTY_NN_MODULE_H
