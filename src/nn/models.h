/**
 * @file
 * The two evaluation models of the paper: GraphSAGE and GAT.
 */
#ifndef BETTY_NN_MODELS_H
#define BETTY_NN_MODELS_H

#include <memory>
#include <vector>

#include "memory/estimator.h"
#include "nn/gat_conv.h"
#include "nn/gcn_conv.h"
#include "nn/module.h"
#include "nn/sage_conv.h"
#include "sampling/block.h"

namespace betty {

/**
 * Common interface of trainable GNNs: map a sampled batch plus its
 * input features to output-node logits. The trainer and benches are
 * written against this so every experiment runs both models.
 */
class GnnModel : public Module
{
  public:
    /** Logits for the batch's output nodes. */
    virtual ag::NodePtr forward(
        const MultiLayerBatch& batch,
        const ag::NodePtr& input_features) const = 0;

    /** Memory-estimation description of the model (Table 3). */
    virtual GnnSpec memorySpec() const = 0;
};

/** Configuration of a GraphSAGE stack. */
struct SageConfig
{
    int64_t inputDim = 0;
    int64_t hiddenDim = 256;
    int64_t numClasses = 0;
    int64_t numLayers = 2;
    AggregatorKind aggregator = AggregatorKind::Mean;
    uint64_t seed = 3;
};

/** Multi-layer GraphSAGE; one SageConv per sampled block. */
class GraphSage : public GnnModel
{
  public:
    explicit GraphSage(const SageConfig& config);

    /**
     * @param input_features Features of the batch's input nodes,
     * [batch.inputNodes().size(), inputDim].
     * @return Logits for the batch's output nodes.
     */
    ag::NodePtr forward(const MultiLayerBatch& batch,
                        const ag::NodePtr& input_features) const override;

    const SageConfig& config() const { return config_; }

    GnnSpec memorySpec() const override;

  private:
    SageConfig config_;
    std::vector<std::unique_ptr<SageConv>> layers_;
};

/** Configuration of a GAT stack. */
struct GatConfig
{
    int64_t inputDim = 0;
    int64_t hiddenDim = 64; ///< per-head hidden width
    int64_t numClasses = 0;
    int64_t numLayers = 2;
    int64_t numHeads = 4; ///< heads on hidden layers; output uses 1
    uint64_t seed = 3;
};

/** Multi-layer GAT; hidden layers concatenate heads, output averages. */
class Gat : public GnnModel
{
  public:
    explicit Gat(const GatConfig& config);

    ag::NodePtr forward(const MultiLayerBatch& batch,
                        const ag::NodePtr& input_features) const override;

    const GatConfig& config() const { return config_; }

    GnnSpec memorySpec() const override;

  private:
    GatConfig config_;
    std::vector<std::unique_ptr<GatConv>> layers_;
};

/** Configuration shared by the GCN and GIN stacks. */
struct StackConfig
{
    int64_t inputDim = 0;
    int64_t hiddenDim = 64;
    int64_t numClasses = 0;
    int64_t numLayers = 2;
    uint64_t seed = 3;
};

/** Multi-layer GCN (right-normalized conv with self edges). */
class Gcn : public GnnModel
{
  public:
    explicit Gcn(const StackConfig& config);

    ag::NodePtr forward(const MultiLayerBatch& batch,
                        const ag::NodePtr& input_features)
        const override;

    const StackConfig& config() const { return config_; }

    GnnSpec memorySpec() const override;

  private:
    StackConfig config_;
    std::vector<std::unique_ptr<GcnConv>> layers_;
};

/** Multi-layer GIN (sum aggregation + learnable-eps MLP update). */
class Gin : public GnnModel
{
  public:
    explicit Gin(const StackConfig& config);

    ag::NodePtr forward(const MultiLayerBatch& batch,
                        const ag::NodePtr& input_features)
        const override;

    const StackConfig& config() const { return config_; }

    GnnSpec memorySpec() const override;

  private:
    StackConfig config_;
    std::vector<std::unique_ptr<GinConv>> layers_;
};

} // namespace betty

#endif // BETTY_NN_MODELS_H
