/**
 * @file
 * GCN and GIN convolution layers over bipartite blocks.
 *
 * These round out the model zoo beyond the paper's GraphSAGE/GAT
 * evaluation (its introduction motivates Betty with the broader GNN
 * family — GCN-style encoders and GIN's "How powerful are GNNs"):
 *
 *   GCN (Kipf & Welling):  h'_v = W · mean-normalized aggregate; we
 *   use the bipartite-friendly right-normalized form
 *   h'_v = W ( (Σ_{u->v} h_u + h_v) / (deg(v) + 1) ) + b,
 *   i.e. self edge included before averaging.
 *
 *   GIN (Xu et al.):  h'_v = MLP( (1 + eps) h_v + Σ_{u->v} h_u )
 *   with a 2-layer MLP and a learnable eps.
 *
 * Both run on the fused gather+reduce kernel, so like the Mean
 * aggregator they cost O(N·d) intermediate memory, not O(E·d).
 */
#ifndef BETTY_NN_GCN_CONV_H
#define BETTY_NN_GCN_CONV_H

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"
#include "sampling/block.h"

namespace betty {

/** Graph convolution layer (right-normalized, self edge included). */
class GcnConv : public Module
{
  public:
    GcnConv(int64_t in_dim, int64_t out_dim, Rng& rng);

    /** @param h_src Source representations, [numSrc, inDim]. */
    ag::NodePtr forward(const Block& block,
                        const ag::NodePtr& h_src) const;

    int64_t inDim() const { return fc_->inDim(); }
    int64_t outDim() const { return fc_->outDim(); }

  private:
    std::unique_ptr<Linear> fc_;
};

/** Graph isomorphism layer: sum aggregation + (1+eps) self + MLP. */
class GinConv : public Module
{
  public:
    GinConv(int64_t in_dim, int64_t out_dim, Rng& rng);

    ag::NodePtr forward(const Block& block,
                        const ag::NodePtr& h_src) const;

    int64_t inDim() const { return fc1_->inDim(); }
    int64_t outDim() const { return fc2_->outDim(); }

    /** Current value of the learnable epsilon. */
    float epsilon() const { return eps_->value.at(0, 0); }

  private:
    ag::NodePtr eps_; // 1x1 learnable
    std::unique_ptr<Linear> fc1_;
    std::unique_ptr<Linear> fc2_;
};

} // namespace betty

#endif // BETTY_NN_GCN_CONV_H
