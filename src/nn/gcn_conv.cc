#include "nn/gcn_conv.h"

#include <numeric>

#include "obs/memprof.h"
#include "util/logging.h"

namespace betty {

namespace {

/** Local indices 0..numDst-1 (destinations are the source prefix). */
std::vector<int64_t>
selfIndices(const Block& block)
{
    std::vector<int64_t> idx(static_cast<size_t>(block.numDst()));
    std::iota(idx.begin(), idx.end(), 0);
    return idx;
}

} // namespace

GcnConv::GcnConv(int64_t in_dim, int64_t out_dim, Rng& rng)
    : fc_(std::make_unique<Linear>(in_dim, out_dim, rng))
{
    registerChild(*fc_);
}

ag::NodePtr
GcnConv::forward(const Block& block, const ag::NodePtr& h_src) const
{
    BETTY_ASSERT(h_src->value.rows() == block.numSrc(),
                 "h_src rows mismatch");
    using namespace ag;
    // The aggregation chain through the normalization is Table 3
    // item (6); the fc projection is the hidden chain.
    NodePtr normalized;
    {
        obs::MemCategoryScope mem_scope(obs::MemCategory::Aggregator);
        const auto summed = gatherSegmentReduce(
            h_src, block.edgeSources(), block.edgeOffsets(),
            /*mean=*/false);
        const auto self = gatherRows(h_src, selfIndices(block));

        // (sum + self) / (deg + 1): right-normalization with self edge.
        Tensor inv_deg(block.numDst(), 1);
        for (int64_t d = 0; d < block.numDst(); ++d)
            inv_deg.at(d, 0) = 1.0f / float(block.inDegree(d) + 1);
        normalized = mulColBroadcast(add(summed, self),
                                     constant(std::move(inv_deg)));
    }
    return fc_->forward(normalized);
}

GinConv::GinConv(int64_t in_dim, int64_t out_dim, Rng& rng)
    : eps_(registerParameter(Tensor::zeros(1, 1))),
      fc1_(std::make_unique<Linear>(in_dim, out_dim, rng)),
      fc2_(std::make_unique<Linear>(out_dim, out_dim, rng))
{
    registerChild(*fc1_);
    registerChild(*fc2_);
}

ag::NodePtr
GinConv::forward(const Block& block, const ag::NodePtr& h_src) const
{
    BETTY_ASSERT(h_src->value.rows() == block.numSrc(),
                 "h_src rows mismatch");
    using namespace ag;
    // Everything through the first MLP layer is priced as item (6)
    // by the estimator; fc2_'s projection is the hidden chain.
    NodePtr transformed;
    {
        obs::MemCategoryScope mem_scope(obs::MemCategory::Aggregator);
        const auto summed = gatherSegmentReduce(
            h_src, block.edgeSources(), block.edgeOffsets(),
            /*mean=*/false);
        const auto self = gatherRows(h_src, selfIndices(block));

        // (1 + eps) * self: broadcast the scalar through a [N,1]
        // column so the gradient flows back into eps.
        const auto ones =
            constant(Tensor::full(block.numDst(), 1, 1.0f));
        const auto one_plus_eps = add(matmul(ones, eps_), ones);
        const auto scaled_self = mulColBroadcast(self, one_plus_eps);

        const auto combined = add(scaled_self, summed);
        transformed = relu(fc1_->forward(combined));
    }
    return fc2_->forward(transformed);
}

} // namespace betty
