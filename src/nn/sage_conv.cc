#include "nn/sage_conv.h"

#include <map>
#include <numeric>

#include "obs/memprof.h"
#include "util/logging.h"

namespace betty {

SageConv::SageConv(int64_t in_dim, int64_t out_dim,
                   AggregatorKind aggregator, Rng& rng)
    : in_dim_(in_dim), aggregator_(aggregator)
{
    if (aggregator_ == AggregatorKind::Pool) {
        pool_fc_ = std::make_unique<Linear>(in_dim, in_dim, rng);
        registerChild(*pool_fc_);
    } else if (aggregator_ == AggregatorKind::Lstm) {
        lstm_ = std::make_unique<LstmCell>(in_dim, in_dim, rng);
        registerChild(*lstm_);
    }
    out_ = std::make_unique<Linear>(2 * in_dim, out_dim, rng);
    registerChild(*out_);
}

ag::NodePtr
SageConv::forward(const Block& block, const ag::NodePtr& h_src) const
{
    BETTY_ASSERT(h_src->value.rows() == block.numSrc(),
                 "h_src rows ", h_src->value.rows(),
                 " != block sources ", block.numSrc());
    BETTY_ASSERT(h_src->value.cols() == in_dim_,
                 "h_src width mismatch");

    // The self gather and the concat are priced as aggregator
    // intermediates by the estimator (memory/estimator.cc layerCost),
    // so they carry the same provenance tag; the output projection is
    // the hidden chain (the ambient category of the caller).
    ag::NodePtr combined;
    {
        obs::MemCategoryScope mem_scope(obs::MemCategory::Aggregator);
        // Self representations: destinations are the source prefix.
        std::vector<int64_t> self_idx(
            static_cast<size_t>(block.numDst()));
        std::iota(self_idx.begin(), self_idx.end(), 0);
        const auto h_self = ag::gatherRows(h_src, std::move(self_idx));

        const auto h_neigh = aggregate(block, h_src);
        combined = ag::concatCols(h_self, h_neigh);
    }
    return out_->forward(combined);
}

ag::NodePtr
SageConv::aggregate(const Block& block, const ag::NodePtr& h_src) const
{
    // Table 3 item (6): everything the aggregator materializes,
    // including the per-timestep LSTM chain of Eq. 5.
    obs::MemCategoryScope mem_scope(obs::MemCategory::Aggregator);
    switch (aggregator_) {
      case AggregatorKind::Mean:
        // Fused kernel (as in DGL): no [E, d] materialization.
        return ag::gatherSegmentReduce(h_src, block.edgeSources(),
                                       block.edgeOffsets(),
                                       /*mean=*/true);
      case AggregatorKind::Sum:
        return ag::gatherSegmentReduce(h_src, block.edgeSources(),
                                       block.edgeOffsets(),
                                       /*mean=*/false);
      case AggregatorKind::Pool: {
        const auto gathered =
            ag::gatherRows(h_src, block.edgeSources());
        const auto transformed =
            ag::relu(pool_fc_->forward(gathered));
        // Max over the transformed neighborhood, then project back to
        // in_dim via... pool keeps in_dim (pool_fc_ is in->in).
        return ag::segmentMax(transformed, block.edgeOffsets());
      }
      case AggregatorKind::Lstm:
        return lstmAggregate(block, h_src);
    }
    panic("unreachable aggregator kind");
}

ag::NodePtr
SageConv::lstmAggregate(const Block& block,
                        const ag::NodePtr& h_src) const
{
    // In-degree bucketing: group destinations by exact in-degree so
    // every group advances the recurrence with dense [B, d] steps.
    std::map<int64_t, std::vector<int64_t>> groups;
    for (int64_t d = 0; d < block.numDst(); ++d)
        groups[block.inDegree(d)].push_back(d);

    std::vector<ag::NodePtr> parts;
    std::vector<int64_t> part_dst_order;
    parts.reserve(groups.size());
    part_dst_order.reserve(size_t(block.numDst()));

    for (const auto& [degree, dsts] : groups) {
        const int64_t batch = int64_t(dsts.size());
        if (degree == 0) {
            // Nothing to aggregate: contribute zeros.
            parts.push_back(
                ag::constant(Tensor::zeros(batch, in_dim_)));
        } else {
            LstmCell::State state = lstm_->initialState(batch);
            for (int64_t t = 0; t < degree; ++t) {
                std::vector<int64_t> step_idx(static_cast<size_t>(batch));
                for (int64_t j = 0; j < batch; ++j)
                    step_idx[size_t(j)] =
                        block.inEdges(dsts[size_t(j)])[size_t(t)];
                const auto x_t =
                    ag::gatherRows(h_src, std::move(step_idx));
                state = lstm_->forward(x_t, state);
            }
            parts.push_back(state.h);
        }
        part_dst_order.insert(part_dst_order.end(), dsts.begin(),
                              dsts.end());
    }

    const auto stacked = ag::concatRows(parts);

    // stacked rows follow bucket order; permute back to dst order.
    std::vector<int64_t> perm(size_t(block.numDst()));
    for (size_t row = 0; row < part_dst_order.size(); ++row)
        perm[size_t(part_dst_order[row])] = int64_t(row);
    return ag::gatherRows(stacked, std::move(perm));
}

int64_t
SageConv::aggregatorParameterCount() const
{
    if (pool_fc_)
        return pool_fc_->parameterCount();
    if (lstm_)
        return lstm_->parameterCount();
    return 0;
}

} // namespace betty
