#include "nn/optim.h"

#include <algorithm>
#include <cmath>

#include "kernels/arena.h"
#include "obs/memprof.h"

namespace betty {

void
Sgd::step()
{
    for (const auto& p : params_) {
        if (p->grad.empty())
            continue;
        if (weight_decay_ != 0.0f)
            p->grad.addScaledInPlace(p->value, weight_decay_);
        p->value.addScaledInPlace(p->grad, -lr_);
    }
}

Adam::Adam(std::vector<ag::NodePtr> params, float lr, float beta1,
           float beta2, float eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1),
      beta2_(beta2), eps_(eps)
{
    obs::MemCategoryScope mem_scope(obs::MemCategory::OptimizerState);
    // Moment tensors live for the whole run — never in a micro-batch
    // arena, even when an optimizer is (re)built mid-training by the
    // recovery paths.
    kernels::ArenaSuspend off_arena;
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const auto& p : params_) {
        m_.push_back(Tensor::zeros(p->value.rows(), p->value.cols()));
        v_.push_back(Tensor::zeros(p->value.rows(), p->value.cols()));
    }
}

bool
Adam::restoreState(int64_t step_count, std::vector<Tensor> m,
                   std::vector<Tensor> v)
{
    if (step_count < 0 || m.size() != params_.size() ||
        v.size() != params_.size())
        return false;
    for (size_t i = 0; i < params_.size(); ++i)
        if (!m[i].sameShape(params_[i]->value) ||
            !v[i].sameShape(params_[i]->value))
            return false;
    // Copy element-wise into the existing (device-charged) moment
    // tensors instead of adopting the incoming ones, so the device
    // accounting of the optimizer states stays exactly as the
    // constructor charged it.
    for (size_t i = 0; i < params_.size(); ++i) {
        std::copy_n(m[i].data(), m[i].numel(), m_[i].data());
        std::copy_n(v[i].data(), v[i].numel(), v_[i].data());
    }
    t_ = step_count;
    return true;
}

void
Adam::step()
{
    ++t_;
    const float bias1 = 1.0f - std::pow(beta1_, float(t_));
    const float bias2 = 1.0f - std::pow(beta2_, float(t_));
    for (size_t i = 0; i < params_.size(); ++i) {
        auto& p = params_[i];
        if (p->grad.empty())
            continue;
        float* value = p->value.data();
        const float* grad = p->grad.data();
        float* m = m_[i].data();
        float* v = v_[i].data();
        const int64_t n = p->value.numel();
        for (int64_t j = 0; j < n; ++j) {
            m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad[j];
            v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad[j] * grad[j];
            const float m_hat = m[j] / bias1;
            const float v_hat = v[j] / bias2;
            value[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
        }
    }
}

} // namespace betty
