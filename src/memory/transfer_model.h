/**
 * @file
 * Host-to-device transfer cost model.
 *
 * The paper reports "data movement time" (Figure 14) for streaming
 * micro-batch features over PCIe. Without a physical bus we charge an
 * analytical cost per transfer — latency plus bytes / bandwidth — with
 * defaults matching an effective PCIe 3.0 x16 link. Redundant input
 * nodes cost transfer time in exactly the proportion the paper
 * describes, so the partitioner comparisons keep their shape.
 */
#ifndef BETTY_MEMORY_TRANSFER_MODEL_H
#define BETTY_MEMORY_TRANSFER_MODEL_H

#include <cstdint>

#include "obs/metrics.h"

namespace betty {

/** Accumulates simulated host<->device transfer time. */
class TransferModel
{
  public:
    /**
     * @param bandwidth_bytes_per_sec Effective link bandwidth.
     * @param latency_sec Fixed per-transfer setup cost.
     */
    explicit TransferModel(double bandwidth_bytes_per_sec = 12.0e9,
                           double latency_sec = 10.0e-6)
        : bandwidth_(bandwidth_bytes_per_sec), latency_(latency_sec)
    {
    }

    /** Charge one host-to-device copy of @p bytes. */
    void
    transfer(int64_t bytes)
    {
        const double cost =
            latency_ + double(bytes) * slowdown_ / bandwidth_;
        seconds_ += cost;
        lifetime_seconds_ += cost;
        total_bytes_ += bytes;
        ++num_transfers_;
        if (obs::Metrics::enabled()) {
            static obs::Counter& transfer_bytes =
                obs::Metrics::counter("transfer.bytes");
            static obs::Counter& transfer_count =
                obs::Metrics::counter("transfer.count");
            transfer_bytes.add(bytes);
            transfer_count.increment();
        }
    }

    /**
     * Charge one FAILED transfer attempt: the link latency was paid
     * (the setup handshake happened) but no bytes moved — the retry
     * pays the full transfer() cost again. Used by the trainer's
     * retry loop when a transfer fault fires (util/fault.h); kept
     * here so failed attempts price identically everywhere.
     */
    void
    chargeFailedAttempt()
    {
        seconds_ += latency_;
        lifetime_seconds_ += latency_;
        ++failed_attempts_;
        if (obs::Metrics::enabled()) {
            static obs::Counter& failures =
                obs::Metrics::counter("transfer.failed_attempts");
            failures.increment();
        }
    }

    /**
     * Charge @p backoff_sec of retry backoff as simulated link time
     * (the link sits idle while the retry policy waits, so the wait
     * is part of the transfer story). Counted separately so reports
     * can show how much of the transfer time was backoff.
     */
    void
    chargeBackoff(double backoff_sec)
    {
        seconds_ += backoff_sec;
        lifetime_seconds_ += backoff_sec;
        backoff_seconds_ += backoff_sec;
    }

    /**
     * Degrade the link to 1/@p factor of its configured bandwidth
     * (factor >= 1; 1 restores full speed). The device-slow fault
     * uses this — attribution only, so numerics are untouched.
     */
    void
    setSlowdown(double factor)
    {
        slowdown_ = factor < 1.0 ? 1.0 : factor;
    }

    /** Current slowdown factor (1 = healthy). */
    double slowdown() const { return slowdown_; }

    /**
     * Record @p bytes that a transfer did NOT have to move because
     * the feature cache already held the rows. Pure bookkeeping — no
     * time is charged — kept here so every consumer (run report,
     * benches, tests) prices savings identically.
     */
    void
    noteSavedBytes(int64_t bytes)
    {
        saved_bytes_ += bytes;
    }

    double seconds() const { return seconds_; }
    int64_t totalBytes() const { return total_bytes_; }
    int64_t numTransfers() const { return num_transfers_; }

    /** Lifetime count of failed attempts — survives reset(), which
     * only re-arms the per-epoch accumulators. */
    int64_t failedAttempts() const { return failed_attempts_; }

    /** Lifetime bytes the feature cache kept off the link — like
     * failedAttempts(), survives reset() so run-report deltas are
     * not skewed by the per-epoch re-arm. */
    int64_t savedBytes() const { return saved_bytes_; }

    /** Lifetime retry-backoff seconds charged — survives reset()
     * like the other lifetime counters. Always <= the total time
     * this link has ever accumulated. */
    double backoffSeconds() const { return backoff_seconds_; }

    /** Lifetime simulated seconds across all transfers, failed
     * attempts, and backoff — unlike seconds(), survives reset().
     * The denominator for the backoff-share invariant
     * (backoffSeconds() <= lifetimeSeconds(), gated by
     * `betty_report check`). */
    double lifetimeSeconds() const { return lifetime_seconds_; }

    void
    reset()
    {
        seconds_ = 0.0;
        total_bytes_ = 0;
        num_transfers_ = 0;
    }

  private:
    double bandwidth_;
    double latency_;
    double slowdown_ = 1.0;
    double seconds_ = 0.0;
    double lifetime_seconds_ = 0.0;
    double backoff_seconds_ = 0.0;
    int64_t total_bytes_ = 0;
    int64_t num_transfers_ = 0;
    int64_t failed_attempts_ = 0;
    int64_t saved_bytes_ = 0;
};

} // namespace betty

#endif // BETTY_MEMORY_TRANSFER_MODEL_H
