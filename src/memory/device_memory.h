/**
 * @file
 * Simulated accelerator memory.
 *
 * Substitute for the paper's 24 GB RTX6000 (no GPU in this
 * environment): a byte-accurate arena that observes every Tensor
 * allocation made while it is installed, tracks live and peak usage,
 * and records out-of-memory events when live usage exceeds the
 * configured capacity. Betty's claims are about *which bytes are
 * resident when* — that is exactly what this model measures — so OOM
 * behaviour, peak-memory comparisons and the memory-aware planner all
 * run unchanged against it.
 *
 * OOM is recorded, not thrown: a bench can finish the step and report
 * "OOM" the way Figure 2 does, and the planner can probe budgets
 * without crashing.
 */
#ifndef BETTY_MEMORY_DEVICE_MEMORY_H
#define BETTY_MEMORY_DEVICE_MEMORY_H

#include <cstdint>

#include "obs/metrics.h"
#include "tensor/tensor.h"

namespace betty {

namespace detail {

/** Metric charges for alloc/free/OOM (call only when enabled). */
inline void
chargeDeviceAlloc(int64_t bytes, int64_t live)
{
    static obs::Counter& alloc_count =
        obs::Metrics::counter("device.alloc_count");
    static obs::Counter& alloc_bytes =
        obs::Metrics::counter("device.alloc_bytes");
    static obs::Gauge& peak =
        obs::Metrics::gauge("device.peak_bytes");
    alloc_count.increment();
    alloc_bytes.add(bytes);
    peak.max(live);
}

inline void
chargeDeviceFree(int64_t bytes)
{
    static obs::Counter& free_count =
        obs::Metrics::counter("device.free_count");
    static obs::Counter& free_bytes =
        obs::Metrics::counter("device.free_bytes");
    free_count.increment();
    free_bytes.add(bytes);
}

inline void
chargeDeviceOom()
{
    static obs::Counter& oom_events =
        obs::Metrics::counter("device.oom_events");
    oom_events.increment();
}

} // namespace detail

/** Byte-accurate device-memory tracker with a capacity limit. */
class DeviceMemoryModel : public AllocationObserver
{
  public:
    /** @param capacity_bytes 0 means "unlimited" (tracking only). */
    explicit DeviceMemoryModel(int64_t capacity_bytes = 0)
        : capacity_(capacity_bytes)
    {
    }

    void
    onAlloc(int64_t bytes) override
    {
        live_ += bytes;
        if (live_ > peak_)
            peak_ = live_;
        if (live_ > window_peak_)
            window_peak_ = live_;
        if (capacity_ > 0 && live_ > capacity_) {
            if (!oom_ && obs::Metrics::enabled())
                detail::chargeDeviceOom();
            oom_ = true;
            if (live_ - capacity_ > worst_overshoot_)
                worst_overshoot_ = live_ - capacity_;
        }
        if (obs::Metrics::enabled())
            detail::chargeDeviceAlloc(bytes, live_);
    }

    void
    onFree(int64_t bytes) override
    {
        live_ -= bytes;
        if (obs::Metrics::enabled())
            detail::chargeDeviceFree(bytes);
    }

    int64_t capacity() const { return capacity_; }
    int64_t liveBytes() const { return live_; }
    int64_t peakBytes() const { return peak_; }

    /** True if live usage ever exceeded capacity since the last reset. */
    bool oomOccurred() const { return oom_; }

    /** Largest number of bytes by which capacity was exceeded. */
    int64_t worstOvershoot() const { return worst_overshoot_; }

    /** Clear peak/OOM records; live usage is whatever is still resident. */
    void
    resetPeak()
    {
        peak_ = live_;
        window_peak_ = live_;
        oom_ = capacity_ > 0 && live_ > capacity_;
        worst_overshoot_ = oom_ ? live_ - capacity_ : 0;
    }

    /**
     * Start a measurement window at the current live level. The
     * window peak answers "what did THIS micro-batch reach" while
     * peakBytes() keeps the epoch-wide maximum — the trainer uses it
     * to measure per-micro-batch actual peaks for estimator-residual
     * telemetry (obs/residual.h) without disturbing epoch stats.
     */
    void resetWindow() { window_peak_ = live_; }

    /** Largest live bytes since the last resetWindow()/resetPeak(). */
    int64_t windowPeakBytes() const { return window_peak_; }

    /**
     * RAII installer: tensor allocations inside the scope are routed to
     * @p model; the previous observer is restored on destruction.
     */
    class Scope
    {
      public:
        explicit Scope(DeviceMemoryModel& model)
            : previous_(setAllocationObserver(&model))
        {
        }

        ~Scope() { setAllocationObserver(previous_); }

        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

      private:
        AllocationObserver* previous_;
    };

  private:
    int64_t capacity_;
    int64_t live_ = 0;
    int64_t peak_ = 0;
    int64_t window_peak_ = 0;
    int64_t worst_overshoot_ = 0;
    bool oom_ = false;
};

/** Convenience: gibibytes to bytes for capacity configuration. */
constexpr int64_t
gib(double g)
{
    return int64_t(g * 1024.0 * 1024.0 * 1024.0);
}

} // namespace betty

#endif // BETTY_MEMORY_DEVICE_MEMORY_H
