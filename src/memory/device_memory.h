/**
 * @file
 * Simulated accelerator memory.
 *
 * Substitute for the paper's 24 GB RTX6000 (no GPU in this
 * environment): a byte-accurate arena that observes every Tensor
 * allocation made while it is installed, tracks live and peak usage,
 * and records out-of-memory events when live usage exceeds the
 * configured capacity. Betty's claims are about *which bytes are
 * resident when* — that is exactly what this model measures — so OOM
 * behaviour, peak-memory comparisons and the memory-aware planner all
 * run unchanged against it.
 *
 * OOM is recorded, not thrown: a bench can finish the step and report
 * "OOM" the way Figure 2 does, and the planner can probe budgets
 * without crashing.
 */
#ifndef BETTY_MEMORY_DEVICE_MEMORY_H
#define BETTY_MEMORY_DEVICE_MEMORY_H

#include <array>
#include <cstdint>
#include <vector>

#include "obs/memprof.h"
#include "obs/metrics.h"
#include "obs/perf/flight_recorder.h"
#include "obs/trace.h"
#include "tensor/tensor.h"
#include "util/logging.h"

namespace betty {

namespace detail {

/** Metric charges for alloc/free/OOM (call only when enabled). */
inline void
chargeDeviceAlloc(int64_t bytes, int64_t live)
{
    static obs::Counter& alloc_count =
        obs::Metrics::counter("device.alloc_count");
    static obs::Counter& alloc_bytes =
        obs::Metrics::counter("device.alloc_bytes");
    static obs::Gauge& peak =
        obs::Metrics::gauge("device.peak_bytes");
    alloc_count.increment();
    alloc_bytes.add(bytes);
    peak.max(live);
}

inline void
chargeDeviceFree(int64_t bytes)
{
    static obs::Counter& free_count =
        obs::Metrics::counter("device.free_count");
    static obs::Counter& free_bytes =
        obs::Metrics::counter("device.free_bytes");
    free_count.increment();
    free_bytes.add(bytes);
}

inline void
chargeDeviceOom()
{
    static obs::Counter& oom_events =
        obs::Metrics::counter("device.oom_events");
    oom_events.increment();
}

} // namespace detail

/** Byte-accurate device-memory tracker with a capacity limit. */
class DeviceMemoryModel : public AllocationObserver
{
  public:
    /** @param capacity_bytes 0 means "unlimited" (tracking only). */
    explicit DeviceMemoryModel(int64_t capacity_bytes = 0)
        : capacity_(capacity_bytes)
    {
    }

    using AllocationObserver::onAlloc;
    using AllocationObserver::onFree;

    void
    onAlloc(int64_t bytes, obs::MemCategory category) override
    {
        const size_t cat = size_t(category);
        live_ += bytes;
        cat_live_[cat] += bytes;
        if (live_ > peak_)
            peak_ = live_;
        if (live_ > window_peak_)
            window_peak_ = live_;
        if (cat_live_[cat] > cat_peak_[cat])
            cat_peak_[cat] = cat_live_[cat];
        if (cat_live_[cat] > cat_window_peak_[cat])
            cat_window_peak_[cat] = cat_live_[cat];
        if (capacity_ > 0 && live_ > capacity_) {
            // One device.oom_events count per EPISODE: a contiguous
            // stretch of over-capacity residency. The episode ends
            // when live drops back under capacity (see onFree), not
            // when oom_ is reset — oom_ stays latched for
            // oomOccurred() until resetPeak().
            if (!in_oom_episode_) {
                ++oom_episodes_;
                if (obs::Metrics::enabled())
                    detail::chargeDeviceOom();
                obs::FlightRecorder::record(obs::FrCategory::Oom,
                                            "oom/episode", live_,
                                            capacity_);
            }
            in_oom_episode_ = true;
            oom_ = true;
            if (live_ - capacity_ > worst_overshoot_)
                worst_overshoot_ = live_ - capacity_;
        }
        if (obs::Metrics::enabled())
            detail::chargeDeviceAlloc(bytes, live_);
        maybeSample();
    }

    void
    onFree(int64_t bytes, obs::MemCategory category) override
    {
        const size_t cat = size_t(category);
        // Clamp: a model installed mid-lifetime can observe frees for
        // storage it never saw allocated. Debiting those would drive
        // live_ below zero and poison every later peak comparison, so
        // cap the debit at what this model actually has live in the
        // category (cat_live_[cat] <= live_ always, since live_ is
        // the sum over categories).
        int64_t freed = bytes;
        if (freed > cat_live_[cat]) {
            freed = cat_live_[cat];
            BETTY_WARN_ONCE("DeviceMemoryModel: free of ", bytes,
                            " bytes (", obs::memCategoryName(category),
                            ") exceeds tracked live bytes; clamping — "
                            "was the observer installed mid-lifetime?");
        }
        cat_live_[cat] -= freed;
        live_ -= freed;
        if (in_oom_episode_ && live_ <= capacity_)
            in_oom_episode_ = false;
        if (obs::Metrics::enabled())
            detail::chargeDeviceFree(freed);
        maybeSample();
    }

    int64_t capacity() const { return capacity_; }
    int64_t liveBytes() const { return live_; }
    int64_t peakBytes() const { return peak_; }

    /**
     * Change the capacity mid-run (a co-tenant claiming or releasing
     * device memory — the runtime condition the resilient trainer
     * recovers from). Episode accounting follows the new limit: if
     * current live usage violates it, that is a NEW over-capacity
     * episode starting now; if a shrink-induced episode ends because
     * capacity grew back, the episode closes.
     */
    void
    setCapacity(int64_t capacity_bytes)
    {
        capacity_ = capacity_bytes;
        const bool over = capacity_ > 0 && live_ > capacity_;
        if (over && !in_oom_episode_) {
            in_oom_episode_ = true;
            oom_ = true;
            if (live_ - capacity_ > worst_overshoot_)
                worst_overshoot_ = live_ - capacity_;
            ++oom_episodes_;
            if (obs::Metrics::enabled())
                detail::chargeDeviceOom();
            obs::FlightRecorder::record(obs::FrCategory::Oom,
                                        "oom/episode", live_,
                                        capacity_);
        } else if (!over) {
            in_oom_episode_ = false;
        }
    }

    /**
     * Over-capacity episodes since construction: one count per
     * contiguous stretch of live > capacity. Unlike the
     * device.oom_events metric this counts even when metrics are
     * disabled, so EpochStats::oomEvents is always meaningful.
     */
    int64_t oomEpisodeCount() const { return oom_episodes_; }

    /** @name Per-category (Table 3 provenance) accessors */
    /** @{ */
    int64_t liveBytes(obs::MemCategory category) const
    {
        return cat_live_[size_t(category)];
    }

    int64_t peakBytes(obs::MemCategory category) const
    {
        return cat_peak_[size_t(category)];
    }

    int64_t windowPeakBytes(obs::MemCategory category) const
    {
        return cat_window_peak_[size_t(category)];
    }
    /** @} */

    /** True if live usage ever exceeded capacity since the last reset. */
    bool oomOccurred() const { return oom_; }

    /** Largest number of bytes by which capacity was exceeded. */
    int64_t worstOvershoot() const { return worst_overshoot_; }

    /** Clear peak/OOM records; live usage is whatever is still resident. */
    void
    resetPeak()
    {
        peak_ = live_;
        window_peak_ = live_;
        cat_peak_ = cat_live_;
        cat_window_peak_ = cat_live_;
        oom_ = capacity_ > 0 && live_ > capacity_;
        worst_overshoot_ = oom_ ? live_ - capacity_ : 0;
        // If still over capacity this is the SAME ongoing episode, so
        // in_oom_episode_ (already true) must survive the reset and
        // suppress a duplicate device.oom_events count.
    }

    /**
     * Start a measurement window at the current live level. The
     * window peak answers "what did THIS micro-batch reach" while
     * peakBytes() keeps the epoch-wide maximum — the trainer uses it
     * to measure per-micro-batch actual peaks for estimator-residual
     * telemetry (obs/residual.h) without disturbing epoch stats.
     */
    void
    resetWindow()
    {
        window_peak_ = live_;
        cat_window_peak_ = cat_live_;
    }

    /** Largest live bytes since the last resetWindow()/resetPeak(). */
    int64_t windowPeakBytes() const { return window_peak_; }

    /**
     * The sampled per-category live-bytes timeline collected while
     * tracing or metrics were enabled. Event-stride sampled: when the
     * buffer fills, every other retained sample is dropped and the
     * stride doubles, so long runs keep bounded, evenly-thinned
     * coverage.
     */
    const std::vector<obs::MemTimelineSample>& timeline() const
    {
        return timeline_;
    }

    /**
     * RAII installer: tensor allocations inside the scope are routed to
     * @p model; the previous observer is restored on destruction.
     */
    class Scope
    {
      public:
        explicit Scope(DeviceMemoryModel& model)
            : previous_(setAllocationObserver(&model))
        {
        }

        ~Scope() { setAllocationObserver(previous_); }

        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

      private:
        AllocationObserver* previous_;
    };

  private:
    /**
     * Record a timeline sample every sample_stride_-th allocation
     * event while collection is on. Also mirrors the sample into the
     * trace as a "device/memory" counter event, which Perfetto draws
     * as stacked per-category bands.
     */
    void
    maybeSample()
    {
        const bool tracing = obs::Trace::enabled();
        if (!tracing && !obs::Metrics::enabled())
            return;
        if (++events_since_sample_ < sample_stride_)
            return;
        events_since_sample_ = 0;

        if (timeline_.size() >= kMaxTimelineSamples) {
            // Thin: keep every other sample, double the stride.
            for (size_t i = 1; 2 * i < timeline_.size(); ++i)
                timeline_[i] = timeline_[2 * i];
            timeline_.resize((timeline_.size() + 1) / 2);
            sample_stride_ *= 2;
        }

        obs::MemTimelineSample sample;
        sample.tsUs = obs::Trace::nowUs();
        sample.live = cat_live_;
        sample.totalLive = live_;
        timeline_.push_back(sample);

        if (tracing) {
            std::vector<std::pair<const char*, int64_t>> values;
            values.reserve(obs::kMemCategoryCount);
            for (size_t c = 0; c < obs::kMemCategoryCount; ++c)
                values.emplace_back(
                    obs::memCategoryName(obs::MemCategory(c)),
                    cat_live_[c]);
            obs::Trace::recordCounter("device/memory",
                                      std::move(values));
        }
    }

    static constexpr size_t kMaxTimelineSamples = 4096;

    int64_t capacity_;
    int64_t live_ = 0;
    int64_t peak_ = 0;
    int64_t window_peak_ = 0;
    int64_t worst_overshoot_ = 0;
    bool oom_ = false;
    /** Inside a contiguous over-capacity stretch right now. */
    bool in_oom_episode_ = false;
    /** Lifetime count of over-capacity episodes (metrics-independent). */
    int64_t oom_episodes_ = 0;
    std::array<int64_t, obs::kMemCategoryCount> cat_live_{};
    std::array<int64_t, obs::kMemCategoryCount> cat_peak_{};
    std::array<int64_t, obs::kMemCategoryCount> cat_window_peak_{};
    std::vector<obs::MemTimelineSample> timeline_;
    int64_t events_since_sample_ = 0;
    int64_t sample_stride_ = 1;
};

/** Convenience: gibibytes to bytes for capacity configuration. */
constexpr int64_t
gib(double g)
{
    return int64_t(g * 1024.0 * 1024.0 * 1024.0);
}

} // namespace betty

#endif // BETTY_MEMORY_DEVICE_MEMORY_H
