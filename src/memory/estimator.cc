#include "memory/estimator.h"

#include <algorithm>

#include "util/logging.h"

namespace betty {

namespace {

constexpr int64_t kFloat = 4;   // bytes per float32 scalar
constexpr int64_t kLabel = 4;   // bytes per label
// Node-ID bytes for item (4) live in MultiLayerBatch::structureBytes().

/** Per-layer forward/backward byte costs (see the derivations below). */
struct LayerCost
{
    int64_t hidden = 0;     // item (5): layer output chain
    int64_t aggregator = 0; // item (6): aggregation intermediates
    int64_t backward = 0;   // gradient buffers of the above
};

/**
 * Price one SAGE layer over one block.
 *
 * The numbers mirror the actual allocation pattern of nn/sage_conv:
 * every autograd op materializes its output, so a layer's forward
 * keeps (gather -> aggregate -> concat with self -> linear -> bias ->
 * activation) alive simultaneously, and backward allocates one
 * gradient buffer per intermediate that needs one. Intermediates fed
 * only by raw input features (layer 0's gathers) never receive
 * gradients, which is why @p input_needs_grad matters.
 */
LayerCost
layerCost(const Block& block, int64_t d, int64_t h, AggregatorKind agg,
          bool last_layer, bool input_needs_grad, int64_t lstm_c,
          int64_t heads)
{
    const int64_t n = block.numDst();
    const int64_t e = block.numEdges();

    LayerCost cost;
    // Output chain: matmul out, +bias, activation (skipped on the last
    // layer where raw logits feed the loss). GAT produces its output
    // inside the attention chain (priced below), so only the
    // inter-layer activation remains.
    const int64_t out_chain =
        agg == AggregatorKind::Attention
            ? (last_layer ? 0 : n * h)
            : (last_layer ? 2 : 3) * n * h;
    cost.hidden = out_chain * kFloat;

    int64_t agg_scalars = 0;   // forward intermediate scalars
    int64_t nograd_scalars = 0; // of which skip gradients at layer 0
    switch (agg) {
      case AggregatorKind::Mean:
      case AggregatorKind::Sum:
        // Fused gather+reduce [N,d] (no [E,d] materialization — the
        // DGL fused-kernel behaviour) + self gather [N,d] + concat
        // [N,2d]. At layer 0 the whole chain is a function of
        // constant features only (the output projection's weight grad
        // needs their VALUES, not their gradients), so none of these
        // receive gradient buffers there.
        agg_scalars = n * d + n * d + n * 2 * d;
        nograd_scalars = agg_scalars;
        break;
      case AggregatorKind::Pool:
        // gather [E,d] + fc chain (matmul/bias/relu, in_dim wide)
        // 3 x [E,d] + segment max [N,d] + self gather [N,d]
        // + concat [N,2d]. The fc chain sits downstream of pool
        // parameters and always gets gradients; only the gathers of
        // raw features skip them at layer 0.
        agg_scalars = 4 * e * d + n * d + n * d + n * 2 * d;
        nograd_scalars = e * d + n * d;
        break;
      case AggregatorKind::Gcn:
        // Fused sum [N,d] + self gather [N,d] + add [N,d] +
        // normalized [N,d] + the 1/(deg+1) column [N,1]; all derived
        // from constant features at layer 0 (the fc weight gradient
        // needs values only).
        agg_scalars = 4 * n * d + n;
        nograd_scalars = agg_scalars;
        break;
      case AggregatorKind::Gin:
        // Fused sum + self + (1+eps)-scaled self + combined add
        // (4 [N,d]) plus three [N,1] columns, plus the first MLP
        // layer's chain (matmul/bias/relu, 3 [N,h]; the second MLP
        // layer is the out_chain). The (1+eps) path sits downstream of
        // the eps parameter, so only the raw sum/self gathers skip
        // gradients at layer 0.
        agg_scalars = 4 * n * d + 3 * n + 3 * n * h;
        nograd_scalars = 2 * n * d;
        break;
      case AggregatorKind::Attention: {
        // GAT layer (nn/gat_conv.cc): per head, z = fc(h_src) [S,hh],
        // el/er [S,1], then over the extended edge list (sampled
        // edges plus one self edge per destination) the score chain
        // (gather dst, gather src, add, leakyrelu, softmax -> 5
        // tensors of [E',1]) and the message chain (gather [E',hh],
        // weighted [E',hh]) into segmentSum [N,hh]. Hidden layers
        // concatenate heads pairwise (~2 N h in staging); everything
        // sits downstream of the fc weights so backward buffers
        // mirror the forward allocations except the raw-feature
        // operands of the very first fc (handled by nograd below via
        // the caller's flag being irrelevant: z itself always needs
        // gradients).
        const int64_t s = block.numSrc();
        const int64_t eprime = e + n;
        const int64_t active_heads = last_layer ? 1 : heads;
        const int64_t hh = h / active_heads;
        const int64_t per_head = s * hh + 2 * s + 5 * eprime +
                                 2 * eprime * hh + n * hh;
        // Output staging (head concatenation plus downstream copy
        // slack): 2 N h, plus the extra pairwise-concat intermediates
        // beyond that for 3+ heads (concat widths 2hh..H*hh sum to
        // (H(H+1)/2 - 1) hh).
        const int64_t pairwise =
            n * hh * (active_heads * (active_heads + 1) / 2 - 1);
        const int64_t staging =
            2 * n * h + std::max<int64_t>(0, pairwise - 2 * n * h);
        agg_scalars = active_heads * per_head + staging;
        nograd_scalars = 0;
        break;
      }
      case AggregatorKind::Lstm: {
        // Eq. 5: per destination of in-degree L, the LSTM runs L
        // timesteps; each (node, step) materializes lstm_c scalars of
        // width d (gates, activations, cell updates, and the x_t
        // gather). Sum of L_i * B_i over the degree histogram is
        // exactly the edge count. Plus the bucket stack, its
        // un-permutation, the self gather and the concat.
        agg_scalars = e * d * lstm_c + n * d + n * d + n * d +
                      n * 2 * d;
        nograd_scalars = e * d + n * d; // x_t gathers + self gather
        break;
      }
    }
    cost.aggregator = agg_scalars * kFloat;

    int64_t grad_scalars = out_chain + agg_scalars;
    if (!input_needs_grad)
        grad_scalars -= nograd_scalars;
    cost.backward = grad_scalars * kFloat;
    return cost;
}

} // namespace

std::string
aggregatorName(AggregatorKind kind)
{
    switch (kind) {
      case AggregatorKind::Mean:
        return "mean";
      case AggregatorKind::Sum:
        return "sum";
      case AggregatorKind::Pool:
        return "pool";
      case AggregatorKind::Lstm:
        return "lstm";
      case AggregatorKind::Attention:
        return "attention";
      case AggregatorKind::Gcn:
        return "gcn";
      case AggregatorKind::Gin:
        return "gin";
    }
    return "?";
}

MemoryEstimate
estimateBatchMemory(const MultiLayerBatch& batch, const GnnSpec& spec)
{
    BETTY_ASSERT(int64_t(batch.blocks.size()) == spec.numLayers,
                 "batch has ", batch.blocks.size(), " blocks but model has ",
                 spec.numLayers, " layers");

    MemoryEstimate est;
    const int64_t params = spec.paramCountGnn + spec.paramCountAgg;
    est.parameters = params * kFloat;                            // (1)
    est.inputFeatures =
        int64_t(batch.inputNodes().size()) * spec.inputDim * kFloat; // (2)
    est.labels = int64_t(batch.outputNodes().size()) * kLabel;   // (3)
    est.blocks = batch.structureBytes();                         // (4)
    est.gradients = params * kFloat;                             // (7)
    est.optimizerStates =
        (spec.optimizer == OptimizerKind::Adam ? 2 : 0) * params *
        kFloat;                                                  // (8)

    for (int64_t layer = 0; layer < spec.numLayers; ++layer) {
        const LayerCost cost = layerCost(
            batch.blocks[size_t(layer)], spec.layerInDim(layer),
            spec.layerOutDim(layer), spec.aggregator,
            layer + 1 == spec.numLayers, layer > 0,
            spec.lstmIntermediatesPerNode, spec.attentionHeads);
        est.hidden += cost.hidden;          // (5)
        est.aggregator += cost.aggregator;  // (6)
        est.backwardBuffers += cost.backward;
    }

    // Our runtime holds the autograd graph (forward values) until the
    // whole backward finishes, so activation values, their gradient
    // buffers and the parameter gradients coexist at the peak. (The
    // paper's max((6),(7)) variant models eager freeing; with graph
    // retention the sum is the accurate bound.)
    est.peak = est.parameters + est.inputFeatures + est.labels +
               est.blocks + est.hidden + est.aggregator +
               est.backwardBuffers + est.gradients +
               est.optimizerStates;
    return est;
}

int64_t
componentBytes(const MemoryEstimate& estimate, obs::MemCategory category)
{
    switch (category) {
      case obs::MemCategory::Parameters:
        return estimate.parameters;
      case obs::MemCategory::InputFeatures:
        return estimate.inputFeatures;
      case obs::MemCategory::Labels:
        return estimate.labels;
      case obs::MemCategory::Blocks:
        return estimate.blocks;
      case obs::MemCategory::Hidden:
        return estimate.hidden;
      case obs::MemCategory::Aggregator:
        return estimate.aggregator;
      case obs::MemCategory::Gradients:
        // The profiler tags intermediate (backward-buffer) gradients
        // and parameter gradients alike as Gradients.
        return estimate.gradients + estimate.backwardBuffers;
      case obs::MemCategory::OptimizerState:
        return estimate.optimizerStates;
      case obs::MemCategory::FeatureCache:
        // The cache reservation is a fixed carve-out charged at cache
        // construction, not a per-micro-batch working-set component.
        return 0;
      case obs::MemCategory::Uncategorized:
        return 0;
    }
    return 0;
}

} // namespace betty
