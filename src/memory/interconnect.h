/**
 * @file
 * Simulated device<->device interconnect for multi-accelerator
 * training (train/multi_device.h).
 *
 * Without physical accelerators the collective is priced analytically,
 * the same way transfer_model.h prices the host link. The model is a
 * bandwidth/latency pair with two presets matching the links the paper
 * environment would offer — an NVLink-class mesh and a PCIe-class
 * switch — and a ring all-reduce cost:
 *
 *   t = 2 (D-1) * (latency + (bytes / D) / bandwidth)
 *
 * A D-device ring all-reduce runs 2(D-1) steps (reduce-scatter +
 * all-gather), each moving one 1/D-sized shard per link; every step
 * pays the per-hop latency. The formula is deterministic and charged
 * once per optimizer step, so the simulated clock — like everything
 * else in the substrate — is a pure function of the configuration.
 */
#ifndef BETTY_MEMORY_INTERCONNECT_H
#define BETTY_MEMORY_INTERCONNECT_H

#include <cstdint>
#include <string>

namespace betty {

/** Bandwidth/latency description of the device<->device fabric. */
struct InterconnectConfig
{
    /** Preset name ("nvlink", "pcie", or "custom"). */
    std::string name = "nvlink";

    /** Per-link bandwidth, bytes/s. */
    double bandwidth = 150.0e9;

    /** Per-hop latency, seconds. */
    double latencySeconds = 5.0e-6;

    /** NVLink-class mesh: ~150 GB/s per link, 5 us hops. */
    static InterconnectConfig nvlink();

    /** PCIe-class switch: ~12 GB/s per link, 20 us hops. */
    static InterconnectConfig pcie();

    /**
     * Resolve a preset by name ("nvlink" / "pcie"); returns false on
     * unknown names and leaves @p out untouched.
     */
    static bool parse(const std::string& name, InterconnectConfig* out);
};

/** Accumulates simulated collective time over one fabric. */
class InterconnectModel
{
  public:
    explicit InterconnectModel(InterconnectConfig config = {})
        : config_(std::move(config))
    {
    }

    /**
     * Ring all-reduce cost of @p gradient_bytes across @p devices,
     * without charging it (what-if queries, bench tables).
     */
    double allReduceSeconds(int64_t gradient_bytes,
                            int32_t devices) const;

    /**
     * Charge one gradient all-reduce across @p devices; returns the
     * seconds charged (0 for a single device — nothing to reduce).
     * Also counts the per-device bytes the ring moved.
     */
    double chargeAllReduce(int64_t gradient_bytes, int32_t devices);

    /**
     * Degrade the fabric to 1/@p factor of its configured bandwidth
     * (factor >= 1; 1 restores full speed). A ring all-reduce moves
     * every shard through every link, so one degraded lane slows the
     * whole collective — which is exactly the straggler behaviour
     * the device-slow fault simulates. Attribution only.
     */
    void
    setSlowdown(double factor)
    {
        slowdown_ = factor < 1.0 ? 1.0 : factor;
    }

    /** Current slowdown factor (1 = healthy). */
    double slowdown() const { return slowdown_; }

    const InterconnectConfig& config() const { return config_; }

    /** Cumulative charged collective time, seconds. */
    double seconds() const { return seconds_; }

    /** Collectives charged since construction/reset. */
    int64_t collectives() const { return collectives_; }

    /** Per-device bytes moved by charged collectives. */
    int64_t bytesMoved() const { return bytes_moved_; }

    void
    reset()
    {
        seconds_ = 0.0;
        collectives_ = 0;
        bytes_moved_ = 0;
    }

  private:
    InterconnectConfig config_;
    double slowdown_ = 1.0;
    double seconds_ = 0.0;
    int64_t collectives_ = 0;
    int64_t bytes_moved_ = 0;
};

} // namespace betty

#endif // BETTY_MEMORY_INTERCONNECT_H
