#include "memory/interconnect.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace betty {

InterconnectConfig
InterconnectConfig::nvlink()
{
    InterconnectConfig config;
    config.name = "nvlink";
    config.bandwidth = 150.0e9;
    config.latencySeconds = 5.0e-6;
    return config;
}

InterconnectConfig
InterconnectConfig::pcie()
{
    InterconnectConfig config;
    config.name = "pcie";
    config.bandwidth = 12.0e9;
    config.latencySeconds = 20.0e-6;
    return config;
}

bool
InterconnectConfig::parse(const std::string& name,
                          InterconnectConfig* out)
{
    if (name == "nvlink") {
        *out = nvlink();
        return true;
    }
    if (name == "pcie") {
        *out = pcie();
        return true;
    }
    return false;
}

double
InterconnectModel::allReduceSeconds(int64_t gradient_bytes,
                                    int32_t devices) const
{
    BETTY_ASSERT(gradient_bytes >= 0, "negative gradient bytes");
    if (devices <= 1 || gradient_bytes == 0)
        return 0.0;
    const double steps = 2.0 * double(devices - 1);
    const double shard = double(gradient_bytes) / double(devices);
    // slowdown_ > 1 models one degraded lane; the ring is bounded by
    // its slowest link, so the whole collective pays it.
    return steps * (config_.latencySeconds +
                    shard * slowdown_ / config_.bandwidth);
}

double
InterconnectModel::chargeAllReduce(int64_t gradient_bytes,
                                   int32_t devices)
{
    const double seconds = allReduceSeconds(gradient_bytes, devices);
    if (seconds == 0.0)
        return 0.0;
    seconds_ += seconds;
    ++collectives_;
    const int64_t moved = int64_t(
        2.0 * double(devices - 1) * double(gradient_bytes) /
        double(devices));
    bytes_moved_ += moved;
    if (obs::Metrics::enabled()) {
        static obs::Counter& collectives =
            obs::Metrics::counter("interconnect.collectives");
        static obs::Counter& bytes =
            obs::Metrics::counter("interconnect.bytes");
        collectives.increment();
        bytes.add(moved);
    }
    return seconds;
}

} // namespace betty
