/**
 * @file
 * Analytical per-micro-batch memory estimation (paper §4.4.3, Table 3).
 *
 * The memory-aware planner must size K without running a forward pass;
 * this estimator prices the eight components the paper enumerates:
 *
 *   (1) GNN model parameters               NP_GNN
 *   (2) input features                     N_in x H_in
 *   (3) output labels                      N_out
 *   (4) block structure                    E x 3 per block
 *   (5) hidden layer outputs               sum_i N_i x h_i
 *   (6) aggregator intermediates           aggregator-dependent;
 *       LSTM follows Eq. 5: sum over in-degree groups of
 *       L_i x B_i x H x C  (C is implementation-dependent; PyTorch's
 *       is 18, ours is measured and set in GnnSpec)
 *   (7) gradients                          NP_GNN + NP_Agg
 *   (8) optimizer states                   Adam: 2 x (NP_GNN + NP_Agg)
 *
 * Peak = (1)+(2)+(3)+(4)+(5)+(8) + max((6) + backward buffers, (7)),
 * following the paper's observation that (6) is freed while (7) grows.
 */
#ifndef BETTY_MEMORY_ESTIMATOR_H
#define BETTY_MEMORY_ESTIMATOR_H

#include <cstdint>
#include <string>

#include "obs/memprof.h"
#include "sampling/block.h"

namespace betty {

/**
 * Aggregator types of Table 1 that GraphSAGE supports here, plus
 * Attention for GAT layers and Gcn/Gin for the GCN and GIN stacks
 * (not SAGE aggregators, but the estimator prices every model family
 * through the same interface).
 */
enum class AggregatorKind { Mean, Sum, Pool, Lstm, Attention, Gcn, Gin };

/** Printable aggregator name. */
std::string aggregatorName(AggregatorKind kind);

/** Optimizers with different state footprints. */
enum class OptimizerKind { Sgd, Adam };

/** Static description of a GNN for memory estimation (Table 3). */
struct GnnSpec
{
    int64_t inputDim = 0;    ///< H_in
    int64_t hiddenDim = 0;   ///< h
    int64_t numClasses = 0;  ///< output dim of the last layer
    int64_t numLayers = 1;   ///< n
    AggregatorKind aggregator = AggregatorKind::Mean;
    OptimizerKind optimizer = OptimizerKind::Adam;
    int64_t paramCountGnn = 0; ///< NP_GNN (excludes aggregator)
    int64_t paramCountAgg = 0; ///< NP_Agg

    /**
     * The constant C of Eq. 5: intermediate scalars the LSTM
     * aggregator materializes per (node, timestep, hidden unit).
     * The paper cites PyTorch's value of 18; our from-scratch LSTM
     * cell materializes a different (measured) count, set by the
     * nn layer when it builds the spec.
     */
    int64_t lstmIntermediatesPerNode = 18;

    /** Attention heads per hidden layer (GAT); hiddenDim is the
     * concatenated width (heads x per-head width). */
    int64_t attentionHeads = 1;

    /** Output feature width of layer @p layer (0-based, input side). */
    int64_t
    layerOutDim(int64_t layer) const
    {
        return layer + 1 == numLayers ? numClasses : hiddenDim;
    }

    /** Input feature width of layer @p layer. */
    int64_t
    layerInDim(int64_t layer) const
    {
        return layer == 0 ? inputDim : hiddenDim;
    }
};

/** Byte counts per component; see file comment for the item numbers. */
struct MemoryEstimate
{
    int64_t parameters = 0;      ///< (1)
    int64_t inputFeatures = 0;   ///< (2)
    int64_t labels = 0;          ///< (3)
    int64_t blocks = 0;          ///< (4)
    int64_t hidden = 0;          ///< (5)
    int64_t aggregator = 0;      ///< (6) + forward autograd buffers
    int64_t gradients = 0;       ///< (7)
    int64_t optimizerStates = 0; ///< (8)

    /** Backward gradient buffers of (5)+(6) — the "+ backward
     * buffers" term of the peak formula, exposed so per-category
     * comparisons can fold it into the measured-gradients bucket. */
    int64_t backwardBuffers = 0;

    /** Estimated peak resident bytes. */
    int64_t peak = 0;

    double peakGiB() const
    {
        return double(peak) / (1024.0 * 1024.0 * 1024.0);
    }
};

/**
 * The estimate's prediction for one provenance category
 * (obs/memprof.h). Gradients folds in backwardBuffers — the profiler
 * tags intermediate gradient buffers and parameter gradients alike as
 * Gradients — and Uncategorized predicts 0 by definition.
 */
int64_t componentBytes(const MemoryEstimate& estimate,
                       obs::MemCategory category);

/**
 * Estimate the peak device memory of training one (micro-)batch.
 * Costs only the batch's shape (node/edge/degree counts) — never runs
 * the model, which is the entire point (§4.4.3: sizing K "without
 * triggering the expensive training cost").
 */
MemoryEstimate estimateBatchMemory(const MultiLayerBatch& batch,
                                   const GnnSpec& spec);

} // namespace betty

#endif // BETTY_MEMORY_ESTIMATOR_H
