#include "robustness/chaos.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/betty.h"
#include "data/catalog.h"
#include "memory/device_memory.h"
#include "memory/transfer_model.h"
#include "nn/models.h"
#include "nn/optim.h"
#include "robustness/resilient_trainer.h"
#include "sampling/neighbor_sampler.h"
#include "train/multi_device.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace betty::robustness {

namespace {

/** Stream tag separating chaos draws from every other Rng consumer. */
constexpr uint64_t kChaosStream = 0xC4A05C4A05ULL;

/**
 * Quantized magnitude tables. Quantization keeps schedules readable
 * (specs print exact decimals) and guarantees format() -> parse()
 * round-trips reproduce the value bit-for-bit.
 */
constexpr double kDropFactors[] = {0.4, 0.5, 0.6, 0.75, 0.9};
constexpr double kAllocScales[] = {1.25, 1.5, 2.0, 3.0};
constexpr double kCorruptFractions[] = {0.01, 0.02, 0.05, 0.1};
constexpr double kSlowFactors[] = {1.5, 2.0, 4.0, 8.0};
constexpr double kFlakyProbs[] = {0.1, 0.2, 0.3, 0.5};
constexpr int64_t kRetryCounts[] = {1, 2, 3};
constexpr int64_t kSlowDurations[] = {0, 1, 2};

template <typename T, size_t N>
T
pick(Rng& rng, const T (&table)[N])
{
    return table[rng.uniformInt(uint64_t(N))];
}

SageConfig
sageConfigFor(const Dataset& dataset)
{
    SageConfig cfg;
    cfg.inputDim = dataset.featureDim();
    cfg.hiddenDim = 16;
    cfg.numClasses = dataset.numClasses;
    cfg.numLayers = 2;
    cfg.seed = 5;
    return cfg;
}

uint64_t
hashParameters(const GnnModel& model)
{
    uint64_t hash = 1469598103934665603ull;
    for (const auto& param : model.parameters())
        for (int64_t i = 0; i < param->value.numel(); ++i) {
            uint32_t bits;
            std::memcpy(&bits, &param->value.data()[i],
                        sizeof(bits));
            hash = (hash ^ bits) * 1099511628211ull;
        }
    return hash;
}

} // namespace

const char*
chaosTargetName(ChaosTarget target)
{
    return target == ChaosTarget::SingleDevice ? "single-device"
                                               : "multi-device";
}

bool
attributionOnly(const fault::FaultPlan& plan, ChaosTarget target)
{
    for (const fault::FaultEvent& event : plan.events) {
        switch (event.kind) {
          case fault::FaultKind::TransferFail:
          case fault::FaultKind::TransferFlaky:
          case fault::FaultKind::DeviceSlow:
            continue;
          case fault::FaultKind::DeviceDrop:
            // Placement never touches numerics on the multi-device
            // path; the single-device stack does not consume drops,
            // but a plan carrying one is not attribution-only there
            // by intent.
            if (target == ChaosTarget::MultiDevice)
                continue;
            return false;
          default:
            return false;
        }
    }
    return true;
}

ChaosSchedule
generateSchedule(uint64_t seed, const ChaosConfig& config)
{
    ChaosSchedule schedule;
    schedule.seed = seed;
    Rng rng = Rng::stream(seed, kChaosStream, 0);
    schedule.target = rng.uniformInt(uint64_t(2)) == 0
                          ? ChaosTarget::SingleDevice
                          : ChaosTarget::MultiDevice;

    const int32_t events =
        1 + int32_t(rng.uniformInt(
                uint64_t(std::max<int32_t>(1, config.maxEvents))));
    for (int32_t n = 0; n < events; ++n) {
        fault::FaultEvent event;
        event.epoch =
            rng.uniformInt(int64_t(1),
                           std::max<int64_t>(1, config.epochs));
        const int64_t last_mb =
            std::max<int64_t>(0, int64_t(config.singleK) - 1);
        if (schedule.target == ChaosTarget::SingleDevice) {
            switch (rng.uniformInt(uint64_t(7))) {
              case 0:
                // Consumed by the admission hook, so it must name a
                // micro-batch to ever fire.
                event.kind = fault::FaultKind::InjectOom;
                event.microBatch = rng.uniformInt(int64_t(0), last_mb);
                break;
              case 1:
                event.kind = fault::FaultKind::CapacityDrop;
                event.value = pick(rng, kDropFactors);
                event.microBatch =
                    rng.uniformInt(int64_t(-1), last_mb);
                break;
              case 2:
                event.kind = fault::FaultKind::AllocScale;
                event.value = pick(rng, kAllocScales);
                event.microBatch = rng.uniformInt(int64_t(0), last_mb);
                break;
              case 3:
                // Epoch-scoped: poisoning happens before planning.
                event.kind = fault::FaultKind::CorruptFeatures;
                event.value = pick(rng, kCorruptFractions);
                break;
              case 4:
                event.kind = fault::FaultKind::TransferFail;
                event.retries = pick(rng, kRetryCounts);
                event.microBatch =
                    rng.uniformInt(int64_t(-1), last_mb);
                break;
              case 5:
                event.kind = fault::FaultKind::TransferFlaky;
                event.value = pick(rng, kFlakyProbs);
                event.microBatch =
                    rng.uniformInt(int64_t(-1), last_mb);
                break;
              default:
                event.kind = fault::FaultKind::DeviceSlow;
                event.value = pick(rng, kSlowFactors);
                event.durationEpochs = pick(rng, kSlowDurations);
                break;
            }
        } else {
            const int64_t last_device =
                std::max<int64_t>(0, int64_t(config.numDevices) - 1);
            const int64_t last_multi_mb =
                std::max<int64_t>(0, int64_t(config.multiK) - 1);
            switch (rng.uniformInt(uint64_t(4))) {
              case 0:
                // value < 0 = "drop the highest-indexed live device".
                event.kind = fault::FaultKind::DeviceDrop;
                event.value = double(
                    rng.uniformInt(int64_t(-1), last_device));
                event.microBatch =
                    rng.uniformInt(int64_t(-1), last_multi_mb);
                break;
              case 1:
                event.kind = fault::FaultKind::DeviceSlow;
                event.value = pick(rng, kSlowFactors);
                event.durationEpochs = pick(rng, kSlowDurations);
                event.device =
                    rng.uniformInt(int64_t(-1), last_device);
                break;
              case 2:
                event.kind = fault::FaultKind::TransferFail;
                event.retries = pick(rng, kRetryCounts);
                event.microBatch =
                    rng.uniformInt(int64_t(-1), last_multi_mb);
                break;
              default:
                event.kind = fault::FaultKind::TransferFlaky;
                event.value = pick(rng, kFlakyProbs);
                event.microBatch =
                    rng.uniformInt(int64_t(-1), last_multi_mb);
                break;
            }
        }
        schedule.plan.events.push_back(event);
    }
    schedule.plan.seed = seed;
    schedule.spec = schedule.plan.format();
    return schedule;
}

ChaosHarness::ChaosHarness(ChaosConfig config)
    : config_(config), dataset_(loadCatalogDataset("cora_like", 0.2, 11))
{
    NeighborSampler sampler(dataset_.graph, {4, 6}, 12);
    std::vector<int64_t> seeds(
        dataset_.trainNodes.begin(),
        dataset_.trainNodes.begin() +
            std::min<size_t>(size_t(config_.trainSeeds),
                             dataset_.trainNodes.size()));
    full_ = sampler.sample(seeds);
    BettyPartitioner partitioner;
    micros_ = extractMicroBatches(
        full_, partitioner.partition(full_, config_.multiK));

    // Capacity sized so exactly singleK fits: every capacity drop
    // then forces a real abort/re-plan, and every pinned micro-batch
    // position exists.
    GraphSage probe_model(sageConfigFor(dataset_));
    MemoryAwarePlanner probe(probe_model.memorySpec(), 0);
    const PlanResult plan =
        probe.plan(full_, partitioner, config_.singleK);
    singleCapacity_ = plan.maxEstimatedPeak;

    singleBaseline_ = runSingle(nullptr);
    multiBaseline_ = runMulti(nullptr);
}

ChaosHarness::SingleTrace
ChaosHarness::runSingle(const fault::FaultPlan* plan)
{
    if (plan)
        fault::Injector::install(*plan);
    else
        fault::Injector::clear();

    // corrupt-features poisons rows in place (and the repair zeroes
    // them), so every run trains on a private dataset copy. Tensor's
    // copy shares storage — clone() for the deep copy, or the poison
    // would leak into the master dataset and every later run.
    Dataset ds = dataset_;
    ds.features = dataset_.features.clone();
    DeviceMemoryModel device(singleCapacity_);
    DeviceMemoryModel::Scope scope(device);
    GraphSage model(sageConfigFor(dataset_));
    Adam adam(model.parameters(), 0.01f);
    TransferModel transfer;
    Trainer trainer(ds, model, adam, &device, &transfer);
    BettyPartitioner partitioner;
    RecoveryPolicy policy;
    policy.maxK = config_.maxK;
    ResilientTrainer resilient(trainer, model.memorySpec(),
                               partitioner, &device, policy);
    resilient.setFeatureSource(&ds.features);
    resilient.setTransferModel(&transfer);

    SingleTrace trace;
    for (int64_t epoch = 1; epoch <= config_.epochs; ++epoch) {
        const ResilientEpochResult result =
            resilient.trainEpoch(full_, epoch, config_.singleK);
        trace.losses.push_back(result.skipped ? 0.0
                                              : result.stats.loss);
        trace.skipped.push_back(result.skipped ? 1 : 0);
    }
    const RecoveryReport& report = resilient.report();
    trace.replans = report.replans;
    trace.oomRetries = report.oomRetries;
    trace.transferRetries = report.transferRetries;
    trace.batchesSkipped = report.batchesSkipped;
    trace.faultsInjected = fault::Injector::faultsInjected();
    trace.firedTransferFail = fault::Injector::faultsInjected(
        fault::FaultKind::TransferFail);
    trace.firedTransferFlaky = fault::Injector::faultsInjected(
        fault::FaultKind::TransferFlaky);
    trace.transferSeconds = transfer.lifetimeSeconds();
    trace.backoffSeconds = transfer.backoffSeconds();
    trace.paramHash = hashParameters(model);
    fault::Injector::clear();
    return trace;
}

ChaosHarness::MultiTrace
ChaosHarness::runMulti(const fault::FaultPlan* plan)
{
    if (plan)
        fault::Injector::install(*plan);
    else
        fault::Injector::clear();

    GraphSage model(sageConfigFor(dataset_));
    Adam adam(model.parameters(), 0.01f);
    MultiDeviceConfig config;
    config.numDevices = config_.numDevices;
    MultiDeviceEngine engine(dataset_, model, adam, config);

    MultiTrace trace;
    for (int64_t epoch = 1; epoch <= config_.epochs; ++epoch) {
        const MultiDeviceStats stats =
            engine.trainEpoch(micros_, epoch);
        trace.losses.push_back(stats.loss);
        trace.liveDevices = stats.liveDevices;
        trace.deviceDrops += stats.deviceDrops;
        trace.deviceSlowFaults += stats.deviceSlowFaults;
        trace.stragglersDetected += stats.stragglersDetected;
        trace.stragglerResharded += stats.stragglerResharded;
    }
    trace.firedDeviceDrop = fault::Injector::faultsInjected(
        fault::FaultKind::DeviceDrop);
    trace.firedDeviceSlow = fault::Injector::faultsInjected(
        fault::FaultKind::DeviceSlow);
    trace.firedTransferFail = fault::Injector::faultsInjected(
        fault::FaultKind::TransferFail);
    trace.firedTransferFlaky = fault::Injector::faultsInjected(
        fault::FaultKind::TransferFlaky);
    trace.paramHash = hashParameters(model);
    fault::Injector::clear();
    return trace;
}

void
ChaosHarness::checkSingle(const ChaosSchedule& schedule,
                          std::vector<std::string>& failures)
{
    const SingleTrace first = runSingle(&schedule.plan);
    const SingleTrace second = runSingle(&schedule.plan);

    auto expect = [&failures](bool ok, const std::string& what) {
        if (!ok)
            failures.push_back(what);
    };

    // Determinism: a schedule is a pure function of its seed, so two
    // executions must agree bit for bit on everything observable.
    expect(first.losses == second.losses &&
               first.skipped == second.skipped &&
               first.paramHash == second.paramHash,
           "replaying the schedule diverged (losses/params)");
    expect(first.replans == second.replans &&
               first.oomRetries == second.oomRetries &&
               first.transferRetries == second.transferRetries &&
               first.batchesSkipped == second.batchesSkipped &&
               first.faultsInjected == second.faultsInjected,
           "replaying the schedule diverged (recovery counters)");
    expect(first.transferSeconds == second.transferSeconds &&
               first.backoffSeconds == second.backoffSeconds,
           "replaying the schedule diverged (simulated link time)");

    for (size_t i = 0; i < first.losses.size(); ++i)
        expect(first.skipped[i] != 0 ||
                   std::isfinite(first.losses[i]),
               "completed epoch " + std::to_string(i + 1) +
                   " has a non-finite loss");

    // Counter consistency.
    expect(first.transferRetries ==
               first.firedTransferFail + first.firedTransferFlaky,
           "recovery report's transfer retries disagree with the "
           "injector's fired transfer faults");
    expect(first.replans <= first.oomRetries,
           "more re-plans than aborted attempts");
    expect(first.batchesSkipped <= config_.epochs,
           "more skipped epochs than epochs run");
    expect(first.backoffSeconds <= first.transferSeconds,
           "retry backoff exceeds the link's total simulated time");

    if (attributionOnly(schedule.plan,
                        ChaosTarget::SingleDevice)) {
        expect(first.losses == singleBaseline_.losses &&
                   first.paramHash == singleBaseline_.paramHash,
               "attribution-only faults changed losses/parameters");
        expect(first.replans == 0 && first.batchesSkipped == 0,
               "attribution-only faults triggered recovery control "
               "flow");
    }
}

void
ChaosHarness::checkMulti(const ChaosSchedule& schedule,
                         std::vector<std::string>& failures)
{
    const MultiTrace first = runMulti(&schedule.plan);
    const MultiTrace second = runMulti(&schedule.plan);

    auto expect = [&failures](bool ok, const std::string& what) {
        if (!ok)
            failures.push_back(what);
    };

    expect(first.losses == second.losses &&
               first.paramHash == second.paramHash,
           "replaying the schedule diverged (losses/params)");
    expect(first.liveDevices == second.liveDevices &&
               first.deviceDrops == second.deviceDrops &&
               first.deviceSlowFaults == second.deviceSlowFaults &&
               first.stragglersDetected ==
                   second.stragglersDetected &&
               first.stragglerResharded == second.stragglerResharded,
           "replaying the schedule diverged (engine fault stats)");

    for (size_t i = 0; i < first.losses.size(); ++i)
        expect(std::isfinite(first.losses[i]),
               "epoch " + std::to_string(i + 1) +
                   " has a non-finite loss");

    // Every fault the engine consumes is attribution-only, so this
    // holds unconditionally: losses and parameters match the
    // fault-free baseline whatever the schedule did.
    expect(first.losses == multiBaseline_.losses &&
               first.paramHash == multiBaseline_.paramHash,
           "multi-device faults changed losses/parameters");

    expect(first.liveDevices >= 1, "the engine lost every device");
    expect(first.liveDevices ==
               config_.numDevices - int32_t(first.deviceDrops),
           "live-device count inconsistent with consumed drops");
    expect(first.deviceDrops <= first.firedDeviceDrop,
           "more devices killed than device-drop faults fired");
    expect(first.deviceSlowFaults == first.firedDeviceSlow,
           "device-slow stats disagree with the injector");
    expect(first.stragglerResharded == 0 ||
               first.stragglersDetected > 0,
           "micro-batches re-sharded without a straggler detection");
}

ChaosResult
ChaosHarness::run(uint64_t seed)
{
    return run(generateSchedule(seed, config_));
}

ChaosResult
ChaosHarness::run(const ChaosSchedule& schedule)
{
    ChaosResult result;
    result.seed = schedule.seed;
    result.target = schedule.target;
    result.spec = schedule.spec;

    std::vector<std::string> failures;
    if (schedule.target == ChaosTarget::SingleDevice)
        checkSingle(schedule, failures);
    else
        checkMulti(schedule, failures);

    if (!failures.empty()) {
        result.ok = false;
        std::string message =
            "chaos schedule violated invariants (seed=" +
            std::to_string(schedule.seed) + ", target=" +
            chaosTargetName(schedule.target) + "):\n";
        for (const std::string& failure : failures)
            message += "  - " + failure + "\n";
        message += "  replay: --faults \"" + schedule.spec +
                   "\" --fault-seed " +
                   std::to_string(schedule.seed);
        result.failure = message;
    }
    return result;
}

} // namespace betty::robustness
