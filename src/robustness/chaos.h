/**
 * @file
 * Seeded chaos testing: randomized multi-event fault schedules plus
 * the invariant harness that runs them end-to-end
 * (docs/ROBUSTNESS.md, "Chaos testing").
 *
 * The generator composes valid FaultPlans — every fault kind the
 * grammar accepts, epoch/micro-batch positions, quantized magnitudes
 * — from a single seed via Rng::stream, so a schedule is a pure
 * function of its seed: any failure replays bit-for-bit from the
 * seed alone.
 *
 * The harness runs each schedule through the full stack (the
 * single-device ResilientTrainer or the MultiDeviceEngine, chosen by
 * the seed) and asserts the global robustness invariants:
 *
 *   - the run completes or skips DETERMINISTICALLY: executing the
 *     same schedule twice yields bit-identical losses, parameters,
 *     and recovery counters;
 *   - attribution-only faults (transfer-fail, transfer-flaky,
 *     device-slow — and on the multi-device path device-drop too)
 *     leave losses and parameters bit-identical to the fault-free
 *     baseline;
 *   - recovery and metric counters are mutually consistent
 *     (transfer retries match injected transfer faults, replans
 *     never exceed aborts, backoff never exceeds link time, live
 *     devices match consumed drops);
 *   - no NaN ever reaches a completed epoch's loss.
 *
 * A failing schedule's ChaosResult::failure includes a `--faults`
 * spec (FaultPlan::format()) and the seed, reproducing the run
 * verbatim — paste it into train_cli or a test and debug.
 */
#ifndef BETTY_ROBUSTNESS_CHAOS_H
#define BETTY_ROBUSTNESS_CHAOS_H

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "sampling/block.h"
#include "util/fault.h"

namespace betty::robustness {

/** Which stack a schedule exercises. */
enum class ChaosTarget
{
    SingleDevice, ///< ResilientTrainer (recovery loop)
    MultiDevice,  ///< MultiDeviceEngine (drops, stragglers)
};

const char* chaosTargetName(ChaosTarget target);

/** Bounds of the schedule generator and harness runs. */
struct ChaosConfig
{
    /** Epochs per run; fault epochs are drawn in [1, epochs]. */
    int64_t epochs = 2;

    /** Events per schedule are drawn in [1, maxEvents]. */
    int32_t maxEvents = 3;

    /** Devices of the multi-device target. */
    int32_t numDevices = 3;

    /** Micro-batches (K) the multi-device target shards. */
    int32_t multiK = 8;

    /** Initial K of the single-device recovery loop; the harness
     * sizes the device capacity so exactly this K fits. */
    int32_t singleK = 4;

    /** Recovery-policy K bound — keeps futile re-plan searches cheap
     * when a schedule stacks several capacity drops. */
    int32_t maxK = 64;

    /** Training seed nodes sampled into the harness batch. */
    int32_t trainSeeds = 120;
};

/** One generated schedule: a pure function of (seed, config). */
struct ChaosSchedule
{
    uint64_t seed = 0;
    ChaosTarget target = ChaosTarget::SingleDevice;

    /** The composed plan; plan.seed == seed, so probabilistic events
     * (transfer-flaky, corrupt-row selection) replay too. */
    fault::FaultPlan plan;

    /** FaultPlan::format() of the plan — the replay handle. */
    std::string spec;
};

/** Generate the schedule for @p seed. Deterministic; every event
 * validates against the fault grammar (round-trips via parse). */
ChaosSchedule generateSchedule(uint64_t seed,
                               const ChaosConfig& config = {});

/** True when every event of @p plan is attribution-only on
 * @p target — cost/accounting but never numerics. */
bool attributionOnly(const fault::FaultPlan& plan, ChaosTarget target);

/** Outcome of one schedule through the harness. */
struct ChaosResult
{
    uint64_t seed = 0;
    ChaosTarget target = ChaosTarget::SingleDevice;
    std::string spec;
    bool ok = true;

    /** Human-readable diagnosis when !ok; always ends with a
     * "replay:" line carrying the --faults spec and seed. */
    std::string failure;
};

/**
 * Runs chaos schedules end-to-end and checks the invariants (file
 * doc). Construction loads the synthetic dataset, samples the
 * harness batch, and computes the fault-free baselines both targets
 * are compared against; each run() is then self-contained (fresh
 * model/optimizer/devices, injector installed and cleared).
 *
 * Not thread-safe — drive it from one thread (schedules themselves
 * exercise the engine's internal parallelism).
 */
class ChaosHarness
{
  public:
    explicit ChaosHarness(ChaosConfig config = {});

    /** generateSchedule(seed) + run(schedule). */
    ChaosResult run(uint64_t seed);

    /** Execute @p schedule twice and verify every invariant. */
    ChaosResult run(const ChaosSchedule& schedule);

  private:
    /** Everything one single-device execution is compared on. */
    struct SingleTrace
    {
        std::vector<double> losses;
        std::vector<char> skipped;
        uint64_t paramHash = 0;
        int64_t replans = 0;
        int64_t oomRetries = 0;
        int64_t transferRetries = 0;
        int64_t batchesSkipped = 0;
        int64_t faultsInjected = 0;
        int64_t firedTransferFail = 0;
        int64_t firedTransferFlaky = 0;
        double transferSeconds = 0.0;
        double backoffSeconds = 0.0;
    };

    /** Everything one multi-device execution is compared on. */
    struct MultiTrace
    {
        std::vector<double> losses;
        uint64_t paramHash = 0;
        int32_t liveDevices = 0;
        int64_t deviceDrops = 0;
        int64_t deviceSlowFaults = 0;
        int64_t stragglersDetected = 0;
        int64_t stragglerResharded = 0;
        int64_t firedDeviceDrop = 0;
        int64_t firedDeviceSlow = 0;
        int64_t firedTransferFail = 0;
        int64_t firedTransferFlaky = 0;
    };

    SingleTrace runSingle(const fault::FaultPlan* plan);
    MultiTrace runMulti(const fault::FaultPlan* plan);

    void checkSingle(const ChaosSchedule& schedule,
                     std::vector<std::string>& failures);
    void checkMulti(const ChaosSchedule& schedule,
                    std::vector<std::string>& failures);

    ChaosConfig config_;
    Dataset dataset_;
    MultiLayerBatch full_;
    std::vector<MultiLayerBatch> micros_;
    int64_t singleCapacity_ = 0;
    SingleTrace singleBaseline_;
    MultiTrace multiBaseline_;
};

} // namespace betty::robustness

#endif // BETTY_ROBUSTNESS_CHAOS_H
