#include "robustness/retry.h"

#include <cstdlib>

namespace betty::robustness {

namespace {

bool
envInt(const char* name, int64_t& value)
{
    const char* text = std::getenv(name);
    if (!text || !*text)
        return false;
    char* end = nullptr;
    const long long parsed = std::strtoll(text, &end, 10);
    if (!end || *end != '\0')
        return false;
    value = parsed;
    return true;
}

} // namespace

RetryPolicy
retryPolicyFromEnv()
{
    RetryPolicy policy;
    int64_t value = 0;
    if (envInt("BETTY_RETRY_MAX_ATTEMPTS", value) && value >= 1)
        policy.maxAttempts = value;
    if (envInt("BETTY_RETRY_BASE_BACKOFF_US", value) && value >= 0)
        policy.baseBackoffSeconds = double(value) * 1e-6;
    if (envInt("BETTY_RETRY_MAX_BACKOFF_US", value) && value >= 0)
        policy.maxBackoffSeconds = double(value) * 1e-6;
    if (envInt("BETTY_RETRY_MULTIPLIER", value) && value >= 1)
        policy.backoffMultiplier = double(value);
    return policy;
}

} // namespace betty::robustness
