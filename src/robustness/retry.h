/**
 * @file
 * Bounded exponential-backoff retry policy for host-link transfers
 * (docs/ROBUSTNESS.md, "Retry policy").
 *
 * Replaces the ad-hoc "while the injector says fail, pay latency"
 * loop that used to live inside Trainer::gatherFeatures. The policy
 * is explicit and shared: every consumer (the single-device trainer,
 * the multi-device engine's per-device links) prices a failed attempt
 * and its backoff identically, and emits the same `retry.*` metrics
 * and flight-recorder events.
 *
 * Backoff is charged as *simulated* time on the TransferModel — the
 * link sits idle while the policy waits — so it shows up in the run
 * report's transfer seconds and `betty_report check` can gate
 * backoff <= total transfer time as an invariant.
 *
 * Exhaustion is graceful degradation, not a crash: after
 * maxAttempts-1 failed attempts the transfer is forced through (the
 * simulated fabric never hard-fails a gather), `retry.exhausted` is
 * counted, and the run continues with identical numerics — transfer
 * faults are attribution-only by construction.
 *
 * Header-only on purpose: betty_train consumes this from the gather
 * hot path but must not link betty_robustness (robustness sits above
 * train in the dependency DAG); retry.cc holds only the
 * robustness-layer helpers (env-var configuration).
 */
#ifndef BETTY_ROBUSTNESS_RETRY_H
#define BETTY_ROBUSTNESS_RETRY_H

#include <cstdint>

#include "memory/transfer_model.h"
#include "obs/metrics.h"
#include "obs/perf/flight_recorder.h"
#include "util/fault.h"

namespace betty::robustness {

/** Bounded exponential backoff between transfer retry attempts. */
struct RetryPolicy
{
    /** Total attempts allowed, including the first; the last one is
     * forced through (never fails), so at most maxAttempts-1 failed
     * attempts are ever charged. */
    int64_t maxAttempts = 8;

    /** Backoff after the first failed attempt, seconds. */
    double baseBackoffSeconds = 100.0e-6;

    /** Growth factor between consecutive backoffs. */
    double backoffMultiplier = 2.0;

    /** Ceiling on a single backoff interval, seconds. */
    double maxBackoffSeconds = 10.0e-3;

    /** Backoff charged after the @p failure-th failed attempt
     * (1-based): base * multiplier^(failure-1), capped. */
    double
    backoffForFailure(int64_t failure) const
    {
        double backoff = baseBackoffSeconds;
        for (int64_t i = 1; i < failure; ++i) {
            backoff *= backoffMultiplier;
            if (backoff >= maxBackoffSeconds)
                return maxBackoffSeconds;
        }
        return backoff < maxBackoffSeconds ? backoff
                                           : maxBackoffSeconds;
    }
};

/** What one retried transfer cost. */
struct RetryOutcome
{
    /** Attempts made, including the final successful one. */
    int64_t attempts = 1;

    /** Failed attempts (each paid link latency + a backoff). */
    int64_t failures = 0;

    /** Total simulated backoff charged, seconds. */
    double backoffSeconds = 0.0;

    /** True when the policy ran out of attempts and forced the
     * transfer through. */
    bool exhausted = false;
};

/**
 * Run the retry protocol for one transfer at logical position
 * @p micro_batch (-1 for gathers outside the micro-batch loop):
 * query the fault injector per attempt (scheduled `transfer-fail`
 * events and probabilistic `transfer-flaky` draws), charging each
 * failed attempt's latency and backoff to @p link. The caller
 * performs the actual transfer() afterwards — by then the protocol
 * has either drained the faults or exhausted the policy.
 */
inline RetryOutcome
runTransferRetries(TransferModel& link, int64_t micro_batch,
                   const RetryPolicy& policy = {})
{
    RetryOutcome outcome;
    if (!fault::Injector::active())
        return outcome;
    for (;;) {
        // The attempt ordinal keys the flaky draw, so the outcome of
        // attempt k at this position is the same on every replay.
        const int64_t attempt = outcome.failures;
        const bool failed =
            fault::Injector::takeTransferFailure(micro_batch) ||
            fault::Injector::takeTransferFlakyFailure(micro_batch,
                                                      attempt);
        if (!failed)
            break;
        ++outcome.failures;
        link.chargeFailedAttempt();
        const double backoff =
            policy.backoffForFailure(outcome.failures);
        link.chargeBackoff(backoff);
        outcome.backoffSeconds += backoff;
        if (obs::Metrics::enabled()) {
            static obs::Counter& failures =
                obs::Metrics::counter("retry.failures");
            static obs::Counter& backoff_us =
                obs::Metrics::counter("retry.backoff_us");
            // Kept from the pre-policy loop so existing dashboards
            // and the recovery report section stay comparable.
            static obs::Counter& legacy =
                obs::Metrics::counter("recover.transfer_retries");
            failures.increment();
            backoff_us.add(int64_t(backoff * 1e6));
            legacy.increment();
        }
        obs::FlightRecorder::record(obs::FrCategory::Recovery,
                                    "retry/backoff", micro_batch,
                                    outcome.failures);
        if (outcome.failures + 1 >= policy.maxAttempts) {
            outcome.exhausted = true;
            if (obs::Metrics::enabled()) {
                static obs::Counter& exhausted =
                    obs::Metrics::counter("retry.exhausted");
                exhausted.increment();
            }
            obs::FlightRecorder::record(obs::FrCategory::Recovery,
                                        "retry/exhausted",
                                        micro_batch,
                                        outcome.failures);
            break;
        }
    }
    outcome.attempts = outcome.failures + 1;
    return outcome;
}

/**
 * Policy from BETTY_RETRY_MAX_ATTEMPTS / BETTY_RETRY_BASE_BACKOFF_US
 * / BETTY_RETRY_MAX_BACKOFF_US / BETTY_RETRY_MULTIPLIER, with the
 * struct defaults for anything unset or unparsable.
 */
RetryPolicy retryPolicyFromEnv();

} // namespace betty::robustness

#endif // BETTY_ROBUSTNESS_RETRY_H
