/**
 * @file
 * Versioned checkpoint/resume of a training run.
 *
 * A checkpoint captures everything a resumed run needs to continue
 * bit-identically to an uninterrupted one (docs/ROBUSTNESS.md):
 *
 *   - model parameter tensors (the weights themselves),
 *   - Adam optimizer state (step count + both moment tensors —
 *     the update rule depends on all three),
 *   - the RNG cursor (sampler seed + call index, since a sample is a
 *     pure function of (seed, call index) — util/rng.h streams),
 *   - the training cursor (epochs completed, last planned K).
 *
 * Format: little-endian, "BETTY_CK" magic + version, the fields
 * above, and a trailing FNV-1a checksum over the payload so a
 * truncated or bit-flipped checkpoint is rejected as a typed IoError
 * instead of silently resuming garbage. tests/test_checkpoint.cc
 * proves the kill-and-resume contract (identical param hash and loss
 * trajectory).
 */
#ifndef BETTY_ROBUSTNESS_CHECKPOINT_H
#define BETTY_ROBUSTNESS_CHECKPOINT_H

#include <cstdint>
#include <string>
#include <vector>

#include "data/io.h"
#include "nn/models.h"
#include "nn/optim.h"
#include "tensor/tensor.h"

namespace betty {

/** The serializable training state (see file comment). */
struct TrainCheckpoint
{
    /** Epochs fully finished; a resumed run starts at the next one. */
    int64_t epochsCompleted = 0;

    /** K of the last executed plan (warm-starts the K search). */
    int64_t lastK = 1;

    /** Sampler RNG cursor. */
    uint64_t samplerSeed = 0;
    uint64_t samplerCallIndex = 0;

    /** Model parameters, in Module::parameters() order. */
    std::vector<Tensor> params;

    /** Adam state (step count + first/second moments, same order). */
    int64_t adamStepCount = 0;
    std::vector<Tensor> adamM;
    std::vector<Tensor> adamV;
};

/** Write @p checkpoint to @p path (atomic content: checksummed). */
IoStatus saveCheckpoint(const TrainCheckpoint& checkpoint,
                        const std::string& path);

/**
 * Read a checkpoint written by saveCheckpoint. Typed errors for a
 * missing file, wrong magic/version, truncation, or a checksum
 * mismatch; @p checkpoint is untouched on failure.
 */
IoStatus loadCheckpoint(TrainCheckpoint& checkpoint,
                        const std::string& path);

/** Snapshot @p model + @p adam (+ cursors) into a TrainCheckpoint. */
TrainCheckpoint captureCheckpoint(const GnnModel& model,
                                  const Adam& adam,
                                  int64_t epochs_completed,
                                  int64_t last_k,
                                  uint64_t sampler_seed,
                                  uint64_t sampler_call_index);

/**
 * Restore @p checkpoint's weights and optimizer state into @p model /
 * @p adam. Every tensor shape is validated against the live model
 * first; on any mismatch nothing is modified and ShapeMismatch is
 * returned (resuming a checkpoint into a differently-configured model
 * must fail loudly, not corrupt the weights).
 */
IoStatus restoreCheckpoint(const TrainCheckpoint& checkpoint,
                           GnnModel& model, Adam& adam);

} // namespace betty

#endif // BETTY_ROBUSTNESS_CHECKPOINT_H
