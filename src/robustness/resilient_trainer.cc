#include "robustness/resilient_trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cache/feature_cache.h"
#include "obs/memprof.h"
#include "obs/metrics.h"
#include "obs/perf/flight_recorder.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace betty {

namespace {

/** Bump a recover.* counter (only when metrics collection is on). */
void
chargeRecover(const char* name, int64_t delta = 1)
{
    if (!obs::Metrics::enabled())
        return;
    obs::Metrics::counter(name).add(delta);
}

/** Extra bytes an AllocScale fault makes the micro-batch allocate
 * beyond its estimate. */
int64_t
ballastBytes(double scale, int64_t estimated_peak)
{
    if (scale <= 1.0 || estimated_peak <= 0)
        return 0;
    return int64_t((scale - 1.0) * double(estimated_peak));
}

} // namespace

/**
 * The admission/review hook installed around every micro-batch of a
 * resilient accumulation step. It advances the fault clock, applies
 * micro-batch-scoped faults, and decides abort-vs-continue:
 *
 *   admit:  capacity drops apply first; then the micro-batch is
 *           refused if its estimated peak no longer fits the (possibly
 *           just shrunken) capacity, or an OOM is injected for it.
 *           An alloc-scale fault allocates ballast — real observed
 *           bytes — so under-prediction shows up in the device model
 *           exactly like a mis-estimated tensor would.
 *   review: the ballast is freed; if it pushed live usage over
 *           capacity the step aborts (the "actual OOM" the estimator
 *           failed to predict), as does any new over-capacity episode
 *           when the policy says to react to real OOMs.
 */
class RecoveryArbiter : public MicroBatchArbiter
{
  public:
    RecoveryArbiter(ResilientTrainer& owner, DeviceMemoryModel* device,
                    const RecoveryPolicy& policy,
                    const std::vector<MemoryEstimate>& estimates)
        : owner_(owner), device_(device), policy_(policy),
          estimates_(estimates)
    {
    }

    bool
    admit(size_t index, const MultiLayerBatch&) override
    {
        fault::Injector::beginMicroBatch(int64_t(index));
        episodes_at_admit_ = device_ ? device_->oomEpisodeCount() : 0;
        ballast_overshoot_ = false;

        double factor = 0.0;
        while (fault::Injector::takeCapacityDrop(&factor))
            owner_.applyCapacityDrop(factor);

        // Proactive admission check: the planner promised every
        // micro-batch's estimated peak fits the capacity it planned
        // against; if the capacity has shrunk since, refuse BEFORE
        // charging anything — that is the whole point of planning
        // analytically instead of trying on-device. The feature
        // cache's standing reservation is unavailable to training
        // tensors, so it tightens the check by exactly its size.
        if (device_ && device_->capacity() > 0 &&
            index < estimates_.size() &&
            estimates_[index].peak + owner_.cacheReservedBytes() >
                device_->capacity())
            return false;

        if (fault::Injector::takeInjectedOom())
            return false;

        double scale = 0.0;
        if (fault::Injector::takeAllocScale(&scale) && device_ &&
            index < estimates_.size()) {
            const int64_t bytes =
                ballastBytes(scale, estimates_[index].peak);
            if (bytes > 0) {
                obs::MemCategoryScope cat(
                    obs::MemCategory::Uncategorized);
                ballast_ = Tensor(
                    (bytes + int64_t(sizeof(float)) - 1) /
                        int64_t(sizeof(float)),
                    1);
                if (device_->capacity() > 0 &&
                    device_->liveBytes() > device_->capacity())
                    ballast_overshoot_ = true;
            }
        }
        return true;
    }

    bool
    review(size_t, const MultiLayerBatch&) override
    {
        ballast_ = Tensor();
        if (ballast_overshoot_) {
            ballast_overshoot_ = false;
            return false;
        }
        if (policy_.reactToActualOom && device_ &&
            device_->oomEpisodeCount() > episodes_at_admit_)
            return false;
        return true;
    }

  private:
    ResilientTrainer& owner_;
    DeviceMemoryModel* device_;
    const RecoveryPolicy& policy_;
    const std::vector<MemoryEstimate>& estimates_;
    Tensor ballast_;
    bool ballast_overshoot_ = false;
    int64_t episodes_at_admit_ = 0;
};

ResilientTrainer::ResilientTrainer(Trainer& trainer, GnnSpec spec,
                                   OutputPartitioner& partitioner,
                                   DeviceMemoryModel* device,
                                   RecoveryPolicy policy)
    : trainer_(trainer), partitioner_(partitioner), device_(device),
      planner_(std::move(spec), device ? device->capacity() : 0),
      policy_(policy)
{
}

int64_t
ResilientTrainer::cacheReservedBytes() const
{
    return cache_ ? cache_->reservedBytes() : 0;
}

void
ResilientTrainer::applyCapacityDrop(double factor)
{
    if (!device_)
        return;
    if (device_->capacity() <= 0) {
        BETTY_WARN_ONCE("ResilientTrainer: capacity-drop fault "
                        "ignored — device capacity is unlimited");
        return;
    }
    const int64_t next = std::max<int64_t>(
        1, int64_t(double(device_->capacity()) * factor));
    warn("ResilientTrainer: device capacity dropped from ",
         device_->capacity(), " to ", next, " bytes");
    obs::FlightRecorder::record(obs::FrCategory::Recovery,
                                "recover/capacity-drop",
                                device_->capacity(), next);
    device_->setCapacity(next);
}

void
ResilientTrainer::corruptFeatureRows(const MultiLayerBatch& full,
                                     double fraction)
{
    if (!features_ || features_->rows() == 0 || features_->cols() == 0)
        return;
    const auto& inputs = full.inputNodes();
    if (inputs.empty())
        return;
    const auto rows =
        fault::Injector::corruptRowPlan(int64_t(inputs.size()),
                                        fraction);
    const float garbage = std::numeric_limits<float>::quiet_NaN();
    const int64_t cols = features_->cols();
    for (int64_t idx : rows) {
        const int64_t node = inputs[size_t(idx)];
        if (node < 0 || node >= features_->rows())
            continue;
        std::fill_n(features_->data() + node * cols, size_t(cols),
                    garbage);
    }
}

void
ResilientTrainer::consumeDeviceSlow(int64_t epoch)
{
    if (!transfer_)
        return;
    // Heal a bounded degradation whose window has passed.
    if (slowActive_ && slowUntilEpoch_ > 0 && epoch > slowUntilEpoch_) {
        transfer_->setSlowdown(1.0);
        slowActive_ = false;
        slowUntilEpoch_ = 0;
        obs::FlightRecorder::record(obs::FrCategory::Fault,
                                    "fault/device-heal", epoch, 0);
        warn("ResilientTrainer: device-slow degradation healed at "
             "epoch ", epoch);
    }
    double factor = 0.0;
    int64_t device = -1;
    int64_t duration = 0;
    while (fault::Injector::takeDeviceSlow(&factor, &device,
                                           &duration)) {
        transfer_->setSlowdown(
            std::max(transfer_->slowdown(), factor));
        slowActive_ = true;
        slowUntilEpoch_ = duration > 0 ? epoch + duration - 1 : -1;
        obs::FlightRecorder::record(obs::FrCategory::Fault,
                                    "fault/device-slow", epoch,
                                    int64_t(factor * 1000.0));
        warn("ResilientTrainer: host link degraded by ", factor,
             "x at epoch ", epoch,
             duration > 0 ? " (bounded)" : " (permanent)");
    }
}

int64_t
ResilientTrainer::repairFeatureRows(const MultiLayerBatch& full)
{
    if (!features_ || features_->rows() == 0 || features_->cols() == 0)
        return 0;
    const int64_t cols = features_->cols();
    int64_t repaired = 0;
    for (int64_t node : full.inputNodes()) {
        if (node < 0 || node >= features_->rows())
            continue;
        float* row = features_->data() + node * cols;
        bool bad = false;
        for (int64_t c = 0; c < cols; ++c) {
            if (!std::isfinite(row[c])) {
                row[c] = 0.0f;
                bad = true;
            }
        }
        if (bad)
            ++repaired;
    }
    return repaired;
}

ResilientEpochResult
ResilientTrainer::trainEpoch(const MultiLayerBatch& full,
                             int64_t epoch, int32_t initial_k)
{
    obs::FlightRecorder::recordBegin("epoch/train", epoch,
                                     initial_k);
    fault::Injector::beginEpoch(epoch);

    // Epoch-scoped faults fire before any planning so the first plan
    // already sees the world as it is now.
    double factor = 0.0;
    while (fault::Injector::takeCapacityDrop(&factor))
        applyCapacityDrop(factor);

    consumeDeviceSlow(epoch);

    double fraction = 0.0;
    if (fault::Injector::takeCorruptFeatures(&fraction))
        corruptFeatureRows(full, fraction);
    if (policy_.repairCorruptFeatures && features_) {
        const int64_t repaired = repairFeatureRows(full);
        if (repaired > 0) {
            report_.corruptRowsRepaired += repaired;
            chargeRecover("recover.corrupt_rows_repaired", repaired);
            obs::FlightRecorder::record(obs::FrCategory::Recovery,
                                        "recover/repair-rows", epoch,
                                        repaired);
            warn("ResilientTrainer: repaired ", repaired,
                 " corrupt feature row(s) in epoch ", epoch);
        }
    }

    auto snapshotInjector = [this] {
        report_.transferRetries =
            fault::Injector::faultsInjected(
                fault::FaultKind::TransferFail) +
            fault::Injector::faultsInjected(
                fault::FaultKind::TransferFlaky);
        report_.faultsInjected = fault::Injector::faultsInjected();
    };

    ResilientEpochResult result;
    const int64_t num_outputs = int64_t(full.outputNodes().size());
    int32_t k = std::max<int32_t>(1, initial_k);
    int32_t attempts_left = policy_.maxReplanAttempts;
    // Replan-boundary flow edges: aborted attempt -> re-plan -> next
    // attempt, so the critpath DAG shows recovery work serialized
    // behind the failure that caused it.
    uint64_t prev_attempt_span = 0;
    for (;;) {
        planner_.setCapacity(device_ ? device_->capacity() : 0);
        planner_.setReservedBytes(cacheReservedBytes());
        uint64_t plan_span_id = 0;
        {
            obs::TraceSpan plan_span("epoch/plan", "partition");
            obs::Trace::recordFlow(prev_attempt_span, plan_span.id());
            plan_span_id = plan_span.id();
            result.plan =
                planner_.plan(full, partitioner_, k, policy_.maxK);
        }
        std::string give_up;
        if (!result.plan.fits) {
            give_up = "no K up to " + std::to_string(policy_.maxK) +
                      " fits the device capacity";
        } else {
            obs::TraceSpan attempt_span("resilient/attempt");
            obs::Trace::recordFlow(plan_span_id, attempt_span.id());
            prev_attempt_span = attempt_span.id();
            RecoveryArbiter arbiter(*this, device_, policy_,
                                    result.plan.estimates);
            trainer_.setArbiter(&arbiter);
            result.stats =
                trainer_.trainMicroBatches(result.plan.microBatches);
            trainer_.setArbiter(nullptr);
            if (!result.stats.aborted) {
                snapshotInjector();
                obs::FlightRecorder::recordEnd("epoch/train", epoch,
                                               result.plan.k);
                return result;
            }
            ++report_.oomRetries;
            chargeRecover("recover.oom_retries");
            obs::FlightRecorder::record(
                obs::FrCategory::Oom, "oom/epoch-abort", epoch,
                result.stats.abortedMicroBatch);
            if (attempts_left <= 0)
                give_up = "re-plan budget (" +
                          std::to_string(policy_.maxReplanAttempts) +
                          " attempts) exhausted";
            else if (result.plan.k >= policy_.maxK ||
                     int64_t(result.plan.k) >= num_outputs)
                give_up = "cannot partition finer than K=" +
                          std::to_string(result.plan.k);
        }
        if (!give_up.empty() && cache_ && cache_->reservedBytes() > 0) {
            // Last lever before skipping: caching is a luxury,
            // training tensors are not. Give the reservation back and
            // retry the SAME plan point — the freed bytes may make it
            // fit. Guarded by reservedBytes() > 0, so this fires at
            // most once per cache and cannot loop.
            const int64_t released = cache_->reservedBytes();
            cache_->releaseAll();
            obs::FlightRecorder::record(obs::FrCategory::Cache,
                                        "cache/release-reservation",
                                        epoch, released);
            warn("ResilientTrainer: ", give_up,
                 "; released feature-cache reservation (", released,
                 " bytes) and retrying before refusing any training "
                 "tensor");
            continue;
        }
        if (!give_up.empty()) {
            ++report_.batchesSkipped;
            chargeRecover("recover.batches_skipped");
            result.skipped = true;
            warn("ResilientTrainer: skipping epoch ", epoch, " — ",
                 give_up, " (parameters unchanged; run continues)");
            snapshotInjector();
            obs::FlightRecorder::record(obs::FrCategory::Recovery,
                                        "recover/skip-epoch", epoch,
                                        result.plan.k);
            obs::FlightRecorder::recordEnd("epoch/train", epoch,
                                           result.plan.k);
            return result;
        }
        --attempts_left;
        k = result.plan.k + 1;
        ++report_.replans;
        ++result.replans;
        chargeRecover("recover.replans");
        obs::FlightRecorder::record(obs::FrCategory::Recovery,
                                    "recover/replan", result.plan.k,
                                    k);
        warn("ResilientTrainer: epoch ", epoch,
             " aborted at micro-batch ",
             result.stats.abortedMicroBatch, " of K=",
             result.plan.k, "; re-planning at K=", k);
    }
}

} // namespace betty
