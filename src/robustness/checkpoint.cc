#include "robustness/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace betty {

namespace {

constexpr uint64_t kCheckpointMagic =
    0x42455454595F434BULL; // "BETTY_CK"
constexpr uint64_t kCheckpointVersion = 1;

/** Checkpoint tensors live on the host: keep their allocations out of
 * the device memory model even when a DeviceMemoryModel::Scope spans
 * the whole run (as train_cli's does). */
struct HostAllocationScope
{
    AllocationObserver* previous;
    HostAllocationScope() : previous(setAllocationObserver(nullptr)) {}
    ~HostAllocationScope() { setAllocationObserver(previous); }
    HostAllocationScope(const HostAllocationScope&) = delete;
    HostAllocationScope& operator=(const HostAllocationScope&) = delete;
};

/** FNV-1a over a byte range (the same hash the determinism tests
 * use for parameters, so corruption detection is self-consistent). */
uint64_t
fnv1a(const char* data, size_t size)
{
    uint64_t hash = 1469598103934665603ull;
    for (size_t i = 0; i < size; ++i) {
        hash ^= uint64_t(uint8_t(data[i]));
        hash *= 1099511628211ull;
    }
    return hash;
}

void
appendU64(std::string& out, uint64_t value)
{
    char bytes[sizeof(value)];
    std::memcpy(bytes, &value, sizeof(value));
    out.append(bytes, sizeof(value));
}

void
appendTensor(std::string& out, const Tensor& tensor)
{
    appendU64(out, uint64_t(tensor.rows()));
    appendU64(out, uint64_t(tensor.cols()));
    out.append(reinterpret_cast<const char*>(tensor.data()),
               size_t(tensor.bytes()));
}

/** Bounded in-memory reader over the checksummed payload. */
struct PayloadReader
{
    const char* cursor;
    size_t remaining;
    const std::string& path;
    IoStatus status;

    bool
    fail(IoError error, const std::string& message)
    {
        if (status.ok()) {
            status.error = error;
            status.message = message;
        }
        return false;
    }

    bool
    readRaw(void* out, size_t bytes, const char* what)
    {
        if (bytes > remaining)
            return fail(IoError::Truncated,
                        "'" + path + "' is truncated (while reading " +
                            std::string(what) + ")");
        std::memcpy(out, cursor, bytes);
        cursor += bytes;
        remaining -= bytes;
        return true;
    }

    bool
    readU64(uint64_t& value, const char* what)
    {
        return readRaw(&value, sizeof(value), what);
    }

    bool
    readTensor(Tensor& tensor, const char* what)
    {
        uint64_t rows = 0, cols = 0;
        if (!readU64(rows, what) || !readU64(cols, what))
            return false;
        if (rows > (uint64_t(1) << 32) || cols > (uint64_t(1) << 32) ||
            (cols > 0 &&
             rows > remaining / (cols * sizeof(float))))
            return fail(IoError::Truncated,
                        "'" + path + "': tensor '" +
                            std::string(what) +
                            "' larger than the file");
        tensor = Tensor(int64_t(rows), int64_t(cols));
        return tensor.numel() == 0 ||
               readRaw(tensor.data(), size_t(tensor.bytes()), what);
    }
};

} // namespace

IoStatus
saveCheckpoint(const TrainCheckpoint& checkpoint,
               const std::string& path)
{
    if (checkpoint.adamM.size() != checkpoint.params.size() ||
        checkpoint.adamV.size() != checkpoint.params.size())
        return {IoError::ShapeMismatch,
                "checkpoint moment count disagrees with parameter "
                "count"};

    std::string payload;
    appendU64(payload, uint64_t(checkpoint.epochsCompleted));
    appendU64(payload, uint64_t(checkpoint.lastK));
    appendU64(payload, checkpoint.samplerSeed);
    appendU64(payload, checkpoint.samplerCallIndex);
    appendU64(payload, uint64_t(checkpoint.adamStepCount));
    appendU64(payload, checkpoint.params.size());
    for (size_t i = 0; i < checkpoint.params.size(); ++i) {
        appendTensor(payload, checkpoint.params[i]);
        appendTensor(payload, checkpoint.adamM[i]);
        appendTensor(payload, checkpoint.adamV[i]);
    }

    std::string out;
    appendU64(out, kCheckpointMagic);
    appendU64(out, kCheckpointVersion);
    out += payload;
    appendU64(out, fnv1a(payload.data(), payload.size()));

    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (!file)
        return {IoError::WriteFailed,
                "cannot open '" + path + "' for writing"};
    const size_t written =
        std::fwrite(out.data(), 1, out.size(), file);
    const bool closed_ok = std::fclose(file) == 0;
    if (written != out.size() || !closed_ok)
        return {IoError::WriteFailed,
                "short write to '" + path + "'"};
    return {};
}

IoStatus
loadCheckpoint(TrainCheckpoint& checkpoint, const std::string& path)
{
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (!file)
        return {IoError::NotFound, "cannot open '" + path + "'"};
    std::string bytes;
    char buffer[1 << 16];
    size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0)
        bytes.append(buffer, got);
    std::fclose(file);

    // Frame: magic + version, payload, trailing checksum.
    if (bytes.size() < 3 * sizeof(uint64_t))
        return {IoError::Truncated,
                "'" + path + "' is too short to be a checkpoint"};
    uint64_t magic = 0, version = 0, stored_hash = 0;
    std::memcpy(&magic, bytes.data(), sizeof(magic));
    std::memcpy(&version, bytes.data() + sizeof(uint64_t),
                sizeof(version));
    std::memcpy(&stored_hash,
                bytes.data() + bytes.size() - sizeof(uint64_t),
                sizeof(stored_hash));
    if (magic != kCheckpointMagic)
        return {IoError::BadMagic,
                "'" + path + "' is not a Betty checkpoint file"};
    if (version != kCheckpointVersion)
        return {IoError::BadVersion,
                "'" + path +
                    "' has an unsupported checkpoint version"};

    const char* payload = bytes.data() + 2 * sizeof(uint64_t);
    const size_t payload_size = bytes.size() - 3 * sizeof(uint64_t);
    if (fnv1a(payload, payload_size) != stored_hash)
        return {IoError::CorruptValues,
                "'" + path +
                    "': checksum mismatch (truncated or corrupted "
                    "checkpoint)"};

    HostAllocationScope host_alloc;
    PayloadReader r{payload, payload_size, path, {}};
    TrainCheckpoint loaded;
    uint64_t epochs = 0, last_k = 0, adam_t = 0, num_params = 0;
    if (!r.readU64(epochs, "epoch cursor") ||
        !r.readU64(last_k, "last K") ||
        !r.readU64(loaded.samplerSeed, "sampler seed") ||
        !r.readU64(loaded.samplerCallIndex, "sampler call index") ||
        !r.readU64(adam_t, "adam step count") ||
        !r.readU64(num_params, "parameter count"))
        return r.status;
    loaded.epochsCompleted = int64_t(epochs);
    loaded.lastK = int64_t(last_k);
    loaded.adamStepCount = int64_t(adam_t);
    if (loaded.epochsCompleted < 0 || loaded.lastK < 1 ||
        loaded.adamStepCount < 0 || num_params > (1u << 20))
        return {IoError::CorruptValues,
                "'" + path + "': implausible checkpoint header"};
    loaded.params.resize(num_params);
    loaded.adamM.resize(num_params);
    loaded.adamV.resize(num_params);
    for (size_t i = 0; i < num_params; ++i) {
        if (!r.readTensor(loaded.params[i], "parameter") ||
            !r.readTensor(loaded.adamM[i], "adam m") ||
            !r.readTensor(loaded.adamV[i], "adam v"))
            return r.status;
        if (!loaded.adamM[i].sameShape(loaded.params[i]) ||
            !loaded.adamV[i].sameShape(loaded.params[i]))
            return {IoError::ShapeMismatch,
                    "'" + path + "': moment tensor " +
                        std::to_string(i) +
                        " does not match its parameter's shape"};
    }
    if (r.remaining != 0)
        return {IoError::CorruptValues,
                "'" + path + "': trailing bytes after the payload"};
    checkpoint = std::move(loaded);
    return {};
}

TrainCheckpoint
captureCheckpoint(const GnnModel& model, const Adam& adam,
                  int64_t epochs_completed, int64_t last_k,
                  uint64_t sampler_seed, uint64_t sampler_call_index)
{
    HostAllocationScope host_alloc;
    TrainCheckpoint checkpoint;
    checkpoint.epochsCompleted = epochs_completed;
    checkpoint.lastK = last_k;
    checkpoint.samplerSeed = sampler_seed;
    checkpoint.samplerCallIndex = sampler_call_index;
    checkpoint.adamStepCount = adam.stepCount();
    for (const auto& p : model.parameters()) {
        Tensor copy(p->value.rows(), p->value.cols());
        std::copy_n(p->value.data(), p->value.numel(), copy.data());
        checkpoint.params.push_back(std::move(copy));
    }
    auto copyAll = [](const std::vector<Tensor>& source,
                      std::vector<Tensor>& dest) {
        for (const Tensor& t : source) {
            Tensor copy(t.rows(), t.cols());
            std::copy_n(t.data(), t.numel(), copy.data());
            dest.push_back(std::move(copy));
        }
    };
    copyAll(adam.firstMoments(), checkpoint.adamM);
    copyAll(adam.secondMoments(), checkpoint.adamV);
    return checkpoint;
}

IoStatus
restoreCheckpoint(const TrainCheckpoint& checkpoint, GnnModel& model,
                  Adam& adam)
{
    const auto& params = model.parameters();
    if (checkpoint.params.size() != params.size())
        return {IoError::ShapeMismatch,
                "checkpoint has " +
                    std::to_string(checkpoint.params.size()) +
                    " parameters, the model has " +
                    std::to_string(params.size())};
    for (size_t i = 0; i < params.size(); ++i)
        if (!checkpoint.params[i].sameShape(params[i]->value))
            return {IoError::ShapeMismatch,
                    "checkpoint parameter " + std::to_string(i) +
                        " shape differs from the model's"};

    // Moments are validated (and copied) by Adam itself; do that
    // FIRST so a bad optimizer section leaves the weights untouched.
    HostAllocationScope host_alloc;
    std::vector<Tensor> m, v;
    auto copyAll = [](const std::vector<Tensor>& source,
                      std::vector<Tensor>& dest) {
        for (const Tensor& t : source) {
            Tensor copy(t.rows(), t.cols());
            std::copy_n(t.data(), t.numel(), copy.data());
            dest.push_back(std::move(copy));
        }
    };
    copyAll(checkpoint.adamM, m);
    copyAll(checkpoint.adamV, v);
    if (!adam.restoreState(checkpoint.adamStepCount, std::move(m),
                           std::move(v)))
        return {IoError::ShapeMismatch,
                "checkpoint optimizer state does not match the "
                "model's parameters"};

    for (size_t i = 0; i < params.size(); ++i)
        std::copy_n(checkpoint.params[i].data(),
                    checkpoint.params[i].numel(),
                    params[i]->value.data());
    return {};
}

} // namespace betty
