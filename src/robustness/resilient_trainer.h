/**
 * @file
 * Mid-epoch OOM recovery via re-planning (docs/ROBUSTNESS.md).
 *
 * The ResilientTrainer wraps a Trainer + MemoryAwarePlanner pair with
 * a bounded retry loop:
 *
 *   1. Plan the epoch's micro-batches at the current device capacity.
 *   2. Run the gradient-accumulation step with an installed
 *      MicroBatchArbiter that aborts BEFORE a micro-batch whose
 *      estimated peak no longer fits (capacity can shrink under us —
 *      a co-tenant, or an injected fault::CapacityDrop), on an
 *      injected OOM, or after a simulated estimator under-prediction
 *      (alloc-scale ballast) overshoots capacity.
 *   3. On abort the trainer has already rolled the gradients back
 *      (one optimizer step per accumulation step means zeroGrad is a
 *      complete, deterministic rollback) — re-plan at K+1 and retry.
 *   4. When retries are exhausted or even max-K does not fit, SKIP
 *      the epoch with a report instead of crashing.
 *
 * Determinism: a run that recovers from a capacity drop at K0 and
 * re-plans to K1 produces bit-identical parameters to a run planned
 * at K1 from the start under the shrunken capacity — the rollback is
 * total and partitioning is a pure function of (batch, K) on a cold
 * start. tests/test_resilient_trainer.cc proves the param-hash match.
 *
 * Transfer faults are keyed to each micro-batch's logical
 * program-order position (Trainer passes it into the retry protocol),
 * so fault schedules are exact even when a pipelined prefetch worker
 * gathers ahead of the clock — no single-thread workaround needed.
 */
#ifndef BETTY_ROBUSTNESS_RESILIENT_TRAINER_H
#define BETTY_ROBUSTNESS_RESILIENT_TRAINER_H

#include <cstdint>

#include "core/betty.h"
#include "memory/device_memory.h"
#include "tensor/tensor.h"
#include "train/trainer.h"
#include "util/fault.h"

namespace betty {

class FeatureCache;

/** Bounds and switches of the recovery loop. */
struct RecoveryPolicy
{
    /** Re-plan at K+1 at most this many times per epoch. */
    int32_t maxReplanAttempts = 8;

    /** Upper bound handed to the planner's K search. */
    int32_t maxK = 4096;

    /**
     * Also abort-and-re-plan when a micro-batch's ACTUAL usage opened
     * a new over-capacity episode (not just injected faults). Off by
     * default: the estimator's residuals are telemetry, and reacting
     * to every transient overshoot would change fault-free behaviour.
     */
    bool reactToActualOom = false;

    /** Detect and zero non-finite gathered feature rows (the
     * corrupt-features fault) instead of training on NaN garbage. */
    bool repairCorruptFeatures = true;
};

/** What one resilient epoch did (stats + the plan that survived). */
struct ResilientEpochResult
{
    /** Stats of the final (successful) accumulation step; default-
     * initialized when the epoch was skipped. */
    EpochStats stats;

    /** The plan that completed (or the last attempted one). */
    PlanResult plan;

    /** Re-plans performed within this epoch. */
    int64_t replans = 0;

    /** True when recovery was exhausted and the epoch was skipped
     * (parameters unchanged); the run continues — never crashes. */
    bool skipped = false;
};

/** Cumulative recovery activity across the run (run-report section). */
struct RecoveryReport
{
    int64_t replans = 0;
    int64_t oomRetries = 0;
    int64_t transferRetries = 0;
    int64_t batchesSkipped = 0;
    int64_t corruptRowsRepaired = 0;
    int64_t faultsInjected = 0;
};

/** The recovery loop around Trainer::trainMicroBatches (file doc). */
class ResilientTrainer
{
  public:
    /**
     * @param trainer The wrapped trainer (arbiter slot must be free).
     * @param spec Model description for the re-planner's estimator.
     * @param partitioner Output partitioner used for re-planning.
     * @param device Device model whose capacity gates admission; may
     * be null (no capacity checks — only injected faults recover).
     * All references are borrowed and must outlive this object.
     */
    ResilientTrainer(Trainer& trainer, GnnSpec spec,
                     OutputPartitioner& partitioner,
                     DeviceMemoryModel* device,
                     RecoveryPolicy policy = {});

    /**
     * Writable feature storage (Dataset::features) the corrupt-
     * features fault poisons and the repair pass scans. Optional —
     * without it that fault kind is a no-op.
     */
    void setFeatureSource(Tensor* features) { features_ = features; }

    /**
     * Feature cache whose device reservation the recovery loop
     * manages (cache/feature_cache.h). Planning accounts for the
     * reservation, admission checks estimated peaks against the
     * capacity MINUS the reservation, and when even that does not fit
     * the reservation is released — caching is a luxury; training
     * tensors are not — BEFORE the epoch is skipped. Borrowed, may be
     * null.
     */
    void setFeatureCache(FeatureCache* cache) { cache_ = cache; }

    /**
     * Transfer model the device-slow fault degrades (the simulated
     * host link). Borrowed, may be null — without it device-slow is a
     * no-op on the single-device path. The fault is attribution-only:
     * it inflates simulated transfer seconds, never numerics.
     */
    void setTransferModel(TransferModel* transfer)
    {
        transfer_ = transfer;
    }

    /**
     * One resilient epoch over @p full: advance the fault clock to
     * @p epoch (1-based), apply epoch-scoped faults, then
     * plan/train/re-plan per the policy starting from @p initial_k.
     */
    ResilientEpochResult trainEpoch(const MultiLayerBatch& full,
                                    int64_t epoch, int32_t initial_k);

    /** Cumulative recovery counters (mirrors the recover.* metrics). */
    const RecoveryReport& report() const { return report_; }

  private:
    friend class RecoveryArbiter;

    /** Bytes the feature cache currently reserves on the device
     * (0 without a cache). Re-read per admission: a release mid-run
     * must loosen later checks immediately. */
    int64_t cacheReservedBytes() const;

    /** Shrink the device capacity by @p factor (CapacityDrop). */
    void applyCapacityDrop(double factor);

    /** Poison the scheduled fraction of @p full's input-node feature
     * rows with NaNs (the fault's delivery side). */
    void corruptFeatureRows(const MultiLayerBatch& full,
                            double fraction);

    /** Scan @p full's input-node rows and zero non-finite values;
     * returns the number of rows repaired. */
    int64_t repairFeatureRows(const MultiLayerBatch& full);

    /** Consume pending device-slow faults (degrade the transfer
     * model) and heal expired ones; called at each epoch start. */
    void consumeDeviceSlow(int64_t epoch);

    Trainer& trainer_;
    OutputPartitioner& partitioner_;
    DeviceMemoryModel* device_;
    MemoryAwarePlanner planner_;
    RecoveryPolicy policy_;
    Tensor* features_ = nullptr;
    FeatureCache* cache_ = nullptr;
    TransferModel* transfer_ = nullptr;
    /** Last epoch the current device-slow degradation covers;
     * -1 = permanent, 0 = no degradation active. */
    int64_t slowUntilEpoch_ = 0;
    bool slowActive_ = false;
    RecoveryReport report_;
};

} // namespace betty

#endif // BETTY_ROBUSTNESS_RESILIENT_TRAINER_H
