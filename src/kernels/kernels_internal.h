/**
 * @file
 * Backend entry points shared between kernels.cc (dispatch + scalar
 * reference) and avx2.cc (vectorized). Not installed — include only
 * from within src/kernels/.
 */
#ifndef BETTY_KERNELS_KERNELS_INTERNAL_H
#define BETTY_KERNELS_KERNELS_INTERNAL_H

#include <cstdint>

#include "kernels/kernels.h"

namespace betty::kernels::detail {

/** @name Scalar reference backend (kernels.cc)
 * Loop-for-loop identical to the pre-kernel tensor.cc / autograd.cc
 * code; the golden-hash tiers and differential tests anchor on it.
 */
/** @{ */
void gemmScalar(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n);
void gemmTransAScalar(const float* a, const float* b, float* c,
                      int64_t m, int64_t k, int64_t n);
void gemmTransBScalar(const float* a, const float* b, float* c,
                      int64_t m, int64_t k, int64_t n);
void gatherAggregateScalar(const float* x, int64_t rows, int64_t cols,
                           const int64_t* sources,
                           const int64_t* offsets, int64_t segments,
                           Reduce reduce, float* out, int64_t* argmax);
void gatherAggregateBackwardScalar(const float* grad_out, int64_t cols,
                                   const int64_t* sources,
                                   const int64_t* offsets,
                                   int64_t segments, bool mean,
                                   float* grad_x);
void addInPlaceScalar(float* y, const float* x, int64_t n);
void addScaledInPlaceScalar(float* y, const float* x, float alpha,
                            int64_t n);
void scaleInPlaceScalar(float* y, float alpha, int64_t n);
/** @} */

#ifdef BETTY_KERNELS_HAVE_AVX2
/** @name AVX2/FMA backend (avx2.cc, compiled with -mavx2 -mfma)
 * Numerics per the kernels.h contract: elementwise and Max reductions
 * bit-exact with scalar, accumulating kernels within the documented
 * forward error bound.
 */
/** @{ */
void gemmAvx2(const float* a, const float* b, float* c, int64_t m,
              int64_t k, int64_t n);
void gemmTransAAvx2(const float* a, const float* b, float* c,
                    int64_t m, int64_t k, int64_t n);
void gemmTransBAvx2(const float* a, const float* b, float* c,
                    int64_t m, int64_t k, int64_t n);
void gatherAggregateAvx2(const float* x, int64_t rows, int64_t cols,
                         const int64_t* sources,
                         const int64_t* offsets, int64_t segments,
                         Reduce reduce, float* out, int64_t* argmax);
void gatherAggregateBackwardAvx2(const float* grad_out, int64_t cols,
                                 const int64_t* sources,
                                 const int64_t* offsets,
                                 int64_t segments, bool mean,
                                 float* grad_x);
void addInPlaceAvx2(float* y, const float* x, int64_t n);
void addScaledInPlaceAvx2(float* y, const float* x, float alpha,
                          int64_t n);
void scaleInPlaceAvx2(float* y, float alpha, int64_t n);
/** @} */
#endif // BETTY_KERNELS_HAVE_AVX2

} // namespace betty::kernels::detail

#endif // BETTY_KERNELS_KERNELS_INTERNAL_H
