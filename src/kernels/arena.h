/**
 * @file
 * Bump/arena allocator for forward/backward temporaries.
 *
 * A micro-batch's computation graph allocates dozens to thousands of
 * short-lived tensors (op outputs, intermediate gradients, the
 * softmax probability scratch) that all die together when the root
 * NodePtr is dropped. Routing their storage through a per-trainer
 * arena turns that churn into pointer bumps: after the first
 * micro-batch has grown the chunk list to its high-water mark, a
 * micro-batch performs O(1) heap allocations (tests/test_arena.cc
 * pins this down with the tensor heap-allocation counter).
 *
 * Lifecycle contract (docs/KERNELS.md "Arena lifecycle"):
 *
 *   1. The owner activates the arena for the current thread with an
 *      ArenaScope around exactly the region whose tensors die before
 *      the next reset() — in the trainers, one micro-batch's
 *      forward + backward.
 *   2. Storage that must survive the scope (parameter gradients,
 *      optimizer moments) allocates under an ArenaSuspend.
 *   3. After the graph is released, the owner calls reset(): the
 *      cursor returns to the first chunk, chunks are kept (that is
 *      the high-water reuse), and under AddressSanitizer the
 *      reclaimed bytes are poisoned so any use-after-reset faults
 *      immediately.
 *
 * Tensor storage that draws from the arena registers itself with
 * noteLiveAttach()/noteLiveDetach(); reset() panics if any such
 * handle is still alive — an escape would otherwise become a silent
 * use-after-reset.
 *
 * Thread model: an Arena is single-threaded by design (one arena per
 * trainer, activated on the training thread). Distinct arenas on
 * distinct pool lanes are independent — tests/test_arena.cc runs that
 * under TSan. The ArenaScope stack itself is thread-local, so a pool
 * worker never observes the training thread's arena.
 */
#ifndef BETTY_KERNELS_ARENA_H
#define BETTY_KERNELS_ARENA_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace betty::kernels {

/** Default allocation alignment: one cache line, enough for AVX2
 * (32-byte) loads with room for AVX-512 should it ever arrive. */
constexpr int64_t kArenaAlign = 64;

/** Bump allocator over a growable list of heap chunks (file comment). */
class Arena
{
  public:
    /** @param chunk_bytes Granularity of chunk growth (>= 4 KiB). */
    explicit Arena(int64_t chunk_bytes = int64_t(1) << 20);
    ~Arena();

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    /**
     * @p bytes of storage aligned to @p align (a power of two
     * <= kArenaAlign). Zero-byte requests return a valid unique
     * pointer. Never returns nullptr — chunk exhaustion grows the
     * chunk list.
     */
    void* allocate(int64_t bytes, int64_t align = kArenaAlign);

    /**
     * Reclaim every allocation at once: cursor back to the first
     * chunk, chunks retained for reuse. Panics if live handles are
     * still attached. Under ASan the reclaimed regions are poisoned.
     */
    void reset();

    /** reset() + return all chunks to the heap (high-water release). */
    void releaseAll();

    /** @name Live-handle discipline (Tensor storage registration). */
    /** @{ */
    void noteLiveAttach() { ++live_handles_; }
    void noteLiveDetach() { --live_handles_; }
    int64_t liveHandles() const { return live_handles_; }
    /** @} */

    /** @name Introspection */
    /** @{ */
    /** Bytes handed out since the last reset (including padding). */
    int64_t inUseBytes() const { return in_use_bytes_; }
    /** Largest inUseBytes() ever observed. */
    int64_t highWaterBytes() const { return high_water_bytes_; }
    /** Bytes currently reserved from the heap across all chunks. */
    int64_t reservedBytes() const { return reserved_bytes_; }
    /** Lifetime count of heap chunk allocations. */
    int64_t chunkAllocs() const { return chunk_allocs_; }
    /** Lifetime count of reset() calls. */
    int64_t resets() const { return resets_; }
    /** Lifetime count of allocate() calls. */
    int64_t allocations() const { return allocations_; }
    /** @} */

  private:
    struct Chunk
    {
        char* data = nullptr;
        int64_t size = 0;
        int64_t used = 0;
    };

    /** Append a chunk of at least @p min_bytes; returns its index. */
    std::size_t growChunk(int64_t min_bytes);

    int64_t chunk_bytes_;
    std::vector<Chunk> chunks_;
    std::size_t cursor_ = 0; ///< index of the chunk currently bumping
    int64_t live_handles_ = 0;
    int64_t in_use_bytes_ = 0;
    int64_t high_water_bytes_ = 0;
    int64_t reserved_bytes_ = 0;
    int64_t chunk_allocs_ = 0;
    int64_t resets_ = 0;
    int64_t allocations_ = 0;
};

/**
 * The arena active on the calling thread, or nullptr. Tensor storage
 * consults this at allocation time (tensor/tensor.cc).
 */
Arena* currentArena();

/** RAII: activate @p arena on this thread for the scope's lifetime. */
class ArenaScope
{
  public:
    explicit ArenaScope(Arena& arena);
    ~ArenaScope();

    ArenaScope(const ArenaScope&) = delete;
    ArenaScope& operator=(const ArenaScope&) = delete;

  private:
    Arena* previous_;
};

/**
 * RAII: deactivate any current arena for the scope's lifetime — used
 * for allocations that must outlive the enclosing ArenaScope
 * (parameter gradients in ag::Node::ensureGrad, optimizer moments).
 */
class ArenaSuspend
{
  public:
    ArenaSuspend();
    ~ArenaSuspend();

    ArenaSuspend(const ArenaSuspend&) = delete;
    ArenaSuspend& operator=(const ArenaSuspend&) = delete;

  private:
    Arena* previous_;
};

} // namespace betty::kernels

#endif // BETTY_KERNELS_ARENA_H
