/**
 * @file
 * Runtime CPU dispatch for the compute kernels (docs/KERNELS.md).
 *
 * Two backends implement every kernel in kernels/kernels.h:
 *
 *  - Scalar: the original loops, moved verbatim from tensor.cc /
 *    autograd.cc. This is the bit-exact reference path — the
 *    golden-hash and differential test tiers run on it, and it is the
 *    process default.
 *  - Avx2: AVX2/FMA vectorized (kernels/avx2.cc), compiled only when
 *    the toolchain supports -mavx2 -mfma and selected only when the
 *    running CPU reports both features.
 *
 * Selection, with flag > environment > default precedence via
 * util/env_config.h:
 *
 *   BETTY_KERNELS=scalar   always the reference path (default)
 *   BETTY_KERNELS=avx2     vectorized path; if the binary or CPU
 *                          lacks AVX2+FMA, falls back to scalar with
 *                          a single warnOnce
 *   BETTY_KERNELS=auto     avx2 when available, else scalar silently
 *
 * Any other value is fatal (strict parsing, like every BETTY_* knob).
 * The resolved backend is cached; setKernelMode() (tests, CLI flags)
 * re-resolves. kernel.backend_avx2 gauges the active backend and
 * kernel.dispatch.fallbacks counts avx2-requested-but-unavailable
 * resolutions (at most one warning is printed per process).
 */
#ifndef BETTY_KERNELS_DISPATCH_H
#define BETTY_KERNELS_DISPATCH_H

#include <string>

namespace betty::kernels {

/** What the user asked for (BETTY_KERNELS / --kernels). */
enum class KernelMode { Scalar, Avx2, Auto };

/** What the process actually runs. */
enum class Backend { Scalar, Avx2 };

/** Strict vocabulary parse; returns false on anything unknown. */
bool parseKernelMode(const std::string& text, KernelMode* out);

/** "scalar" | "avx2" | "auto". */
const char* kernelModeName(KernelMode mode);

/** "scalar" | "avx2". */
const char* backendName(Backend backend);

/**
 * The requested mode: the last setKernelMode() value, else
 * BETTY_KERNELS, else Scalar. A set-but-malformed environment value
 * is fatal, naming the variable.
 */
KernelMode kernelMode();

/** Override the mode (CLI flags, tests) and re-resolve the backend. */
void setKernelMode(KernelMode mode);

/** True if this binary contains the AVX2 kernel translation unit. */
bool builtWithAvx2();

/** True if the running CPU reports AVX2 and FMA. */
bool cpuSupportsAvx2();

/**
 * The backend the current mode resolves to. Cached after the first
 * call (one atomic load per kernel invocation); re-resolved by
 * setKernelMode(). Requesting avx2 without hardware/toolchain
 * support warns once per process and resolves to Scalar.
 */
Backend activeBackend();

/**
 * Test hook: force cpuSupportsAvx2() to @p supported (-1 restores
 * the real CPUID answer) and re-resolve. Lets the fallback path run
 * on AVX2 hardware.
 */
void setCpuSupportsAvx2ForTest(int supported);

/** Test hook: forget any cached/set mode so the next kernelMode()
 * call re-reads BETTY_KERNELS (death tests for malformed values). */
void resetKernelModeForTest();

/** Lifetime count of avx2-requested-but-unavailable resolutions. */
int64_t dispatchFallbackCount();

} // namespace betty::kernels

#endif // BETTY_KERNELS_DISPATCH_H
