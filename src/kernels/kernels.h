/**
 * @file
 * The compute hot-path kernels behind tensor/tensor.cc and
 * tensor/autograd.cc, dispatched at runtime between the scalar
 * reference backend and the AVX2/FMA backend (kernels/dispatch.h).
 *
 * Everything here works on raw row-major float32 buffers so both the
 * Tensor layer and the trainer's host-side staging gather
 * (train/trainer.cc) can call in without materializing wrappers.
 *
 * Numeric contract (docs/KERNELS.md "ULP policy"):
 *  - The scalar backend is bit-identical to the pre-kernel code.
 *  - gatherRows / scatterAddRows / addInPlace / addScaledInPlace /
 *    scaleInPlace / gatherAggregate Max are bit-identical across
 *    backends (no reassociation; max uses the same `v > best`
 *    comparison chain in both).
 *  - gemm* and gatherAggregate Sum/Mean keep the scalar accumulation
 *    ORDER on the AVX2 path but fuse multiply+add (FMA) and, for
 *    gemmTransB, accumulate in float lanes instead of one double —
 *    results agree within the BLAS-style forward error bound
 *    |avx2 - scalar| <= C * depth * eps * ||inputs|| that
 *    tests/test_kernels.cc enforces over randomized shapes.
 */
#ifndef BETTY_KERNELS_KERNELS_H
#define BETTY_KERNELS_KERNELS_H

#include <cstdint>

namespace betty::kernels {

/** Reduction of a fused gather-aggregate (nn Mean/Sum/Pool paths). */
enum class Reduce { Sum, Mean, Max };

/** @name Cache-blocked GEMM
 * All variants ACCUMULATE into @p c — callers zero it first when
 * overwrite semantics are wanted (that is what the tensor.cc
 * matmul* entry points do). Shapes use the non-transposed logical
 * dimensions: c is m x n.
 */
/** @{ */

/** c[m,n] += a[m,k] * b[k,n]. */
void gemm(const float* a, const float* b, float* c, int64_t m,
          int64_t k, int64_t n);

/** c[m,n] += aT[k,m]ᵀ * b[k,n] (a stored k x m). */
void gemmTransA(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n);

/** c[m,n] += a[m,k] * bT[n,k]ᵀ (b stored n x k). */
void gemmTransB(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n);

/** @} */

/** @name Fused gather-aggregate over CSR blocks
 * out[s,:] = reduce over edges e in [offsets[s], offsets[s+1]) of
 * x[sources[e],:] — the DGL-style fused message-passing kernel: the
 * [edges, cols] gather is never materialized. offsets has
 * segments + 1 entries; empty segments produce zero rows. Mean
 * scales every contribution by 1/degree as it accumulates (matching
 * the historical autograd op bit-for-bit on the scalar path). Max
 * records the winning source row per (segment, column) in
 * @p argmax (segments * cols entries, -1 for empty segments) for
 * the backward pass.
 */
/** @{ */

void gatherAggregate(const float* x, int64_t rows, int64_t cols,
                     const int64_t* sources,
                     const int64_t* offsets, int64_t segments,
                     Reduce reduce, float* out,
                     int64_t* argmax = nullptr);

/** Backward of Sum/Mean: grad_x[sources[e],:] += scale * grad_out[s,:]. */
void gatherAggregateBackward(const float* grad_out, int64_t cols,
                             const int64_t* sources,
                             const int64_t* offsets,
                             int64_t segments, bool mean,
                             float* grad_x);

/** @} */

/** @name Row movement */
/** @{ */

/** out[i,:] = x[indices[i],:]; indices are asserted in [0, rows). */
void gatherRows(const float* x, int64_t rows, int64_t cols,
                const int64_t* indices, int64_t count, float* out);

/** grad_x[indices[i],:] += grad[i,:] (gatherRows backward). */
void scatterAddRows(const float* grad, int64_t cols,
                    const int64_t* indices, int64_t count,
                    float* grad_x);

/** @} */

/** @name Elementwise (bit-exact across backends) */
/** @{ */

/** y[i] += x[i]. */
void addInPlace(float* y, const float* x, int64_t n);

/** y[i] += alpha * x[i] (mul then add — no FMA, to stay bit-exact
 * with the scalar reference). */
void addScaledInPlace(float* y, const float* x, float alpha,
                      int64_t n);

/** y[i] *= alpha. */
void scaleInPlace(float* y, float alpha, int64_t n);

/** @} */

} // namespace betty::kernels

#endif // BETTY_KERNELS_KERNELS_H
