/**
 * @file
 * AVX2/FMA backend. This translation unit is the only one compiled
 * with -mavx2 -mfma (see src/kernels/CMakeLists.txt); nothing here
 * runs unless dispatch.cc verified the CPU reports both features.
 *
 * Numeric design (docs/KERNELS.md): every vectorized loop keeps the
 * SCALAR ACCUMULATION ORDER per output element — vector lanes run
 * across output columns, never across the reduction axis, so each
 * element sees its contributions in exactly the scalar sequence.
 * The only differences from the reference are (a) FMA fusing the
 * multiply-add in gemm/gemmTransA/aggregate sums, and (b) gemmTransB
 * accumulating in two double lanes instead of one. Elementwise ops
 * and Max reductions use the same per-element operations as scalar
 * and are bit-exact.
 */
#include "kernels/kernels_internal.h"

#ifdef BETTY_KERNELS_HAVE_AVX2

#include <immintrin.h>

#include <cstdint>
#include <limits>

#include "util/logging.h"

namespace betty::kernels::detail {

namespace {

/** Source row of edge @p e (mirror of the scalar backend's helper). */
inline int64_t
sourceRow(const int64_t* sources, int64_t e)
{
    return sources ? sources[e] : e;
}

/** Horizontal sum of a 4-lane double vector. */
inline double
hsum(__m256d v)
{
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d pair = _mm_add_pd(lo, hi);
    const __m128d swapped = _mm_unpackhi_pd(pair, pair);
    return _mm_cvtsd_f64(_mm_add_sd(pair, swapped));
}

} // namespace

void
gemmAvx2(const float* a, const float* b, float* c, int64_t m,
         int64_t k, int64_t n)
{
    // Register-blocked i-k-j: a 32-column C tile stays in four ymm
    // accumulators across the whole k reduction, so each C element is
    // written once instead of k times and B streams through cache
    // row-by-row. The aval == 0 skip (ReLU sparsity) is preserved.
    for (int64_t i = 0; i < m; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        int64_t j = 0;
        for (; j + 32 <= n; j += 32) {
            float* ctile = crow + j;
            __m256 c0 = _mm256_loadu_ps(ctile);
            __m256 c1 = _mm256_loadu_ps(ctile + 8);
            __m256 c2 = _mm256_loadu_ps(ctile + 16);
            __m256 c3 = _mm256_loadu_ps(ctile + 24);
            for (int64_t kk = 0; kk < k; ++kk) {
                const float aval = arow[kk];
                if (aval == 0.0f)
                    continue;
                const __m256 av = _mm256_set1_ps(aval);
                const float* btile = b + kk * n + j;
                c0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(btile), c0);
                c1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(btile + 8),
                                     c1);
                c2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(btile + 16),
                                     c2);
                c3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(btile + 24),
                                     c3);
            }
            _mm256_storeu_ps(ctile, c0);
            _mm256_storeu_ps(ctile + 8, c1);
            _mm256_storeu_ps(ctile + 16, c2);
            _mm256_storeu_ps(ctile + 24, c3);
        }
        for (; j + 8 <= n; j += 8) {
            __m256 c0 = _mm256_loadu_ps(crow + j);
            for (int64_t kk = 0; kk < k; ++kk) {
                const float aval = arow[kk];
                if (aval == 0.0f)
                    continue;
                c0 = _mm256_fmadd_ps(_mm256_set1_ps(aval),
                                     _mm256_loadu_ps(b + kk * n + j),
                                     c0);
            }
            _mm256_storeu_ps(crow + j, c0);
        }
        if (j < n) {
            for (int64_t kk = 0; kk < k; ++kk) {
                const float aval = arow[kk];
                if (aval == 0.0f)
                    continue;
                const float* brow = b + kk * n;
                for (int64_t jj = j; jj < n; ++jj)
                    crow[jj] += aval * brow[jj];
            }
        }
    }
}

void
gemmTransAAvx2(const float* a, const float* b, float* c, int64_t m,
               int64_t k, int64_t n)
{
    // k-outer like the scalar reference (C rows accumulate in memory
    // across the k loop — per-element k order preserved).
    for (int64_t kk = 0; kk < k; ++kk) {
        const float* arow = a + kk * m;
        const float* brow = b + kk * n;
        for (int64_t i = 0; i < m; ++i) {
            const float aval = arow[i];
            if (aval == 0.0f)
                continue;
            const __m256 av = _mm256_set1_ps(aval);
            float* crow = c + i * n;
            int64_t j = 0;
            for (; j + 8 <= n; j += 8)
                _mm256_storeu_ps(
                    crow + j,
                    _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + j),
                                    _mm256_loadu_ps(crow + j)));
            for (; j < n; ++j)
                crow[j] += aval * brow[j];
        }
    }
}

void
gemmTransBAvx2(const float* a, const float* b, float* c, int64_t m,
               int64_t k, int64_t n)
{
    // Dot products accumulate in two 4-lane DOUBLE vectors to stay
    // within rounding noise of the scalar reference's single double
    // accumulator (the lane split reassociates, but in double the
    // residual is far below float resolution).
    for (int64_t i = 0; i < m; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (int64_t j = 0; j < n; ++j) {
            const float* brow = b + j * k;
            __m256d acc_lo = _mm256_setzero_pd();
            __m256d acc_hi = _mm256_setzero_pd();
            int64_t kk = 0;
            for (; kk + 8 <= k; kk += 8) {
                const __m256 av = _mm256_loadu_ps(arow + kk);
                const __m256 bv = _mm256_loadu_ps(brow + kk);
                acc_lo = _mm256_fmadd_pd(
                    _mm256_cvtps_pd(_mm256_castps256_ps128(av)),
                    _mm256_cvtps_pd(_mm256_castps256_ps128(bv)),
                    acc_lo);
                acc_hi = _mm256_fmadd_pd(
                    _mm256_cvtps_pd(_mm256_extractf128_ps(av, 1)),
                    _mm256_cvtps_pd(_mm256_extractf128_ps(bv, 1)),
                    acc_hi);
            }
            double acc = hsum(_mm256_add_pd(acc_lo, acc_hi));
            for (; kk < k; ++kk)
                acc += double(arow[kk]) * double(brow[kk]);
            crow[j] += static_cast<float>(acc);
        }
    }
}

void
gatherAggregateAvx2(const float* x, int64_t rows, int64_t cols,
                    const int64_t* sources, const int64_t* offsets,
                    int64_t segments, Reduce reduce, float* out,
                    int64_t* argmax)
{
    if (reduce == Reduce::Max) {
        BETTY_ASSERT(rows <= std::numeric_limits<int32_t>::max(),
                     "Max aggregation row index exceeds 32-bit lane");
        for (int64_t s = 0; s < segments; ++s) {
            const int64_t begin = offsets[s], end = offsets[s + 1];
            float* orow = out + s * cols;
            int64_t* arow = argmax ? argmax + s * cols : nullptr;
            int64_t j = 0;
            for (; j + 8 <= cols; j += 8) {
                // Lane semantics mirror the scalar chain exactly:
                // take the first edge unconditionally (idx still -1),
                // then strict v > best — so a leading NaN sticks and
                // later NaNs lose, matching the reference bit-for-bit.
                __m256 best = _mm256_setzero_ps();
                __m256i idx = _mm256_set1_epi32(-1);
                for (int64_t e = begin; e < end; ++e) {
                    const int64_t src = sourceRow(sources, e);
                    BETTY_ASSERT(src >= 0 && src < rows,
                                 "source index out of range");
                    const __m256 v =
                        _mm256_loadu_ps(x + src * cols + j);
                    const __m256 first = _mm256_castsi256_ps(
                        _mm256_cmpeq_epi32(idx,
                                           _mm256_set1_epi32(-1)));
                    const __m256 gt =
                        _mm256_cmp_ps(v, best, _CMP_GT_OQ);
                    const __m256 take = _mm256_or_ps(first, gt);
                    best = _mm256_blendv_ps(best, v, take);
                    idx = _mm256_blendv_epi8(
                        idx, _mm256_set1_epi32(int32_t(src)),
                        _mm256_castps_si256(take));
                }
                // Empty segments: idx lanes stay -1 and best stays 0,
                // so the masked store below writes the zero row.
                const __m256 valid = _mm256_castsi256_ps(
                    _mm256_cmpgt_epi32(idx, _mm256_set1_epi32(-1)));
                _mm256_storeu_ps(
                    orow + j,
                    _mm256_and_ps(best, valid));
                if (arow) {
                    const __m128i lo = _mm256_castsi256_si128(idx);
                    const __m128i hi =
                        _mm256_extracti128_si256(idx, 1);
                    _mm256_storeu_si256(
                        reinterpret_cast<__m256i*>(arow + j),
                        _mm256_cvtepi32_epi64(lo));
                    _mm256_storeu_si256(
                        reinterpret_cast<__m256i*>(arow + j + 4),
                        _mm256_cvtepi32_epi64(hi));
                }
            }
            for (; j < cols; ++j) {
                float best = 0.0f;
                int64_t best_row = -1;
                for (int64_t e = begin; e < end; ++e) {
                    const int64_t src = sourceRow(sources, e);
                    const float v = x[src * cols + j];
                    if (best_row < 0 || v > best) {
                        best = v;
                        best_row = src;
                    }
                }
                orow[j] = best_row >= 0 ? best : 0.0f;
                if (arow)
                    arow[j] = best_row;
            }
        }
        return;
    }

    const bool mean = reduce == Reduce::Mean;
    for (int64_t s = 0; s < segments; ++s) {
        const int64_t begin = offsets[s], end = offsets[s + 1];
        const int64_t deg = end - begin;
        const float scale =
            mean && deg > 0 ? 1.0f / float(deg) : 1.0f;
        const __m256 sv = _mm256_set1_ps(scale);
        float* orow = out + s * cols;
        int64_t j = 0;
        // A 32-column tile accumulates in registers across all of the
        // segment's edges — the fused gather never materializes the
        // [edges, cols] matrix, and per-element edge order is the
        // scalar order.
        for (; j + 32 <= cols; j += 32) {
            __m256 a0 = _mm256_setzero_ps();
            __m256 a1 = _mm256_setzero_ps();
            __m256 a2 = _mm256_setzero_ps();
            __m256 a3 = _mm256_setzero_ps();
            for (int64_t e = begin; e < end; ++e) {
                const int64_t src = sourceRow(sources, e);
                BETTY_ASSERT(src >= 0 && src < rows,
                             "source index out of range");
                const float* xtile = x + src * cols + j;
                a0 = _mm256_fmadd_ps(sv, _mm256_loadu_ps(xtile), a0);
                a1 = _mm256_fmadd_ps(sv, _mm256_loadu_ps(xtile + 8),
                                     a1);
                a2 = _mm256_fmadd_ps(sv, _mm256_loadu_ps(xtile + 16),
                                     a2);
                a3 = _mm256_fmadd_ps(sv, _mm256_loadu_ps(xtile + 24),
                                     a3);
            }
            _mm256_storeu_ps(orow + j, a0);
            _mm256_storeu_ps(orow + j + 8, a1);
            _mm256_storeu_ps(orow + j + 16, a2);
            _mm256_storeu_ps(orow + j + 24, a3);
        }
        for (; j + 8 <= cols; j += 8) {
            __m256 acc = _mm256_setzero_ps();
            for (int64_t e = begin; e < end; ++e) {
                const int64_t src = sourceRow(sources, e);
                acc = _mm256_fmadd_ps(
                    sv, _mm256_loadu_ps(x + src * cols + j), acc);
            }
            _mm256_storeu_ps(orow + j, acc);
        }
        if (j < cols) {
            for (int64_t jj = j; jj < cols; ++jj)
                orow[jj] = 0.0f;
            for (int64_t e = begin; e < end; ++e) {
                const float* xrow = x + sourceRow(sources, e) * cols;
                for (int64_t jj = j; jj < cols; ++jj)
                    orow[jj] += scale * xrow[jj];
            }
        }
    }
}

void
gatherAggregateBackwardAvx2(const float* grad_out, int64_t cols,
                            const int64_t* sources,
                            const int64_t* offsets, int64_t segments,
                            bool mean, float* grad_x)
{
    for (int64_t s = 0; s < segments; ++s) {
        const int64_t begin = offsets[s], end = offsets[s + 1];
        const int64_t deg = end - begin;
        if (deg == 0)
            continue;
        const float scale = mean ? 1.0f / float(deg) : 1.0f;
        const __m256 sv = _mm256_set1_ps(scale);
        const float* grow = grad_out + s * cols;
        for (int64_t e = begin; e < end; ++e) {
            float* xrow = grad_x + sourceRow(sources, e) * cols;
            int64_t j = 0;
            for (; j + 8 <= cols; j += 8)
                _mm256_storeu_ps(
                    xrow + j,
                    _mm256_fmadd_ps(sv, _mm256_loadu_ps(grow + j),
                                    _mm256_loadu_ps(xrow + j)));
            for (; j < cols; ++j)
                xrow[j] += scale * grow[j];
        }
    }
}

void
addInPlaceAvx2(float* y, const float* x, int64_t n)
{
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(y + i,
                         _mm256_add_ps(_mm256_loadu_ps(y + i),
                                       _mm256_loadu_ps(x + i)));
    for (; i < n; ++i)
        y[i] += x[i];
}

void
addScaledInPlaceAvx2(float* y, const float* x, float alpha, int64_t n)
{
    // mul then add, NOT fmadd: each element must round identically to
    // the scalar `y[i] += alpha * x[i]` (optimizer updates feed the
    // checkpoint-resume determinism tier).
    const __m256 av = _mm256_set1_ps(alpha);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(
            y + i,
            _mm256_add_ps(_mm256_loadu_ps(y + i),
                          _mm256_mul_ps(av, _mm256_loadu_ps(x + i))));
    for (; i < n; ++i)
        y[i] += alpha * x[i];
}

void
scaleInPlaceAvx2(float* y, float alpha, int64_t n)
{
    const __m256 av = _mm256_set1_ps(alpha);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(
            y + i, _mm256_mul_ps(av, _mm256_loadu_ps(y + i)));
    for (; i < n; ++i)
        y[i] *= alpha;
}

} // namespace betty::kernels::detail

#endif // BETTY_KERNELS_HAVE_AVX2
