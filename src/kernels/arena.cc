#include "kernels/arena.h"

#include <algorithm>
#include <new>

#include "obs/metrics.h"
#include "util/logging.h"

#if defined(__SANITIZE_ADDRESS__)
#define BETTY_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define BETTY_ARENA_ASAN 1
#endif
#endif

#ifdef BETTY_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace betty::kernels {

namespace {

/** Poison/unpoison are no-ops outside ASan builds. */
inline void
poisonRegion(void* ptr, int64_t bytes)
{
#ifdef BETTY_ARENA_ASAN
    ASAN_POISON_MEMORY_REGION(ptr, size_t(bytes));
#else
    (void)ptr;
    (void)bytes;
#endif
}

inline void
unpoisonRegion(void* ptr, int64_t bytes)
{
#ifdef BETTY_ARENA_ASAN
    ASAN_UNPOISON_MEMORY_REGION(ptr, size_t(bytes));
#else
    (void)ptr;
    (void)bytes;
#endif
}

thread_local Arena* t_current_arena = nullptr;

} // namespace

Arena::Arena(int64_t chunk_bytes) : chunk_bytes_(chunk_bytes)
{
    BETTY_ASSERT(chunk_bytes_ >= 4096,
                 "arena chunk granularity must be >= 4 KiB, got ",
                 chunk_bytes_);
}

Arena::~Arena()
{
    BETTY_ASSERT(live_handles_ == 0, "arena destroyed with ",
                 live_handles_, " live handle(s) attached");
    for (Chunk& chunk : chunks_) {
        unpoisonRegion(chunk.data, chunk.size);
        ::operator delete(chunk.data, std::align_val_t(kArenaAlign));
    }
}

std::size_t
Arena::growChunk(int64_t min_bytes)
{
    // Oversize requests get a dedicated chunk; normal growth stays at
    // the configured granularity so reuse across micro-batches settles
    // quickly at the high-water chunk list.
    const int64_t size = std::max(min_bytes, chunk_bytes_);
    Chunk chunk;
    chunk.data = static_cast<char*>(
        ::operator new(size_t(size), std::align_val_t(kArenaAlign)));
    chunk.size = size;
    poisonRegion(chunk.data, chunk.size);
    chunks_.push_back(chunk);
    reserved_bytes_ += size;
    ++chunk_allocs_;
    obs::Metrics::counter("kernel.arena.chunk_allocs").add(1);
    obs::Metrics::gauge("kernel.arena.reserved_bytes")
        .set(reserved_bytes_);
    return chunks_.size() - 1;
}

void*
Arena::allocate(int64_t bytes, int64_t align)
{
    BETTY_ASSERT(bytes >= 0, "arena allocation of ", bytes, " bytes");
    BETTY_ASSERT(align > 0 && (align & (align - 1)) == 0 &&
                 align <= kArenaAlign,
                 "arena alignment must be a power of two <= ",
                 kArenaAlign, ", got ", align);
    // Zero-byte requests still consume one aligned slot so distinct
    // requests return distinct pointers.
    const int64_t want = bytes > 0 ? bytes : align;
    ++allocations_;

    if (chunks_.empty())
        cursor_ = growChunk(want);
    for (;;) {
        Chunk& chunk = chunks_[cursor_];
        const int64_t aligned =
            (chunk.used + (align - 1)) & ~(align - 1);
        if (aligned + want <= chunk.size) {
            char* ptr = chunk.data + aligned;
            const int64_t consumed = (aligned - chunk.used) + want;
            chunk.used = aligned + want;
            in_use_bytes_ += consumed;
            high_water_bytes_ =
                std::max(high_water_bytes_, in_use_bytes_);
            unpoisonRegion(ptr, want);
            return ptr;
        }
        // Advance into the retained chunk list before growing it.
        if (cursor_ + 1 < chunks_.size())
            ++cursor_;
        else
            cursor_ = growChunk(want);
    }
}

void
Arena::reset()
{
    BETTY_ASSERT(live_handles_ == 0, "arena reset with ",
                 live_handles_,
                 " live handle(s) attached — storage escaped its "
                 "micro-batch scope");
    for (Chunk& chunk : chunks_) {
        poisonRegion(chunk.data, chunk.used);
        chunk.used = 0;
    }
    cursor_ = 0;
    in_use_bytes_ = 0;
    ++resets_;
    obs::Metrics::gauge("kernel.arena.high_water_bytes")
        .max(high_water_bytes_);
    obs::Metrics::counter("kernel.arena.resets").add(1);
}

void
Arena::releaseAll()
{
    reset();
    for (Chunk& chunk : chunks_) {
        unpoisonRegion(chunk.data, chunk.size);
        ::operator delete(chunk.data, std::align_val_t(kArenaAlign));
    }
    chunks_.clear();
    reserved_bytes_ = 0;
    obs::Metrics::gauge("kernel.arena.reserved_bytes").set(0);
}

Arena*
currentArena()
{
    return t_current_arena;
}

ArenaScope::ArenaScope(Arena& arena) : previous_(t_current_arena)
{
    t_current_arena = &arena;
}

ArenaScope::~ArenaScope()
{
    t_current_arena = previous_;
}

ArenaSuspend::ArenaSuspend() : previous_(t_current_arena)
{
    t_current_arena = nullptr;
}

ArenaSuspend::~ArenaSuspend()
{
    t_current_arena = previous_;
}

} // namespace betty::kernels
