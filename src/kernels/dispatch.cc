#include "kernels/dispatch.h"

#include <atomic>
#include <cstdint>

#include "obs/metrics.h"
#include "util/env_config.h"
#include "util/logging.h"

namespace betty::kernels {

namespace {

/** -1 = unresolved; else int(Backend). */
std::atomic<int> g_backend{-1};

/** -1 = read BETTY_KERNELS on first use; else int(KernelMode). */
std::atomic<int> g_mode{-1};

/** -1 = ask the CPU; 0/1 = forced by setCpuSupportsAvx2ForTest. */
std::atomic<int> g_cpu_override{-1};

std::atomic<int64_t> g_fallbacks{0};

KernelMode
modeFromEnv()
{
    const std::string text =
        envcfg::envString("BETTY_KERNELS", "scalar");
    KernelMode mode;
    if (!parseKernelMode(text, &mode))
        fatal("malformed BETTY_KERNELS='", text,
              "': expected scalar, avx2, or auto");
    return mode;
}

Backend
resolve(KernelMode mode)
{
    const bool available = builtWithAvx2() && cpuSupportsAvx2();
    switch (mode) {
      case KernelMode::Scalar:
        return Backend::Scalar;
      case KernelMode::Avx2:
        if (available)
            return Backend::Avx2;
        g_fallbacks.fetch_add(1, std::memory_order_relaxed);
        obs::Metrics::counter("kernel.dispatch.fallbacks").add(1);
        warnOnce("BETTY_KERNELS=avx2 requested but ",
                 builtWithAvx2()
                     ? "this CPU lacks AVX2/FMA"
                     : "this binary was built without AVX2 support",
                 "; falling back to the scalar reference kernels");
        return Backend::Scalar;
      case KernelMode::Auto:
        return available ? Backend::Avx2 : Backend::Scalar;
    }
    panic("unreachable kernel mode");
}

} // namespace

bool
parseKernelMode(const std::string& text, KernelMode* out)
{
    if (text == "scalar")
        *out = KernelMode::Scalar;
    else if (text == "avx2")
        *out = KernelMode::Avx2;
    else if (text == "auto")
        *out = KernelMode::Auto;
    else
        return false;
    return true;
}

const char*
kernelModeName(KernelMode mode)
{
    switch (mode) {
      case KernelMode::Scalar: return "scalar";
      case KernelMode::Avx2: return "avx2";
      case KernelMode::Auto: return "auto";
    }
    return "?";
}

const char*
backendName(Backend backend)
{
    return backend == Backend::Avx2 ? "avx2" : "scalar";
}

KernelMode
kernelMode()
{
    int mode = g_mode.load(std::memory_order_acquire);
    if (mode < 0) {
        mode = int(modeFromEnv());
        g_mode.store(mode, std::memory_order_release);
    }
    return KernelMode(mode);
}

void
setKernelMode(KernelMode mode)
{
    g_mode.store(int(mode), std::memory_order_release);
    g_backend.store(-1, std::memory_order_release);
}

bool
builtWithAvx2()
{
#ifdef BETTY_KERNELS_HAVE_AVX2
    return true;
#else
    return false;
#endif
}

bool
cpuSupportsAvx2()
{
    const int forced = g_cpu_override.load(std::memory_order_acquire);
    if (forced >= 0)
        return forced != 0;
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

Backend
activeBackend()
{
    int backend = g_backend.load(std::memory_order_acquire);
    if (backend < 0) {
        backend = int(resolve(kernelMode()));
        g_backend.store(backend, std::memory_order_release);
        obs::Metrics::gauge("kernel.backend_avx2")
            .set(backend == int(Backend::Avx2) ? 1 : 0);
    }
    return Backend(backend);
}

void
setCpuSupportsAvx2ForTest(int supported)
{
    g_cpu_override.store(supported, std::memory_order_release);
    g_backend.store(-1, std::memory_order_release);
}

void
resetKernelModeForTest()
{
    g_mode.store(-1, std::memory_order_release);
    g_backend.store(-1, std::memory_order_release);
}

int64_t
dispatchFallbackCount()
{
    return g_fallbacks.load(std::memory_order_relaxed);
}

} // namespace betty::kernels
