/**
 * @file
 * Kernel dispatch wrappers plus the scalar reference backend.
 *
 * The scalar loops are the pre-kernel tensor.cc / autograd.cc bodies
 * moved here verbatim — including the zero-skip in gemm/gemmTransA
 * and the double accumulator in gemmTransB — so the scalar path stays
 * bit-identical to every recorded golden hash. Do not "clean up"
 * these loops; numeric equivalence is load-bearing.
 */
#include "kernels/kernels.h"

#include "kernels/dispatch.h"
#include "kernels/kernels_internal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace betty::kernels {

namespace detail {

void
gemmScalar(const float* a, const float* b, float* c, int64_t m,
           int64_t k, int64_t n)
{
    // i-k-j loop order streams B and C rows; good cache behaviour for
    // the tall-skinny shapes (many nodes x small hidden) GNN training
    // produces. The aval == 0 skip exploits ReLU sparsity.
    for (int64_t i = 0; i < m; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (int64_t kk = 0; kk < k; ++kk) {
            const float aval = arow[kk];
            if (aval == 0.0f)
                continue;
            const float* brow = b + kk * n;
            for (int64_t j = 0; j < n; ++j)
                crow[j] += aval * brow[j];
        }
    }
}

void
gemmTransAScalar(const float* a, const float* b, float* c, int64_t m,
                 int64_t k, int64_t n)
{
    for (int64_t kk = 0; kk < k; ++kk) {
        const float* arow = a + kk * m;
        const float* brow = b + kk * n;
        for (int64_t i = 0; i < m; ++i) {
            const float aval = arow[i];
            if (aval == 0.0f)
                continue;
            float* crow = c + i * n;
            for (int64_t j = 0; j < n; ++j)
                crow[j] += aval * brow[j];
        }
    }
}

void
gemmTransBScalar(const float* a, const float* b, float* c, int64_t m,
                 int64_t k, int64_t n)
{
    for (int64_t i = 0; i < m; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (int64_t j = 0; j < n; ++j) {
            const float* brow = b + j * k;
            double acc = 0.0;
            for (int64_t kk = 0; kk < k; ++kk)
                acc += double(arow[kk]) * double(brow[kk]);
            crow[j] += static_cast<float>(acc);
        }
    }
}

namespace {

/** Source row of edge @p e: indirect through sources when present,
 * else the contiguous-segment identity (segmentSum/Mean/Max). */
inline int64_t
sourceRow(const int64_t* sources, int64_t e)
{
    return sources ? sources[e] : e;
}

} // namespace

void
gatherAggregateScalar(const float* x, int64_t rows, int64_t cols,
                      const int64_t* sources, const int64_t* offsets,
                      int64_t segments, Reduce reduce, float* out,
                      int64_t* argmax)
{
    if (reduce == Reduce::Max) {
        for (int64_t s = 0; s < segments; ++s) {
            for (int64_t j = 0; j < cols; ++j) {
                float best = 0.0f;
                int64_t best_row = -1;
                for (int64_t e = offsets[s]; e < offsets[s + 1]; ++e) {
                    const int64_t src = sourceRow(sources, e);
                    BETTY_ASSERT(src >= 0 && src < rows,
                                 "source index out of range");
                    const float v = x[src * cols + j];
                    if (best_row < 0 || v > best) {
                        best = v;
                        best_row = src;
                    }
                }
                out[s * cols + j] = best_row >= 0 ? best : 0.0f;
                if (argmax)
                    argmax[s * cols + j] = best_row;
            }
        }
        return;
    }
    const bool mean = reduce == Reduce::Mean;
    for (int64_t s = 0; s < segments; ++s) {
        float* orow = out + s * cols;
        for (int64_t j = 0; j < cols; ++j)
            orow[j] = 0.0f;
        const int64_t deg = offsets[s + 1] - offsets[s];
        if (deg == 0)
            continue;
        const float scale = mean ? 1.0f / float(deg) : 1.0f;
        for (int64_t e = offsets[s]; e < offsets[s + 1]; ++e) {
            const int64_t src = sourceRow(sources, e);
            BETTY_ASSERT(src >= 0 && src < rows,
                         "source index out of range");
            const float* xrow = x + src * cols;
            for (int64_t j = 0; j < cols; ++j)
                orow[j] += scale * xrow[j];
        }
    }
}

void
gatherAggregateBackwardScalar(const float* grad_out, int64_t cols,
                              const int64_t* sources,
                              const int64_t* offsets, int64_t segments,
                              bool mean, float* grad_x)
{
    for (int64_t s = 0; s < segments; ++s) {
        const int64_t deg = offsets[s + 1] - offsets[s];
        if (deg == 0)
            continue;
        const float scale = mean ? 1.0f / float(deg) : 1.0f;
        const float* grow = grad_out + s * cols;
        for (int64_t e = offsets[s]; e < offsets[s + 1]; ++e) {
            float* xrow = grad_x + sourceRow(sources, e) * cols;
            for (int64_t j = 0; j < cols; ++j)
                xrow[j] += scale * grow[j];
        }
    }
}

void
addInPlaceScalar(float* y, const float* x, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        y[i] += x[i];
}

void
addScaledInPlaceScalar(float* y, const float* x, float alpha,
                       int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        y[i] += alpha * x[i];
}

void
scaleInPlaceScalar(float* y, float alpha, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        y[i] *= alpha;
}

} // namespace detail

namespace {

/** Shared dispatch predicate: one cached-atomic load per call. */
inline bool
useAvx2()
{
#ifdef BETTY_KERNELS_HAVE_AVX2
    return activeBackend() == Backend::Avx2;
#else
    return false;
#endif
}

} // namespace

void
gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
     int64_t n)
{
    BETTY_TRACE_SPAN_CAT("kernel/gemm", "compute");
    static obs::Counter& calls = obs::Metrics::counter("kernel.gemm.calls");
    static obs::Counter& flops = obs::Metrics::counter("kernel.gemm.flops");
    calls.add(1);
    flops.add(2 * m * k * n);
#ifdef BETTY_KERNELS_HAVE_AVX2
    if (useAvx2())
        return detail::gemmAvx2(a, b, c, m, k, n);
#endif
    detail::gemmScalar(a, b, c, m, k, n);
}

void
gemmTransA(const float* a, const float* b, float* c, int64_t m,
           int64_t k, int64_t n)
{
    BETTY_TRACE_SPAN_CAT("kernel/gemm_ta", "compute");
    static obs::Counter& calls = obs::Metrics::counter("kernel.gemm.calls");
    static obs::Counter& flops = obs::Metrics::counter("kernel.gemm.flops");
    calls.add(1);
    flops.add(2 * m * k * n);
#ifdef BETTY_KERNELS_HAVE_AVX2
    if (useAvx2())
        return detail::gemmTransAAvx2(a, b, c, m, k, n);
#endif
    detail::gemmTransAScalar(a, b, c, m, k, n);
}

void
gemmTransB(const float* a, const float* b, float* c, int64_t m,
           int64_t k, int64_t n)
{
    BETTY_TRACE_SPAN_CAT("kernel/gemm_tb", "compute");
    static obs::Counter& calls = obs::Metrics::counter("kernel.gemm.calls");
    static obs::Counter& flops = obs::Metrics::counter("kernel.gemm.flops");
    calls.add(1);
    flops.add(2 * m * k * n);
#ifdef BETTY_KERNELS_HAVE_AVX2
    if (useAvx2())
        return detail::gemmTransBAvx2(a, b, c, m, k, n);
#endif
    detail::gemmTransBScalar(a, b, c, m, k, n);
}

void
gatherAggregate(const float* x, int64_t rows, int64_t cols,
                const int64_t* sources, const int64_t* offsets,
                int64_t segments, Reduce reduce, float* out,
                int64_t* argmax)
{
    BETTY_ASSERT(reduce != Reduce::Max || argmax != nullptr,
                 "Max aggregation needs an argmax buffer");
    BETTY_TRACE_SPAN_CAT("kernel/gather_aggregate", "compute");
    static obs::Counter& calls = obs::Metrics::counter("kernel.agg.calls");
    static obs::Counter& edges = obs::Metrics::counter("kernel.agg.edges");
    calls.add(1);
    edges.add(segments > 0 ? offsets[segments] : 0);
#ifdef BETTY_KERNELS_HAVE_AVX2
    if (useAvx2())
        return detail::gatherAggregateAvx2(x, rows, cols, sources,
                                           offsets, segments, reduce,
                                           out, argmax);
#endif
    detail::gatherAggregateScalar(x, rows, cols, sources, offsets,
                                  segments, reduce, out, argmax);
}

void
gatherAggregateBackward(const float* grad_out, int64_t cols,
                        const int64_t* sources, const int64_t* offsets,
                        int64_t segments, bool mean, float* grad_x)
{
    BETTY_TRACE_SPAN_CAT("kernel/gather_aggregate_bwd", "compute");
#ifdef BETTY_KERNELS_HAVE_AVX2
    if (useAvx2())
        return detail::gatherAggregateBackwardAvx2(
            grad_out, cols, sources, offsets, segments, mean, grad_x);
#endif
    detail::gatherAggregateBackwardScalar(grad_out, cols, sources,
                                          offsets, segments, mean,
                                          grad_x);
}

void
gatherRows(const float* x, int64_t rows, int64_t cols,
           const int64_t* indices, int64_t count, float* out)
{
    BETTY_TRACE_SPAN_CAT("kernel/gather_rows", "gather");
    static obs::Counter& gathered =
        obs::Metrics::counter("kernel.gather.rows");
    gathered.add(count);
    // Row copies are pure bandwidth; memcpy already saturates it, so
    // both backends share this path (bit-exact by construction).
    for (int64_t i = 0; i < count; ++i) {
        const int64_t src = indices[i];
        BETTY_ASSERT(src >= 0 && src < rows, "gatherRows index ", src,
                     " out of range");
        __builtin_memcpy(out + i * cols, x + src * cols,
                         size_t(cols) * sizeof(float));
    }
}

void
scatterAddRows(const float* grad, int64_t cols, const int64_t* indices,
               int64_t count, float* grad_x)
{
    for (int64_t i = 0; i < count; ++i) {
        const float* grow = grad + i * cols;
        float* xrow = grad_x + indices[i] * cols;
#ifdef BETTY_KERNELS_HAVE_AVX2
        if (useAvx2()) {
            detail::addInPlaceAvx2(xrow, grow, cols);
            continue;
        }
#endif
        detail::addInPlaceScalar(xrow, grow, cols);
    }
}

void
addInPlace(float* y, const float* x, int64_t n)
{
#ifdef BETTY_KERNELS_HAVE_AVX2
    if (useAvx2())
        return detail::addInPlaceAvx2(y, x, n);
#endif
    detail::addInPlaceScalar(y, x, n);
}

void
addScaledInPlace(float* y, const float* x, float alpha, int64_t n)
{
#ifdef BETTY_KERNELS_HAVE_AVX2
    if (useAvx2())
        return detail::addScaledInPlaceAvx2(y, x, alpha, n);
#endif
    detail::addScaledInPlaceScalar(y, x, alpha, n);
}

void
scaleInPlace(float* y, float alpha, int64_t n)
{
#ifdef BETTY_KERNELS_HAVE_AVX2
    if (useAvx2())
        return detail::scaleInPlaceAvx2(y, alpha, n);
#endif
    detail::scaleInPlaceScalar(y, alpha, n);
}

} // namespace betty::kernels
